package dismem_test

// Alloc-budget regression tests: the allocation-discipline refactor
// took the hot path from ~110 allocations per simulated job to ~2
// (fresh construction) and ~1 (batched Runner reuse). These tests pin
// a ceiling well above today's numbers but far below any accidental
// regression — a new per-dispatch slice or per-event box shows up as
// tens of thousands of allocations per run and fails loudly here, in
// ordinary `go test ./...`, without anyone having to read a benchmark.

import (
	"testing"

	"dismem"
)

const (
	allocBudgetJobs = 1000
	// freshAllocsPerJob bounds one Simulate (engine construction
	// included). Measured ~1.8 today; the seed sat at ~110.
	freshAllocsPerJob = 12.0
	// batchAllocsPerJob bounds a steady-state Runner run, where the
	// machine, event pool and scratch all carry over. Measured ~1.1.
	batchAllocsPerJob = 8.0
)

func allocBudgetOptions() dismem.Options {
	return dismem.Options{
		Policy: "memaware", Model: "bandwidth:1,1",
		Workload: dismem.SyntheticWorkload(allocBudgetJobs, 1),
	}
}

func TestAllocBudgetSimulate(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates allocation counts")
	}
	opts := allocBudgetOptions()
	perRun := testing.AllocsPerRun(3, func() {
		res, err := dismem.Simulate(opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Jobs() == 0 {
			t.Fatal("no jobs ran")
		}
	})
	if perJob := perRun / allocBudgetJobs; perJob > freshAllocsPerJob {
		t.Errorf("Simulate allocates %.2f allocs/job (%.0f/run), budget %.1f — the hot path grew an allocation site",
			perJob, perRun, freshAllocsPerJob)
	}
}

func TestAllocBudgetRunner(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates allocation counts")
	}
	r := dismem.NewRunner(allocBudgetOptions())
	// AllocsPerRun's own warm-up call doubles as the batch's cold
	// first run, so the measured runs are all steady-state reuse.
	perRun := testing.AllocsPerRun(3, func() {
		res, err := r.Run(dismem.RunSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Jobs() == 0 {
			t.Fatal("no jobs ran")
		}
	})
	if perJob := perRun / allocBudgetJobs; perJob > batchAllocsPerJob {
		t.Errorf("Runner.Run allocates %.2f allocs/job (%.0f/run), budget %.1f — batch reuse is leaking construction work",
			perJob, perRun, batchAllocsPerJob)
	}
}
