package dismem

import "dismem/internal/sim"

// Batched execution: run many simulations back to back while recycling
// every piece of engine state that is independent of an individual run
// — the machine (reset, not rebuilt, when consecutive runs share a
// configuration), the DES event pool, and the engine's dispatch-pass
// and bookkeeping scratch. A batch of n runs performs one machine
// construction and O(1) steady-state allocations per job instead of
// rebuilding the world n times; results are bit-identical to n
// independent Simulate calls (pinned by TestRunBatchMatchesLoopOfSimulate).
//
// The unit of reuse is the Runner. internal/sweep gives each of its
// pool workers one Runner so a whole parameter sweep amortises
// construction across every (cell, seed) unit the worker executes.

// RunSpec describes one run of a batch as overrides over the batch's
// base Options. A zero field inherits the base value; a set field
// replaces it for that run only. Fields that are valid when zero on
// Options (StrictKill, SampleEvery) use pointers here so "inherit" and
// "override to zero" stay distinguishable.
//
// Machine configuration is deliberately absent: a batch runs on one
// machine shape. Runs needing different machines belong to different
// batches (or a Runner constructed per shape).
type RunSpec struct {
	// Policy / SchedulerImpl override the base scheduler (same
	// precedence as Options: an implementation beats a spec string).
	Policy        string
	SchedulerImpl Scheduler
	// Model / ModelImpl override the base memory model.
	Model     string
	ModelImpl MemoryModel
	// Workload / Source override the base input. Workloads are never
	// mutated by the engine, so one *Workload may be shared by many
	// specs (and many concurrent Runners).
	Workload *Workload
	Source   Source
	// Scenario and Failures override the base perturbations.
	Scenario *Scenario
	Failures *FailureConfig
	// StrictKill, when non-nil, overrides the base kill discipline.
	StrictKill *bool
	// Observer and sinks are per-run consumers; each run of a batch
	// normally gets its own (a sink is closed at the end of its run).
	Observer    Observer
	SampleEvery *int64
	RecordSink  Sink
	SeriesSink  SeriesSink
	TraceSink   TraceSink
}

// apply merges the spec over base and returns the per-run Options.
func (sp RunSpec) apply(base Options) Options {
	o := base
	if sp.Policy != "" {
		o.Policy = sp.Policy
		o.SchedulerImpl = nil
	}
	if sp.SchedulerImpl != nil {
		o.SchedulerImpl = sp.SchedulerImpl
	}
	if sp.Model != "" {
		o.Model = sp.Model
		o.ModelImpl = nil
	}
	if sp.ModelImpl != nil {
		o.ModelImpl = sp.ModelImpl
	}
	if sp.Workload != nil {
		o.Workload = sp.Workload
		o.Source = nil
	}
	if sp.Source != nil {
		o.Source = sp.Source
		o.Workload = nil
	}
	if sp.Scenario != nil {
		o.Scenario = sp.Scenario
	}
	if sp.Failures != nil {
		o.Failures = sp.Failures
	}
	if sp.StrictKill != nil {
		o.StrictKill = *sp.StrictKill
	}
	if sp.Observer != nil {
		o.Observer = sp.Observer
	}
	if sp.SampleEvery != nil {
		o.SampleEvery = *sp.SampleEvery
	}
	if sp.RecordSink != nil {
		o.RecordSink = sp.RecordSink
	}
	if sp.SeriesSink != nil {
		o.SeriesSink = sp.SeriesSink
	}
	if sp.TraceSink != nil {
		o.TraceSink = sp.TraceSink
	}
	return o
}

// A Runner executes simulations sequentially, recycling run-independent
// engine state from each completed run into the next. It is
// single-goroutine state (like Simulation); concurrent batches use one
// Runner per goroutine. The zero Runner is not usable; construct with
// NewRunner.
type Runner struct {
	base Options
	// prev is the last successfully finished engine, consumed (and
	// cleared) by the next Run as its donor of recyclable state.
	prev *sim.Engine
}

// NewRunner returns a Runner whose runs default to base. Base is
// validated lazily, per run, exactly as Simulate validates its Options
// — an invalid base surfaces from the first Run that inherits the
// offending field.
func NewRunner(base Options) *Runner { return &Runner{base: base} }

// Run executes one run of the batch: spec merged over the Runner's
// base Options, recycling state from the Runner's previous run when
// the machine configuration is unchanged. The Result is identical —
// byte for byte across reports, records, series and traces — to
// Simulate on the merged Options.
func (r *Runner) Run(spec RunSpec) (*Result, error) {
	return r.RunOptions(spec.apply(r.base))
}

// RunOptions executes one run from fully assembled Options, bypassing
// the base/spec merge. This is the primitive internal/sweep drives:
// its cells already build complete per-seed Options.
func (r *Runner) RunOptions(o Options) (*Result, error) {
	s, err := r.NewSimulation(o)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	r.Retire(s)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// NewSimulation builds the batch's next run as a steppable Simulation,
// consuming the Runner's recyclable state (so at most one outstanding
// handle per Runner benefits from reuse). Drive it like any Simulation;
// when done, hand it back with Retire so the following run can recycle
// its engine.
func (r *Runner) NewSimulation(o Options) (*Simulation, error) {
	prev := r.prev
	r.prev = nil // construction consumes the donor, even on error
	return newSimulation(o, prev)
}

// Retire returns a Simulation built by NewSimulation to the Runner as
// the reuse donor for the next run. Retiring an unfinished or failed
// handle is safe — it is simply not reused (a run that never collected
// its Result cannot donate state without corrupting the next run).
func (r *Runner) Retire(s *Simulation) {
	if s != nil {
		r.prev = s.eng
	}
}

// RunBatch executes specs sequentially — each merged over base — and
// returns one Result per spec, in order. The machine is constructed
// once and reset between runs, event and bookkeeping pools carry over,
// and workloads shared across specs are reused, not regenerated. A
// failing run aborts the batch and returns its error alongside the
// results of the runs that completed (results[i] is non-nil exactly
// for the completed prefix).
//
// Equivalent, bit for bit, to calling Simulate once per merged spec:
// see TestRunBatchMatchesLoopOfSimulate.
func RunBatch(base Options, specs []RunSpec) ([]*Result, error) {
	results := make([]*Result, len(specs))
	r := NewRunner(base)
	for i, sp := range specs {
		res, err := r.Run(sp)
		if err != nil {
			return results, err
		}
		results[i] = res
	}
	return results, nil
}
