package dismem

// Bit-identity pins for the batched engine: a run executed through a
// Runner — on a machine reset from the previous run, with recycled
// event and scratch pools — must be indistinguishable, byte for byte,
// from the same run built from nothing. These tests are the contract
// named by sim.NewReusing's documentation.

import (
	"bytes"
	"reflect"
	"testing"
)

// runCapture holds one run's observable output: the structured result
// plus the raw bytes of every streaming sink.
type runCapture struct {
	res     *Result
	records bytes.Buffer
	series  bytes.Buffer
	trace   bytes.Buffer
}

// sinkOpts attaches fresh capture sinks to o and returns the capture.
func sinkOpts(o Options) (Options, *runCapture) {
	c := &runCapture{}
	o.RecordSink = NewJSONLSink(&c.records)
	o.SeriesSink = NewCSVSeriesSink(&c.series)
	o.TraceSink = NewJSONLTraceSink(&c.trace)
	if o.SampleEvery == 0 {
		o.SampleEvery = 1800
	}
	return o, c
}

// assertSameRun fails unless got (batched) and want (fresh) are
// byte-identical across report, events, and all three sink streams.
func assertSameRun(t *testing.T, i int, got, want *runCapture) {
	t.Helper()
	if !reflect.DeepEqual(got.res.Report, want.res.Report) {
		t.Errorf("run %d: report diverged\nbatched: %+v\nfresh:   %+v", i, got.res.Report, want.res.Report)
	}
	if got.res.Events != want.res.Events {
		t.Errorf("run %d: events = %d, fresh run fired %d", i, got.res.Events, want.res.Events)
	}
	if got.res.Stopped != want.res.Stopped || got.res.ScenarioEvents != want.res.ScenarioEvents {
		t.Errorf("run %d: stopped/scenario = %v/%d, want %v/%d", i,
			got.res.Stopped, got.res.ScenarioEvents, want.res.Stopped, want.res.ScenarioEvents)
	}
	if !bytes.Equal(got.records.Bytes(), want.records.Bytes()) {
		t.Errorf("run %d: record stream diverged (%d vs %d bytes)", i, got.records.Len(), want.records.Len())
	}
	if !bytes.Equal(got.series.Bytes(), want.series.Bytes()) {
		t.Errorf("run %d: series stream diverged (%d vs %d bytes)", i, got.series.Len(), want.series.Len())
	}
	if !bytes.Equal(got.trace.Bytes(), want.trace.Bytes()) {
		t.Errorf("run %d: trace stream diverged (%d vs %d bytes)", i, got.trace.Len(), want.trace.Len())
	}
}

// TestRunBatchMatchesLoopOfSimulate drives a heterogeneous batch —
// policies, models, scenarios, failures and shared workloads all vary
// across specs — through RunBatch and through a loop of independent
// Simulate calls on the identical merged options, and requires every
// observable output to match exactly.
func TestRunBatchMatchesLoopOfSimulate(t *testing.T) {
	wlA := SyntheticWorkload(300, 1)
	wlB := SyntheticWorkload(300, 2)
	scen, err := ParseScenario("at=3600 down rack=1; at=14400 up rack=1")
	if err != nil {
		t.Fatal(err)
	}
	strict := true
	base := Options{Policy: "memaware", Model: "bandwidth:1,1"}
	specs := []RunSpec{
		{Workload: wlA},
		{Workload: wlB, Policy: "order=sjf backfill=conservative placer=spill"},
		{Workload: wlA, Model: "linear:0.7"},
		{Workload: wlB, Scenario: scen},
		{Workload: wlA, StrictKill: &strict,
			Failures: &FailureConfig{MTBFPerNodeSec: 400000, RepairSec: 1800, Seed: 7}},
		{Workload: wlA}, // repeat of spec 0: reuse after heterogeneity
	}

	// The batch and the oracle loop need their own sinks; build one
	// capture per spec per side and splice the sinks in via a second
	// spec set.
	batchSpecs := make([]RunSpec, len(specs))
	batchCaps := make([]*runCapture, len(specs))
	for i, sp := range specs {
		o, c := sinkOpts(sp.apply(base))
		batchCaps[i] = c
		sp.RecordSink = o.RecordSink
		sp.SeriesSink = o.SeriesSink
		sp.TraceSink = o.TraceSink
		ev := o.SampleEvery
		sp.SampleEvery = &ev
		batchSpecs[i] = sp
	}
	results, err := RunBatch(base, batchSpecs)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, res := range results {
		batchCaps[i].res = res
	}

	for i, sp := range specs {
		o, want := sinkOpts(sp.apply(base))
		want.res, err = Simulate(o)
		if err != nil {
			t.Fatalf("Simulate spec %d: %v", i, err)
		}
		assertSameRun(t, i, batchCaps[i], want)
		if !reflect.DeepEqual(batchCaps[i].res.Recorder.Records(), want.res.Recorder.Records()) {
			t.Errorf("run %d: retained records diverged", i)
		}
	}
}

// TestRunnerReuseBitIdentical re-runs identical options through one
// Runner (maximum state recycling: same machine, reset in place) and
// checks every repetition against a fresh Simulate.
func TestRunnerReuseBitIdentical(t *testing.T) {
	wl := SyntheticWorkload(250, 3)
	opts := Options{Policy: "memaware", Model: "step:1,2", Workload: wl}

	r := NewRunner(Options{})
	for i := 0; i < 3; i++ {
		o, got := sinkOpts(opts)
		got.res, _ = r.RunOptions(o)
		if got.res == nil {
			t.Fatalf("run %d failed", i)
		}
		o, want := sinkOpts(opts)
		want.res, _ = Simulate(o)
		assertSameRun(t, i, got, want)
	}

	// A machine-config change mid-batch falls back to fresh
	// construction and must stay exact too.
	small := DefaultMachine()
	small.Racks = 2
	o, got := sinkOpts(Options{Machine: small, Policy: "memaware", Workload: wl})
	var err error
	got.res, err = r.RunOptions(o)
	if err != nil {
		t.Fatalf("machine-change run: %v", err)
	}
	o, want := sinkOpts(Options{Machine: small, Policy: "memaware", Workload: wl})
	want.res, _ = Simulate(o)
	assertSameRun(t, 99, got, want)
}

// TestRunnerReuseAfterStoppedRun retires a run halted mid-flight —
// queue, running set and pending events all non-empty — and checks the
// next run on the Runner is untouched by the leftovers.
func TestRunnerReuseAfterStoppedRun(t *testing.T) {
	wl := SyntheticWorkload(250, 3)
	opts := Options{Policy: "memaware", Workload: wl}

	r := NewRunner(Options{})
	h, err := r.NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	h.RunUntil(7200)
	h.Stop()
	if _, err := h.Result(); err != nil {
		t.Fatalf("stopped run result: %v", err)
	}
	r.Retire(h)

	o, got := sinkOpts(opts)
	got.res, err = r.RunOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	o, want := sinkOpts(opts)
	want.res, _ = Simulate(o)
	assertSameRun(t, 0, got, want)
}
