// Benchmarks regenerating every table and figure of the reconstructed
// evaluation (DESIGN.md §4), plus micro-benchmarks of the simulator's
// hot paths. Each experiment benchmark runs the corresponding sweep at
// a reduced-but-meaningful scale per iteration; run
//
//	go test -bench=. -benchmem
//
// and use `go run ./cmd/dmsweep -exp <id>` for the full-scale numbers
// recorded in EXPERIMENTS.md.
package dismem_test

import (
	"testing"

	"dismem/internal/benchkit"
	"dismem/internal/des"
	"dismem/internal/sweep"
	"dismem/internal/workload"
)

// benchOptions is the per-iteration experiment scale: large enough that
// queueing dynamics are real, small enough to iterate.
var benchOptions = sweep.Options{Jobs: 800, Seeds: 2}

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := sweep.Run(id, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no data", id)
		}
	}
}

// --- one benchmark per table and figure -----------------------------------

// BenchmarkTable1Workload regenerates the workload-characteristics table.
func BenchmarkTable1Workload(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Policies regenerates the headline policy comparison.
func BenchmarkTable2Policies(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Ablation regenerates the memaware mechanism ablation.
func BenchmarkTable3Ablation(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig1Stranding regenerates the memory-stranding CDF.
func BenchmarkFig1Stranding(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2PoolSweep regenerates the wait-vs-pool-size sweep.
func BenchmarkFig2PoolSweep(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3PenaltySweep regenerates the remote-penalty sweep.
func BenchmarkFig3PenaltySweep(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Utilization regenerates the per-policy utilization bars.
func BenchmarkFig4Utilization(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5Downsize regenerates the DRAM-downsizing sweep.
func BenchmarkFig5Downsize(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Topology regenerates the rack-vs-global pool comparison.
func BenchmarkFig6Topology(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Estimates regenerates the estimate-accuracy sensitivity.
func BenchmarkFig7Estimates(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8DilationCDF regenerates the per-job dilation CDF.
func BenchmarkFig8DilationCDF(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkVal1Queueing regenerates the Erlang-C validation table.
func BenchmarkVal1Queueing(b *testing.B) { benchExperiment(b, "val1") }

// BenchmarkFig9LoadSweep regenerates the offered-load scaling sweep.
func BenchmarkFig9LoadSweep(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Failures regenerates the failure-injection sweep.
func BenchmarkFig10Failures(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable4Fairness regenerates the per-user fairness table.
func BenchmarkTable4Fairness(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkVal2Lublin regenerates the workload-model robustness check.
func BenchmarkVal2Lublin(b *testing.B) { benchExperiment(b, "val2") }

// --- micro-benchmarks of the simulator's hot paths -------------------------

// BenchmarkEventQueue measures raw DES schedule+fire throughput.
func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	s := des.New()
	noop := func(des.Time, any) {}
	for i := 0; i < b.N; i++ {
		// Keep ~1k events in flight, firing one per scheduled.
		s.Schedule(s.Now()+des.Time(i%1000), noop)
		s.Step()
	}
}

// BenchmarkMachineAllocRelease measures the cluster bookkeeping cycle.
func BenchmarkMachineAllocRelease(b *testing.B) { benchkit.MachineAllocRelease(b) }

// BenchmarkMemAwarePlan measures one placement decision on a half-loaded
// machine (the scheduler's inner loop).
func BenchmarkMemAwarePlan(b *testing.B) { benchkit.MemAwarePlan(b) }

// BenchmarkWorkloadGenerate measures synthetic trace generation.
func BenchmarkWorkloadGenerate(b *testing.B) {
	b.ReportAllocs()
	cfg := workload.DefaultGenConfig(1000, 1, 256)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation measures end-to-end simulated-jobs-per-second for
// the full memaware stack under the contention-sensitive model.
func BenchmarkSimulation(b *testing.B) { benchkit.Simulation(b) }

// BenchmarkBatchSimulation is BenchmarkSimulation on the batched
// multi-run path: one Runner per benchmark, machine and pools recycled
// between runs (see dismem.RunBatch).
func BenchmarkBatchSimulation(b *testing.B) { benchkit.BatchSimulation(b) }

// BenchmarkScenarioSimulation is BenchmarkSimulation with an active
// intervention timeline (rack outage + diurnal cycle), guarding the
// scenario subsystem's end-to-end overhead.
func BenchmarkScenarioSimulation(b *testing.B) { benchkit.ScenarioSimulation(b) }

// BenchmarkSeriesSampling is BenchmarkSimulation with the sampling tick
// chain armed (600 s period) and every sample JSON-encoded to a
// discarded series stream: the full end-to-end price of -series-out.
// `go run ./cmd/dmbench -series` records it, with Simulation as the
// sampling-off reference, as BENCH_<date>_series.json.
func BenchmarkSeriesSampling(b *testing.B) { benchkit.SeriesSampling(b) }

// BenchmarkTraceSimulation is BenchmarkSimulation with every lifecycle
// trace event JSON-encoded to a discarded trace stream: the full
// end-to-end price of -trace-out (tracing is event-driven, so no
// sampling tick chain is armed). `go run ./cmd/dmbench -trace` records
// it, with Simulation as the nil-sink reference, as
// BENCH_<date>_trace.json.
func BenchmarkTraceSimulation(b *testing.B) { benchkit.TraceSimulation(b) }

// BenchmarkStreamingReplay measures bounded-memory trace replay: a
// 100k-job SWF trace streamed through SWFSource with the
// online-aggregate sink, reporting jobs/s and the live-heap high-water
// mark (peakheap-MB). `go run ./cmd/dmbench -stream` runs this and the
// 1M-job variant and records BENCH_<date>_stream.json; the 1M peak
// heap staying within 2x of the 100k one is the subsystem's memory
// contract (DESIGN.md §7).
func BenchmarkStreamingReplay(b *testing.B) { benchkit.StreamingReplay100k(b) }

// BenchmarkFig11OutageSeverity regenerates the outage-severity sweep.
func BenchmarkFig11OutageSeverity(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkCheckpointFork measures checkpoint+fork of a mid-trace
// simulation (state cloning only, the forked future is not run): the
// per-variant overhead of shared-prefix what-if studies. `go run
// ./cmd/dmbench -fork` records it as BENCH_<date>_fork.json.
func BenchmarkCheckpointFork(b *testing.B) { benchkit.CheckpointFork(b) }

// BenchmarkCheckpointEncode / BenchmarkCheckpointDecode measure the
// durable checkpoint envelope (SaveCheckpoint/LoadCheckpoint): encode
// and verified decode throughput in MB/s plus the fixture's envelope
// size in bytes/ckpt. `go run ./cmd/dmbench -ckptio` records both as
// BENCH_<date>_ckptio.json.
func BenchmarkCheckpointEncode(b *testing.B) { benchkit.CheckpointEncode(b) }
func BenchmarkCheckpointDecode(b *testing.B) { benchkit.CheckpointDecode(b) }

// BenchmarkServeQueries measures the serving layer end to end:
// concurrent short-horizon /v1/whatif queries against a completed
// baseline's checkpoint ring, reporting queries/s and p50/p99
// fork-to-response latency. `go run ./cmd/dmbench -serve` records it
// as BENCH_<date>_serve.json.
func BenchmarkServeQueries(b *testing.B) { benchkit.ServeQueries(b) }
