package dismem_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"dismem"
)

// Fault-injection suite for the checkpoint envelope: a corrupted file
// must never load. Every truncation point and every bit flip is an
// error — zero silent successes — because a checkpoint that loads
// wrong produces a silently wrong simulation, the one failure mode a
// determinism-first simulator cannot tolerate.

// envelopeBytes returns one valid saved checkpoint to mutate.
func envelopeBytes(t *testing.T) []byte {
	t.Helper()
	cp := checkpointAt(t, forkOpts(dismem.SyntheticWorkload(300, 8)), 15000)
	var buf bytes.Buffer
	if err := dismem.SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsTruncation cuts the envelope at every structural
// boundary and at a stride through the payload; every prefix must fail
// to load. (The empty prefix fails too: no magic.)
func TestLoadRejectsTruncation(t *testing.T) {
	env := envelopeBytes(t)
	cuts := map[int]bool{
		0:            true,
		4:            true, // mid-magic
		8:            true, // after magic
		10:           true, // mid-version
		12:           true, // after version
		28:           true, // mid-fingerprint
		44:           true, // after fingerprint
		48:           true, // mid-length
		52:           true, // after length (zero payload bytes)
		len(env) - 1: true, // one digest byte short
	}
	for cut := 53; cut < len(env); cut += 61 { // prime stride through payload+digest
		cuts[cut] = true
	}
	for cut := range cuts {
		if cut < 0 || cut >= len(env) {
			continue
		}
		if _, err := dismem.LoadCheckpoint(bytes.NewReader(env[:cut])); err == nil {
			t.Errorf("truncation at byte %d of %d loaded successfully", cut, len(env))
		}
	}
	// The untouched envelope still loads: the suite is mutating a valid
	// baseline, not a broken one.
	if _, err := dismem.LoadCheckpoint(bytes.NewReader(env)); err != nil {
		t.Fatalf("baseline envelope failed to load: %v", err)
	}
}

// TestLoadRejectsBitFlips flips one byte per 64-byte window across the
// whole envelope — header, payload and digest — and requires every
// mutant to fail.
func TestLoadRejectsBitFlips(t *testing.T) {
	env := envelopeBytes(t)
	mutant := make([]byte, len(env))
	for off := 0; off < len(env); off += 64 {
		i := off + (off/64)%64 // walk the flip position through the window
		if i >= len(env) {
			i = len(env) - 1
		}
		copy(mutant, env)
		mutant[i] ^= 1 << (uint(off/64) % 8)
		if _, err := dismem.LoadCheckpoint(bytes.NewReader(mutant)); err == nil {
			t.Errorf("bit flip at byte %d (window %d) loaded successfully", i, off/64)
		}
	}
}

// TestLoadRejectsVersionSkew rewrites each header field with plausible
// but wrong values: future/zero format versions and a drifted schema
// fingerprint.
func TestLoadRejectsVersionSkew(t *testing.T) {
	env := envelopeBytes(t)
	patch := func(off int, b []byte) []byte {
		m := append([]byte(nil), env...)
		copy(m[off:], b)
		return m
	}
	cases := map[string][]byte{
		"future version":      patch(8, []byte{0, 0, 0, 99}),
		"zero version":        patch(8, []byte{0, 0, 0, 0}),
		"drifted fingerprint": patch(12, bytes.Repeat([]byte{0xAB}, 32)),
		"wrong magic":         patch(0, []byte("DMCKPT9\n")),
		"oversized length":    patch(44, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}),
	}
	for name, m := range cases {
		if _, err := dismem.LoadCheckpoint(bytes.NewReader(m)); err == nil {
			t.Errorf("%s loaded successfully", name)
		}
	}
}

// TestLoadRejectsPayloadForgery re-frames a structurally broken payload
// behind a VALID digest, proving validation does not stop at the
// checksum: the decoder and the state validators must still reject it.
func TestLoadRejectsPayloadForgery(t *testing.T) {
	header := envelopeBytes(t)[:44] // magic + version + fingerprint from a real save
	for name, payload := range map[string]string{
		"not json":         "this is not a checkpoint",
		"empty object":     "{}",
		"null state":       `{"machine":{},"model":"linear:0.5","state":null}`,
		"unknown field":    `{"bogusField":1}`,
		"negative now":     `{"machine":{"Racks":1,"NodesPerRack":1,"CoresPerNode":1,"LocalMemMiB":1024},"model":"linear:0.5","state":{"now":-5,"fired":0,"events":[],"machine":{},"recorder":{}}}`,
		"bad event kind":   `{"machine":{"Racks":1,"NodesPerRack":1,"CoresPerNode":1,"LocalMemMiB":1024},"model":"linear:0.5","state":{"now":0,"fired":0,"events":[{"t":1,"kind":"warp-core-breach"}],"machine":{},"recorder":{}}}`,
		"unknown policy":   `{"machine":{},"model":"linear:0.5","policy":"no-such-policy=","state":{"now":0,"fired":0,"events":[],"machine":{},"recorder":{}}}`,
		"unknown model":    `{"machine":{},"model":"antigravity:9","state":{"now":0,"fired":0,"events":[],"machine":{},"recorder":{}}}`,
		"bad scenario":     `{"machine":{},"model":"linear:0.5","scenario":"at=banana explode","state":{"now":0,"fired":0,"events":[],"machine":{},"recorder":{}}}`,
		"invalid failures": `{"machine":{},"model":"linear:0.5","failures":{"MTBFPerNodeSec":-1,"RepairSec":0},"state":{"now":0,"fired":0,"events":[],"machine":{},"recorder":{}}}`,
	} {
		if _, err := dismem.LoadCheckpoint(bytes.NewReader(forgeEnvelope(header, []byte(payload)))); err == nil {
			t.Errorf("forged payload %q loaded successfully", name)
		}
	}
}

// FuzzLoadCheckpoint feeds arbitrary bytes to the loader. The
// invariant: LoadCheckpoint never panics, and anything it accepts is a
// usable checkpoint — forking and running it must not panic either.
// The committed corpus (testdata/fuzz/FuzzLoadCheckpoint) seeds the
// interesting header shapes; a full valid envelope is added here so
// mutation starts from the deep decode paths too.
func FuzzLoadCheckpoint(f *testing.F) {
	cp := checkpointAtTB(f, dismem.Options{
		Policy:   "memaware",
		Workload: dismem.SyntheticWorkload(120, 3),
	}, 8000)
	var valid bytes.Buffer
	if err := dismem.SaveCheckpoint(&valid, cp); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:52])
	f.Add([]byte{})
	f.Add([]byte("DMCKPT1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := dismem.LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the common, correct outcome
		}
		s, err := dismem.Fork(loaded, dismem.ForkOptions{})
		if err != nil {
			return
		}
		_, _ = s.Run()
	})
}

// checkpointAtTB is checkpointAt for either tests or fuzz targets.
func checkpointAtTB(tb testing.TB, opts dismem.Options, t0 int64) *dismem.Checkpoint {
	tb.Helper()
	s, err := dismem.New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	s.RunUntil(t0)
	cp, err := s.Checkpoint()
	if err != nil {
		tb.Fatal(err)
	}
	return cp
}

// forgeEnvelope frames arbitrary payload bytes behind a correct header
// and digest, mirroring the writer's layout.
func forgeEnvelope(header, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(header)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(payload)))
	buf.Write(n[:])
	buf.Write(payload)
	d := sha256.Sum256(payload)
	buf.Write(d[:])
	return buf.Bytes()
}
