package dismem

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"dismem/internal/memmodel"
	"dismem/internal/sim"
	"dismem/internal/source"
)

// This file makes checkpoints durable: SaveCheckpoint serializes a
// Checkpoint (fork.go) into a self-validating envelope and
// LoadCheckpoint rebuilds one in another process. The envelope is
//
//	magic "DMCKPT1\n"                          8 bytes
//	format version                             4 bytes, big endian
//	schema fingerprint                        32 bytes
//	payload length                             8 bytes, big endian
//	payload                                   JSON, length bytes
//	payload SHA-256 digest                    32 bytes
//
// and every way a file can lie is a distinct pointed error, never a
// silently wrong simulation: wrong magic, unknown version, a schema
// fingerprint from an incompatible build, a truncated payload, a
// digest mismatch from any bit flip, and structurally invalid state
// behind a valid digest. The digest is verified before the payload is
// decoded.
//
// What cannot be saved mirrors what cannot be forked, plus code:
// schedulers, memory models and scenarios persist as their spec
// strings (Options.Policy / Options.Model / Scenario.String), so runs
// built from Options.SchedulerImpl or Options.ModelImpl have no
// serialized form, and sources must be durable (source.Durable) — a
// materialised workload, the built-in generators, or a file-backed SWF
// trace (SWFFileSource), but not a bare io.Reader stream.
//
// A checkpoint restored by LoadCheckpoint feeds Fork exactly like one
// taken in-process, and the resumed future is bit-identical to the
// uninterrupted run (DESIGN.md §9).

// ckptMagic identifies a dismem checkpoint stream.
const ckptMagic = "DMCKPT1\n"

// CheckpointFormatVersion is the envelope format this build writes and
// the only one it reads. It bumps when the envelope layout or payload
// semantics change incompatibly.
const CheckpointFormatVersion = 1

// maxCheckpointPayload bounds how much a reader will buffer for one
// checkpoint, so a corrupted length field cannot trigger a multi-GiB
// allocation before the digest check gets a chance to reject it.
const maxCheckpointPayload = 1 << 31

// ckptPayload is the JSON payload of a checkpoint envelope: the
// serialized run configuration (specs, not code) plus the flattened
// engine state.
type ckptPayload struct {
	Machine         MachineConfig        `json:"machine"`
	Policy          string               `json:"policy,omitempty"`
	Model           string               `json:"model"`
	StrictKill      bool                 `json:"strictKill,omitempty"`
	CheckInvariants bool                 `json:"checkInvariants,omitempty"`
	Failures        *FailureConfig       `json:"failures,omitempty"`
	Scenario        string               `json:"scenario,omitempty"`
	SampleEvery     int64                `json:"sampleEvery,omitempty"`
	State           *sim.CheckpointState `json:"state"`
}

// ckptSchemaFingerprint digests the reflected shape of the payload —
// every field name, JSON tag and type, recursively — so a checkpoint
// written by a build whose state structs drifted (a renamed field, a
// changed type) is rejected up front instead of half-decoding.
var ckptSchemaFingerprint = func() [sha256.Size]byte {
	var b strings.Builder
	describeType(&b, reflect.TypeOf(ckptPayload{}), map[reflect.Type]bool{})
	return sha256.Sum256([]byte(b.String()))
}()

var jsonMarshalerType = reflect.TypeOf((*json.Marshaler)(nil)).Elem()

// describeType appends a canonical structural description of t.
// Recursive types (CursorState, DistState) are expanded once and
// referenced by name afterwards. Types with custom JSON marshaling are
// tagged as such: their wire form is their method's business, and the
// tag still changes the fingerprint if such a type replaces a plain
// one.
func describeType(b *strings.Builder, t reflect.Type, visited map[reflect.Type]bool) {
	switch t.Kind() {
	case reflect.Pointer:
		b.WriteByte('*')
		describeType(b, t.Elem(), visited)
	case reflect.Slice:
		b.WriteString("[]")
		describeType(b, t.Elem(), visited)
	case reflect.Array:
		fmt.Fprintf(b, "[%d]", t.Len())
		describeType(b, t.Elem(), visited)
	case reflect.Map:
		b.WriteString("map[")
		describeType(b, t.Key(), visited)
		b.WriteByte(']')
		describeType(b, t.Elem(), visited)
	case reflect.Struct:
		name := t.String()
		if visited[t] {
			b.WriteString(name)
			return
		}
		visited[t] = true
		if t.Implements(jsonMarshalerType) || reflect.PointerTo(t).Implements(jsonMarshalerType) {
			b.WriteString(name)
			b.WriteString("(custom-json)")
			return
		}
		b.WriteString(name)
		b.WriteByte('{')
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				continue // unexported: not on the wire
			}
			fmt.Fprintf(b, "%s`%s`:", f.Name, f.Tag.Get("json"))
			describeType(b, f.Type, visited)
			b.WriteByte(';')
		}
		b.WriteByte('}')
	default:
		b.WriteString(t.String())
	}
}

// SaveCheckpoint serializes cp to w in the versioned, digest-protected
// envelope format. It fails, without writing anything, for checkpoints
// of runs that embed live code: Options.SchedulerImpl or
// Options.ModelImpl (persist the spec strings instead), or a workload
// source with no durable cursor. For crash-safe on-disk checkpoints
// use WriteCheckpointFile, which wraps this in an atomic
// write-fsync-rename.
func SaveCheckpoint(w io.Writer, cp *Checkpoint) error {
	payload, err := encodeCheckpoint(cp)
	if err != nil {
		return err
	}
	return writeEnvelope(w, payload)
}

// encodeCheckpoint flattens cp to the JSON payload bytes.
func encodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	if cp == nil {
		return nil, fmt.Errorf("dismem: nil checkpoint")
	}
	o := cp.opts
	if o.SchedulerImpl != nil {
		return nil, fmt.Errorf("dismem: checkpoint of a run built with Options.SchedulerImpl has no serialized form (select the scheduler with Options.Policy so it can be rebuilt on load)")
	}
	if o.ModelImpl != nil {
		return nil, fmt.Errorf("dismem: checkpoint of a run built with Options.ModelImpl has no serialized form (select the model with Options.Model so it can be rebuilt on load)")
	}
	st, err := cp.cp.State()
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	mc := o.Machine
	if mc.IsZero() {
		mc = DefaultMachine()
	}
	model := o.Model
	if model == "" {
		model = "linear:0.5"
	}
	scen := ""
	if o.Scenario != nil {
		scen = o.Scenario.String()
	}
	p := ckptPayload{
		Machine:         mc,
		Policy:          o.Policy,
		Model:           model,
		StrictKill:      o.StrictKill,
		CheckInvariants: o.CheckInvariants,
		Failures:        o.Failures,
		Scenario:        scen,
		SampleEvery:     o.SampleEvery,
		State:           st,
	}
	buf, err := json.Marshal(&p)
	if err != nil {
		return nil, fmt.Errorf("dismem: encoding checkpoint: %w", err)
	}
	return buf, nil
}

// LoadCheckpoint reads one envelope from r and rebuilds the
// checkpoint. Every defect is an error: wrong magic, a format version
// this build does not read, a schema fingerprint from an incompatible
// build, truncation anywhere, any payload corruption (SHA-256
// verified before decoding), and state that decodes but fails
// structural validation. The rebuilt checkpoint feeds Fork like one
// taken in-process.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var magic [len(ckptMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("dismem: reading checkpoint magic: %w", err)
	}
	if string(magic[:]) != ckptMagic {
		return nil, fmt.Errorf("dismem: not a dismem checkpoint (magic %q)", magic[:])
	}
	var v [4]byte
	if _, err := io.ReadFull(r, v[:]); err != nil {
		return nil, fmt.Errorf("dismem: reading checkpoint version: %w", err)
	}
	if ver := binary.BigEndian.Uint32(v[:]); ver != CheckpointFormatVersion {
		return nil, fmt.Errorf("dismem: checkpoint format version %d; this build reads version %d", ver, CheckpointFormatVersion)
	}
	var fp [sha256.Size]byte
	if _, err := io.ReadFull(r, fp[:]); err != nil {
		return nil, fmt.Errorf("dismem: reading checkpoint schema fingerprint: %w", err)
	}
	if fp != ckptSchemaFingerprint {
		return nil, fmt.Errorf("dismem: checkpoint schema fingerprint %x does not match this build's %x (written by an incompatible dismem version)",
			fp[:8], ckptSchemaFingerprint[:8])
	}
	var n [8]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("dismem: reading checkpoint payload length: %w", err)
	}
	length := binary.BigEndian.Uint64(n[:])
	if length > maxCheckpointPayload {
		return nil, fmt.Errorf("dismem: checkpoint payload length %d exceeds the %d-byte bound (corrupted length field?)", length, maxCheckpointPayload)
	}
	var payload bytes.Buffer
	payload.Grow(int(length))
	if _, err := io.CopyN(&payload, r, int64(length)); err != nil {
		return nil, fmt.Errorf("dismem: checkpoint payload truncated at %d of %d bytes: %w", payload.Len(), length, err)
	}
	var digest [sha256.Size]byte
	if _, err := io.ReadFull(r, digest[:]); err != nil {
		return nil, fmt.Errorf("dismem: reading checkpoint digest: %w", err)
	}
	if sum := sha256.Sum256(payload.Bytes()); sum != digest {
		return nil, fmt.Errorf("dismem: checkpoint payload digest mismatch (file corrupted)")
	}
	dec := json.NewDecoder(&payload)
	dec.DisallowUnknownFields()
	var p ckptPayload
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("dismem: decoding checkpoint payload: %w", err)
	}
	return rebuildCheckpoint(&p)
}

// rebuildCheckpoint reconstructs the run configuration from its specs
// and revalidates the flattened state.
func rebuildCheckpoint(p *ckptPayload) (*Checkpoint, error) {
	if p.State == nil {
		return nil, fmt.Errorf("dismem: checkpoint payload has no engine state")
	}
	if err := p.Machine.Validate(); err != nil {
		return nil, fmt.Errorf("dismem: checkpoint machine config: %w", err)
	}
	model, err := memmodel.Parse(p.Model)
	if err != nil {
		return nil, fmt.Errorf("dismem: checkpoint memory model: %w", err)
	}
	sch, err := NewScheduler(p.Policy)
	if err != nil {
		return nil, fmt.Errorf("dismem: checkpoint policy: %w", err)
	}
	var scen *Scenario
	if p.Scenario != "" {
		scen, err = ParseScenario(p.Scenario)
		if err != nil {
			return nil, fmt.Errorf("dismem: checkpoint scenario: %w", err)
		}
	}
	if p.Failures != nil {
		if err := p.Failures.Validate(); err != nil {
			return nil, fmt.Errorf("dismem: checkpoint failure config: %w", err)
		}
	}
	cfg := sim.Config{
		Machine:         p.Machine,
		Model:           model,
		Scheduler:       sch,
		ExtendLimit:     !p.StrictKill,
		CheckInvariants: p.CheckInvariants,
		Failures:        p.Failures,
		Scenario:        scen,
		SampleEvery:     p.SampleEvery,
	}
	cp, err := sim.CheckpointFromState(cfg, p.State)
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	opts := Options{
		Machine:         p.Machine,
		Policy:          p.Policy,
		Model:           p.Model,
		StrictKill:      p.StrictKill,
		CheckInvariants: p.CheckInvariants,
		Failures:        p.Failures,
		Scenario:        scen,
		SampleEvery:     p.SampleEvery,
	}
	return &Checkpoint{cp: cp, opts: opts}, nil
}

// WriteCheckpointFile saves cp to path atomically: the envelope is
// written to a temporary file in the same directory, fsynced, and
// renamed over path, so a crash at any instant leaves either the old
// file or the new one — never a torn checkpoint. The directory entry
// is fsynced after the rename where the platform supports it.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	payload, err := encodeCheckpoint(cp)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("dismem: writing checkpoint: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	// Re-wrap the already-encoded payload so a payload encoding error
	// cannot leave a temp file behind.
	if err := writeEnvelope(tmp, payload); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("dismem: syncing checkpoint %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dismem: closing checkpoint %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("dismem: publishing checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Persist the rename itself; ignore failures — some filesystems
		// reject directory fsync, and the data file is already durable.
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// writeEnvelope frames pre-encoded payload bytes (see SaveCheckpoint
// for the layout).
func writeEnvelope(w io.Writer, payload []byte) error {
	var hdr bytes.Buffer
	hdr.WriteString(ckptMagic)
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], CheckpointFormatVersion)
	hdr.Write(v[:])
	hdr.Write(ckptSchemaFingerprint[:])
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(payload)))
	hdr.Write(n[:])
	digest := sha256.Sum256(payload)
	for _, b := range [][]byte{hdr.Bytes(), payload, digest[:]} {
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("dismem: writing checkpoint: %w", err)
		}
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile
// (or any SaveCheckpoint stream stored at path).
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dismem: reading checkpoint: %w", err)
	}
	defer f.Close()
	cp, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return cp, nil
}

// SWFFileSource streams jobs lazily from an SWF trace file by path,
// with the same O(1)-memory decoding as SWFSource. Because the source
// owns the path rather than a caller's reader, its position is a
// (path, byte offset) cursor: the source is forkable (checkpoints of
// file-backed replays work) and durable (those checkpoints can be
// saved with SaveCheckpoint and resumed in another process). The file
// is opened lazily on first pull and closed at end of trace; the
// returned source implements io.Closer for callers that abandon a
// replay mid-trace.
func SWFFileSource(path string, opt SWFReadOptions) Source {
	return source.SWFFile(path, opt)
}
