package dismem_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dismem"
	"dismem/internal/workload"
)

// saveLoad round-trips cp through the envelope and fails the test on
// any error.
func saveLoad(t *testing.T, cp *dismem.Checkpoint) *dismem.Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := dismem.SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := dismem.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// checkpointAt advances a fresh simulation of opts to t0 and captures.
func checkpointAt(t *testing.T, opts dismem.Options, t0 int64) *dismem.Checkpoint {
	t.Helper()
	s := mustNew(t, opts)
	s.RunUntil(t0)
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestSaveLoadRoundTrip is the durability golden test: for each
// configuration class, Save → Load → Fork → RunAll is bit-identical —
// report, records, event counts — to the uninterrupted run.
func TestSaveLoadRoundTrip(t *testing.T) {
	swf := writeTestTrace(t, 500, 7)
	cases := []struct {
		name string
		t0   int64
		opts func() dismem.Options
	}{
		{"slice_scenario_failures", 30000, func() dismem.Options {
			return forkOpts(dismem.SyntheticWorkload(800, 1))
		}},
		{"gen_source_bounded", 25000, func() dismem.Options {
			src, err := dismem.GenSource(dismem.DefaultGen(600, 3, dismem.DefaultMachine()), 600, 0)
			if err != nil {
				t.Fatal(err)
			}
			return dismem.Options{
				Policy: "memaware", Model: "bandwidth:1,1",
				Source: src, RecordSink: dismem.DiscardRecords,
			}
		}},
		{"lublin_source", 25000, func() dismem.Options {
			src, err := dismem.LublinSource(
				workloadLublinCfg(400, 4), 400, 0)
			if err != nil {
				t.Fatal(err)
			}
			return dismem.Options{Policy: "easy-local", Source: src}
		}},
		{"swf_file_source", 20000, func() dismem.Options {
			return dismem.Options{
				Policy: "memaware",
				Source: dismem.SWFFileSource(swf, dismem.SWFReadOptions{DefaultMemPerNode: 2048}),
			}
		}},
		{"modulated_source", 20000, func() dismem.Options {
			sc, err := dismem.ParseScenario("from=10000 until=60000 rate=2 surge; at=40000 down rack=1; at=70000 up rack=1")
			if err != nil {
				t.Fatal(err)
			}
			src, err := dismem.GenSource(dismem.DefaultGen(500, 5, dismem.DefaultMachine()), 500, 0)
			if err != nil {
				t.Fatal(err)
			}
			return dismem.Options{Policy: "memaware", Source: src, Scenario: sc}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := mustRun(t, mustNew(t, tc.opts()))
			cp := checkpointAt(t, tc.opts(), tc.t0)

			// In-memory fork: the PR 5 baseline this PR must preserve.
			sameResults(t, "memory fork vs fresh", fresh,
				mustRun(t, mustFork(t, cp, dismem.ForkOptions{})))
			// Durable round trip: the new contract.
			sameResults(t, "loaded fork vs fresh", fresh,
				mustRun(t, mustFork(t, saveLoad(t, cp), dismem.ForkOptions{})))
		})
	}
}

// TestSaveDeterministic: encoding one checkpoint twice yields identical
// bytes (sorted maps, canonical field order), so checkpoint files can
// be compared and content-addressed.
func TestSaveDeterministic(t *testing.T) {
	cp := checkpointAt(t, forkOpts(dismem.SyntheticWorkload(400, 2)), 20000)
	var a, b bytes.Buffer
	if err := dismem.SaveCheckpoint(&a, cp); err != nil {
		t.Fatal(err)
	}
	if err := dismem.SaveCheckpoint(&b, cp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of one checkpoint differ")
	}
}

// TestSecondGeneration: a loaded checkpoint's fork can itself be
// checkpointed, saved and loaded, and the grandchild still matches the
// uninterrupted run.
func TestSecondGeneration(t *testing.T) {
	opts := func() dismem.Options { return forkOpts(dismem.SyntheticWorkload(600, 9)) }
	fresh := mustRun(t, mustNew(t, opts()))

	child := mustFork(t, saveLoad(t, checkpointAt(t, opts(), 20000)), dismem.ForkOptions{})
	child.RunUntil(40000)
	cp2, err := child.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "second generation vs fresh", fresh,
		mustRun(t, mustFork(t, saveLoad(t, cp2), dismem.ForkOptions{})))
}

// TestSaveRejectsLiveCode: runs built from live implementations have no
// serialized form and must fail pointedly at save time.
func TestSaveRejectsLiveCode(t *testing.T) {
	wl := dismem.SyntheticWorkload(100, 1)

	sch, err := dismem.ParsePolicy("order=fcfs backfill=easy placer=local")
	if err != nil {
		t.Fatal(err)
	}
	cp := checkpointAt(t, dismem.Options{SchedulerImpl: sch, Workload: wl}, 5000)
	if err := dismem.SaveCheckpoint(&bytes.Buffer{}, cp); err == nil || !strings.Contains(err.Error(), "SchedulerImpl") {
		t.Fatalf("SchedulerImpl save error = %v", err)
	}

	model, err := dismem.ParseModel("linear:0.5")
	if err != nil {
		t.Fatal(err)
	}
	cp = checkpointAt(t, dismem.Options{Policy: "memaware", ModelImpl: model, Workload: wl}, 5000)
	if err := dismem.SaveCheckpoint(&bytes.Buffer{}, cp); err == nil || !strings.Contains(err.Error(), "ModelImpl") {
		t.Fatalf("ModelImpl save error = %v", err)
	}
}

// TestSaveRejectsNonDurableSource: a reader-backed SWF stream forks
// (PR 5) but has no durable cursor; saving its checkpoint must error,
// pointing at the file-backed alternative.
func TestSaveRejectsNonDurableSource(t *testing.T) {
	path := writeTestTrace(t, 300, 11)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := mustNew(t, dismem.Options{
		Policy: "memaware",
		Source: dismem.SWFSource(f, dismem.SWFReadOptions{DefaultMemPerNode: 2048}),
	})
	s.RunUntil(10000)
	cp, err := s.Checkpoint()
	if err != nil {
		// Reader-backed SWF sources may reject checkpointing outright;
		// that is an acceptable (earlier) failure point.
		t.Skipf("reader-backed source rejected checkpoint: %v", err)
	}
	if err := dismem.SaveCheckpoint(&bytes.Buffer{}, cp); err == nil || !strings.Contains(err.Error(), "durable") {
		t.Fatalf("non-durable source save error = %v", err)
	}
}

// TestWriteCheckpointFile covers the atomic file path: write, read
// back, fork to completion, and no temp litter left in the directory.
func TestWriteCheckpointFile(t *testing.T) {
	opts := func() dismem.Options { return forkOpts(dismem.SyntheticWorkload(400, 6)) }
	fresh := mustRun(t, mustNew(t, opts()))

	dir := t.TempDir()
	path := filepath.Join(dir, "run.dmckpt")
	if err := dismem.WriteCheckpointFile(path, checkpointAt(t, opts(), 20000)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.dmckpt" {
		t.Fatalf("directory holds %v, want only run.dmckpt", entries)
	}
	cp, err := dismem.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "file round trip vs fresh", fresh,
		mustRun(t, mustFork(t, cp, dismem.ForkOptions{})))

	if _, err := dismem.ReadCheckpointFile(filepath.Join(dir, "absent.dmckpt")); err == nil {
		t.Fatal("reading a missing checkpoint file succeeded")
	}
}

// writeTestTrace generates a synthetic workload and writes it as an SWF
// file, returning the path.
func writeTestTrace(t *testing.T, jobs int, seed uint64) string {
	t.Helper()
	wl := dismem.SyntheticWorkload(jobs, seed)
	path := filepath.Join(t.TempDir(), "trace.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := workload.WriteSWF(f, wl); err != nil {
		t.Fatal(err)
	}
	return path
}

// workloadLublinCfg builds a small Lublin configuration for tests.
func workloadLublinCfg(jobs int, seed uint64) dismem.LublinConfig {
	return workload.DefaultLublinConfig(jobs, seed, dismem.DefaultMachine().TotalNodes())
}
