// Command dmbench runs the simulator's headline hot-path benchmarks
// (the same bodies bench_test.go exposes to `go test -bench`) and
// records the results as a BENCH_<date>.json file, so the repository
// tracks its own performance trajectory across PRs (DESIGN.md §6,
// EXPERIMENTS.md).
//
// Usage:
//
//	dmbench                     # writes ./BENCH_<today>.json
//	dmbench -out results.json   # explicit output path
//	dmbench -benchtime 5s       # more stable numbers
//	dmbench -stream             # streaming-replay pair (100k + 1M jobs)
//	                            # -> BENCH_<today>_stream.json
//	dmbench -fork               # checkpoint+fork overhead
//	                            # -> BENCH_<today>_fork.json
//	dmbench -serve              # what-if service queries/s + latency
//	                            # -> BENCH_<today>_serve.json
//	dmbench -series             # sampling/series-export overhead
//	                            # -> BENCH_<today>_series.json
//	dmbench -trace              # lifecycle-trace export overhead
//	                            # -> BENCH_<today>_trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dismem/internal/benchkit"
	"dismem/internal/profiling"
)

// entry is one benchmark's recorded result.
type entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// record is the BENCH_<date>.json schema.
type record struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
		benchtime = flag.Duration("benchtime", time.Second, "target run time per benchmark")
		stream    = flag.Bool("stream", false, "run the streaming-replay benchmarks (100k + 1M jobs; minutes of runtime) instead of the headline set, writing BENCH_<date>_stream.json")
		fork      = flag.Bool("fork", false, "run the checkpoint+fork overhead benchmark instead of the headline set, writing BENCH_<date>_fork.json")
		ckptio    = flag.Bool("ckptio", false, "run the durable checkpoint encode/decode benchmarks instead of the headline set, writing BENCH_<date>_ckptio.json")
		srv       = flag.Bool("serve", false, "run the what-if service benchmark (concurrent /v1/whatif queries against a checkpoint ring) instead of the headline set, writing BENCH_<date>_serve.json")
		series    = flag.Bool("series", false, "run the sampling/series-export overhead benchmark instead of the headline set, writing BENCH_<date>_series.json")
		trc       = flag.Bool("trace", false, "run the lifecycle-trace export overhead benchmark instead of the headline set, writing BENCH_<date>_trace.json")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file (inspect with go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an allocation profile (pprof allocs: cumulative sites plus post-GC in-use heap) to this file at exit")
	)
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmbench:", err)
		os.Exit(1)
	}
	flushProfiles := func() {
		if stopProfiling == nil {
			return
		}
		if err := stopProfiling(); err != nil {
			fmt.Fprintln(os.Stderr, "dmbench:", err)
		}
		stopProfiling = nil
	}
	defer flushProfiles()

	type bench struct {
		name string
		fn   func(*testing.B)
	}
	benches := []bench{
		{"MachineAllocRelease", benchkit.MachineAllocRelease},
		{"MemAwarePlan", benchkit.MemAwarePlan},
		{"Simulation", benchkit.Simulation},
		// BatchSimulation rides along as the amortised reference: the
		// jobs/s gap to Simulation is what the Runner's machine and
		// pool reuse saves per run in a batch or sweep.
		{"BatchSimulation", benchkit.BatchSimulation},
		{"ScenarioSimulation", benchkit.ScenarioSimulation},
	}
	exclusive := 0
	for _, f := range []bool{*stream, *fork, *ckptio, *srv, *series, *trc} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		fmt.Fprintln(os.Stderr, "dmbench: choose one of -stream, -fork, -ckptio, -serve, -series and -trace")
		os.Exit(1)
	}
	suffix := ""
	switch {
	case *trc:
		suffix = "_trace"
		benches = []bench{
			{"TraceSimulation", benchkit.TraceSimulation},
			// Simulation rides along as the nil-sink reference: the jobs/s
			// gap between the two is the whole cost of streaming the
			// lifecycle trace as JSONL.
			{"Simulation", benchkit.Simulation},
		}
	case *series:
		suffix = "_series"
		benches = []bench{
			{"SeriesSampling", benchkit.SeriesSampling},
			// Simulation rides along as the sampling-off reference: the
			// jobs/s gap between the two is the whole observability
			// price at the benchmark's 600 s sampling period.
			{"Simulation", benchkit.Simulation},
		}
	case *srv:
		suffix = "_serve"
		benches = []bench{
			{"ServeQueries", benchkit.ServeQueries},
			// CheckpointFork rides along as the lower bound: a query's
			// floor is one fork plus the divergent-tail replay, and the
			// gap between the two is the serving layer's own overhead.
			{"CheckpointFork", benchkit.CheckpointFork},
		}
	case *ckptio:
		suffix = "_ckptio"
		benches = []bench{
			{"CheckpointEncode", benchkit.CheckpointEncode},
			{"CheckpointDecode", benchkit.CheckpointDecode},
			// CheckpointFork rides along as the in-memory reference: the
			// durable envelope's cost is meaningful relative to the pure
			// in-process snapshot.
			{"CheckpointFork", benchkit.CheckpointFork},
		}
	case *stream:
		suffix = "_stream"
		benches = []bench{
			{"StreamingReplay100k", benchkit.StreamingReplay100k},
			{"StreamingReplay1M", benchkit.StreamingReplay1M},
		}
	case *fork:
		suffix = "_fork"
		benches = []bench{
			{"CheckpointFork", benchkit.CheckpointFork},
			// Simulation rides along as the same-process reference: the
			// fork overhead is meaningful relative to what simulating
			// the prefix from scratch would cost.
			{"Simulation", benchkit.Simulation},
		}
	}

	rec := record{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s%s.json", rec.Date, suffix)
	}

	// testing.Benchmark calibrates b.N against the test.benchtime flag
	// registered by testing.Init (see init below).
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "dmbench:", err)
		os.Exit(1)
	}

	for _, bm := range benches {
		res := testing.Benchmark(bm.fn)
		e := entry{
			Name:        bm.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if len(res.Extra) > 0 {
			e.Extra = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				e.Extra[k] = v
			}
		}
		rec.Benchmarks = append(rec.Benchmarks, e)
		fmt.Printf("%-22s %12d ops  %12.1f ns/op  %8d B/op  %6d allocs/op",
			e.Name, e.Iterations, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
		for k, v := range e.Extra {
			fmt.Printf("  %.0f %s", v, k)
		}
		fmt.Println()
	}

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmbench:", err)
		flushProfiles()
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dmbench:", err)
		flushProfiles()
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

func init() {
	// Register the testing package's flags (test.benchtime et al) so
	// testing.Benchmark honours the -benchtime mapping above.
	testing.Init()
}
