// Command dmsched runs one batch-scheduling simulation and prints the
// resulting report.
//
// The workload is either synthetic (default) or an SWF trace given with
// -swf. The machine, policy and memory model are set with flags:
//
//	dmsched -policy memaware -local 64 -pool 4096 -model linear:0.5
//	dmsched -swf trace.swf -node-cores 32 -policy easy-oblivious
//
// Beyond the registered policy names, -spec accepts a composable
// policy description, and -progress streams live simulation state to
// stderr while the run is in flight:
//
//	dmsched -spec "order=sjf backfill=easy placer=memaware cap=3" -progress 6h
//
// -scenario perturbs the run with a deterministic intervention
// timeline (outages, pool resizes, penalty shifts, surges; see
// dismem.ParseScenario for the grammar):
//
//	dmsched -scenario "at=21600 down rack=2; at=64800 up rack=2"
//
// For archive-scale traces, -swf-stream replays the trace with memory
// bounded by live simulation state (not trace length), and
// -records-out streams per-job records to a JSONL/CSV file instead of
// retaining them (report percentiles become P² estimates beyond the
// exact-buffer threshold):
//
//	dmsched -swf trace.swf -swf-stream -records-out records.jsonl
//
// -checkpoint-at freezes the run at a virtual instant and replays a
// forked future from it — identical by default (a determinism check),
// or under a different intervention tail with -fork-scenario:
//
//	dmsched -checkpoint-at 43200 -fork-scenario "at=50000 down rack=2; at=64800 up rack=2"
//
// Long runs are interruptible: with -ckpt-save, SIGINT/SIGTERM freezes
// the run, writes a durable versioned checkpoint file (atomic
// temp+rename), prints the partial report, and exits with status 3.
// -ckpt-load resumes such a file and completes the run — bit-identical
// to the uninterrupted run:
//
//	dmsched -jobs 50000 -ckpt-save run.dmckpt     # ^C to interrupt
//	dmsched -ckpt-load run.dmckpt                 # finish the run
//
// -series-out streams the utilization time series (queue depth,
// running jobs, memory and pool usage per sampling tick) to a
// JSONL/CSV file, and -metrics-addr serves the same live state as a
// Prometheus text-format /metrics endpoint while the run is in
// flight. The sampling tick chain is part of the checkpointed state,
// so series files compose across -ckpt-save/-ckpt-load: the resumed
// run's series is exactly the suffix of an uninterrupted run's.
//
//	dmsched -jobs 50000 -series-out util.jsonl -metrics-addr :9090
//
// -trace-out streams the per-job lifecycle trace (submit, dispatch
// with placement detail, terminate with reason, restarts, scenario
// interventions) to a file; -trace-format picks JSONL (default) or
// Chrome trace-event JSON loadable in Perfetto / chrome://tracing.
// Tracing is event-driven — it needs no sampling period. The JSONL
// form composes across -ckpt-save/-ckpt-load exactly like the series:
// an interrupted run's trace plus the resumed run's concatenate to the
// uninterrupted run's file, byte for byte.
//
//	dmsched -jobs 50000 -trace-out trace.json -trace-format perfetto
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dismem"
	"dismem/internal/config"
	"dismem/internal/profiling"
	"dismem/internal/report"
	"dismem/internal/telemetry"
	"dismem/internal/workload"
)

// exitInterrupted is the distinct status for a resumable interruption
// (signal mid-run), as opposed to 1 (failure) and 2 (bad usage).
const exitInterrupted = 3

func main() {
	var (
		policy    = flag.String("policy", "memaware", "scheduling policy: "+strings.Join(dismem.Policies(), ", "))
		specFlag  = flag.String("spec", "", `composable policy spec, e.g. "order=sjf placer=memaware cap=3" (overrides -policy)`)
		scenFlag  = flag.String("scenario", "", `scenario timeline, e.g. "at=3600 down rack=2; at=7200 up rack=2; from=0 period=86400 amp=0.5 diurnal"`)
		progress  = flag.Duration("progress", 0, "print live progress to stderr every given span of simulated time (e.g. 6h; 0 = off)")
		model     = flag.String("model", "linear:0.5", "memory model spec (linear:b | step:b0,b | bandwidth:b,g)")
		topology  = flag.String("topology", "rack", "pool topology: none | rack | global")
		racks     = flag.Int("racks", 16, "racks")
		nodes     = flag.Int("nodes", 16, "nodes per rack")
		cores     = flag.Int("cores", 32, "cores per node")
		localGiB  = flag.Int64("local", 64, "local DRAM per node (GiB)")
		poolGiB   = flag.Int64("pool", 4096, "pool capacity (GiB; per rack, or total for -topology global)")
		fabric    = flag.Float64("fabric", 64, "fabric bandwidth per pool (GiB/s)")
		jobs      = flag.Int("jobs", 5000, "synthetic workload size")
		seed      = flag.Uint64("seed", 1, "synthetic workload seed")
		swf       = flag.String("swf", "", "SWF trace file (overrides synthetic workload)")
		swfStream = flag.Bool("swf-stream", false, "stream the -swf trace instead of loading it: memory stays bounded by live simulation state, not trace length (requires a submit-sorted trace; implies bounded metrics recording, so report percentiles are streaming estimates: exact up to 1024 jobs, P² beyond)")
		recordOut = flag.String("records-out", "", "stream per-job records to this file (.csv for CSV, else JSONL) with bounded metrics recording; report percentiles become streaming estimates (exact up to 1024 jobs, P² beyond)")
		cpAt      = flag.Int64("checkpoint-at", 0, "virtual time (seconds) to checkpoint the run at: the run is frozen there, completed, and a forked future is replayed from the same instant and printed after the original report (0 = off; not with -swf-stream, whose source cannot fork)")
		forkScen  = flag.String("fork-scenario", "", `scenario timeline for the forked future (requires -checkpoint-at): replaces the interventions remaining after the checkpoint, e.g. "at=50000 down rack=2; at=60000 up rack=2"`)
		swfCores  = flag.Int("node-cores", 0, "SWF import: processors per node (0 = processors are nodes)")
		strict    = flag.Bool("strict-kill", false, "kill at the raw user estimate (no dilation extension)")
		ckptSave  = flag.String("ckpt-save", "", "on SIGINT/SIGTERM, freeze the run, write a durable checkpoint to this file, and exit with status 3 (resume with -ckpt-load)")
		ckptLoad  = flag.String("ckpt-load", "", "resume a run from a checkpoint file written by -ckpt-save; workload, machine and policy flags are ignored (the checkpoint carries them)")
		seriesOut = flag.String("series-out", "", "stream the utilization series to this file (.csv for CSV, else JSONL), one row per sampling tick; composes with -ckpt-save/-ckpt-load (the resumed series is the clean run's suffix)")
		traceOut  = flag.String("trace-out", "", "stream the per-job lifecycle trace to this file; JSONL composes with -ckpt-save/-ckpt-load (the resumed trace is the clean run's suffix)")
		traceFmt  = flag.String("trace-format", "jsonl", "trace encoding for -trace-out: jsonl | perfetto (Chrome trace-event JSON for Perfetto / chrome://tracing)")
		seriesEv  = flag.Duration("series-every", 0, "sampling period for -series-out and -metrics-addr in simulated time (default 1h; on -ckpt-load, 0 keeps the checkpointed period and phase)")
		metrAddr  = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text format) with live run state on this address while the run is in flight")
		verbose   = flag.Bool("v", false, "also print workload summary")
		cfgPath   = flag.String("config", "", "JSON experiment config (overrides the flags above)")
		writeCfg  = flag.Bool("write-config", false, "print a starter config JSON and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an allocation profile (pprof allocs: cumulative sites plus post-GC in-use heap) to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfiling = stopProf
	defer flushProfiles()

	if *writeCfg {
		def := config.Default()
		if err := def.Write(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *forkScen != "" && *cpAt <= 0 {
		fatalf("-fork-scenario requires -checkpoint-at")
	}
	if *seriesEv > 0 && *seriesOut == "" && *metrAddr == "" {
		fatalf("-series-every requires -series-out or -metrics-addr")
	}
	if *traceFmt != "jsonl" && *traceFmt != "perfetto" {
		fatalf("-trace-format %q: want jsonl or perfetto", *traceFmt)
	}
	if *ckptSave != "" && *traceOut != "" && *traceFmt == "perfetto" {
		// A perfetto file is one JSON document, not a line stream: an
		// interrupted file and a resumed file are each valid on their
		// own but do not concatenate. Only JSONL traces compose.
		fatalf("-ckpt-save composes only with -trace-format jsonl (a perfetto trace is a single JSON document and cannot be concatenated across an interrupt)")
	}
	if *ckptSave != "" {
		if *swfStream {
			fatalf("-ckpt-save cannot be combined with -swf-stream (a streamed trace source cannot checkpoint)")
		}
		if *specFlag != "" {
			fatalf("-ckpt-save cannot be combined with -spec (a live scheduler instance cannot be serialized; use -policy)")
		}
		if *recordOut != "" {
			fatalf("-ckpt-save cannot be combined with -records-out (a streamed record sink cannot be carried across a checkpoint)")
		}
		// -series-out IS allowed with -ckpt-save: the sampling tick
		// chain is checkpointed, so an interrupted series file plus the
		// resumed run's file concatenate to the uninterrupted series.
		if *cfgPath != "" || *cpAt > 0 {
			fatalf("-ckpt-save cannot be combined with -config or -checkpoint-at")
		}
	}
	tele := newTelemetry(*progress, *seriesEv, *seriesOut, *metrAddr, *traceOut, *traceFmt)
	if *ckptLoad != "" {
		if *swf != "" || *specFlag != "" || *scenFlag != "" || *cfgPath != "" || *cpAt > 0 || *swfStream || *recordOut != "" {
			fatalf("-ckpt-load resumes a self-contained run; it only combines with -progress, -series-out, -series-every, -metrics-addr, -trace-out, -trace-format, -v and -ckpt-save")
		}
		runFromCheckpoint(*ckptLoad, *ckptSave, tele)
		return
	}
	if *cpAt > 0 && *swfStream {
		// Fail in milliseconds, not after simulating the whole prefix:
		// a streamed SWF source cannot fork (see source.Forkable).
		fatalf("-checkpoint-at cannot be combined with -swf-stream (a streamed trace source cannot fork; load the trace with -swf alone)")
	}
	// Parse the fork scenario up front for the same reason: a grammar
	// typo or an unsupported modulation must not cost a full prefix
	// simulation before erroring.
	var forkSc *dismem.Scenario
	if *forkScen != "" {
		var err error
		forkSc, err = dismem.ParseScenario(*forkScen)
		if err != nil {
			fatalf("-fork-scenario: %v", err)
		}
		if forkSc.Modulates() {
			fatalf("-fork-scenario must not modulate arrivals (surge/diurnal warp submit times before a run starts and cannot be re-applied at a fork)")
		}
	}
	if *cfgPath != "" {
		if *specFlag != "" {
			fatalf("-spec cannot be combined with -config (set the policy in the config file)")
		}
		if *scenFlag != "" {
			fatalf("-scenario cannot be combined with -config")
		}
		if *cpAt > 0 {
			fatalf("-checkpoint-at cannot be combined with -config")
		}
		runFromConfig(*cfgPath, *verbose, tele)
		return
	}

	mc := dismem.DefaultMachine()
	mc.Racks, mc.NodesPerRack, mc.CoresPerNode = *racks, *nodes, *cores
	mc.LocalMemMiB = *localGiB * 1024
	mc.PoolMiB = *poolGiB * 1024
	mc.FabricGiBps = *fabric
	switch *topology {
	case "none":
		mc.Topology = dismem.TopologyNone
		mc.PoolMiB = 0
	case "rack":
		mc.Topology = dismem.TopologyRack
	case "global":
		mc.Topology = dismem.TopologyGlobal
	default:
		fatalf("unknown topology %q", *topology)
	}

	var wl *dismem.Workload
	var src dismem.Source
	if *swf != "" {
		f, err := os.Open(*swf)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		swfOpts := workload.SWFReadOptions{
			NodeCores:         *swfCores,
			DefaultMemPerNode: mc.LocalMemMiB / 2,
		}
		if *swfStream {
			// Bounded-memory replay: jobs decode lazily as the clock
			// reaches them; nothing is materialised (so no upfront
			// skipped-record count and no -v summary).
			src = dismem.SWFSource(f, swfOpts)
		} else {
			var skipped int
			wl, skipped, err = workload.ReadSWF(f, swfOpts)
			if err != nil {
				fatalf("reading %s: %v", *swf, err)
			}
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "note: skipped %d unusable SWF records\n", skipped)
			}
		}
	} else {
		if *swfStream {
			fatalf("-swf-stream requires -swf")
		}
		var err error
		wl, err = dismem.GenerateWorkload(dismem.DefaultGen(*jobs, *seed, mc))
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *verbose {
		if wl == nil {
			fmt.Fprintln(os.Stderr, "note: -v workload summary unavailable when streaming (-swf-stream)")
		} else {
			fmt.Print(workload.Summarize(wl, mc.LocalMemMiB))
			fmt.Println()
		}
	}

	label := *policy
	opts := dismem.Options{
		Machine:    mc,
		Policy:     *policy,
		Model:      *model,
		Workload:   wl,
		Source:     src,
		StrictKill: *strict,
	}
	if *recordOut != "" {
		f, err := os.Create(*recordOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *recordOut, err)
			}
		}()
		if strings.HasSuffix(*recordOut, ".csv") {
			opts.RecordSink = dismem.NewCSVSink(f)
		} else {
			opts.RecordSink = dismem.NewJSONLSink(f)
		}
	} else if *swfStream {
		// Streaming a trace only to retain every record would defeat
		// the point: without -records-out, drop records and keep the
		// whole run flat-memory.
		opts.RecordSink = dismem.DiscardRecords
	}
	if *scenFlag != "" {
		sc, err := dismem.ParseScenario(*scenFlag)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Scenario = sc
	}
	if *specFlag != "" {
		s, err := dismem.ParsePolicy(*specFlag)
		if err != nil {
			fatalf("%v", err)
		}
		opts.SchedulerImpl = s
		label = s.Name()
	}
	if *cpAt > 0 {
		runCheckpointed(label, opts, tele, *cpAt, forkSc, *recordOut, *seriesOut, *traceOut, *traceFmt)
		return
	}
	h, err := dismem.New(tele.apply(opts))
	if err != nil {
		fatalf("%v", err)
	}
	driveAndReport(h, label, *ckptSave)
}

// driveAndReport advances the simulation to completion from the main
// goroutine, handling SIGINT/SIGTERM gracefully: the run is truncated
// at a clean event boundary, optionally frozen to a durable checkpoint
// file, reported as a prefix, and the process exits with status 3.
func driveAndReport(h *dismem.Simulation, label, ckptSave string) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	interrupted := drive(ctx, h, ckptSave)
	res, err := h.Result()
	if err != nil {
		fatalf("%v", err)
	}
	printReport(label, res)
	if interrupted {
		flushProfiles()
		os.Exit(exitInterrupted)
	}
}

// drive runs the simulation in bounded chunks of virtual time, checking
// for cancellation between chunks so an interrupt is acted on at an
// event boundary on the main goroutine (never a cross-goroutine Stop
// racing the event loop). On interruption it writes the requested
// checkpoint before truncating, so the saved state is exactly the
// reported prefix.
func drive(ctx context.Context, h *dismem.Simulation, ckptSave string) bool {
	const chunk = 3600 // virtual seconds between interrupt checks
	for !h.Done() {
		if ctx.Err() != nil {
			if ckptSave != "" {
				cp, err := h.Checkpoint()
				if err != nil {
					fatalf("checkpoint at t=%d: %v", h.Now(), err)
				}
				if err := dismem.WriteCheckpointFile(ckptSave, cp); err != nil {
					fatalf("%v", err)
				}
				fmt.Fprintf(os.Stderr, "dmsched: interrupted at t=%d s; resume with -ckpt-load %s\n", h.Now(), ckptSave)
			} else {
				fmt.Fprintf(os.Stderr, "dmsched: interrupted at t=%d s (no -ckpt-save; reporting the partial run)\n", h.Now())
			}
			h.Stop()
			return true
		}
		h.RunUntil(h.Now() + chunk)
	}
	return false
}

// runFromCheckpoint resumes a durable checkpoint file and completes the
// run — or freezes it again on a further interrupt when ckptSave is
// set (checkpoints chain across any number of interruptions). The
// sampling tick chain is part of the checkpointed state, so with an
// equal (or unset) period the resumed run's -series-out file is
// exactly the suffix the uninterrupted run would have produced after
// the interrupt instant; a different explicit period restarts the
// chain fresh at the resume instant. The -trace-out file likewise
// holds exactly the clean run's trace suffix (tracing is event-driven
// and needs no period at all).
func runFromCheckpoint(path, ckptSave string, tele *liveTelemetry) {
	cp, err := dismem.ReadCheckpointFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	fo := dismem.ForkOptions{
		Observer: tele.observer,
		// 0 keeps the checkpointed period and phase (the series
		// suffix-composition contract); a nonzero equal value is the
		// same, a different one re-arms the chain at the resume
		// instant.
		SampleEvery: tele.sampleEvery,
		SeriesSink:  tele.sink,
		TraceSink:   tele.trace,
	}
	if fo.SampleEvery == 0 && tele.wantsSampling() && cp.SampleEvery() == 0 {
		// The checkpointed run never sampled, so there is no phase to
		// preserve: arm a fresh chain at the default period rather
		// than silently producing an empty series.
		fo.SampleEvery = defaultSampleEvery
	}
	h, err := dismem.Fork(cp, fo)
	if err != nil {
		fatalf("%v", err)
	}
	driveAndReport(h, "resumed:"+filepath.Base(path), ckptSave)
}

// runCheckpointed freezes the run at virtual time at, completes the
// original, then replays a forked future from the same instant —
// under forkSc's intervention tail when given, otherwise identical:
// both printed reports must match, which the CI fork-determinism
// smoke checks. The sampling tick chain is checkpointed state, and the
// fork is re-armed at the same period, so the reports match even with
// -progress/-series-out active — the fork's samples stay in phase
// with the original's. With -records-out (-series-out, -trace-out),
// the forked run's records (series, trace) stream to a sibling
// <path>.fork file (the original's sink cannot be shared across runs).
func runCheckpointed(label string, opts dismem.Options, tele *liveTelemetry, at int64, forkSc *dismem.Scenario, recordOut, seriesOut, traceOut, traceFmt string) {
	opts = tele.apply(opts)
	h, err := dismem.New(opts)
	if err != nil {
		fatalf("%v", err)
	}
	h.RunUntil(at)
	cp, err := h.Checkpoint()
	if err != nil {
		fatalf("checkpoint at t=%d: %v", at, err)
	}
	res, err := h.Run()
	if err != nil {
		fatalf("%v", err)
	}
	printReport(label, res)

	// The fork gets the same observer (observers are never carried
	// across a checkpoint; see dismem.ForkOptions), the same sampling
	// period (equal period = in-phase continuation of the checkpointed
	// tick chain), and its own sink files.
	fo := dismem.ForkOptions{Observer: opts.Observer, SampleEvery: opts.SampleEvery, Scenario: forkSc}
	if recordOut != "" {
		forkOut := recordOut + ".fork"
		f, err := os.Create(forkOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", forkOut, err)
			}
		}()
		if strings.HasSuffix(recordOut, ".csv") {
			fo.RecordSink = dismem.NewCSVSink(f)
		} else {
			fo.RecordSink = dismem.NewJSONLSink(f)
		}
		fmt.Fprintf(os.Stderr, "note: forked run records stream to %s\n", forkOut)
	}
	if seriesOut != "" {
		forkOut := seriesOut + ".fork"
		fo.SeriesSink = openSeriesSink(forkOut)
		fmt.Fprintf(os.Stderr, "note: forked run series streams to %s\n", forkOut)
	}
	if traceOut != "" {
		forkOut := traceOut + ".fork"
		fo.TraceSink = openTraceSink(forkOut, traceFmt)
		fmt.Fprintf(os.Stderr, "note: forked run trace streams to %s\n", forkOut)
	}
	fork, err := dismem.Fork(cp, fo)
	if err != nil {
		fatalf("fork: %v", err)
	}
	fres, err := fork.Run()
	if err != nil {
		fatalf("fork: %v", err)
	}
	fmt.Printf("--- fork at t=%d ---\n", at)
	printReport(label, fres)
}

// defaultSampleEvery is the sampling period (simulated seconds) used
// when -series-out or -metrics-addr need ticks but no explicit period
// was given via -series-every or -progress.
const defaultSampleEvery = 3600

// liveTelemetry bundles the consumers of the engine's observation
// hooks — the -progress printer, the -series-out sink and the
// -metrics-addr gauges on the sampling clock, plus the event-driven
// -trace-out sink — resolved from their flags once and wired
// identically into every run path.
type liveTelemetry struct {
	sampleEvery int64             // explicit period from flags (0 = none given)
	observer    dismem.Observer   // progress printer and/or gauge mirror (nil = neither)
	sink        dismem.SeriesSink // -series-out sink (nil = none)
	trace       dismem.TraceSink  // -trace-out sink (nil = none; needs no sampling)
}

// newTelemetry resolves the observation flags. It is also the flag
// validator: -progress and -series-every drive the same clock, so
// disagreeing periods are a fatal usage error, not a silent pick.
func newTelemetry(progress, seriesEv time.Duration, seriesOut, metrAddr, traceOut, traceFmt string) *liveTelemetry {
	prog := periodSeconds(progress)
	ser := periodSeconds(seriesEv)
	if prog > 0 && ser > 0 && prog != ser {
		fatalf("-progress %v and -series-every %v disagree; the run has a single sampling clock, so pass equal periods (or drop one)", progress, seriesEv)
	}
	t := &liveTelemetry{sampleEvery: prog}
	if ser > 0 {
		t.sampleEvery = ser
	}
	var obs []dismem.Observer
	if prog > 0 {
		obs = append(obs, progressPrinter{})
	}
	if metrAddr != "" {
		g := telemetry.NewGaugeSet()
		startMetricsServer(metrAddr, g)
		obs = append(obs, &gaugeObserver{g: g})
	}
	switch len(obs) {
	case 0:
	case 1:
		t.observer = obs[0]
	default:
		t.observer = fanObserver{targets: obs}
	}
	if seriesOut != "" {
		t.sink = openSeriesSink(seriesOut)
	}
	if traceOut != "" {
		t.trace = openTraceSink(traceOut, traceFmt)
	}
	return t
}

// periodSeconds converts a duration flag to whole simulated seconds;
// sub-second values still mean "sample" (clamped up to 1s).
func periodSeconds(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	if s := int64(d / time.Second); s >= 1 {
		return s
	}
	return 1
}

// wantsSampling reports whether any consumer needs the sampling tick
// chain armed. The trace sink deliberately does not count: tracing is
// event-driven and works with sampling off entirely.
func (t *liveTelemetry) wantsSampling() bool {
	return t.observer != nil || t.sink != nil
}

// apply wires the resolved consumers into a fresh run's options,
// defaulting the period when a consumer needs ticks and no explicit
// period was given.
func (t *liveTelemetry) apply(opts dismem.Options) dismem.Options {
	opts.Observer = t.observer
	opts.SeriesSink = t.sink
	opts.TraceSink = t.trace
	opts.SampleEvery = t.sampleEvery
	if opts.SampleEvery == 0 && t.wantsSampling() {
		opts.SampleEvery = defaultSampleEvery
	}
	return opts
}

// fanObserver fans each sample out to several consumers in order.
type fanObserver struct {
	dismem.NopObserver
	targets []dismem.Observer
}

// OnSample implements dismem.Observer.
func (f fanObserver) OnSample(s dismem.Sample) {
	for _, o := range f.targets {
		o.OnSample(s)
	}
}

// gaugeObserver mirrors each sample into the /metrics gauges, with the
// same metric names dmserve exports for its baseline.
type gaugeObserver struct {
	dismem.NopObserver
	g *telemetry.GaugeSet
}

// OnSample implements dismem.Observer.
func (o *gaugeObserver) OnSample(s dismem.Sample) {
	g := o.g
	g.Set("dismem_now_seconds", "virtual clock of the run", nil, float64(s.Now))
	g.Set("dismem_queue_depth", "jobs waiting in the queue", nil, float64(s.QueueDepth))
	g.Set("dismem_running_jobs", "jobs running on the machine", nil, float64(s.Running))
	g.Set("dismem_done_jobs", "jobs finished", nil, float64(s.Done))
	g.Set("dismem_events_total", "DES events fired", nil, float64(s.Events))
	g.Set("dismem_busy_nodes", "nodes running at least one job", nil, float64(s.Usage.BusyNodes))
	g.Set("dismem_used_local_mib", "node-local memory in use", nil, float64(s.Usage.UsedLocal))
	g.Set("dismem_used_pool_mib", "pooled memory in use", nil, float64(s.Usage.UsedPool))
	g.Set("dismem_max_pool_util", "highest per-pool utilization", nil, s.Usage.MaxPoolUtil)
	g.Set("dismem_max_congestion", "highest per-pool fabric congestion ratio", nil, s.Usage.MaxCongest)
	for _, p := range s.Pools {
		lbl := map[string]string{"pool": strconv.Itoa(p.ID)}
		g.Set("dismem_pool_used_bytes", "pooled memory in use, per pool", lbl, float64(p.UsedMiB)*1024*1024)
		g.Set("dismem_pool_capacity_bytes", "pool capacity, per pool", lbl, float64(p.CapacityMiB)*1024*1024)
	}
	for rk, free := range s.RackFree {
		g.Set("dismem_rack_free_nodes", "available (up, idle) nodes per rack", map[string]string{"rack": strconv.Itoa(rk)}, float64(free))
	}
}

// startMetricsServer serves GET /metrics on addr for the lifetime of
// the process, printing the bound address to stderr (so ":0" is
// usable in scripts and tests).
func startMetricsServer(addr string, sources ...telemetry.Source) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("-metrics-addr: %v", err)
	}
	fmt.Fprintf(os.Stderr, "dmsched: serving http://%s/metrics\n", ln.Addr())
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(sources...))
	go func() {
		if err := (&http.Server{Handler: mux}).Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "dmsched: metrics server: %v\n", err)
		}
	}()
}

// fileSeriesSink closes the underlying file when the engine closes the
// sink (the engine closes it on every terminal path, including an
// interrupted run), so the series is fully on disk when the run
// reports.
type fileSeriesSink struct {
	dismem.SeriesSink
	f *os.File
}

// Close implements dismem.SeriesSink.
func (s *fileSeriesSink) Close() error {
	err := s.SeriesSink.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// openSeriesSink creates the -series-out file and picks the encoding
// by suffix (.csv = CSV, anything else = JSONL).
func openSeriesSink(path string) dismem.SeriesSink {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if strings.HasSuffix(path, ".csv") {
		return &fileSeriesSink{SeriesSink: dismem.NewCSVSeriesSink(f), f: f}
	}
	return &fileSeriesSink{SeriesSink: dismem.NewJSONLSeriesSink(f), f: f}
}

// fileTraceSink closes the underlying file when the engine closes the
// sink — on every terminal path, including an interrupted run — so
// the trace is fully on disk when the run reports.
type fileTraceSink struct {
	dismem.TraceSink
	f *os.File
}

// Close implements dismem.TraceSink.
func (s *fileTraceSink) Close() error {
	err := s.TraceSink.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// openTraceSink creates the -trace-out file in the requested encoding
// (format is validated at flag-parse time).
func openTraceSink(path, format string) dismem.TraceSink {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if format == "perfetto" {
		return &fileTraceSink{TraceSink: dismem.NewPerfettoTraceSink(f), f: f}
	}
	return &fileTraceSink{TraceSink: dismem.NewJSONLTraceSink(f), f: f}
}

// progressPrinter streams one status line per sample tick.
type progressPrinter struct{ dismem.NopObserver }

// OnSample implements dismem.Observer.
func (progressPrinter) OnSample(s dismem.Sample) {
	fmt.Fprintf(os.Stderr,
		"t=%7.1fh  queued %4d  running %4d  done %6d  busy %3d nodes  pool %5.1f%%  %d events\n",
		float64(s.Now)/3600, s.QueueDepth, s.Running, s.Done,
		s.Usage.BusyNodes, 100*s.Usage.MaxPoolUtil, s.Events)
}

// runFromConfig executes a JSON-configured experiment.
func runFromConfig(path string, verbose bool, tele *liveTelemetry) {
	exp, err := config.Load(path)
	if err != nil {
		fatalf("%v", err)
	}
	mc, err := exp.MachineConfig()
	if err != nil {
		fatalf("%v", err)
	}
	var wl *dismem.Workload
	if exp.Workload.SWF != "" {
		f, err := os.Open(exp.Workload.SWF)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		wl, _, err = workload.ReadSWF(f, workload.SWFReadOptions{
			NodeCores:         exp.Workload.NodeCores,
			DefaultMemPerNode: mc.LocalMemMiB / 2,
		})
		if err != nil {
			fatalf("reading %s: %v", exp.Workload.SWF, err)
		}
	} else {
		gen := dismem.DefaultGen(exp.Workload.Jobs, exp.Workload.Seed, mc)
		if exp.Workload.EstimateAccuracy > 0 {
			gen.EstimateAccuracy = exp.Workload.EstimateAccuracy
		}
		if exp.Workload.LargeMemFraction > 0 {
			gen.LargeMemFraction = exp.Workload.LargeMemFraction
		}
		wl, err = dismem.GenerateWorkload(gen)
		if err != nil {
			fatalf("%v", err)
		}
	}
	if verbose {
		fmt.Print(workload.Summarize(wl, mc.LocalMemMiB))
		fmt.Println()
	}
	h, err := dismem.New(tele.apply(dismem.Options{
		Machine:    mc,
		Policy:     exp.Policy,
		Model:      exp.Model,
		Workload:   wl,
		StrictKill: exp.StrictKill,
		Failures:   exp.FailureConfig(),
	}))
	if err != nil {
		fatalf("%v", err)
	}
	driveAndReport(h, exp.Policy, "")
}

func printReport(policy string, res *dismem.Result) {
	fmt.Print(report.Format(policy, res))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmsched: "+format+"\n", args...)
	flushProfiles()
	os.Exit(1)
}

// stopProfiling finalises -cpuprofile/-memprofile; flushProfiles runs
// it at most once, so the deferred call and the explicit calls ahead
// of os.Exit compose.
var stopProfiling func() error

func flushProfiles() {
	if stopProfiling == nil {
		return
	}
	if err := stopProfiling(); err != nil {
		fmt.Fprintf(os.Stderr, "dmsched: %v\n", err)
	}
	stopProfiling = nil
}
