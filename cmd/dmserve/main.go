// Command dmserve is the long-lived what-if simulation service: it
// drives one baseline run, maintains a rolling ring of durable
// checkpoints in -ckpt-dir, and answers HTTP what-if queries by forking
// the nearest checkpoint at or before the requested instant
// (internal/serve, DESIGN.md §10).
//
//	dmserve -addr :8080 -jobs 20000 -seed 7 -ckpt-dir /var/lib/dmserve \
//	        -ckpt-every 21600 -ckpt-keep 16
//
//	curl localhost:8080/v1/status
//	curl localhost:8080/v1/checkpoints
//	curl localhost:8080/metrics
//	curl 'localhost:8080/v1/trace?from=3600&to=86400'
//	curl -d '{"at":43200,"scenario":"at=50000 down rack=2; at=86400 up rack=2"}' \
//	     localhost:8080/v1/whatif
//
// With -trace-ring N, the newest N baseline lifecycle-trace events
// (submits, dispatches with placement, terminations with reason,
// restarts, interventions, ring-checkpoint boundary marks) are kept in
// a bounded in-memory ring and served on GET /v1/trace, windowed by
// virtual time with ?from= and ?to=.
//
// GET /metrics serves the live baseline gauges plus the service
// counters in Prometheus text format; with -store, the drained
// baseline's final report is archived to a run store (query it with
// dmstore).
//
// SIGINT/SIGTERM stops the drive loop at a clean event boundary, writes
// a final ring checkpoint, and exits with status 3 (the resumable-
// interruption convention shared with dmsched -ckpt-save). Restarting
// with the same -ckpt-dir resumes the baseline bit-identically from the
// newest ring checkpoint; workload, machine and policy flags are then
// ignored (the checkpoint carries them).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dismem"
	"dismem/internal/runstore"
	"dismem/internal/serve"
	"dismem/internal/workload"
)

// exitInterrupted is the distinct status for a resumable interruption:
// state persisted, restart with the same -ckpt-dir to continue.
const exitInterrupted = 3

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		policy    = flag.String("policy", "memaware", "scheduling policy: "+strings.Join(dismem.Policies(), ", "))
		specFlag  = flag.String("spec", "", `composable policy spec, e.g. "order=sjf backfill=easy placer=memaware" (overrides -policy)`)
		scenFlag  = flag.String("scenario", "", `baseline scenario timeline, e.g. "at=3600 down rack=2; at=7200 up rack=2"`)
		model     = flag.String("model", "linear:0.5", "memory model spec (linear:b | step:b0,b | bandwidth:b,g)")
		topology  = flag.String("topology", "rack", "pool topology: none | rack | global")
		racks     = flag.Int("racks", 16, "racks")
		nodes     = flag.Int("nodes", 16, "nodes per rack")
		cores     = flag.Int("cores", 32, "cores per node")
		localGiB  = flag.Int64("local", 64, "local DRAM per node (GiB)")
		poolGiB   = flag.Int64("pool", 4096, "pool capacity (GiB; per rack, or total for -topology global)")
		fabric    = flag.Float64("fabric", 64, "fabric bandwidth per pool (GiB/s)")
		jobs      = flag.Int("jobs", 5000, "synthetic workload size")
		seed      = flag.Uint64("seed", 1, "synthetic workload seed")
		swf       = flag.String("swf", "", "SWF trace file (overrides synthetic workload; loaded, not streamed — a checkpointable source is required)")
		swfCores  = flag.Int("node-cores", 0, "SWF import: processors per node (0 = processors are nodes)")
		strict    = flag.Bool("strict-kill", false, "kill at the raw user estimate (no dilation extension)")
		mtbf      = flag.Int64("mtbf", 0, "failure injection: mean time between failures per node (seconds; 0 = off). Required for reseed_failures what-if queries")
		repair    = flag.Int64("repair", 7200, "failure injection: node repair time (seconds)")
		failSeed  = flag.Uint64("failure-seed", 1, "failure injection RNG seed")
		ckptDir   = flag.String("ckpt-dir", "", "checkpoint ring directory (required); restart with the same directory to resume")
		ckptEvery = flag.Int64("ckpt-every", 21600, "ring checkpoint period in simulated seconds")
		ckptKeep  = flag.Int("ckpt-keep", 16, "ring retention: delete the oldest checkpoint beyond this many (0 = keep all)")
		workers   = flag.Int("workers", 0, "max concurrent what-if forks (0 = GOMAXPROCS)")
		traceRing = flag.Int("trace-ring", 0, "keep the newest N baseline lifecycle-trace events in memory and serve them on GET /v1/trace (0 = tracing off)")
		storeDir  = flag.String("store", "", "archive the drained baseline's report to a run store in this directory (query with dmstore)")
		verbose   = flag.Bool("v", false, "also print workload summary")
	)
	flag.Parse()

	if *ckptDir == "" {
		fatalf("-ckpt-dir is required (the ring of durable checkpoints is what the service serves from)")
	}

	mc := dismem.DefaultMachine()
	mc.Racks, mc.NodesPerRack, mc.CoresPerNode = *racks, *nodes, *cores
	mc.LocalMemMiB = *localGiB * 1024
	mc.PoolMiB = *poolGiB * 1024
	mc.FabricGiBps = *fabric
	switch *topology {
	case "none":
		mc.Topology = dismem.TopologyNone
		mc.PoolMiB = 0
	case "rack":
		mc.Topology = dismem.TopologyRack
	case "global":
		mc.Topology = dismem.TopologyGlobal
	default:
		fatalf("unknown topology %q", *topology)
	}

	var wl *dismem.Workload
	if *swf != "" {
		f, err := os.Open(*swf)
		if err != nil {
			fatalf("%v", err)
		}
		var skipped int
		wl, skipped, err = workload.ReadSWF(f, workload.SWFReadOptions{
			NodeCores:         *swfCores,
			DefaultMemPerNode: mc.LocalMemMiB / 2,
		})
		f.Close()
		if err != nil {
			fatalf("reading %s: %v", *swf, err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "note: skipped %d unusable SWF records\n", skipped)
		}
	} else {
		var err error
		wl, err = dismem.GenerateWorkload(dismem.DefaultGen(*jobs, *seed, mc))
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *verbose {
		fmt.Print(workload.Summarize(wl, mc.LocalMemMiB))
		fmt.Println()
	}

	var sc *dismem.Scenario
	if *scenFlag != "" {
		var err error
		sc, err = dismem.ParseScenario(*scenFlag)
		if err != nil {
			fatalf("-scenario: %v", err)
		}
	}
	var failures *dismem.FailureConfig
	if *mtbf > 0 {
		failures = &dismem.FailureConfig{MTBFPerNodeSec: *mtbf, RepairSec: *repair, Seed: *failSeed}
	}
	// A spec string is a valid Options.Policy, so it stays serializable
	// into ring checkpoints (unlike a live SchedulerImpl).
	pol := *policy
	if *specFlag != "" {
		pol = *specFlag
	}

	var store *runstore.Store
	if *storeDir != "" {
		var err error
		store, err = runstore.Open(*storeDir)
		if err != nil {
			fatalf("%v", err)
		}
		defer store.Close()
	}

	s, err := serve.New(serve.Config{
		Options: dismem.Options{
			Machine:    mc,
			Policy:     pol,
			Model:      *model,
			Workload:   wl,
			Scenario:   sc,
			Failures:   failures,
			StrictKill: *strict,
		},
		CkptDir:   *ckptDir,
		CkptEvery: *ckptEvery,
		CkptKeep:  *ckptKeep,
		Workers:   *workers,
		Store:     store,
		TraceRing: *traceRing,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if resumed := s.ResumedFrom(); resumed != "" {
		fmt.Fprintf(os.Stderr, "dmserve: resumed baseline from %s (t=%d)\n", resumed, s.Status().Now)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dmserve: listening on %s (policy %s, checkpoint every %ds keep %d in %s)\n",
		ln.Addr(), pol, *ckptEvery, *ckptKeep, *ckptDir)

	// The drive loop owns the baseline on the main goroutine; signals
	// cancel between chunks, at a clean event boundary.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		fatalf("%v", err)
	}
	select {
	case err := <-serveErr:
		fatalf("http: %v", err)
	default:
	}

	// Run only returns cleanly on a signal (after the baseline drains
	// it keeps serving until one arrives): persist, drain, exit 3.
	path, err := s.FinalCheckpoint()
	if err != nil {
		fatalf("%v", err)
	}
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutdownCancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dmserve: http shutdown: %v\n", err)
	}
	if path != "" {
		fmt.Fprintf(os.Stderr, "dmserve: interrupted at t=%d; final checkpoint %s (restart with the same -ckpt-dir to resume)\n",
			s.Status().Now, path)
	} else {
		fmt.Fprintf(os.Stderr, "dmserve: interrupted; baseline already complete, ring left in %s\n", *ckptDir)
	}
	os.Exit(exitInterrupted)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmserve: "+format+"\n", args...)
	os.Exit(1)
}
