// Command dmstore queries the run archive that dmsweep and dmserve
// write (internal/runstore): list the stored runs, show one in full,
// diff two reports field by field, or chart one report metric across
// many runs (trend). It also hosts the CI's exposition-format linter:
// `dmstore lint-metrics` validates a /metrics scrape on stdin against
// the text-format grammar.
//
// Usage:
//
//	dmstore -dir runs list
//	dmstore -dir runs show 3f2a9c
//	dmstore -dir runs diff 3f2a9c 77b01d
//	dmstore -dir runs trend -kind sweep-unit -metric P95Wait
//	curl -s localhost:8080/metrics | dmstore lint-metrics
//
// trend filters the archive (kind and spec substrings), picks one
// numeric report field by its dotted JSON path (P95Wait, Wait.mean,
// PoolUtil, ...), groups runs into one curve per label, and renders an
// ASCII line chart — or machine-readable rows with -csv. Ordering is
// deterministic (label, then seed or spec per -by), so the same
// archive always renders the same chart.
//
// Run ids may be abbreviated to any unambiguous prefix. Records carry
// no wall-clock state, so `show` output is byte-identical for a run
// archived by an interrupted-and-resumed sweep and by a clean one —
// the property the CI run-store smoke diffs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dismem/internal/runstore"
	"dismem/internal/telemetry"
	"dismem/internal/viz"
)

func main() {
	var (
		dir = flag.String("dir", "runs", "run store directory")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dmstore [-dir DIR] list | show ID | diff ID ID | trend [options] | lint-metrics\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if args[0] == "lint-metrics" {
		n, err := telemetry.Validate(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmstore: lint-metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("ok: %d samples\n", n)
		return
	}

	store, err := runstore.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	defer store.Close()

	switch args[0] {
	case "list":
		list(store)
	case "show":
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: dmstore show ID")
			os.Exit(2)
		}
		show(store, args[1])
	case "diff":
		if len(args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: dmstore diff ID ID")
			os.Exit(2)
		}
		diff(store, args[1], args[2])
	case "trend":
		trend(store, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "dmstore: unknown command %q\n", args[0])
		flag.Usage()
		os.Exit(2)
	}
}

func list(store *runstore.Store) {
	runs := store.Runs()
	if len(runs) == 0 {
		fmt.Println("store is empty")
		return
	}
	fmt.Printf("%-12s  %-14s  %4s  %-28s  %9s  %12s\n", "ID", "KIND", "SEED", "LABEL", "COMPLETED", "P95WAIT(s)")
	for _, r := range runs {
		completed, p95 := "-", "-"
		if r.Report != nil {
			completed = fmt.Sprintf("%d", r.Report.Completed)
			p95 = fmt.Sprintf("%.1f", r.Report.P95Wait)
		}
		fmt.Printf("%-12s  %-14s  %4d  %-28s  %9s  %12s\n", r.ID[:12], r.Kind, r.Seed, trim(r.Label, 28), completed, p95)
	}
	fmt.Printf("%d runs\n", len(runs))
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func show(store *runstore.Store, id string) {
	run := mustGet(store, id)
	b, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", b)
}

func diff(store *runstore.Store, aID, bID string) {
	a, b := mustGet(store, aID), mustGet(store, bID)
	if a.Report == nil || b.Report == nil {
		fmt.Fprintln(os.Stderr, "dmstore: diff needs two runs with reports")
		os.Exit(1)
	}
	fmt.Printf("a: %s (%s seed %d, %s)\n", a.ID, a.Kind, a.Seed, a.Label)
	fmt.Printf("b: %s (%s seed %d, %s)\n\n", b.ID, b.Kind, b.Seed, b.Label)
	lines := diffValues("", toTree(a.Report), toTree(b.Report))
	if len(lines) == 0 {
		fmt.Println("reports are identical")
		return
	}
	sort.Strings(lines)
	fmt.Printf("%-32s  %14s  %14s\n", "FIELD", "A", "B")
	for _, l := range lines {
		fmt.Println(l)
	}
}

// trendRow is one archived run projected onto the selected metric.
type trendRow struct {
	run   runstore.Run
	value float64
}

// trend charts one numeric report field across the archived runs that
// match the filters: one curve per label, points ordered by -by. The
// ordering (and so the rendered bytes) is deterministic for a given
// archive.
func trend(store *runstore.Store, args []string) {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dmstore [-dir DIR] trend [-kind SUBSTR] [-spec SUBSTR] [-metric PATH] [-by seed|spec] [-csv]\n")
		fs.PrintDefaults()
	}
	var (
		kind   = fs.String("kind", "", `only runs whose kind contains this substring ("sweep-unit", "serve-baseline", ...)`)
		spec   = fs.String("spec", "", "only runs whose canonical spec JSON contains this substring (e.g. a policy name)")
		metric = fs.String("metric", "P95Wait", "report field to chart, as a dotted path into the report JSON (P95Wait, Wait.mean, PoolUtil, Completed, ...)")
		by     = fs.String("by", "seed", "point ordering and x axis: seed (x = seed) | spec (x = rank of the run's spec within its curve)")
		csv    = fs.Bool("csv", false, "print id,kind,label,seed,value rows instead of rendering a chart")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	if *by != "seed" && *by != "spec" {
		fmt.Fprintf(os.Stderr, "dmstore: trend -by %q: want seed or spec\n", *by)
		os.Exit(2)
	}

	var rows []trendRow
	for _, r := range store.Runs() {
		if r.Report == nil {
			continue
		}
		if *kind != "" && !strings.Contains(r.Kind, *kind) {
			continue
		}
		if *spec != "" && !strings.Contains(string(r.Spec), *spec) {
			continue
		}
		v, err := metricValue(r.Report, *metric)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmstore:", err)
			os.Exit(1)
		}
		rows = append(rows, trendRow{run: r, value: v})
	}
	if len(rows) == 0 {
		fmt.Println("no matching runs with reports")
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i].run, rows[j].run
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		as, bs := string(a.Spec), string(b.Spec)
		if *by == "spec" {
			if as != bs {
				return as < bs
			}
			return a.Seed < b.Seed
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return as < bs
	})

	if *csv {
		fmt.Printf("id,kind,label,seed,%s\n", *metric)
		for _, row := range rows {
			fmt.Printf("%s,%s,%q,%d,%g\n", row.run.ID, row.run.Kind, row.run.Label, row.run.Seed, row.value)
		}
		return
	}

	var series []viz.Series
	for _, row := range rows {
		label := row.run.Label
		if label == "" {
			label = row.run.Kind
		}
		if len(series) == 0 || series[len(series)-1].Name != label {
			series = append(series, viz.Series{Name: label})
		}
		s := &series[len(series)-1]
		x := float64(row.run.Seed)
		if *by == "spec" {
			x = float64(len(s.X))
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, row.value)
	}
	chart := viz.LineChart{
		Title:  fmt.Sprintf("trend: %s across %d runs", *metric, len(rows)),
		XLabel: *by,
		YLabel: *metric,
		Series: series,
	}
	fmt.Print(chart.Render())
}

// metricValue resolves a dotted path ("Wait.mean") through the
// report's durable JSON representation to a numeric value.
func metricValue(report any, path string) (float64, error) {
	node := toTree(report)
	for _, part := range strings.Split(path, ".") {
		m, ok := node.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("trend: %s: %q is not an object", path, part)
		}
		node, ok = m[part]
		if !ok {
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return 0, fmt.Errorf("trend: no report field %q; have: %s", part, strings.Join(keys, ", "))
		}
	}
	switch v := node.(type) {
	case float64:
		return v, nil
	case bool:
		if v {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("trend: %s is not numeric (descend into it with a dotted path)", path)
	}
}

func mustGet(store *runstore.Store, id string) runstore.Run {
	run, err := store.Get(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	return run
}

// toTree round-trips a report through JSON so the diff walks exactly
// the durable representation.
func toTree(v any) any {
	b, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	var tree any
	if err := json.Unmarshal(b, &tree); err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	return tree
}

// diffValues reports the dotted paths where a and b disagree.
func diffValues(path string, a, b any) []string {
	am, aok := a.(map[string]any)
	bm, bok := b.(map[string]any)
	if aok && bok {
		keys := map[string]bool{}
		for k := range am {
			keys[k] = true
		}
		for k := range bm {
			keys[k] = true
		}
		var out []string
		for k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			out = append(out, diffValues(p, am[k], bm[k])...)
		}
		return out
	}
	if fmt.Sprintf("%v", a) == fmt.Sprintf("%v", b) {
		return nil
	}
	return []string{fmt.Sprintf("%-32s  %14v  %14v", path, render(a), render(b))}
}

func render(v any) string {
	if v == nil {
		return "-"
	}
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.4g", f)
	}
	return fmt.Sprintf("%v", v)
}
