// Command dmstore queries the run archive that dmsweep and dmserve
// write (internal/runstore): list the stored runs, show one in full,
// or diff two reports field by field. It also hosts the CI's
// exposition-format linter: `dmstore lint-metrics` validates a
// /metrics scrape on stdin against the text-format grammar.
//
// Usage:
//
//	dmstore -dir runs list
//	dmstore -dir runs show 3f2a9c
//	dmstore -dir runs diff 3f2a9c 77b01d
//	curl -s localhost:8080/metrics | dmstore lint-metrics
//
// Run ids may be abbreviated to any unambiguous prefix. Records carry
// no wall-clock state, so `show` output is byte-identical for a run
// archived by an interrupted-and-resumed sweep and by a clean one —
// the property the CI run-store smoke diffs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"dismem/internal/runstore"
	"dismem/internal/telemetry"
)

func main() {
	var (
		dir = flag.String("dir", "runs", "run store directory")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dmstore [-dir DIR] list | show ID | diff ID ID | lint-metrics\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if args[0] == "lint-metrics" {
		n, err := telemetry.Validate(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmstore: lint-metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("ok: %d samples\n", n)
		return
	}

	store, err := runstore.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	defer store.Close()

	switch args[0] {
	case "list":
		list(store)
	case "show":
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: dmstore show ID")
			os.Exit(2)
		}
		show(store, args[1])
	case "diff":
		if len(args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: dmstore diff ID ID")
			os.Exit(2)
		}
		diff(store, args[1], args[2])
	default:
		fmt.Fprintf(os.Stderr, "dmstore: unknown command %q\n", args[0])
		flag.Usage()
		os.Exit(2)
	}
}

func list(store *runstore.Store) {
	runs := store.Runs()
	if len(runs) == 0 {
		fmt.Println("store is empty")
		return
	}
	fmt.Printf("%-12s  %-14s  %4s  %-28s  %9s  %12s\n", "ID", "KIND", "SEED", "LABEL", "COMPLETED", "P95WAIT(s)")
	for _, r := range runs {
		completed, p95 := "-", "-"
		if r.Report != nil {
			completed = fmt.Sprintf("%d", r.Report.Completed)
			p95 = fmt.Sprintf("%.1f", r.Report.P95Wait)
		}
		fmt.Printf("%-12s  %-14s  %4d  %-28s  %9s  %12s\n", r.ID[:12], r.Kind, r.Seed, trim(r.Label, 28), completed, p95)
	}
	fmt.Printf("%d runs\n", len(runs))
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func show(store *runstore.Store, id string) {
	run := mustGet(store, id)
	b, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", b)
}

func diff(store *runstore.Store, aID, bID string) {
	a, b := mustGet(store, aID), mustGet(store, bID)
	if a.Report == nil || b.Report == nil {
		fmt.Fprintln(os.Stderr, "dmstore: diff needs two runs with reports")
		os.Exit(1)
	}
	fmt.Printf("a: %s (%s seed %d, %s)\n", a.ID, a.Kind, a.Seed, a.Label)
	fmt.Printf("b: %s (%s seed %d, %s)\n\n", b.ID, b.Kind, b.Seed, b.Label)
	lines := diffValues("", toTree(a.Report), toTree(b.Report))
	if len(lines) == 0 {
		fmt.Println("reports are identical")
		return
	}
	sort.Strings(lines)
	fmt.Printf("%-32s  %14s  %14s\n", "FIELD", "A", "B")
	for _, l := range lines {
		fmt.Println(l)
	}
}

func mustGet(store *runstore.Store, id string) runstore.Run {
	run, err := store.Get(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	return run
}

// toTree round-trips a report through JSON so the diff walks exactly
// the durable representation.
func toTree(v any) any {
	b, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	var tree any
	if err := json.Unmarshal(b, &tree); err != nil {
		fmt.Fprintln(os.Stderr, "dmstore:", err)
		os.Exit(1)
	}
	return tree
}

// diffValues reports the dotted paths where a and b disagree.
func diffValues(path string, a, b any) []string {
	am, aok := a.(map[string]any)
	bm, bok := b.(map[string]any)
	if aok && bok {
		keys := map[string]bool{}
		for k := range am {
			keys[k] = true
		}
		for k := range bm {
			keys[k] = true
		}
		var out []string
		for k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			out = append(out, diffValues(p, am[k], bm[k])...)
		}
		return out
	}
	if fmt.Sprintf("%v", a) == fmt.Sprintf("%v", b) {
		return nil
	}
	return []string{fmt.Sprintf("%-32s  %14v  %14v", path, render(a), render(b))}
}

func render(v any) string {
	if v == nil {
		return "-"
	}
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.4g", f)
	}
	return fmt.Sprintf("%v", v)
}
