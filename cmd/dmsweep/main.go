// Command dmsweep regenerates the paper's evaluation tables and
// figures. Each experiment is a parameter sweep over the simulator; see
// DESIGN.md §4 for the experiment inventory and EXPERIMENTS.md for the
// recorded results.
//
// Usage:
//
//	dmsweep -exp fig3                 # one experiment
//	dmsweep -exp all -jobs 8000       # the full evaluation
//	dmsweep -exp table2 -csv          # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dismem/internal/sweep"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or 'all': "+strings.Join(sweep.IDs(), ", "))
		jobs  = flag.Int("jobs", 0, "jobs per simulation (0 = experiment default)")
		seeds = flag.Int("seeds", 0, "seeds per cell (0 = experiment default)")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot  = flag.Bool("plot", false, "also render figure sweeps as ASCII charts")
	)
	flag.Parse()

	o := sweep.Options{Jobs: *jobs, Seeds: *seeds}
	var tables []*sweep.Table
	if *exp == "all" {
		tables = sweep.RunAll(o)
	} else {
		var err error
		tables, err = sweep.Run(*exp, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
			if *plot {
				if c := t.Chart(); c != nil {
					fmt.Println()
					fmt.Print(c.Render())
				}
			}
		}
	}
}
