// Command dmsweep regenerates the paper's evaluation tables and
// figures. Each experiment is a parameter sweep over the simulator; see
// DESIGN.md §4 for the experiment inventory and EXPERIMENTS.md for the
// recorded results.
//
// Sweeps are crash-safe: with -manifest, every completed (cell, seed)
// unit is journaled as it finishes, SIGINT/SIGTERM interrupt the sweep
// cleanly (exit status 3), and re-running with -resume skips the
// journaled units and produces output identical to an uninterrupted
// run.
//
// Usage:
//
//	dmsweep -exp fig3                 # one experiment
//	dmsweep -exp all -jobs 8000       # the full evaluation
//	dmsweep -exp table2 -csv          # machine-readable output
//	dmsweep -exp all -manifest s.jsonl          # journal progress
//	dmsweep -exp all -manifest s.jsonl -resume  # continue after a crash
//
// With -store, every completed simulation unit is archived to a
// queryable run store (inspect with dmstore); with -metrics-addr, the
// sweep serves its progress as a Prometheus text-format /metrics
// endpoint while running:
//
//	dmsweep -exp all -store runs -metrics-addr :9090
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"dismem/internal/profiling"
	"dismem/internal/runstore"
	"dismem/internal/sweep"
	"dismem/internal/telemetry"
)

// exitInterrupted is the distinct status for a resumable interruption
// (signal mid-sweep), as opposed to 1 (failure) and 2 (bad usage).
const exitInterrupted = 3

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all': "+strings.Join(sweep.IDs(), ", "))
		jobs     = flag.Int("jobs", 0, "jobs per simulation (0 = experiment default)")
		seeds    = flag.Int("seeds", 0, "seeds per cell (0 = experiment default)")
		workers  = flag.Int("workers", 0, "concurrent simulation units (0 = GOMAXPROCS)")
		manifest = flag.String("manifest", "", "journal completed units to this JSONL file")
		resume   = flag.Bool("resume", false, "resume from the -manifest journal, skipping completed units")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot     = flag.Bool("plot", false, "also render figure sweeps as ASCII charts")
		storeDir = flag.String("store", "", "archive every completed unit's report to a run store in this directory (query with dmstore)")
		metrAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text format) with sweep progress on this address while the sweep runs")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile (pprof allocs: cumulative sites plus post-GC in-use heap) to this file at exit")
	)
	flag.Parse()

	if *resume && *manifest == "" {
		fmt.Fprintln(os.Stderr, "dmsweep: -resume requires -manifest")
		os.Exit(2)
	}
	stop, perr := profiling.Start(*cpuProf, *memProf)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "dmsweep:", perr)
		os.Exit(2)
	}
	stopProfiling = stop
	defer flushProfiles()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	o := sweep.Options{Jobs: *jobs, Seeds: *seeds, Workers: *workers, Ctx: ctx}
	if *storeDir != "" {
		store, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmsweep:", err)
			os.Exit(2)
		}
		defer store.Close()
		o.Store = store
	}
	var unitsDone atomic.Int64
	o.UnitDone = func() { unitsDone.Add(1) }
	if *metrAddr != "" {
		startMetricsServer(*metrAddr, telemetry.SourceFunc(func() []telemetry.Metric {
			return []telemetry.Metric{{
				Name:  "dmsweep_units_done_total",
				Help:  "simulation units completed (including units served from the resume journal)",
				Type:  telemetry.Counter,
				Value: float64(unitsDone.Load()),
			}}
		}))
	}
	if *manifest != "" {
		m, err := sweep.OpenManifest(*manifest, o, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmsweep:", err)
			os.Exit(2)
		}
		defer m.Close()
		if *resume && m.Units() > 0 {
			fmt.Fprintf(os.Stderr, "dmsweep: resuming; %d completed units journaled in %s\n", m.Units(), *manifest)
		}
		o.Manifest = m
	}

	var tables []*sweep.Table
	var err error
	if *exp == "all" {
		tables, err = sweep.RunAll(o)
	} else {
		tables, err = sweep.Run(*exp, o)
	}
	if err != nil {
		if errors.Is(err, sweep.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "dmsweep:", err)
			if *manifest != "" {
				fmt.Fprintf(os.Stderr, "dmsweep: progress journaled; rerun with -manifest %s -resume to continue\n", *manifest)
			}
			flushProfiles()
			os.Exit(exitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "dmsweep:", err)
		flushProfiles()
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
			if *plot {
				if c := t.Chart(); c != nil {
					fmt.Println()
					fmt.Print(c.Render())
				}
			}
		}
	}
}

// stopProfiling finalises -cpuprofile/-memprofile; flushProfiles runs
// it at most once, so the deferred call and the explicit calls ahead
// of os.Exit compose.
var stopProfiling func() error

func flushProfiles() {
	if stopProfiling == nil {
		return
	}
	if err := stopProfiling(); err != nil {
		fmt.Fprintln(os.Stderr, "dmsweep:", err)
	}
	stopProfiling = nil
}

// startMetricsServer serves GET /metrics on addr for the lifetime of
// the process, printing the bound address to stderr (so ":0" is
// usable in scripts and tests).
func startMetricsServer(addr string, sources ...telemetry.Source) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmsweep: -metrics-addr:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "dmsweep: serving http://%s/metrics\n", ln.Addr())
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(sources...))
	go func() {
		if err := (&http.Server{Handler: mux}).Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "dmsweep: metrics server: %v\n", err)
		}
	}()
}
