// Command dmsweep regenerates the paper's evaluation tables and
// figures. Each experiment is a parameter sweep over the simulator; see
// DESIGN.md §4 for the experiment inventory and EXPERIMENTS.md for the
// recorded results.
//
// Sweeps are crash-safe: with -manifest, every completed (cell, seed)
// unit is journaled as it finishes, SIGINT/SIGTERM interrupt the sweep
// cleanly (exit status 3), and re-running with -resume skips the
// journaled units and produces output identical to an uninterrupted
// run.
//
// Usage:
//
//	dmsweep -exp fig3                 # one experiment
//	dmsweep -exp all -jobs 8000       # the full evaluation
//	dmsweep -exp table2 -csv          # machine-readable output
//	dmsweep -exp all -manifest s.jsonl          # journal progress
//	dmsweep -exp all -manifest s.jsonl -resume  # continue after a crash
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dismem/internal/sweep"
)

// exitInterrupted is the distinct status for a resumable interruption
// (signal mid-sweep), as opposed to 1 (failure) and 2 (bad usage).
const exitInterrupted = 3

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all': "+strings.Join(sweep.IDs(), ", "))
		jobs     = flag.Int("jobs", 0, "jobs per simulation (0 = experiment default)")
		seeds    = flag.Int("seeds", 0, "seeds per cell (0 = experiment default)")
		workers  = flag.Int("workers", 0, "concurrent simulation units (0 = GOMAXPROCS)")
		manifest = flag.String("manifest", "", "journal completed units to this JSONL file")
		resume   = flag.Bool("resume", false, "resume from the -manifest journal, skipping completed units")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot     = flag.Bool("plot", false, "also render figure sweeps as ASCII charts")
	)
	flag.Parse()

	if *resume && *manifest == "" {
		fmt.Fprintln(os.Stderr, "dmsweep: -resume requires -manifest")
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	o := sweep.Options{Jobs: *jobs, Seeds: *seeds, Workers: *workers, Ctx: ctx}
	if *manifest != "" {
		m, err := sweep.OpenManifest(*manifest, o, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmsweep:", err)
			os.Exit(2)
		}
		defer m.Close()
		if *resume && m.Units() > 0 {
			fmt.Fprintf(os.Stderr, "dmsweep: resuming; %d completed units journaled in %s\n", m.Units(), *manifest)
		}
		o.Manifest = m
	}

	var tables []*sweep.Table
	var err error
	if *exp == "all" {
		tables, err = sweep.RunAll(o)
	} else {
		tables, err = sweep.Run(*exp, o)
	}
	if err != nil {
		if errors.Is(err, sweep.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "dmsweep:", err)
			if *manifest != "" {
				fmt.Fprintf(os.Stderr, "dmsweep: progress journaled; rerun with -manifest %s -resume to continue\n", *manifest)
			}
			os.Exit(exitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "dmsweep:", err)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
			if *plot {
				if c := t.Chart(); c != nil {
					fmt.Println()
					fmt.Print(c.Render())
				}
			}
		}
	}
}
