// Command tracegen generates a synthetic workload in the Standard
// Workload Format (SWF) on stdout or into a file:
//
//	tracegen -jobs 10000 -seed 7 -o trace.swf
//	tracegen -jobs 2000 -accuracy 0.8 | head
//
// -n streams jobs straight from the lazy generator to the SWF encoder
// — no in-memory workload, flat memory at any size — so multi-million
// job traces cost nothing but disk:
//
//	tracegen -model lublin -n 5000000 -o big.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dismem"
	"dismem/internal/source"
	"dismem/internal/workload"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 10000, "number of jobs (materialised generation)")
		stream   = flag.Int("n", 0, "stream this many jobs straight to SWF with flat memory (overrides -jobs; incompatible with -summary)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		maxNodes = flag.Int("max-nodes", 256, "largest job width (nodes)")
		arrival  = flag.Float64("interarrival", 90, "mean inter-arrival time (s)")
		accuracy = flag.Float64("accuracy", 0.4, "mean user estimate accuracy in (0,1]")
		largeMem = flag.Float64("large-mem", 0.18, "fraction of data-intensive (large-memory) jobs")
		model    = flag.String("model", "calibrated", "workload model: calibrated | lublin")
		out      = flag.String("o", "", "output file (default stdout)")
		summary  = flag.Bool("summary", false, "print a workload summary to stderr")
	)
	flag.Parse()

	// Validate the model and generator configuration — and materialise
	// the workload, on the batch path — before touching -o, so a bad
	// invocation cannot truncate an existing trace file.
	var wl *dismem.Workload
	var src *source.GenSource
	if *stream > 0 {
		if *summary {
			fatalf("-summary needs a materialised workload; use -jobs instead of -n")
		}
		src = buildStream(*model, *stream, *seed, *maxNodes, *arrival, *accuracy, *largeMem)
	} else {
		var err error
		switch *model {
		case "calibrated":
			cfg := workloadDefault(*jobs, *seed, *maxNodes)
			cfg.MeanInterarrival = *arrival
			cfg.EstimateAccuracy = *accuracy
			cfg.LargeMemFraction = *largeMem
			wl, err = dismem.GenerateWorkload(cfg)
		case "lublin":
			cfg := workload.DefaultLublinConfig(*jobs, *seed, *maxNodes)
			cfg.MeanInterarrival = *arrival
			cfg.EstimateAccuracy = *accuracy
			cfg.LargeMemFraction = *largeMem
			wl, err = workload.GenerateLublin(cfg)
		default:
			fatalf("unknown workload model %q", *model)
		}
		if err != nil {
			fatalf("%v", err)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}

	if src != nil {
		// Stream the lazy generator into the streaming SWF encoder: one
		// job in flight at a time. The emitted records are identical to
		// the materialised path's for the same parameters (only the
		// header comment differs, which readers skip).
		sw := workload.NewSWFWriter(w)
		sw.Comment(fmt.Sprintf("SWF trace %s(n=%d,seed=%d), streamed by dismem", *model, *stream, *seed))
		if err := sw.WriteAll(src.Next); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if err := workload.WriteSWF(w, wl); err != nil {
		fatalf("%v", err)
	}
	if *summary {
		fmt.Fprint(os.Stderr, workload.Summarize(wl, 64*1024))
	}
}

// buildStream constructs the capped lazy generator source, validating
// the model name and configuration.
func buildStream(model string, n int, seed uint64, maxNodes int, arrival, accuracy, largeMem float64) *source.GenSource {
	var stream source.JobStream
	var err error
	switch model {
	case "calibrated":
		cfg := workloadDefault(0, seed, maxNodes)
		cfg.MeanInterarrival = arrival
		cfg.EstimateAccuracy = accuracy
		cfg.LargeMemFraction = largeMem
		stream, err = workload.NewGenStream(cfg)
	case "lublin":
		cfg := workload.DefaultLublinConfig(0, seed, maxNodes)
		cfg.MeanInterarrival = arrival
		cfg.EstimateAccuracy = accuracy
		cfg.LargeMemFraction = largeMem
		stream, err = workload.NewLublinStream(cfg)
	default:
		fatalf("unknown workload model %q", model)
	}
	if err != nil {
		fatalf("%v", err)
	}
	return source.Gen(stream, n, 0)
}

func workloadDefault(jobs int, seed uint64, maxNodes int) dismem.GenConfig {
	return workload.DefaultGenConfig(jobs, seed, maxNodes)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
