// Command tracegen generates a synthetic workload in the Standard
// Workload Format (SWF) on stdout or into a file:
//
//	tracegen -jobs 10000 -seed 7 -o trace.swf
//	tracegen -jobs 2000 -accuracy 0.8 | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dismem"
	"dismem/internal/workload"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 10000, "number of jobs")
		seed     = flag.Uint64("seed", 1, "generator seed")
		maxNodes = flag.Int("max-nodes", 256, "largest job width (nodes)")
		arrival  = flag.Float64("interarrival", 90, "mean inter-arrival time (s)")
		accuracy = flag.Float64("accuracy", 0.4, "mean user estimate accuracy in (0,1]")
		largeMem = flag.Float64("large-mem", 0.18, "fraction of data-intensive (large-memory) jobs")
		model    = flag.String("model", "calibrated", "workload model: calibrated | lublin")
		out      = flag.String("o", "", "output file (default stdout)")
		summary  = flag.Bool("summary", false, "print a workload summary to stderr")
	)
	flag.Parse()

	var wl *dismem.Workload
	var err error
	switch *model {
	case "calibrated":
		cfg := workloadDefault(*jobs, *seed, *maxNodes)
		cfg.MeanInterarrival = *arrival
		cfg.EstimateAccuracy = *accuracy
		cfg.LargeMemFraction = *largeMem
		wl, err = dismem.GenerateWorkload(cfg)
	case "lublin":
		cfg := workload.DefaultLublinConfig(*jobs, *seed, *maxNodes)
		cfg.MeanInterarrival = *arrival
		cfg.EstimateAccuracy = *accuracy
		cfg.LargeMemFraction = *largeMem
		wl, err = workload.GenerateLublin(cfg)
	default:
		fatalf("unknown workload model %q", *model)
	}
	if err != nil {
		fatalf("%v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := workload.WriteSWF(w, wl); err != nil {
		fatalf("%v", err)
	}
	if *summary {
		fmt.Fprint(os.Stderr, workload.Summarize(wl, 64*1024))
	}
}

func workloadDefault(jobs int, seed uint64, maxNodes int) dismem.GenConfig {
	return workload.DefaultGenConfig(jobs, seed, maxNodes)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
