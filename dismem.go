// Package dismem is a simulator and scheduling library for batch job
// scheduling on HPC systems with disaggregated memory resources.
//
// It reproduces the system of the CLUSTER 2024 paper "Job Scheduling in
// High Performance Computing Systems with Disaggregated Memory
// Resources": a discrete-event simulation of racks of nodes with
// reduced local DRAM plus rack-level (or global) memory pools, batch
// schedulers ranging from classic FCFS/EASY/conservative baselines to
// the disaggregation-aware policy, and the metrics the paper's
// evaluation reports.
//
// Quick start — fire and forget:
//
//	wl := dismem.SyntheticWorkload(5000, 1)
//	res, err := dismem.Simulate(dismem.Options{
//		Machine:  dismem.DefaultMachine(),
//		Policy:   "memaware",
//		Model:    "linear:0.5",
//		Workload: wl,
//	})
//
// Policies are composable specs, not just registered names: any
// combination of queue order, backfill discipline, placement policy and
// chassis knobs can be written inline,
//
//	res, err := dismem.Simulate(dismem.Options{
//		Policy:   "order=sjf backfill=easy placer=memaware cap=3 patience=1800",
//		Workload: wl,
//	})
//
// and every legacy name ("memaware", "easy-local", ...) is an alias
// resolved through the same grammar (see ParsePolicy).
//
// For observation and control while a run is in flight, New returns a
// steppable handle instead of a finished result:
//
//	s, err := dismem.New(dismem.Options{Policy: "memaware", Workload: wl})
//	for !s.Done() {
//		s.RunUntil(s.Now() + 3600) // advance one simulated hour
//		fmt.Println(s.Now(), s.QueueDepth(), s.Usage().BusyNodes)
//	}
//	res, err := s.Result()
//
// A live Simulation can be frozen and forked into divergent futures —
// the "same prefix, divergent futures" methodology of outage and
// policy what-if studies — without replaying the shared prefix:
//
//	s.RunUntil(21600)                    // replay the morning
//	cp, err := s.Checkpoint()            // freeze 06:00
//	base, err := dismem.Fork(cp, dismem.ForkOptions{})
//	hit, err := dismem.Fork(cp, dismem.ForkOptions{Scenario: outage})
//
// A fork with no overrides is bit-identical to a from-scratch run
// (DESIGN.md §8); overrides swap the scenario tail, policy, or
// failure seed from the fork instant on.
//
// Checkpoints are also durable: SaveCheckpoint/LoadCheckpoint (and the
// atomic WriteCheckpointFile/ReadCheckpointFile) serialize a frozen
// run as a versioned, digest-protected envelope, so it survives the
// process and resumes bit-identically in another one — corrupted,
// truncated or version-skewed files are always rejected, never
// silently misread (DESIGN.md §9). dmsched -ckpt-save/-ckpt-load and
// the crash-safe dmsweep -manifest/-resume build on this.
//
// Runs can be perturbed by a deterministic scenario timeline — outages
// and recoveries, pool degradation, fabric brownouts, arrival surges
// and diurnal cycles, staged growth — compiled from the same key=value
// grammar family (see ParseScenario):
//
//	sc, err := dismem.ParseScenario("at=21600 down rack=2; at=64800 up rack=2")
//	res, err := dismem.Simulate(dismem.Options{
//		Policy: "memaware", Workload: wl, Scenario: sc,
//	})
//
// Interventions run as ordinary simulation events, so scenario runs
// replay bit-identically per seed.
//
// Workloads can stream instead of materialising: Options.Source pulls
// jobs lazily (SWF traces via SWFSource, lazy generators via
// GenSource/LublinSource), and Options.RecordSink streams per-job
// records out instead of retaining them, so memory stays bounded by
// live simulation state rather than trace length — a million-job
// replay runs in a few megabytes:
//
//	f, _ := os.Open("million_jobs.swf")
//	res, err := dismem.Simulate(dismem.Options{
//		Policy:     "memaware",
//		Source:     dismem.SWFSource(f, dismem.SWFReadOptions{}),
//		RecordSink: dismem.DiscardRecords, // or NewJSONLSink(out)
//	})
//
// Streamed replays are bit-identical to slice replays of the same
// trace; bounded recording keeps every report field exact except the
// four percentile fields, which become streaming estimates — exact up
// to 1024 jobs, P² beyond (DESIGN.md §7).
//
// Observer hooks (Options.Observer, Options.SampleEvery) deliver
// per-dispatch, per-termination, per-pass, per-intervention and
// periodic-sample callbacks without polling.
//
// See the examples directory for complete programs and DESIGN.md for
// the architecture and experiment inventory.
package dismem

import (
	"fmt"
	"io"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/metrics"
	"dismem/internal/scenario"
	"dismem/internal/sched"
	"dismem/internal/sim"
	"dismem/internal/source"
	"dismem/internal/spec"
	"dismem/internal/trace"
	"dismem/internal/workload"
)

// Re-exported types: the public API surface wraps the internal packages
// so downstream users never import dismem/internal/... directly.
type (
	// MachineConfig describes the simulated machine (see
	// internal/cluster.Config for field documentation).
	MachineConfig = cluster.Config
	// Workload is an ordered batch of jobs.
	Workload = workload.Workload
	// Job is one batch job.
	Job = workload.Job
	// GenConfig parameterises the synthetic workload generator.
	GenConfig = workload.GenConfig
	// LublinConfig parameterises the Lublin-Feitelson workload model.
	LublinConfig = workload.LublinConfig
	// Report is the reduced result of one simulation.
	Report = metrics.Report
	// JobRecord is the per-job outcome.
	JobRecord = metrics.JobRecord
	// Result bundles report, per-job records and event counts.
	Result = sim.Result
	// Scheduler is the scheduling-policy interface.
	Scheduler = sched.Scheduler
	// Placer is the placement-policy interface schedulers compose; see
	// RegisterPlacer.
	Placer = sched.Placer
	// MemoryModel maps remote fraction and congestion to dilation.
	MemoryModel = memmodel.Model
	// FailureConfig parameterises node failure injection.
	FailureConfig = sim.FailureConfig
	// Scenario is a deterministic intervention timeline: outages and
	// recoveries, pool degradation/resize, remote-penalty shifts,
	// arrival surges and diurnal cycles, staged machine growth. Build
	// one with ParseScenario or construct it literally; see
	// internal/scenario for the grammar and the determinism contract.
	Scenario = scenario.Scenario
	// ScenarioEvent is one timed intervention of a Scenario, delivered
	// to Observer.OnScenarioEvent when applied.
	ScenarioEvent = scenario.Event
	// Observer receives engine lifecycle callbacks (see Options).
	// Implementations must be read-only w.r.t. engine state.
	Observer = sim.Observer
	// NopObserver is an embeddable no-op Observer.
	NopObserver = sim.NopObserver
	// Sample is the live-state snapshot observers and the Simulation
	// handle expose.
	Sample = sim.Sample
	// Usage is the machine occupancy snapshot.
	Usage = cluster.Usage
	// Source streams jobs into a simulation lazily, in nondecreasing
	// submit order, so memory stays bounded by live state instead of
	// trace length. Build one with WorkloadSource, SWFSource, GenSource
	// or LublinSource, and attach it with Options.Source; see
	// internal/source for the contract.
	Source = source.Source
	// Sink consumes per-job records as they are produced: the
	// bounded-memory alternative to retaining them all. Build one with
	// NewJSONLSink / NewCSVSink (or use DiscardRecords) and attach it
	// with Options.RecordSink.
	Sink = metrics.Sink
	// SeriesSink consumes periodic utilization samples as a run
	// produces them: the time-series analogue of Sink. Build one with
	// NewJSONLSeriesSink / NewCSVSeriesSink (or use DiscardSeries) and
	// attach it with Options.SeriesSink plus a SampleEvery period.
	SeriesSink = metrics.SeriesSink
	// SeriesPoint is one row of the utilization time series a
	// SeriesSink receives (see internal/metrics for the wire schema).
	SeriesPoint = metrics.SeriesPoint
	// TraceSink consumes per-job lifecycle trace events — submit,
	// dispatch with placement detail, terminate/kill with reason,
	// failure restarts, scenario interventions — in deterministic
	// firing order. Build one with NewJSONLTraceSink /
	// NewPerfettoTraceSink (or use DiscardTrace) and attach it with
	// Options.TraceSink; see internal/trace for the contract.
	TraceSink = trace.TraceSink
	// TraceEvent is one typed trace event a TraceSink receives (see
	// internal/trace for the taxonomy and wire schema).
	TraceEvent = trace.Event
	// SWFReadOptions controls SWF trace import (ReadSWF and SWFSource).
	SWFReadOptions = workload.SWFReadOptions
)

// DiscardRecords is the Sink that drops every record: bounded
// recording with no streamed output. The Report still carries exact
// counts and means plus streaming percentile estimates (exact up to
// 1024 jobs, P² beyond).
var DiscardRecords Sink = metrics.Discard

// DiscardSeries is the SeriesSink that drops every sample: sampling
// runs (observers still fire) but no series is exported.
var DiscardSeries SeriesSink = metrics.DiscardSeries

// DiscardTrace is the TraceSink that drops every event.
var DiscardTrace TraceSink = trace.Discard

// Topology constants for MachineConfig.
const (
	TopologyNone   = cluster.TopologyNone
	TopologyRack   = cluster.TopologyRack
	TopologyGlobal = cluster.TopologyGlobal
)

// DefaultMachine returns the evaluation machine: 16 racks x 16 nodes x
// 32 cores with 64 GiB local DRAM and 4 TiB rack pools.
func DefaultMachine() MachineConfig { return cluster.DefaultConfig() }

// BaselineMachine returns a conventional machine with localMiB DRAM per
// node and no pool.
func BaselineMachine(localMiB int64) MachineConfig { return cluster.BaselineConfig(localMiB) }

// SyntheticWorkload generates the default calibrated workload of n jobs
// for the default machine.
func SyntheticWorkload(n int, seed uint64) *Workload {
	return workload.MustGenerate(workload.DefaultGenConfig(n, seed, cluster.DefaultConfig().TotalNodes()))
}

// GenerateWorkload generates a workload from an explicit configuration.
func GenerateWorkload(cfg GenConfig) (*Workload, error) { return workload.Generate(cfg) }

// DefaultGen returns the calibrated workload-generator configuration
// for n jobs on machine mc (job widths scale with the machine).
func DefaultGen(n int, seed uint64, mc MachineConfig) GenConfig {
	return workload.DefaultGenConfig(n, seed, mc.TotalNodes())
}

// LublinWorkload generates a trace from the Lublin-Feitelson (JPDC
// 2003) model with the published constants, sized for machine mc.
func LublinWorkload(n int, seed uint64, mc MachineConfig) (*Workload, error) {
	return workload.GenerateLublin(workload.DefaultLublinConfig(n, seed, mc.TotalNodes()))
}

// ParseModel builds a memory model from a spec like "linear:0.5",
// "step:0.1,0.5" or "bandwidth:0.5,1".
func ParseModel(spec string) (MemoryModel, error) { return memmodel.Parse(spec) }

// WorkloadSource streams an in-memory workload: the adapter that runs
// the classic slice path through Options.Source (bit-identical to
// passing Options.Workload).
func WorkloadSource(w *Workload) Source { return source.FromWorkload(w) }

// SWFSource streams jobs lazily from an SWF trace reader with O(1)
// memory: the bounded-memory replay path for archive-scale traces. The
// trace must be sorted by submit time (the archive convention); the
// caller keeps ownership of r. See also ReadSWF via the workload
// helpers for traces that need sorting.
func SWFSource(r io.Reader, opt SWFReadOptions) Source { return source.SWF(r, opt) }

// GenSource streams the calibrated synthetic generator lazily: with
// cfg.Jobs == 0 it produces until maxJobs jobs have been emitted or the
// first submit past horizonSec (0 disables either cap — an open-ended
// saturation source). A capped stream equals the materialised
// equivalent job for job.
func GenSource(cfg GenConfig, maxJobs int, horizonSec int64) (Source, error) {
	st, err := workload.NewGenStream(cfg)
	if err != nil {
		return nil, err
	}
	return source.Gen(st, maxJobs, horizonSec), nil
}

// LublinSource streams the Lublin–Feitelson generator lazily, with the
// same cap semantics as GenSource.
func LublinSource(cfg LublinConfig, maxJobs int, horizonSec int64) (Source, error) {
	st, err := workload.NewLublinStream(cfg)
	if err != nil {
		return nil, err
	}
	return source.Gen(st, maxJobs, horizonSec), nil
}

// ModulateSource wraps src with a time-varying arrival-rate multiplier
// (the lazy form of the scenario surge/diurnal warp), for custom
// arrival shaping of streamed workloads.
func ModulateSource(src Source, rate func(t float64) float64) Source {
	return source.Modulate(src, rate)
}

// NewJSONLSink returns a Sink writing one JSON object per record line
// to w. The sink buffers; the engine flushes and closes it at the end
// of the run (the caller still closes any underlying file).
func NewJSONLSink(w io.Writer) Sink { return metrics.NewJSONLSink(w) }

// NewCSVSink returns a Sink writing a header plus one CSV row per
// record to w, with the same lifecycle as NewJSONLSink.
func NewCSVSink(w io.Writer) Sink { return metrics.NewCSVSink(w) }

// NewJSONLSeriesSink returns a SeriesSink writing one JSON object per
// sample line to w. The sink buffers; the engine flushes and closes it
// at the end of the run (the caller still closes any underlying file).
func NewJSONLSeriesSink(w io.Writer) SeriesSink { return metrics.NewJSONLSeriesSink(w) }

// NewCSVSeriesSink returns a SeriesSink writing a header plus one CSV
// row per sample to w, with the same lifecycle as NewJSONLSeriesSink.
func NewCSVSeriesSink(w io.Writer) SeriesSink { return metrics.NewCSVSeriesSink(w) }

// NewJSONLTraceSink returns a TraceSink writing one JSON object per
// trace event line to w: the composable export format — an interrupted
// run's trace plus its resume's trace concatenate byte-for-byte to the
// clean run's (DESIGN.md §12). The sink buffers; the engine flushes and
// closes it at the end of the run (the caller still closes any
// underlying file).
func NewJSONLTraceSink(w io.Writer) TraceSink { return trace.NewJSONLSink(w) }

// NewPerfettoTraceSink returns a TraceSink writing Chrome trace-event
// JSON that loads directly in Perfetto (ui.perfetto.dev): jobs as
// duration spans grouped onto per-rack and per-pool tracks, scenario
// interventions and restarts as instant events. Valid JSON only after
// the engine closes it; same lifecycle as NewJSONLTraceSink.
func NewPerfettoTraceSink(w io.Writer) TraceSink { return trace.NewPerfettoSink(w) }

// Options configures a simulation (see New and Simulate).
type Options struct {
	// Machine is the machine configuration (DefaultMachine if zero).
	// Non-zero configurations are validated; nonsense (negative DRAM,
	// zero cores) is an error, not a silent default.
	Machine MachineConfig
	// Policy selects the scheduler: a legacy policy name (see
	// Policies), a registered custom policy (see RegisterPolicy), or a
	// composable spec string (see ParsePolicy). Ignored when
	// SchedulerImpl is set.
	Policy string
	// SchedulerImpl overrides Policy with a concrete scheduler.
	SchedulerImpl Scheduler
	// Model is a memory-model spec (ParseModel syntax); default
	// "linear:0.5". Ignored when ModelImpl is set.
	Model string
	// ModelImpl overrides Model with a concrete implementation.
	ModelImpl MemoryModel
	// Workload is the trace to run. Exactly one of Workload and Source
	// must be set.
	Workload *Workload
	// Source streams the workload lazily instead: memory stays bounded
	// by live simulation state (running + queued jobs), not trace
	// length, which is what makes multi-million-job replay and
	// open-ended saturation runs possible. Streamed jobs are validated
	// as they arrive (structural checks plus submit ordering; the
	// whole-trace duplicate-ID check is skipped) and a mid-stream
	// source error surfaces from Result after in-flight work drains.
	Source Source
	// RecordSink switches metrics to bounded recording: per-job records
	// stream to the sink (DiscardRecords to drop them, NewJSONLSink /
	// NewCSVSink to export) instead of being retained, and the Report's
	// four percentile fields become streaming estimates (exact up to
	// 1024 jobs, P² beyond) — counts, means,
	// utilizations and fairness stay exact. Result.Recorder then
	// retains no records. Nil keeps the default retain-all recorder.
	RecordSink Sink
	// StrictKill disables the dilation-extended walltime limit: jobs
	// are killed at the raw user estimate even when the system itself
	// slowed them down.
	StrictKill bool
	// Failures optionally injects node failures.
	Failures *FailureConfig
	// Scenario optionally perturbs the run with a deterministic
	// intervention timeline (see ParseScenario). Nil and the empty
	// scenario leave the run bit-identical to a scenario-free one; a
	// Scenario is immutable once built and may be shared across
	// concurrent simulations.
	Scenario *Scenario
	// CheckInvariants enables O(machine) state validation per event.
	CheckInvariants bool
	// Observer optionally receives lifecycle callbacks (dispatches,
	// terminations, pass ends, periodic samples). Callbacks must be
	// read-only w.r.t. engine state; a nil Observer costs nothing.
	Observer Observer
	// SampleEvery is the period, in simulated seconds, of periodic
	// sampling ticks (0 = no sampling). Each tick delivers
	// Observer.OnSample and streams a SeriesPoint to SeriesSink;
	// ignored when neither consumer is configured.
	SampleEvery int64
	// SeriesSink streams one utilization SeriesPoint per sampling tick:
	// the time-series analogue of RecordSink. Requires SampleEvery > 0
	// to produce anything. The engine closes the sink at the end of the
	// run.
	SeriesSink SeriesSink
	// TraceSink streams per-job lifecycle trace events in deterministic
	// firing order: submit, dispatch with placement detail (racks,
	// pools, local/remote split), terminate/kill with reason, failure
	// restarts and scenario interventions. Nil is zero-cost; the engine
	// closes the sink exactly once on every terminal path of the run.
	// Unlike SeriesSink, tracing is event-driven and needs no
	// SampleEvery.
	TraceSink TraceSink
}

// Simulate runs one simulation to completion: a convenience wrapper
// over New for callers that need no in-flight observation.
func Simulate(o Options) (*Result, error) {
	s, err := New(o)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// customPolicies holds user-registered scheduler factories
// (RegisterPolicy); they resolve before the spec grammar.
var customPolicies = map[string]func() Scheduler{}

// Policies returns the selectable policy names, sorted: the legacy
// evaluation aliases plus any registered custom policies. Spec strings
// (ParsePolicy) select arbitrarily many more combinations.
func Policies() []string {
	out := spec.Aliases()
	for name := range customPolicies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewScheduler builds a fresh scheduler for a policy name or spec
// string: custom registered policies resolve first, then legacy
// aliases and key=value specs through ParsePolicy.
func NewScheduler(name string) (Scheduler, error) {
	if f, ok := customPolicies[name]; ok {
		return f(), nil
	}
	return ParsePolicy(name)
}

// ParsePolicy compiles a composable policy spec — space-separated
// key=value terms — into a fresh scheduler:
//
//	order=sjf backfill=easy placer=memaware cap=3 patience=1800
//
// Terms: order (fcfs|sjf|wfp|largest), backfill (none|easy|
// conservative), placer (local|spill|memaware, plus RegisterPlacer
// names), cap / balance / shape (memaware admission knobs), patience
// (seconds a spilling job waits for local capacity), maxscan / maxres
// (backfill and reservation depth limits), maxperuser (running-job
// throttle), and name (report label). Unspecified terms default to the
// paper's policy: order=fcfs backfill=easy placer=memaware. A bare
// legacy name ("memaware-patient") expands to its canonical spec, see
// PolicySpec.
func ParsePolicy(policySpec string) (Scheduler, error) {
	s, err := spec.Parse(policySpec)
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	return s, nil
}

// ParseScenario compiles a scenario spec — ';'- or newline-separated
// statements of key=value terms plus one verb, in the same grammar
// family as ParsePolicy — into an intervention timeline:
//
//	at=3600 down rack=2; at=7200 up rack=2
//	at=3600 resize pool=all cap=1048576
//	at=3600 beta scale=2
//	at=86400 grow racks=1
//	from=3600 until=7200 rate=3 surge
//	from=0 period=86400 amp=0.5 diurnal
//
// Timed interventions run as ordinary DES events (bit-identical per
// seed); surge/diurnal statements reshape the workload's arrival
// process before the run starts. Scenario.String() emits a canonical
// spec that parses back to the same scenario.
func ParseScenario(scenarioSpec string) (*Scenario, error) {
	s, err := scenario.Parse(scenarioSpec)
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	return s, nil
}

// PolicySpec returns the canonical spec string a legacy policy name
// expands to, and whether the name is a known alias.
func PolicySpec(name string) (string, bool) { return spec.AliasSpec(name) }

// RegisterPolicy adds a user-defined scheduler under name, resolvable
// through Options.Policy and NewScheduler. The factory must return a
// fresh instance per call (schedulers are per-simulation state).
// Registration is not safe for concurrent use with simulations; do it
// up front. Errors on empty, duplicate, or alias-shadowing names.
func RegisterPolicy(name string, factory func() Scheduler) error {
	if name == "" || factory == nil {
		return fmt.Errorf("dismem: RegisterPolicy needs a name and a factory")
	}
	if _, isAlias := spec.AliasSpec(name); isAlias {
		return fmt.Errorf("dismem: policy %q is a builtin alias", name)
	}
	if _, dup := customPolicies[name]; dup {
		return fmt.Errorf("dismem: policy %q already registered", name)
	}
	customPolicies[name] = factory
	return nil
}

// RegisterPlacer adds a user-defined placement policy under name, so
// policy specs can select it with placer=<name> and compose it with
// any order, backfill discipline, and chassis knob. Same freshness and
// concurrency rules as RegisterPolicy.
func RegisterPlacer(name string, factory func() Placer) error {
	if err := spec.RegisterPlacer(name, factory); err != nil {
		return fmt.Errorf("dismem: %w", err)
	}
	return nil
}

// NewSchedulerWithCap builds the memaware policy with a custom slowdown
// cap, for sensitivity sweeps.
//
// Deprecated: use a policy spec instead, e.g.
// ParsePolicy("placer=memaware cap=1.2") — the spec grammar composes
// the cap with any order, backfill, and patience setting.
func NewSchedulerWithCap(slowdownCap float64) Scheduler {
	s, err := ParsePolicy(fmt.Sprintf("placer=memaware name=memaware(cap=%.2g)", slowdownCap))
	if err != nil {
		panic(fmt.Sprintf("dismem: building capped memaware: %v", err))
	}
	// Set the cap after parsing: unlike the grammar's cap= term, this
	// legacy constructor historically accepted any float (a sub-1 cap
	// admits no remote placement at all, which some sensitivity sweeps
	// probe deliberately).
	s.(*sched.Batch).Placer.(*core.MemAware).SlowdownCap = slowdownCap
	return s
}
