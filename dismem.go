// Package dismem is a simulator and scheduling library for batch job
// scheduling on HPC systems with disaggregated memory resources.
//
// It reproduces the system of the CLUSTER 2024 paper "Job Scheduling in
// High Performance Computing Systems with Disaggregated Memory
// Resources": a discrete-event simulation of racks of nodes with
// reduced local DRAM plus rack-level (or global) memory pools, batch
// schedulers ranging from classic FCFS/EASY/conservative baselines to
// the disaggregation-aware policy, and the metrics the paper's
// evaluation reports.
//
// Quick start — fire and forget:
//
//	wl := dismem.SyntheticWorkload(5000, 1)
//	res, err := dismem.Simulate(dismem.Options{
//		Machine:  dismem.DefaultMachine(),
//		Policy:   "memaware",
//		Model:    "linear:0.5",
//		Workload: wl,
//	})
//
// Policies are composable specs, not just registered names: any
// combination of queue order, backfill discipline, placement policy and
// chassis knobs can be written inline,
//
//	res, err := dismem.Simulate(dismem.Options{
//		Policy:   "order=sjf backfill=easy placer=memaware cap=3 patience=1800",
//		Workload: wl,
//	})
//
// and every legacy name ("memaware", "easy-local", ...) is an alias
// resolved through the same grammar (see ParsePolicy).
//
// For observation and control while a run is in flight, New returns a
// steppable handle instead of a finished result:
//
//	s, err := dismem.New(dismem.Options{Policy: "memaware", Workload: wl})
//	for !s.Done() {
//		s.RunUntil(s.Now() + 3600) // advance one simulated hour
//		fmt.Println(s.Now(), s.QueueDepth(), s.Usage().BusyNodes)
//	}
//	res, err := s.Result()
//
// Runs can be perturbed by a deterministic scenario timeline — outages
// and recoveries, pool degradation, fabric brownouts, arrival surges
// and diurnal cycles, staged growth — compiled from the same key=value
// grammar family (see ParseScenario):
//
//	sc, err := dismem.ParseScenario("at=21600 down rack=2; at=64800 up rack=2")
//	res, err := dismem.Simulate(dismem.Options{
//		Policy: "memaware", Workload: wl, Scenario: sc,
//	})
//
// Interventions run as ordinary simulation events, so scenario runs
// replay bit-identically per seed.
//
// Observer hooks (Options.Observer, Options.SampleEvery) deliver
// per-dispatch, per-termination, per-pass, per-intervention and
// periodic-sample callbacks without polling.
//
// See the examples directory for complete programs and DESIGN.md for
// the architecture and experiment inventory.
package dismem

import (
	"fmt"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/metrics"
	"dismem/internal/scenario"
	"dismem/internal/sched"
	"dismem/internal/sim"
	"dismem/internal/spec"
	"dismem/internal/workload"
)

// Re-exported types: the public API surface wraps the internal packages
// so downstream users never import dismem/internal/... directly.
type (
	// MachineConfig describes the simulated machine (see
	// internal/cluster.Config for field documentation).
	MachineConfig = cluster.Config
	// Workload is an ordered batch of jobs.
	Workload = workload.Workload
	// Job is one batch job.
	Job = workload.Job
	// GenConfig parameterises the synthetic workload generator.
	GenConfig = workload.GenConfig
	// LublinConfig parameterises the Lublin-Feitelson workload model.
	LublinConfig = workload.LublinConfig
	// Report is the reduced result of one simulation.
	Report = metrics.Report
	// JobRecord is the per-job outcome.
	JobRecord = metrics.JobRecord
	// Result bundles report, per-job records and event counts.
	Result = sim.Result
	// Scheduler is the scheduling-policy interface.
	Scheduler = sched.Scheduler
	// Placer is the placement-policy interface schedulers compose; see
	// RegisterPlacer.
	Placer = sched.Placer
	// MemoryModel maps remote fraction and congestion to dilation.
	MemoryModel = memmodel.Model
	// FailureConfig parameterises node failure injection.
	FailureConfig = sim.FailureConfig
	// Scenario is a deterministic intervention timeline: outages and
	// recoveries, pool degradation/resize, remote-penalty shifts,
	// arrival surges and diurnal cycles, staged machine growth. Build
	// one with ParseScenario or construct it literally; see
	// internal/scenario for the grammar and the determinism contract.
	Scenario = scenario.Scenario
	// ScenarioEvent is one timed intervention of a Scenario, delivered
	// to Observer.OnScenarioEvent when applied.
	ScenarioEvent = scenario.Event
	// Observer receives engine lifecycle callbacks (see Options).
	// Implementations must be read-only w.r.t. engine state.
	Observer = sim.Observer
	// NopObserver is an embeddable no-op Observer.
	NopObserver = sim.NopObserver
	// Sample is the live-state snapshot observers and the Simulation
	// handle expose.
	Sample = sim.Sample
	// Usage is the machine occupancy snapshot.
	Usage = cluster.Usage
)

// Topology constants for MachineConfig.
const (
	TopologyNone   = cluster.TopologyNone
	TopologyRack   = cluster.TopologyRack
	TopologyGlobal = cluster.TopologyGlobal
)

// DefaultMachine returns the evaluation machine: 16 racks x 16 nodes x
// 32 cores with 64 GiB local DRAM and 4 TiB rack pools.
func DefaultMachine() MachineConfig { return cluster.DefaultConfig() }

// BaselineMachine returns a conventional machine with localMiB DRAM per
// node and no pool.
func BaselineMachine(localMiB int64) MachineConfig { return cluster.BaselineConfig(localMiB) }

// SyntheticWorkload generates the default calibrated workload of n jobs
// for the default machine.
func SyntheticWorkload(n int, seed uint64) *Workload {
	return workload.MustGenerate(workload.DefaultGenConfig(n, seed, cluster.DefaultConfig().TotalNodes()))
}

// GenerateWorkload generates a workload from an explicit configuration.
func GenerateWorkload(cfg GenConfig) (*Workload, error) { return workload.Generate(cfg) }

// DefaultGen returns the calibrated workload-generator configuration
// for n jobs on machine mc (job widths scale with the machine).
func DefaultGen(n int, seed uint64, mc MachineConfig) GenConfig {
	return workload.DefaultGenConfig(n, seed, mc.TotalNodes())
}

// LublinWorkload generates a trace from the Lublin-Feitelson (JPDC
// 2003) model with the published constants, sized for machine mc.
func LublinWorkload(n int, seed uint64, mc MachineConfig) (*Workload, error) {
	return workload.GenerateLublin(workload.DefaultLublinConfig(n, seed, mc.TotalNodes()))
}

// ParseModel builds a memory model from a spec like "linear:0.5",
// "step:0.1,0.5" or "bandwidth:0.5,1".
func ParseModel(spec string) (MemoryModel, error) { return memmodel.Parse(spec) }

// Options configures a simulation (see New and Simulate).
type Options struct {
	// Machine is the machine configuration (DefaultMachine if zero).
	// Non-zero configurations are validated; nonsense (negative DRAM,
	// zero cores) is an error, not a silent default.
	Machine MachineConfig
	// Policy selects the scheduler: a legacy policy name (see
	// Policies), a registered custom policy (see RegisterPolicy), or a
	// composable spec string (see ParsePolicy). Ignored when
	// SchedulerImpl is set.
	Policy string
	// SchedulerImpl overrides Policy with a concrete scheduler.
	SchedulerImpl Scheduler
	// Model is a memory-model spec (ParseModel syntax); default
	// "linear:0.5". Ignored when ModelImpl is set.
	Model string
	// ModelImpl overrides Model with a concrete implementation.
	ModelImpl MemoryModel
	// Workload is the trace to run.
	Workload *Workload
	// StrictKill disables the dilation-extended walltime limit: jobs
	// are killed at the raw user estimate even when the system itself
	// slowed them down.
	StrictKill bool
	// Failures optionally injects node failures.
	Failures *FailureConfig
	// Scenario optionally perturbs the run with a deterministic
	// intervention timeline (see ParseScenario). Nil and the empty
	// scenario leave the run bit-identical to a scenario-free one; a
	// Scenario is immutable once built and may be shared across
	// concurrent simulations.
	Scenario *Scenario
	// CheckInvariants enables O(machine) state validation per event.
	CheckInvariants bool
	// Observer optionally receives lifecycle callbacks (dispatches,
	// terminations, pass ends, periodic samples). Callbacks must be
	// read-only w.r.t. engine state; a nil Observer costs nothing.
	Observer Observer
	// SampleEvery is the period, in simulated seconds, of periodic
	// Observer.OnSample ticks (0 = no sampling).
	SampleEvery int64
}

// Simulate runs one simulation to completion: a convenience wrapper
// over New for callers that need no in-flight observation.
func Simulate(o Options) (*Result, error) {
	s, err := New(o)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// customPolicies holds user-registered scheduler factories
// (RegisterPolicy); they resolve before the spec grammar.
var customPolicies = map[string]func() Scheduler{}

// Policies returns the selectable policy names, sorted: the legacy
// evaluation aliases plus any registered custom policies. Spec strings
// (ParsePolicy) select arbitrarily many more combinations.
func Policies() []string {
	out := spec.Aliases()
	for name := range customPolicies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewScheduler builds a fresh scheduler for a policy name or spec
// string: custom registered policies resolve first, then legacy
// aliases and key=value specs through ParsePolicy.
func NewScheduler(name string) (Scheduler, error) {
	if f, ok := customPolicies[name]; ok {
		return f(), nil
	}
	return ParsePolicy(name)
}

// ParsePolicy compiles a composable policy spec — space-separated
// key=value terms — into a fresh scheduler:
//
//	order=sjf backfill=easy placer=memaware cap=3 patience=1800
//
// Terms: order (fcfs|sjf|wfp|largest), backfill (none|easy|
// conservative), placer (local|spill|memaware, plus RegisterPlacer
// names), cap / balance / shape (memaware admission knobs), patience
// (seconds a spilling job waits for local capacity), maxscan / maxres
// (backfill and reservation depth limits), maxperuser (running-job
// throttle), and name (report label). Unspecified terms default to the
// paper's policy: order=fcfs backfill=easy placer=memaware. A bare
// legacy name ("memaware-patient") expands to its canonical spec, see
// PolicySpec.
func ParsePolicy(policySpec string) (Scheduler, error) {
	s, err := spec.Parse(policySpec)
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	return s, nil
}

// ParseScenario compiles a scenario spec — ';'- or newline-separated
// statements of key=value terms plus one verb, in the same grammar
// family as ParsePolicy — into an intervention timeline:
//
//	at=3600 down rack=2; at=7200 up rack=2
//	at=3600 resize pool=all cap=1048576
//	at=3600 beta scale=2
//	at=86400 grow racks=1
//	from=3600 until=7200 rate=3 surge
//	from=0 period=86400 amp=0.5 diurnal
//
// Timed interventions run as ordinary DES events (bit-identical per
// seed); surge/diurnal statements reshape the workload's arrival
// process before the run starts. Scenario.String() emits a canonical
// spec that parses back to the same scenario.
func ParseScenario(scenarioSpec string) (*Scenario, error) {
	s, err := scenario.Parse(scenarioSpec)
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	return s, nil
}

// PolicySpec returns the canonical spec string a legacy policy name
// expands to, and whether the name is a known alias.
func PolicySpec(name string) (string, bool) { return spec.AliasSpec(name) }

// RegisterPolicy adds a user-defined scheduler under name, resolvable
// through Options.Policy and NewScheduler. The factory must return a
// fresh instance per call (schedulers are per-simulation state).
// Registration is not safe for concurrent use with simulations; do it
// up front. Errors on empty, duplicate, or alias-shadowing names.
func RegisterPolicy(name string, factory func() Scheduler) error {
	if name == "" || factory == nil {
		return fmt.Errorf("dismem: RegisterPolicy needs a name and a factory")
	}
	if _, isAlias := spec.AliasSpec(name); isAlias {
		return fmt.Errorf("dismem: policy %q is a builtin alias", name)
	}
	if _, dup := customPolicies[name]; dup {
		return fmt.Errorf("dismem: policy %q already registered", name)
	}
	customPolicies[name] = factory
	return nil
}

// RegisterPlacer adds a user-defined placement policy under name, so
// policy specs can select it with placer=<name> and compose it with
// any order, backfill discipline, and chassis knob. Same freshness and
// concurrency rules as RegisterPolicy.
func RegisterPlacer(name string, factory func() Placer) error {
	if err := spec.RegisterPlacer(name, factory); err != nil {
		return fmt.Errorf("dismem: %w", err)
	}
	return nil
}

// NewSchedulerWithCap builds the memaware policy with a custom slowdown
// cap, for sensitivity sweeps.
//
// Deprecated: use a policy spec instead, e.g.
// ParsePolicy("placer=memaware cap=1.2") — the spec grammar composes
// the cap with any order, backfill, and patience setting.
func NewSchedulerWithCap(slowdownCap float64) Scheduler {
	s, err := ParsePolicy(fmt.Sprintf("placer=memaware name=memaware(cap=%.2g)", slowdownCap))
	if err != nil {
		panic(fmt.Sprintf("dismem: building capped memaware: %v", err))
	}
	// Set the cap after parsing: unlike the grammar's cap= term, this
	// legacy constructor historically accepted any float (a sub-1 cap
	// admits no remote placement at all, which some sensitivity sweeps
	// probe deliberately).
	s.(*sched.Batch).Placer.(*core.MemAware).SlowdownCap = slowdownCap
	return s
}
