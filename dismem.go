// Package dismem is a simulator and scheduling library for batch job
// scheduling on HPC systems with disaggregated memory resources.
//
// It reproduces the system of the CLUSTER 2024 paper "Job Scheduling in
// High Performance Computing Systems with Disaggregated Memory
// Resources": a discrete-event simulation of racks of nodes with
// reduced local DRAM plus rack-level (or global) memory pools, batch
// schedulers ranging from classic FCFS/EASY/conservative baselines to
// the disaggregation-aware policy, and the metrics the paper's
// evaluation reports.
//
// Quick start:
//
//	wl := dismem.SyntheticWorkload(5000, 1)
//	res, err := dismem.Simulate(dismem.Options{
//		Machine:  dismem.DefaultMachine(),
//		Policy:   "memaware",
//		Model:    "linear:0.5",
//		Workload: wl,
//	})
//
// See the examples directory for complete programs and DESIGN.md for
// the architecture and experiment inventory.
package dismem

import (
	"fmt"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/metrics"
	"dismem/internal/sched"
	"dismem/internal/sim"
	"dismem/internal/workload"
)

// Re-exported types: the public API surface wraps the internal packages
// so downstream users never import dismem/internal/... directly.
type (
	// MachineConfig describes the simulated machine (see
	// internal/cluster.Config for field documentation).
	MachineConfig = cluster.Config
	// Workload is an ordered batch of jobs.
	Workload = workload.Workload
	// Job is one batch job.
	Job = workload.Job
	// GenConfig parameterises the synthetic workload generator.
	GenConfig = workload.GenConfig
	// LublinConfig parameterises the Lublin-Feitelson workload model.
	LublinConfig = workload.LublinConfig
	// Report is the reduced result of one simulation.
	Report = metrics.Report
	// JobRecord is the per-job outcome.
	JobRecord = metrics.JobRecord
	// Result bundles report, per-job records and event counts.
	Result = sim.Result
	// Scheduler is the scheduling-policy interface.
	Scheduler = sched.Scheduler
	// MemoryModel maps remote fraction and congestion to dilation.
	MemoryModel = memmodel.Model
	// FailureConfig parameterises node failure injection.
	FailureConfig = sim.FailureConfig
)

// Topology constants for MachineConfig.
const (
	TopologyNone   = cluster.TopologyNone
	TopologyRack   = cluster.TopologyRack
	TopologyGlobal = cluster.TopologyGlobal
)

// DefaultMachine returns the evaluation machine: 16 racks x 16 nodes x
// 32 cores with 64 GiB local DRAM and 4 TiB rack pools.
func DefaultMachine() MachineConfig { return cluster.DefaultConfig() }

// BaselineMachine returns a conventional machine with localMiB DRAM per
// node and no pool.
func BaselineMachine(localMiB int64) MachineConfig { return cluster.BaselineConfig(localMiB) }

// SyntheticWorkload generates the default calibrated workload of n jobs
// for the default machine.
func SyntheticWorkload(n int, seed uint64) *Workload {
	return workload.MustGenerate(workload.DefaultGenConfig(n, seed, cluster.DefaultConfig().TotalNodes()))
}

// GenerateWorkload generates a workload from an explicit configuration.
func GenerateWorkload(cfg GenConfig) (*Workload, error) { return workload.Generate(cfg) }

// DefaultGen returns the calibrated workload-generator configuration
// for n jobs on machine mc (job widths scale with the machine).
func DefaultGen(n int, seed uint64, mc MachineConfig) GenConfig {
	return workload.DefaultGenConfig(n, seed, mc.TotalNodes())
}

// LublinWorkload generates a trace from the Lublin-Feitelson (JPDC
// 2003) model with the published constants, sized for machine mc.
func LublinWorkload(n int, seed uint64, mc MachineConfig) (*Workload, error) {
	return workload.GenerateLublin(workload.DefaultLublinConfig(n, seed, mc.TotalNodes()))
}

// ParseModel builds a memory model from a spec like "linear:0.5",
// "step:0.1,0.5" or "bandwidth:0.5,1".
func ParseModel(spec string) (MemoryModel, error) { return memmodel.Parse(spec) }

// Options configures Simulate.
type Options struct {
	// Machine is the machine configuration (DefaultMachine if zero).
	Machine MachineConfig
	// Policy is a registered policy name; see Policies. Ignored when
	// SchedulerImpl is set.
	Policy string
	// SchedulerImpl overrides Policy with a concrete scheduler.
	SchedulerImpl Scheduler
	// Model is a memory-model spec (ParseModel syntax); default
	// "linear:0.5". Ignored when ModelImpl is set.
	Model string
	// ModelImpl overrides Model with a concrete implementation.
	ModelImpl MemoryModel
	// Workload is the trace to run.
	Workload *Workload
	// StrictKill disables the dilation-extended walltime limit: jobs
	// are killed at the raw user estimate even when the system itself
	// slowed them down.
	StrictKill bool
	// Failures optionally injects node failures.
	Failures *FailureConfig
	// CheckInvariants enables O(machine) state validation per event.
	CheckInvariants bool
}

// Simulate runs one simulation to completion.
func Simulate(o Options) (*Result, error) {
	if o.Workload == nil {
		return nil, fmt.Errorf("dismem: nil workload")
	}
	mc := o.Machine
	if mc.Racks == 0 {
		mc = DefaultMachine()
	}
	model := o.ModelImpl
	if model == nil {
		spec := o.Model
		if spec == "" {
			spec = "linear:0.5"
		}
		var err error
		model, err = memmodel.Parse(spec)
		if err != nil {
			return nil, err
		}
	}
	s := o.SchedulerImpl
	if s == nil {
		var err error
		s, err = NewScheduler(o.Policy)
		if err != nil {
			return nil, err
		}
	}
	return sim.Run(sim.Config{
		Machine:         mc,
		Model:           model,
		Scheduler:       s,
		ExtendLimit:     !o.StrictKill,
		CheckInvariants: o.CheckInvariants,
		Failures:        o.Failures,
	}, o.Workload)
}

// policyFactories maps policy names to constructors. Each call builds a
// fresh scheduler so concurrent simulations never share state.
var policyFactories = map[string]func() sched.Scheduler{
	// Conventional baselines: local DRAM only.
	"fcfs-local": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "fcfs-local", Order: sched.FCFS{}, Backfill: sched.BackfillNone, Placer: sched.LocalOnly{}}
	},
	"easy-local": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "easy-local", Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: sched.LocalOnly{}}
	},
	"cons-local": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "cons-local", Order: sched.FCFS{}, Backfill: sched.BackfillConservative, Placer: sched.LocalOnly{}}
	},
	"sjf-local": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "sjf-local", Order: sched.SJF{}, Backfill: sched.BackfillEASY, Placer: sched.LocalOnly{}}
	},
	"wfp-local": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "wfp-local", Order: sched.WFP{}, Backfill: sched.BackfillEASY, Placer: sched.LocalOnly{}}
	},
	// Disaggregation-oblivious spill: uses the pool, ignores slowdown.
	"easy-oblivious": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "easy-oblivious", Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: sched.Spill{}}
	},
	"cons-oblivious": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "cons-oblivious", Order: sched.FCFS{}, Backfill: sched.BackfillConservative, Placer: sched.Spill{}}
	},
	// The paper's contribution and its ablations.
	"memaware": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "memaware", Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: core.New()}
	},
	"memaware-cons": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "memaware-cons", Order: sched.FCFS{}, Backfill: sched.BackfillConservative, Placer: core.New()}
	},
	"memaware-nocap": func() sched.Scheduler {
		p := core.New()
		p.SlowdownCap = 0
		return &sched.Batch{PolicyName: "memaware-nocap", Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: p}
	},
	"memaware-nobal": func() sched.Scheduler {
		p := core.New()
		p.Balance = false
		return &sched.Batch{PolicyName: "memaware-nobal", Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: p}
	},
	"memaware-noshape": func() sched.Scheduler {
		p := core.New()
		p.Shape = false
		return &sched.Batch{PolicyName: "memaware-noshape", Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: p}
	},
	// Patience: prefer waiting up to 30 min for local capacity before
	// accepting a dilated remote placement.
	"memaware-patient": func() sched.Scheduler {
		return &sched.Batch{PolicyName: "memaware-patient", Order: sched.FCFS{}, Backfill: sched.BackfillEASY,
			Placer: core.New(), SpillPatience: 1800}
	},
}

// Policies returns the registered policy names, sorted.
func Policies() []string {
	out := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewScheduler builds a fresh scheduler for a registered policy name.
func NewScheduler(name string) (Scheduler, error) {
	f, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("dismem: unknown policy %q (known: %v)", name, Policies())
	}
	return f(), nil
}

// NewSchedulerWithCap builds the memaware policy with a custom slowdown
// cap, for sensitivity sweeps.
func NewSchedulerWithCap(cap float64) Scheduler {
	p := core.New()
	p.SlowdownCap = cap
	return &sched.Batch{
		PolicyName: fmt.Sprintf("memaware(cap=%.2g)", cap),
		Order:      sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: p,
	}
}
