package dismem_test

import (
	"bytes"
	"strings"
	"testing"

	"dismem"
	"dismem/internal/workload"
)

func TestPoliciesRegistry(t *testing.T) {
	pols := dismem.Policies()
	want := []string{"easy-local", "easy-oblivious", "fcfs-local", "memaware"}
	for _, w := range want {
		found := false
		for _, p := range pols {
			if p == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("policy %q missing from registry %v", w, pols)
		}
	}
	for _, p := range pols {
		s, err := dismem.NewScheduler(p)
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", p, err)
		}
		if s.Name() != p {
			t.Fatalf("scheduler for %q reports name %q", p, s.Name())
		}
	}
	if _, err := dismem.NewScheduler("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSchedulersAreFreshInstances(t *testing.T) {
	a, _ := dismem.NewScheduler("memaware")
	b, _ := dismem.NewScheduler("memaware")
	if a == b {
		t.Fatal("NewScheduler returned a shared instance")
	}
}

func TestSimulateSmoke(t *testing.T) {
	wl := dismem.SyntheticWorkload(600, 1)
	res, err := dismem.Simulate(dismem.Options{
		Policy:   "memaware",
		Model:    "linear:0.5",
		Workload: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Jobs()+r.Rejected != 600 {
		t.Fatalf("job conservation: %d+%d != 600", r.Jobs(), r.Rejected)
	}
	if r.NodeUtil <= 0 || r.NodeUtil > 1 {
		t.Fatalf("node util %g outside (0,1]", r.NodeUtil)
	}
}

func TestSimulateDefaults(t *testing.T) {
	wl := dismem.SyntheticWorkload(200, 2)
	// Zero machine and empty model pick the documented defaults.
	res, err := dismem.Simulate(dismem.Options{Policy: "easy-oblivious", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobs() == 0 {
		t.Fatal("no jobs ran under defaults")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := dismem.Simulate(dismem.Options{Policy: "memaware"}); err == nil {
		t.Fatal("nil workload accepted")
	}
	wl := dismem.SyntheticWorkload(10, 1)
	if _, err := dismem.Simulate(dismem.Options{Policy: "nope", Workload: wl}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := dismem.Simulate(dismem.Options{Policy: "memaware", Model: "zap:1", Workload: wl}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	wl := dismem.SyntheticWorkload(400, 5)
	runOnce := func() *dismem.Report {
		res, err := dismem.Simulate(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}
	a, b := runOnce(), runOnce()
	if a.Wait.Mean() != b.Wait.Mean() || a.NodeUtil != b.NodeUtil || a.Completed != b.Completed {
		t.Fatal("identical simulations diverged")
	}
}

func TestNewSchedulerWithCap(t *testing.T) {
	s := dismem.NewSchedulerWithCap(1.2)
	if !strings.Contains(s.Name(), "1.2") {
		t.Fatalf("name %q does not carry the cap", s.Name())
	}
	wl := dismem.SyntheticWorkload(300, 1)
	res, err := dismem.Simulate(dismem.Options{SchedulerImpl: s, Model: "linear:1", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	// Every admitted remote job must respect the tighter cap.
	for _, r := range res.Recorder.Records() {
		if !r.Rejected && r.RemoteMiB > 0 && r.Dilation > 1.2+1e-9 {
			t.Fatalf("job %d dilation %g exceeds cap 1.2", r.ID, r.Dilation)
		}
	}
	// Unlike the grammar's cap= term (which rejects (0,1) as a likely
	// mistake), the legacy constructor accepts any float: a sub-1 cap
	// admits no remote placement at all.
	sub := dismem.NewSchedulerWithCap(0.5)
	res, err = dismem.Simulate(dismem.Options{SchedulerImpl: sub, Model: "linear:1", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Recorder.Records() {
		if r.RemoteMiB > 0 {
			t.Fatalf("job %d used %d MiB of pool under an uncrossable cap", r.ID, r.RemoteMiB)
		}
	}
}

func TestBaselineRunsWholeWorkload(t *testing.T) {
	// The 256 GiB baseline must accept every generated job (footprints
	// are capped at 256 GiB): zero rejections by construction.
	wl := dismem.SyntheticWorkload(500, 3)
	res, err := dismem.Simulate(dismem.Options{
		Machine:  dismem.BaselineMachine(256 * 1024),
		Policy:   "easy-local",
		Workload: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Rejected != 0 {
		t.Fatalf("baseline rejected %d jobs", res.Report.Rejected)
	}
}

func TestSWFThroughPublicAPI(t *testing.T) {
	// Generate → write SWF → read back → simulate: the trace-import
	// path users exercise with real archive traces.
	wl := dismem.SyntheticWorkload(200, 4)
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, wl); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := workload.ReadSWF(&buf, workload.SWFReadOptions{})
	if err != nil || skipped != 0 {
		t.Fatalf("read back: %v (skipped %d)", err, skipped)
	}
	res, err := dismem.Simulate(dismem.Options{Policy: "memaware", Workload: back})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobs()+res.Report.Rejected != 200 {
		t.Fatal("SWF round-trip lost jobs")
	}
}

func TestSimulateWithFailures(t *testing.T) {
	wl := dismem.SyntheticWorkload(300, 6)
	res, err := dismem.Simulate(dismem.Options{
		Policy:   "memaware",
		Workload: wl,
		Failures: &dismem.FailureConfig{MTBFPerNodeSec: 200 * 3600, RepairSec: 3600, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.NodeFailures == 0 {
		t.Fatal("no failures injected at MTBF 200h on a 256-node machine")
	}
	if r.Jobs()+r.Rejected != 300 {
		t.Fatalf("job conservation with failures: %d+%d != 300", r.Jobs(), r.Rejected)
	}
	// Restart counts on records must sum to the failure-kill total minus
	// abandoned attempts (each record carries its own restarts).
	total := 0
	for _, rec := range res.Recorder.Records() {
		total += rec.Restarts
	}
	if total != r.FailureKills {
		t.Fatalf("restart accounting: records sum %d, report %d", total, r.FailureKills)
	}
}

func TestFairnessThroughFacade(t *testing.T) {
	wl := dismem.SyntheticWorkload(400, 8)
	res, err := dismem.Simulate(dismem.Options{Policy: "easy-oblivious", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	fair := res.Recorder.Fairness()
	if len(fair.Users) == 0 {
		t.Fatal("no per-user stats")
	}
	if fair.JainWait <= 0 || fair.JainWait > 1 {
		t.Fatalf("JainWait = %g outside (0,1]", fair.JainWait)
	}
	if fair.GiniNodeHours < 0 || fair.GiniNodeHours > 1 {
		t.Fatalf("GiniNodeHours = %g outside [0,1]", fair.GiniNodeHours)
	}
	jobs := 0
	for _, u := range fair.Users {
		jobs += u.Jobs
	}
	if jobs != res.Report.Jobs() {
		t.Fatalf("per-user jobs %d != report jobs %d", jobs, res.Report.Jobs())
	}
}

func TestDefaultGenScalesToMachine(t *testing.T) {
	mc := dismem.DefaultMachine()
	mc.Racks = 2 // 32-node machine
	gen := dismem.DefaultGen(100, 1, mc)
	if gen.MaxNodes != 32 {
		t.Fatalf("MaxNodes = %d, want 32", gen.MaxNodes)
	}
}
