// Capacity planning: how much node-local DRAM can be shed if a rack
// pool holds total system memory constant? This is the operator
// question behind the paper's DRAM-downsizing experiment (Fig 5; run
// `dmsweep -exp fig5` for the full version).
//
// Each configuration runs through the steppable handle with an early
// abort: if the queue backlog explodes the configuration is hopeless,
// so the run is cut off instead of simulated to the bitter end — the
// scenario-fan-out pattern internal/sweep exposes as Cell.StopWhen.
//
//	go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"

	"dismem"
)

// backlogAbort stops a run once the queue backlog passes a threshold.
type backlogAbort struct {
	dismem.NopObserver
	sim   *dismem.Simulation
	limit int
}

// OnSample implements dismem.Observer.
func (a *backlogAbort) OnSample(s dismem.Sample) {
	if s.QueueDepth > a.limit {
		a.sim.Stop()
	}
}

func main() {
	const jobs = 1200
	const baselineGiB = 256 // the conventional machine's DRAM per node

	fmt.Println("DRAM downsizing at constant total memory (memaware, linear β=0.5)")
	fmt.Printf("%-16s %-16s %12s %12s %10s\n",
		"local GiB/node", "pool GiB/rack", "wait (s)", "jobs/hour", "dilation")

	for _, localGiB := range []int64{256, 128, 96, 64, 32} {
		mc := dismem.DefaultMachine()
		mc.LocalMemMiB = localGiB * 1024
		poolGiBPerRack := (baselineGiB - localGiB) * 16 // 16 nodes/rack
		if poolGiBPerRack == 0 {
			mc = dismem.BaselineMachine(baselineGiB * 1024)
		} else {
			mc.PoolMiB = poolGiBPerRack * 1024
		}
		policy := "memaware"
		if mc.Topology == dismem.TopologyNone {
			policy = "easy-local" // no pool to be aware of
		}

		// Half the trace queued at one instant means the machine is not
		// keeping up with arrivals at all — divergence, for this trace.
		abort := &backlogAbort{limit: jobs / 2}
		wl := dismem.SyntheticWorkload(jobs, 7)
		sim, err := dismem.New(dismem.Options{
			Machine: mc, Policy: policy, Model: "linear:0.5", Workload: wl,
			Observer: abort, SampleEvery: 6 * 3600,
		})
		if err != nil {
			log.Fatal(err)
		}
		abort.sim = sim
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		note := ""
		if res.Stopped {
			note = "  (aborted: backlog diverged)"
		}
		fmt.Printf("%-16d %-16d %12.0f %12.1f %10.2f%s\n",
			localGiB, poolGiBPerRack, r.Wait.Mean(),
			r.ThroughputPerHour, r.DilationRemote.Mean(), note)
	}
	fmt.Println("\nReading: with a pool absorbing the freed DRAM, nodes keep most of")
	fmt.Println("their throughput down to a fraction of the original local memory.")
}
