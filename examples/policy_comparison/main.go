// Policy comparison: run the same workload under every registered
// scheduling policy on the same disaggregated machine and print a
// side-by-side table — a miniature of the paper's headline comparison
// (Table 2; run `dmsweep -exp table2` for the full version).
//
//	go run ./examples/policy_comparison
package main

import (
	"fmt"
	"log"

	"dismem"
)

func main() {
	const jobs = 1500

	// A moderately stressed machine: 64 GiB local, 2 TiB rack pools,
	// RDMA-class penalty with fabric contention.
	mc := dismem.DefaultMachine()
	mc.PoolMiB = 2 * 1024 * 1024
	mc.FabricGiBps = 8

	fmt.Printf("%-18s %10s %10s %8s %8s %8s %8s\n",
		"policy", "wait(s)", "p95(s)", "bsld", "util", "remote", "dil")
	for _, policy := range dismem.Policies() {
		// Same seed → same trace for every policy: differences below
		// are purely scheduling.
		wl := dismem.SyntheticWorkload(jobs, 42)
		res, err := dismem.Simulate(dismem.Options{
			Machine:  mc,
			Policy:   policy,
			Model:    "bandwidth:1,1",
			Workload: wl,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%-18s %10.0f %10.0f %8.1f %7.1f%% %7.1f%% %8.2f\n",
			policy, r.Wait.Mean(), r.P95Wait, r.BSld.Mean(),
			100*r.NodeUtil, 100*r.RemoteJobFraction, r.DilationRemote.Mean())
	}
	fmt.Println("\n(dil = mean runtime dilation of pool-using jobs; the memory-aware")
	fmt.Println(" policy caps it at 1.5x while the oblivious spiller does not)")
}
