// Policy comparison: run the same workload under every legacy policy
// alias plus a few spec-only combinations on the same disaggregated
// machine and print a side-by-side table — a miniature of the paper's
// headline comparison (Table 2; run `dmsweep -exp table2` for the full
// version), extended the way the spec grammar makes trivial: policies
// that were never pre-registered are just strings.
//
//	go run ./examples/policy_comparison
package main

import (
	"fmt"
	"log"

	"dismem"
)

func main() {
	const jobs = 1500

	// A moderately stressed machine: 64 GiB local, 2 TiB rack pools,
	// RDMA-class penalty with fabric contention.
	mc := dismem.DefaultMachine()
	mc.PoolMiB = 2 * 1024 * 1024
	mc.FabricGiBps = 8

	// Every legacy alias resolves through the spec parser; show the
	// expansion alongside the result.
	fmt.Printf("%-18s %10s %10s %8s %8s %8s %8s\n",
		"policy", "wait(s)", "p95(s)", "bsld", "util", "remote", "dil")
	for _, policy := range dismem.Policies() {
		run(mc, policy, jobs)
	}

	// Spec-only combinations: nothing below was ever pre-registered.
	fmt.Println()
	for _, s := range []string{
		"order=sjf backfill=easy placer=memaware cap=3",
		"order=largest backfill=conservative placer=memaware patience=1800",
		"order=wfp backfill=easy placer=spill maxperuser=2",
	} {
		run(mc, s, jobs)
	}
	fmt.Println("\n(dil = mean runtime dilation of pool-using jobs; the memory-aware")
	fmt.Println(" policy caps it while the oblivious spiller does not)")
}

// run simulates one policy (name or spec) and prints its table row,
// labelled by the policy string itself.
func run(mc dismem.MachineConfig, policy string, jobs int) {
	// Same seed → same trace for every policy: differences below are
	// purely scheduling.
	wl := dismem.SyntheticWorkload(jobs, 42)
	res, err := dismem.Simulate(dismem.Options{
		Machine:  mc,
		Policy:   policy,
		Model:    "bandwidth:1,1",
		Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(policy) > 18 {
		fmt.Printf("%s\n%-18s", policy, "")
	} else {
		fmt.Printf("%-18s", policy)
	}
	r := res.Report
	fmt.Printf(" %10.0f %10.0f %8.1f %7.1f%% %7.1f%% %8.2f\n",
		r.Wait.Mean(), r.P95Wait, r.BSld.Mean(),
		100*r.NodeUtil, 100*r.RemoteJobFraction, r.DilationRemote.Mean())
}
