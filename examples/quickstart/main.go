// Quickstart: simulate one synthetic day of batch jobs on the default
// disaggregated machine with the memory-aware scheduler and print the
// headline metrics.
//
// The simulation runs through the steppable handle: dismem.New returns
// at virtual time 0, the loop advances one simulated day at a time and
// peeks at live state between advances, and Result collects the final
// report. dismem.Simulate wraps exactly this when no observation is
// needed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dismem"
)

func main() {
	// 2000 jobs on the default machine: 16 racks x 16 nodes, 64 GiB
	// local DRAM per node, a 4 TiB disaggregated pool per rack.
	wl := dismem.SyntheticWorkload(2000, 1)

	// The policy is a composable spec: the paper's memory-aware placer
	// behind EASY backfill with a 1.5x slowdown cap (the legacy alias
	// "memaware" expands to the same thing).
	sim, err := dismem.New(dismem.Options{
		Machine:  dismem.DefaultMachine(),
		Policy:   "order=fcfs backfill=easy placer=memaware cap=1.5",
		Model:    "linear:0.5", // CXL-class remote penalty
		Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dismem quickstart — memory-aware scheduling on a disaggregated machine")
	for !sim.Done() {
		sim.RunUntil(sim.Now() + 24*3600) // advance one simulated day
		fmt.Printf("  day %2d: %4d queued, %3d running, %3d nodes busy\n",
			sim.Now()/(24*3600), sim.QueueDepth(), sim.Running(), sim.Usage().BusyNodes)
	}

	res, err := sim.Result()
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report
	fmt.Printf("  jobs:             %d completed, %d killed, %d rejected\n",
		r.Completed, r.Killed, r.Rejected)
	fmt.Printf("  mean wait:        %.0f s (p95 %.0f s)\n", r.Wait.Mean(), r.P95Wait)
	fmt.Printf("  bounded slowdown: %.1f (mean)\n", r.BSld.Mean())
	fmt.Printf("  node utilization: %.1f%%\n", 100*r.NodeUtil)
	fmt.Printf("  pool utilization: %.1f%%\n", 100*r.PoolUtil)
	fmt.Printf("  pool-using jobs:  %.1f%% (mean dilation %.2fx)\n",
		100*r.RemoteJobFraction, r.DilationRemote.Mean())
	fmt.Printf("  makespan:         %.1f h (%d simulation events)\n",
		float64(r.MakespanSec)/3600, res.Events)
}
