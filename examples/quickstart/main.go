// Quickstart: simulate one synthetic day of batch jobs on the default
// disaggregated machine with the memory-aware scheduler and print the
// headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dismem"
)

func main() {
	// 2000 jobs on the default machine: 16 racks x 16 nodes, 64 GiB
	// local DRAM per node, a 4 TiB disaggregated pool per rack.
	wl := dismem.SyntheticWorkload(2000, 1)

	res, err := dismem.Simulate(dismem.Options{
		Machine:  dismem.DefaultMachine(),
		Policy:   "memaware",
		Model:    "linear:0.5", // CXL-class remote penalty
		Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := res.Report
	fmt.Println("dismem quickstart — memory-aware scheduling on a disaggregated machine")
	fmt.Printf("  jobs:             %d completed, %d killed, %d rejected\n",
		r.Completed, r.Killed, r.Rejected)
	fmt.Printf("  mean wait:        %.0f s (p95 %.0f s)\n", r.Wait.Mean(), r.P95Wait)
	fmt.Printf("  bounded slowdown: %.1f (mean)\n", r.BSld.Mean())
	fmt.Printf("  node utilization: %.1f%%\n", 100*r.NodeUtil)
	fmt.Printf("  pool utilization: %.1f%%\n", 100*r.PoolUtil)
	fmt.Printf("  pool-using jobs:  %.1f%% (mean dilation %.2fx)\n",
		100*r.RemoteJobFraction, r.DilationRemote.Mean())
	fmt.Printf("  makespan:         %.1f h (%d simulation events)\n",
		float64(r.MakespanSec)/3600, res.Events)
}
