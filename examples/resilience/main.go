// Resilience: inject node failures at several MTBF levels and watch
// their toll on the memory-aware machine — node failures kill the jobs
// above them, the site resubmits (up to 3 restarts), and waits inflate
// from lost capacity plus redone work. Also prints per-user fairness,
// which degrades as restarts hit some users harder than others.
//
// The failure toll is tallied live through an Observer: OnTerminate
// fires once per job with its final record, so the tally is complete
// the instant the run is — no post-hoc scan over the recorder.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"dismem"
)

// tally counts terminal outcomes as they happen.
type tally struct {
	dismem.NopObserver
	restarts, killed, done int
}

// OnTerminate implements dismem.Observer.
func (t *tally) OnTerminate(_ int64, rec dismem.JobRecord) {
	t.done++
	t.restarts += rec.Restarts
	if rec.Killed {
		t.killed++
	}
}

func main() {
	const jobs = 1000

	fmt.Println("Node failures on the disaggregated machine (memaware, repair 1 h)")
	fmt.Printf("%-14s %10s %10s %12s %10s %12s\n",
		"MTBF h/node", "failures", "restarts", "wait (s)", "killed", "Jain(wait)")

	for _, mtbfHours := range []int64{0, 1000, 250, 50} {
		var failures *dismem.FailureConfig
		if mtbfHours > 0 {
			failures = &dismem.FailureConfig{
				MTBFPerNodeSec: mtbfHours * 3600,
				RepairSec:      3600,
				Seed:           1,
			}
		}
		counts := &tally{}
		wl := dismem.SyntheticWorkload(jobs, 21)
		res, err := dismem.Simulate(dismem.Options{
			Machine:  dismem.DefaultMachine(),
			Policy:   "memaware",
			Model:    "linear:0.5",
			Workload: wl,
			Failures: failures,
			Observer: counts,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		if counts.done != r.Jobs()+r.Rejected || counts.restarts != r.FailureKills {
			log.Fatalf("observer tally (%d done, %d restarts) disagrees with report (%d, %d)",
				counts.done, counts.restarts, r.Jobs()+r.Rejected, r.FailureKills)
		}
		fair := res.Recorder.Fairness()
		label := "reliable"
		if mtbfHours > 0 {
			label = fmt.Sprintf("%d", mtbfHours)
		}
		fmt.Printf("%-14s %10d %10d %12.0f %9.1f%% %12.3f\n",
			label, r.NodeFailures, counts.restarts,
			r.Wait.Mean(), 100*r.KilledFraction(), fair.JainWait)
	}
	fmt.Println("\n(restarts = failure kills that were resubmitted; a job is abandoned")
	fmt.Println(" and counted killed after 3 restarts)")
}
