// Resilience: perturb the memory-aware machine with deterministic
// scenario timelines — a planned rack outage of growing severity
// stacked on a diurnal arrival cycle — and watch the toll: outage kills
// become resubmissions (up to 3 restarts), waits inflate from the lost
// capacity and redone work, and per-user fairness degrades as restarts
// hit some users harder than others.
//
// Before the scenario subsystem this example hand-rolled its own
// failure injection; now the whole intervention timeline is one
// Options.Scenario spec, every run shares the single workload seed, and
// the same timeline can be replayed bit-identically against any policy
// (try it with Policy: "easy-oblivious").
//
// The toll is tallied live through an Observer: OnScenarioEvent fires
// per intervention and OnTerminate once per job with its final record,
// so the tally is complete the instant the run is — no post-hoc scan
// over the recorder.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"strings"

	"dismem"
)

// tally counts terminal outcomes and interventions as they happen.
type tally struct {
	dismem.NopObserver
	restarts, killed, done, interventions int
}

// OnTerminate implements dismem.Observer.
func (t *tally) OnTerminate(_ int64, rec dismem.JobRecord) {
	t.done++
	t.restarts += rec.Restarts
	if rec.Killed {
		t.killed++
	}
}

// OnScenarioEvent implements dismem.Observer.
func (t *tally) OnScenarioEvent(int64, dismem.ScenarioEvent) { t.interventions++ }

// outage builds the scenario: racks 0..n-1 go down at t=6 h and come
// back at t=18 h, under a ±40% diurnal arrival cycle.
func outage(n int) (*dismem.Scenario, error) {
	stmts := []string{"from=0 period=86400 amp=0.4 diurnal"}
	for r := 0; r < n; r++ {
		stmts = append(stmts,
			fmt.Sprintf("at=%d down rack=%d", 6*3600, r),
			fmt.Sprintf("at=%d up rack=%d", 18*3600, r))
	}
	return dismem.ParseScenario(strings.Join(stmts, "; "))
}

func main() {
	const jobs = 1000

	fmt.Println("Planned 12 h rack outages on the disaggregated machine (memaware, diurnal arrivals)")
	fmt.Printf("%-12s %14s %10s %12s %10s %12s\n",
		"racks down", "interventions", "restarts", "wait (s)", "killed", "Jain(wait)")

	wl := dismem.SyntheticWorkload(jobs, 21)
	for _, racks := range []int{0, 1, 2, 4} {
		sc, err := outage(racks)
		if err != nil {
			log.Fatal(err)
		}
		counts := &tally{}
		res, err := dismem.Simulate(dismem.Options{
			Machine:  dismem.DefaultMachine(),
			Policy:   "memaware",
			Model:    "linear:0.5",
			Workload: wl,
			Scenario: sc,
			Observer: counts,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		if counts.done != r.Jobs()+r.Rejected || counts.restarts != r.FailureKills {
			log.Fatalf("observer tally (%d done, %d restarts) disagrees with report (%d, %d)",
				counts.done, counts.restarts, r.Jobs()+r.Rejected, r.FailureKills)
		}
		if counts.interventions != res.ScenarioEvents {
			log.Fatalf("observer saw %d interventions, result says %d",
				counts.interventions, res.ScenarioEvents)
		}
		fair := res.Recorder.Fairness()
		fmt.Printf("%-12d %14d %10d %12.0f %9.1f%% %12.3f\n",
			racks, res.ScenarioEvents, counts.restarts,
			r.Wait.Mean(), 100*r.KilledFraction(), fair.JainWait)
	}
	fmt.Println("\n(restarts = outage kills that were resubmitted; a job is abandoned")
	fmt.Println(" and counted killed after 3 restarts; the timeline replays")
	fmt.Println(" bit-identically per seed — swap the policy and compare)")
}
