// Streaming replay: generate an SWF trace to disk without ever holding
// it in memory, then replay it through a streaming Source with bounded
// metrics recording — the path that scales to Parallel Workloads
// Archive traces of millions of jobs. Memory stays proportional to the
// live simulation state (running + queued jobs), not the trace length,
// and per-job records stream to a JSONL file instead of accumulating.
//
//	go run ./examples/streaming_replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dismem"
	"dismem/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "dismem-stream")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tracePath := filepath.Join(dir, "trace.swf")
	recordsPath := filepath.Join(dir, "records.jsonl")

	// 1. Stream a Lublin-Feitelson trace straight to SWF: the lazy
	// generator feeds the streaming encoder one job at a time (this is
	// what `tracegen -n` does; swap in a real archive trace here).
	mc := dismem.DefaultMachine()
	gcfg := workload.DefaultLublinConfig(0, 42, mc.TotalNodes())
	gcfg.MeanInterarrival = 1800 // keep offered load under capacity
	src, err := dismem.LublinSource(gcfg, 50_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	sw := workload.NewSWFWriter(tf)
	sw.Comment("50k-job Lublin trace, streamed by examples/streaming_replay")
	if err := sw.WriteAll(src.Next); err != nil {
		log.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s (%.1f MiB) with flat memory\n\n", tracePath, float64(st.Size())/(1<<20))

	// 2. Replay it: SWFSource decodes jobs lazily as the virtual clock
	// reaches them, and the JSONL sink streams every job record out
	// instead of retaining it (bounded recording: the report's
	// percentile fields become estimates — exact up to 1024 jobs, P²
	// beyond — everything else is exact).
	in, err := os.Open(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(recordsPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()

	res, err := dismem.Simulate(dismem.Options{
		Machine:    mc,
		Policy:     "memaware",
		Model:      "bandwidth:1,1",
		Source:     dismem.SWFSource(in, dismem.SWFReadOptions{DefaultMemPerNode: mc.LocalMemMiB / 2}),
		RecordSink: dismem.NewJSONLSink(out),
	})
	if err != nil {
		log.Fatal(err)
	}

	r := res.Report
	fmt.Printf("replayed %d jobs (%d rejected) in %d DES events\n",
		r.Jobs(), r.Rejected, res.Events)
	fmt.Printf("makespan          %.1f h\n", float64(r.MakespanSec)/3600)
	fmt.Printf("mean wait         %.0f s (p95 ≈ %.0f s, streaming estimate)\n", r.Wait.Mean(), r.P95Wait)
	fmt.Printf("node utilization  %.1f%%\n", 100*r.NodeUtil)
	fmt.Printf("pool-using jobs   %.1f%% (mean dilation %.2f)\n",
		100*r.RemoteJobFraction, r.DilationRemote.Mean())
	fair := res.Recorder.Fairness()
	fmt.Printf("fairness          Jain(wait) %.3f over %d users (exact in bounded mode)\n",
		fair.JainWait, len(fair.Users))

	rs, err := os.Stat(recordsPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-job records streamed to %s (%.1f MiB); none retained in memory\n",
		recordsPath, float64(rs.Size())/(1<<20))
}
