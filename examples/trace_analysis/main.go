// Trace analysis: generate a synthetic trace, write it in the Standard
// Workload Format, read it back (the same path used for real Parallel
// Workloads Archive traces), summarise it, and replay it under two
// policies.
//
//	go run ./examples/trace_analysis
package main

import (
	"bytes"
	"fmt"
	"log"

	"dismem"
	"dismem/internal/workload"
)

func main() {
	// 1. Generate a trace with tighter-than-default user estimates.
	gen := dismem.DefaultGen(1000, 11, dismem.DefaultMachine())
	gen.EstimateAccuracy = 0.6
	wl, err := dismem.GenerateWorkload(gen)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Round-trip through SWF — drop in a real archive trace here.
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, wl); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SWF trace: %d bytes\n\n", buf.Len())
	back, skipped, err := workload.ReadSWF(&buf, workload.SWFReadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if skipped > 0 {
		fmt.Printf("(skipped %d unusable records)\n", skipped)
	}

	// 3. Summarise: the workload-characteristics table.
	fmt.Print(workload.Summarize(back, 64*1024))
	fmt.Println()

	// 4. Replay under a local-only baseline and the memory-aware policy.
	// Policies are specs; name= labels the row (the legacy aliases
	// "easy-local" and "memaware" would resolve identically).
	for _, policy := range []string{
		"order=fcfs backfill=easy placer=local name=easy-local",
		"order=fcfs backfill=easy placer=memaware name=memaware",
	} {
		s, err := dismem.ParsePolicy(policy)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dismem.Simulate(dismem.Options{
			SchedulerImpl: s,
			Model:         "linear:0.5",
			Workload:      back,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%-12s wait %6.0f s   bsld %5.1f   util %5.1f%%   rejected %d\n",
			s.Name(), r.Wait.Mean(), r.BSld.Mean(), 100*r.NodeUtil, r.Rejected)
	}
	fmt.Println("\n(easy-local rejects every job wider than local DRAM; the")
	fmt.Println(" memory-aware policy serves them from the rack pools)")
}
