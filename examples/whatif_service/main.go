// What-if service: the serving layer (DESIGN.md §10) in one program.
// A baseline run is driven once by internal/serve, frozen into a ring
// of durable checkpoints as it advances, and then interrogated over
// HTTP: each query forks the nearest checkpoint at or before the
// requested instant and replays only the divergent future, so asking
// "what would this outage have cost?" takes microseconds of fork setup
// plus the tail replay — never a re-simulation of the prefix.
//
// This walkthrough runs the whole loop in-process: build the server,
// drive the baseline, serve the API on a loopback port, and pose three
// futures against the same t=43200 checkpoint — an outage, a policy
// switch, and a bounded-horizon probe. The same API is what the
// long-lived daemon serves (cmd/dmserve); point curl at it instead:
//
//	dmserve -addr :8080 -jobs 3000 -seed 11 -ckpt-dir /tmp/ring
//	curl -d '{"at":43200,"scenario":"at=50000 down rack=2; at=86400 up rack=2"}' \
//	     localhost:8080/v1/whatif
//
// Every response is deterministic: the same checkpoint and the same
// body give byte-identical answers, online or offline (the CI smoke
// diffs this service against dmsched's -checkpoint-at fork path).
//
//	go run ./examples/whatif_service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"dismem"
	"dismem/internal/serve"
)

func main() {
	dir, err := os.MkdirTemp("", "whatif-ring-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The baseline: 3000 synthetic jobs on the default disaggregated
	// machine, checkpointed into the ring every 6 simulated hours.
	srv, err := serve.New(serve.Config{
		Options: dismem.Options{
			Policy:   "memaware",
			Workload: dismem.SyntheticWorkload(3000, 11),
		},
		CkptDir:   dir,
		CkptEvery: 21600,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The drive loop owns the baseline; queries never touch it. Here we
	// simply wait for it to drain — a real deployment queries while it
	// advances.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	for !srv.Status().BaselineDone {
		time.Sleep(10 * time.Millisecond)
	}
	st := srv.Status()
	fmt.Printf("baseline drained: t=%d, %d jobs, %d checkpoints in the ring\n\n",
		st.Now, st.DoneJobs, countCheckpoints(srv))

	// Serve the API exactly as dmserve does.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()

	queries := []struct {
		name string
		req  serve.WhatIfRequest
	}{
		{"rack outage 14h-24h", serve.WhatIfRequest{
			At:       43200,
			Scenario: "at=50000 down rack=2; at=86400 up rack=2",
		}},
		{"switch to SJF at 12h", serve.WhatIfRequest{
			At:     43200,
			Policy: "order=sjf backfill=easy placer=memaware",
		}},
		{"outage, 48h horizon", serve.WhatIfRequest{
			At:       43200,
			Scenario: "at=50000 down rack=2; at=86400 up rack=2",
			Horizon:  43200 + 2*86400,
		}},
	}
	fmt.Printf("%-22s %12s %12s %12s %10s\n", "what-if", "Δ mean wait", "Δ p99 wait", "Δ thr/h", "Δ Jain")
	for _, q := range queries {
		resp := post(base, q.req)
		d := resp.Deltas
		fmt.Printf("%-22s %11.0fs %11.0fs %12.2f %10.3f\n",
			q.name, d.MeanWaitSec, d.P99WaitSec, d.ThroughputPerHour, d.JainWait)
	}

	// Graceful stop: cancel the drive loop and persist the final state,
	// the same path dmserve takes on SIGTERM (then exits 3). A restart
	// pointed at the same ring directory resumes bit-identically.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	if _, err := srv.FinalCheckpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nring preserved in %s until this process exits; dmserve -ckpt-dir there would resume it\n", dir)
}

// post runs one what-if query and decodes the response.
func post(base string, req serve.WhatIfRequest) *serve.WhatIfResponse {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	hr, err := http.Post(base+"/v1/whatif", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer hr.Body.Close()
	var resp serve.WhatIfResponse
	if hr.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(hr.Body)
		log.Fatalf("what-if: %s: %s", hr.Status, msg.String())
	}
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		log.Fatal(err)
	}
	return &resp
}

// countCheckpoints reads the ring occupancy from the status endpoint's
// backing data.
func countCheckpoints(srv *serve.Server) int {
	rec := struct {
		Checkpoints []struct {
			At int64 `json:"at"`
		} `json:"checkpoints"`
	}{}
	w := newMemResponse()
	srv.Handler().ServeHTTP(w, mustRequest())
	if err := json.Unmarshal(w.body.Bytes(), &rec); err != nil {
		log.Fatal(err)
	}
	return len(rec.Checkpoints)
}

func mustRequest() *http.Request {
	r, err := http.NewRequest(http.MethodGet, "/v1/checkpoints", nil)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

// memResponse is a minimal in-memory http.ResponseWriter (the example
// avoids importing net/http/httptest outside tests).
type memResponse struct {
	h    http.Header
	body bytes.Buffer
}

func newMemResponse() *memResponse                 { return &memResponse{h: make(http.Header)} }
func (m *memResponse) Header() http.Header         { return m.h }
func (m *memResponse) WriteHeader(int)             {}
func (m *memResponse) Write(b []byte) (int, error) { return m.body.Write(b) }
