package dismem

import (
	"fmt"

	"dismem/internal/sim"
)

// Checkpoint is a frozen deep copy of a live Simulation at one event
// boundary: machine, queue, running jobs, metrics, source cursor,
// failure RNG and the pending event queue (captured as serializable
// records, not closures). A checkpoint is immutable and reusable —
// Fork from it any number of times, each future fully independent —
// and taking it does not disturb the parent, which can keep running.
//
// Concurrency contract: a Checkpoint is never mutated after it is
// taken, and Fork only reads it (everything handed to a new future is
// deep-copied first), so any number of goroutines may Fork the same
// Checkpoint simultaneously with no external locking — the property
// the serving layer's concurrent what-if queries (internal/serve) and
// sweep.ForkFrom's parallel fan-out rely on, pinned by a -race test
// that requires 8 concurrent forks to be bit-identical to a serial
// one. The single exception is a run built with Options.SchedulerImpl:
// its forks share that live scheduler instance (see Fork).
//
// Determinism contract (DESIGN.md §8): a fork taken with zero
// ForkOptions replays exactly the future the parent would have run —
// bit-identical events, report and records to a from-scratch run of
// the same configuration. Overridden forks (new scenario tail, policy,
// failure seed) are each deterministic per override.
//
// What cannot be checkpointed: a streaming SWF source (an io.Reader's
// position cannot be duplicated — materialise the trace first), and
// Observers, RecordSinks, SeriesSinks and TraceSinks (live callbacks
// and writers; forks attach their own via ForkOptions — the sampling
// tick chain itself IS checkpointed, so a fork's samples stay in phase
// with the parent's).
type Checkpoint struct {
	cp   *sim.Checkpoint
	opts Options
}

// At returns the virtual time the checkpoint was taken at.
func (c *Checkpoint) At() int64 { return c.cp.Now() }

// Policy returns the policy name or spec string the checkpointed run
// was built with ("" for a run built with Options.SchedulerImpl).
func (c *Checkpoint) Policy() string { return c.opts.Policy }

// Model returns the memory-model spec of the checkpointed run ("" for
// a run built with Options.ModelImpl; the engine default is
// "linear:0.5").
func (c *Checkpoint) Model() string { return c.opts.Model }

// SampleEvery returns the sampling period the checkpointed run was
// built with (0 = sampling was off). A Fork that passes
// ForkOptions.SampleEvery equal to this value — or 0 — continues the
// checkpointed tick chain in phase; any other value re-arms it fresh
// at the fork instant.
func (c *Checkpoint) SampleEvery() int64 { return c.opts.SampleEvery }

// Checkpoint captures the simulation's complete state at the current
// event boundary. The simulation must still be live: not stopped and
// not finished. Advance to the capture instant first, e.g.
//
//	s, _ := dismem.New(opts)
//	s.RunUntil(21600)          // replay the morning
//	cp, err := s.Checkpoint()  // freeze 06:00
//
// and fork divergent futures with Fork.
func (s *Simulation) Checkpoint() (*Checkpoint, error) {
	cp, err := s.eng.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	return &Checkpoint{cp: cp, opts: s.opts}, nil
}

// ForkOptions adjusts a forked future relative to the checkpointed
// run. The zero value resumes the identical future.
type ForkOptions struct {
	// Policy replaces the scheduling policy for the future (name or
	// spec string, as Options.Policy). Empty keeps the checkpointed
	// policy; SchedulerImpl overrides both. The replacement scheduler
	// starts fresh — schedulers are stateless between passes, so this
	// only matters for custom stateful implementations.
	Policy string
	// SchedulerImpl overrides Policy with a concrete scheduler.
	SchedulerImpl Scheduler
	// Scenario replaces the REMAINING intervention timeline: pending
	// interventions from the original scenario are dropped, and the
	// replacement's events fire instead (events dated before the
	// checkpoint are skipped — that part of the timeline already
	// happened or didn't). Pass an empty Scenario to cancel all
	// pending interventions; nil keeps the original timeline. The
	// replacement must not modulate arrivals (surge/diurnal): the
	// arrival process was warped before the run started.
	Scenario *Scenario
	// ScenarioSpec is Scenario as a grammar string (ParseScenario
	// syntax) — the form serving layers pass straight through from
	// request bodies. It is parsed and validated before any engine
	// state is touched, so a malformed spec or one that modulates
	// arrivals is a pointed error from Fork, never a failure deep
	// inside the replayed future. Setting both ScenarioSpec and
	// Scenario is an error.
	ScenarioSpec string
	// Horizon bounds the forked future: when > 0, Run advances the
	// fork only to virtual time Horizon and truncates there
	// (Result.Stopped marks a future cut short; a future that drains
	// before the horizon completes normally). 0 runs to completion.
	// A horizon earlier than the checkpoint's frozen clock is an
	// error — that part of the timeline is already decided.
	Horizon int64
	// ReseedFailures redraws the future failure stream from
	// FailureSeed (the pending next-failure event is discarded;
	// repairs of already-failed nodes still complete). Requires the
	// checkpointed run to have failure injection configured.
	ReseedFailures bool
	FailureSeed    uint64
	// Observer receives the fork's lifecycle callbacks. When the
	// checkpointed run was sampling, the fork continues the tick chain
	// in phase: its sample instants are identical to the uninterrupted
	// run's. Parent observers are never carried over.
	Observer Observer
	// SampleEvery overrides the sampling period (0 keeps the original
	// period and phase; a different period restarts the chain at the
	// fork instant).
	SampleEvery int64
	// RecordSink receives the fork's per-job records. When nil and the
	// original run recorded boundedly, the fork uses DiscardRecords
	// (prefix records already streamed to the parent's sink and cannot
	// be re-emitted).
	RecordSink Sink
	// SeriesSink receives the fork's utilization series (nil = none;
	// parent sinks are never carried over). For a resumed run this
	// yields exactly the suffix of the clean run's series:
	// concatenating the parent's JSONL series with the fork's
	// reproduces an uninterrupted run's file byte for byte.
	SeriesSink SeriesSink
	// TraceSink receives the fork's lifecycle trace events (nil = none;
	// parent sinks are never carried over). Like the series, a resumed
	// run's JSONL trace is exactly the suffix of the clean run's:
	// concatenating the parent's trace with the fork's reproduces an
	// uninterrupted run's file byte for byte.
	TraceSink TraceSink
}

// Fork resumes one divergent future from a checkpoint: same prefix,
// then the future o describes. The canonical what-if shape —
//
//	cp, _ := s.Checkpoint()
//	base, _ := dismem.Fork(cp, dismem.ForkOptions{})
//	hit, _ := dismem.Fork(cp, dismem.ForkOptions{Scenario: outage})
//
// runs the same warmed-up morning into both futures without replaying
// it. Each fork is an independent Simulation: drive it with
// Step/RunUntil/Run and collect Result as usual.
//
// When neither Policy nor SchedulerImpl is set and the original run
// selected its scheduler by policy string, the fork gets a fresh
// scheduler built from that same string, so concurrent forks never
// share scheduler internals. An original built with
// Options.SchedulerImpl shares that instance across its forks — drive
// such forks sequentially or provide per-fork schedulers.
func Fork(cp *Checkpoint, o ForkOptions) (*Simulation, error) {
	if cp == nil {
		return nil, fmt.Errorf("dismem: fork of a nil checkpoint")
	}
	// Validate every override up front, before any engine state is
	// rebuilt: a bad what-if request must fail here with a pointed
	// error, not surface as a confusing failure deep inside sim (or
	// worse, cost a full future replay first).
	if o.Horizon != 0 && o.Horizon < cp.At() {
		return nil, fmt.Errorf("dismem: fork horizon t=%d precedes the checkpoint's frozen clock t=%d (that part of the timeline is already decided; fork from an earlier checkpoint)", o.Horizon, cp.At())
	}
	if o.ScenarioSpec != "" {
		if o.Scenario != nil {
			return nil, fmt.Errorf("dismem: both ScenarioSpec and Scenario set; choose one")
		}
		sc, err := ParseScenario(o.ScenarioSpec)
		if err != nil {
			return nil, fmt.Errorf("dismem: fork scenario: %w", err)
		}
		o.Scenario = sc
	}
	if o.Scenario != nil && o.Scenario.Modulates() {
		return nil, fmt.Errorf("dismem: fork scenario must not modulate arrivals (surge/diurnal warp submit times before a run starts and cannot be re-applied at a fork)")
	}
	over := sim.Overrides{
		Scenario:       o.Scenario,
		ReseedFailures: o.ReseedFailures,
		FailureSeed:    o.FailureSeed,
		Observer:       o.Observer,
		SampleEvery:    o.SampleEvery,
		RecordSink:     o.RecordSink,
		SeriesSink:     o.SeriesSink,
		TraceSink:      o.TraceSink,
	}
	switch {
	case o.SchedulerImpl != nil:
		over.Scheduler = o.SchedulerImpl
	case o.Policy != "":
		s, err := NewScheduler(o.Policy)
		if err != nil {
			return nil, fmt.Errorf("dismem: fork policy: %w", err)
		}
		over.Scheduler = s
	case cp.opts.SchedulerImpl == nil:
		// Rebuild from the original policy string so every fork owns
		// its scheduler (instances carry internal caches).
		s, err := NewScheduler(cp.opts.Policy)
		if err != nil {
			return nil, err
		}
		over.Scheduler = s
	}
	eng, err := sim.Resume(cp.cp, over)
	if err != nil {
		return nil, fmt.Errorf("dismem: %w", err)
	}
	// The fork's recorded options track its effective configuration, so
	// checkpointing a fork works like checkpointing an original run.
	opts := cp.opts
	if o.SchedulerImpl != nil {
		opts.SchedulerImpl, opts.Policy = o.SchedulerImpl, ""
	} else if o.Policy != "" {
		opts.SchedulerImpl, opts.Policy = nil, o.Policy
	}
	if o.Scenario != nil {
		opts.Scenario = o.Scenario
	}
	if o.RecordSink != nil {
		opts.RecordSink = o.RecordSink
	}
	opts.Observer = o.Observer
	opts.SeriesSink = o.SeriesSink
	opts.TraceSink = o.TraceSink
	// SampleEvery 0 keeps the checkpointed period, so the recorded
	// options keep it too: a re-checkpointed fork must persist the
	// period its live tick chain actually runs at, or resuming that
	// second-generation checkpoint would reject its pending tick.
	if o.SampleEvery > 0 {
		opts.SampleEvery = o.SampleEvery
	}
	return &Simulation{eng: eng, opts: opts, horizon: o.Horizon}, nil
}
