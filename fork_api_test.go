package dismem_test

import (
	"strings"
	"testing"

	"dismem"
)

// forkOpts is the adversarial public-API configuration for fork tests:
// contention-sensitive model, failures and a scenario timeline.
func forkOpts(wl *dismem.Workload) dismem.Options {
	sc, err := dismem.ParseScenario("at=21600 down rack=2; at=43200 up rack=2; at=50000 beta scale=1.5")
	if err != nil {
		panic(err)
	}
	return dismem.Options{
		Policy:          "memaware",
		Model:           "bandwidth:1,1",
		Workload:        wl,
		Scenario:        sc,
		Failures:        &dismem.FailureConfig{MTBFPerNodeSec: 2_000_000, RepairSec: 7200, Seed: 5},
		CheckInvariants: true,
	}
}

func mustRun(t *testing.T, s *dismem.Simulation) *dismem.Result {
	t.Helper()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResults(t *testing.T, label string, a, b *dismem.Result) {
	t.Helper()
	if *a.Report != *b.Report {
		t.Fatalf("%s: reports differ:\n%+v\n%+v", label, a.Report, b.Report)
	}
	if a.Events != b.Events || a.ScenarioEvents != b.ScenarioEvents {
		t.Fatalf("%s: events %d/%d != %d/%d", label, a.Events, a.ScenarioEvents, b.Events, b.ScenarioEvents)
	}
	ra, rb := a.Recorder.Records(), b.Recorder.Records()
	if len(ra) != len(rb) {
		t.Fatalf("%s: %d records != %d", label, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: record %d differs:\n%+v\n%+v", label, i, ra[i], rb[i])
		}
	}
}

// TestForkGolden is the public golden test: run-to-T + fork ≡ fresh run
// with the identical prefix — events, report and records — and the
// parent continues unharmed after being checkpointed.
func TestForkGolden(t *testing.T) {
	wl := dismem.SyntheticWorkload(800, 1)
	fresh := mustRun(t, mustNew(t, forkOpts(wl)))

	parent := mustNew(t, forkOpts(wl))
	parent.RunUntil(30000)
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.At() != 30000 {
		t.Fatalf("checkpoint at %d, want 30000", cp.At())
	}
	fork, err := dismem.Fork(cp, dismem.ForkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "fork vs fresh", fresh, mustRun(t, fork))
	sameResults(t, "parent vs fresh", fresh, mustRun(t, parent))

	// The checkpoint is reusable after its forks completed.
	again, err := dismem.Fork(cp, dismem.ForkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "second fork vs fresh", fresh, mustRun(t, again))
}

func mustNew(t *testing.T, o dismem.Options) *dismem.Simulation {
	t.Helper()
	s, err := dismem.New(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestForkWhatIf pins the headline use case: one warmed-up prefix, two
// futures — with and without an outage tail — plus determinism of each.
func TestForkWhatIf(t *testing.T) {
	wl := dismem.SyntheticWorkload(600, 2)
	opts := dismem.Options{Policy: "memaware", Model: "bandwidth:1,1", Workload: wl}
	parent := mustNew(t, opts)
	parent.RunUntil(20000)
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	outage, err := dismem.ParseScenario("at=25000 down rack=1; at=40000 up rack=1")
	if err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, mustFork(t, cp, dismem.ForkOptions{}))
	hitA := mustRun(t, mustFork(t, cp, dismem.ForkOptions{Scenario: outage}))
	hitB := mustRun(t, mustFork(t, cp, dismem.ForkOptions{Scenario: outage}))
	sameResults(t, "outage forks", hitA, hitB)
	if hitA.ScenarioEvents != 2 {
		t.Fatalf("outage fork applied %d interventions, want 2", hitA.ScenarioEvents)
	}
	if *base.Report == *hitA.Report {
		t.Fatal("outage future identical to baseline future")
	}

	// Policy what-if: the same prefix under a different future policy.
	sjfA := mustRun(t, mustFork(t, cp, dismem.ForkOptions{Policy: "order=sjf placer=memaware"}))
	sjfB := mustRun(t, mustFork(t, cp, dismem.ForkOptions{Policy: "order=sjf placer=memaware"}))
	sameResults(t, "policy forks", sjfA, sjfB)
}

func mustFork(t *testing.T, cp *dismem.Checkpoint, o dismem.ForkOptions) *dismem.Simulation {
	t.Helper()
	s, err := dismem.Fork(cp, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestForkBoundedRecording forks a bounded run into a fresh JSONL sink:
// the fork streams only its own suffix records, and its report matches
// a fresh bounded run.
func TestForkBoundedRecording(t *testing.T) {
	wl := dismem.SyntheticWorkload(500, 3)
	opts := dismem.Options{Policy: "memaware", Workload: wl, RecordSink: dismem.DiscardRecords}

	fresh := mustRun(t, mustNew(t, opts))

	parent := mustNew(t, opts)
	parent.RunUntil(15000)
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	fork := mustFork(t, cp, dismem.ForkOptions{RecordSink: dismem.NewJSONLSink(&buf)})
	res := mustRun(t, fork)
	if *res.Report != *fresh.Report {
		t.Fatalf("bounded fork report differs:\n%+v\n%+v", res.Report, fresh.Report)
	}
	suffix := strings.Count(buf.String(), "\n")
	if suffix == 0 {
		t.Fatal("fork streamed no records")
	}
	if suffix >= res.Report.Jobs()+res.Report.Rejected {
		t.Fatalf("fork streamed %d records, want only the post-checkpoint suffix of %d total",
			suffix, res.Report.Jobs()+res.Report.Rejected)
	}
}

// TestForkStreamingSWFRefused pins the documented limitation with a
// clear error instead of a corrupt fork.
func TestForkStreamingSWFRefused(t *testing.T) {
	trace := "1 0 0 3600 1 -1 500 1 7200 -1 1 1 1 -1 -1 -1 -1 -1\n" +
		"2 999999 0 3600 1 -1 500 1 7200 -1 1 1 1 -1 -1 -1 -1 -1\n"
	s := mustNew(t, dismem.Options{
		Policy:     "memaware",
		Source:     dismem.SWFSource(strings.NewReader(trace), dismem.SWFReadOptions{}),
		RecordSink: dismem.DiscardRecords,
	})
	s.RunUntil(10000)
	if _, err := s.Checkpoint(); err == nil || !strings.Contains(err.Error(), "fork") {
		t.Fatalf("SWF-stream checkpoint error = %v, want forkability refusal", err)
	}
}
