package dismem_test

import (
	"strings"
	"sync"
	"testing"

	"dismem"
)

// frozen returns the shared checkpoint fixture for the validation
// tests: the adversarial fork configuration advanced to t=30000.
func frozen(t *testing.T) *dismem.Checkpoint {
	t.Helper()
	parent := mustNew(t, forkOpts(dismem.SyntheticWorkload(400, 4)))
	parent.RunUntil(30000)
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestForkOptionValidation pins the pointed up-front errors: a bad
// what-if request must fail at Fork with a message naming the defect,
// never surface as a confusing failure deep inside sim (and never
// after paying for a full future replay first).
func TestForkOptionValidation(t *testing.T) {
	cp := frozen(t)
	cases := []struct {
		name string
		o    dismem.ForkOptions
		want string // substring of the error
	}{
		{
			name: "horizon before the frozen clock",
			o:    dismem.ForkOptions{Horizon: 20000},
			want: "precedes the checkpoint's frozen clock t=30000",
		},
		{
			name: "negative horizon",
			o:    dismem.ForkOptions{Horizon: -1},
			want: "precedes the checkpoint's frozen clock",
		},
		{
			name: "malformed scenario tail",
			o:    dismem.ForkOptions{ScenarioSpec: "at=50000 explode rack=2"},
			want: "fork scenario",
		},
		{
			name: "scenario tail with garbage term",
			o:    dismem.ForkOptions{ScenarioSpec: "down rack"},
			want: "fork scenario",
		},
		{
			name: "modulating scenario tail (spec form)",
			o:    dismem.ForkOptions{ScenarioSpec: "from=40000 until=50000 rate=3 surge"},
			want: "must not modulate arrivals",
		},
		{
			name: "both scenario forms set",
			o:    dismem.ForkOptions{ScenarioSpec: "at=50000 down rack=1", Scenario: &dismem.Scenario{}},
			want: "both ScenarioSpec and Scenario",
		},
		{
			name: "malformed policy spec",
			o:    dismem.ForkOptions{Policy: "order=bogus placer=memaware"},
			want: "fork policy",
		},
		{
			name: "unknown policy name",
			o:    dismem.ForkOptions{Policy: "no-such-policy or=terms"},
			want: "fork policy",
		},
		{
			name: "reseed without failure injection requires config",
			o:    dismem.ForkOptions{ReseedFailures: true, FailureSeed: 9},
			want: "", // valid here: the fixture has failure injection
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := dismem.Fork(cp, tc.o)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Fork() = %v, want success", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Fork() error = %v, want substring %q", err, tc.want)
			}
		})
	}

	if _, err := dismem.Fork(nil, dismem.ForkOptions{}); err == nil ||
		!strings.Contains(err.Error(), "nil checkpoint") {
		t.Fatalf("Fork(nil) error = %v, want nil-checkpoint refusal", err)
	}
}

// TestForkHorizonRun pins the horizon semantics: Run stops exactly at
// the horizon with Result.Stopped set, a horizon at the frozen clock is
// a valid zero-length future, and a horizon past the natural end
// completes normally (Stopped unset).
func TestForkHorizonRun(t *testing.T) {
	cp := frozen(t)
	full := mustRun(t, mustFork(t, cp, dismem.ForkOptions{}))

	cut := mustRun(t, mustFork(t, cp, dismem.ForkOptions{Horizon: cp.At() + 10000}))
	if !cut.Stopped {
		t.Fatal("horizon-bounded fork did not report Stopped")
	}
	if cut.Report.Jobs() >= full.Report.Jobs() {
		t.Fatalf("horizon-bounded fork terminated %d jobs, want fewer than the full run's %d",
			cut.Report.Jobs(), full.Report.Jobs())
	}

	zero := mustRun(t, mustFork(t, cp, dismem.ForkOptions{Horizon: cp.At()}))
	if !zero.Stopped {
		t.Fatal("zero-length future did not report Stopped")
	}

	past := mustRun(t, mustFork(t, cp, dismem.ForkOptions{Horizon: 1 << 40}))
	if past.Stopped {
		t.Fatal("fork with a horizon past the natural end reported Stopped")
	}
	sameResults(t, "far horizon vs unbounded", full, past)
}

// TestConcurrentForksBitIdentical enforces the checkpoint concurrency
// contract under -race: one checkpoint forked from 8 goroutines
// simultaneously must produce results bit-identical to the serial
// fork — same report, same event count, same records.
func TestConcurrentForksBitIdentical(t *testing.T) {
	cp := frozen(t)
	serial := mustRun(t, mustFork(t, cp, dismem.ForkOptions{}))

	const goroutines = 8
	results := make([]*dismem.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := dismem.Fork(cp, dismem.ForkOptions{})
			if err != nil {
				errs[g] = err
				return
			}
			results[g], errs[g] = f.Run()
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		sameResults(t, "concurrent fork", serial, results[g])
	}
}
