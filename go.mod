module dismem

go 1.24
