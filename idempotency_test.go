package dismem_test

import (
	"testing"

	"dismem"
)

// Regression tests for terminal-state idempotency: once a simulation
// has produced its result, further Result and Stop calls return the
// cached outcome and mutate nothing. (A late Stop used to be able to
// relabel a completed run as stopped.)

func TestResultIdempotent(t *testing.T) {
	s := mustNew(t, dismem.Options{Policy: "memaware", Workload: dismem.SyntheticWorkload(200, 1)})
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("second Result returned a different result value")
	}
	if first.Stopped {
		t.Fatal("completed run reported Stopped")
	}
}

func TestStopAfterFinishIsNoOp(t *testing.T) {
	s := mustNew(t, dismem.Options{Policy: "memaware", Workload: dismem.SyntheticWorkload(200, 2)})
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	s.Stop() // must not relabel the completed run
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res != first {
		t.Fatal("Result after late Stop returned a different result value")
	}
	if res.Stopped {
		t.Fatal("late Stop relabeled a completed run as stopped")
	}
	if !s.Done() {
		t.Fatal("finished simulation no longer Done after late Stop")
	}
}

func TestStopThenResultIdempotent(t *testing.T) {
	s := mustNew(t, dismem.Options{Policy: "memaware", Workload: dismem.SyntheticWorkload(300, 3)})
	s.RunUntil(10000)
	s.Stop()
	s.Step() // lets the stop take effect at the next event boundary
	first, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Stopped {
		t.Fatal("stopped run not marked Stopped")
	}
	s.Stop() // stop of an already-stopped, finished run
	again, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("Result after redundant Stop returned a different result value")
	}
}
