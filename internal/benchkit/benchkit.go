// Package benchkit holds the bodies of the simulator's headline
// hot-path benchmarks so they can run both under `go test -bench`
// (bench_test.go at the repo root) and programmatically from
// cmd/dmbench, which records them as BENCH_<date>.json for the in-repo
// performance trajectory.
package benchkit

import (
	"testing"

	"dismem"
	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

// SimulationJobs is the workload size SimulationBench runs per
// iteration; the jobs/s metric is derived from it.
const SimulationJobs = 1000

// MachineAllocRelease measures the cluster bookkeeping cycle.
func MachineAllocRelease(b *testing.B) {
	b.ReportAllocs()
	m := cluster.MustNew(cluster.DefaultConfig())
	a := &cluster.Allocation{JobID: 1, Shares: []cluster.NodeShare{
		{Node: 0, LocalMiB: 64 * 1024, RemoteMiB: 32 * 1024, Pool: 0},
		{Node: 1, LocalMiB: 64 * 1024, RemoteMiB: 32 * 1024, Pool: 0},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Allocate(a); err != nil {
			b.Fatal(err)
		}
		if err := m.Release(1); err != nil {
			b.Fatal(err)
		}
	}
}

// MemAwarePlan measures one placement decision on a half-loaded
// machine (the scheduler's inner loop).
func MemAwarePlan(b *testing.B) {
	b.ReportAllocs()
	m := cluster.MustNew(cluster.DefaultConfig())
	// Occupy half the machine.
	for i := 0; i < 128; i++ {
		a := &cluster.Allocation{JobID: 1000 + i, Shares: []cluster.NodeShare{
			{Node: cluster.NodeID(i * 2), LocalMiB: 32 * 1024, Pool: cluster.NoPool},
		}}
		if err := m.Allocate(a); err != nil {
			b.Fatal(err)
		}
	}
	placer := core.New()
	model := memmodel.Bandwidth{Beta: 1, Gamma: 1}
	j := &workload.Job{ID: 1, Nodes: 16, MemPerNode: 96 * 1024, Estimate: 3600, BaseRuntime: 1800}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if placer.Plan(j, m, model) == nil {
			b.Fatal("plan failed")
		}
	}
}

// Simulation measures end-to-end simulated-jobs-per-second for the
// full memaware stack under the contention-sensitive model. It runs
// through the steppable Simulation handle (the path Simulate wraps), so
// the number also guards the handle's and the unused observer hooks'
// overhead: ~nothing.
func Simulation(b *testing.B) {
	b.ReportAllocs()
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := dismem.New(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Jobs() == 0 {
			b.Fatal("no jobs ran")
		}
	}
	b.ReportMetric(float64(SimulationJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// ScenarioSimulation is Simulation with an active intervention
// timeline: a 12-hour rack outage plus a diurnal arrival cycle. It
// measures the scenario subsystem's end-to-end overhead — the arrival
// time-warp, the intervention events, the kill/resubmit churn, and the
// extra scheduling passes they trigger.
func ScenarioSimulation(b *testing.B) {
	b.ReportAllocs()
	sc, err := dismem.ParseScenario(
		"at=21600 down rack=2; at=64800 up rack=2; from=0 period=86400 amp=0.4 diurnal")
	if err != nil {
		b.Fatal(err)
	}
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := dismem.New(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl, Scenario: sc,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Jobs() == 0 || res.ScenarioEvents == 0 {
			b.Fatal("scenario run degenerate")
		}
	}
	b.ReportMetric(float64(SimulationJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}
