// Package benchkit holds the bodies of the simulator's headline
// hot-path benchmarks so they can run both under `go test -bench`
// (bench_test.go at the repo root) and programmatically from
// cmd/dmbench, which records them as BENCH_<date>.json for the in-repo
// performance trajectory.
package benchkit

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dismem"
	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/serve"
	"dismem/internal/source"
	"dismem/internal/workload"
)

// SimulationJobs is the workload size SimulationBench runs per
// iteration; the jobs/s metric is derived from it.
const SimulationJobs = 1000

// jobAlloc snapshots the allocator counters so a benchmark can report
// its per-job allocation discipline. Take one snapshot right before
// ResetTimer and report right after StopTimer:
//
//	a := allocSnapshot()
//	b.ResetTimer()
//	... timed loop ...
//	b.StopTimer()
//	a.reportPerJob(b, SimulationJobs)
//
// allocs/job is the number the alloc-budget regression test bounds:
// B/op and allocs/op scale with the per-iteration workload size, so
// the normalised form is what stays comparable across benchmarks and
// across workload-size changes.
type jobAlloc struct{ mallocs, bytes uint64 }

func allocSnapshot() jobAlloc {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return jobAlloc{mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

func (a jobAlloc) reportPerJob(b *testing.B, jobsPerOp int) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := float64(jobsPerOp) * float64(b.N)
	b.ReportMetric(float64(ms.Mallocs-a.mallocs)/n, "allocs/job")
	b.ReportMetric(float64(ms.TotalAlloc-a.bytes)/n, "B/job")
}

// MachineAllocRelease measures the cluster bookkeeping cycle.
func MachineAllocRelease(b *testing.B) {
	b.ReportAllocs()
	m := cluster.MustNew(cluster.DefaultConfig())
	a := &cluster.Allocation{JobID: 1, Shares: []cluster.NodeShare{
		{Node: 0, LocalMiB: 64 * 1024, RemoteMiB: 32 * 1024, Pool: 0},
		{Node: 1, LocalMiB: 64 * 1024, RemoteMiB: 32 * 1024, Pool: 0},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Allocate(a); err != nil {
			b.Fatal(err)
		}
		if err := m.Release(1); err != nil {
			b.Fatal(err)
		}
	}
}

// MemAwarePlan measures one placement decision on a half-loaded
// machine (the scheduler's inner loop).
func MemAwarePlan(b *testing.B) {
	b.ReportAllocs()
	m := cluster.MustNew(cluster.DefaultConfig())
	// Occupy half the machine.
	for i := 0; i < 128; i++ {
		a := &cluster.Allocation{JobID: 1000 + i, Shares: []cluster.NodeShare{
			{Node: cluster.NodeID(i * 2), LocalMiB: 32 * 1024, Pool: cluster.NoPool},
		}}
		if err := m.Allocate(a); err != nil {
			b.Fatal(err)
		}
	}
	placer := core.New()
	model := memmodel.Bandwidth{Beta: 1, Gamma: 1}
	j := &workload.Job{ID: 1, Nodes: 16, MemPerNode: 96 * 1024, Estimate: 3600, BaseRuntime: 1800}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if placer.Plan(j, m, model) == nil {
			b.Fatal("plan failed")
		}
	}
}

// Simulation measures end-to-end simulated-jobs-per-second for the
// full memaware stack under the contention-sensitive model. It runs
// through the steppable Simulation handle (the path Simulate wraps), so
// the number also guards the handle's and the unused observer hooks'
// overhead: ~nothing.
func Simulation(b *testing.B) {
	b.ReportAllocs()
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	a := allocSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := dismem.New(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Jobs() == 0 {
			b.Fatal("no jobs ran")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(SimulationJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	a.reportPerJob(b, SimulationJobs)
}

// BatchSimulation is Simulation on the batched multi-run path: one
// Runner executes the headline workload per iteration, so every run
// after the first reuses the previous run's machine (reset in place),
// DES event pool and engine scratch instead of rebuilding them. The
// jobs/s gap to Simulation is what dismem.RunBatch — and the sweep
// worker pool built on it — saves per run; results stay bit-identical
// to fresh construction (TestRunBatchMatchesLoopOfSimulate).
func BatchSimulation(b *testing.B) {
	b.ReportAllocs()
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	r := dismem.NewRunner(dismem.Options{
		Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
	})
	a := allocSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(dismem.RunSpec{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Jobs() == 0 {
			b.Fatal("no jobs ran")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(SimulationJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	a.reportPerJob(b, SimulationJobs)
}

// SeriesSampling measures the price of live observation: the headline
// Simulation workload with the sampling tick chain armed at a
// 600-simulated-second period and every sample encoded to a discarded
// JSONL series stream. The jobs/s gap to Simulation (which never arms
// the chain) is the full cost of -series-out at this sampling rate —
// tick events, usage snapshots and JSON encoding included.
func SeriesSampling(b *testing.B) {
	b.ReportAllocs()
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	samples := 0
	a := allocSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counter := &countingWriter{}
		h, err := dismem.New(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
			SampleEvery: 600,
			SeriesSink:  dismem.NewJSONLSeriesSink(counter),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Jobs() == 0 {
			b.Fatal("no jobs ran")
		}
		if counter.lines == 0 {
			b.Fatal("no samples streamed")
		}
		samples += counter.lines
	}
	b.StopTimer()
	b.ReportMetric(float64(SimulationJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(samples)/float64(b.N), "samples/run")
	a.reportPerJob(b, SimulationJobs)
}

// TraceSimulation measures the price of lifecycle tracing: the
// headline Simulation workload with every trace event (submit,
// dispatch, terminate, ...) encoded to a discarded JSONL trace stream.
// Tracing is event-driven — the sampling tick chain stays unarmed — so
// the jobs/s gap to Simulation (nil sink) is the full cost of
// -trace-out: event construction, placement extraction and JSON
// encoding included.
func TraceSimulation(b *testing.B) {
	b.ReportAllocs()
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	events := 0
	a := allocSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counter := &countingWriter{}
		h, err := dismem.New(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
			TraceSink: dismem.NewJSONLTraceSink(counter),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Jobs() == 0 {
			b.Fatal("no jobs ran")
		}
		if counter.lines == 0 {
			b.Fatal("no trace events streamed")
		}
		events += counter.lines
	}
	b.StopTimer()
	b.ReportMetric(float64(SimulationJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	a.reportPerJob(b, SimulationJobs)
}

// countingWriter counts JSONL lines on their way to the void.
type countingWriter struct{ lines int }

// Write implements io.Writer.
func (c *countingWriter) Write(p []byte) (int, error) {
	c.lines += bytes.Count(p, []byte{'\n'})
	return len(p), nil
}

// CheckpointFork measures the checkpoint+fork overhead in isolation: a
// mid-trace Simulation (the SimulationJobs workload advanced to its
// submit-time midpoint) is checkpointed and forked once per iteration,
// without running the forked future. This is the cost a what-if study
// pays per variant on top of simulating the divergent suffix; the
// forks-per-second metric makes the comparison with a full prefix
// re-simulation direct.
func CheckpointFork(b *testing.B) {
	b.ReportAllocs()
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	h, err := dismem.New(dismem.Options{
		Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
	})
	if err != nil {
		b.Fatal(err)
	}
	mid := wl.Jobs[len(wl.Jobs)/2].Submit
	h.RunUntil(mid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := h.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dismem.Fork(cp, dismem.ForkOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "forks/s")
}

// midTraceCheckpoint freezes the standard benchmark simulation at its
// submit-time midpoint — the shared fixture for the checkpoint I/O
// benchmarks.
func midTraceCheckpoint(b *testing.B) *dismem.Checkpoint {
	b.Helper()
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	h, err := dismem.New(dismem.Options{
		Policy: "memaware", Model: "bandwidth:1,1", Workload: wl,
	})
	if err != nil {
		b.Fatal(err)
	}
	h.RunUntil(wl.Jobs[len(wl.Jobs)/2].Submit)
	cp, err := h.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	return cp
}

// CheckpointEncode measures SaveCheckpoint throughput: a mid-trace
// checkpoint is serialized to its durable envelope (magic, version,
// schema fingerprint, JSON payload, SHA-256 digest) per iteration.
// Reported metrics: MB/s of envelope produced and bytes/ckpt, the
// envelope size for the standard fixture — the number to watch for
// accidental state-blowup across PRs.
func CheckpointEncode(b *testing.B) {
	b.ReportAllocs()
	cp := midTraceCheckpoint(b)
	var buf bytes.Buffer
	if err := dismem.SaveCheckpoint(&buf, cp); err != nil {
		b.Fatal(err)
	}
	size := buf.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := dismem.SaveCheckpoint(&buf, cp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size)*float64(b.N)/1e6/b.Elapsed().Seconds(), "MB/s")
	b.ReportMetric(float64(size), "bytes/ckpt")
}

// CheckpointDecode measures LoadCheckpoint throughput on the same
// fixture: digest verification, strict JSON decode, and full engine
// state validation per iteration.
func CheckpointDecode(b *testing.B) {
	b.ReportAllocs()
	cp := midTraceCheckpoint(b)
	var buf bytes.Buffer
	if err := dismem.SaveCheckpoint(&buf, cp); err != nil {
		b.Fatal(err)
	}
	env := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dismem.LoadCheckpoint(bytes.NewReader(env)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(env))*float64(b.N)/1e6/b.Elapsed().Seconds(), "MB/s")
	b.ReportMetric(float64(len(env)), "bytes/ckpt")
}

// StreamingReplay100k runs the streaming-replay benchmark at 100k jobs;
// its peak-heap metric is the reference the 1M run is compared against
// (flat within 2x = memory independent of job count).
func StreamingReplay100k(b *testing.B) { streamingReplay(b, 100_000) }

// StreamingReplay1M is the headline bounded-memory benchmark: a
// million-job SWF trace replayed through SWFSource with the
// online-aggregate (discard) sink.
func StreamingReplay1M(b *testing.B) { streamingReplay(b, 1_000_000) }

// streamingReplay measures end-to-end streamed trace replay: a Lublin
// SWF trace of n jobs is generated to disk once (itself streamed, flat
// memory), then each iteration replays it from the file through
// SWFSource with bounded metrics recording. Reported metrics: jobs/s,
// B/job (allocation churn per job — each decoded job is a short-lived
// allocation, so total B/op necessarily scales with n), and
// peakheap-MB, the live-heap high-water mark sampled every 20k
// terminations — the number that must stay flat as n grows.
func streamingReplay(b *testing.B, n int) {
	b.ReportAllocs()
	path := filepath.Join(b.TempDir(), "trace.swf")
	writeLublinTrace(b, path, n)

	a := allocSnapshot()
	b.ResetTimer()
	var peak uint64
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		obs := &heapWatcher{}
		h, err := dismem.New(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1",
			Source:     dismem.SWFSource(f, workload.SWFReadOptions{DefaultMemPerNode: 32 * 1024}),
			RecordSink: dismem.DiscardRecords,
			Observer:   obs,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Report.Jobs() + res.Report.Rejected; got != n {
			b.Fatalf("replayed %d jobs, want %d", got, n)
		}
		f.Close()
		if obs.peak > peak {
			peak = obs.peak
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(peak)/1e6, "peakheap-MB")
	a.reportPerJob(b, n)
}

// replayInterarrival thins the Lublin arrival process so the default
// machine keeps up (offered load ≈ 0.76 at 1800 s): the queue — the
// one engine structure that scales with backlog — stays shallow, and
// peak heap genuinely measures the streaming path, not an unbounded
// saturation backlog.
const replayInterarrival = 1800

// writeLublinTrace streams an n-job Lublin trace to path.
func writeLublinTrace(b *testing.B, path string, n int) {
	b.Helper()
	cfg := workload.DefaultLublinConfig(0, 1, cluster.DefaultConfig().TotalNodes())
	cfg.MeanInterarrival = replayInterarrival
	st, err := workload.NewLublinStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := workload.NewSWFWriter(f).WriteAll(source.Gen(st, n, 0).Next); err != nil {
		b.Fatal(err)
	}
}

// heapWatcher samples the live heap every 20k job terminations
// (ReadMemStats is too expensive per event) and keeps the high-water
// mark. Read-only w.r.t. engine state, like every observer.
type heapWatcher struct {
	dismem.NopObserver
	terminated int
	peak       uint64
}

// OnTerminate implements dismem.Observer.
func (hw *heapWatcher) OnTerminate(int64, dismem.JobRecord) {
	hw.terminated++
	if hw.terminated%20_000 != 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > hw.peak {
		hw.peak = ms.HeapAlloc
	}
}

// ScenarioSimulation is Simulation with an active intervention
// timeline: a 12-hour rack outage plus a diurnal arrival cycle. It
// measures the scenario subsystem's end-to-end overhead — the arrival
// time-warp, the intervention events, the kill/resubmit churn, and the
// extra scheduling passes they trigger.
func ScenarioSimulation(b *testing.B) {
	b.ReportAllocs()
	sc, err := dismem.ParseScenario(
		"at=21600 down rack=2; at=64800 up rack=2; from=0 period=86400 amp=0.4 diurnal")
	if err != nil {
		b.Fatal(err)
	}
	wl := dismem.SyntheticWorkload(SimulationJobs, 1)
	a := allocSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := dismem.New(dismem.Options{
			Policy: "memaware", Model: "bandwidth:1,1", Workload: wl, Scenario: sc,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Jobs() == 0 || res.ScenarioEvents == 0 {
			b.Fatal("scenario run degenerate")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(SimulationJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	a.reportPerJob(b, SimulationJobs)
}

// ServeQueries measures the serving layer (internal/serve) end to end:
// one baseline (SimulationJobs jobs) is driven to completion and frozen
// into a checkpoint ring, then concurrent short-horizon /v1/whatif
// queries — fork the t=21600 checkpoint, replay a two-hour divergent
// future — are hammered through the HTTP handler from all procs. It
// reports queries/s plus p50/p99 fork-to-response latency, the
// service-level numbers the ring + fork design buys (a query costs a
// fork and a tail replay, never the prefix).
func ServeQueries(b *testing.B) {
	srv, err := serve.New(serve.Config{
		Options: dismem.Options{
			Policy:   "memaware",
			Workload: dismem.SyntheticWorkload(SimulationJobs, 1),
		},
		CkptDir:   b.TempDir(),
		CkptEvery: 7200,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	for !srv.Status().BaselineDone {
		time.Sleep(time.Millisecond)
	}

	h := srv.Handler()
	const body = `{"at": 21600, "scenario": "at=22000 down rack=2; at=22900 up rack=2", "horizon": 23400}`
	post := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/whatif", strings.NewReader(body)))
		return rec
	}
	// Warm the baseline-delta cache: steady-state latency is the number
	// that matters for a long-lived service.
	if rec := post(); rec.Code != http.StatusOK {
		b.Fatalf("warm-up query: %d: %s", rec.Code, rec.Body)
	}

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 256)
		for pb.Next() {
			start := time.Now()
			rec := post()
			d := time.Since(start)
			if rec.Code != http.StatusOK {
				b.Errorf("what-if query: %d: %s", rec.Code, rec.Body)
				return
			}
			local = append(local, d)
		}
		mu.Lock()
		latencies = append(latencies, local...)
		mu.Unlock()
	})
	b.StopTimer()
	cancel()
	<-done

	if len(latencies) == 0 {
		b.Fatal("no queries completed")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) float64 {
		i := len(latencies) * p / 100
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return float64(latencies[i].Nanoseconds()) / 1e6
	}
	b.ReportMetric(float64(len(latencies))/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(pct(50), "p50-ms")
	b.ReportMetric(pct(99), "p99-ms")
}
