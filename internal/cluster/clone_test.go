package cluster

import (
	"testing"

	"dismem/internal/stats"
)

// cloneMutationOps drives a machine through a random mix of the full
// mutation surface, mirroring the scenario-mutation property test.
func cloneMutationStep(t *testing.T, m *Machine, rng *stats.RNG, nextJob *int) {
	t.Helper()
	switch rng.Intn(6) {
	case 0, 1: // allocate a small job on free nodes
		var nodes []NodeID
		m.ForEachFree(func(id NodeID) bool {
			nodes = append(nodes, id)
			return len(nodes) < 2
		})
		if len(nodes) < 2 {
			return
		}
		*nextJob++
		a := &Allocation{JobID: *nextJob}
		need := map[PoolID]int64{}
		for _, n := range nodes {
			s := NodeShare{Node: n, LocalMiB: 1024, Pool: NoPool}
			if p := m.PoolOf(n); p != NoPool && m.pools[p].FreeMiB()-need[p] >= 512 {
				s.RemoteMiB, s.Pool = 512, p
				need[p] += 512
			}
			a.Shares = append(a.Shares, s)
		}
		if err := m.Allocate(a); err != nil {
			t.Fatalf("allocate: %v", err)
		}
	case 2: // release a random allocation
		for id := range m.allocs {
			if err := m.Release(id); err != nil {
				t.Fatalf("release: %v", err)
			}
			break
		}
	case 3: // fail + repair a free node
		var free NodeID = -1
		m.ForEachFree(func(id NodeID) bool { free = id; return false })
		if free < 0 {
			return
		}
		if err := m.SetDown(free); err != nil {
			t.Fatalf("down: %v", err)
		}
		if rng.Intn(2) == 0 {
			if err := m.SetUp(free); err != nil {
				t.Fatalf("up: %v", err)
			}
		}
	case 4: // resize a pool (possibly degrading it)
		if len(m.pools) > 0 {
			pid := PoolID(rng.Intn(len(m.pools)))
			if err := m.SetPoolCapacity(pid, int64(rng.Intn(8))*512); err != nil {
				t.Fatalf("resize: %v", err)
			}
		}
	case 5: // grow
		if m.cfg.Racks < 6 {
			if _, err := m.AddRack(); err != nil {
				t.Fatalf("grow: %v", err)
			}
		}
	}
}

// TestCloneInvariantsAndIndependence checkpoints the machine mid-way
// through a randomized mutation run and verifies (a) the clone passes
// CheckInvariants at the clone point, and (b) divergent mutations on
// original and clone never leak into each other.
func TestCloneInvariantsAndIndependence(t *testing.T) {
	cfg := Config{Racks: 3, NodesPerRack: 4, CoresPerNode: 8,
		LocalMemMiB: 4096, PoolMiB: 2048, FabricGiBps: 16,
		TrafficGiBpsPerNode: 1, Topology: TopologyRack}
	m := MustNew(cfg)
	rng := stats.NewRNG(42)
	next := 0
	for i := 0; i < 60; i++ {
		cloneMutationStep(t, m, rng, &next)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("pre-clone invariants: %v", err)
	}

	c := m.Clone()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	if got, want := c.Usage(), m.Usage(); got != want {
		t.Fatalf("clone usage %+v != original %+v", got, want)
	}

	// Allocations must be present, equal, and deep-copied.
	for id, a := range m.allocs {
		ca, ok := c.AllocationOf(id)
		if !ok {
			t.Fatalf("clone missing allocation %d", id)
		}
		if ca == a {
			t.Fatalf("allocation %d shared between clone and original", id)
		}
		if ca.RemoteMiB() != a.RemoteMiB() || ca.TotalMiB() != a.TotalMiB() {
			t.Fatalf("allocation %d sums differ", id)
		}
	}

	// Diverge both sides with independent mutation streams; neither may
	// corrupt the other.
	rngA, rngB := stats.NewRNG(7), stats.NewRNG(8)
	nextA, nextB := next, next+10000
	for i := 0; i < 40; i++ {
		cloneMutationStep(t, m, rngA, &nextA)
		cloneMutationStep(t, c, rngB, &nextB)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("original invariants after divergence step %d: %v", i, err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("clone invariants after divergence step %d: %v", i, err)
		}
	}
}

// TestAllocationCloneIndependent pins that mutating a cloned
// allocation's shares cannot corrupt the original's cached sums.
func TestAllocationCloneIndependent(t *testing.T) {
	a := &Allocation{JobID: 1, Shares: []NodeShare{
		{Node: 0, LocalMiB: 100, RemoteMiB: 50, Pool: 0},
		{Node: 1, LocalMiB: 100, Pool: NoPool},
	}}
	if got := a.RemoteMiB(); got != 50 {
		t.Fatalf("remote = %d, want 50", got)
	}
	c := a.Clone()
	if got := c.RemoteMiB(); got != 50 {
		t.Fatalf("clone remote = %d, want 50", got)
	}
	if len(c.TouchedPools()) != 1 || c.TouchedPools()[0] != 0 {
		t.Fatalf("clone touched pools = %v, want [0]", c.TouchedPools())
	}
	c.Shares[0].Node = 5
	if a.Shares[0].Node != 0 {
		t.Fatal("mutating clone shares leaked into original")
	}
}
