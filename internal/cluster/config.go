// Package cluster models the machine: racks of nodes with cores and
// local DRAM, plus disaggregated memory pools reachable over a fabric
// with finite bandwidth. It performs all allocation bookkeeping and
// enforces conservation invariants (nothing is ever over-committed,
// frees restore state exactly).
package cluster

import "fmt"

// Topology selects how disaggregated memory pools are attached.
type Topology int

const (
	// TopologyNone models a conventional machine: local DRAM only.
	TopologyNone Topology = iota
	// TopologyRack attaches one independent pool per rack; nodes can
	// borrow only from their own rack's pool (CXL rack-scale design).
	TopologyRack
	// TopologyGlobal attaches one machine-wide pool every node can
	// borrow from (fabric-attached memory appliance).
	TopologyGlobal
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case TopologyNone:
		return "none"
	case TopologyRack:
		return "rack"
	case TopologyGlobal:
		return "global"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// ParseTopology converts a config string to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "none", "":
		return TopologyNone, nil
	case "rack":
		return TopologyRack, nil
	case "global":
		return TopologyGlobal, nil
	default:
		return TopologyNone, fmt.Errorf("cluster: unknown topology %q", s)
	}
}

// Config describes a machine. Memory is in MiB, bandwidth in GiB/s.
type Config struct {
	// Racks and NodesPerRack give the machine shape.
	Racks, NodesPerRack int
	// CoresPerNode is the per-node core count.
	CoresPerNode int
	// LocalMemMiB is the per-node local DRAM.
	LocalMemMiB int64

	// Topology selects pool attachment; the fields below are ignored
	// for TopologyNone.
	Topology Topology
	// PoolMiB is the capacity of each pool: per rack for TopologyRack,
	// total for TopologyGlobal.
	PoolMiB int64
	// FabricGiBps is each pool's aggregate fabric bandwidth.
	FabricGiBps float64
	// TrafficGiBpsPerNode is the fabric demand one node generates when
	// its footprint is entirely remote; demand scales linearly with the
	// node's remote fraction. It converts placement decisions into
	// fabric congestion for the bandwidth slowdown model.
	TrafficGiBpsPerNode float64
}

// DefaultConfig returns the evaluation machine used across experiments:
// 16 racks x 16 nodes x 32 cores, 64 GiB local DRAM per node, 4 TiB
// rack pools behind 64 GiB/s fabrics.
func DefaultConfig() Config {
	return Config{
		Racks:               16,
		NodesPerRack:        16,
		CoresPerNode:        32,
		LocalMemMiB:         64 * 1024,
		Topology:            TopologyRack,
		PoolMiB:             4 * 1024 * 1024,
		FabricGiBps:         64,
		TrafficGiBpsPerNode: 2,
	}
}

// BaselineConfig returns the conventional big-memory machine the paper
// compares against: same node count, localMiB DRAM per node, no pool.
func BaselineConfig(localMiB int64) Config {
	c := DefaultConfig()
	c.LocalMemMiB = localMiB
	c.Topology = TopologyNone
	c.PoolMiB = 0
	return c
}

// IsZero reports whether c is the zero value — "no configuration
// given" — which API entry points replace with DefaultConfig. A
// partially filled config is NOT zero and must pass Validate instead
// of being silently swapped for the default.
func (c Config) IsZero() bool { return c == Config{} }

// Validate reports the first invalid parameter, or nil.
func (c Config) Validate() error {
	switch {
	case c.Racks <= 0:
		return fmt.Errorf("cluster: racks %d <= 0", c.Racks)
	case c.NodesPerRack <= 0:
		return fmt.Errorf("cluster: nodes/rack %d <= 0", c.NodesPerRack)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster: cores/node %d <= 0", c.CoresPerNode)
	case c.LocalMemMiB < 0:
		return fmt.Errorf("cluster: local mem %d < 0", c.LocalMemMiB)
	}
	if c.Topology != TopologyNone {
		if c.PoolMiB < 0 {
			return fmt.Errorf("cluster: pool size %d < 0", c.PoolMiB)
		}
		if c.FabricGiBps <= 0 {
			return fmt.Errorf("cluster: fabric bandwidth %g <= 0", c.FabricGiBps)
		}
		if c.TrafficGiBpsPerNode < 0 {
			return fmt.Errorf("cluster: traffic/node %g < 0", c.TrafficGiBpsPerNode)
		}
	}
	return nil
}

// TotalNodes returns Racks * NodesPerRack.
func (c Config) TotalNodes() int { return c.Racks * c.NodesPerRack }

// TotalCores returns the machine core count.
func (c Config) TotalCores() int { return c.TotalNodes() * c.CoresPerNode }

// TotalLocalMiB returns the aggregate local DRAM.
func (c Config) TotalLocalMiB() int64 {
	return int64(c.TotalNodes()) * c.LocalMemMiB
}

// TotalPoolMiB returns the aggregate disaggregated capacity.
func (c Config) TotalPoolMiB() int64 {
	switch c.Topology {
	case TopologyRack:
		return int64(c.Racks) * c.PoolMiB
	case TopologyGlobal:
		return c.PoolMiB
	default:
		return 0
	}
}

// TotalMemMiB returns local + pool capacity, the figure held constant
// in the DRAM-downsizing experiment (Fig 5).
func (c Config) TotalMemMiB() int64 { return c.TotalLocalMiB() + c.TotalPoolMiB() }
