package cluster

import (
	"strings"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := BaselineConfig(256 * 1024).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero racks", func(c *Config) { c.Racks = 0 }},
		{"zero nodes", func(c *Config) { c.NodesPerRack = 0 }},
		{"zero cores", func(c *Config) { c.CoresPerNode = 0 }},
		{"negative local", func(c *Config) { c.LocalMemMiB = -1 }},
		{"negative pool", func(c *Config) { c.PoolMiB = -1 }},
		{"zero fabric", func(c *Config) { c.FabricGiBps = 0 }},
		{"negative traffic", func(c *Config) { c.TrafficGiBpsPerNode = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	// Pool fields are ignored under TopologyNone.
	cfg := BaselineConfig(1024)
	cfg.FabricGiBps = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("TopologyNone must ignore fabric: %v", err)
	}
}

func TestConfigIsZero(t *testing.T) {
	if !(Config{}).IsZero() {
		t.Fatal("zero value not IsZero")
	}
	// A partially filled config is not "no configuration": it must hit
	// Validate, not be silently swapped for the default machine.
	for _, cfg := range []Config{
		{PoolMiB: 4096},
		{Racks: 16},
		{TrafficGiBpsPerNode: 2},
		DefaultConfig(),
	} {
		if cfg.IsZero() {
			t.Errorf("non-zero config %+v reported IsZero", cfg)
		}
	}
}

func TestConfigTotals(t *testing.T) {
	cfg := Config{
		Racks: 4, NodesPerRack: 8, CoresPerNode: 16, LocalMemMiB: 1000,
		Topology: TopologyRack, PoolMiB: 5000, FabricGiBps: 10,
	}
	if got := cfg.TotalNodes(); got != 32 {
		t.Fatalf("TotalNodes = %d, want 32", got)
	}
	if got := cfg.TotalCores(); got != 512 {
		t.Fatalf("TotalCores = %d, want 512", got)
	}
	if got := cfg.TotalLocalMiB(); got != 32000 {
		t.Fatalf("TotalLocalMiB = %d, want 32000", got)
	}
	if got := cfg.TotalPoolMiB(); got != 20000 {
		t.Fatalf("TotalPoolMiB(rack) = %d, want 20000", got)
	}
	cfg.Topology = TopologyGlobal
	if got := cfg.TotalPoolMiB(); got != 5000 {
		t.Fatalf("TotalPoolMiB(global) = %d, want 5000", got)
	}
	cfg.Topology = TopologyNone
	if got := cfg.TotalPoolMiB(); got != 0 {
		t.Fatalf("TotalPoolMiB(none) = %d, want 0", got)
	}
	if got := cfg.TotalMemMiB(); got != 32000 {
		t.Fatalf("TotalMemMiB = %d, want 32000", got)
	}
}

func TestParseTopology(t *testing.T) {
	for in, want := range map[string]Topology{
		"none": TopologyNone, "": TopologyNone,
		"rack": TopologyRack, "global": TopologyGlobal,
	} {
		got, err := ParseTopology(in)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseTopology("mesh"); err == nil || !strings.Contains(err.Error(), "mesh") {
		t.Fatalf("unknown topology accepted: %v", err)
	}
}

func TestTopologyString(t *testing.T) {
	for tp, want := range map[Topology]string{
		TopologyNone: "none", TopologyRack: "rack", TopologyGlobal: "global",
		Topology(9): "topology(9)",
	} {
		if got := tp.String(); got != want {
			t.Errorf("Topology(%d).String() = %q, want %q", int(tp), got, want)
		}
	}
}
