package cluster

import (
	"math/rand"
	"testing"
)

// naiveUsage recomputes the Usage snapshot from scratch by scanning
// every node and pool, the way Usage worked before the incremental
// aggregates existed. It is the oracle the cached counters must match.
func naiveUsage(m *Machine) Usage {
	u := Usage{}
	for _, n := range m.Nodes() {
		if n.Busy != 0 {
			u.BusyNodes++
			u.UsedCores += m.Config().CoresPerNode
			u.UsedLocal += n.UsedLocalMiB
		}
	}
	for _, p := range m.Pools() {
		u.UsedPool += p.UsedMiB
		u.PoolDemand += p.DemandGiBps
		if p.CapacityMiB > 0 {
			if util := float64(p.UsedMiB) / float64(p.CapacityMiB); util > u.MaxPoolUtil {
				u.MaxPoolUtil = util
			}
		}
		if c := p.Congestion(); c > u.MaxCongest {
			u.MaxCongest = c
		}
	}
	return u
}

// checkAggregates cross-checks every incremental view against a
// from-scratch recomputation over the exported node state.
func checkAggregates(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Usage(), naiveUsage(m); got != want {
		t.Fatalf("Usage() = %+v, naive recomputation = %+v", got, want)
	}
	cfg := m.Config()
	for r := 0; r < cfg.Racks; r++ {
		free := 0
		base := r * cfg.NodesPerRack
		for i := 0; i < cfg.NodesPerRack; i++ {
			if m.Nodes()[base+i].Available() {
				free++
			}
		}
		if got := m.RackFreeNodes(r); got != free {
			t.Fatalf("RackFreeNodes(%d) = %d, scan says %d", r, got, free)
		}
		var iterated []NodeID
		m.FreeInRack(r, func(id NodeID) bool {
			iterated = append(iterated, id)
			return true
		})
		if len(iterated) != free {
			t.Fatalf("FreeInRack(%d) visited %d nodes, scan says %d", r, len(iterated), free)
		}
		for k, id := range iterated {
			if !m.Nodes()[id].Available() {
				t.Fatalf("FreeInRack(%d) visited unavailable node %d", r, id)
			}
			if m.Nodes()[id].Rack != r {
				t.Fatalf("FreeInRack(%d) visited node %d of rack %d", r, id, m.Nodes()[id].Rack)
			}
			if k > 0 && iterated[k-1] >= id {
				t.Fatalf("FreeInRack(%d) out of order: %v", r, iterated)
			}
		}
	}
	total := 0
	m.ForEachFree(func(id NodeID) bool { total++; return true })
	if total != m.FreeNodes() {
		t.Fatalf("ForEachFree visited %d nodes, FreeNodes() = %d", total, m.FreeNodes())
	}
}

// TestIncrementalAggregatesRandomOps drives a few thousand random
// Allocate/Release/SetDown/SetUp operations and asserts after every
// step that all incremental counters equal a from-scratch
// recomputation.
func TestIncrementalAggregatesRandomOps(t *testing.T) {
	configs := map[string]Config{
		"rack": {
			Racks: 4, NodesPerRack: 10, CoresPerNode: 8, LocalMemMiB: 1024,
			Topology: TopologyRack, PoolMiB: 8 * 1024, FabricGiBps: 16, TrafficGiBpsPerNode: 2,
		},
		"global": {
			Racks: 3, NodesPerRack: 7, CoresPerNode: 4, LocalMemMiB: 512,
			Topology: TopologyGlobal, PoolMiB: 6 * 1024, FabricGiBps: 8, TrafficGiBpsPerNode: 1,
		},
		"none": {
			Racks: 2, NodesPerRack: 70, CoresPerNode: 2, LocalMemMiB: 256,
			Topology: TopologyNone,
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			m := MustNew(cfg)
			rng := rand.New(rand.NewSource(42))
			nextJob := 1
			var live []int
			var down []NodeID
			allocs, releases, flips, rejected := 0, 0, 0, 0
			for step := 0; step < 3000; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // allocate a random job
					var free []NodeID
					m.ForEachFree(func(id NodeID) bool { free = append(free, id); return true })
					if len(free) == 0 {
						break
					}
					rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
					k := 1 + rng.Intn(min(len(free), 6))
					a := &Allocation{JobID: nextJob}
					for _, id := range free[:k] {
						s := NodeShare{Node: id, LocalMiB: int64(rng.Intn(int(cfg.LocalMemMiB))), Pool: NoPool}
						// Half the shares borrow remote memory,
						// sometimes more than the pool has free, to
						// exercise the rejection path.
						if pid := m.PoolOf(id); pid != NoPool && rng.Intn(2) == 0 {
							s.RemoteMiB = 1 + int64(rng.Intn(2048))
							s.Pool = pid
						}
						a.Shares = append(a.Shares, s)
					}
					if err := m.Allocate(a); err == nil {
						live = append(live, nextJob)
						nextJob++
						allocs++
					} else {
						rejected++
					}
				case op < 8: // release a random live job
					if len(live) == 0 {
						break
					}
					i := rng.Intn(len(live))
					if err := m.Release(live[i]); err != nil {
						t.Fatalf("step %d: release job %d: %v", step, live[i], err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					releases++
				case op < 9: // fail a random free node
					var free []NodeID
					m.ForEachFree(func(id NodeID) bool { free = append(free, id); return true })
					if len(free) == 0 {
						break
					}
					id := free[rng.Intn(len(free))]
					if err := m.SetDown(id); err != nil {
						t.Fatalf("step %d: SetDown(%d): %v", step, id, err)
					}
					down = append(down, id)
					flips++
				default: // repair a random down node
					if len(down) == 0 {
						break
					}
					i := rng.Intn(len(down))
					if err := m.SetUp(down[i]); err != nil {
						t.Fatalf("step %d: SetUp(%d): %v", step, down[i], err)
					}
					down[i] = down[len(down)-1]
					down = down[:len(down)-1]
					flips++
				}
				checkAggregates(t, m)
			}
			t.Logf("%s: %d allocs, %d releases, %d up/down flips, %d rejected, %d live at end",
				name, allocs, releases, flips, rejected, len(live))
			if allocs == 0 || releases == 0 {
				t.Fatalf("degenerate run: %d allocs, %d releases", allocs, releases)
			}
			// Drain and confirm the machine returns to pristine idle.
			for _, id := range live {
				if err := m.Release(id); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range down {
				if err := m.SetUp(id); err != nil {
					t.Fatal(err)
				}
			}
			checkAggregates(t, m)
			if m.FreeNodes() != cfg.TotalNodes() || m.BusyNodes() != 0 || m.DownNodes() != 0 {
				t.Fatalf("machine not idle after drain: free=%d busy=%d down=%d",
					m.FreeNodes(), m.BusyNodes(), m.DownNodes())
			}
			u := m.Usage()
			if u.UsedLocal != 0 || u.UsedPool != 0 || u.PoolDemand != 0 {
				t.Fatalf("usage not zero after drain: %+v", u)
			}
		})
	}
}

// TestReleaseKeepsLiveDemand pins the Release drift-guard fix: freeing
// one job must not zero a pool's demand while other jobs still borrow
// from it.
func TestReleaseKeepsLiveDemand(t *testing.T) {
	cfg := Config{
		Racks: 1, NodesPerRack: 4, CoresPerNode: 1, LocalMemMiB: 8 << 40,
		Topology: TopologyRack, PoolMiB: 64 * 1024, FabricGiBps: 16, TrafficGiBpsPerNode: 2,
	}
	m := MustNew(cfg)
	// A vanishing remote fraction: tiny's demand (2 GiB/s × 1 MiB /
	// 4 PiB ≈ 5e-10) sits below the old 1e-9 drift threshold, which any
	// release used to zero even though tiny keeps running.
	tiny := &Allocation{JobID: 1, Shares: []NodeShare{{Node: 0, LocalMiB: 4 << 40, RemoteMiB: 1, Pool: 0}}}
	other := &Allocation{JobID: 2, Shares: []NodeShare{{Node: 1, LocalMiB: 1024, RemoteMiB: 512, Pool: 0}}}
	for _, a := range []*Allocation{tiny, other} {
		if err := m.Allocate(a); err != nil {
			t.Fatal(err)
		}
	}
	demandTiny := m.DemandOf(tiny)
	if demandTiny <= 0 || demandTiny >= 1e-9 {
		t.Fatalf("test setup: tiny demand %g not inside (0, 1e-9)", demandTiny)
	}
	if err := m.Release(2); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Pool(0)
	if p.DemandGiBps == 0 {
		t.Fatalf("releasing job 2 erased job 1's live demand %g", demandTiny)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	p, _ = m.Pool(0)
	if p.DemandGiBps != 0 {
		t.Fatalf("idle pool demand = %g, want exactly 0", p.DemandGiBps)
	}
}
