package cluster

import "fmt"

// NodeID identifies a node; node IDs are dense in [0, TotalNodes).
type NodeID int

// PoolID identifies a memory pool; -1 means "no pool reachable".
type PoolID int

// NoPool is the PoolID for nodes without a reachable pool.
const NoPool PoolID = -1

// Node is one compute node. Exported fields are read-only snapshots for
// schedulers; all mutation goes through Machine.
type Node struct {
	ID   NodeID
	Rack int
	// Busy is the ID of the job occupying the node, or 0 (nodes are
	// allocated exclusively, one job per node).
	Busy int
	// Down marks a failed node: it cannot be allocated until repaired.
	Down bool
	// UsedLocalMiB is the local DRAM charged to the occupying job.
	UsedLocalMiB int64
}

// Available reports whether the node can accept an allocation.
func (n Node) Available() bool { return n.Busy == 0 && !n.Down }

// Pool is one disaggregated memory pool.
type Pool struct {
	ID          PoolID
	CapacityMiB int64
	UsedMiB     int64
	// FabricGiBps is the pool's aggregate fabric bandwidth.
	FabricGiBps float64
	// DemandGiBps is the current aggregate traffic demand from all
	// allocations borrowing from this pool.
	DemandGiBps float64
}

// FreeMiB returns the unallocated pool capacity.
func (p Pool) FreeMiB() int64 { return p.CapacityMiB - p.UsedMiB }

// Congestion returns demand/bandwidth; > 1 means the fabric is
// oversubscribed and remote accesses slow down.
func (p Pool) Congestion() float64 {
	if p.FabricGiBps <= 0 {
		return 0
	}
	return p.DemandGiBps / p.FabricGiBps
}

// NodeShare is one node's slice of an allocation.
type NodeShare struct {
	Node NodeID
	// LocalMiB + RemoteMiB equals the job's per-node footprint.
	LocalMiB, RemoteMiB int64
	// Pool is the pool backing RemoteMiB (NoPool iff RemoteMiB is 0).
	Pool PoolID
}

// Allocation is a job's committed placement. Construct with a planner
// (package sched / core) and commit with Machine.Allocate.
type Allocation struct {
	JobID  int
	Shares []NodeShare
}

// RemoteMiB returns the total pool memory the allocation borrows.
func (a *Allocation) RemoteMiB() int64 {
	var sum int64
	for _, s := range a.Shares {
		sum += s.RemoteMiB
	}
	return sum
}

// TotalMiB returns the allocation's whole footprint.
func (a *Allocation) TotalMiB() int64 {
	var sum int64
	for _, s := range a.Shares {
		sum += s.LocalMiB + s.RemoteMiB
	}
	return sum
}

// RemoteFraction returns RemoteMiB/TotalMiB (0 for an empty alloc).
func (a *Allocation) RemoteFraction() float64 {
	t := a.TotalMiB()
	if t == 0 {
		return 0
	}
	return float64(a.RemoteMiB()) / float64(t)
}

// Machine owns all resource state. It is not safe for concurrent use;
// the simulation kernel is single-threaded (see package des).
type Machine struct {
	cfg       Config
	nodes     []Node
	pools     []Pool
	freeNodes int
	downNodes int
	allocs    map[int]*Allocation // by job ID
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:       cfg,
		nodes:     make([]Node, cfg.TotalNodes()),
		freeNodes: cfg.TotalNodes(),
		allocs:    make(map[int]*Allocation),
	}
	for i := range m.nodes {
		m.nodes[i] = Node{ID: NodeID(i), Rack: i / cfg.NodesPerRack}
	}
	switch cfg.Topology {
	case TopologyRack:
		m.pools = make([]Pool, cfg.Racks)
		for r := range m.pools {
			m.pools[r] = Pool{ID: PoolID(r), CapacityMiB: cfg.PoolMiB, FabricGiBps: cfg.FabricGiBps}
		}
	case TopologyGlobal:
		m.pools = []Pool{{ID: 0, CapacityMiB: cfg.PoolMiB, FabricGiBps: cfg.FabricGiBps}}
	}
	return m, nil
}

// MustNew is New for known-valid configs; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Nodes returns a read-only view of all nodes. Callers must not retain
// the slice across mutations.
func (m *Machine) Nodes() []Node { return m.nodes }

// Pools returns a read-only view of all pools.
func (m *Machine) Pools() []Pool { return m.pools }

// Pool returns a read-only copy of the pool with the given ID.
func (m *Machine) Pool(id PoolID) (Pool, bool) {
	if id < 0 || int(id) >= len(m.pools) {
		return Pool{}, false
	}
	return m.pools[id], true
}

// PoolOf returns the pool reachable from node n (NoPool for
// TopologyNone).
func (m *Machine) PoolOf(n NodeID) PoolID {
	switch m.cfg.Topology {
	case TopologyRack:
		return PoolID(m.nodes[n].Rack)
	case TopologyGlobal:
		return 0
	default:
		return NoPool
	}
}

// FreeNodes returns the number of nodes available for allocation
// (neither busy nor down).
func (m *Machine) FreeNodes() int { return m.freeNodes }

// DownNodes returns the number of failed nodes.
func (m *Machine) DownNodes() int { return m.downNodes }

// SetDown marks a free node as failed. Failing a busy node is an
// engine-level operation: kill and release the occupant first.
func (m *Machine) SetDown(id NodeID) error {
	if id < 0 || int(id) >= len(m.nodes) {
		return fmt.Errorf("cluster: SetDown: node %d out of range", id)
	}
	n := &m.nodes[id]
	if n.Busy != 0 {
		return fmt.Errorf("cluster: SetDown: node %d busy with job %d", id, n.Busy)
	}
	if n.Down {
		return fmt.Errorf("cluster: SetDown: node %d already down", id)
	}
	n.Down = true
	m.freeNodes--
	m.downNodes++
	return nil
}

// SetUp returns a failed node to service.
func (m *Machine) SetUp(id NodeID) error {
	if id < 0 || int(id) >= len(m.nodes) {
		return fmt.Errorf("cluster: SetUp: node %d out of range", id)
	}
	n := &m.nodes[id]
	if !n.Down {
		return fmt.Errorf("cluster: SetUp: node %d is not down", id)
	}
	n.Down = false
	m.freeNodes++
	m.downNodes--
	return nil
}

// RunningJobs returns the number of committed allocations.
func (m *Machine) RunningJobs() int { return len(m.allocs) }

// AllocationOf returns job's live allocation, if any.
func (m *Machine) AllocationOf(jobID int) (*Allocation, bool) {
	a, ok := m.allocs[jobID]
	return a, ok
}

// Allocate validates and commits an allocation atomically: on error the
// machine is unchanged.
func (m *Machine) Allocate(a *Allocation) error {
	if err := m.check(a); err != nil {
		return err
	}
	for _, s := range a.Shares {
		n := &m.nodes[s.Node]
		n.Busy = a.JobID
		n.UsedLocalMiB = s.LocalMiB
		if s.RemoteMiB > 0 {
			p := &m.pools[s.Pool]
			p.UsedMiB += s.RemoteMiB
			p.DemandGiBps += m.shareDemand(s)
		}
	}
	m.freeNodes -= len(a.Shares)
	m.allocs[a.JobID] = a
	return nil
}

// check validates a without mutating state.
func (m *Machine) check(a *Allocation) error {
	if a == nil || a.JobID <= 0 {
		return fmt.Errorf("cluster: invalid allocation (nil or bad job id)")
	}
	if len(a.Shares) == 0 {
		return fmt.Errorf("cluster: job %d: empty allocation", a.JobID)
	}
	if _, dup := m.allocs[a.JobID]; dup {
		return fmt.Errorf("cluster: job %d: already allocated", a.JobID)
	}
	poolNeed := make(map[PoolID]int64)
	seen := make(map[NodeID]bool, len(a.Shares))
	for _, s := range a.Shares {
		if s.Node < 0 || int(s.Node) >= len(m.nodes) {
			return fmt.Errorf("cluster: job %d: node %d out of range", a.JobID, s.Node)
		}
		if seen[s.Node] {
			return fmt.Errorf("cluster: job %d: node %d listed twice", a.JobID, s.Node)
		}
		seen[s.Node] = true
		n := &m.nodes[s.Node]
		if n.Busy != 0 {
			return fmt.Errorf("cluster: job %d: node %d busy with job %d", a.JobID, s.Node, n.Busy)
		}
		if n.Down {
			return fmt.Errorf("cluster: job %d: node %d is down", a.JobID, s.Node)
		}
		if s.LocalMiB < 0 || s.RemoteMiB < 0 {
			return fmt.Errorf("cluster: job %d: negative share on node %d", a.JobID, s.Node)
		}
		if s.LocalMiB > m.cfg.LocalMemMiB {
			return fmt.Errorf("cluster: job %d: node %d local %d exceeds DRAM %d",
				a.JobID, s.Node, s.LocalMiB, m.cfg.LocalMemMiB)
		}
		if s.RemoteMiB > 0 {
			want := m.PoolOf(s.Node)
			if s.Pool != want {
				return fmt.Errorf("cluster: job %d: node %d borrows from pool %d, reachable pool is %d",
					a.JobID, s.Node, s.Pool, want)
			}
			if want == NoPool {
				return fmt.Errorf("cluster: job %d: node %d has no reachable pool", a.JobID, s.Node)
			}
			poolNeed[s.Pool] += s.RemoteMiB
		} else if s.Pool != NoPool {
			return fmt.Errorf("cluster: job %d: node %d names pool %d without remote memory",
				a.JobID, s.Node, s.Pool)
		}
	}
	for pid, need := range poolNeed {
		if free := m.pools[pid].FreeMiB(); need > free {
			return fmt.Errorf("cluster: job %d: pool %d needs %d MiB, only %d free",
				a.JobID, pid, need, free)
		}
	}
	return nil
}

// Release frees job's allocation, restoring all counters exactly.
func (m *Machine) Release(jobID int) error {
	a, ok := m.allocs[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %d: no allocation to release", jobID)
	}
	for _, s := range a.Shares {
		n := &m.nodes[s.Node]
		n.Busy = 0
		n.UsedLocalMiB = 0
		if s.RemoteMiB > 0 {
			p := &m.pools[s.Pool]
			p.UsedMiB -= s.RemoteMiB
			p.DemandGiBps -= m.shareDemand(s)
			if p.DemandGiBps < 1e-9 {
				p.DemandGiBps = 0 // absorb float drift at idle
			}
		}
	}
	m.freeNodes += len(a.Shares)
	delete(m.allocs, jobID)
	return nil
}

// shareDemand converts one node share into fabric demand (GiB/s):
// linear in the node's remote fraction.
func (m *Machine) shareDemand(s NodeShare) float64 {
	tot := s.LocalMiB + s.RemoteMiB
	if tot == 0 || s.RemoteMiB == 0 {
		return 0
	}
	return m.cfg.TrafficGiBpsPerNode * float64(s.RemoteMiB) / float64(tot)
}

// DemandOf returns the total fabric demand (GiB/s) allocation a would
// add (or currently adds) to its pools.
func (m *Machine) DemandOf(a *Allocation) float64 {
	var d float64
	for _, s := range a.Shares {
		d += m.shareDemand(s)
	}
	return d
}

// Usage is a point-in-time resource snapshot used by the metrics
// recorder.
type Usage struct {
	BusyNodes   int
	UsedCores   int
	UsedLocal   int64 // MiB
	UsedPool    int64 // MiB
	PoolDemand  float64
	MaxPoolUtil float64 // max over pools of used/capacity
	MaxCongest  float64 // max over pools of demand/bandwidth
}

// Usage returns the current snapshot. Cores are charged as fully used
// on busy nodes (exclusive allocation).
func (m *Machine) Usage() Usage {
	u := Usage{}
	for i := range m.nodes {
		if m.nodes[i].Busy != 0 {
			u.BusyNodes++
			u.UsedCores += m.cfg.CoresPerNode
			u.UsedLocal += m.nodes[i].UsedLocalMiB
		}
	}
	for i := range m.pools {
		p := &m.pools[i]
		u.UsedPool += p.UsedMiB
		u.PoolDemand += p.DemandGiBps
		if p.CapacityMiB > 0 {
			if util := float64(p.UsedMiB) / float64(p.CapacityMiB); util > u.MaxPoolUtil {
				u.MaxPoolUtil = util
			}
		}
		if c := p.Congestion(); c > u.MaxCongest {
			u.MaxCongest = c
		}
	}
	return u
}

// CheckInvariants verifies conservation: per-node and per-pool usage
// derived from live allocations matches the counters. It is O(machine)
// and intended for tests and debug builds.
func (m *Machine) CheckInvariants() error {
	busy := make(map[NodeID]int)
	poolUsed := make(map[PoolID]int64)
	poolDemand := make(map[PoolID]float64)
	for id, a := range m.allocs {
		if a.JobID != id {
			return fmt.Errorf("cluster: alloc map key %d != job id %d", id, a.JobID)
		}
		for _, s := range a.Shares {
			if prev, clash := busy[s.Node]; clash {
				return fmt.Errorf("cluster: node %d shared by jobs %d and %d", s.Node, prev, id)
			}
			busy[s.Node] = id
			if s.RemoteMiB > 0 {
				poolUsed[s.Pool] += s.RemoteMiB
				poolDemand[s.Pool] += m.shareDemand(s)
			}
		}
	}
	free, down := 0, 0
	for i := range m.nodes {
		n := &m.nodes[i]
		if want := busy[n.ID]; want != n.Busy {
			return fmt.Errorf("cluster: node %d busy=%d, allocations say %d", n.ID, n.Busy, want)
		}
		if n.Busy != 0 && n.Down {
			return fmt.Errorf("cluster: node %d both busy and down", n.ID)
		}
		if n.Down {
			down++
		}
		if n.Busy == 0 {
			if !n.Down {
				free++
			}
			if n.UsedLocalMiB != 0 {
				return fmt.Errorf("cluster: free node %d has %d MiB charged", n.ID, n.UsedLocalMiB)
			}
		}
	}
	if free != m.freeNodes {
		return fmt.Errorf("cluster: freeNodes=%d, counted %d", m.freeNodes, free)
	}
	if down != m.downNodes {
		return fmt.Errorf("cluster: downNodes=%d, counted %d", m.downNodes, down)
	}
	for i := range m.pools {
		p := &m.pools[i]
		if p.UsedMiB != poolUsed[p.ID] {
			return fmt.Errorf("cluster: pool %d used=%d, allocations say %d", p.ID, p.UsedMiB, poolUsed[p.ID])
		}
		if p.UsedMiB < 0 || p.UsedMiB > p.CapacityMiB {
			return fmt.Errorf("cluster: pool %d used %d outside [0,%d]", p.ID, p.UsedMiB, p.CapacityMiB)
		}
		if diff := p.DemandGiBps - poolDemand[p.ID]; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("cluster: pool %d demand=%g, allocations say %g", p.ID, p.DemandGiBps, poolDemand[p.ID])
		}
	}
	return nil
}
