package cluster

import (
	"fmt"
	"math/bits"
)

// NodeID identifies a node; node IDs are dense in [0, TotalNodes).
type NodeID int

// PoolID identifies a memory pool; -1 means "no pool reachable".
type PoolID int

// NoPool is the PoolID for nodes without a reachable pool.
const NoPool PoolID = -1

// Node is one compute node. Exported fields are read-only snapshots for
// schedulers; all mutation goes through Machine.
type Node struct {
	ID   NodeID
	Rack int
	// Busy is the ID of the job occupying the node, or 0 (nodes are
	// allocated exclusively, one job per node).
	Busy int
	// Down marks a failed node: it cannot be allocated until repaired.
	Down bool
	// UsedLocalMiB is the local DRAM charged to the occupying job.
	UsedLocalMiB int64
}

// Available reports whether the node can accept an allocation.
func (n Node) Available() bool { return n.Busy == 0 && !n.Down }

// Pool is one disaggregated memory pool.
type Pool struct {
	ID          PoolID
	CapacityMiB int64
	UsedMiB     int64
	// FabricGiBps is the pool's aggregate fabric bandwidth.
	FabricGiBps float64
	// DemandGiBps is the current aggregate traffic demand from all
	// allocations borrowing from this pool.
	DemandGiBps float64
}

// FreeMiB returns the unallocated pool capacity.
func (p Pool) FreeMiB() int64 { return p.CapacityMiB - p.UsedMiB }

// Congestion returns demand/bandwidth; > 1 means the fabric is
// oversubscribed and remote accesses slow down.
func (p Pool) Congestion() float64 {
	if p.FabricGiBps <= 0 {
		return 0
	}
	return p.DemandGiBps / p.FabricGiBps
}

// NodeShare is one node's slice of an allocation.
type NodeShare struct {
	Node NodeID
	// LocalMiB + RemoteMiB equals the job's per-node footprint.
	LocalMiB, RemoteMiB int64
	// Pool is the pool backing RemoteMiB (NoPool iff RemoteMiB is 0).
	Pool PoolID
}

// Allocation is a job's committed placement. Construct with a planner
// (package sched / core) and commit with Machine.Allocate.
//
// Aggregate queries (RemoteMiB, TotalMiB, TouchedPools) are cached on
// first use; Shares must not be mutated after the first query or after
// the allocation is committed.
type Allocation struct {
	JobID  int
	Shares []NodeShare

	remoteMiB   int64
	totalMiB    int64
	cached      bool
	pools       []PoolID // distinct pools borrowed from, first-touch order
	poolsCached bool
	// pooled marks allocations created by Machine.AllocateCopy: they are
	// owned by the machine's free list and may be recycled after release
	// (Machine.Recycle is a no-op for any other allocation).
	pooled bool
}

// ensureSums computes the cached memory totals once. It allocates
// nothing, so planners can query candidate allocations freely.
func (a *Allocation) ensureSums() {
	if a.cached {
		return
	}
	for _, s := range a.Shares {
		a.remoteMiB += s.RemoteMiB
		a.totalMiB += s.LocalMiB + s.RemoteMiB
	}
	a.cached = true
}

// RemoteMiB returns the total pool memory the allocation borrows.
func (a *Allocation) RemoteMiB() int64 {
	a.ensureSums()
	return a.remoteMiB
}

// TotalMiB returns the allocation's whole footprint.
func (a *Allocation) TotalMiB() int64 {
	a.ensureSums()
	return a.totalMiB
}

// TouchedPools returns the distinct pools the allocation borrows from,
// in first-touch share order, cached on first call (it is computed
// separately from the memory totals because only committed allocations
// are asked for it, and building the list allocates). Callers must not
// mutate the slice.
func (a *Allocation) TouchedPools() []PoolID {
	if !a.poolsCached {
		for _, s := range a.Shares {
			if s.RemoteMiB == 0 {
				continue
			}
			seen := false
			for _, pid := range a.pools {
				if pid == s.Pool {
					seen = true
					break
				}
			}
			if !seen {
				a.pools = append(a.pools, s.Pool)
			}
		}
		a.poolsCached = true
	}
	return a.pools
}

// Clone returns a deep copy of the allocation: shares, cached sums and
// the touched-pool list are all independent of the original, so a
// cloned machine's allocations can be queried and released without
// coordinating with the source machine.
func (a *Allocation) Clone() *Allocation {
	c := *a
	c.Shares = append([]NodeShare(nil), a.Shares...)
	c.pools = append([]PoolID(nil), a.pools...)
	return &c
}

// RemoteFraction returns RemoteMiB/TotalMiB (0 for an empty alloc).
func (a *Allocation) RemoteFraction() float64 {
	t := a.TotalMiB()
	if t == 0 {
		return 0
	}
	return float64(a.RemoteMiB()) / float64(t)
}

// Machine owns all resource state. It is not safe for concurrent use;
// the simulation kernel is single-threaded (see package des).
type Machine struct {
	cfg Config
	// baseCfg is the configuration the machine was constructed with —
	// the state Reset returns to, unaffected by scenario growth or
	// resizes that rewrite cfg.
	baseCfg   Config
	nodes     []Node
	pools     []Pool
	freeNodes int
	downNodes int
	allocs    map[int]*Allocation // by job ID

	// version increments on every state mutation (allocate, release,
	// node up/down, pool resize, growth, reset). (Machine pointer,
	// Version) therefore identifies one exact machine state, which
	// placers key derived-view caches on.
	version uint64

	// allocPool is the free list AllocateCopy draws from and Recycle
	// returns to.
	allocPool []*Allocation

	// usageCache memoizes Usage at usageVer (0 = never computed;
	// version is always >= 1 after Reset).
	usageCache Usage
	usageVer   uint64

	// poolDegraded marks pools whose capacity a SetPoolCapacity call
	// pushed below live usage (scenario degradation). The flag is kept
	// exactly equivalent to UsedMiB > CapacityMiB — re-evaluated on
	// every resize, cleared when releases drain usage back under the
	// capacity — so CheckInvariants can tolerate over-capacity usage
	// precisely where degradation caused it and nowhere else.
	poolDegraded []bool

	// Incremental aggregates: maintained by Allocate/Release/
	// SetDown/SetUp so schedulers never rescan the node array. Every
	// counter here is cross-checked against a from-scratch
	// recomputation by CheckInvariants.
	busyNodes    int
	usedLocalMiB int64    // sum of UsedLocalMiB over busy nodes
	usedPoolMiB  int64    // sum of UsedMiB over pools
	rackFree     []int    // available (not busy, not down) nodes per rack
	freeBits     []uint64 // bit n set iff nodes[n].Available()
	remoteShares []int    // per pool: live node shares with RemoteMiB > 0

	// check() scratch, reused across calls so Allocate stays
	// allocation-free.
	nodeStamp []int64
	stampGen  int64
	poolNeed  []int64
	poolsHit  []PoolID
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{baseCfg: cfg, allocs: make(map[int]*Allocation)}
	m.Reset()
	return m, nil
}

// sliceFor returns s resized to n elements, zeroed — reusing s's
// backing array when its capacity suffices.
func sliceFor[T any](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

// Reset returns the machine to its freshly constructed state under the
// config New was called with: all nodes up and free, pools empty and at
// configured capacity, every committed allocation dropped (pooled ones
// recycled). Mutations that rewrote the live config — scenario growth,
// machine-wide pool resizes — are rolled back. Slice storage and the
// allocation free list are retained, so a batch of runs reuses one
// machine's memory. New itself is implemented as a Reset of a blank
// machine, which is what makes reset-and-reuse equivalent to fresh
// construction by construction.
func (m *Machine) Reset() {
	cfg := m.baseCfg
	for id, a := range m.allocs {
		delete(m.allocs, id)
		m.Recycle(a)
	}
	total := cfg.TotalNodes()
	m.cfg = cfg
	m.nodes = sliceFor(m.nodes, total)
	m.freeNodes = total
	m.downNodes = 0
	m.busyNodes = 0
	m.usedLocalMiB = 0
	m.usedPoolMiB = 0
	m.rackFree = sliceFor(m.rackFree, cfg.Racks)
	m.freeBits = sliceFor(m.freeBits, (total+63)/64)
	m.nodeStamp = sliceFor(m.nodeStamp, total)
	m.stampGen = 0
	for i := range m.nodes {
		m.nodes[i] = Node{ID: NodeID(i), Rack: i / cfg.NodesPerRack}
		m.setFree(NodeID(i))
	}
	for r := range m.rackFree {
		m.rackFree[r] = cfg.NodesPerRack
	}
	switch cfg.Topology {
	case TopologyRack:
		m.pools = sliceFor(m.pools, cfg.Racks)
		for r := range m.pools {
			m.pools[r] = Pool{ID: PoolID(r), CapacityMiB: cfg.PoolMiB, FabricGiBps: cfg.FabricGiBps}
		}
	case TopologyGlobal:
		m.pools = sliceFor(m.pools, 1)
		m.pools[0] = Pool{ID: 0, CapacityMiB: cfg.PoolMiB, FabricGiBps: cfg.FabricGiBps}
	default:
		m.pools = m.pools[:0]
	}
	m.remoteShares = sliceFor(m.remoteShares, len(m.pools))
	m.poolNeed = sliceFor(m.poolNeed, len(m.pools))
	m.poolsHit = m.poolsHit[:0]
	m.poolDegraded = sliceFor(m.poolDegraded, len(m.pools))
	m.version++
}

// setFree marks node id available in the free bitset.
func (m *Machine) setFree(id NodeID) { m.freeBits[id>>6] |= 1 << (uint(id) & 63) }

// clearFree marks node id unavailable in the free bitset.
func (m *Machine) clearFree(id NodeID) { m.freeBits[id>>6] &^= 1 << (uint(id) & 63) }

// Clone returns a deep copy of the machine: nodes, pools, every
// incremental aggregate, the degraded-pool flags and all committed
// allocations (each deep-copied via Allocation.Clone, so the clone's
// allocations can be looked up by job ID and released independently).
// It is the state-capture half of simulation checkpointing; a clone
// passes CheckInvariants whenever the original does, and mutating
// either machine never affects the other.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		cfg:          m.cfg,
		baseCfg:      m.baseCfg,
		version:      m.version,
		nodes:        append([]Node(nil), m.nodes...),
		pools:        append([]Pool(nil), m.pools...),
		freeNodes:    m.freeNodes,
		downNodes:    m.downNodes,
		allocs:       make(map[int]*Allocation, len(m.allocs)),
		poolDegraded: append([]bool(nil), m.poolDegraded...),
		busyNodes:    m.busyNodes,
		usedLocalMiB: m.usedLocalMiB,
		usedPoolMiB:  m.usedPoolMiB,
		rackFree:     append([]int(nil), m.rackFree...),
		freeBits:     append([]uint64(nil), m.freeBits...),
		remoteShares: append([]int(nil), m.remoteShares...),
		// check() scratch is per-machine transient state; fresh zeroed
		// scratch is equivalent to the original's between calls.
		nodeStamp: make([]int64, len(m.nodes)),
		poolNeed:  make([]int64, len(m.pools)),
		poolsHit:  make([]PoolID, 0, len(m.pools)),
	}
	for id, a := range m.allocs {
		c.allocs[id] = a.Clone()
	}
	return c
}

// MustNew is New for known-valid configs; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// BaseConfig returns the configuration the machine was constructed
// with: the state Reset restores, unaffected by scenario growth or
// resizes that rewrite Config. Engines reusing a machine across runs
// compare it against the next run's configuration.
func (m *Machine) BaseConfig() Config { return m.baseCfg }

// Version returns the mutation counter: it increments on every state
// change (allocate, release, node up/down, pool resize, growth, reset),
// so (Machine pointer, Version) identifies one exact machine state.
// Derived-view caches — e.g. the memory-aware placer's rack views — are
// keyed on it.
func (m *Machine) Version() uint64 { return m.version }

// Nodes returns a read-only view of all nodes. Callers must not retain
// the slice across mutations.
func (m *Machine) Nodes() []Node { return m.nodes }

// Pools returns a read-only view of all pools.
func (m *Machine) Pools() []Pool { return m.pools }

// Pool returns a read-only copy of the pool with the given ID.
func (m *Machine) Pool(id PoolID) (Pool, bool) {
	if id < 0 || int(id) >= len(m.pools) {
		return Pool{}, false
	}
	return m.pools[id], true
}

// PoolOf returns the pool reachable from node n (NoPool for
// TopologyNone).
func (m *Machine) PoolOf(n NodeID) PoolID {
	switch m.cfg.Topology {
	case TopologyRack:
		return PoolID(m.nodes[n].Rack)
	case TopologyGlobal:
		return 0
	default:
		return NoPool
	}
}

// FreeNodes returns the number of nodes available for allocation
// (neither busy nor down).
func (m *Machine) FreeNodes() int { return m.freeNodes }

// DownNodes returns the number of failed nodes.
func (m *Machine) DownNodes() int { return m.downNodes }

// BusyNodes returns the number of occupied nodes.
func (m *Machine) BusyNodes() int { return m.busyNodes }

// RackFreeNodes returns the number of available nodes in rack r
// without scanning the node array.
func (m *Machine) RackFreeNodes(r int) int { return m.rackFree[r] }

// FreeInRack calls fn for each available node of rack r in ascending
// node-ID order, stopping early when fn returns false. Cost is
// proportional to the free nodes visited, not the rack size.
func (m *Machine) FreeInRack(r int, fn func(NodeID) bool) {
	base := r * m.cfg.NodesPerRack
	m.forEachFree(base, base+m.cfg.NodesPerRack, fn)
}

// ForEachFree calls fn for every available node in ascending node-ID
// order, stopping early when fn returns false.
func (m *Machine) ForEachFree(fn func(NodeID) bool) {
	m.forEachFree(0, len(m.nodes), fn)
}

// forEachFree iterates set bits of freeBits in [lo, hi).
func (m *Machine) forEachFree(lo, hi int, fn func(NodeID) bool) {
	if lo >= hi {
		return
	}
	loWord, hiWord := lo>>6, (hi-1)>>6
	for w := loWord; w <= hiWord; w++ {
		word := m.freeBits[w]
		if w == loWord {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == hiWord && hi&63 != 0 {
			word &= (uint64(1) << (uint(hi) & 63)) - 1
		}
		for word != 0 {
			id := NodeID(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			if !fn(id) {
				return
			}
		}
	}
}

// SetDown marks a free node as failed. Failing a busy node is an
// engine-level operation: kill and release the occupant first.
func (m *Machine) SetDown(id NodeID) error {
	if id < 0 || int(id) >= len(m.nodes) {
		return fmt.Errorf("cluster: SetDown: node %d out of range", id)
	}
	n := &m.nodes[id]
	if n.Busy != 0 {
		return fmt.Errorf("cluster: SetDown: node %d busy with job %d", id, n.Busy)
	}
	if n.Down {
		return fmt.Errorf("cluster: SetDown: node %d already down", id)
	}
	n.Down = true
	m.freeNodes--
	m.downNodes++
	m.rackFree[n.Rack]--
	m.clearFree(id)
	m.version++
	return nil
}

// SetUp returns a failed node to service.
func (m *Machine) SetUp(id NodeID) error {
	if id < 0 || int(id) >= len(m.nodes) {
		return fmt.Errorf("cluster: SetUp: node %d out of range", id)
	}
	n := &m.nodes[id]
	if !n.Down {
		return fmt.Errorf("cluster: SetUp: node %d is not down", id)
	}
	n.Down = false
	m.freeNodes++
	m.downNodes--
	m.rackFree[n.Rack]++
	m.setFree(id)
	m.version++
	return nil
}

// SetPoolCapacity resizes pool id to capMiB: the sanctioned mutation
// for scenario-driven pool degradation and recovery. Shrinking below
// the pool's current usage is allowed and puts the pool in a degraded
// state — existing borrowers keep their memory, FreeMiB goes negative,
// and no new remote placement is admitted until usage drains back
// below the new capacity.
//
// Config() is NOT updated: Config.PoolMiB is one uniform number and
// cannot represent heterogeneous pool capacities, so feasibility
// probes (which plan against an idle machine built from Config) keep
// assuming the configured size. A pool shrunk this way and never
// restored can therefore strand admitted jobs, which the engine
// reports at Finish; use SetAllPoolCapacities for a machine-wide
// resize that feasibility follows.
func (m *Machine) SetPoolCapacity(id PoolID, capMiB int64) error {
	if id < 0 || int(id) >= len(m.pools) {
		return fmt.Errorf("cluster: SetPoolCapacity: pool %d out of range", id)
	}
	if capMiB < 0 {
		return fmt.Errorf("cluster: SetPoolCapacity: capacity %d < 0", capMiB)
	}
	p := &m.pools[id]
	p.CapacityMiB = capMiB
	m.poolDegraded[id] = p.UsedMiB > p.CapacityMiB
	m.version++
	return nil
}

// SetAllPoolCapacities resizes every pool to capMiB and records the new
// size in the machine config, so feasibility probes (which plan against
// an idle machine built from Config) see the new capacity.
func (m *Machine) SetAllPoolCapacities(capMiB int64) error {
	if len(m.pools) == 0 {
		return fmt.Errorf("cluster: SetAllPoolCapacities: machine has no pools")
	}
	for i := range m.pools {
		if err := m.SetPoolCapacity(PoolID(i), capMiB); err != nil {
			return err
		}
	}
	m.cfg.PoolMiB = capMiB
	return nil
}

// AddRack appends one rack of NodesPerRack fresh free nodes to the
// machine — the sanctioned mutation for staged machine growth — and,
// under rack topology, a fresh pool with the configured capacity and
// fabric. It returns the new rack's index. Config() reflects the grown
// shape immediately, so feasibility probes and report normalization
// follow the machine as it grows.
func (m *Machine) AddRack() (int, error) {
	npr := m.cfg.NodesPerRack
	base := len(m.nodes)
	rack := m.cfg.Racks
	m.cfg.Racks++
	for i := 0; i < npr; i++ {
		m.nodes = append(m.nodes, Node{ID: NodeID(base + i), Rack: rack})
		m.nodeStamp = append(m.nodeStamp, 0)
	}
	for need := (len(m.nodes) + 63) / 64; len(m.freeBits) < need; {
		m.freeBits = append(m.freeBits, 0)
	}
	for i := 0; i < npr; i++ {
		m.setFree(NodeID(base + i))
	}
	m.freeNodes += npr
	m.rackFree = append(m.rackFree, npr)
	if m.cfg.Topology == TopologyRack {
		m.pools = append(m.pools, Pool{
			ID: PoolID(rack), CapacityMiB: m.cfg.PoolMiB, FabricGiBps: m.cfg.FabricGiBps,
		})
		m.remoteShares = append(m.remoteShares, 0)
		m.poolNeed = append(m.poolNeed, 0)
		m.poolDegraded = append(m.poolDegraded, false)
	}
	m.version++
	return rack, nil
}

// RunningJobs returns the number of committed allocations.
func (m *Machine) RunningJobs() int { return len(m.allocs) }

// AllocationOf returns job's live allocation, if any.
func (m *Machine) AllocationOf(jobID int) (*Allocation, bool) {
	a, ok := m.allocs[jobID]
	return a, ok
}

// Allocate validates and commits an allocation atomically: on error the
// machine is unchanged. The machine retains a until it is released, so
// the caller must not reuse or mutate it; planners that recycle their
// plan storage commit through AllocateCopy instead.
func (m *Machine) Allocate(a *Allocation) error {
	if err := m.check(a); err != nil {
		return err
	}
	m.commit(a)
	return nil
}

// AllocateCopy validates a, then commits a deep copy drawn from the
// machine's allocation free list, leaving a untouched — the caller
// (typically a placer whose Plan result is scratch, valid only until
// its next Plan call) keeps ownership of a, and the machine owns the
// committed copy. The copy is returned so dispatch state can reference
// it; after the job is released, pass it to Recycle to return it to the
// free list.
func (m *Machine) AllocateCopy(a *Allocation) (*Allocation, error) {
	if err := m.check(a); err != nil {
		return nil, err
	}
	var c *Allocation
	if n := len(m.allocPool); n > 0 {
		c = m.allocPool[n-1]
		m.allocPool[n-1] = nil
		m.allocPool = m.allocPool[:n-1]
	} else {
		c = &Allocation{pooled: true}
	}
	c.JobID = a.JobID
	c.Shares = append(c.Shares[:0], a.Shares...)
	m.commit(c)
	return c, nil
}

// Recycle returns a released AllocateCopy allocation to the free list.
// It is a no-op for allocations the machine does not own (anything not
// created by AllocateCopy), so callers can recycle unconditionally. The
// allocation must already have been released: recycling a live
// allocation would corrupt the machine's books when the struct is
// reused.
func (m *Machine) Recycle(a *Allocation) {
	if a == nil || !a.pooled {
		return
	}
	*a = Allocation{Shares: a.Shares[:0], pools: a.pools[:0], pooled: true}
	m.allocPool = append(m.allocPool, a)
}

// commit applies a checked allocation to the machine's books.
func (m *Machine) commit(a *Allocation) {
	a.ensureSums()
	for _, s := range a.Shares {
		n := &m.nodes[s.Node]
		n.Busy = a.JobID
		n.UsedLocalMiB = s.LocalMiB
		m.clearFree(s.Node)
		m.rackFree[n.Rack]--
		m.usedLocalMiB += s.LocalMiB
		if s.RemoteMiB > 0 {
			p := &m.pools[s.Pool]
			p.UsedMiB += s.RemoteMiB
			p.DemandGiBps += m.shareDemand(s)
			m.remoteShares[s.Pool]++
			m.usedPoolMiB += s.RemoteMiB
		}
	}
	m.freeNodes -= len(a.Shares)
	m.busyNodes += len(a.Shares)
	m.allocs[a.JobID] = a
	m.version++
}

// check validates a without mutating state.
func (m *Machine) check(a *Allocation) error {
	if a == nil || a.JobID <= 0 {
		return fmt.Errorf("cluster: invalid allocation (nil or bad job id)")
	}
	if len(a.Shares) == 0 {
		return fmt.Errorf("cluster: job %d: empty allocation", a.JobID)
	}
	if _, dup := m.allocs[a.JobID]; dup {
		return fmt.Errorf("cluster: job %d: already allocated", a.JobID)
	}
	// Duplicate-node detection via epoch stamps and per-pool need via a
	// dense scratch slice: O(shares), no allocation.
	m.stampGen++
	for _, pid := range m.poolsHit {
		m.poolNeed[pid] = 0
	}
	m.poolsHit = m.poolsHit[:0]
	for _, s := range a.Shares {
		if s.Node < 0 || int(s.Node) >= len(m.nodes) {
			return fmt.Errorf("cluster: job %d: node %d out of range", a.JobID, s.Node)
		}
		if m.nodeStamp[s.Node] == m.stampGen {
			return fmt.Errorf("cluster: job %d: node %d listed twice", a.JobID, s.Node)
		}
		m.nodeStamp[s.Node] = m.stampGen
		n := &m.nodes[s.Node]
		if n.Busy != 0 {
			return fmt.Errorf("cluster: job %d: node %d busy with job %d", a.JobID, s.Node, n.Busy)
		}
		if n.Down {
			return fmt.Errorf("cluster: job %d: node %d is down", a.JobID, s.Node)
		}
		if s.LocalMiB < 0 || s.RemoteMiB < 0 {
			return fmt.Errorf("cluster: job %d: negative share on node %d", a.JobID, s.Node)
		}
		if s.LocalMiB > m.cfg.LocalMemMiB {
			return fmt.Errorf("cluster: job %d: node %d local %d exceeds DRAM %d",
				a.JobID, s.Node, s.LocalMiB, m.cfg.LocalMemMiB)
		}
		if s.RemoteMiB > 0 {
			want := m.PoolOf(s.Node)
			if s.Pool != want {
				return fmt.Errorf("cluster: job %d: node %d borrows from pool %d, reachable pool is %d",
					a.JobID, s.Node, s.Pool, want)
			}
			if want == NoPool {
				return fmt.Errorf("cluster: job %d: node %d has no reachable pool", a.JobID, s.Node)
			}
			if m.poolNeed[s.Pool] == 0 {
				m.poolsHit = append(m.poolsHit, s.Pool)
			}
			m.poolNeed[s.Pool] += s.RemoteMiB
		} else if s.Pool != NoPool {
			return fmt.Errorf("cluster: job %d: node %d names pool %d without remote memory",
				a.JobID, s.Node, s.Pool)
		}
	}
	for _, pid := range m.poolsHit {
		if need, free := m.poolNeed[pid], m.pools[pid].FreeMiB(); need > free {
			return fmt.Errorf("cluster: job %d: pool %d needs %d MiB, only %d free",
				a.JobID, pid, need, free)
		}
	}
	return nil
}

// Release frees job's allocation, restoring all counters exactly.
func (m *Machine) Release(jobID int) error {
	a, ok := m.allocs[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %d: no allocation to release", jobID)
	}
	for _, s := range a.Shares {
		n := &m.nodes[s.Node]
		n.Busy = 0
		n.UsedLocalMiB = 0
		m.setFree(s.Node)
		m.rackFree[n.Rack]++
		m.usedLocalMiB -= s.LocalMiB
		if s.RemoteMiB > 0 {
			p := &m.pools[s.Pool]
			p.UsedMiB -= s.RemoteMiB
			p.DemandGiBps -= m.shareDemand(s)
			m.remoteShares[s.Pool]--
			m.usedPoolMiB -= s.RemoteMiB
			// Draining below a shrunken capacity ends the degraded
			// state; normal admission (and the strict invariant)
			// resume.
			if m.poolDegraded[s.Pool] && p.UsedMiB <= p.CapacityMiB {
				m.poolDegraded[s.Pool] = false
			}
			// Absorb float drift only once the pool has no remaining
			// remote users; zeroing while users remain would erase
			// their live demand.
			if m.remoteShares[s.Pool] == 0 {
				p.DemandGiBps = 0
			}
		}
	}
	m.freeNodes += len(a.Shares)
	m.busyNodes -= len(a.Shares)
	delete(m.allocs, jobID)
	m.version++
	return nil
}

// shareDemand converts one node share into fabric demand (GiB/s):
// linear in the node's remote fraction.
func (m *Machine) shareDemand(s NodeShare) float64 {
	tot := s.LocalMiB + s.RemoteMiB
	if tot == 0 || s.RemoteMiB == 0 {
		return 0
	}
	return m.cfg.TrafficGiBpsPerNode * float64(s.RemoteMiB) / float64(tot)
}

// DemandOf returns the total fabric demand (GiB/s) allocation a would
// add (or currently adds) to its pools.
func (m *Machine) DemandOf(a *Allocation) float64 {
	var d float64
	for _, s := range a.Shares {
		d += m.shareDemand(s)
	}
	return d
}

// Usage is a point-in-time resource snapshot used by the metrics
// recorder.
type Usage struct {
	BusyNodes   int
	UsedCores   int
	UsedLocal   int64 // MiB
	UsedPool    int64 // MiB
	PoolDemand  float64
	MaxPoolUtil float64 // max over pools of used/capacity
	MaxCongest  float64 // max over pools of demand/bandwidth
}

// Usage returns the current snapshot. Cores are charged as fully used
// on busy nodes (exclusive allocation). Node-side figures come from the
// incremental aggregates, so the call is O(pools), not O(nodes) — and
// memoized on the machine version, since the engine reads usage several
// times per event (observation, sampling, reporting) between mutations.
func (m *Machine) Usage() Usage {
	if m.usageVer == m.version {
		return m.usageCache
	}
	u := Usage{
		BusyNodes: m.busyNodes,
		UsedCores: m.busyNodes * m.cfg.CoresPerNode,
		UsedLocal: m.usedLocalMiB,
	}
	for i := range m.pools {
		p := &m.pools[i]
		u.UsedPool += p.UsedMiB
		u.PoolDemand += p.DemandGiBps
		if p.CapacityMiB > 0 {
			if util := float64(p.UsedMiB) / float64(p.CapacityMiB); util > u.MaxPoolUtil {
				u.MaxPoolUtil = util
			}
		}
		if c := p.Congestion(); c > u.MaxCongest {
			u.MaxCongest = c
		}
	}
	m.usageCache, m.usageVer = u, m.version
	return u
}

// CheckInvariants verifies conservation: per-node and per-pool usage
// derived from live allocations matches the counters, and every
// incremental aggregate (busy/free counts, per-rack free counts, the
// free bitset, local/pool usage totals, per-pool remote-share counts,
// cached allocation sums) matches a from-scratch recomputation. It is
// O(machine) and intended for tests and debug builds.
func (m *Machine) CheckInvariants() error {
	busy := make(map[NodeID]int)
	poolUsed := make(map[PoolID]int64)
	poolDemand := make(map[PoolID]float64)
	poolShares := make(map[PoolID]int)
	for id, a := range m.allocs {
		if a.JobID != id {
			return fmt.Errorf("cluster: alloc map key %d != job id %d", id, a.JobID)
		}
		var wantRemote, wantTotal int64
		for _, s := range a.Shares {
			if prev, clash := busy[s.Node]; clash {
				return fmt.Errorf("cluster: node %d shared by jobs %d and %d", s.Node, prev, id)
			}
			busy[s.Node] = id
			wantRemote += s.RemoteMiB
			wantTotal += s.LocalMiB + s.RemoteMiB
			if s.RemoteMiB > 0 {
				poolUsed[s.Pool] += s.RemoteMiB
				poolDemand[s.Pool] += m.shareDemand(s)
				poolShares[s.Pool]++
			}
		}
		if got := a.RemoteMiB(); got != wantRemote {
			return fmt.Errorf("cluster: job %d cached remote=%d, shares say %d", id, got, wantRemote)
		}
		if got := a.TotalMiB(); got != wantTotal {
			return fmt.Errorf("cluster: job %d cached total=%d, shares say %d", id, got, wantTotal)
		}
	}
	free, down := 0, 0
	var usedLocal int64
	rackFree := make([]int, m.cfg.Racks)
	for i := range m.nodes {
		n := &m.nodes[i]
		if want := busy[n.ID]; want != n.Busy {
			return fmt.Errorf("cluster: node %d busy=%d, allocations say %d", n.ID, n.Busy, want)
		}
		if n.Busy != 0 && n.Down {
			return fmt.Errorf("cluster: node %d both busy and down", n.ID)
		}
		if n.Down {
			down++
		}
		if n.Busy != 0 {
			usedLocal += n.UsedLocalMiB
		}
		if n.Busy == 0 {
			if !n.Down {
				free++
				rackFree[n.Rack]++
			}
			if n.UsedLocalMiB != 0 {
				return fmt.Errorf("cluster: free node %d has %d MiB charged", n.ID, n.UsedLocalMiB)
			}
		}
		if inBits := m.freeBits[i>>6]&(1<<(uint(i)&63)) != 0; inBits != n.Available() {
			return fmt.Errorf("cluster: node %d free bit=%v, available=%v", n.ID, inBits, n.Available())
		}
	}
	if free != m.freeNodes {
		return fmt.Errorf("cluster: freeNodes=%d, counted %d", m.freeNodes, free)
	}
	if down != m.downNodes {
		return fmt.Errorf("cluster: downNodes=%d, counted %d", m.downNodes, down)
	}
	if want := len(m.nodes) - free - down; want != m.busyNodes {
		return fmt.Errorf("cluster: busyNodes=%d, counted %d", m.busyNodes, want)
	}
	if usedLocal != m.usedLocalMiB {
		return fmt.Errorf("cluster: usedLocalMiB=%d, counted %d", m.usedLocalMiB, usedLocal)
	}
	for r, n := range rackFree {
		if n != m.rackFree[r] {
			return fmt.Errorf("cluster: rack %d free=%d, counted %d", r, m.rackFree[r], n)
		}
	}
	var usedPool int64
	for i := range m.pools {
		p := &m.pools[i]
		if p.UsedMiB != poolUsed[p.ID] {
			return fmt.Errorf("cluster: pool %d used=%d, allocations say %d", p.ID, p.UsedMiB, poolUsed[p.ID])
		}
		if p.UsedMiB < 0 {
			return fmt.Errorf("cluster: pool %d used %d < 0", p.ID, p.UsedMiB)
		}
		// Over-capacity usage is legal only in the degraded state a
		// shrinking SetPoolCapacity leaves behind, and the degraded
		// flag must track used > capacity exactly (this single check
		// therefore also catches any unsanctioned over-commit).
		if got, want := m.poolDegraded[p.ID], p.UsedMiB > p.CapacityMiB; got != want {
			return fmt.Errorf("cluster: pool %d degraded=%v, used %d vs capacity %d says %v",
				p.ID, got, p.UsedMiB, p.CapacityMiB, want)
		}
		if diff := p.DemandGiBps - poolDemand[p.ID]; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("cluster: pool %d demand=%g, allocations say %g", p.ID, p.DemandGiBps, poolDemand[p.ID])
		}
		if m.remoteShares[p.ID] != poolShares[p.ID] {
			return fmt.Errorf("cluster: pool %d remoteShares=%d, allocations say %d",
				p.ID, m.remoteShares[p.ID], poolShares[p.ID])
		}
		if m.remoteShares[p.ID] == 0 && p.DemandGiBps != 0 {
			return fmt.Errorf("cluster: pool %d idle but demand=%g", p.ID, p.DemandGiBps)
		}
		usedPool += p.UsedMiB
	}
	if usedPool != m.usedPoolMiB {
		return fmt.Errorf("cluster: usedPoolMiB=%d, counted %d", m.usedPoolMiB, usedPool)
	}
	return nil
}
