package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dismem/internal/stats"
)

// testConfig: 2 racks x 4 nodes, 1000 MiB local, 4000 MiB rack pools.
func testConfig() Config {
	return Config{
		Racks: 2, NodesPerRack: 4, CoresPerNode: 8, LocalMemMiB: 1000,
		Topology: TopologyRack, PoolMiB: 4000, FabricGiBps: 10,
		TrafficGiBpsPerNode: 2,
	}
}

func localAlloc(jobID int, nodes []NodeID, mem int64) *Allocation {
	a := &Allocation{JobID: jobID}
	for _, n := range nodes {
		a.Shares = append(a.Shares, NodeShare{Node: n, LocalMiB: mem, Pool: NoPool})
	}
	return a
}

func TestAllocateReleaseRestoresState(t *testing.T) {
	m := MustNew(testConfig())
	before := m.Usage()
	a := &Allocation{JobID: 1, Shares: []NodeShare{
		{Node: 0, LocalMiB: 1000, RemoteMiB: 500, Pool: 0},
		{Node: 4, LocalMiB: 800, RemoteMiB: 700, Pool: 1},
	}}
	if err := m.Allocate(a); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	u := m.Usage()
	if u.BusyNodes != 2 || u.UsedLocal != 1800 || u.UsedPool != 1200 {
		t.Fatalf("usage after alloc = %+v", u)
	}
	if m.FreeNodes() != 6 {
		t.Fatalf("FreeNodes = %d, want 6", m.FreeNodes())
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	after := m.Usage()
	if after != before {
		t.Fatalf("release did not restore state: %+v vs %+v", after, before)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateErrors(t *testing.T) {
	m := MustNew(testConfig())
	if err := m.Allocate(localAlloc(1, []NodeID{0, 1}, 500)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		a    *Allocation
		want string
	}{
		{"nil", nil, "invalid allocation"},
		{"bad job id", &Allocation{JobID: 0, Shares: []NodeShare{{Node: 2}}}, "invalid allocation"},
		{"empty", &Allocation{JobID: 5}, "empty allocation"},
		{"duplicate job", localAlloc(1, []NodeID{2}, 1), "already allocated"},
		{"node out of range", localAlloc(6, []NodeID{99}, 1), "out of range"},
		{"node listed twice", localAlloc(7, []NodeID{3, 3}, 1), "listed twice"},
		{"busy node", localAlloc(8, []NodeID{0}, 1), "busy"},
		{"negative share", &Allocation{JobID: 9, Shares: []NodeShare{
			{Node: 2, LocalMiB: -5, Pool: NoPool}}}, "negative share"},
		{"local exceeds DRAM", localAlloc(10, []NodeID{2}, 1001), "exceeds DRAM"},
		{"wrong pool", &Allocation{JobID: 11, Shares: []NodeShare{
			{Node: 2, LocalMiB: 1000, RemoteMiB: 10, Pool: 1}}}, "reachable pool"},
		{"pool named without remote", &Allocation{JobID: 12, Shares: []NodeShare{
			{Node: 2, LocalMiB: 100, Pool: 0}}}, "without remote memory"},
		{"pool exhausted", &Allocation{JobID: 13, Shares: []NodeShare{
			{Node: 2, LocalMiB: 1000, RemoteMiB: 4001, Pool: 0}}}, "only"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			before := m.Usage()
			err := m.Allocate(c.a)
			if err == nil {
				t.Fatal("invalid allocation accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if m.Usage() != before {
				t.Fatal("failed Allocate mutated machine state")
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReleaseUnknownJob(t *testing.T) {
	m := MustNew(testConfig())
	if err := m.Release(42); err == nil {
		t.Fatal("releasing unknown job succeeded")
	}
}

func TestPoolAccounting(t *testing.T) {
	m := MustNew(testConfig())
	a := &Allocation{JobID: 1, Shares: []NodeShare{
		{Node: 0, LocalMiB: 500, RemoteMiB: 1500, Pool: 0}, // f = 0.75
	}}
	if err := m.Allocate(a); err != nil {
		t.Fatal(err)
	}
	p, ok := m.Pool(0)
	if !ok {
		t.Fatal("pool 0 missing")
	}
	if p.UsedMiB != 1500 || p.FreeMiB() != 2500 {
		t.Fatalf("pool used/free = %d/%d, want 1500/2500", p.UsedMiB, p.FreeMiB())
	}
	// Demand = 2 GiB/s * 0.75 = 1.5; congestion = 1.5/10.
	if math.Abs(p.DemandGiBps-1.5) > 1e-9 {
		t.Fatalf("demand = %g, want 1.5", p.DemandGiBps)
	}
	if math.Abs(p.Congestion()-0.15) > 1e-9 {
		t.Fatalf("congestion = %g, want 0.15", p.Congestion())
	}
	if d := m.DemandOf(a); math.Abs(d-1.5) > 1e-9 {
		t.Fatalf("DemandOf = %g, want 1.5", d)
	}
}

func TestPoolOfByTopology(t *testing.T) {
	rackM := MustNew(testConfig())
	if rackM.PoolOf(0) != 0 || rackM.PoolOf(5) != 1 {
		t.Fatalf("rack PoolOf: %d, %d", rackM.PoolOf(0), rackM.PoolOf(5))
	}
	cfg := testConfig()
	cfg.Topology = TopologyGlobal
	globalM := MustNew(cfg)
	if globalM.PoolOf(0) != 0 || globalM.PoolOf(7) != 0 {
		t.Fatal("global PoolOf must always be 0")
	}
	noneM := MustNew(BaselineConfig(1000))
	if noneM.PoolOf(3) != NoPool {
		t.Fatal("PoolOf on TopologyNone must be NoPool")
	}
}

func TestAllocationDerived(t *testing.T) {
	a := &Allocation{JobID: 1, Shares: []NodeShare{
		{Node: 0, LocalMiB: 600, RemoteMiB: 400, Pool: 0},
		{Node: 1, LocalMiB: 1000, RemoteMiB: 0, Pool: NoPool},
	}}
	if a.RemoteMiB() != 400 {
		t.Fatalf("RemoteMiB = %d, want 400", a.RemoteMiB())
	}
	if a.TotalMiB() != 2000 {
		t.Fatalf("TotalMiB = %d, want 2000", a.TotalMiB())
	}
	if f := a.RemoteFraction(); f != 0.2 {
		t.Fatalf("RemoteFraction = %g, want 0.2", f)
	}
	empty := &Allocation{JobID: 2}
	if empty.RemoteFraction() != 0 {
		t.Fatal("empty allocation remote fraction must be 0")
	}
}

func TestUsageSnapshot(t *testing.T) {
	m := MustNew(testConfig())
	u := m.Usage()
	if u.BusyNodes != 0 || u.UsedCores != 0 || u.UsedPool != 0 {
		t.Fatalf("fresh machine usage = %+v", u)
	}
	a := &Allocation{JobID: 1, Shares: []NodeShare{
		{Node: 0, LocalMiB: 1000, RemoteMiB: 3000, Pool: 0},
	}}
	if err := m.Allocate(a); err != nil {
		t.Fatal(err)
	}
	u = m.Usage()
	if u.UsedCores != 8 {
		t.Fatalf("UsedCores = %d, want 8 (exclusive node)", u.UsedCores)
	}
	if u.MaxPoolUtil != 0.75 {
		t.Fatalf("MaxPoolUtil = %g, want 0.75", u.MaxPoolUtil)
	}
	if u.MaxCongest <= 0 {
		t.Fatal("MaxCongest must be positive with remote traffic")
	}
}

// TestRandomAllocReleaseProperty drives the machine with random valid
// allocate/release sequences and checks conservation invariants hold at
// every step and that full drain restores the pristine state.
func TestRandomAllocReleaseProperty(t *testing.T) {
	check := func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		cfg := testConfig()
		m := MustNew(cfg)
		live := map[int]bool{}
		next := 1
		for step := 0; step < 200; step++ {
			if rng.Float64() < 0.55 && m.FreeNodes() > 0 {
				// Build a random valid allocation on free nodes.
				var free []NodeID
				for _, n := range m.Nodes() {
					if n.Busy == 0 {
						free = append(free, n.ID)
					}
				}
				rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
				want := int(rng.Intn(len(free))) + 1
				a := &Allocation{JobID: next}
				poolLeft := map[PoolID]int64{}
				for _, p := range m.Pools() {
					poolLeft[p.ID] = p.FreeMiB()
				}
				for _, nid := range free[:want] {
					local := rng.Int63n(cfg.LocalMemMiB + 1)
					var remote int64
					pool := NoPool
					if rng.Float64() < 0.5 {
						pid := m.PoolOf(nid)
						if avail := poolLeft[pid]; avail > 0 {
							remote = rng.Int63n(avail + 1)
							if remote > 0 {
								pool = pid
								poolLeft[pid] -= remote
							}
						}
					}
					a.Shares = append(a.Shares, NodeShare{
						Node: nid, LocalMiB: local, RemoteMiB: remote, Pool: pool,
					})
				}
				if err := m.Allocate(a); err != nil {
					t.Logf("allocate: %v", err)
					return false
				}
				live[next] = true
				next++
			} else if len(live) > 0 {
				// Release a random live job (deterministic order scan).
				target := int(rng.Intn(len(live)))
				for id := 1; id < next; id++ {
					if live[id] {
						if target == 0 {
							if err := m.Release(id); err != nil {
								t.Logf("release: %v", err)
								return false
							}
							delete(live, id)
							break
						}
						target--
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		// Drain and verify pristine state.
		for id := 1; id < next; id++ {
			if live[id] {
				if err := m.Release(id); err != nil {
					return false
				}
			}
		}
		u := m.Usage()
		return u == Usage{} && m.FreeNodes() == cfg.TotalNodes() && m.RunningJobs() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationOf(t *testing.T) {
	m := MustNew(testConfig())
	if _, ok := m.AllocationOf(1); ok {
		t.Fatal("AllocationOf on empty machine returned something")
	}
	a := localAlloc(1, []NodeID{0}, 10)
	if err := m.Allocate(a); err != nil {
		t.Fatal(err)
	}
	got, ok := m.AllocationOf(1)
	if !ok || got != a {
		t.Fatal("AllocationOf did not return the committed allocation")
	}
}
