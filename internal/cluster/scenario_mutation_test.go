package cluster

import (
	"math/rand"
	"testing"
)

// TestScenarioMutationsRandomOps drives the scenario mutation surface —
// SetPoolCapacity (including degradation below live use),
// SetAllPoolCapacities, AddRack — interleaved with the ordinary
// allocate/release/fail/repair mix, asserting CheckInvariants and the
// aggregate cross-checks after every single mutation.
func TestScenarioMutationsRandomOps(t *testing.T) {
	configs := map[string]Config{
		"rack": {
			Racks: 3, NodesPerRack: 8, CoresPerNode: 4, LocalMemMiB: 1024,
			Topology: TopologyRack, PoolMiB: 8 * 1024, FabricGiBps: 16, TrafficGiBpsPerNode: 2,
		},
		"global": {
			Racks: 2, NodesPerRack: 6, CoresPerNode: 2, LocalMemMiB: 512,
			Topology: TopologyGlobal, PoolMiB: 6 * 1024, FabricGiBps: 8, TrafficGiBpsPerNode: 1,
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			m := MustNew(cfg)
			rng := rand.New(rand.NewSource(7))
			nextJob := 1
			var live []int
			var down []NodeID
			resizes, grows, degradations := 0, 0, 0
			for step := 0; step < 2500; step++ {
				switch op := rng.Intn(14); {
				case op < 5: // allocate
					var free []NodeID
					m.ForEachFree(func(id NodeID) bool { free = append(free, id); return true })
					if len(free) == 0 {
						break
					}
					k := 1 + rng.Intn(min(len(free), 4))
					a := &Allocation{JobID: nextJob}
					for _, id := range free[:k] {
						s := NodeShare{Node: id, LocalMiB: int64(rng.Intn(int(cfg.LocalMemMiB))), Pool: NoPool}
						if pid := m.PoolOf(id); pid != NoPool && rng.Intn(2) == 0 {
							s.RemoteMiB = 1 + int64(rng.Intn(1024))
							s.Pool = pid
						}
						a.Shares = append(a.Shares, s)
					}
					if err := m.Allocate(a); err == nil {
						live = append(live, nextJob)
						nextJob++
					}
				case op < 8: // release
					if len(live) == 0 {
						break
					}
					i := rng.Intn(len(live))
					if err := m.Release(live[i]); err != nil {
						t.Fatalf("step %d: release job %d: %v", step, live[i], err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				case op < 9: // fail a free node
					var free []NodeID
					m.ForEachFree(func(id NodeID) bool { free = append(free, id); return true })
					if len(free) == 0 {
						break
					}
					id := free[rng.Intn(len(free))]
					if err := m.SetDown(id); err != nil {
						t.Fatalf("step %d: SetDown(%d): %v", step, id, err)
					}
					down = append(down, id)
				case op < 10: // repair
					if len(down) == 0 {
						break
					}
					i := rng.Intn(len(down))
					if err := m.SetUp(down[i]); err != nil {
						t.Fatalf("step %d: SetUp(%d): %v", step, down[i], err)
					}
					down[i] = down[len(down)-1]
					down = down[:len(down)-1]
				case op < 12: // resize one pool, sometimes below its usage
					pools := m.Pools()
					if len(pools) == 0 {
						break
					}
					pid := PoolID(rng.Intn(len(pools)))
					p, _ := m.Pool(pid)
					var newCap int64
					if p.UsedMiB > 0 && rng.Intn(2) == 0 {
						newCap = rng.Int63n(p.UsedMiB + 1) // degrade below use
						if newCap < p.UsedMiB {
							degradations++
						}
					} else {
						newCap = rng.Int63n(2 * cfg.PoolMiB)
					}
					if err := m.SetPoolCapacity(pid, newCap); err != nil {
						t.Fatalf("step %d: SetPoolCapacity(%d, %d): %v", step, pid, newCap, err)
					}
					resizes++
				case op < 13: // resize every pool (config-visible)
					newCap := 1 + rng.Int63n(2*cfg.PoolMiB)
					if err := m.SetAllPoolCapacities(newCap); err != nil {
						t.Fatalf("step %d: SetAllPoolCapacities(%d): %v", step, newCap, err)
					}
					if m.Config().PoolMiB != newCap {
						t.Fatalf("step %d: config PoolMiB %d after SetAllPoolCapacities(%d)",
							step, m.Config().PoolMiB, newCap)
					}
					resizes++
				default: // grow by a rack (bounded so the test stays fast)
					if m.Config().Racks >= cfg.Racks+3 {
						break
					}
					before := m.Config().TotalNodes()
					rack, err := m.AddRack()
					if err != nil {
						t.Fatalf("step %d: AddRack: %v", step, err)
					}
					if rack != m.Config().Racks-1 {
						t.Fatalf("step %d: AddRack returned rack %d, config has %d racks", step, rack, m.Config().Racks)
					}
					if got := m.Config().TotalNodes(); got != before+cfg.NodesPerRack {
						t.Fatalf("step %d: grew to %d nodes, want %d", step, got, before+cfg.NodesPerRack)
					}
					if cfg.Topology == TopologyRack && len(m.Pools()) != m.Config().Racks {
						t.Fatalf("step %d: %d pools for %d racks", step, len(m.Pools()), m.Config().Racks)
					}
					grows++
				}
				checkAggregates(t, m)
			}
			t.Logf("%s: %d resizes (%d degradations), %d grows, %d live at end",
				name, resizes, degradations, grows, len(live))
			if resizes == 0 || grows == 0 {
				t.Fatalf("degenerate run: %d resizes, %d grows", resizes, grows)
			}
			if name == "rack" && degradations == 0 {
				t.Fatal("no degradation (shrink below use) exercised")
			}
		})
	}
}

// TestSetPoolCapacityDegradedAdmission pins the degradation semantics:
// shrinking below live use keeps borrowers intact, makes FreeMiB
// negative, and rejects new remote placements until usage drains.
func TestSetPoolCapacityDegradedAdmission(t *testing.T) {
	cfg := Config{
		Racks: 1, NodesPerRack: 4, CoresPerNode: 1, LocalMemMiB: 1024,
		Topology: TopologyRack, PoolMiB: 4096, FabricGiBps: 16, TrafficGiBpsPerNode: 2,
	}
	m := MustNew(cfg)
	a := &Allocation{JobID: 1, Shares: []NodeShare{{Node: 0, LocalMiB: 1024, RemoteMiB: 2048, Pool: 0}}}
	if err := m.Allocate(a); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPoolCapacity(0, 1024); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Pool(0)
	if p.UsedMiB != 2048 || p.CapacityMiB != 1024 {
		t.Fatalf("degraded pool: %+v", p)
	}
	if p.FreeMiB() >= 0 {
		t.Fatalf("degraded pool FreeMiB = %d, want negative", p.FreeMiB())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("degraded state must satisfy invariants: %v", err)
	}
	// New remote placement is refused while degraded.
	b := &Allocation{JobID: 2, Shares: []NodeShare{{Node: 1, LocalMiB: 0, RemoteMiB: 1, Pool: 0}}}
	if err := m.Allocate(b); err == nil {
		t.Fatal("degraded pool admitted new remote placement")
	}
	// Draining the borrower restores normal admission.
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(b); err != nil {
		t.Fatalf("recovered pool refused placement: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDegradedFlagExact pins the oracle's precision: the degraded
// flag tracks used > capacity exactly, so one pool's transient
// degradation never blinds CheckInvariants to a genuine over-commit on
// another pool (or a later one on the same pool).
func TestPoolDegradedFlagExact(t *testing.T) {
	cfg := Config{
		Racks: 2, NodesPerRack: 2, CoresPerNode: 1, LocalMemMiB: 1024,
		Topology: TopologyRack, PoolMiB: 4096, FabricGiBps: 16, TrafficGiBpsPerNode: 2,
	}
	m := MustNew(cfg)
	a := &Allocation{JobID: 1, Shares: []NodeShare{{Node: 0, LocalMiB: 512, RemoteMiB: 2048, Pool: 0}}}
	if err := m.Allocate(a); err != nil {
		t.Fatal(err)
	}
	// Degrade pool 0; invariants hold in the degraded state.
	if err := m.SetPoolCapacity(0, 1024); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Restoring capacity clears the degradation immediately.
	if err := m.SetPoolCapacity(0, 4096); err != nil {
		t.Fatal(err)
	}
	if m.poolDegraded[0] {
		t.Fatal("flag still set after capacity restored")
	}
	// Degrade again, then drain the borrower: the flag clears on
	// release and strict checking resumes.
	if err := m.SetPoolCapacity(0, 1024); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if m.poolDegraded[0] {
		t.Fatal("flag still set after usage drained")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A capacity shortfall that did NOT come through SetPoolCapacity is
	// a bug the oracle must still catch — even right after a legitimate
	// degradation elsewhere.
	if err := m.SetPoolCapacity(0, 0); err != nil { // pool 0 degraded path again (empty, so not degraded)
		t.Fatal(err)
	}
	b := &Allocation{JobID: 2, Shares: []NodeShare{{Node: 2, LocalMiB: 512, RemoteMiB: 1024, Pool: 1}}}
	if err := m.Allocate(b); err != nil {
		t.Fatal(err)
	}
	m.pools[1].CapacityMiB = 512 // corrupt: bypasses SetPoolCapacity
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("oracle missed an unsanctioned over-capacity state")
	}
}

// TestSetPoolCapacityErrors covers the argument checks.
func TestSetPoolCapacityErrors(t *testing.T) {
	m := MustNew(Config{
		Racks: 1, NodesPerRack: 2, CoresPerNode: 1, LocalMemMiB: 64,
		Topology: TopologyRack, PoolMiB: 1024, FabricGiBps: 1,
	})
	if err := m.SetPoolCapacity(5, 10); err == nil {
		t.Error("out-of-range pool accepted")
	}
	if err := m.SetPoolCapacity(0, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	none := MustNew(Config{Racks: 1, NodesPerRack: 2, CoresPerNode: 1, LocalMemMiB: 64})
	if err := none.SetAllPoolCapacities(10); err == nil {
		t.Error("pool-less machine accepted SetAllPoolCapacities")
	}
}

// TestAddRackAllocatable proves freshly grown nodes (and their pool)
// accept allocations immediately.
func TestAddRackAllocatable(t *testing.T) {
	cfg := Config{
		Racks: 1, NodesPerRack: 2, CoresPerNode: 1, LocalMemMiB: 64,
		Topology: TopologyRack, PoolMiB: 1024, FabricGiBps: 4, TrafficGiBpsPerNode: 1,
	}
	m := MustNew(cfg)
	rack, err := m.AddRack()
	if err != nil {
		t.Fatal(err)
	}
	if rack != 1 || m.FreeNodes() != 4 || m.RackFreeNodes(1) != 2 {
		t.Fatalf("grown machine: rack=%d free=%d rackFree=%d", rack, m.FreeNodes(), m.RackFreeNodes(1))
	}
	newNode := NodeID(2) // first node of the new rack
	if got := m.PoolOf(newNode); got != PoolID(1) {
		t.Fatalf("PoolOf(new node) = %d, want 1", got)
	}
	a := &Allocation{JobID: 9, Shares: []NodeShare{{Node: newNode, LocalMiB: 64, RemoteMiB: 512, Pool: 1}}}
	if err := m.Allocate(a); err != nil {
		t.Fatalf("allocating on grown rack: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(9); err != nil {
		t.Fatal(err)
	}
}
