package cluster

import (
	"fmt"
	"sort"
)

// This file is the durable-checkpoint face of the package: a portable,
// JSON-friendly snapshot of a Machine plus the validated constructor
// that rebuilds a live machine from one. Only primary state travels —
// config, nodes, pools, committed allocations; every incremental
// aggregate is recomputed on restore and the result must pass
// CheckInvariants, so a corrupted snapshot cannot produce a machine
// whose counters disagree with its allocations.

// AllocationState is the portable form of one committed allocation.
type AllocationState struct {
	JobID  int         `json:"jobId"`
	Shares []NodeShare `json:"shares"`
}

// MachineState is the portable serialized form of a Machine.
//
// Pools are carried verbatim rather than rebuilt from Config: scenario
// resizes (SetPoolCapacity) give pools heterogeneous capacities the
// one-number Config cannot express, and DemandGiBps is a float
// accumulated in allocation order, so recomputing it could differ in
// the last bit from the live value.
type MachineState struct {
	Config Config            `json:"config"`
	Nodes  []Node            `json:"nodes"`
	Pools  []Pool            `json:"pools,omitempty"`
	Allocs []AllocationState `json:"allocs,omitempty"`
}

// State captures the machine. Allocations are ordered by job ID so the
// serialized form is deterministic across runs.
func (m *Machine) State() MachineState {
	st := MachineState{
		Config: m.cfg,
		Nodes:  append([]Node(nil), m.nodes...),
		Pools:  append([]Pool(nil), m.pools...),
		Allocs: make([]AllocationState, 0, len(m.allocs)),
	}
	for id, a := range m.allocs {
		st.Allocs = append(st.Allocs, AllocationState{
			JobID:  id,
			Shares: append([]NodeShare(nil), a.Shares...),
		})
	}
	sort.Slice(st.Allocs, func(i, j int) bool { return st.Allocs[i].JobID < st.Allocs[j].JobID })
	return st
}

// FromState rebuilds a machine from a captured state. The incremental
// aggregates (free/busy/down counts, rack free counts, the free bitset,
// usage totals, per-pool share counts, degraded-pool flags) are all
// derived from the primary state, then cross-checked by CheckInvariants
// so an inconsistent snapshot is rejected rather than simulated.
func FromState(st MachineState) (*Machine, error) {
	if err := st.Config.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: machine state: %w", err)
	}
	if got, want := len(st.Nodes), st.Config.TotalNodes(); got != want {
		return nil, fmt.Errorf("cluster: machine state has %d nodes, config says %d", got, want)
	}
	wantPools := 0
	switch st.Config.Topology {
	case TopologyRack:
		wantPools = st.Config.Racks
	case TopologyGlobal:
		wantPools = 1
	}
	if len(st.Pools) != wantPools {
		return nil, fmt.Errorf("cluster: machine state has %d pools, topology %q says %d",
			len(st.Pools), st.Config.Topology, wantPools)
	}

	total := len(st.Nodes)
	m := &Machine{
		cfg:     st.Config,
		baseCfg: st.Config,
		// version must start >= 1: usageVer == 0 means "never
		// computed", and a restored machine's first Usage() call has
		// to miss that cache, not hit a zero value.
		version:      1,
		nodes:        append([]Node(nil), st.Nodes...),
		pools:        append([]Pool(nil), st.Pools...),
		allocs:       make(map[int]*Allocation, len(st.Allocs)),
		poolDegraded: make([]bool, len(st.Pools)),
		rackFree:     make([]int, st.Config.Racks),
		freeBits:     make([]uint64, (total+63)/64),
		remoteShares: make([]int, len(st.Pools)),
		nodeStamp:    make([]int64, total),
		poolNeed:     make([]int64, len(st.Pools)),
		poolsHit:     make([]PoolID, 0, len(st.Pools)),
	}
	for i := range m.nodes {
		n := &m.nodes[i]
		if int(n.ID) != i {
			return nil, fmt.Errorf("cluster: machine state node %d carries id %d", i, n.ID)
		}
		if want := i / st.Config.NodesPerRack; n.Rack != want {
			return nil, fmt.Errorf("cluster: machine state node %d in rack %d, layout says %d", i, n.Rack, want)
		}
		switch {
		case n.Down:
			if n.Busy != 0 {
				return nil, fmt.Errorf("cluster: machine state node %d both busy and down", i)
			}
			m.downNodes++
		case n.Busy == 0:
			m.freeNodes++
			m.rackFree[n.Rack]++
			m.setFree(n.ID)
		default:
			m.busyNodes++
			m.usedLocalMiB += n.UsedLocalMiB
		}
	}
	for i := range m.pools {
		p := &m.pools[i]
		if int(p.ID) != i {
			return nil, fmt.Errorf("cluster: machine state pool %d carries id %d", i, p.ID)
		}
		m.usedPoolMiB += p.UsedMiB
		m.poolDegraded[i] = p.UsedMiB > p.CapacityMiB
	}
	prev := -1
	for _, as := range st.Allocs {
		if as.JobID <= prev {
			return nil, fmt.Errorf("cluster: machine state allocations out of order at job %d", as.JobID)
		}
		prev = as.JobID
		a := &Allocation{JobID: as.JobID, Shares: append([]NodeShare(nil), as.Shares...)}
		m.allocs[as.JobID] = a
		for _, s := range a.Shares {
			if s.RemoteMiB > 0 {
				if s.Pool < 0 || int(s.Pool) >= len(m.pools) {
					return nil, fmt.Errorf("cluster: machine state job %d borrows from pool %d of %d",
						as.JobID, s.Pool, len(m.pools))
				}
				m.remoteShares[s.Pool]++
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("cluster: machine state inconsistent: %w", err)
	}
	return m, nil
}
