// Package config defines the JSON experiment configuration consumed by
// cmd/dmsched (-config), bundling machine shape, workload source,
// policy, memory model and failure injection into one reviewable file.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/sim"
)

// Experiment is the root configuration document. Memory sizes are in
// GiB (the operator-facing unit); they are converted to the simulator's
// MiB internally.
type Experiment struct {
	// Name labels the run in output.
	Name string `json:"name"`

	Machine  Machine  `json:"machine"`
	Workload Workload `json:"workload"`

	// Policy is a registered scheduling policy name.
	Policy string `json:"policy"`
	// Model is a memory-model spec, e.g. "linear:0.5".
	Model string `json:"model"`
	// StrictKill kills jobs at the raw user estimate even when the
	// system dilated them.
	StrictKill bool `json:"strict_kill,omitempty"`

	// Failures optionally injects node failures.
	Failures *Failures `json:"failures,omitempty"`
}

// Machine describes the simulated hardware.
type Machine struct {
	Racks        int     `json:"racks"`
	NodesPerRack int     `json:"nodes_per_rack"`
	CoresPerNode int     `json:"cores_per_node"`
	LocalGiB     int64   `json:"local_gib"`
	Topology     string  `json:"topology"` // none | rack | global
	PoolGiB      int64   `json:"pool_gib,omitempty"`
	FabricGiBps  float64 `json:"fabric_gibps,omitempty"`
	TrafficGiBps float64 `json:"traffic_gibps_per_node,omitempty"`
}

// Workload selects the trace: a synthetic generator or an SWF file.
type Workload struct {
	// Jobs and Seed drive the synthetic generator (used when SWF is
	// empty).
	Jobs int    `json:"jobs,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// EstimateAccuracy overrides the generator's mean user estimate
	// accuracy when > 0.
	EstimateAccuracy float64 `json:"estimate_accuracy,omitempty"`
	// LargeMemFraction overrides the data-intensive job share when > 0.
	LargeMemFraction float64 `json:"large_mem_fraction,omitempty"`
	// SWF is a trace file path; NodeCores converts its processors to
	// nodes (0 = processors are nodes).
	SWF       string `json:"swf,omitempty"`
	NodeCores int    `json:"node_cores,omitempty"`
}

// Failures mirrors sim.FailureConfig in GiB-free units.
type Failures struct {
	MTBFPerNodeSec int64  `json:"mtbf_per_node_sec"`
	RepairSec      int64  `json:"repair_sec"`
	Seed           uint64 `json:"seed,omitempty"`
}

// Default returns a runnable starting configuration (the evaluation
// machine with the memory-aware policy).
func Default() Experiment {
	return Experiment{
		Name: "default",
		Machine: Machine{
			Racks: 16, NodesPerRack: 16, CoresPerNode: 32,
			LocalGiB: 64, Topology: "rack", PoolGiB: 4096,
			FabricGiBps: 64, TrafficGiBps: 2,
		},
		Workload: Workload{Jobs: 5000, Seed: 1},
		Policy:   "memaware",
		Model:    "linear:0.5",
	}
}

// Read parses an experiment from JSON. Unknown fields are rejected so
// typos fail loudly instead of silently using defaults.
func Read(r io.Reader) (*Experiment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var e Experiment
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Load reads an experiment from a file.
func Load(path string) (*Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Write serialises the experiment as indented JSON.
func (e *Experiment) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Validate checks the document against the simulator's constraints.
func (e *Experiment) Validate() error {
	if e.Policy == "" {
		return fmt.Errorf("config: missing policy")
	}
	if e.Model != "" {
		if _, err := memmodel.Parse(e.Model); err != nil {
			return err
		}
	}
	mc, err := e.MachineConfig()
	if err != nil {
		return err
	}
	if err := mc.Validate(); err != nil {
		return err
	}
	if e.Workload.SWF == "" && e.Workload.Jobs <= 0 {
		return fmt.Errorf("config: workload needs jobs > 0 or an swf file")
	}
	if acc := e.Workload.EstimateAccuracy; acc < 0 || acc > 1 {
		return fmt.Errorf("config: estimate accuracy %g outside [0,1]", acc)
	}
	if f := e.Failures; f != nil {
		fc := sim.FailureConfig{MTBFPerNodeSec: f.MTBFPerNodeSec, RepairSec: f.RepairSec, Seed: f.Seed}
		if err := fc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MachineConfig converts the document's machine section to the
// simulator's representation.
func (e *Experiment) MachineConfig() (cluster.Config, error) {
	topo, err := cluster.ParseTopology(e.Machine.Topology)
	if err != nil {
		return cluster.Config{}, err
	}
	return cluster.Config{
		Racks:               e.Machine.Racks,
		NodesPerRack:        e.Machine.NodesPerRack,
		CoresPerNode:        e.Machine.CoresPerNode,
		LocalMemMiB:         e.Machine.LocalGiB * 1024,
		Topology:            topo,
		PoolMiB:             e.Machine.PoolGiB * 1024,
		FabricGiBps:         e.Machine.FabricGiBps,
		TrafficGiBpsPerNode: e.Machine.TrafficGiBps,
	}, nil
}

// FailureConfig converts the failure section (nil when absent).
func (e *Experiment) FailureConfig() *sim.FailureConfig {
	if e.Failures == nil {
		return nil
	}
	return &sim.FailureConfig{
		MTBFPerNodeSec: e.Failures.MTBFPerNodeSec,
		RepairSec:      e.Failures.RepairSec,
		Seed:           e.Failures.Seed,
	}
}
