package config

import (
	"bytes"
	"strings"
	"testing"

	"dismem/internal/cluster"
)

func TestDefaultValidates(t *testing.T) {
	d := Default()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	d := Default()
	d.Failures = &Failures{MTBFPerNodeSec: 360000, RepairSec: 3600, Seed: 9}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Policy != d.Policy || got.Machine != d.Machine {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", got, d)
	}
	if got.Failures == nil || *got.Failures != *d.Failures {
		t.Fatalf("failures lost: %+v", got.Failures)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	in := `{"name":"x","policy":"memaware","machine":{"racks":1,"nodes_per_rack":1,
	"cores_per_node":1,"local_gib":1,"topology":"none"},
	"workload":{"jobs":10},"typo_field":true}`
	if _, err := Read(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "typo_field") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	mutate := []func(*Experiment){
		func(e *Experiment) { e.Policy = "" },
		func(e *Experiment) { e.Model = "bogus:1" },
		func(e *Experiment) { e.Machine.Topology = "mesh" },
		func(e *Experiment) { e.Machine.Racks = 0 },
		func(e *Experiment) { e.Workload.Jobs = 0; e.Workload.SWF = "" },
		func(e *Experiment) { e.Workload.EstimateAccuracy = 2 },
		func(e *Experiment) { e.Failures = &Failures{MTBFPerNodeSec: 0, RepairSec: 1} },
	}
	for i, m := range mutate {
		e := Default()
		m(&e)
		if e.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMachineConfigConversion(t *testing.T) {
	e := Default()
	mc, err := e.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if mc.LocalMemMiB != 64*1024 {
		t.Fatalf("local = %d MiB, want GiB->MiB conversion", mc.LocalMemMiB)
	}
	if mc.Topology != cluster.TopologyRack || mc.PoolMiB != 4096*1024 {
		t.Fatalf("machine = %+v", mc)
	}
}

func TestFailureConfigConversion(t *testing.T) {
	e := Default()
	if e.FailureConfig() != nil {
		t.Fatal("absent failures must convert to nil")
	}
	e.Failures = &Failures{MTBFPerNodeSec: 100, RepairSec: 5, Seed: 2}
	fc := e.FailureConfig()
	if fc == nil || fc.MTBFPerNodeSec != 100 || fc.RepairSec != 5 || fc.Seed != 2 {
		t.Fatalf("failure conversion = %+v", fc)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/config.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
