// Package core implements the paper's primary contribution: a
// disaggregated-memory-aware placement policy for batch scheduling.
//
// The policy treats pool memory as a first-class schedulable resource
// and differs from the oblivious "spill whenever the pool has space"
// strawman (sched.Spill) in four ways, each independently switchable
// for the ablation study (Table 3):
//
//  1. Slowdown-capped admission: a job is placed on remote memory only
//     if the memory model predicts a dilation at or below SlowdownCap;
//     otherwise the job waits for local capacity. This bounds the
//     per-job penalty the system may inflict.
//  2. Dilation-aware reservations: the predicted dilation is exported
//     through PlanDilation so backfill planners reserve the *dilated*
//     walltime, keeping EASY/conservative guarantees sound when jobs
//     run slower than their estimates assume (paired with the engine's
//     ExtendLimit rule).
//  3. Pool-pressure balancing: jobs that fit entirely in local DRAM are
//     steered toward racks whose pools are already depleted, preserving
//     pool-rich racks for jobs that need them; spilling jobs are
//     steered toward the racks with the most free pool and the least
//     fabric congestion.
//  4. Cross-rack shaping: wide spilling jobs are spread over eligible
//     racks instead of greedily filling one, flattening per-fabric
//     demand and thus contention-induced dilation.
package core

import (
	"fmt"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/sched"
	"dismem/internal/workload"
)

// MemAware is the disaggregated-memory-aware placement policy. The zero
// value is oblivious; use New for the paper's configuration.
type MemAware struct {
	// SlowdownCap is the maximum admissible predicted dilation
	// (e.g. 1.5 = at most 50% slower). 0 disables capping.
	SlowdownCap float64
	// Balance steers local jobs to pool-poor racks and spilling jobs to
	// pool-rich, low-congestion racks.
	Balance bool
	// Shape spreads wide spilling jobs across racks to flatten fabric
	// demand.
	Shape bool

	// idle caches the idle machine Feasible's admission probe plans
	// against, so job arrival is not O(machine). Plan never mutates its
	// machine, so the cache stays idle for the life of the policy.
	idle    *cluster.Machine
	idleCfg cluster.Config

	// View cache: the per-rack state and its two sorted variants are
	// job-independent, so they are keyed by (machine, version) and
	// reused across every Plan call in a scheduling pass until a commit
	// bumps the machine version. This removes the dominant cost of the
	// planning hot path (rebuilding and re-sorting rack views per job).
	viewM         *cluster.Machine
	viewVer       uint64
	raw           []rackView
	poolPoorViews []rackView
	poolPoorValid bool
	coolRichViews []rackView
	coolRichValid bool

	// Per-call scratch reused across Plan invocations (the policy is
	// single-simulation state, like the machine it schedules). The plan
	// Plan returns aliases this scratch: per the Placer contract it is
	// valid only until the next Plan call, and callers commit it with
	// Machine.AllocateCopy.
	eligScratch  []rackView
	quotaScratch []int
	shareScratch []cluster.NodeShare
	allocScratch cluster.Allocation
	planScratch  sched.Plan
}

// New returns the policy with the paper's default knobs: cap 1.5,
// balancing and shaping on.
func New() *MemAware {
	return &MemAware{SlowdownCap: 1.5, Balance: true, Shape: true}
}

// Verify interface satisfaction at compile time.
var _ sched.Placer = (*MemAware)(nil)

// Name implements sched.Placer.
func (p *MemAware) Name() string {
	return fmt.Sprintf("memaware(cap=%.2g,bal=%v,shape=%v)", p.SlowdownCap, p.Balance, p.Shape)
}

// Feasible implements sched.Placer: the job must fit the machine and,
// if it needs the pool, its *minimum* dilation (idle fabric) must pass
// the cap — otherwise it could wait forever behind an admission test it
// can never pass.
func (p *MemAware) Feasible(job *workload.Job, m *cluster.Machine, model memmodel.Model) bool {
	cfg := m.Config()
	if job.Nodes > cfg.TotalNodes() {
		return false
	}
	if job.MemPerNode <= cfg.LocalMemMiB {
		return true
	}
	if cfg.Topology == cluster.TopologyNone {
		return false
	}
	if !(sched.Spill{}).Feasible(job, m, model) {
		return false
	}
	if p.SlowdownCap > 0 && model != nil {
		// The admission test compares predicted dilation — including
		// the congestion the job's own fabric demand adds — against
		// the cap. A job is feasible iff that test can pass in the
		// best case, i.e. on a completely idle machine with this
		// placer's own placement strategy; evaluating Plan there makes
		// feasibility and admission consistent by construction.
		idle := p.idleMachine(m.Config())
		if idle == nil {
			return false
		}
		return p.Plan(job, idle, model) != nil
	}
	return true
}

// idleMachine returns a cached idle machine matching cfg, building one
// only when the configuration changes (in practice: once per run).
func (p *MemAware) idleMachine(cfg cluster.Config) *cluster.Machine {
	if p.idle == nil || p.idleCfg != cfg {
		m, err := cluster.New(cfg)
		if err != nil {
			return nil
		}
		p.idle, p.idleCfg = m, cfg
	}
	return p.idle
}

// PlanDilation implements sched.Placer: the dilation of the job's
// unavoidable remote fraction on an idle fabric, clamped by admission.
func (p *MemAware) PlanDilation(job *workload.Job, m *cluster.Machine, model memmodel.Model) float64 {
	if model == nil || job.MemPerNode == 0 {
		return 1
	}
	f := float64(sched.RemoteNeedPerNode(job, m)) / float64(job.MemPerNode)
	return model.Dilation(f, 0)
}

// Plan implements sched.Placer.
func (p *MemAware) Plan(job *workload.Job, m *cluster.Machine, model memmodel.Model) *sched.Plan {
	if m.FreeNodes() < job.Nodes {
		return nil
	}
	cfg := m.Config()
	local := job.MemPerNode
	if local > cfg.LocalMemMiB {
		local = cfg.LocalMemMiB
	}
	remote := job.MemPerNode - local
	if remote == 0 {
		return p.planLocal(job, m)
	}
	if cfg.Topology == cluster.TopologyNone {
		return nil
	}
	alloc := p.planSpill(job, m, local, remote)
	if alloc == nil {
		return nil
	}
	d := sched.PredictDilation(alloc, m, model)
	if p.SlowdownCap > 0 && d > p.SlowdownCap {
		// Admission control: wait rather than run pathologically slow.
		return nil
	}
	p.planScratch = sched.Plan{Alloc: alloc, Dilation: d}
	return &p.planScratch
}

// rackView is the per-rack state the selection heuristics score.
type rackView struct {
	rack      int
	pool      cluster.PoolID
	freeNodes int
	freePool  int64
	congest   float64
}

// lessPoolPoor orders racks pool-poor first (local jobs consume these,
// preserving pool-rich racks for spilling jobs).
func lessPoolPoor(a, b *rackView) bool {
	if a.freePool != b.freePool {
		return a.freePool < b.freePool
	}
	return a.rack < b.rack
}

// lessCoolRich orders racks for spilling jobs: least congested first,
// then most free pool, then rack index.
func lessCoolRich(a, b *rackView) bool {
	if a.congest != b.congest {
		return a.congest < b.congest
	}
	if a.freePool != b.freePool {
		return a.freePool > b.freePool
	}
	return a.rack < b.rack
}

// sortViews sorts views stably by less. Rack counts are small, so a
// direct insertion sort beats the reflection machinery of
// sort.SliceStable in the planning hot path; large machines fall back
// to the library sort.
func sortViews(v []rackView, less func(a, b *rackView) bool) {
	if len(v) > 64 {
		sort.SliceStable(v, func(i, j int) bool { return less(&v[i], &v[j]) })
		return
	}
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && less(&v[j], &v[j-1]); j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// rackViews returns the per-rack state, rebuilt from the machine's
// incremental aggregates in O(racks) — no node is visited — only when
// the (machine, version) key has changed since the last call. The
// returned slice is cache owned by the policy; callers must not mutate
// it (the sorted variants below copy before sorting).
func (p *MemAware) rackViews(m *cluster.Machine) []rackView {
	if p.viewM == m && p.viewVer == m.Version() {
		return p.raw
	}
	cfg := m.Config()
	pools := m.Pools()
	if cap(p.raw) < cfg.Racks {
		p.raw = make([]rackView, cfg.Racks)
	}
	views := p.raw[:cfg.Racks]
	for r := 0; r < cfg.Racks; r++ {
		v := rackView{rack: r, pool: cluster.NoPool, freeNodes: m.RackFreeNodes(r)}
		switch cfg.Topology {
		case cluster.TopologyRack:
			v.pool = cluster.PoolID(r)
		case cluster.TopologyGlobal:
			v.pool = 0
		}
		if v.pool != cluster.NoPool {
			v.freePool = pools[v.pool].FreeMiB()
			v.congest = pools[v.pool].Congestion()
		}
		views[r] = v
	}
	p.raw = views
	p.viewM, p.viewVer = m, m.Version()
	p.poolPoorValid, p.coolRichValid = false, false
	return p.raw
}

// poolPoor returns the rack views sorted by lessPoolPoor, cached under
// the same (machine, version) key as the raw views.
func (p *MemAware) poolPoor(m *cluster.Machine) []rackView {
	raw := p.rackViews(m)
	if !p.poolPoorValid {
		p.poolPoorViews = append(p.poolPoorViews[:0], raw...)
		sortViews(p.poolPoorViews, lessPoolPoor)
		p.poolPoorValid = true
	}
	return p.poolPoorViews
}

// coolRich returns the rack views sorted by lessCoolRich, cached under
// the same (machine, version) key as the raw views.
func (p *MemAware) coolRich(m *cluster.Machine) []rackView {
	raw := p.rackViews(m)
	if !p.coolRichValid {
		p.coolRichViews = append(p.coolRichViews[:0], raw...)
		sortViews(p.coolRichViews, lessCoolRich)
		p.coolRichValid = true
	}
	return p.coolRichViews
}

// planLocal places an all-local job. With Balance, pool-poor racks are
// consumed first so pool-rich racks stay available to spilling jobs.
func (p *MemAware) planLocal(job *workload.Job, m *cluster.Machine) *sched.Plan {
	views := p.rackViews(m)
	if p.Balance {
		views = p.poolPoor(m)
	}
	shares := p.shareScratch[:0]
	defer func() { p.shareScratch = shares[:0] }()
	for _, v := range views {
		if v.freeNodes == 0 {
			continue
		}
		m.FreeInRack(v.rack, func(id cluster.NodeID) bool {
			shares = append(shares, cluster.NodeShare{
				Node: id, LocalMiB: job.MemPerNode, Pool: cluster.NoPool,
			})
			return len(shares) < job.Nodes
		})
		if len(shares) == job.Nodes {
			return p.scratchPlan(job.ID, shares, 1)
		}
	}
	return nil
}

// scratchPlan assembles the policy's scratch plan around shares. The
// whole-struct reassignment of the scratch allocation resets its cached
// aggregate sums from the previous call.
func (p *MemAware) scratchPlan(jobID int, shares []cluster.NodeShare, dilation float64) *sched.Plan {
	p.allocScratch = cluster.Allocation{JobID: jobID, Shares: shares}
	p.planScratch = sched.Plan{Alloc: &p.allocScratch, Dilation: dilation}
	return &p.planScratch
}

// planSpill builds the node set for a job that must borrow remote MiB
// per node. Racks are ordered pool-rich and cool first (Balance) and
// the job is optionally spread across them (Shape).
func (p *MemAware) planSpill(job *workload.Job, m *cluster.Machine, local, remote int64) *cluster.Allocation {
	cfg := m.Config()
	// The eligibility filter depends on the job (freePool >= remote), so
	// it cannot be cached; the sort does not, so it is. Filtering the
	// cached lessCoolRich-sorted views yields exactly what the historical
	// filter-then-sort produced: lessCoolRich is a strict total order
	// (rack-index tiebreak), so the sorted order of any subset is the
	// subsequence of the sorted whole.
	source := p.rackViews(m)
	if p.Balance {
		source = p.coolRich(m)
	}
	eligible := p.eligScratch[:0]
	for _, v := range source {
		if v.freeNodes > 0 && v.pool != cluster.NoPool && v.freePool >= remote {
			eligible = append(eligible, v)
		}
	}
	p.eligScratch = eligible[:0]
	if len(eligible) == 0 {
		return nil
	}

	// Per-rack quota: greedy fill, or an even spread when shaping.
	if cap(p.quotaScratch) < len(eligible) {
		p.quotaScratch = make([]int, len(eligible))
	}
	quota := p.quotaScratch[:len(eligible)]
	for i := range quota {
		quota[i] = 0
	}
	remaining := job.Nodes
	if p.Shape && len(eligible) > 1 {
		for remaining > 0 {
			progress := false
			for i := range eligible {
				if remaining == 0 {
					break
				}
				canHost := eligible[i].freeNodes - quota[i]
				if canHost <= 0 {
					continue
				}
				if int64(quota[i]+1)*remote > eligible[i].freePool {
					continue
				}
				quota[i]++
				remaining--
				progress = true
			}
			if !progress {
				break
			}
		}
	} else {
		for i := range eligible {
			if remaining == 0 {
				break
			}
			take := eligible[i].freeNodes
			if maxByPool := eligible[i].freePool / remote; int64(take) > maxByPool {
				take = int(maxByPool)
			}
			if take > remaining {
				take = remaining
			}
			quota[i] = take
			remaining -= take
		}
	}
	if remaining > 0 {
		return nil
	}

	// For a global pool the per-rack quota may overcommit the single
	// pool; verify the aggregate.
	if cfg.Topology == cluster.TopologyGlobal {
		if remote*int64(job.Nodes) > mustPool(m, 0).FreeMiB() {
			return nil
		}
	}

	shares := p.shareScratch[:0]
	defer func() { p.shareScratch = shares[:0] }()
	for i, v := range eligible {
		if quota[i] == 0 {
			continue
		}
		taken := 0
		m.FreeInRack(v.rack, func(id cluster.NodeID) bool {
			shares = append(shares, cluster.NodeShare{
				Node: id, LocalMiB: local, RemoteMiB: remote, Pool: v.pool,
			})
			taken++
			return taken < quota[i]
		})
		if taken < quota[i] {
			return nil // machine changed underneath us: planner bug
		}
	}
	p.allocScratch = cluster.Allocation{JobID: job.ID, Shares: shares}
	return &p.allocScratch
}

func mustPool(m *cluster.Machine, id cluster.PoolID) cluster.Pool {
	p, ok := m.Pool(id)
	if !ok {
		panic(fmt.Sprintf("core: missing pool %d", id))
	}
	return p
}
