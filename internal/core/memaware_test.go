package core

import (
	"testing"
	"testing/quick"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/sched"
	"dismem/internal/stats"
	"dismem/internal/workload"
)

// coreConfig: 4 racks x 4 nodes, 1000 MiB local, 2000 MiB rack pools,
// tight fabric so congestion is reachable.
func coreConfig() cluster.Config {
	return cluster.Config{
		Racks: 4, NodesPerRack: 4, CoresPerNode: 8, LocalMemMiB: 1000,
		Topology: cluster.TopologyRack, PoolMiB: 2000, FabricGiBps: 4,
		TrafficGiBpsPerNode: 2,
	}
}

func job(id, nodes int, mem int64) *workload.Job {
	return &workload.Job{
		ID: id, Nodes: nodes, MemPerNode: mem,
		Submit: 0, Estimate: 1000, BaseRuntime: 500,
	}
}

func TestMemAwareLocalJob(t *testing.T) {
	m := cluster.MustNew(coreConfig())
	p := New()
	plan := p.Plan(job(1, 2, 500), m, memmodel.Linear{Beta: 1})
	if plan == nil {
		t.Fatal("local job not planned on idle machine")
	}
	if plan.Dilation != 1 || plan.Alloc.RemoteMiB() != 0 {
		t.Fatalf("local plan = %+v", plan)
	}
	if err := m.Allocate(plan.Alloc); err != nil {
		t.Fatal(err)
	}
}

func TestMemAwareSlowdownCapAdmission(t *testing.T) {
	m := cluster.MustNew(coreConfig())
	model := memmodel.Linear{Beta: 1}
	p := &MemAware{SlowdownCap: 1.3, Balance: true, Shape: true}
	// mem 1250 → f = 0.2 → dilation 1.2 <= 1.3: admitted.
	if p.Plan(job(1, 1, 1250), m, model) == nil {
		t.Fatal("under-cap job denied")
	}
	// mem 2000 → f = 0.5 → dilation 1.5 > 1.3: denied and infeasible.
	if p.Plan(job(2, 1, 2000), m, model) != nil {
		t.Fatal("over-cap job admitted")
	}
	if p.Feasible(job(2, 1, 2000), m, model) {
		t.Fatal("over-cap job reported feasible")
	}
	// Without the cap the same job is admitted.
	nocap := &MemAware{SlowdownCap: 0, Balance: true, Shape: true}
	if nocap.Plan(job(3, 1, 2000), m, model) == nil {
		t.Fatal("uncapped policy denied a placeable job")
	}
}

func TestMemAwarePlanDilationIdleFloor(t *testing.T) {
	m := cluster.MustNew(coreConfig())
	model := memmodel.Bandwidth{Beta: 1, Gamma: 1}
	p := New()
	// f = 0.5 at zero congestion → 1.5 regardless of current load.
	if got := p.PlanDilation(job(1, 1, 2000), m, model); got != 1.5 {
		t.Fatalf("PlanDilation = %g, want 1.5", got)
	}
	if got := p.PlanDilation(job(1, 1, 500), m, model); got != 1 {
		t.Fatalf("PlanDilation(local) = %g, want 1", got)
	}
}

func TestMemAwareBalanceSteersLocalJobsOffRichPools(t *testing.T) {
	m := cluster.MustNew(coreConfig())
	// Drain rack 0's pool so it is the poorest.
	pre := &cluster.Allocation{JobID: 99, Shares: []cluster.NodeShare{
		{Node: 0, LocalMiB: 1000, RemoteMiB: 1800, Pool: 0},
	}}
	if err := m.Allocate(pre); err != nil {
		t.Fatal(err)
	}
	p := &MemAware{SlowdownCap: 2, Balance: true, Shape: true}
	plan := p.Plan(job(1, 2, 500), m, memmodel.Linear{Beta: 0.5})
	if plan == nil {
		t.Fatal("plan failed")
	}
	for _, s := range plan.Alloc.Shares {
		if rack := int(s.Node) / 4; rack != 0 {
			t.Fatalf("balance placed local job on pool-rich rack %d, want rack 0", rack)
		}
	}
	// Without balance the first-fit order also lands on rack 0 (node
	// IDs ascending), so contrast with spilling jobs instead: a
	// spilling job must now avoid rack 0 (only 200 MiB pool left).
	spill := p.Plan(job(2, 1, 1500), m, memmodel.Linear{Beta: 0.5})
	if spill == nil {
		t.Fatal("spill plan failed")
	}
	if spill.Alloc.Shares[0].Pool == 0 {
		t.Fatal("spilling job placed on the drained pool")
	}
}

func TestMemAwareShapeSpreadsWideJobs(t *testing.T) {
	m := cluster.MustNew(coreConfig())
	model := memmodel.Linear{Beta: 0.5}
	shape := &MemAware{SlowdownCap: 2, Balance: true, Shape: true}
	plan := shape.Plan(job(1, 8, 1400), m, model) // 400 MiB remote per node
	if plan == nil {
		t.Fatal("shaped plan failed")
	}
	perPool := map[cluster.PoolID]int{}
	for _, s := range plan.Alloc.Shares {
		perPool[s.Pool]++
	}
	if len(perPool) != 4 {
		t.Fatalf("shaping used %d racks, want all 4", len(perPool))
	}
	for pid, n := range perPool {
		if n != 2 {
			t.Fatalf("shaping put %d nodes on pool %d, want 2", n, pid)
		}
	}
	// Greedy (no shape) fills the first rack completely instead.
	greedy := &MemAware{SlowdownCap: 2, Balance: false, Shape: false}
	m2 := cluster.MustNew(coreConfig())
	plan2 := greedy.Plan(job(1, 8, 1400), m2, model)
	if plan2 == nil {
		t.Fatal("greedy plan failed")
	}
	perPool2 := map[cluster.PoolID]int{}
	for _, s := range plan2.Alloc.Shares {
		perPool2[s.Pool]++
	}
	if perPool2[0] != 4 {
		t.Fatalf("greedy put %d nodes on rack 0, want 4 (fill first)", perPool2[0])
	}
}

func TestMemAwareShapeLowersPredictedDilation(t *testing.T) {
	// With the bandwidth model and a tight fabric, spreading demand
	// over racks must predict a strictly lower dilation than greedy
	// packing for a wide spilling job. The footprint (400 MiB remote
	// per node) is small enough that pool capacity does NOT force
	// spreading — only shaping does.
	cfg := coreConfig()
	cfg.FabricGiBps = 1.5
	model := memmodel.Bandwidth{Beta: 0.5, Gamma: 1}
	shapePlan := (&MemAware{SlowdownCap: 0, Balance: true, Shape: true}).
		Plan(job(1, 8, 1400), cluster.MustNew(cfg), model)
	greedyPlan := (&MemAware{SlowdownCap: 0, Balance: false, Shape: false}).
		Plan(job(1, 8, 1400), cluster.MustNew(cfg), model)
	if shapePlan == nil || greedyPlan == nil {
		t.Fatal("plans failed")
	}
	if shapePlan.Dilation >= greedyPlan.Dilation {
		t.Fatalf("shaping did not reduce dilation: %g >= %g",
			shapePlan.Dilation, greedyPlan.Dilation)
	}
}

func TestMemAwareRespectsPoolCapacity(t *testing.T) {
	m := cluster.MustNew(coreConfig())
	p := &MemAware{SlowdownCap: 0, Balance: true, Shape: true}
	// 16 nodes x 1000 remote each = 16000 > 4x2000 total pool.
	if p.Plan(job(1, 16, 2000), m, nil) != nil {
		t.Fatal("planned past total pool capacity")
	}
	// 8 nodes x 1000 = 8000 = exactly the total pool.
	plan := p.Plan(job(2, 8, 2000), m, nil)
	if plan == nil {
		t.Fatal("exact-fit spill denied")
	}
	if err := m.Allocate(plan.Alloc); err != nil {
		t.Fatal(err)
	}
}

func TestMemAwareFeasibleMatchesIdlePlan(t *testing.T) {
	// Property: Feasible(job) == (Plan(job) != nil on an idle machine),
	// the invariant that prevents queue deadlock.
	cfg := coreConfig()
	model := memmodel.Bandwidth{Beta: 1, Gamma: 1}
	p := New()
	rng := stats.NewRNG(5)
	check := func(raw uint32) bool {
		nodes := int(raw%16) + 1
		mem := int64(raw%3000) + 1
		j := job(1, nodes, mem)
		idle := cluster.MustNew(cfg)
		feasible := p.Feasible(j, idle, model)
		planned := p.Plan(j, cluster.MustNew(cfg), model) != nil
		if feasible != planned {
			t.Logf("nodes=%d mem=%d feasible=%v planned=%v", nodes, mem, feasible, planned)
			return false
		}
		_ = rng
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMemAwareGlobalPoolAggregateCheck(t *testing.T) {
	cfg := coreConfig()
	cfg.Topology = cluster.TopologyGlobal
	cfg.PoolMiB = 3000 // one machine-wide pool
	m := cluster.MustNew(cfg)
	p := &MemAware{SlowdownCap: 0, Balance: true, Shape: true}
	// 4 nodes x 1000 remote = 4000 > 3000 global pool: must be denied
	// even though each rack-view check would pass individually.
	if p.Plan(job(1, 4, 2000), m, nil) != nil {
		t.Fatal("global pool overcommitted")
	}
	if plan := p.Plan(job(2, 3, 2000), m, nil); plan == nil {
		t.Fatal("3-node spill fits the global pool but was denied")
	}
}

func TestMemAwareTopologyNone(t *testing.T) {
	m := cluster.MustNew(cluster.BaselineConfig(1000))
	p := New()
	if p.Plan(job(1, 1, 1500), m, nil) != nil {
		t.Fatal("planned remote memory without pools")
	}
	if p.Feasible(job(1, 1, 1500), m, nil) {
		t.Fatal("big-memory job feasible without pools")
	}
	if plan := p.Plan(job(2, 2, 800), m, nil); plan == nil {
		t.Fatal("local job denied on pool-less machine")
	}
}

func TestMemAwareDilationNeverExceedsCap(t *testing.T) {
	// Any plan the policy admits must carry dilation <= cap.
	cfg := coreConfig()
	model := memmodel.Bandwidth{Beta: 1.5, Gamma: 1}
	p := New() // cap 1.5
	rng := stats.NewRNG(11)
	for trial := 0; trial < 300; trial++ {
		m := cluster.MustNew(cfg)
		// Random pre-load.
		for i := 0; i < 3; i++ {
			n := cluster.NodeID(rng.Intn(cfg.TotalNodes()))
			if m.Nodes()[n].Busy != 0 {
				continue
			}
			remote := rng.Int63n(1000)
			pool := cluster.NoPool
			if remote > 0 {
				pool = m.PoolOf(n)
				if pl, _ := m.Pool(pool); pl.FreeMiB() < remote {
					remote, pool = 0, cluster.NoPool
				}
			}
			alloc := &cluster.Allocation{JobID: 100 + i, Shares: []cluster.NodeShare{
				{Node: n, LocalMiB: rng.Int63n(cfg.LocalMemMiB), RemoteMiB: remote, Pool: pool},
			}}
			if err := m.Allocate(alloc); err != nil {
				t.Fatal(err)
			}
		}
		j := job(1, int(rng.Intn(8))+1, rng.Int63n(2500)+1)
		if plan := p.Plan(j, m, model); plan != nil && plan.Dilation > p.SlowdownCap+1e-9 {
			t.Fatalf("admitted plan with dilation %g > cap %g (job %+v)",
				plan.Dilation, p.SlowdownCap, j)
		}
	}
}

func TestMemAwareName(t *testing.T) {
	if New().Name() == "" {
		t.Fatal("empty policy name")
	}
	var _ sched.Placer = New()
}
