package des

import (
	"reflect"
	"testing"
)

// TestSnapshotRestoreOrder pins the core checkpoint guarantee: a
// restored queue fires the surviving events in exactly the order the
// original would have, including band and FIFO tie-breaks at one
// instant, and events scheduled after the restore still sort behind
// restored events at the same instant.
func TestSnapshotRestoreOrder(t *testing.T) {
	const (
		kindA Kind = iota + 1
		kindB
		kindFront
	)
	s := New()
	var origOrder []string
	mk := func(name string) Handler {
		return func(Time, any) { origOrder = append(origOrder, name) }
	}
	s.ScheduleKind(10, kindA, "a1", mk("a1"))
	s.ScheduleKind(10, kindB, "b1", mk("b1"))
	s.ScheduleFrontKind(10, kindFront, "f1", mk("f1"))
	s.ScheduleKind(5, kindA, "a0", mk("a0"))
	s.ScheduleKind(20, kindB, "b2", mk("b2"))

	recs, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	// Records come out in firing order: time, then band, then seq.
	want := []string{"a0", "f1", "a1", "b1", "b2"}
	var got []string
	for _, r := range recs {
		got = append(got, r.Data.(string))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("record order %v, want %v", got, want)
	}

	var restOrder []string
	s2, evs, err := Restore(3, 7, recs, func(r EventRecord) Handler {
		name := r.Data.(string)
		return func(Time, any) { restOrder = append(restOrder, name) }
	})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if s2.Now() != 3 || s2.Fired() != 7 {
		t.Fatalf("restored clock/fired = %d/%d, want 3/7", s2.Now(), s2.Fired())
	}
	if len(evs) != 5 {
		t.Fatalf("got %d event handles, want 5", len(evs))
	}
	for i, e := range evs {
		if e == nil {
			t.Fatalf("event %d not restored", i)
		}
		if e.Kind() != recs[i].Kind || e.Data() != recs[i].Data {
			t.Fatalf("event %d kind/data not carried over", i)
		}
	}
	// A post-restore event at t=10 must fire after every restored t=10
	// event (it would have been scheduled later in the original run).
	s2.ScheduleKind(10, kindA, "late", func(Time, any) { restOrder = append(restOrder, "late") })

	s.RunAll()
	s2.RunAll()
	wantRest := []string{"a0", "f1", "a1", "b1", "late", "b2"}
	if !reflect.DeepEqual(restOrder, wantRest) {
		t.Fatalf("restored firing order %v, want %v", restOrder, wantRest)
	}
	if !reflect.DeepEqual(origOrder, want) {
		t.Fatalf("original firing order %v, want %v", origOrder, want)
	}
}

// TestSnapshotRejectsOpaque pins that an untagged closure blocks the
// snapshot instead of being silently dropped.
func TestSnapshotRejectsOpaque(t *testing.T) {
	s := New()
	s.Schedule(10, func(Time, any) {})
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot of an opaque event succeeded, want error")
	}
}

// TestRestoreDropsNilHandlers pins the selective-restore contract: a
// rebuild returning nil discards that record, and the handle slot stays
// nil.
func TestRestoreDropsNilHandlers(t *testing.T) {
	s := New()
	s.ScheduleKind(10, 1, nil, func(Time, any) {})
	s.ScheduleKind(11, 2, nil, func(Time, any) {})
	recs, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	s2, evs, err := Restore(0, 0, recs, func(r EventRecord) Handler {
		if r.Kind == 1 {
			return nil
		}
		return func(Time, any) { fired++ }
	})
	if err != nil {
		t.Fatal(err)
	}
	if evs[0] != nil || evs[1] == nil {
		t.Fatalf("handles = [%v %v], want [nil non-nil]", evs[0], evs[1])
	}
	s2.RunAll()
	if fired != 1 || s2.Fired() != 1 {
		t.Fatalf("fired %d events (counter %d), want 1", fired, s2.Fired())
	}
}

// TestRestoreRejectsPastEvents guards against corrupt checkpoints.
func TestRestoreRejectsPastEvents(t *testing.T) {
	recs := []EventRecord{{Time: 5, Kind: 1}}
	if _, _, err := Restore(10, 0, recs, func(EventRecord) Handler { return func(Time, any) {} }); err == nil {
		t.Fatal("Restore accepted an event before the clock, want error")
	}
}

// TestReschedulePreservesKind pins that Reschedule carries the tag and
// payload to the new event, keeping rescheduled events checkpointable.
func TestReschedulePreservesKind(t *testing.T) {
	s := New()
	e := s.ScheduleKind(10, 3, "payload", func(Time, any) {})
	ne := s.Reschedule(e, 20)
	if ne.Kind() != 3 || ne.Data() != "payload" {
		t.Fatalf("rescheduled event kind=%d data=%v, want 3/payload", ne.Kind(), ne.Data())
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot after Reschedule: %v", err)
	}
}
