// Package des implements a deterministic discrete-event simulation
// kernel: a virtual clock plus a priority queue of timed callbacks.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (stable FIFO tie-break on a monotonically increasing
// sequence number), which makes simulations reproducible regardless of
// heap internals. Events can be cancelled in O(log n) via the handle
// returned from Schedule.
//
// The kernel is single-threaded by design: HPC scheduling simulations
// are dominated by the strict total order of events, so the idiomatic
// Go approach is to keep the kernel sequential and parallelise across
// independent simulations (seeds, sweep points) instead — which is what
// internal/sweep does.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is virtual simulation time in seconds since simulation start.
type Time int64

// Infinity is a sentinel time later than any schedulable event.
const Infinity Time = math.MaxInt64

// Handler is a callback invoked when an event fires. now is the
// simulator clock at firing time (== the time the event was scheduled
// for) and data is the payload attached at schedule time (nil for the
// plain Schedule variants). Passing the payload to the handler lets a
// scheduling layer register one handler per event family instead of
// closing over per-event state, which keeps the event hot path
// allocation-free.
type Handler func(now Time, data any)

// Kind tags an event with a caller-defined type so the queue can be
// snapshotted as data (Snapshot) and the closures rebuilt on restore
// (Restore). Kinds are owned by the scheduling layer (internal/sim
// defines one per event family); the kernel only carries them.
type Kind int16

// KindOpaque marks events scheduled without a kind. They fire normally
// but cannot be checkpointed: Snapshot fails on a pending opaque event,
// because there is no record from which to rebuild its closure.
const KindOpaque Kind = 0

// Event is a scheduled occurrence. It is owned by the Simulator; callers
// hold it only to Cancel it or inspect its time.
//
// Events are pooled: once an event fires or is cancelled, its handle is
// dead — the simulator recycles the struct for a future Schedule, so a
// retained dead handle may alias an unrelated live event. Callers must
// drop (nil out) their handle when the event fires or when they cancel
// it. Cancelling the event currently being fired, from inside its own
// handler, is safe: recycling happens only after the handler returns.
type Event struct {
	time    Time
	band    int8
	kind    Kind
	seq     uint64
	index   int // heap index; -1 when not queued
	handler Handler
	data    any
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.time }

// Kind returns the event's kind tag (KindOpaque for untagged events).
func (e *Event) Kind() Kind { return e.kind }

// Data returns the serializable payload attached at schedule time.
func (e *Event) Data() any { return e.data }

// Cancelled reports whether the event has been removed from the queue
// (either cancelled or already fired).
func (e *Event) Cancelled() bool { return e.index < 0 }

// eventHeap orders events by (time, band, seq): earlier bands fire
// before later bands at the same instant, and scheduling order breaks
// ties within a band.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].band != h[j].band {
		return h[i].band < h[j].band
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is the event loop. The zero value is not usable; construct
// with New.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
	// pool holds recycled Event structs: events are returned here when
	// they fire or are cancelled and reused by the next schedule, so a
	// steady-state simulation allocates no events at all.
	pool []*Event
}

// New returns an empty simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// NewReusing returns an empty simulator that adopts prev's event pool
// and queue storage, so a fresh run starts with the previous run's
// warmed-up capacity instead of growing its own. Any events still
// pending in prev are recycled into the new pool. prev must not be used
// afterwards: its queue is gone and its pooled events now belong to the
// returned simulator.
func NewReusing(prev *Simulator) *Simulator {
	if prev == nil {
		return New()
	}
	s := &Simulator{pool: prev.pool}
	for _, e := range prev.queue {
		s.recycle(e)
	}
	s.queue = prev.queue[:0]
	prev.queue, prev.pool = nil, nil
	prev.stopped = true
	return s
}

// recycle zeroes a dead event (releasing its handler and payload
// references) and returns it to the free pool.
func (s *Simulator) recycle(e *Event) {
	*e = Event{index: -1}
	s.pool = append(s.pool, e)
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far, a cheap progress
// and complexity metric.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule enqueues handler to run at absolute time at. Scheduling in
// the past (at < Now) panics: it is always a simulation logic bug and
// silently reordering would corrupt causality.
func (s *Simulator) Schedule(at Time, handler Handler) *Event {
	return s.schedule(at, 0, handler)
}

// ScheduleFront enqueues handler to run at absolute time at, ahead of
// every event Schedule has queued (or will queue) for the same instant.
// Among ScheduleFront events at one instant, scheduling order still
// breaks ties. The engine uses this for streamed job arrivals: with one
// pending arrival at a time, front scheduling reproduces exactly the
// firing order of the historical design that pre-scheduled every
// arrival first (lowest sequence numbers), keeping streamed replays
// bit-identical to slice replays.
func (s *Simulator) ScheduleFront(at Time, handler Handler) *Event {
	return s.schedule(at, -1, handler)
}

// ScheduleKind is Schedule with a kind tag and a serializable payload,
// making the event snapshot-able (see Snapshot/Restore). The payload
// must be enough, together with the kind, for the scheduling layer to
// rebuild an equivalent handler on restore.
func (s *Simulator) ScheduleKind(at Time, kind Kind, data any, handler Handler) *Event {
	e := s.schedule(at, 0, handler)
	e.kind, e.data = kind, data
	return e
}

// ScheduleFrontKind is ScheduleFront with a kind tag and payload.
func (s *Simulator) ScheduleFrontKind(at Time, kind Kind, data any, handler Handler) *Event {
	e := s.schedule(at, -1, handler)
	e.kind, e.data = kind, data
	return e
}

func (s *Simulator) schedule(at Time, band int8, handler Handler) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling into the past: at=%d now=%d", at, s.now))
	}
	if handler == nil {
		panic("des: nil handler")
	}
	var e *Event
	if n := len(s.pool); n > 0 {
		e = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		*e = Event{time: at, band: band, seq: s.seq, handler: handler}
	} else {
		e = &Event{time: at, band: band, seq: s.seq, handler: handler}
	}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleDelta enqueues handler to run delta seconds from now.
func (s *Simulator) ScheduleDelta(delta Time, handler Handler) *Event {
	if delta < 0 {
		panic(fmt.Sprintf("des: negative delta %d", delta))
	}
	return s.Schedule(s.now+delta, handler)
}

// Cancel removes a pending event and recycles it: the handle is dead
// afterwards and the caller must drop it. Cancelling a handle that was
// already dead (fired or cancelled) and not yet reused is still a
// no-op, but a dead handle held across a later schedule may alias a new
// event, so callers must not rely on the historical
// cancel-anytime-is-safe behavior.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	s.recycle(e)
}

// Reschedule moves a pending event to a new time, preserving FIFO
// fairness at the new instant (it is assigned a fresh sequence number,
// in the default band). The kind tag and payload carry over. The old
// handle is dead; use only the returned one. The event must still be
// pending: a fired or cancelled handle has been recycled (its handler
// is gone, and the struct may already back an unrelated event), so
// rescheduling one panics or corrupts the queue — callers that want
// fire-again semantics re-Schedule instead.
func (s *Simulator) Reschedule(e *Event, at Time) *Event {
	h, k, d := e.handler, e.kind, e.data
	s.Cancel(e)
	ne := s.Schedule(at, h)
	ne.kind, ne.data = k, d
	return ne
}

// Step fires the single earliest event. It returns false when the queue
// is empty or the simulator has been stopped. The fired event is
// recycled after its handler returns.
func (s *Simulator) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.time
	s.fired++
	e.handler(s.now, e.data)
	s.recycle(e)
	return true
}

// Run executes events until the queue drains, Stop is called, or the
// next event is strictly after until. The clock is left at the time of
// the last fired event (or advanced to until if no event fired at it).
// Pass Infinity to run to completion.
func (s *Simulator) Run(until Time) {
	for !s.stopped && len(s.queue) > 0 && s.queue[0].time <= until {
		s.Step()
	}
	if !s.stopped && s.now < until && until != Infinity {
		s.now = until
	}
}

// RunAll executes events until the queue drains or Stop is called.
func (s *Simulator) RunAll() { s.Run(Infinity) }

// Stop halts the event loop after the current handler returns; pending
// events remain queued but will not fire.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// EventRecord is the serializable form of one pending event: everything
// about it except the closure, which the scheduling layer rebuilds from
// (Kind, Data) on restore. Records produced by Snapshot are ordered by
// firing order, which Restore preserves.
type EventRecord struct {
	Time Time
	// Front marks events scheduled via a Front variant (the arrival
	// band); Restore re-schedules them in the same band.
	Front bool
	Kind  Kind
	Data  any
}

// Snapshot returns the pending events as records in firing order —
// the checkpoint half of the queue's event-record design. It fails if
// any pending event is untagged (KindOpaque): such a closure cannot be
// rebuilt from data, so the queue is not checkpointable.
func (s *Simulator) Snapshot() ([]EventRecord, error) {
	evs := append([]*Event(nil), s.queue...)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.time != b.time {
			return a.time < b.time
		}
		if a.band != b.band {
			return a.band < b.band
		}
		return a.seq < b.seq
	})
	recs := make([]EventRecord, 0, len(evs))
	for _, e := range evs {
		if e.kind == KindOpaque {
			return nil, fmt.Errorf("des: pending opaque event at t=%d cannot be snapshotted (schedule it with ScheduleKind)", e.time)
		}
		recs = append(recs, EventRecord{Time: e.time, Front: e.band < 0, Kind: e.kind, Data: e.data})
	}
	return recs, nil
}

// Restore builds a simulator positioned at now, with the given fired
// count, whose queue holds the recorded events — the restore half of
// the event-record design. recs must be in firing order (as Snapshot
// produces); each is re-scheduled with a fresh sequence number in that
// order, so the relative firing order among restored events, and
// between them and anything scheduled later, matches the original run
// exactly. rebuild maps one record to its handler; returning nil drops
// the record (for restores that deliberately discard an event family).
// The returned slice is aligned with recs — nil where dropped — so
// callers can rewire the event handles they track.
func Restore(now Time, fired uint64, recs []EventRecord, rebuild func(EventRecord) Handler) (*Simulator, []*Event, error) {
	s := &Simulator{now: now, fired: fired}
	events := make([]*Event, len(recs))
	for i, r := range recs {
		if r.Time < now {
			return nil, nil, fmt.Errorf("des: restore: event at t=%d is before the clock t=%d", r.Time, now)
		}
		if r.Kind == KindOpaque {
			return nil, nil, fmt.Errorf("des: restore: opaque event record at t=%d", r.Time)
		}
		h := rebuild(r)
		if h == nil {
			continue
		}
		if r.Front {
			events[i] = s.ScheduleFrontKind(r.Time, r.Kind, r.Data, h)
		} else {
			events[i] = s.ScheduleKind(r.Time, r.Kind, r.Data, h)
		}
	}
	return s, events, nil
}
