package des

import (
	"sort"
	"testing"
	"testing/quick"

	"dismem/internal/stats"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 1, 9, 3, 3, 7} {
		at := at
		s.Schedule(at, func(now Time, _ any) { fired = append(fired, now) })
	}
	s.RunAll()
	want := []Time{1, 3, 3, 5, 7, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %d, want %d", i, fired[i], want[i])
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(42, func(Time, any) { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestHandlerSeesEventTime(t *testing.T) {
	s := New()
	s.Schedule(7, func(now Time, _ any) {
		if now != 7 {
			t.Fatalf("handler now = %d, want 7", now)
		}
		if s.Now() != 7 {
			t.Fatalf("simulator Now() = %d, want 7", s.Now())
		}
	})
	s.RunAll()
}

func TestScheduleDuringHandler(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(1, func(now Time, _ any) {
		fired = append(fired, now)
		s.ScheduleDelta(4, func(now Time, _ any) { fired = append(fired, now) })
		s.ScheduleDelta(0, func(now Time, _ any) { fired = append(fired, now) })
	})
	s.RunAll()
	want := []Time{1, 1, 5}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(3, func(Time, any) { ran = true })
	s.Cancel(e)
	s.RunAll()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after cancel")
	}
	// Cancelling again (and cancelling nil) must be harmless no-ops.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelOneOfSameTime(t *testing.T) {
	s := New()
	var fired []int
	e1 := s.Schedule(5, func(Time, any) { fired = append(fired, 1) })
	s.Schedule(5, func(Time, any) { fired = append(fired, 2) })
	s.Schedule(5, func(Time, any) { fired = append(fired, 3) })
	s.Cancel(e1)
	s.RunAll()
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [2 3]", fired)
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var at Time
	e := s.Schedule(3, func(now Time, _ any) { at = now })
	s.Reschedule(e, 8)
	s.RunAll()
	if at != 8 {
		t.Fatalf("rescheduled event fired at %d, want 8", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 5, 10, 15} {
		s.Schedule(at, func(now Time, _ any) { fired = append(fired, now) })
	}
	s.Run(10)
	if len(fired) != 3 {
		t.Fatalf("Run(10) fired %d events, want 3 (at 1,5,10)", len(fired))
	}
	if s.Now() != 10 {
		t.Fatalf("Now() = %d after Run(10), want 10", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.RunAll()
	if len(fired) != 4 {
		t.Fatal("remaining event did not fire on RunAll")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.Schedule(1, func(Time, any) { count++; s.Stop() })
	s.Schedule(2, func(Time, any) { count++ })
	s.RunAll()
	if count != 1 {
		t.Fatalf("events after Stop fired: count = %d", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func(Time, any) {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	s.Schedule(5, func(Time, any) {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delta did not panic")
		}
	}()
	New().ScheduleDelta(-1, func(Time, any) {})
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func(Time, any) {})
	}
	s.RunAll()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

// TestRandomScheduleOrderProperty: for any random multiset of times, the
// firing sequence equals the sorted multiset, and the clock is
// monotonically non-decreasing.
func TestRandomScheduleOrderProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	check := func(raw []uint16) bool {
		s := New()
		var fired []Time
		times := make([]Time, len(raw))
		for i, v := range raw {
			times[i] = Time(v)
		}
		// Schedule in a shuffled order to decorrelate insertion order
		// from time order.
		rng.Shuffle(len(times), func(i, j int) { times[i], times[j] = times[j], times[i] })
		for _, at := range times {
			s.Schedule(at, func(now Time, _ any) { fired = append(fired, now) })
		}
		s.RunAll()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != len(times) {
			return false
		}
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelDeterminism: random cancellations must leave exactly the
// non-cancelled events firing, in order.
func TestCancelDeterminism(t *testing.T) {
	rng := stats.NewRNG(7)
	check := func(raw []uint8) bool {
		s := New()
		type rec struct {
			ev     *Event
			at     Time
			cancel bool
		}
		var recs []rec
		fired := map[int]bool{}
		for i, v := range raw {
			i, at := i, Time(v)
			ev := s.Schedule(at, func(Time, any) { fired[i] = true })
			recs = append(recs, rec{ev: ev, at: at, cancel: rng.Float64() < 0.4})
		}
		for _, r := range recs {
			if r.cancel {
				s.Cancel(r.ev)
			}
		}
		s.RunAll()
		for i, r := range recs {
			if r.cancel == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
