package des

import "testing"

func TestScheduleFrontFiresBeforeSameInstantEvents(t *testing.T) {
	// Front events at one instant fire before default-band events at
	// that instant, regardless of scheduling order; within each band,
	// scheduling order is preserved.
	s := New()
	var got []string
	mark := func(name string) Handler { return func(Time, any) { got = append(got, name) } }

	s.Schedule(10, mark("a"))
	s.Schedule(10, mark("b"))
	s.ScheduleFront(10, mark("x"))
	s.Schedule(10, mark("c"))
	s.ScheduleFront(10, mark("y"))
	s.Schedule(5, mark("early"))

	s.RunAll()
	want := []string{"early", "x", "y", "a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestScheduleFrontChainsAtOneInstant(t *testing.T) {
	// A front handler scheduling another front event at the same
	// instant (the streamed-arrival pattern: arrival k schedules
	// arrival k+1) must see the chain complete before any default-band
	// event at that instant fires.
	s := New()
	var got []string
	s.Schedule(10, func(Time, any) { got = append(got, "pass") })
	var arrive func(n int) Handler
	arrive = func(n int) Handler {
		return func(Time, any) {
			got = append(got, "arrival")
			if n > 0 {
				s.ScheduleFront(10, arrive(n-1))
			}
		}
	}
	s.ScheduleFront(10, arrive(2))
	s.RunAll()
	want := []string{"arrival", "arrival", "arrival", "pass"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}
