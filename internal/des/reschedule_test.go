package des

import "testing"

func TestReschedulePendingMoves(t *testing.T) {
	s := New()
	count := 0
	e := s.Schedule(9, func(Time, any) { count++ })
	// Rescheduling a pending event moves it; the old handle is dead and
	// only the returned one is live.
	ne := s.Reschedule(e, 5)
	s.RunAll()
	if count != 1 {
		t.Fatalf("event fired %d times, want 1", count)
	}
	if s.Now() != 5 {
		t.Fatalf("fired at %d, want 5", s.Now())
	}
	_ = ne
}

func TestRescheduleKeepsFIFOFairness(t *testing.T) {
	s := New()
	var order []int
	a := s.Schedule(10, func(Time, any) { order = append(order, 1) })
	s.Schedule(10, func(Time, any) { order = append(order, 2) })
	// Rescheduling event 1 to the same instant moves it BEHIND event 2
	// (fresh sequence number): rescheduling is re-submission.
	s.Reschedule(a, 10)
	s.RunAll()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", order)
	}
}

func TestPendingCount(t *testing.T) {
	s := New()
	if s.Pending() != 0 {
		t.Fatalf("fresh simulator has %d pending", s.Pending())
	}
	e1 := s.Schedule(1, func(Time, any) {})
	s.Schedule(2, func(Time, any) {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Cancel(e1)
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", s.Pending())
	}
}
