package des

import "testing"

func TestRescheduleFiredEventRecreates(t *testing.T) {
	s := New()
	count := 0
	e := s.Schedule(1, func(Time) { count++ })
	s.RunAll()
	if count != 1 {
		t.Fatalf("event fired %d times, want 1", count)
	}
	// Rescheduling an already-fired event re-creates it with the same
	// handler.
	s.Reschedule(e, 5)
	s.RunAll()
	if count != 2 {
		t.Fatalf("recreated event did not fire: count=%d", count)
	}
}

func TestRescheduleKeepsFIFOFairness(t *testing.T) {
	s := New()
	var order []int
	a := s.Schedule(10, func(Time) { order = append(order, 1) })
	s.Schedule(10, func(Time) { order = append(order, 2) })
	// Rescheduling event 1 to the same instant moves it BEHIND event 2
	// (fresh sequence number): rescheduling is re-submission.
	s.Reschedule(a, 10)
	s.RunAll()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", order)
	}
}

func TestPendingCount(t *testing.T) {
	s := New()
	if s.Pending() != 0 {
		t.Fatalf("fresh simulator has %d pending", s.Pending())
	}
	e1 := s.Schedule(1, func(Time) {})
	s.Schedule(2, func(Time) {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Cancel(e1)
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", s.Pending())
	}
}
