// Package memmodel provides job-slowdown models for placements that
// serve part of a job's footprint from disaggregated memory.
//
// A model maps (remote fraction f, fabric congestion c) to a dilation
// factor D >= 1: a job whose base runtime is r completes r*D seconds of
// wall-clock work under constant conditions. Congestion c is the
// backing pool's demand/bandwidth ratio as accounted by package
// cluster; c > 1 means the fabric is oversubscribed.
//
// These parametric models substitute for the application profiling a
// hardware evaluation would use. They preserve the two behaviours a
// scheduler must reason about — dilation grows monotonically with the
// remote fraction, and with fabric contention — while the penalty
// coefficient β is swept across the CXL (≈0.25–0.5) to RDMA (≈1–3)
// regimes in the experiments.
package memmodel

import (
	"fmt"
	"strconv"
	"strings"
)

// Model computes a dilation factor for a placement.
type Model interface {
	// Dilation returns the runtime multiplier (>= 1) for a job with
	// remote fraction f in [0,1] under fabric congestion c >= 0.
	Dilation(f, c float64) float64
	// Name returns a short identifier for reports.
	Name() string
}

// Linear dilates runtime proportionally to the remote fraction:
//
//	D = 1 + Beta*f
//
// Beta is the full-remote penalty: Beta = 0.5 means an all-remote job
// runs 1.5x its base runtime. Congestion is ignored.
type Linear struct {
	Beta float64
}

// Dilation implements Model.
func (m Linear) Dilation(f, _ float64) float64 { return 1 + m.Beta*clamp01(f) }

// Name implements Model.
func (m Linear) Name() string { return fmt.Sprintf("linear(β=%.2g)", m.Beta) }

// Step adds a fixed software overhead the moment any page is remote
// (page-fault/driver cost), then grows linearly:
//
//	D = 1                      if f == 0
//	D = 1 + Beta0 + Beta*f     otherwise
type Step struct {
	Beta0, Beta float64
}

// Dilation implements Model.
func (m Step) Dilation(f, _ float64) float64 {
	f = clamp01(f)
	if f == 0 {
		return 1
	}
	return 1 + m.Beta0 + m.Beta*f
}

// Name implements Model.
func (m Step) Name() string { return fmt.Sprintf("step(β₀=%.2g,β=%.2g)", m.Beta0, m.Beta) }

// Bandwidth extends Linear with a fabric-contention term: when the
// backing pool's aggregate demand exceeds its bandwidth, every remote
// byte takes proportionally longer:
//
//	D = 1 + Beta*f*(1 + Gamma*max(0, c-1))
//
// With Gamma = 1 a 2x-oversubscribed fabric doubles the remote penalty.
// This is the model under which the simulator re-dilates running jobs
// as congestion changes (see internal/sim).
type Bandwidth struct {
	Beta, Gamma float64
}

// Dilation implements Model.
func (m Bandwidth) Dilation(f, c float64) float64 {
	f = clamp01(f)
	over := c - 1
	if over < 0 {
		over = 0
	}
	return 1 + m.Beta*f*(1+m.Gamma*over)
}

// Name implements Model.
func (m Bandwidth) Name() string { return fmt.Sprintf("bandwidth(β=%.2g,γ=%.2g)", m.Beta, m.Gamma) }

// ContentionSensitive reports whether the model's output depends on
// congestion, i.e. whether the simulator must re-dilate running jobs
// when allocations change.
func ContentionSensitive(m Model) bool {
	if m == nil {
		return false
	}
	return m.Dilation(1, 5) != m.Dilation(1, 0)
}

// Parse builds a model from a config string:
//
//	"linear:0.5"        Linear{Beta: 0.5}
//	"step:0.1,0.5"      Step{Beta0: 0.1, Beta: 0.5}
//	"bandwidth:0.5,1"   Bandwidth{Beta: 0.5, Gamma: 1}
func Parse(s string) (Model, error) {
	name, argstr, _ := strings.Cut(s, ":")
	var args []float64
	if argstr != "" {
		for _, p := range strings.Split(argstr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("memmodel: bad parameter %q in %q: %v", p, s, err)
			}
			args = append(args, v)
		}
	}
	switch name {
	case "linear":
		if len(args) != 1 {
			return nil, fmt.Errorf("memmodel: linear wants 1 parameter, got %d", len(args))
		}
		return Linear{Beta: args[0]}, nil
	case "step":
		if len(args) != 2 {
			return nil, fmt.Errorf("memmodel: step wants 2 parameters, got %d", len(args))
		}
		return Step{Beta0: args[0], Beta: args[1]}, nil
	case "bandwidth":
		if len(args) != 2 {
			return nil, fmt.Errorf("memmodel: bandwidth wants 2 parameters, got %d", len(args))
		}
		return Bandwidth{Beta: args[0], Gamma: args[1]}, nil
	default:
		return nil, fmt.Errorf("memmodel: unknown model %q", name)
	}
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
