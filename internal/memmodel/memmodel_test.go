package memmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearKnownValues(t *testing.T) {
	m := Linear{Beta: 0.5}
	cases := []struct{ f, want float64 }{
		{0, 1}, {1, 1.5}, {0.5, 1.25},
		{-1, 1}, {2, 1.5}, // clamped
	}
	for _, c := range cases {
		if got := m.Dilation(c.f, 0); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("linear(%g) = %g, want %g", c.f, got, c.want)
		}
	}
}

func TestStepKnownValues(t *testing.T) {
	m := Step{Beta0: 0.1, Beta: 0.5}
	if got := m.Dilation(0, 0); got != 1 {
		t.Fatalf("step(0) = %g, want exactly 1", got)
	}
	if got := m.Dilation(0.001, 0); got < 1.1 {
		t.Fatalf("step(ε) = %g, want >= 1.1 (fixed overhead)", got)
	}
	if got := m.Dilation(1, 0); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("step(1) = %g, want 1.6", got)
	}
}

func TestBandwidthKnownValues(t *testing.T) {
	m := Bandwidth{Beta: 0.5, Gamma: 1}
	// No congestion term until the fabric is oversubscribed.
	if got := m.Dilation(1, 0.9); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("bandwidth(f=1, c=0.9) = %g, want 1.5", got)
	}
	// 2x oversubscription doubles the remote penalty.
	if got := m.Dilation(1, 2); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("bandwidth(f=1, c=2) = %g, want 2.0", got)
	}
}

// TestDilationProperties: every model must return >= 1, be monotone in
// f, and (for Bandwidth) monotone in congestion.
func TestDilationProperties(t *testing.T) {
	models := []Model{
		Linear{Beta: 0.7},
		Step{Beta0: 0.2, Beta: 1.1},
		Bandwidth{Beta: 1.5, Gamma: 2},
	}
	check := func(rawF, rawC uint16) bool {
		f := float64(rawF) / math.MaxUint16     // [0,1]
		c := float64(rawC) / math.MaxUint16 * 4 // [0,4]
		f2 := math.Min(1, f+0.1)
		for _, m := range models {
			d := m.Dilation(f, c)
			if d < 1 {
				return false
			}
			if m.Dilation(f2, c) < d-1e-12 {
				return false // not monotone in f
			}
			if m.Dilation(f, c+0.5) < d-1e-12 {
				return false // not monotone in congestion
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestContentionSensitive(t *testing.T) {
	if ContentionSensitive(Linear{Beta: 1}) {
		t.Fatal("Linear reported contention-sensitive")
	}
	if ContentionSensitive(Step{Beta0: 0.1, Beta: 1}) {
		t.Fatal("Step reported contention-sensitive")
	}
	if !ContentionSensitive(Bandwidth{Beta: 1, Gamma: 1}) {
		t.Fatal("Bandwidth not reported contention-sensitive")
	}
	if ContentionSensitive(Bandwidth{Beta: 1, Gamma: 0}) {
		t.Fatal("Bandwidth with γ=0 must not be contention-sensitive")
	}
	if ContentionSensitive(nil) {
		t.Fatal("nil model reported contention-sensitive")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Model
	}{
		{"linear:0.5", Linear{Beta: 0.5}},
		{"step:0.1,0.5", Step{Beta0: 0.1, Beta: 0.5}},
		{"bandwidth:0.5,1", Bandwidth{Beta: 0.5, Gamma: 1}},
		{"linear: 2 ", Linear{Beta: 2}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "unknown:1", "linear", "linear:1,2", "step:1",
		"bandwidth:1", "linear:abc", "linear:",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestNames(t *testing.T) {
	for _, m := range []Model{
		Linear{Beta: 0.5}, Step{Beta0: 0.1, Beta: 0.5}, Bandwidth{Beta: 1, Gamma: 2},
	} {
		if m.Name() == "" || !strings.Contains(m.Name(), "(") {
			t.Errorf("uninformative model name %q", m.Name())
		}
	}
}
