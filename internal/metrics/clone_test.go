package metrics

import (
	"errors"
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/stats"
)

// synthRecord builds a deterministic pseudo-random job record stream.
func synthRecord(rng *stats.RNG, id int) JobRecord {
	sub := int64(id * 60)
	wait := rng.Int63n(4000)
	run := rng.Int63n(7000) + 10
	r := JobRecord{
		ID: id, User: id % 7, Nodes: 1 + id%5,
		Submit: sub, Start: sub + wait, End: sub + wait + run,
		Estimate: run + 100, Limit: run + 100,
		BaseRuntime: run, MemPerNode: 1024,
		Dilation: 1,
	}
	if id%3 == 0 {
		r.RemoteMiB = 512
		r.RemoteFrac = 0.5
		r.Dilation = 1 + rng.Float64()
	}
	return r
}

// TestBoundedPercentilesExactForSmallStreams pins the satellite bugfix:
// for streams up to stats.ExactQuantileBuffer jobs, the bounded
// recorder's four percentile fields must equal the retain-all
// recorder's exactly, not approximately.
func TestBoundedPercentilesExactForSmallStreams(t *testing.T) {
	cfg := cluster.DefaultConfig()
	for _, n := range []int{1, 7, 100, stats.ExactQuantileBuffer} {
		exact, bounded := NewRecorder(), NewBoundedRecorder()
		rng1, rng2 := stats.NewRNG(5), stats.NewRNG(5)
		for i := 1; i <= n; i++ {
			exact.Add(synthRecord(rng1, i))
			bounded.Add(synthRecord(rng2, i))
		}
		re, rb := exact.Report(cfg), bounded.Report(cfg)
		if re.P95Wait != rb.P95Wait || re.P99Wait != rb.P99Wait {
			t.Fatalf("n=%d: wait percentiles exact=%v/%v bounded=%v/%v",
				n, re.P95Wait, re.P99Wait, rb.P95Wait, rb.P99Wait)
		}
		if re.P95BSld != rb.P95BSld {
			t.Fatalf("n=%d: P95BSld exact=%v bounded=%v", n, re.P95BSld, rb.P95BSld)
		}
		if re.P95DilationRemote != rb.P95DilationRemote {
			t.Fatalf("n=%d: P95DilationRemote exact=%v bounded=%v",
				n, re.P95DilationRemote, rb.P95DilationRemote)
		}
	}
}

// TestRecorderCloneBothModes verifies the checkpoint contract: a clone
// carries identical state, produces an identical report for identical
// suffixes, and never shares mutable state with the original.
func TestRecorderCloneBothModes(t *testing.T) {
	cfg := cluster.DefaultConfig()
	for _, bounded := range []bool{false, true} {
		rec := NewRecorder()
		if bounded {
			rec = NewBoundedRecorder()
		}
		rng := stats.NewRNG(13)
		u := cluster.Usage{BusyNodes: 10, UsedLocal: 4096, UsedPool: 1024, PoolDemand: 2}
		for i := 1; i <= 200; i++ {
			rec.Observe(int64(i*30), u)
			rec.OnSubmit(int64(i * 30))
			rec.Add(synthRecord(rng, i))
		}
		c := rec.Clone()

		// Identical suffixes on both must keep reports identical.
		rngA, rngB := stats.NewRNG(17), stats.NewRNG(17)
		for i := 201; i <= 300; i++ {
			rec.Observe(int64(i*30), u)
			rec.Add(synthRecord(rngA, i))
			c.Observe(int64(i*30), u)
			c.Add(synthRecord(rngB, i))
		}
		ra, rb := rec.Report(cfg), c.Report(cfg)
		if *ra != *rb {
			t.Fatalf("bounded=%v: reports diverged on identical suffix:\n%+v\n%+v", bounded, ra, rb)
		}
		fa, fb := rec.Fairness(), c.Fairness()
		if fa.JainWait != fb.JainWait || fa.GiniNodeHours != fb.GiniNodeHours {
			t.Fatalf("bounded=%v: fairness diverged", bounded)
		}

		// Divergent suffix must not leak.
		before := rec.Report(cfg).Completed
		c.Add(synthRecord(stats.NewRNG(99), 999))
		if rec.Report(cfg).Completed != before {
			t.Fatalf("bounded=%v: clone Add leaked into original", bounded)
		}
		if !bounded {
			recs := rec.Records()
			if len(recs) == len(c.Records()) {
				t.Fatalf("bounded=%v: record slices still coupled", bounded)
			}
		}
	}
}

// errorSink fails on Close, to pin error latching.
type errorSink struct{ closes int }

func (s *errorSink) Add(JobRecord) {}
func (s *errorSink) Close() error {
	s.closes++
	return errors.New("disk full")
}

// TestCloseSinkIdempotent pins the satellite bugfix: CloseSink closes
// the sink exactly once, and every later call reports the same result
// without re-closing.
func TestCloseSinkIdempotent(t *testing.T) {
	rec := NewBoundedRecorder()
	s := &errorSink{}
	rec.SetSink(s)
	err1 := rec.CloseSink()
	err2 := rec.CloseSink()
	if s.closes != 1 {
		t.Fatalf("sink closed %d times, want 1", s.closes)
	}
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("close errors %v / %v, want the same latched error", err1, err2)
	}
	// A clone must not inherit the closed sink (or its latched error).
	c := rec.Clone()
	if err := c.CloseSink(); err != nil {
		t.Fatalf("clone CloseSink: %v, want nil (no sink)", err)
	}
}
