package metrics

import (
	"sort"

	"dismem/internal/stats"
)

// UserStats aggregates one user's outcomes for fairness analysis.
type UserStats struct {
	User      int
	Jobs      int
	MeanWait  float64
	MeanBSld  float64
	NodeHours float64
}

// FairnessReport captures how evenly the system treated its users: the
// standard complaint against aggressive backfilling and against
// memory-aware admission (large-memory users could starve).
type FairnessReport struct {
	Users []UserStats
	// JainWait is Jain's fairness index over per-user mean waits
	// inverted into "service speed" (1/(1+wait)); 1 means every user
	// experienced the same mean wait.
	JainWait float64
	// GiniNodeHours measures inequality of delivered node-hours. Note
	// that demand itself is unequal, so this is descriptive rather
	// than normative.
	GiniNodeHours float64
	// WorstUserMeanWait and BestUserMeanWait bracket the spread.
	WorstUserMeanWait, BestUserMeanWait float64
}

// userAcc is one user's incremental fairness tally, maintained by
// Recorder.Add in both modes — O(users) memory, so per-user fairness
// survives bounded (non-retaining) runs. The accumulation order is the
// record order, exactly what a scan over retained records would sum.
type userAcc struct {
	jobs      int
	wait      float64
	bsld      float64
	nodeHours float64
}

// tallyUser folds one record into the per-user accumulators.
func (rec *Recorder) tallyUser(r JobRecord) {
	if r.Rejected {
		return
	}
	a := rec.byUser[r.User]
	if a == nil {
		a = &userAcc{}
		rec.byUser[r.User] = a
	}
	a.jobs++
	a.wait += float64(r.Wait())
	a.bsld += r.BoundedSlowdown()
	a.nodeHours += float64(r.Nodes) * float64(r.Runtime()) / 3600
}

// Fairness reduces the recorder's per-user tallies to fairness
// statistics. Rejected jobs are excluded (they carry no wait). Users
// with no completed jobs do not appear. Works in both recorder modes.
func (rec *Recorder) Fairness() *FairnessReport {
	fr := &FairnessReport{}
	var speeds, hours []float64
	for user, a := range rec.byUser {
		us := UserStats{
			User:      user,
			Jobs:      a.jobs,
			MeanWait:  a.wait / float64(a.jobs),
			MeanBSld:  a.bsld / float64(a.jobs),
			NodeHours: a.nodeHours,
		}
		fr.Users = append(fr.Users, us)
	}
	sort.Slice(fr.Users, func(i, j int) bool { return fr.Users[i].User < fr.Users[j].User })
	for i, us := range fr.Users {
		speeds = append(speeds, 1/(1+us.MeanWait))
		hours = append(hours, us.NodeHours)
		if i == 0 || us.MeanWait > fr.WorstUserMeanWait {
			fr.WorstUserMeanWait = us.MeanWait
		}
		if i == 0 || us.MeanWait < fr.BestUserMeanWait {
			fr.BestUserMeanWait = us.MeanWait
		}
	}
	fr.JainWait = stats.JainIndex(speeds)
	fr.GiniNodeHours = stats.Gini(hours)
	return fr
}
