package metrics

import (
	"math"
	"testing"
)

func addJob(rec *Recorder, id, user, nodes int, submit, start, end int64) {
	rec.Add(JobRecord{
		ID: id, User: user, Nodes: nodes,
		Submit: submit, Start: start, End: end, Dilation: 1,
	})
}

func TestFairnessPerUserAggregation(t *testing.T) {
	rec := NewRecorder()
	// User 1: waits 10 and 30 (mean 20); user 2: wait 0.
	addJob(rec, 1, 1, 2, 0, 10, 110)
	addJob(rec, 2, 1, 4, 100, 130, 230)
	addJob(rec, 3, 2, 1, 50, 50, 150)
	rec.Add(JobRecord{ID: 4, User: 3, Rejected: true}) // excluded

	fr := rec.Fairness()
	if len(fr.Users) != 2 {
		t.Fatalf("users = %d, want 2 (rejected-only user excluded)", len(fr.Users))
	}
	u1, u2 := fr.Users[0], fr.Users[1]
	if u1.User != 1 || u2.User != 2 {
		t.Fatalf("user order = %d,%d", u1.User, u2.User)
	}
	if u1.Jobs != 2 || u1.MeanWait != 20 {
		t.Fatalf("user1 = %+v", u1)
	}
	if u2.MeanWait != 0 {
		t.Fatalf("user2 mean wait = %g", u2.MeanWait)
	}
	// Node-hours: user1 = (2*100 + 4*100)/3600, user2 = 100/3600.
	if want := 600.0 / 3600; math.Abs(u1.NodeHours-want) > 1e-12 {
		t.Fatalf("user1 node-hours = %g, want %g", u1.NodeHours, want)
	}
	if fr.WorstUserMeanWait != 20 || fr.BestUserMeanWait != 0 {
		t.Fatalf("spread = [%g,%g], want [0,20]", fr.BestUserMeanWait, fr.WorstUserMeanWait)
	}
}

func TestFairnessIndices(t *testing.T) {
	// Perfectly equal users → Jain 1, equal node-hours → Gini 0.
	rec := NewRecorder()
	addJob(rec, 1, 1, 1, 0, 5, 105)
	addJob(rec, 2, 2, 1, 0, 5, 105)
	fr := rec.Fairness()
	if math.Abs(fr.JainWait-1) > 1e-12 {
		t.Fatalf("JainWait = %g, want 1 for identical users", fr.JainWait)
	}
	if math.Abs(fr.GiniNodeHours) > 1e-12 {
		t.Fatalf("GiniNodeHours = %g, want 0", fr.GiniNodeHours)
	}

	// Extremely unequal waits → Jain well below 1.
	rec2 := NewRecorder()
	addJob(rec2, 1, 1, 1, 0, 0, 100)         // wait 0
	addJob(rec2, 2, 2, 1, 0, 100000, 100100) // wait 1e5
	fr2 := rec2.Fairness()
	if fr2.JainWait > 0.6 {
		t.Fatalf("JainWait = %g for maximally unequal users, want << 1", fr2.JainWait)
	}
}

func TestFairnessEmpty(t *testing.T) {
	fr := NewRecorder().Fairness()
	if len(fr.Users) != 0 || fr.JainWait != 0 {
		t.Fatalf("empty fairness = %+v", fr)
	}
}
