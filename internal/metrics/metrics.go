// Package metrics collects per-job records and time-weighted resource
// series from a simulation and reduces them to the report quantities
// the paper's tables and figures are built from: wait time, bounded
// slowdown, utilization, throughput, dilation, and their distributions.
package metrics

import (
	"dismem/internal/cluster"
	"dismem/internal/stats"
)

// BoundedSlowdownFloor is the runtime floor (seconds) in the standard
// bounded-slowdown metric, preventing sub-second jobs from dominating.
const BoundedSlowdownFloor = 10

// JobRecord is the outcome of one job.
type JobRecord struct {
	ID     int
	User   int
	Nodes  int
	Submit int64
	// Start and End are 0/meaningless when Rejected.
	Start, End int64
	// Estimate and Limit are the user walltime request and the
	// (possibly dilation-extended) enforced limit.
	Estimate, Limit int64
	// BaseRuntime is ground truth on all-local memory.
	BaseRuntime int64
	// MemPerNode is the per-node footprint in MiB.
	MemPerNode int64
	// RemoteMiB is the pool memory held; RemoteFrac the fraction of the
	// footprint that was remote.
	RemoteMiB  int64
	RemoteFrac float64
	// Dilation is the runtime multiplier observed at start.
	Dilation float64
	// Killed marks jobs terminated at the limit; Rejected marks jobs
	// that could never run on the machine and were refused at submit.
	Killed, Rejected bool
	// Restarts counts how many times node failures killed and
	// resubmitted the job before this final record.
	Restarts int
}

// Wait returns start-submit (0 when rejected).
func (r *JobRecord) Wait() int64 {
	if r.Rejected {
		return 0
	}
	return r.Start - r.Submit
}

// Response returns end-submit.
func (r *JobRecord) Response() int64 { return r.End - r.Submit }

// Runtime returns the wall-clock execution time.
func (r *JobRecord) Runtime() int64 { return r.End - r.Start }

// BoundedSlowdown returns max(1, (wait+runtime)/max(runtime, floor)).
func (r *JobRecord) BoundedSlowdown() float64 {
	rt := r.Runtime()
	den := rt
	if den < BoundedSlowdownFloor {
		den = BoundedSlowdownFloor
	}
	s := float64(r.Wait()+rt) / float64(den)
	if s < 1 {
		return 1
	}
	return s
}

// Recorder accumulates job records and resource-usage integrals. Create
// with NewRecorder (retain-all: per-job records are kept for CDFs and
// custom reductions, O(jobs) memory) or NewBoundedRecorder (streaming:
// records are reduced online — exact counts/means, hybrid percentile
// estimates — and Records returns nil; memory is O(users), independent
// of job count). Feed Observe before every machine state change; an
// optional Sink additionally receives every record as it is added.
//
// Memory bounds (DESIGN.md §7): the usage integrals and makespan
// tracking are O(1) in both modes — Observe never retains samples, it
// integrates them — and the per-user fairness tallies are O(users).
// Only the record slice scales with job count, and only in retain mode.
type Recorder struct {
	retain  bool
	records []JobRecord
	agg     *Aggregate // bounded-mode online reduction (nil when retaining)
	sink    Sink       // optional streaming consumer of every record
	byUser  map[int]*userAcc

	// sinkClosed latches the first CloseSink so every engine exit path
	// (Finish, Stop+Finish, start and source errors) can close
	// unconditionally without double-flushing, and later calls report
	// the same outcome.
	sinkClosed bool
	closeErr   error

	lastT     int64
	haveT     bool
	nodeInt   float64 // node-seconds busy
	localInt  float64 // MiB-seconds of local DRAM
	poolInt   float64 // MiB-seconds of pool
	demandInt float64 // GiB/s-seconds of fabric demand

	firstSubmit, lastEnd int64
	haveSubmit           bool
}

// NewRecorder returns an empty retain-all recorder.
func NewRecorder() *Recorder {
	return &Recorder{retain: true, byUser: map[int]*userAcc{}}
}

// NewBoundedRecorder returns a recorder whose memory is independent of
// job count: per-job records feed online aggregates (and the sink, when
// set) instead of being retained. Report is exact except for the four
// percentile fields, which come from hybrid estimators — exact up to
// stats.ExactQuantileBuffer observations, P² estimates beyond.
func NewBoundedRecorder() *Recorder {
	return &Recorder{agg: NewAggregate(), byUser: map[int]*userAcc{}}
}

// Bounded reports whether the recorder runs in bounded (non-retaining)
// mode.
func (rec *Recorder) Bounded() bool { return !rec.retain }

// SetSink streams every subsequent record to s as well. The caller (or
// the engine, at Finish) is responsible for Close.
func (rec *Recorder) SetSink(s Sink) {
	rec.sink = s
	rec.sinkClosed = false
	rec.closeErr = nil
}

// CloseSink closes the attached sink, if any, flushing buffered output.
// It is idempotent: the first call closes, later calls return the same
// error (or nil) without re-flushing.
func (rec *Recorder) CloseSink() error {
	if rec.sink == nil {
		return nil
	}
	if !rec.sinkClosed {
		rec.sinkClosed = true
		rec.closeErr = rec.sink.Close()
	}
	return rec.closeErr
}

// Clone returns an independent deep copy of the recorder's state —
// retained records, online aggregates, per-user fairness tallies and
// usage integrals — for simulation checkpointing. The sink is NOT
// carried over: a sink is a live external writer that cannot be
// duplicated, so the clone starts sinkless and the forked run attaches
// its own (or metrics.Discard).
func (rec *Recorder) Clone() *Recorder {
	c := &Recorder{
		retain:      rec.retain,
		records:     append([]JobRecord(nil), rec.records...),
		byUser:      make(map[int]*userAcc, len(rec.byUser)),
		lastT:       rec.lastT,
		haveT:       rec.haveT,
		nodeInt:     rec.nodeInt,
		localInt:    rec.localInt,
		poolInt:     rec.poolInt,
		demandInt:   rec.demandInt,
		firstSubmit: rec.firstSubmit,
		lastEnd:     rec.lastEnd,
		haveSubmit:  rec.haveSubmit,
	}
	if rec.agg != nil {
		c.agg = rec.agg.Clone()
	}
	for u, a := range rec.byUser {
		acc := *a
		c.byUser[u] = &acc
	}
	return c
}

// Observe integrates current usage up to time now. Call it with the
// pre-change usage before every allocation or release, and once at the
// end of the simulation.
func (rec *Recorder) Observe(now int64, u cluster.Usage) {
	if rec.haveT && now > rec.lastT {
		dt := float64(now - rec.lastT)
		rec.nodeInt += dt * float64(u.BusyNodes)
		rec.localInt += dt * float64(u.UsedLocal)
		rec.poolInt += dt * float64(u.UsedPool)
		rec.demandInt += dt * u.PoolDemand
	}
	rec.lastT = now
	rec.haveT = true
}

// OnSubmit notes a job arrival for makespan accounting.
func (rec *Recorder) OnSubmit(now int64) {
	if !rec.haveSubmit || now < rec.firstSubmit {
		rec.firstSubmit = now
		rec.haveSubmit = true
	}
	if !rec.haveT {
		rec.lastT = now
		rec.haveT = true
	}
}

// Add records a finished (or rejected) job: retained or reduced online
// per the recorder's mode, streamed to the sink when one is attached,
// and tallied into the per-user fairness accumulators either way.
func (rec *Recorder) Add(r JobRecord) {
	if rec.sink != nil {
		rec.sink.Add(r)
	}
	if rec.retain {
		rec.records = append(rec.records, r)
	} else {
		rec.agg.Add(r)
	}
	rec.tallyUser(r)
	if !r.Rejected && r.End > rec.lastEnd {
		rec.lastEnd = r.End
	}
}

// Records returns a copy of the job records, so callers can sort or
// mutate freely without corrupting recorder state. It returns nil for
// a bounded recorder (nothing is retained).
func (rec *Recorder) Records() []JobRecord {
	if len(rec.records) == 0 {
		return nil
	}
	return append([]JobRecord(nil), rec.records...)
}

// Report reduces the recorder to summary metrics for a machine built
// from cfg.
func (rec *Recorder) Report(cfg cluster.Config) *Report {
	rp := &Report{
		FirstSubmit: rec.firstSubmit,
		LastEnd:     rec.lastEnd,
	}
	if rec.retain {
		rec.exactReport(rp)
	} else {
		rec.agg.fillReport(rp)
	}
	n := rp.Completed + rp.Killed
	if n > 0 {
		rp.RemoteJobFraction = float64(rp.RemoteJobs) / float64(n)
	}

	makespan := rec.lastEnd - rec.firstSubmit
	rp.MakespanSec = makespan
	if makespan > 0 {
		span := float64(makespan)
		rp.NodeUtil = rec.nodeInt / (span * float64(cfg.TotalNodes()))
		if cap := cfg.TotalLocalMiB(); cap > 0 {
			rp.LocalMemUtil = rec.localInt / (span * float64(cap))
		}
		if cap := cfg.TotalPoolMiB(); cap > 0 {
			rp.PoolUtil = rec.poolInt / (span * float64(cap))
		}
		rp.MeanFabricDemand = rec.demandInt / span
		rp.ThroughputPerHour = float64(n) / (span / 3600)
	}
	return rp
}

// exactReport fills the per-job share of a report from the retained
// records: exact percentiles from fully materialised arrays.
func (rec *Recorder) exactReport(rp *Report) {
	var waits, bslds []float64
	var remoteDils []float64
	for i := range rec.records {
		r := &rec.records[i]
		switch {
		case r.Rejected:
			rp.Rejected++
			continue
		case r.Killed:
			rp.Killed++
		default:
			rp.Completed++
		}
		rp.NodeHours += float64(r.Nodes) * float64(r.Runtime()) / 3600
		waits = append(waits, float64(r.Wait()))
		bslds = append(bslds, r.BoundedSlowdown())
		rp.Wait.Add(float64(r.Wait()))
		rp.Response.Add(float64(r.Response()))
		rp.BSld.Add(r.BoundedSlowdown())
		rp.DilationAll.Add(r.Dilation)
		if r.RemoteMiB > 0 {
			rp.RemoteJobs++
			remoteDils = append(remoteDils, r.Dilation)
			rp.DilationRemote.Add(r.Dilation)
		}
	}
	rp.P95Wait = stats.Percentile(waits, 95)
	rp.P99Wait = stats.Percentile(waits, 99)
	rp.P95BSld = stats.Percentile(bslds, 95)
	rp.P95DilationRemote = stats.Percentile(remoteDils, 95)
}

// Report is the reduced result of one simulation run.
type Report struct {
	Completed, Killed, Rejected int
	RemoteJobs                  int
	RemoteJobFraction           float64

	Wait, Response, BSld         stats.Online
	DilationAll, DilationRemote  stats.Online
	P95Wait, P99Wait             float64
	P95BSld, P95DilationRemote   float64
	NodeUtil                     float64
	LocalMemUtil, PoolUtil       float64
	MeanFabricDemand             float64
	ThroughputPerHour, NodeHours float64
	MakespanSec                  int64
	FirstSubmit, LastEnd         int64

	// NodeFailures and FailureKills are populated by the engine when
	// failure injection is enabled.
	NodeFailures, FailureKills int
}

// Jobs returns the number of non-rejected jobs in the report.
func (r *Report) Jobs() int { return r.Completed + r.Killed }

// KilledFraction returns killed/(completed+killed), or 0 when empty.
func (r *Report) KilledFraction() float64 {
	if n := r.Jobs(); n > 0 {
		return float64(r.Killed) / float64(n)
	}
	return 0
}
