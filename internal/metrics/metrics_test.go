package metrics

import (
	"math"
	"testing"

	"dismem/internal/cluster"
)

func TestJobRecordDerived(t *testing.T) {
	r := JobRecord{Submit: 100, Start: 150, End: 400}
	if r.Wait() != 50 {
		t.Fatalf("Wait = %d, want 50", r.Wait())
	}
	if r.Runtime() != 250 {
		t.Fatalf("Runtime = %d, want 250", r.Runtime())
	}
	if r.Response() != 300 {
		t.Fatalf("Response = %d, want 300", r.Response())
	}
	// bsld = (50+250)/250 = 1.2
	if got := r.BoundedSlowdown(); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("BoundedSlowdown = %g, want 1.2", got)
	}
}

func TestBoundedSlowdownFloor(t *testing.T) {
	// 2-second job that waited 20s: floor of 10s applies.
	r := JobRecord{Submit: 0, Start: 20, End: 22}
	want := 22.0 / 10
	if got := r.BoundedSlowdown(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("BoundedSlowdown = %g, want %g", got, want)
	}
	// Never below 1.
	r2 := JobRecord{Submit: 0, Start: 0, End: 2}
	if got := r2.BoundedSlowdown(); got != 1 {
		t.Fatalf("BoundedSlowdown = %g, want 1", got)
	}
}

func TestRejectedRecordWait(t *testing.T) {
	r := JobRecord{Submit: 100, Rejected: true}
	if r.Wait() != 0 {
		t.Fatalf("rejected wait = %d, want 0", r.Wait())
	}
}

func TestRecorderIntegration(t *testing.T) {
	cfg := cluster.Config{
		Racks: 1, NodesPerRack: 4, CoresPerNode: 8, LocalMemMiB: 1000,
		Topology: cluster.TopologyRack, PoolMiB: 4000, FabricGiBps: 10,
	}
	rec := NewRecorder()
	rec.OnSubmit(0)
	// Interval [0,100): 2 busy nodes, 500 MiB local, 1000 MiB pool.
	rec.Observe(0, cluster.Usage{})
	rec.Observe(100, cluster.Usage{BusyNodes: 2, UsedLocal: 500, UsedPool: 1000, PoolDemand: 3})
	// Interval [100,200): idle.
	rec.Observe(200, cluster.Usage{})
	rec.Add(JobRecord{ID: 1, Nodes: 2, Submit: 0, Start: 0, End: 100,
		Estimate: 100, Limit: 100, BaseRuntime: 100, RemoteMiB: 1000, RemoteFrac: 0.5, Dilation: 1.5})
	rec.Add(JobRecord{ID: 2, Nodes: 1, Submit: 0, Start: 100, End: 200,
		Estimate: 100, Limit: 100, BaseRuntime: 100, Dilation: 1})

	rp := rec.Report(cfg)
	if rp.Completed != 2 || rp.Killed != 0 || rp.Rejected != 0 {
		t.Fatalf("counts = %+v", rp)
	}
	// Node integral = 2 nodes * 100 s over a 200 s span of 4 nodes.
	if want := 200.0 / 800; math.Abs(rp.NodeUtil-want) > 1e-12 {
		t.Fatalf("NodeUtil = %g, want %g", rp.NodeUtil, want)
	}
	if want := 500.0 * 100 / (200 * 4000); math.Abs(rp.LocalMemUtil-want) > 1e-12 {
		t.Fatalf("LocalMemUtil = %g, want %g", rp.LocalMemUtil, want)
	}
	if want := 1000.0 * 100 / (200 * 4000); math.Abs(rp.PoolUtil-want) > 1e-12 {
		t.Fatalf("PoolUtil = %g, want %g", rp.PoolUtil, want)
	}
	if want := 3.0 * 100 / 200; math.Abs(rp.MeanFabricDemand-want) > 1e-12 {
		t.Fatalf("MeanFabricDemand = %g, want %g", rp.MeanFabricDemand, want)
	}
	if rp.RemoteJobs != 1 || math.Abs(rp.RemoteJobFraction-0.5) > 1e-12 {
		t.Fatalf("remote jobs = %d (%g)", rp.RemoteJobs, rp.RemoteJobFraction)
	}
	if math.Abs(rp.DilationRemote.Mean()-1.5) > 1e-12 {
		t.Fatalf("remote dilation mean = %g, want 1.5", rp.DilationRemote.Mean())
	}
	// Throughput: 2 jobs over 200 s = 36 jobs/h.
	if math.Abs(rp.ThroughputPerHour-36) > 1e-9 {
		t.Fatalf("throughput = %g, want 36", rp.ThroughputPerHour)
	}
	// Node-hours: (2*100 + 1*100)/3600.
	if want := 300.0 / 3600; math.Abs(rp.NodeHours-want) > 1e-12 {
		t.Fatalf("node-hours = %g, want %g", rp.NodeHours, want)
	}
	if rp.MakespanSec != 200 {
		t.Fatalf("makespan = %d, want 200", rp.MakespanSec)
	}
}

func TestReportKilledFraction(t *testing.T) {
	rec := NewRecorder()
	rec.OnSubmit(0)
	rec.Add(JobRecord{ID: 1, Nodes: 1, Start: 0, End: 10, Dilation: 1})
	rec.Add(JobRecord{ID: 2, Nodes: 1, Start: 0, End: 10, Dilation: 1, Killed: true})
	rec.Add(JobRecord{ID: 3, Rejected: true, Dilation: 1})
	rp := rec.Report(cluster.BaselineConfig(1000))
	if rp.Jobs() != 2 {
		t.Fatalf("Jobs() = %d, want 2 (rejected excluded)", rp.Jobs())
	}
	if rp.KilledFraction() != 0.5 {
		t.Fatalf("KilledFraction = %g, want 0.5", rp.KilledFraction())
	}
	var empty Report
	if empty.KilledFraction() != 0 {
		t.Fatal("empty KilledFraction must be 0")
	}
}

func TestRecorderObserveBeforeFirstInterval(t *testing.T) {
	rec := NewRecorder()
	// First Observe only sets the clock; no integration happens.
	rec.Observe(50, cluster.Usage{BusyNodes: 100})
	rec.Observe(60, cluster.Usage{BusyNodes: 2})
	rec.OnSubmit(50)
	rec.Add(JobRecord{ID: 1, Nodes: 2, Submit: 50, Start: 50, End: 60, Dilation: 1})
	rp := rec.Report(cluster.BaselineConfig(1000))
	// 2 nodes * 10 s over 10 s * 256 nodes.
	want := 20.0 / (10 * 256)
	if math.Abs(rp.NodeUtil-want) > 1e-12 {
		t.Fatalf("NodeUtil = %g, want %g", rp.NodeUtil, want)
	}
}

func TestReportEmptyRecorder(t *testing.T) {
	rp := NewRecorder().Report(cluster.BaselineConfig(1000))
	if rp.Jobs() != 0 || rp.NodeUtil != 0 || rp.ThroughputPerHour != 0 {
		t.Fatalf("empty report = %+v", rp)
	}
}
