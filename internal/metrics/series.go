package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// SeriesPoint is one row of a utilization time series: the engine's
// periodic sample flattened to plain serializable numbers. It carries
// the same quantities Observer.OnSample delivers — clock, backlog,
// occupancy, fired events — plus the per-pool usage breakdown, so a
// sink never needs to reach back into live machine state.
type SeriesPoint struct {
	// Now is the virtual clock in seconds since simulation start.
	Now int64
	// QueueDepth is the number of jobs waiting to be dispatched.
	QueueDepth int
	// Running is the number of jobs currently holding resources.
	Running int
	// Done counts jobs that reached a terminal state so far.
	Done int
	// Events is the number of DES events fired so far.
	Events uint64

	// Machine occupancy at the sample instant.
	BusyNodes    int
	UsedCores    int
	UsedLocalMiB int64
	UsedPoolMiB  int64
	// PoolDemandGiBps is the aggregate fabric demand across pools.
	PoolDemandGiBps float64
	// MaxPoolUtil is the max over pools of used/capacity.
	MaxPoolUtil float64
	// MaxCongest is the max over pools of demand/bandwidth.
	MaxCongest float64

	// Pools is the per-pool usage breakdown, ascending by pool ID
	// (empty on pool-less machines).
	Pools []PoolPoint
}

// PoolPoint is one pool's share of a SeriesPoint.
type PoolPoint struct {
	ID          int     `json:"id"`
	UsedMiB     int64   `json:"used_mib"`
	CapacityMiB int64   `json:"cap_mib"`
	DemandGiBps float64 `json:"demand_gibps"`
}

// SeriesSink consumes periodic sample rows as the simulation produces
// them: the time-series analogue of the per-job record Sink. A
// SeriesSink is driven from the single simulation goroutine; Close
// flushes buffered output and reports the first write error. The
// engine closes its configured sink exactly once, on every terminal
// path of the run.
type SeriesSink interface {
	Add(p SeriesPoint)
	Close() error
}

// DiscardSeries is the SeriesSink that drops every point.
var DiscardSeries SeriesSink = discardSeries{}

type discardSeries struct{}

func (discardSeries) Add(SeriesPoint) {}
func (discardSeries) Close() error    { return nil }

// SeriesStreamSink encodes each sample as one line — JSONL or CSV — to
// a buffered writer, with the same discipline as StreamSink: the first
// write error latches (subsequent Adds are no-ops, Close reports it)
// and the sink never closes the underlying writer.
type SeriesStreamSink struct {
	bw       *bufio.Writer
	csv      bool
	headered bool
	err      error
}

// NewJSONLSeriesSink returns a sink writing one JSON object per sample
// line.
func NewJSONLSeriesSink(w io.Writer) *SeriesStreamSink {
	return &SeriesStreamSink{bw: bufio.NewWriter(w)}
}

// NewCSVSeriesSink returns a sink writing a header row plus one CSV
// row per sample. The per-pool breakdown flattens into a single
// "pools" column of ';'-joined id=used/cap entries.
func NewCSVSeriesSink(w io.Writer) *SeriesStreamSink {
	return &SeriesStreamSink{bw: bufio.NewWriter(w), csv: true}
}

// jsonSeriesPoint fixes the export schema (and field order)
// independently of the in-memory SeriesPoint layout.
type jsonSeriesPoint struct {
	Now             int64       `json:"now"`
	QueueDepth      int         `json:"queue_depth"`
	Running         int         `json:"running"`
	Done            int         `json:"done"`
	Events          uint64      `json:"events"`
	BusyNodes       int         `json:"busy_nodes"`
	UsedCores       int         `json:"used_cores"`
	UsedLocalMiB    int64       `json:"used_local_mib"`
	UsedPoolMiB     int64       `json:"used_pool_mib"`
	PoolDemandGiBps float64     `json:"pool_demand_gibps"`
	MaxPoolUtil     float64     `json:"max_pool_util"`
	MaxCongest      float64     `json:"max_congest"`
	Pools           []PoolPoint `json:"pools,omitempty"`
}

// seriesCSVHeader matches jsonSeriesPoint's field order.
const seriesCSVHeader = "now,queue_depth,running,done,events,busy_nodes,used_cores,used_local_mib,used_pool_mib,pool_demand_gibps,max_pool_util,max_congest,pools"

// Add implements SeriesSink.
func (s *SeriesStreamSink) Add(p SeriesPoint) {
	if s.err != nil {
		return
	}
	if s.csv {
		if !s.headered {
			s.headered = true
			if _, err := fmt.Fprintln(s.bw, seriesCSVHeader); err != nil {
				s.err = err
				return
			}
		}
		var pools strings.Builder
		for i, pp := range p.Pools {
			if i > 0 {
				pools.WriteByte(';')
			}
			fmt.Fprintf(&pools, "%d=%d/%d", pp.ID, pp.UsedMiB, pp.CapacityMiB)
		}
		_, err := fmt.Fprintf(s.bw, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g,%g,%s\n",
			p.Now, p.QueueDepth, p.Running, p.Done, p.Events,
			p.BusyNodes, p.UsedCores, p.UsedLocalMiB, p.UsedPoolMiB,
			p.PoolDemandGiBps, p.MaxPoolUtil, p.MaxCongest, pools.String())
		s.err = err
		return
	}
	blob, err := json.Marshal(jsonSeriesPoint{
		Now: p.Now, QueueDepth: p.QueueDepth, Running: p.Running,
		Done: p.Done, Events: p.Events,
		BusyNodes: p.BusyNodes, UsedCores: p.UsedCores,
		UsedLocalMiB: p.UsedLocalMiB, UsedPoolMiB: p.UsedPoolMiB,
		PoolDemandGiBps: p.PoolDemandGiBps, MaxPoolUtil: p.MaxPoolUtil,
		MaxCongest: p.MaxCongest, Pools: p.Pools,
	})
	if err != nil {
		s.err = err
		return
	}
	blob = append(blob, '\n')
	_, s.err = s.bw.Write(blob)
}

// Close implements SeriesSink: it flushes and returns the first error.
func (s *SeriesStreamSink) Close() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}
