package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dismem/internal/stats"
)

// Sink consumes per-job records as the simulation produces them: the
// bounded-memory alternative to the Recorder's retain-all slice. A
// Sink is driven from the single simulation goroutine; Close flushes
// buffered output and reports the first write error. The engine closes
// its configured sink at Finish.
type Sink interface {
	Add(r JobRecord)
	Close() error
}

// Discard is the sink that drops every record: bounded recording with
// no streamed output (the online aggregates in the Recorder still
// produce a full Report).
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Add(JobRecord) {}
func (discardSink) Close() error  { return nil }

// Aggregate reduces a job-record stream to the Report's per-job
// quantities in bounded memory: exact counts, means, min/max and
// variance via stats.Online — the identical accumulation the
// retain-all path performs — plus hybrid percentile estimators for the
// wait, slowdown and dilation percentiles the exact path computes from
// retained arrays. The hybrid estimators (stats.Quantile) are exact up
// to stats.ExactQuantileBuffer observations — so small bounded runs
// report the same percentiles a retain-all run would — and switch to
// the O(1)-memory P² approximation beyond, bit-identical there to a
// pure P² stream. It is both the Recorder's bounded-mode core and a
// standalone Sink.
type Aggregate struct {
	Completed, Killed, Rejected int
	RemoteJobs                  int
	NodeHours                   float64

	Wait, Response, BSld        stats.Online
	DilationAll, DilationRemote stats.Online

	p95Wait, p99Wait, p95BSld, p95DilRemote *stats.Quantile
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		p95Wait:      stats.NewQuantile(0.95),
		p99Wait:      stats.NewQuantile(0.99),
		p95BSld:      stats.NewQuantile(0.95),
		p95DilRemote: stats.NewQuantile(0.95),
	}
}

// Clone returns an independent deep copy, the bounded-mode half of
// recorder checkpointing.
func (a *Aggregate) Clone() *Aggregate {
	c := *a
	c.p95Wait = a.p95Wait.Clone()
	c.p99Wait = a.p99Wait.Clone()
	c.p95BSld = a.p95BSld.Clone()
	c.p95DilRemote = a.p95DilRemote.Clone()
	return &c
}

// Add implements Sink. The accumulation order mirrors Recorder.Report's
// exact loop operation for operation, so every non-percentile Report
// field is bit-identical between the two modes.
func (a *Aggregate) Add(r JobRecord) {
	switch {
	case r.Rejected:
		a.Rejected++
		return
	case r.Killed:
		a.Killed++
	default:
		a.Completed++
	}
	a.NodeHours += float64(r.Nodes) * float64(r.Runtime()) / 3600
	wait := float64(r.Wait())
	bsld := r.BoundedSlowdown()
	a.Wait.Add(wait)
	a.Response.Add(float64(r.Response()))
	a.BSld.Add(bsld)
	a.DilationAll.Add(r.Dilation)
	a.p95Wait.Add(wait)
	a.p99Wait.Add(wait)
	a.p95BSld.Add(bsld)
	if r.RemoteMiB > 0 {
		a.RemoteJobs++
		a.DilationRemote.Add(r.Dilation)
		a.p95DilRemote.Add(r.Dilation)
	}
}

// Close implements Sink (a no-op; aggregates live in memory).
func (a *Aggregate) Close() error { return nil }

// P95Wait returns the wait-time 95th-percentile estimate.
func (a *Aggregate) P95Wait() float64 { return a.p95Wait.Value() }

// P99Wait returns the wait-time 99th-percentile estimate.
func (a *Aggregate) P99Wait() float64 { return a.p99Wait.Value() }

// P95BSld returns the bounded-slowdown 95th-percentile estimate.
func (a *Aggregate) P95BSld() float64 { return a.p95BSld.Value() }

// P95DilationRemote returns the remote-job dilation 95th-percentile
// estimate.
func (a *Aggregate) P95DilationRemote() float64 { return a.p95DilRemote.Value() }

// fillReport writes the aggregate's share of a Report: everything the
// exact path derives from retained records.
func (a *Aggregate) fillReport(rp *Report) {
	rp.Completed, rp.Killed, rp.Rejected = a.Completed, a.Killed, a.Rejected
	rp.RemoteJobs = a.RemoteJobs
	rp.NodeHours = a.NodeHours
	rp.Wait, rp.Response, rp.BSld = a.Wait, a.Response, a.BSld
	rp.DilationAll, rp.DilationRemote = a.DilationAll, a.DilationRemote
	rp.P95Wait = a.P95Wait()
	rp.P99Wait = a.P99Wait()
	rp.P95BSld = a.P95BSld()
	rp.P95DilationRemote = a.P95DilationRemote()
}

// StreamSink encodes each record as one line — JSONL or CSV — to a
// buffered writer: flat-memory record export for runs too large to
// retain. The first write error latches: subsequent Adds are no-ops
// and Close reports it. The sink does not close the underlying writer.
type StreamSink struct {
	bw       *bufio.Writer
	csv      bool
	headered bool
	err      error
}

// NewJSONLSink returns a sink writing one JSON object per record line.
func NewJSONLSink(w io.Writer) *StreamSink {
	return &StreamSink{bw: bufio.NewWriter(w)}
}

// NewCSVSink returns a sink writing a header row plus one CSV row per
// record.
func NewCSVSink(w io.Writer) *StreamSink {
	return &StreamSink{bw: bufio.NewWriter(w), csv: true}
}

// jsonRecord fixes the export schema (and field order) independently of
// the in-memory JobRecord layout, with the derived per-job metrics
// consumers always recompute anyway.
type jsonRecord struct {
	ID          int     `json:"id"`
	User        int     `json:"user"`
	Nodes       int     `json:"nodes"`
	Submit      int64   `json:"submit"`
	Start       int64   `json:"start"`
	End         int64   `json:"end"`
	Wait        int64   `json:"wait"`
	BSld        float64 `json:"bsld"`
	Estimate    int64   `json:"estimate"`
	Limit       int64   `json:"limit"`
	BaseRuntime int64   `json:"base_runtime"`
	MemPerNode  int64   `json:"mem_per_node"`
	RemoteMiB   int64   `json:"remote_mib"`
	RemoteFrac  float64 `json:"remote_frac"`
	Dilation    float64 `json:"dilation"`
	Killed      bool    `json:"killed,omitempty"`
	Rejected    bool    `json:"rejected,omitempty"`
	Restarts    int     `json:"restarts,omitempty"`
}

// csvHeader matches jsonRecord's field order.
const csvHeader = "id,user,nodes,submit,start,end,wait,bsld,estimate,limit,base_runtime,mem_per_node,remote_mib,remote_frac,dilation,killed,rejected,restarts"

// Add implements Sink.
func (s *StreamSink) Add(r JobRecord) {
	if s.err != nil {
		return
	}
	if s.csv {
		if !s.headered {
			s.headered = true
			if _, err := fmt.Fprintln(s.bw, csvHeader); err != nil {
				s.err = err
				return
			}
		}
		_, err := fmt.Fprintf(s.bw, "%d,%d,%d,%d,%d,%d,%d,%g,%d,%d,%d,%d,%d,%g,%g,%t,%t,%d\n",
			r.ID, r.User, r.Nodes, r.Submit, r.Start, r.End, r.Wait(), r.BoundedSlowdown(),
			r.Estimate, r.Limit, r.BaseRuntime, r.MemPerNode, r.RemoteMiB, r.RemoteFrac,
			r.Dilation, r.Killed, r.Rejected, r.Restarts)
		s.err = err
		return
	}
	blob, err := json.Marshal(jsonRecord{
		ID: r.ID, User: r.User, Nodes: r.Nodes, Submit: r.Submit,
		Start: r.Start, End: r.End, Wait: r.Wait(), BSld: r.BoundedSlowdown(),
		Estimate: r.Estimate, Limit: r.Limit, BaseRuntime: r.BaseRuntime,
		MemPerNode: r.MemPerNode, RemoteMiB: r.RemoteMiB, RemoteFrac: r.RemoteFrac,
		Dilation: r.Dilation, Killed: r.Killed, Rejected: r.Rejected, Restarts: r.Restarts,
	})
	if err != nil {
		s.err = err
		return
	}
	blob = append(blob, '\n')
	_, s.err = s.bw.Write(blob)
}

// Close implements Sink: it flushes and returns the first error.
func (s *StreamSink) Close() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}
