package metrics

import (
	"bufio"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/stats"
)

// fakeRecords builds a deterministic mixed stream of job outcomes.
func fakeRecords(n int) []JobRecord {
	rng := stats.NewRNG(17)
	out := make([]JobRecord, 0, n)
	for i := 1; i <= n; i++ {
		r := JobRecord{
			ID: i, User: i % 7, Nodes: 1 + rng.Intn(16),
			Submit: int64(i * 10), MemPerNode: 1024,
		}
		switch {
		case i%23 == 0:
			r.Rejected = true
			r.Dilation = 1
		default:
			r.Start = r.Submit + int64(rng.Intn(5000))
			r.End = r.Start + 60 + int64(rng.ExpFloat64()*3000)
			r.BaseRuntime = r.End - r.Start
			r.Estimate = r.BaseRuntime * 2
			r.Limit = r.Estimate
			r.Dilation = 1
			if i%3 == 0 {
				r.RemoteMiB = 512
				r.RemoteFrac = 0.5
				r.Dilation = 1 + rng.Float64()
			}
			if i%17 == 0 {
				r.Killed = true
			}
		}
		out = append(out, r)
	}
	return out
}

func TestBoundedRecorderMatchesExactReport(t *testing.T) {
	// Every non-percentile report field must be bit-identical between
	// the retain-all and bounded recorders; the four percentile fields
	// must agree within P² tolerance.
	exact, bounded := NewRecorder(), NewBoundedRecorder()
	for _, r := range fakeRecords(5000) {
		exact.Add(r)
		bounded.Add(r)
	}
	cfg := cluster.DefaultConfig()
	re, rb := exact.Report(cfg), bounded.Report(cfg)

	if re.Completed != rb.Completed || re.Killed != rb.Killed || re.Rejected != rb.Rejected ||
		re.RemoteJobs != rb.RemoteJobs || re.NodeHours != rb.NodeHours ||
		re.RemoteJobFraction != rb.RemoteJobFraction {
		t.Fatalf("counts differ: exact %+v bounded %+v", re, rb)
	}
	if re.Wait != rb.Wait || re.Response != rb.Response || re.BSld != rb.BSld ||
		re.DilationAll != rb.DilationAll || re.DilationRemote != rb.DilationRemote {
		t.Fatal("online accumulators differ between modes")
	}
	approx := func(name string, a, b float64) {
		if b == 0 && a == 0 {
			return
		}
		if rel := math.Abs(a-b) / math.Max(math.Abs(b), 1); rel > 0.05 {
			t.Errorf("%s: bounded %g vs exact %g (rel err %.3f)", name, a, b, rel)
		}
	}
	approx("P95Wait", rb.P95Wait, re.P95Wait)
	approx("P99Wait", rb.P99Wait, re.P99Wait)
	approx("P95BSld", rb.P95BSld, re.P95BSld)
	approx("P95DilationRemote", rb.P95DilationRemote, re.P95DilationRemote)

	if rb.Jobs() != re.Jobs() {
		t.Fatalf("jobs: %d vs %d", rb.Jobs(), re.Jobs())
	}
	if bounded.Records() != nil {
		t.Fatal("bounded recorder must retain no records")
	}
}

func TestBoundedRecorderFairnessMatchesExact(t *testing.T) {
	exact, bounded := NewRecorder(), NewBoundedRecorder()
	for _, r := range fakeRecords(2000) {
		exact.Add(r)
		bounded.Add(r)
	}
	fe, fb := exact.Fairness(), bounded.Fairness()
	if fe.JainWait != fb.JainWait || fe.GiniNodeHours != fb.GiniNodeHours ||
		len(fe.Users) != len(fb.Users) {
		t.Fatalf("fairness differs: exact %+v bounded %+v", fe, fb)
	}
	for i := range fe.Users {
		if fe.Users[i] != fb.Users[i] {
			t.Fatalf("user %d stats differ: %+v vs %+v", i, fe.Users[i], fb.Users[i])
		}
	}
}

func TestRecordsReturnsACopy(t *testing.T) {
	rec := NewRecorder()
	rec.Add(JobRecord{ID: 1, User: 2, Nodes: 1, Submit: 0, Start: 5, End: 10, BaseRuntime: 5, Estimate: 10})
	got := rec.Records()
	got[0].ID = 999
	if rec.Records()[0].ID != 1 {
		t.Fatal("mutating the returned slice corrupted recorder state")
	}
}

func TestObserveIsConstantMemory(t *testing.T) {
	// Usage observation integrates; it must never retain samples, so
	// feeding a million ticks allocates nothing per call.
	rec := NewRecorder()
	u := cluster.Usage{BusyNodes: 3, UsedLocal: 1024, UsedPool: 512, PoolDemand: 1.5}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Observe(rec.lastT+1, u)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", allocs)
	}
}

func TestJSONLSinkStreamsRecords(t *testing.T) {
	var sb strings.Builder
	s := NewJSONLSink(&sb)
	recs := fakeRecords(50)
	for _, r := range recs {
		s.Add(r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if int(m["id"].(float64)) != recs[n].ID {
			t.Fatalf("line %d: id %v, want %d", n+1, m["id"], recs[n].ID)
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("wrote %d lines, want %d", n, len(recs))
	}
}

func TestCSVSinkStreamsRecords(t *testing.T) {
	var sb strings.Builder
	s := NewCSVSink(&sb)
	recs := fakeRecords(10)
	for _, r := range recs {
		s.Add(r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(recs)+1 {
		t.Fatalf("wrote %d lines, want header+%d", len(lines), len(recs))
	}
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestDiscardSink(t *testing.T) {
	Discard.Add(JobRecord{ID: 1})
	if err := Discard.Close(); err != nil {
		t.Fatal(err)
	}
}
