package metrics

import (
	"fmt"
	"sort"

	"dismem/internal/stats"
)

// This file is the durable-checkpoint face of the package: portable,
// JSON-friendly state for the Recorder (both modes) and its bounded
// Aggregate, with validated constructors. The sink is deliberately
// absent — a sink is a live external writer; a restored run attaches
// its own, exactly as Clone-based in-memory forks do.

// AggregateState is the portable serialized form of an Aggregate. The
// Online accumulators marshal via their own JSON methods; the hybrid
// percentile estimators travel as stats.QuantileState.
type AggregateState struct {
	Completed  int     `json:"completed"`
	Killed     int     `json:"killed"`
	Rejected   int     `json:"rejected"`
	RemoteJobs int     `json:"remoteJobs"`
	NodeHours  float64 `json:"nodeHours"`

	Wait           stats.Online `json:"wait"`
	Response       stats.Online `json:"response"`
	BSld           stats.Online `json:"bsld"`
	DilationAll    stats.Online `json:"dilationAll"`
	DilationRemote stats.Online `json:"dilationRemote"`

	P95Wait      stats.QuantileState `json:"p95Wait"`
	P99Wait      stats.QuantileState `json:"p99Wait"`
	P95BSld      stats.QuantileState `json:"p95BSld"`
	P95DilRemote stats.QuantileState `json:"p95DilRemote"`
}

// State captures the aggregate.
func (a *Aggregate) State() AggregateState {
	return AggregateState{
		Completed: a.Completed, Killed: a.Killed, Rejected: a.Rejected,
		RemoteJobs: a.RemoteJobs, NodeHours: a.NodeHours,
		Wait: a.Wait, Response: a.Response, BSld: a.BSld,
		DilationAll: a.DilationAll, DilationRemote: a.DilationRemote,
		P95Wait:      a.p95Wait.State(),
		P99Wait:      a.p99Wait.State(),
		P95BSld:      a.p95BSld.State(),
		P95DilRemote: a.p95DilRemote.State(),
	}
}

// AggregateFromState rebuilds an aggregate from a captured state.
func AggregateFromState(st AggregateState) (*Aggregate, error) {
	a := &Aggregate{
		Completed: st.Completed, Killed: st.Killed, Rejected: st.Rejected,
		RemoteJobs: st.RemoteJobs, NodeHours: st.NodeHours,
		Wait: st.Wait, Response: st.Response, BSld: st.BSld,
		DilationAll: st.DilationAll, DilationRemote: st.DilationRemote,
	}
	var err error
	if a.p95Wait, err = stats.QuantileFromState(st.P95Wait); err != nil {
		return nil, fmt.Errorf("metrics: aggregate p95 wait: %w", err)
	}
	if a.p99Wait, err = stats.QuantileFromState(st.P99Wait); err != nil {
		return nil, fmt.Errorf("metrics: aggregate p99 wait: %w", err)
	}
	if a.p95BSld, err = stats.QuantileFromState(st.P95BSld); err != nil {
		return nil, fmt.Errorf("metrics: aggregate p95 bsld: %w", err)
	}
	if a.p95DilRemote, err = stats.QuantileFromState(st.P95DilRemote); err != nil {
		return nil, fmt.Errorf("metrics: aggregate p95 remote dilation: %w", err)
	}
	return a, nil
}

// UserAccState is one user's fairness tally in portable form.
type UserAccState struct {
	User      int     `json:"user"`
	Jobs      int     `json:"jobs"`
	Wait      float64 `json:"wait"`
	BSld      float64 `json:"bsld"`
	NodeHours float64 `json:"nodeHours"`
}

// RecorderState is the portable serialized form of a Recorder. Exactly
// one of Records (retain mode) or Agg (bounded mode) carries the
// per-job reduction; the usage integrals and fairness tallies travel
// in both modes.
type RecorderState struct {
	Retain  bool            `json:"retain"`
	Records []JobRecord     `json:"records,omitempty"`
	Agg     *AggregateState `json:"agg,omitempty"`
	ByUser  []UserAccState  `json:"byUser,omitempty"`

	LastT     int64   `json:"lastT"`
	HaveT     bool    `json:"haveT"`
	NodeInt   float64 `json:"nodeInt"`
	LocalInt  float64 `json:"localInt"`
	PoolInt   float64 `json:"poolInt"`
	DemandInt float64 `json:"demandInt"`

	FirstSubmit int64 `json:"firstSubmit"`
	LastEnd     int64 `json:"lastEnd"`
	HaveSubmit  bool  `json:"haveSubmit"`
}

// State captures the recorder. Fairness tallies are ordered by user ID
// so the serialized form is deterministic across runs.
func (rec *Recorder) State() RecorderState {
	st := RecorderState{
		Retain:      rec.retain,
		Records:     append([]JobRecord(nil), rec.records...),
		LastT:       rec.lastT,
		HaveT:       rec.haveT,
		NodeInt:     rec.nodeInt,
		LocalInt:    rec.localInt,
		PoolInt:     rec.poolInt,
		DemandInt:   rec.demandInt,
		FirstSubmit: rec.firstSubmit,
		LastEnd:     rec.lastEnd,
		HaveSubmit:  rec.haveSubmit,
	}
	if rec.agg != nil {
		agg := rec.agg.State()
		st.Agg = &agg
	}
	for user, a := range rec.byUser {
		st.ByUser = append(st.ByUser, UserAccState{
			User: user, Jobs: a.jobs, Wait: a.wait, BSld: a.bsld, NodeHours: a.nodeHours,
		})
	}
	sort.Slice(st.ByUser, func(i, j int) bool { return st.ByUser[i].User < st.ByUser[j].User })
	return st
}

// RecorderFromState rebuilds a recorder from a captured state. The
// restored recorder is sinkless.
func RecorderFromState(st RecorderState) (*Recorder, error) {
	if st.Retain == (st.Agg != nil) {
		return nil, fmt.Errorf("metrics: recorder state wants exactly one of retained records (retain) or an online aggregate")
	}
	if !st.Retain && len(st.Records) > 0 {
		return nil, fmt.Errorf("metrics: bounded recorder state carries %d retained records", len(st.Records))
	}
	rec := &Recorder{
		retain:      st.Retain,
		records:     append([]JobRecord(nil), st.Records...),
		byUser:      make(map[int]*userAcc, len(st.ByUser)),
		lastT:       st.LastT,
		haveT:       st.HaveT,
		nodeInt:     st.NodeInt,
		localInt:    st.LocalInt,
		poolInt:     st.PoolInt,
		demandInt:   st.DemandInt,
		firstSubmit: st.FirstSubmit,
		lastEnd:     st.LastEnd,
		haveSubmit:  st.HaveSubmit,
	}
	if st.Agg != nil {
		agg, err := AggregateFromState(*st.Agg)
		if err != nil {
			return nil, err
		}
		rec.agg = agg
	}
	prev := -1
	first := true
	for _, ua := range st.ByUser {
		if !first && ua.User <= prev {
			return nil, fmt.Errorf("metrics: recorder state fairness tallies out of order at user %d", ua.User)
		}
		prev, first = ua.User, false
		if ua.Jobs <= 0 {
			return nil, fmt.Errorf("metrics: recorder state user %d has %d jobs", ua.User, ua.Jobs)
		}
		rec.byUser[ua.User] = &userAcc{jobs: ua.Jobs, wait: ua.Wait, bsld: ua.BSld, nodeHours: ua.NodeHours}
	}
	return rec, nil
}
