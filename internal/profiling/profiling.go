// Package profiling is the one-stop pprof wiring for the CLIs: a CPU
// profile spanning the whole invocation and an allocation profile
// captured at exit, both gated on file-path flags so production runs
// pay nothing. Kept out of the CLIs themselves so dmsched, dmsweep and
// dmbench cannot drift apart in how they profile.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for an allocation
// profile to be written to memPath by the returned stop function.
// Either path may be empty to disable that profile; with both empty,
// Start is free and stop is a no-op. Call stop on every exit path that
// should yield usable profiles — a process that os.Exits without it
// truncates the CPU profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stop = func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// The allocs profile carries both cumulative allocation
			// sites (what the alloc-discipline work optimises) and,
			// after this GC, a settled in-use snapshot.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("profiling: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
