// Package queueing provides closed-form queueing-theory baselines used
// to validate the discrete-event simulator: for memoryless single-node
// workloads the simulated FCFS machine is an M/M/c queue, so the
// simulator's mean wait must match the Erlang-C prediction. Simulation
// papers routinely include exactly this sanity check, and the
// validation experiment (val1) regenerates it.
package queueing

import (
	"fmt"
	"math"
)

// MMc describes an M/M/c queue: Poisson arrivals at rate Lambda,
// exponential service at rate Mu per server, C identical servers.
type MMc struct {
	Lambda float64 // arrivals per second
	Mu     float64 // service completions per second per server
	C      int     // servers
}

// Validate reports the first invalid or unstable parameter, or nil.
func (q MMc) Validate() error {
	switch {
	case q.Lambda <= 0:
		return fmt.Errorf("queueing: lambda %g <= 0", q.Lambda)
	case q.Mu <= 0:
		return fmt.Errorf("queueing: mu %g <= 0", q.Mu)
	case q.C <= 0:
		return fmt.Errorf("queueing: c %d <= 0", q.C)
	}
	if q.Utilization() >= 1 {
		return fmt.Errorf("queueing: unstable: rho = %g >= 1", q.Utilization())
	}
	return nil
}

// Utilization returns rho = lambda / (c*mu).
func (q MMc) Utilization() float64 {
	return q.Lambda / (float64(q.C) * q.Mu)
}

// offeredLoad returns a = lambda/mu (Erlangs).
func (q MMc) offeredLoad() float64 { return q.Lambda / q.Mu }

// ErlangC returns the probability an arriving job must wait (all c
// servers busy), computed with the numerically stable iterative form of
// the Erlang-B recurrence.
func (q MMc) ErlangC() float64 {
	if err := q.Validate(); err != nil {
		return math.NaN()
	}
	a := q.offeredLoad()
	// Erlang-B via the stable recurrence B(0)=1, B(k)=a*B(k-1)/(k+a*B(k-1)).
	b := 1.0
	for k := 1; k <= q.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Utilization()
	return b / (1 - rho + rho*b)
}

// MeanWait returns the expected time in queue W_q = C(c,a)/(c*mu-lambda).
func (q MMc) MeanWait() float64 {
	if err := q.Validate(); err != nil {
		return math.NaN()
	}
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanQueueLength returns L_q = lambda * W_q (Little's law).
func (q MMc) MeanQueueLength() float64 { return q.Lambda * q.MeanWait() }

// MeanResponse returns W = W_q + 1/mu.
func (q MMc) MeanResponse() float64 { return q.MeanWait() + 1/q.Mu }

// MG1 describes an M/G/1 queue: Poisson arrivals, general service with
// the given mean and squared coefficient of variation (SCV = var/mean²).
// It predicts waits for the single-node heavy-tailed regime where M/M/c
// is too optimistic.
type MG1 struct {
	Lambda      float64
	MeanService float64
	SCV         float64 // squared coefficient of variation of service
}

// Validate reports the first invalid or unstable parameter, or nil.
func (q MG1) Validate() error {
	switch {
	case q.Lambda <= 0:
		return fmt.Errorf("queueing: lambda %g <= 0", q.Lambda)
	case q.MeanService <= 0:
		return fmt.Errorf("queueing: mean service %g <= 0", q.MeanService)
	case q.SCV < 0:
		return fmt.Errorf("queueing: scv %g < 0", q.SCV)
	}
	if rho := q.Lambda * q.MeanService; rho >= 1 {
		return fmt.Errorf("queueing: unstable: rho = %g >= 1", rho)
	}
	return nil
}

// MeanWait returns the Pollaczek-Khinchine mean queueing delay:
// W_q = rho*(1+SCV)/(2*(1-rho)) * E[S].
func (q MG1) MeanWait() float64 {
	if err := q.Validate(); err != nil {
		return math.NaN()
	}
	rho := q.Lambda * q.MeanService
	return rho * (1 + q.SCV) / (2 * (1 - rho)) * q.MeanService
}

// MMcK approximates an M/M/c queue with the whole machine as servers:
// convenience constructor from machine shape and workload rates.
func ForMachine(nodes int, arrivalsPerSec, meanRuntimeSec float64) MMc {
	return MMc{Lambda: arrivalsPerSec, Mu: 1 / meanRuntimeSec, C: nodes}
}
