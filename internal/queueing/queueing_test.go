package queueing

import (
	"math"
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/sched"
	"dismem/internal/sim"
	"dismem/internal/stats"
	"dismem/internal/workload"
)

func TestErlangCKnownValues(t *testing.T) {
	// Classic tabulated case: c=2, a=1 (rho=0.5) → C = 1/3.
	q := MMc{Lambda: 1, Mu: 1, C: 2}
	if got := q.ErlangC(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("ErlangC(c=2,a=1) = %g, want 1/3", got)
	}
	// M/M/1: C equals rho.
	q1 := MMc{Lambda: 0.7, Mu: 1, C: 1}
	if got := q1.ErlangC(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("ErlangC(M/M/1, rho=0.7) = %g, want 0.7", got)
	}
}

func TestMMcMeanWaitMM1ClosedForm(t *testing.T) {
	// M/M/1: W_q = rho/(mu-lambda).
	q := MMc{Lambda: 0.5, Mu: 1, C: 1}
	want := 0.5 / (1 - 0.5)
	if got := q.MeanWait(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanWait = %g, want %g", got, want)
	}
	if got := q.MeanResponse(); math.Abs(got-(want+1)) > 1e-12 {
		t.Fatalf("MeanResponse = %g, want %g", got, want+1)
	}
	if got := q.MeanQueueLength(); math.Abs(got-0.5*want) > 1e-12 {
		t.Fatalf("MeanQueueLength = %g, want %g", got, 0.5*want)
	}
}

func TestMMcValidate(t *testing.T) {
	bad := []MMc{
		{Lambda: 0, Mu: 1, C: 1},
		{Lambda: 1, Mu: 0, C: 1},
		{Lambda: 1, Mu: 1, C: 0},
		{Lambda: 2, Mu: 1, C: 1}, // unstable
	}
	for _, q := range bad {
		if q.Validate() == nil {
			t.Errorf("invalid queue %+v accepted", q)
		}
		if !math.IsNaN(q.ErlangC()) || !math.IsNaN(q.MeanWait()) {
			t.Errorf("invalid queue %+v returned non-NaN predictions", q)
		}
	}
}

func TestMG1PollaczekKhinchine(t *testing.T) {
	// Exponential service (SCV=1) reduces to M/M/1.
	mm1 := MMc{Lambda: 0.6, Mu: 1, C: 1}
	mg1 := MG1{Lambda: 0.6, MeanService: 1, SCV: 1}
	if diff := mg1.MeanWait() - mm1.MeanWait(); math.Abs(diff) > 1e-12 {
		t.Fatalf("M/G/1 with SCV=1 diverges from M/M/1 by %g", diff)
	}
	// Deterministic service (SCV=0) halves the wait.
	det := MG1{Lambda: 0.6, MeanService: 1, SCV: 0}
	if got, want := det.MeanWait(), mm1.MeanWait()/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("M/D/1 wait = %g, want %g", got, want)
	}
	if (MG1{Lambda: 2, MeanService: 1, SCV: 1}).Validate() == nil {
		t.Fatal("unstable M/G/1 accepted")
	}
}

func TestForMachine(t *testing.T) {
	q := ForMachine(256, 0.1, 3600)
	if q.C != 256 || q.Lambda != 0.1 || math.Abs(q.Mu-1.0/3600) > 1e-15 {
		t.Fatalf("ForMachine = %+v", q)
	}
}

// TestSimulatorMatchesErlangC is the simulator-validation experiment in
// unit-test form: exponential single-node jobs under FCFS on a small
// machine must reproduce the analytic M/M/c mean wait within sampling
// tolerance.
func TestSimulatorMatchesErlangC(t *testing.T) {
	const (
		nodes   = 4
		meanSvc = 1000.0
		rho     = 0.8
		jobs    = 40000
		seeds   = 3
		tol     = 0.08 // relative, on the pooled mean
	)
	lambda := rho * nodes / meanSvc
	q := MMc{Lambda: lambda, Mu: 1 / meanSvc, C: nodes}
	want := q.MeanWait()

	// Queue waits are heavily autocorrelated at rho=0.8, so one run's
	// mean is noisy; pool several independent seeds.
	var pooled, n float64
	for seed := uint64(1); seed <= seeds; seed++ {
		// Build the memoryless workload directly (the calibrated
		// generator is deliberately NOT memoryless).
		rng := stats.NewRNG(4242 * seed)
		w := &workload.Workload{Name: "mmc"}
		now := 0.0
		for i := 1; i <= jobs; i++ {
			now += rng.ExpFloat64() / lambda
			rt := int64(rng.ExpFloat64()*meanSvc) + 1
			w.Jobs = append(w.Jobs, &workload.Job{
				ID: i, Submit: int64(now), Nodes: 1, MemPerNode: 1,
				// Exact estimates so nothing is killed and FCFS order
				// is unaffected by estimate noise.
				Estimate: rt, BaseRuntime: rt,
			})
		}
		res, err := sim.Run(sim.Config{
			Machine: cluster.Config{
				Racks: 1, NodesPerRack: nodes, CoresPerNode: 1, LocalMemMiB: 10,
				Topology: cluster.TopologyNone,
			},
			Model: memmodel.Linear{Beta: 0},
			Scheduler: &sched.Batch{
				Order: sched.FCFS{}, Backfill: sched.BackfillNone, Placer: sched.LocalOnly{},
			},
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		pooled += res.Report.Wait.Sum()
		n += float64(res.Report.Wait.N())
	}
	got := pooled / n
	if rel := math.Abs(got-want) / want; rel > tol {
		t.Fatalf("simulated mean wait %.1f vs Erlang-C %.1f (rel err %.3f > %.2f)",
			got, want, rel, tol)
	}
}
