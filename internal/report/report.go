// Package report renders one simulation Result as the canonical
// plain-text report. It exists so every surface that prints a report —
// cmd/dmsched, cmd/dmserve's text-format what-if responses, the serve
// smoke in CI — emits byte-identical text for identical results: the
// CI equivalence checks literally diff the output of the online
// service against the offline CLI.
package report

import (
	"fmt"
	"strings"

	"dismem"
)

// Format renders res under the given policy label. The layout is the
// historical dmsched report; changing it invalidates the CI smoke
// diffs, so treat it as a wire format.
func Format(label string, res *dismem.Result) string {
	var b strings.Builder
	r := res.Report
	fmt.Fprintf(&b, "policy            %s\n", label)
	fmt.Fprintf(&b, "jobs              %d completed, %d killed, %d rejected\n", r.Completed, r.Killed, r.Rejected)
	fmt.Fprintf(&b, "makespan          %.1f h (%d DES events)\n", float64(r.MakespanSec)/3600, res.Events)
	fmt.Fprintf(&b, "wait              mean %.0f s, p95 %.0f s, p99 %.0f s\n", r.Wait.Mean(), r.P95Wait, r.P99Wait)
	fmt.Fprintf(&b, "bounded slowdown  mean %.1f, p95 %.1f\n", r.BSld.Mean(), r.P95BSld)
	fmt.Fprintf(&b, "node utilization  %.1f%%\n", 100*r.NodeUtil)
	fmt.Fprintf(&b, "local mem util    %.1f%%\n", 100*r.LocalMemUtil)
	fmt.Fprintf(&b, "pool util         %.1f%% (mean fabric demand %.1f GiB/s)\n", 100*r.PoolUtil, r.MeanFabricDemand)
	fmt.Fprintf(&b, "throughput        %.1f jobs/h (%.0f node-hours delivered)\n", r.ThroughputPerHour, r.NodeHours)
	fmt.Fprintf(&b, "pool-using jobs   %.1f%% (mean dilation %.2f, p95 %.2f)\n",
		100*r.RemoteJobFraction, r.DilationRemote.Mean(), r.P95DilationRemote)
	if r.NodeFailures > 0 {
		fmt.Fprintf(&b, "failures          %d node failures, %d jobs killed by them\n",
			r.NodeFailures, r.FailureKills)
	}
	if res.ScenarioEvents > 0 {
		fmt.Fprintf(&b, "scenario          %d interventions applied\n", res.ScenarioEvents)
	}
	fair := res.Recorder.Fairness()
	fmt.Fprintf(&b, "fairness          Jain(wait) %.3f over %d users\n", fair.JainWait, len(fair.Users))
	return b.String()
}
