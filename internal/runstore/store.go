// Package runstore is the durable, queryable archive of completed
// runs: dmsweep units, dmserve baselines and dmsched runs append one
// record per completed run, and dmstore reads them back for listing,
// inspection and comparison. The layout is an fsynced index plus
// append-only JSONL segments:
//
//	<dir>/index.json        format, record-schema fingerprint, segment list
//	<dir>/seg-000001.jsonl  one {"sum": <sha256>, "run": {...}} line per run
//
// Every segment line carries the SHA-256 of its record bytes, and the
// index is replaced atomically (temp file, fsync, rename — the PR 6
// checkpoint discipline), so the failure modes are sharp: a write torn
// by a crash loses at most the trailing line of the newest segment
// (tolerated and dropped on open), while interior corruption — a bad
// checksum, malformed JSON, a record written by a build with a
// different schema — fails Open loudly with the file and line rather
// than serving silently wrong history.
//
// Records carry no wall-clock fields: a run's stored form depends only
// on its configuration and outcome, so an interrupted-and-resumed
// sweep archives byte-identical records to an uninterrupted one — the
// property the CI run-store smoke diffs.
package runstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"

	"dismem/internal/metrics"
)

// storeFormat names the store layout. Bump on any incompatible change
// to the index or line shapes.
const storeFormat = "dmstore/1"

// Run is one archived run. ID is the record's identity (see KeyOf):
// re-appending an identical record is a no-op, and when two records
// share an ID the later append wins on read — together these make
// archiving idempotent across sweep resumes. No field may hold
// wall-clock state.
type Run struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "sweep-unit", "serve-baseline", "sched", ...
	// Label is a human-readable annotation, not part of identity.
	Label string `json:"label,omitempty"`
	Seed  int    `json:"seed,omitempty"`
	// Spec is the canonical configuration JSON the ID was derived from.
	Spec       json.RawMessage `json:"spec,omitempty"`
	Report     *metrics.Report `json:"report,omitempty"`
	Events     uint64          `json:"events,omitempty"`
	Stopped    bool            `json:"stopped,omitempty"`
	SeriesFile string          `json:"series_file,omitempty"`
}

// KeyOf derives a run's identity from its configuration: the kind, the
// seed and the canonical spec JSON — never the label, report or series
// file, so the same configuration maps to the same ID whether the run
// completed cleanly, was resumed, or was re-labelled.
func KeyOf(kind string, spec []byte, seed int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%d\n", kind, seed)
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// storeIndex is index.json: the segment list plus the format and
// record-schema pins that make cross-build corruption loud.
type storeIndex struct {
	Format   string   `json:"format"`
	Schema   string   `json:"schema"`
	Segments []string `json:"segments"`
}

// segLine is one segment line: the record plus the checksum of its
// encoded bytes.
type segLine struct {
	Sum string          `json:"sum"`
	Run json.RawMessage `json:"run"`
}

// Store is an open run archive. One process owns the store for
// appending at a time (dmsweep's workers funnel through the harness,
// which appends under the store's lock); any number of processes may
// Open an archive read-only between writers. All methods are safe for
// concurrent use within a process.
type Store struct {
	dir string

	mu      sync.Mutex
	idx     storeIndex
	seg     *os.File // open append segment; nil until the first Append
	segName string
	order   []string        // IDs in first-append order
	byID    map[string]*Run // last append wins
}

// Open opens (or creates) the run store rooted at dir and loads every
// intact record. A torn trailing line in the newest segment — a write
// cut by a crash — is dropped; any other defect is an error naming the
// offending file and line.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, byID: make(map[string]*Run)}
	data, err := os.ReadFile(s.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		s.idx = storeIndex{Format: storeFormat, Schema: runSchema()}
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runstore: reading index: %w", err)
	}
	if err := decodeStrict(data, &s.idx); err != nil {
		return nil, fmt.Errorf("runstore: index %s is corrupt: %w", s.indexPath(), err)
	}
	if s.idx.Format != storeFormat {
		return nil, fmt.Errorf("runstore: %s holds format %q, this build reads %q", s.indexPath(), s.idx.Format, storeFormat)
	}
	if s.idx.Schema != runSchema() {
		return nil, fmt.Errorf("runstore: %s was written by a build with a different record schema; refusing to misread it", dir)
	}
	for i, name := range s.idx.Segments {
		if err := s.loadSegment(name, i == len(s.idx.Segments)-1); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

// loadSegment reads one segment, verifying every line's checksum.
// Only the newest segment may end in a torn line.
func (s *Store) loadSegment(name string, newest bool) error {
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("runstore: segment %s listed in the index is unreadable: %w", name, err)
	}
	torn := len(data) > 0 && data[len(data)-1] != '\n'
	lines := bytes.Split(data, []byte("\n"))
	if !torn && len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	for i, line := range lines {
		if len(line) == 0 {
			return fmt.Errorf("runstore: segment %s: blank line %d", name, i+1)
		}
		var sl segLine
		err := decodeStrict(line, &sl)
		if err == nil && sl.Sum != checksum(sl.Run) {
			err = fmt.Errorf("checksum mismatch")
		}
		var run Run
		if err == nil {
			err = decodeStrict(sl.Run, &run)
		}
		if err == nil && run.ID == "" {
			err = fmt.Errorf("record has no id")
		}
		if err != nil {
			if newest && torn && i == len(lines)-1 {
				return nil // a crash tore the trailing append; the run re-archives
			}
			return fmt.Errorf("runstore: segment %s line %d is corrupt: %w", name, i+1, err)
		}
		s.insert(run)
	}
	return nil
}

// insert merges one decoded record: last append wins, first-append
// order preserved.
func (s *Store) insert(run Run) {
	if _, ok := s.byID[run.ID]; !ok {
		s.order = append(s.order, run.ID)
	}
	r := run
	s.byID[run.ID] = &r
}

func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// decodeStrict unmarshals one JSON value, rejecting unknown fields and
// trailing garbage.
func decodeStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// Append archives one run durably: the record line is written and
// fsynced before Append returns. Re-appending a record identical to
// the stored one is a no-op (idempotent resume); a record with the
// same ID but different content is appended and wins on read.
func (s *Store) Append(run Run) error {
	if run.ID == "" {
		return fmt.Errorf("runstore: record has no id")
	}
	raw, err := json.Marshal(run)
	if err != nil {
		return fmt.Errorf("runstore: encoding record %s: %w", run.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byID[run.ID]; ok {
		if prev, err := json.Marshal(old); err == nil && bytes.Equal(prev, raw) {
			return nil
		}
	}
	if s.seg == nil {
		if err := s.openSegmentLocked(); err != nil {
			return err
		}
	}
	line, err := json.Marshal(segLine{Sum: checksum(raw), Run: raw})
	if err != nil {
		return fmt.Errorf("runstore: encoding record %s: %w", run.ID, err)
	}
	line = append(line, '\n')
	if _, err := s.seg.Write(line); err != nil {
		return fmt.Errorf("runstore: appending to %s: %w", s.segName, err)
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("runstore: syncing %s: %w", s.segName, err)
	}
	s.insert(run)
	return nil
}

// openSegmentLocked starts this writer's segment: the file is created
// and registered in the index (durably, atomic replace) before the
// first record lands in it, so a reader never meets an unlisted
// segment with data the index cannot vouch for.
func (s *Store) openSegmentLocked() error {
	name := fmt.Sprintf("seg-%06d.jsonl", len(s.idx.Segments)+1)
	path := filepath.Join(s.dir, name)
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("runstore: segment %s already exists but is not in the index; the store is corrupt or owned by another writer", name)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: creating segment: %w", err)
	}
	idx := s.idx
	idx.Segments = append(append([]string(nil), s.idx.Segments...), name)
	if err := s.writeIndexLocked(idx); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	s.idx, s.seg, s.segName = idx, f, name
	return nil
}

// writeIndexLocked replaces index.json atomically: temp file in the
// same directory, fsync, rename, directory fsync.
func (s *Store) writeIndexLocked(idx storeIndex) error {
	b, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: encoding index: %w", err)
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(s.dir, "index.json.tmp*")
	if err != nil {
		return fmt.Errorf("runstore: writing index: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(b); err != nil {
		return fmt.Errorf("runstore: writing index: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("runstore: syncing index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: closing index: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, s.indexPath()); err != nil {
		os.Remove(name)
		return fmt.Errorf("runstore: publishing index: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		// Persist the rename; ignore failure — some filesystems reject
		// directory fsync and the index data itself is already durable.
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Runs returns every archived record in first-append order, last
// append winning per ID.
func (s *Store) Runs() []Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Run, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.byID[id])
	}
	return out
}

// Get returns the archived record with the given ID, or any record
// whose ID starts with it when the prefix is unambiguous — the CLI
// convenience.
func (s *Store) Get(id string) (Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.byID[id]; ok {
		return *r, nil
	}
	var matches []string
	for _, full := range s.order {
		if len(id) > 0 && len(id) < len(full) && full[:len(id)] == id {
			matches = append(matches, full)
		}
	}
	switch len(matches) {
	case 1:
		return *s.byID[matches[0]], nil
	case 0:
		return Run{}, fmt.Errorf("runstore: no run %q", id)
	default:
		sort.Strings(matches)
		return Run{}, fmt.Errorf("runstore: id %q is ambiguous (%d matches, e.g. %s, %s)", id, len(matches), matches[0], matches[1])
	}
}

// Len reports how many distinct runs the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Close releases the append segment, if one was started. The archive
// stays on disk; Close never deletes anything.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// --- record schema fingerprint -----------------------------------------

// runSchema fingerprints the Run type (and transitively
// metrics.Report) so an archive written by a build with a different
// record layout is rejected instead of mis-decoded — the same
// discipline as the sweep manifest and the checkpoint envelope.
func runSchema() string {
	var buf bytes.Buffer
	describeRunType(&buf, reflect.TypeOf(Run{}), map[reflect.Type]bool{})
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8])
}

func describeRunType(w io.Writer, t reflect.Type, visited map[reflect.Type]bool) {
	if t.Implements(reflect.TypeOf((*json.Marshaler)(nil)).Elem()) ||
		reflect.PointerTo(t).Implements(reflect.TypeOf((*json.Marshaler)(nil)).Elem()) {
		fmt.Fprintf(w, "%s(custom-json)", t.String())
		return
	}
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "%s{", t.Kind())
		describeRunType(w, t.Elem(), visited)
		io.WriteString(w, "}")
	case reflect.Map:
		io.WriteString(w, "map[")
		describeRunType(w, t.Key(), visited)
		io.WriteString(w, "]{")
		describeRunType(w, t.Elem(), visited)
		io.WriteString(w, "}")
	case reflect.Struct:
		if visited[t] {
			fmt.Fprintf(w, "cycle(%s)", t.String())
			return
		}
		visited[t] = true
		fmt.Fprintf(w, "struct %s{", t.String())
		fields := make([]string, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			var fb bytes.Buffer
			describeRunType(&fb, f.Type, visited)
			fields = append(fields, fmt.Sprintf("%s %s %q", f.Name, fb.String(), f.Tag.Get("json")))
		}
		sort.Strings(fields)
		for _, f := range fields {
			io.WriteString(w, f)
			io.WriteString(w, ";")
		}
		io.WriteString(w, "}")
		delete(visited, t)
	default:
		io.WriteString(w, t.Kind().String())
	}
}
