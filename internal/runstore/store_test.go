package runstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dismem/internal/metrics"
)

func testRun(kind, label string, seed int, wait float64) Run {
	spec := json.RawMessage(`{"policy":"memaware","jobs":100}`)
	rep := &metrics.Report{Completed: 100, P95Wait: wait}
	return Run{
		ID:     KeyOf(kind, spec, seed),
		Kind:   kind,
		Label:  label,
		Seed:   seed,
		Spec:   spec,
		Report: rep,
		Events: 12345,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := testRun("sweep-unit", "memaware", 0, 10)
	b := testRun("sweep-unit", "memaware", 1, 20)
	for _, r := range []Run{a, b} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	runs := s2.Runs()
	if len(runs) != 2 {
		t.Fatalf("reopened store holds %d runs, want 2", len(runs))
	}
	if runs[0].ID != a.ID || runs[1].ID != b.ID {
		t.Fatalf("append order not preserved: %s, %s", runs[0].ID, runs[1].ID)
	}
	got, err := s2.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Report.P95Wait != 10 || got.Label != "memaware" || got.Events != 12345 {
		t.Fatalf("record mangled on round trip: %+v", got)
	}
	// Prefix lookup: unambiguous prefix resolves, short shared prefix
	// does not.
	if _, err := s2.Get(a.ID[:8]); err != nil && strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("unexpected ambiguity for %s: %v", a.ID[:8], err)
	}
	if _, err := s2.Get("zzzz"); err == nil {
		t.Fatal("Get of an absent id succeeded")
	}
}

// TestStoreIdempotentAppend: re-appending an identical record — the
// resumed-sweep path — neither grows the store nor its segment file.
func TestStoreIdempotentAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := testRun("sweep-unit", "memaware", 0, 10)
	for i := 0; i < 3; i++ {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d runs after idempotent appends, want 1", s.Len())
	}
	seg, err := os.ReadFile(filepath.Join(dir, "seg-000001.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(seg), "\n"); n != 1 {
		t.Fatalf("segment holds %d lines after idempotent appends, want 1", n)
	}

	// Same ID, different content: appended, later record wins on read.
	r2 := r
	r2.Label = "relabelled"
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d runs after overwrite, want 1", s.Len())
	}
	got, err := s.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "relabelled" {
		t.Fatalf("last append did not win: label %q", got.Label)
	}
}

// TestStoreSegmentsAcrossReopens: each appending session gets its own
// segment; a reopened store merges all of them.
func TestStoreSegmentsAcrossReopens(t *testing.T) {
	dir := t.TempDir()
	for seed := 0; seed < 3; seed++ {
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("session %d: %v", seed, err)
		}
		if err := s.Append(testRun("sweep-unit", "m", seed, float64(seed))); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 3 {
		t.Fatalf("store holds %d runs across 3 sessions, want 3", s.Len())
	}
	var idx storeIndex
	b, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Segments) != 3 {
		t.Fatalf("index lists %d segments, want 3: %v", len(idx.Segments), idx.Segments)
	}
}

// TestStoreTornTrailingLine: a crash-torn trailing append in the
// newest segment is dropped; the intact prefix loads.
func TestStoreTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRun("sweep-unit", "m", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRun("sweep-unit", "m", 1, 2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, "seg-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn trailing line must be tolerated: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("store holds %d runs after torn tail, want 1", s2.Len())
	}
}

// TestStoreInteriorCorruptionIsLoud: flipping bytes inside a
// non-trailing record fails Open with the segment and line named.
func TestStoreInteriorCorruptionIsLoud(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRun("sweep-unit", "m", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRun("sweep-unit", "m", 1, 2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, "seg-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := len(data) / 4
	data[i] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted interior corruption")
	} else if !strings.Contains(err.Error(), "seg-000001.jsonl") {
		t.Fatalf("corruption error does not name the segment: %v", err)
	}
}

// TestStoreRejectsForeignIndex: a schema or format mismatch in the
// index is an error, not a silent misread.
func TestStoreRejectsForeignIndex(t *testing.T) {
	dir := t.TempDir()
	idx := storeIndex{Format: storeFormat, Schema: "0000000000000000"}
	b, _ := json.Marshal(idx)
	if err := os.WriteFile(filepath.Join(dir, "index.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted an index with a foreign record schema")
	}

	idx = storeIndex{Format: "dmstore/99", Schema: runSchema()}
	b, _ = json.Marshal(idx)
	if err := os.WriteFile(filepath.Join(dir, "index.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted an index with a foreign format")
	}
}

// TestStoreMissingSegmentIsLoud: an index listing a segment that is
// gone is corruption, not an empty store.
func TestStoreMissingSegmentIsLoud(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRun("sweep-unit", "m", 0, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, "seg-000001.jsonl")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a missing segment")
	}
}

// TestKeyOf: identity depends on kind, spec and seed — not on label,
// report or series file.
func TestKeyOf(t *testing.T) {
	spec := []byte(`{"a":1}`)
	base := KeyOf("sweep-unit", spec, 0)
	if KeyOf("sweep-unit", spec, 0) != base {
		t.Fatal("KeyOf not deterministic")
	}
	if KeyOf("sweep-unit", spec, 1) == base {
		t.Fatal("seed does not change the key")
	}
	if KeyOf("sched", spec, 0) == base {
		t.Fatal("kind does not change the key")
	}
	if KeyOf("sweep-unit", []byte(`{"a":2}`), 0) == base {
		t.Fatal("spec does not change the key")
	}
	a := testRun("sweep-unit", "label-one", 0, 1)
	b := testRun("sweep-unit", "label-two", 0, 99)
	if a.ID != b.ID {
		t.Fatal("label or report leaked into identity")
	}
}
