// Package scenario defines a deterministic timeline of interventions
// applied to a running simulation: node and rack outages with recovery,
// pool capacity degradation and resize, remote-penalty (β) shifts,
// arrival-rate modulation (surge windows, diurnal cycles), and staged
// machine growth. A scenario is what turns the static evaluation of the
// paper into the operator questions a production site asks: "what does
// a 12-hour rack maintenance window cost?", "what if the fabric
// degrades by 50% at noon?", "can the backlog from a morning surge
// drain before the evening one?".
//
// Scenarios are compiled from a spec-style grammar in the same
// key=value family as internal/spec. Statements are separated by ';'
// or newlines; each statement is a set of space-separated key=value
// terms plus exactly one bare verb:
//
//	at=3600 down rack=2          # rack 2 fails at t=1 h (kills occupants)
//	at=7200 up rack=2            # ...and is repaired at t=2 h
//	at=3600 down node=17         # single-node variants
//	at=7200 up node=17
//	at=3600 resize pool=1 cap=1048576   # pool 1 degraded to 1 TiB
//	at=7200 resize pool=all cap=4194304 # all pools back to 4 TiB
//	at=3600 beta scale=2         # remote penalty doubles (fabric brownout)
//	at=86400 grow racks=2        # two new racks come online at day 1
//	from=3600 until=7200 rate=3 surge   # 3x arrival rate for an hour
//	from=0 period=86400 amp=0.5 diurnal # ±50% sinusoidal day/night cycle
//
// Timed interventions (down/up/resize/beta/grow) become ordinary DES
// events in the engine, so runs stay bit-identical per seed; arrival
// modulations (surge/diurnal) are applied to the workload's submission
// times before the run starts, by the same deterministic gap-stretching
// transform the synthetic generator uses. An empty scenario is
// guaranteed to leave a run bit-identical to a scenario-free run.
//
// Determinism and liveness contract (see DESIGN.md §5): interventions
// mutate the machine only through the sanctioned cluster surface
// (SetDown/SetUp/SetPoolCapacity/AddRack); jobs killed by an outage are
// resubmitted under the same restart budget as random failures; and a
// scenario must leave enough eventual capacity for every feasible job
// to finish — a rack that goes down and never comes back up can strand
// queued jobs, which the engine reports as an error at Finish.
package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the timed intervention kinds.
type Kind int

const (
	// Down takes a node or a whole rack out of service; occupants are
	// killed and resubmitted under the engine's restart budget.
	Down Kind = iota
	// Up returns a downed node or rack to service (a no-op for targets
	// that are not down).
	Up
	// Resize sets a pool's capacity. Shrinking below current use
	// degrades the pool: existing borrowers keep their memory, but no
	// new remote placement is admitted until usage drains below the new
	// capacity.
	Resize
	// Beta scales the remote penalty: every model-predicted dilation d
	// becomes 1 + Scale*(d-1) (a fabric brownout or recovery).
	Beta
	// Grow adds whole racks of fresh nodes (and, under rack topology,
	// their pools) to the machine.
	Grow
)

// String implements fmt.Stringer with the grammar's verb names.
func (k Kind) String() string {
	switch k {
	case Down:
		return "down"
	case Up:
		return "up"
	case Resize:
		return "resize"
	case Beta:
		return "beta"
	case Grow:
		return "grow"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllPools is the Event.Pool value meaning "every pool".
const AllPools = -1

// NoTarget marks an unused Rack/Node target field.
const NoTarget = -1

// Event is one timed intervention. Exactly the fields its Kind uses
// are meaningful; the rest hold their zero/NoTarget values so events
// compare cleanly with ==.
type Event struct {
	// At is the virtual time (seconds) the intervention fires.
	At int64
	// Kind selects the intervention.
	Kind Kind
	// Rack targets a whole rack for Down/Up (NoTarget when Node is
	// set).
	Rack int
	// Node targets a single node for Down/Up (NoTarget when Rack is
	// set).
	Node int
	// Pool targets a pool for Resize (AllPools for every pool).
	Pool int
	// CapMiB is the new pool capacity for Resize.
	CapMiB int64
	// Scale is the penalty multiplier for Beta.
	Scale float64
	// Racks is the number of racks Grow adds.
	Racks int
}

// String emits the event as one grammar statement that Parse accepts.
func (e Event) String() string {
	switch e.Kind {
	case Down, Up:
		if e.Node != NoTarget {
			return fmt.Sprintf("at=%d %s node=%d", e.At, e.Kind, e.Node)
		}
		return fmt.Sprintf("at=%d %s rack=%d", e.At, e.Kind, e.Rack)
	case Resize:
		if e.Pool == AllPools {
			return fmt.Sprintf("at=%d resize pool=all cap=%d", e.At, e.CapMiB)
		}
		return fmt.Sprintf("at=%d resize pool=%d cap=%d", e.At, e.Pool, e.CapMiB)
	case Beta:
		return fmt.Sprintf("at=%d beta scale=%s", e.At, formatFloat(e.Scale))
	case Grow:
		return fmt.Sprintf("at=%d grow racks=%d", e.At, e.Racks)
	default:
		return fmt.Sprintf("at=%d %s", e.At, e.Kind)
	}
}

// Validate reports the first structural problem with the event, or nil.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("scenario: %s at=%d before simulation start", e.Kind, e.At)
	}
	switch e.Kind {
	case Down, Up:
		rackSet, nodeSet := e.Rack != NoTarget, e.Node != NoTarget
		if rackSet == nodeSet {
			return fmt.Errorf("scenario: %s needs exactly one of rack= or node=", e.Kind)
		}
		if rackSet && e.Rack < 0 || nodeSet && e.Node < 0 {
			return fmt.Errorf("scenario: %s target must be non-negative", e.Kind)
		}
	case Resize:
		if e.Pool != AllPools && e.Pool < 0 {
			return fmt.Errorf("scenario: resize pool %d invalid (use pool=all for every pool)", e.Pool)
		}
		if e.CapMiB < 0 {
			return fmt.Errorf("scenario: resize cap %d < 0", e.CapMiB)
		}
	case Beta:
		if e.Scale <= 0 || math.IsNaN(e.Scale) || math.IsInf(e.Scale, 0) {
			return fmt.Errorf("scenario: beta scale %g must be a finite positive number", e.Scale)
		}
	case Grow:
		if e.Racks <= 0 {
			return fmt.Errorf("scenario: grow racks %d <= 0", e.Racks)
		}
	default:
		return fmt.Errorf("scenario: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// ModKind enumerates the arrival-rate modulation kinds.
type ModKind int

const (
	// Surge multiplies the arrival rate by Rate within [From, Until).
	Surge ModKind = iota
	// Diurnal modulates the arrival rate by 1 + Amp*sin(2π(t-From)/Period)
	// from From onward.
	Diurnal
)

// String implements fmt.Stringer with the grammar's verb names.
func (k ModKind) String() string {
	switch k {
	case Surge:
		return "surge"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("modkind(%d)", int(k))
	}
}

// Modulation is one arrival-rate modulation window. Modulations
// compose multiplicatively where they overlap.
type Modulation struct {
	// Kind selects the modulation shape.
	Kind ModKind
	// From is when the modulation starts (seconds).
	From int64
	// Until ends a surge window; 0 means "until the end of the trace".
	// Unused by Diurnal.
	Until int64
	// Rate is the surge arrival-rate multiplier.
	Rate float64
	// Period is the diurnal cycle length in seconds.
	Period int64
	// Amp is the diurnal amplitude in [0, 1).
	Amp float64
}

// String emits the modulation as one grammar statement.
func (m Modulation) String() string {
	switch m.Kind {
	case Surge:
		if m.Until > 0 {
			return fmt.Sprintf("from=%d until=%d rate=%s surge", m.From, m.Until, formatFloat(m.Rate))
		}
		return fmt.Sprintf("from=%d rate=%s surge", m.From, formatFloat(m.Rate))
	case Diurnal:
		return fmt.Sprintf("from=%d period=%d amp=%s diurnal", m.From, m.Period, formatFloat(m.Amp))
	default:
		return m.Kind.String()
	}
}

// Validate reports the first structural problem, or nil.
func (m Modulation) Validate() error {
	if m.From < 0 {
		return fmt.Errorf("scenario: %s from=%d before simulation start", m.Kind, m.From)
	}
	switch m.Kind {
	case Surge:
		if m.Rate <= 0 || math.IsNaN(m.Rate) || math.IsInf(m.Rate, 0) {
			return fmt.Errorf("scenario: surge rate %g must be a finite positive number", m.Rate)
		}
		if m.Until != 0 && m.Until <= m.From {
			return fmt.Errorf("scenario: surge window [%d, %d) is empty", m.From, m.Until)
		}
	case Diurnal:
		if m.Period <= 0 {
			return fmt.Errorf("scenario: diurnal period %d <= 0", m.Period)
		}
		if m.Amp < 0 || m.Amp >= 1 {
			return fmt.Errorf("scenario: diurnal amplitude %g outside [0, 1)", m.Amp)
		}
	default:
		return fmt.Errorf("scenario: unknown modulation kind %d", int(m.Kind))
	}
	return nil
}

// factor returns the modulation's rate multiplier at time t.
func (m Modulation) factor(t float64) float64 {
	if t < float64(m.From) {
		return 1
	}
	switch m.Kind {
	case Surge:
		if m.Until != 0 && t >= float64(m.Until) {
			return 1
		}
		return m.Rate
	case Diurnal:
		phase := 2 * math.Pi * (t - float64(m.From)) / float64(m.Period)
		return 1 + m.Amp*math.Sin(phase)
	default:
		return 1
	}
}

// Scenario is a full intervention timeline: timed events plus arrival
// modulations. The zero value (and a parsed empty spec) is the empty
// scenario, which leaves a simulation bit-identical to a scenario-free
// run. Scenarios are immutable once built and safe to share across
// concurrently running simulations.
type Scenario struct {
	// Events fire as ordinary DES events at their At times. Events at
	// the same instant fire in slice order.
	Events []Event
	// Mods reshape the workload's arrival process before the run.
	Mods []Modulation
}

// Empty reports whether the scenario intervenes at all.
func (s *Scenario) Empty() bool {
	return s == nil || (len(s.Events) == 0 && len(s.Mods) == 0)
}

// Modulates reports whether the scenario reshapes arrivals.
func (s *Scenario) Modulates() bool { return s != nil && len(s.Mods) > 0 }

// Rate returns the combined arrival-rate multiplier at time t: the
// product of every modulation's factor, floored at a small positive
// value so the time transform stays finite.
func (s *Scenario) Rate(t float64) float64 {
	r := 1.0
	for _, m := range s.Mods {
		r *= m.factor(t)
	}
	if r < 1e-9 {
		r = 1e-9
	}
	return r
}

// Validate reports the first invalid event or modulation, or nil.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	for _, e := range s.Events {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	for _, m := range s.Mods {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String emits the scenario in the grammar Parse accepts; Parse(s.String())
// reproduces s exactly (the round-trip property the tests pin down).
// Statements appear in input order: events first is NOT imposed — the
// original interleaving of events and modulations is not retained, so
// the canonical form lists events then modulations. Event order among
// events (and modulation order among modulations) is preserved, which
// is the only order that affects behavior.
func (s *Scenario) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, 0, len(s.Events)+len(s.Mods))
	for _, e := range s.Events {
		parts = append(parts, e.String())
	}
	for _, m := range s.Mods {
		parts = append(parts, m.String())
	}
	return strings.Join(parts, "; ")
}

// verbs names every statement verb, for error messages.
var verbs = []string{"down", "up", "resize", "beta", "grow", "surge", "diurnal"}

// Parse compiles a scenario spec (see the package comment for the
// grammar). An empty or all-whitespace spec yields the empty scenario.
func Parse(spec string) (*Scenario, error) {
	s := &Scenario{}
	normalized := strings.NewReplacer("\n", ";", "\r", ";").Replace(spec)
	for _, stmt := range strings.Split(normalized, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if err := parseStatement(s, stmt); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse for specs known valid at compile time; it panics
// on error.
func MustParse(spec string) *Scenario {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// parseStatement parses one verb statement and appends it to s.
func parseStatement(s *Scenario, stmt string) error {
	verb := ""
	terms := map[string]string{}
	for _, tok := range strings.Fields(stmt) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			if verb != "" {
				return fmt.Errorf("scenario: statement %q has two verbs (%q and %q)", stmt, verb, tok)
			}
			verb = tok
			continue
		}
		if k == "" || v == "" {
			return fmt.Errorf("scenario: malformed term %q in %q (want key=value)", tok, stmt)
		}
		if _, dup := terms[k]; dup {
			return fmt.Errorf("scenario: duplicate term %q in %q", k, stmt)
		}
		terms[k] = v
	}
	if verb == "" {
		return fmt.Errorf("scenario: statement %q has no verb (known: %v)", stmt, verbs)
	}

	used := map[string]bool{}
	intTerm := func(key string, def int64, required bool) (int64, error) {
		v, ok := terms[key]
		if !ok {
			if required {
				return 0, fmt.Errorf("scenario: %s needs %s= in %q", verb, key, stmt)
			}
			return def, nil
		}
		used[key] = true
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("scenario: %s=%s is not an integer in %q", key, v, stmt)
		}
		return n, nil
	}
	floatTerm := func(key string, required bool) (float64, bool, error) {
		v, ok := terms[key]
		if !ok {
			if required {
				return 0, false, fmt.Errorf("scenario: %s needs %s= in %q", verb, key, stmt)
			}
			return 0, false, nil
		}
		used[key] = true
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false, fmt.Errorf("scenario: %s=%s is not a number in %q", key, v, stmt)
		}
		return f, true, nil
	}

	switch verb {
	case "down", "up":
		at, err := intTerm("at", 0, true)
		if err != nil {
			return err
		}
		ev := Event{At: at, Kind: Down, Rack: NoTarget, Node: NoTarget}
		if verb == "up" {
			ev.Kind = Up
		}
		if _, ok := terms["rack"]; ok {
			r, err := intTerm("rack", 0, true)
			if err != nil {
				return err
			}
			ev.Rack = int(r)
		}
		if _, ok := terms["node"]; ok {
			n, err := intTerm("node", 0, true)
			if err != nil {
				return err
			}
			ev.Node = int(n)
		}
		s.Events = append(s.Events, ev)
	case "resize":
		at, err := intTerm("at", 0, true)
		if err != nil {
			return err
		}
		capMiB, err := intTerm("cap", 0, true)
		if err != nil {
			return err
		}
		pool := 0
		if pv, ok := terms["pool"]; ok && pv == "all" {
			used["pool"] = true
			pool = AllPools
		} else {
			p, err := intTerm("pool", 0, true)
			if err != nil {
				return err
			}
			pool = int(p)
		}
		s.Events = append(s.Events, Event{At: at, Kind: Resize, Rack: NoTarget, Node: NoTarget, Pool: pool, CapMiB: capMiB})
	case "beta":
		at, err := intTerm("at", 0, true)
		if err != nil {
			return err
		}
		scale, _, err := floatTerm("scale", true)
		if err != nil {
			return err
		}
		s.Events = append(s.Events, Event{At: at, Kind: Beta, Rack: NoTarget, Node: NoTarget, Scale: scale})
	case "grow":
		at, err := intTerm("at", 0, true)
		if err != nil {
			return err
		}
		racks, err := intTerm("racks", 1, false)
		if err != nil {
			return err
		}
		s.Events = append(s.Events, Event{At: at, Kind: Grow, Rack: NoTarget, Node: NoTarget, Racks: int(racks)})
	case "surge":
		from, err := intTerm("from", 0, false)
		if err != nil {
			return err
		}
		until, err := intTerm("until", 0, false)
		if err != nil {
			return err
		}
		rate, _, err := floatTerm("rate", true)
		if err != nil {
			return err
		}
		s.Mods = append(s.Mods, Modulation{Kind: Surge, From: from, Until: until, Rate: rate})
	case "diurnal":
		from, err := intTerm("from", 0, false)
		if err != nil {
			return err
		}
		period, err := intTerm("period", 86400, false)
		if err != nil {
			return err
		}
		amp, _, err := floatTerm("amp", true)
		if err != nil {
			return err
		}
		s.Mods = append(s.Mods, Modulation{Kind: Diurnal, From: from, Period: period, Amp: amp})
	default:
		return fmt.Errorf("scenario: unknown verb %q in %q (known: %v)", verb, stmt, verbs)
	}

	for k := range terms {
		if !used[k] {
			return fmt.Errorf("scenario: term %s= does not apply to %s in %q", k, verb, stmt)
		}
	}
	return nil
}

// formatFloat emits floats the way the grammar reads them back
// losslessly ('g' with full precision parses to the same value).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
