package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestParseRoundTrip pins the grammar's round-trip property for every
// documented intervention kind: Parse(s.String()) reproduces s exactly.
func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"at=3600 down rack=2",
		"at=3600 down node=17",
		"at=7200 up rack=2",
		"at=7200 up node=17",
		"at=3600 resize pool=1 cap=1048576",
		"at=7200 resize pool=all cap=4194304",
		"at=3600 beta scale=2",
		"at=3600 beta scale=0.5",
		"at=86400 grow racks=2",
		"from=3600 until=7200 rate=3 surge",
		"from=3600 rate=0.25 surge",
		"from=0 period=86400 amp=0.5 diurnal",
		// The issue's motivating example.
		"at=3600 down rack=2; at=7200 up rack=2; from=0 period=86400 amp=0.5 diurnal",
		// Multi-statement with every kind at once.
		"at=0 down node=3; at=10 resize pool=0 cap=0; at=20 beta scale=1.5; at=30 grow racks=1; at=40 up node=3; from=5 until=15 rate=2 surge",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		out := s.String()
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", spec, out, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("round trip of %q via %q:\n got %+v\nwant %+v", spec, out, s2, s)
		}
		if out2 := s2.String(); out2 != out {
			t.Errorf("String not a fixed point for %q: %q then %q", spec, out, out2)
		}
	}
}

// TestParseStatementSeparators accepts ';' and newlines interchangeably.
func TestParseStatementSeparators(t *testing.T) {
	a := MustParse("at=1 down rack=0; at=2 up rack=0")
	b := MustParse("at=1 down rack=0\nat=2 up rack=0")
	c := MustParse("  at=1 down rack=0 ;\n ; at=2 up rack=0 ; ")
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Fatalf("separator forms disagree: %+v vs %+v vs %+v", a, b, c)
	}
}

// TestParseEmpty yields the empty scenario for empty input.
func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", ";;", "\n\n"} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if !s.Empty() {
			t.Errorf("Parse(%q) not empty: %+v", spec, s)
		}
		if s.String() != "" {
			t.Errorf("empty scenario String() = %q", s.String())
		}
	}
	var nilScenario *Scenario
	if !nilScenario.Empty() {
		t.Error("nil scenario should be Empty")
	}
	if err := nilScenario.Validate(); err != nil {
		t.Errorf("nil scenario Validate: %v", err)
	}
}

// TestParseErrors rejects malformed specs with a pointed message.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"frobnicate at=1", "unknown verb"},
		{"at=1", "no verb"},
		{"at=1 down", "exactly one of rack= or node="},
		{"at=1 down rack=0 node=1", "exactly one of rack= or node="},
		{"down rack=0", "needs at="},
		{"at=-5 down rack=0", "before simulation start"},
		{"at=x down rack=0", "not an integer"},
		{"at=1 down rack=0 up", "two verbs"},
		{"at=1 down rack=0 rack=1", "duplicate term"},
		{"at=1 down rack=0 pool=2", "does not apply"},
		{"at=1 resize pool=0", "needs cap="},
		{"at=1 resize cap=5", "needs pool="},
		{"at=1 resize pool=0 cap=-1", "cap -1 < 0"},
		{"at=1 beta", "needs scale="},
		{"at=1 beta scale=0", "finite positive"},
		{"at=1 beta scale=-2", "finite positive"},
		{"at=1 grow racks=0", "racks 0 <= 0"},
		{"from=1 surge", "needs rate="},
		{"from=10 until=5 rate=2 surge", "window [10, 5) is empty"},
		{"rate=0 surge", "finite positive"},
		{"amp=1 diurnal", "outside [0, 1)"},
		{"amp=-0.1 diurnal", "outside [0, 1)"},
		{"period=-1 amp=0.5 diurnal", "period -1 <= 0"},
		{"at=1 down rack", "two verbs"},
		{"at= down rack=0", "malformed term"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", c.spec, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.spec, err, c.wantSub)
		}
	}
}

// TestGrowDefaultsToOneRack omitted racks= means one rack.
func TestGrowDefaultsToOneRack(t *testing.T) {
	s := MustParse("at=5 grow")
	if len(s.Events) != 1 || s.Events[0].Racks != 1 {
		t.Fatalf("grow default: %+v", s.Events)
	}
}

// TestRate checks the combined modulation factor.
func TestRate(t *testing.T) {
	s := MustParse("from=100 until=200 rate=3 surge; from=0 period=400 amp=0.5 diurnal")
	// Before the surge: diurnal only. At t=100 the sine is sin(π/2)=1.
	if got, want := s.Rate(100), 3*(1+0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("Rate(100) = %g, want %g", got, want)
	}
	// At t=300 the surge has ended and sin(3π/2) = -1.
	if got, want := s.Rate(300), 1-0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Rate(300) = %g, want %g", got, want)
	}
	// Before a modulation's From it contributes nothing.
	late := MustParse("from=1000 rate=9 surge")
	if got := late.Rate(10); got != 1 {
		t.Errorf("Rate before From = %g, want 1", got)
	}
	// The floor keeps the transform finite even for pathological products.
	deep := &Scenario{Mods: []Modulation{
		{Kind: Surge, From: 0, Rate: 1e-12},
	}}
	if got := deep.Rate(5); got <= 0 {
		t.Errorf("Rate floor violated: %g", got)
	}
	// An open-ended surge stays active.
	open := MustParse("from=50 rate=2 surge")
	if got := open.Rate(1e9); got != 2 {
		t.Errorf("open surge Rate = %g, want 2", got)
	}
}

// TestEventStringUnknownKind keeps String total.
func TestEventStringUnknownKind(t *testing.T) {
	e := Event{At: 5, Kind: Kind(99)}
	if !strings.Contains(e.String(), "kind(99)") {
		t.Errorf("unknown kind String: %q", e.String())
	}
	if err := e.Validate(); err == nil {
		t.Error("unknown kind should not validate")
	}
}
