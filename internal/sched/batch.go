package sched

import (
	"fmt"
	"math"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

// BackfillMode selects the backfilling discipline of a Batch scheduler.
type BackfillMode int

const (
	// BackfillNone dispatches strictly in queue order; the first job
	// that cannot start blocks everything behind it.
	BackfillNone BackfillMode = iota
	// BackfillEASY lets later jobs jump ahead if they do not delay the
	// queue head's reservation (aggressive backfilling).
	BackfillEASY
	// BackfillConservative lets jobs jump ahead only if they delay no
	// earlier job's reservation.
	BackfillConservative
)

// String implements fmt.Stringer.
func (m BackfillMode) String() string {
	switch m {
	case BackfillNone:
		return "none"
	case BackfillEASY:
		return "easy"
	case BackfillConservative:
		return "conservative"
	default:
		return fmt.Sprintf("backfill(%d)", int(m))
	}
}

// Batch composes a queue order, a backfill discipline, and a placement
// policy into a scheduler. It is the chassis for every policy in the
// evaluation; the memory-aware contribution plugs in as the Placer.
type Batch struct {
	// PolicyName overrides the derived name when non-empty.
	PolicyName string
	Order      Order
	Backfill   BackfillMode
	Placer     Placer
	// MaxBackfillScan caps how many queued jobs one EASY pass examines
	// behind the head (0 = all). Production schedulers cap this to
	// bound pass latency.
	MaxBackfillScan int
	// MaxReservations caps conservative planning depth (0 = 128).
	MaxReservations int
	// SpillPatience delays spilling: a job that would be placed with
	// dilation > 1 while younger than this many seconds keeps waiting
	// for local capacity instead (0 disables). Jobs past their
	// patience spill normally, so nothing starves.
	SpillPatience int64
	// MaxPerUser caps concurrently running jobs per user (0 =
	// unlimited); throttled jobs are skipped, not treated as blocking.
	MaxPerUser int

	// Per-pass scratch, reused across passes so the steady-state pass
	// allocates nothing: the sorted queue copy, the dispatch list Pass
	// returns (valid until the next Pass, see Scheduler), and the
	// conservative planning profile. A Batch instance is owned by one
	// run at a time (see sim.Overrides.Scheduler).
	qScratch   []*workload.Job
	outScratch []Dispatch
	prof       Profile
}

// tryPlan applies the chassis-level admission knobs around the
// placement policy. blocking reports whether a nil plan represents a
// genuine resource block (an EASY head candidate) rather than a policy
// choice to skip this job for now.
func (b *Batch) tryPlan(ctx *Context, job *workload.Job) (plan *Plan, blocking bool) {
	if b.MaxPerUser > 0 && ctx.RunningOfUser(job.User) >= b.MaxPerUser {
		return nil, false
	}
	p := b.Placer.Plan(job, ctx.Machine, ctx.Model)
	if p == nil {
		return nil, true
	}
	if b.SpillPatience > 0 && p.Dilation > 1 && ctx.Now-job.Submit < b.SpillPatience {
		return nil, false
	}
	return p, false
}

// Name implements Scheduler.
func (b *Batch) Name() string {
	if b.PolicyName != "" {
		return b.PolicyName
	}
	return fmt.Sprintf("%s+%s+%s", b.Order.Name(), b.Backfill, b.Placer.Name())
}

// Feasible implements Scheduler by delegating to the placement policy.
func (b *Batch) Feasible(job *workload.Job, m *cluster.Machine, model memmodel.Model) bool {
	return b.Placer.Feasible(job, m, model)
}

// Pass implements Scheduler.
func (b *Batch) Pass(ctx *Context) []Dispatch {
	b.qScratch = append(b.qScratch[:0], ctx.Queue...)
	q := b.qScratch
	b.Order.Sort(ctx.Now, q)
	var out []Dispatch
	switch b.Backfill {
	case BackfillConservative:
		out = b.passConservative(ctx, q)
	default:
		out = b.passEASY(ctx, q)
	}
	b.outScratch = out
	return out
}

// commit commits plan for job through the machine's allocation free
// list and returns the dispatch carrying the committed (machine-owned)
// copy. A commit failure is a planner bug, not a recoverable condition.
func commit(ctx *Context, job *workload.Job, plan *Plan) Dispatch {
	alloc, err := ctx.Machine.AllocateCopy(plan.Alloc)
	if err != nil {
		panic(fmt.Sprintf("sched: committing plan for job %d: %v", job.ID, err))
	}
	return Dispatch{Job: job, Plan: Plan{Alloc: alloc, Dilation: plan.Dilation}}
}

// passEASY handles both BackfillNone and BackfillEASY: dispatch in
// order until the first blocked job; with EASY, continue scanning and
// start any job that cannot delay the head's reservation.
func (b *Batch) passEASY(ctx *Context, q []*workload.Job) []Dispatch {
	out := b.outScratch[:0]
	i := 0
	for ; i < len(q); i++ {
		plan, blocking := b.tryPlan(ctx, q[i])
		if plan == nil {
			if blocking {
				break
			}
			continue // throttled or patient: does not block the queue
		}
		out = append(out, commit(ctx, q[i], plan))
	}
	if b.Backfill == BackfillNone || i >= len(q) {
		return out
	}

	head := q[i]
	shadow, extraNodes, extraPool := b.headReservation(ctx, head)
	scanned := 0
	for j := i + 1; j < len(q); j++ {
		if b.MaxBackfillScan > 0 && scanned >= b.MaxBackfillScan {
			break
		}
		scanned++
		cand := q[j]
		plan, _ := b.tryPlan(ctx, cand)
		if plan == nil {
			continue
		}
		limit := ctx.Limit(cand, plan.Dilation)
		endsBeforeShadow := ctx.Now+limit <= shadow
		remote := plan.Alloc.RemoteMiB()
		if !endsBeforeShadow {
			if cand.Nodes > extraNodes || remote > extraPool {
				continue
			}
		}
		out = append(out, commit(ctx, cand, plan))
		if !endsBeforeShadow {
			extraNodes -= cand.Nodes
			extraPool -= remote
		}
	}
	return out
}

// headReservation computes the EASY shadow time for the blocked queue
// head — the earliest instant aggregate free nodes and pool memory
// cover the head's minimal needs — plus the extra capacity that will
// remain at that instant, which backfilled jobs running past the shadow
// may consume.
func (b *Batch) headReservation(ctx *Context, head *workload.Job) (shadow int64, extraNodes int, extraPool int64) {
	needNodes := head.Nodes
	needPool := RemoteNeed(head, ctx.Machine)

	freeNodes := ctx.Machine.FreeNodes()
	var freePool int64
	for _, p := range ctx.Machine.Pools() {
		freePool += p.FreeMiB()
	}
	if freeNodes >= needNodes && freePool >= needPool {
		// The head fits by aggregate counts but exact placement failed
		// (per-rack fragmentation). Treat now as the shadow.
		return ctx.Now, freeNodes - needNodes, freePool - needPool
	}

	for _, r := range ctx.ByEnd() {
		freeNodes += len(r.Alloc.Shares)
		freePool += r.Alloc.RemoteMiB()
		if freeNodes >= needNodes && freePool >= needPool {
			return r.GuaranteedEnd(), freeNodes - needNodes, freePool - needPool
		}
	}
	// Unsatisfiable even with everything free: the head is infeasible
	// for this machine (the engine rejects such jobs at submission, so
	// this is defensive). No backfill.
	return math.MaxInt64, 0, 0
}

// passConservative plans every queued job (up to MaxReservations) into
// an aggregate capacity profile, dispatching those whose reservation
// starts now and an exact placement exists.
func (b *Batch) passConservative(ctx *Context, q []*workload.Job) []Dispatch {
	maxRes := b.MaxReservations
	if maxRes <= 0 {
		maxRes = 128
	}
	freeNodes := ctx.Machine.FreeNodes()
	var freePool int64
	for _, p := range ctx.Machine.Pools() {
		freePool += p.FreeMiB()
	}
	// Feeding releases in ascending end order keeps every AddRelease an
	// O(1) append to the profile tail instead of a mid-slice insert.
	prof := &b.prof
	prof.Reset(ctx.Now, freeNodes, freePool)
	for _, r := range ctx.ByEnd() {
		prof.AddRelease(r.GuaranteedEnd(), len(r.Alloc.Shares), r.Alloc.RemoteMiB())
	}

	out := b.outScratch[:0]
	for k, job := range q {
		if k >= maxRes {
			break
		}
		if b.MaxPerUser > 0 && ctx.RunningOfUser(job.User) >= b.MaxPerUser {
			continue // throttled: try again next pass, no reservation
		}
		needPool := RemoteNeed(job, ctx.Machine)
		dur := ctx.Limit(job, b.Placer.PlanDilation(job, ctx.Machine, ctx.Model))
		start := prof.EarliestFit(ctx.Now, dur, job.Nodes, needPool)
		if start == ctx.Now {
			if plan, _ := b.tryPlan(ctx, job); plan != nil {
				d := commit(ctx, job, plan)
				end := ctx.Now + ctx.Limit(job, plan.Dilation)
				prof.Reserve(ctx.Now, end, job.Nodes, d.Plan.Alloc.RemoteMiB())
				out = append(out, d)
				continue
			}
			// Aggregate capacity exists but the placement is
			// fragmented; hold the reservation at now so no later job
			// overtakes it (conservative guarantee).
		}
		if start < math.MaxInt64 {
			prof.Reserve(start, start+dur, job.Nodes, needPool)
		}
	}
	return out
}
