package sched

import (
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/workload"
)

// oneRackConfig: 1 rack x 4 nodes, 1000 MiB local, pool per test.
func oneRackConfig(poolMiB int64) cluster.Config {
	cfg := cluster.Config{
		Racks: 1, NodesPerRack: 4, CoresPerNode: 8, LocalMemMiB: 1000,
		Topology: cluster.TopologyNone,
	}
	if poolMiB > 0 {
		cfg.Topology = cluster.TopologyRack
		cfg.PoolMiB = poolMiB
		cfg.FabricGiBps = 10
		cfg.TrafficGiBpsPerNode = 2
	}
	return cfg
}

// startRunning commits an allocation for job and returns the RunningJob
// entry as the engine would report it.
func startRunning(t *testing.T, m *cluster.Machine, placer Placer, j *workload.Job, start, limit int64) RunningJob {
	t.Helper()
	plan := placer.Plan(j, m, nil)
	if plan == nil {
		t.Fatalf("cannot start fixture job %d", j.ID)
	}
	if err := m.Allocate(plan.Alloc); err != nil {
		t.Fatal(err)
	}
	return RunningJob{Job: j, Start: start, Limit: limit, Alloc: plan.Alloc}
}

func timedJob(id, nodes int, mem, estimate int64) *workload.Job {
	return &workload.Job{
		ID: id, Nodes: nodes, MemPerNode: mem,
		Submit: 0, Estimate: estimate, BaseRuntime: estimate,
	}
}

func dispatchIDs(ds []Dispatch) []int {
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = d.Job.ID
	}
	return out
}

func TestBackfillNoneBlocksBehindHead(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillNone, Placer: LocalOnly{}}
	running := []RunningJob{startRunning(t, m, LocalOnly{}, timedJob(90, 3, 100, 100), 0, 100)}
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 4, 100, 50), // blocked: only 1 node free
			timedJob(2, 1, 100, 50), // would fit, but FCFS-no-backfill
		},
		Running: running,
	}
	ds := b.Pass(ctx)
	if len(ds) != 0 {
		t.Fatalf("no-backfill dispatched %v past a blocked head", dispatchIDs(ds))
	}
}

func TestEASYBackfillShortJob(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillEASY, Placer: LocalOnly{}}
	// Job 90 holds 3 nodes until t=100 → head (4 nodes) has shadow 100.
	running := []RunningJob{startRunning(t, m, LocalOnly{}, timedJob(90, 3, 100, 100), 0, 100)}
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 4, 100, 500), // head, blocked
			timedJob(2, 1, 100, 200), // ends at 200 > shadow, extra=0 → denied
			timedJob(3, 1, 100, 100), // ends at 100 = shadow → backfilled
		},
		Running: running,
	}
	ds := b.Pass(ctx)
	if got := dispatchIDs(ds); len(got) != 1 || got[0] != 3 {
		t.Fatalf("dispatched %v, want [3]", got)
	}
	if m.FreeNodes() != 0 {
		t.Fatalf("free nodes = %d, want 0", m.FreeNodes())
	}
}

func TestEASYBackfillUsesExtraNodes(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillEASY, Placer: LocalOnly{}}
	// Job 90 holds 2 nodes until t=100; head needs 3.
	// At shadow: free = 2 (now) + 2 (freed) = 4; extra = 4 - 3 = 1.
	running := []RunningJob{startRunning(t, m, LocalOnly{}, timedJob(90, 2, 100, 100), 0, 100)}
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 3, 100, 500),  // head, blocked (2 free)
			timedJob(2, 1, 100, 9999), // long, fits in the 1 extra node
			timedJob(3, 1, 100, 9999), // long, extra exhausted → denied
		},
		Running: running,
	}
	ds := b.Pass(ctx)
	if got := dispatchIDs(ds); len(got) != 1 || got[0] != 2 {
		t.Fatalf("dispatched %v, want [2]", got)
	}
}

func TestEASYDispatchesInOrderBeforeBlock(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillEASY, Placer: LocalOnly{}}
	ctx := &Context{
		Now: 5, Machine: m, Queue: []*workload.Job{
			timedJob(1, 2, 100, 100),
			timedJob(2, 2, 100, 100),
		},
	}
	ds := b.Pass(ctx)
	if got := dispatchIDs(ds); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("dispatched %v, want [1 2]", got)
	}
}

func TestEASYPoolReservationProtected(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(1000))
	b := &Batch{Order: FCFS{}, Backfill: BackfillEASY, Placer: Spill{}}
	// Fixture job holds 1 node + 600 MiB pool until t=100.
	fix := timedJob(90, 1, 1600, 100)
	plan := (Spill{}).Plan(fix, m, nil)
	if plan == nil || plan.Alloc.RemoteMiB() != 600 {
		t.Fatalf("fixture plan = %+v", plan)
	}
	if err := m.Allocate(plan.Alloc); err != nil {
		t.Fatal(err)
	}
	running := []RunningJob{{Job: fix, Start: 0, Limit: 100, Alloc: plan.Alloc}}

	// Head needs 800 MiB pool; only 400 free → blocked, shadow = 100,
	// extraPool = (400+600) - 800 = 200.
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 1, 1800, 500),  // head
			timedJob(2, 1, 1400, 9999), // needs 400 pool > extraPool → denied
			timedJob(3, 1, 1150, 9999), // needs 150 pool <= extraPool → ok
		},
		Running: running,
	}
	ds := b.Pass(ctx)
	if got := dispatchIDs(ds); len(got) != 1 || got[0] != 3 {
		t.Fatalf("dispatched %v, want [3]", got)
	}
}

func TestEASYShadowNowOnFragmentation(t *testing.T) {
	// Aggregate capacity exists but the head cannot place (per-rack pool
	// fragmentation): shadow must be "now" and extras computed from the
	// present state, still allowing harmless backfill.
	cfg := cluster.Config{
		Racks: 2, NodesPerRack: 2, CoresPerNode: 8, LocalMemMiB: 1000,
		Topology: cluster.TopologyRack, PoolMiB: 1000, FabricGiBps: 10,
		TrafficGiBpsPerNode: 2,
	}
	m := cluster.MustNew(cfg)
	// Take 600 MiB from each pool: neither rack can serve an 800 MiB
	// spill, but the aggregate (800) suggests it fits.
	for i, node := range []cluster.NodeID{0, 2} {
		a := &cluster.Allocation{JobID: 90 + i, Shares: []cluster.NodeShare{
			{Node: node, LocalMiB: 1000, RemoteMiB: 600, Pool: m.PoolOf(node)},
		}}
		if err := m.Allocate(a); err != nil {
			t.Fatal(err)
		}
	}
	b := &Batch{Order: FCFS{}, Backfill: BackfillEASY, Placer: Spill{}}
	alloc0, _ := m.AllocationOf(90)
	alloc1, _ := m.AllocationOf(91)
	ctx := &Context{
		Now: 0, Machine: m,
		Queue: []*workload.Job{
			timedJob(1, 1, 1800, 500), // head: needs 800 on one pool → fragmented
			timedJob(2, 1, 500, 100),  // local-fitting backfill candidate
		},
		Running: []RunningJob{
			{Job: timedJob(90, 1, 1600, 100), Start: 0, Limit: 100, Alloc: alloc0},
			{Job: timedJob(91, 1, 1600, 100), Start: 0, Limit: 100, Alloc: alloc1},
		},
	}
	ds := b.Pass(ctx)
	if got := dispatchIDs(ds); len(got) != 1 || got[0] != 2 {
		t.Fatalf("dispatched %v, want [2]", got)
	}
}

func TestConservativePass(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillConservative, Placer: LocalOnly{}}
	// Job 90 holds 2 nodes until t=100.
	running := []RunningJob{startRunning(t, m, LocalOnly{}, timedJob(90, 2, 100, 100), 0, 100)}
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 4, 100, 100), // reserved at t=100
			timedJob(2, 2, 100, 100), // fits [0,100) without touching J1's slot
			timedJob(3, 2, 100, 101), // would overlap J1's reservation → waits
		},
		Running: running,
	}
	ds := b.Pass(ctx)
	if got := dispatchIDs(ds); len(got) != 1 || got[0] != 2 {
		t.Fatalf("dispatched %v, want [2]", got)
	}
}

func TestConservativeRespectsEarlierReservationChain(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillConservative, Placer: LocalOnly{}}
	running := []RunningJob{startRunning(t, m, LocalOnly{}, timedJob(90, 3, 100, 100), 0, 100)}
	// J1 reserved at 100 (4 nodes, dur 100); J2 reserved at 200; a job
	// fitting only by delaying J2 must not start.
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 4, 100, 100),
			timedJob(2, 4, 100, 100),
			timedJob(3, 1, 100, 150), // free node now, but would run into J1 at 100
		},
		Running: running,
	}
	ds := b.Pass(ctx)
	if len(ds) != 0 {
		t.Fatalf("dispatched %v, want none (all conflict with reservations)", dispatchIDs(ds))
	}
}

func TestConservativeMaxReservations(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillConservative, Placer: LocalOnly{}, MaxReservations: 1}
	running := []RunningJob{startRunning(t, m, LocalOnly{}, timedJob(90, 3, 100, 100), 0, 100)}
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 4, 100, 100), // planned (reservation 1)
			timedJob(2, 1, 100, 50),  // beyond planning depth → not dispatched
		},
		Running: running,
	}
	if ds := b.Pass(ctx); len(ds) != 0 {
		t.Fatalf("dispatched %v beyond MaxReservations", dispatchIDs(ds))
	}
}

func TestEASYMaxBackfillScan(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{Order: FCFS{}, Backfill: BackfillEASY, Placer: LocalOnly{}, MaxBackfillScan: 1}
	running := []RunningJob{startRunning(t, m, LocalOnly{}, timedJob(90, 3, 100, 100), 0, 100)}
	ctx := &Context{
		Now: 0, Machine: m, Queue: []*workload.Job{
			timedJob(1, 4, 100, 500), // head
			timedJob(2, 2, 100, 100), // scanned but does not fit (1 free)
			timedJob(3, 1, 100, 100), // would backfill, but beyond scan cap
		},
		Running: running,
	}
	if ds := b.Pass(ctx); len(ds) != 0 {
		t.Fatalf("dispatched %v past MaxBackfillScan", dispatchIDs(ds))
	}
}

func TestBatchNameAndFeasible(t *testing.T) {
	b := &Batch{Order: FCFS{}, Backfill: BackfillEASY, Placer: LocalOnly{}}
	if b.Name() != "fcfs+easy+local" {
		t.Fatalf("derived name = %q", b.Name())
	}
	b.PolicyName = "custom"
	if b.Name() != "custom" {
		t.Fatalf("override name = %q", b.Name())
	}
	m := cluster.MustNew(oneRackConfig(0))
	if !b.Feasible(timedJob(1, 4, 1000, 10), m, nil) {
		t.Fatal("feasible job rejected")
	}
	if b.Feasible(timedJob(1, 5, 1000, 10), m, nil) {
		t.Fatal("too-wide job accepted")
	}
}

func TestContextLimit(t *testing.T) {
	j := timedJob(1, 1, 100, 1000)
	ctx := &Context{ExtendLimit: false}
	if got := ctx.Limit(j, 2.0); got != 1000 {
		t.Fatalf("limit without extension = %d, want 1000", got)
	}
	ctx.ExtendLimit = true
	if got := ctx.Limit(j, 1.5); got != 1500 {
		t.Fatalf("extended limit = %d, want 1500", got)
	}
	if got := ctx.Limit(j, 0.5); got != 1000 {
		t.Fatalf("limit with dilation < 1 = %d, want 1000", got)
	}
	// Fractional dilations round the limit up.
	if got := ctx.Limit(j, 1.0001); got != 1001 {
		t.Fatalf("rounded limit = %d, want 1001", got)
	}
}

func TestBackfillModeString(t *testing.T) {
	for m, want := range map[BackfillMode]string{
		BackfillNone: "none", BackfillEASY: "easy",
		BackfillConservative: "conservative", BackfillMode(9): "backfill(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("BackfillMode(%d) = %q, want %q", int(m), got, want)
		}
	}
}
