// Package sched implements batch schedulers for the simulated machine:
// queue-ordering policies (FCFS, SJF, WFP, largest-first), backfilling
// (EASY and conservative), and placement policies (local-DRAM-only and
// disaggregation-oblivious spill). The disaggregation-aware placement
// policy — the paper's contribution — lives in internal/core and plugs
// into the same interfaces.
package sched

import (
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

// RunningJob is the scheduler-visible state of a dispatched job.
type RunningJob struct {
	Job   *workload.Job
	Start int64
	// Limit is the job's wall-clock limit in seconds (the user estimate,
	// possibly extended for predicted dilation by the engine's limit
	// rule). Start+Limit is the latest instant the job can hold nodes.
	Limit int64
	Alloc *cluster.Allocation
}

// GuaranteedEnd returns the latest time the job's resources are held.
func (r *RunningJob) GuaranteedEnd() int64 { return r.Start + r.Limit }

// Context is everything a scheduler may consult during one pass. The
// machine is live: committing an allocation immediately updates it so
// later placements in the same pass see the new state.
type Context struct {
	Now     int64
	Machine *cluster.Machine
	Model   memmodel.Model
	// Queue holds pending jobs in arrival order; schedulers reorder a
	// copy according to their queue policy.
	Queue []*workload.Job
	// Running holds dispatched jobs, unordered.
	Running []RunningJob
	// ExtendLimit mirrors the engine's limit rule: when true, a job
	// placed with predicted dilation D gets limit = ceil(estimate*D)
	// instead of estimate, and planners must reserve accordingly.
	ExtendLimit bool
	// ByEndFn, when set by the engine, returns Running sorted by
	// (GuaranteedEnd, JobID) from incrementally maintained state, so a
	// pass never re-sorts the running set. ByEnd falls back to sorting
	// a copy when it is nil.
	ByEndFn func() []RunningJob

	userRunning map[int]int
	userBuilt   bool
	byEnd       []RunningJob
	byEndValid  bool
}

// Reset clears the per-pass memoized state (the lazy per-user counts
// and the ByEnd view) so one Context value can be reused across passes
// without reallocating its internals. The exported fields are left for
// the caller to refill.
func (c *Context) Reset() {
	clear(c.userRunning)
	c.userBuilt = false
	c.byEnd = nil
	c.byEndValid = false
}

// RunningOfUser returns how many jobs of user are in the Running
// snapshot (jobs dispatched during the current pass are not counted).
// The per-user counts are built once per pass, so per-job throttling
// checks are O(1) instead of O(running).
func (c *Context) RunningOfUser(user int) int {
	if !c.userBuilt {
		if c.userRunning == nil {
			c.userRunning = make(map[int]int, len(c.Running))
		}
		for i := range c.Running {
			c.userRunning[c.Running[i].Job.User]++
		}
		c.userBuilt = true
	}
	return c.userRunning[user]
}

// ByEnd returns the running jobs sorted by (GuaranteedEnd, JobID), the
// order reservation planners consume releases in. The view is computed
// at most once per Context.
func (c *Context) ByEnd() []RunningJob {
	if c.byEndValid {
		return c.byEnd
	}
	if c.ByEndFn != nil {
		c.byEnd = c.ByEndFn()
	} else {
		c.byEnd = append([]RunningJob(nil), c.Running...)
		sort.Slice(c.byEnd, func(i, j int) bool {
			ei, ej := c.byEnd[i].GuaranteedEnd(), c.byEnd[j].GuaranteedEnd()
			if ei != ej {
				return ei < ej
			}
			return c.byEnd[i].Job.ID < c.byEnd[j].Job.ID
		})
	}
	c.byEndValid = true
	return c.byEnd
}

// Limit returns the wall-clock limit the engine will assign to job if
// started now with predicted dilation.
func (c *Context) Limit(job *workload.Job, dilation float64) int64 {
	if !c.ExtendLimit || dilation <= 1 {
		return job.Estimate
	}
	l := int64(float64(job.Estimate)*dilation + 0.999999)
	if l < job.Estimate {
		l = job.Estimate
	}
	return l
}

// Dispatch is one job started during a pass; its allocation is already
// committed to the machine. Plan.Alloc is the committed allocation (the
// machine-owned copy when the scheduler commits via AllocateCopy), so
// it stays valid for the job's whole residency even when the placer
// recycles its planning scratch.
type Dispatch struct {
	Job  *workload.Job
	Plan Plan
}

// Scheduler examines the queue and starts jobs. Pass commits the
// allocations of returned dispatches to ctx.Machine before returning.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Pass runs one scheduling cycle and returns the started jobs in
	// dispatch order. The returned slice may be scheduler-owned scratch,
	// valid only until the next Pass call; callers that need it longer
	// must copy it.
	Pass(ctx *Context) []Dispatch
	// Feasible reports whether job could ever run on an idle machine m
	// under the given memory model; the engine rejects infeasible jobs
	// at submission so they cannot block the queue forever.
	Feasible(job *workload.Job, m *cluster.Machine, model memmodel.Model) bool
}
