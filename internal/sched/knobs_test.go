package sched

import (
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

// spillJob needs 600 MiB of pool memory per node on the 1000 MiB-local
// machine from batch_test.go.
func spillJob(id int, submit int64) *workload.Job {
	return &workload.Job{
		ID: id, Nodes: 1, MemPerNode: 1600,
		Submit: submit, Estimate: 1000, BaseRuntime: 500,
	}
}

func TestSpillPatienceDelaysDilatedPlacement(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(4000))
	b := &Batch{
		Order: FCFS{}, Backfill: BackfillEASY, Placer: Spill{},
		SpillPatience: 600,
	}
	model := memmodel.Linear{Beta: 1}
	// Job submitted at t=0, pass at t=100: younger than patience →
	// held back even though the machine is idle.
	ctx := &Context{
		Now: 100, Machine: m, Model: model,
		Queue: []*workload.Job{spillJob(1, 0)},
	}
	if ds := b.Pass(ctx); len(ds) != 0 {
		t.Fatalf("patient scheduler spilled a young job: %v", dispatchIDs(ds))
	}
	// Same job past its patience: spills normally.
	ctx.Now = 700
	ds := b.Pass(ctx)
	if len(ds) != 1 || ds[0].Job.ID != 1 {
		t.Fatalf("job not spilled after patience: %v", dispatchIDs(ds))
	}
}

func TestSpillPatienceDoesNotDelayLocalJobs(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(4000))
	b := &Batch{
		Order: FCFS{}, Backfill: BackfillEASY, Placer: Spill{},
		SpillPatience: 600,
	}
	ctx := &Context{
		Now: 0, Machine: m, Model: memmodel.Linear{Beta: 1},
		Queue: []*workload.Job{timedJob(1, 1, 500, 100)}, // fits local
	}
	if ds := b.Pass(ctx); len(ds) != 1 {
		t.Fatalf("patience delayed an undilated job: %v", dispatchIDs(ds))
	}
}

func TestSpillPatienceDoesNotBlockQueue(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(4000))
	b := &Batch{
		Order: FCFS{}, Backfill: BackfillEASY, Placer: Spill{},
		SpillPatience: 600,
	}
	// Patient head must not stop the local job behind it.
	ctx := &Context{
		Now: 0, Machine: m, Model: memmodel.Linear{Beta: 1},
		Queue: []*workload.Job{
			spillJob(1, 0),
			timedJob(2, 1, 500, 100),
		},
	}
	ds := b.Pass(ctx)
	if len(ds) != 1 || ds[0].Job.ID != 2 {
		t.Fatalf("dispatched %v, want [2] past the patient head", dispatchIDs(ds))
	}
}

func TestMaxPerUserThrottle(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{
		Order: FCFS{}, Backfill: BackfillEASY, Placer: LocalOnly{},
		MaxPerUser: 1,
	}
	// User 7 already has one running job.
	running := timedJob(90, 1, 100, 100)
	running.User = 7
	rj := startRunning(t, m, LocalOnly{}, running, 0, 100)

	sameUser := timedJob(1, 1, 100, 100)
	sameUser.User = 7
	otherUser := timedJob(2, 1, 100, 100)
	otherUser.User = 8
	ctx := &Context{
		Now: 0, Machine: m,
		Queue:   []*workload.Job{sameUser, otherUser},
		Running: []RunningJob{rj},
	}
	ds := b.Pass(ctx)
	if len(ds) != 1 || ds[0].Job.ID != 2 {
		t.Fatalf("dispatched %v, want only user 8's job", dispatchIDs(ds))
	}
}

func TestMaxPerUserConservativeSkipsWithoutReserving(t *testing.T) {
	m := cluster.MustNew(oneRackConfig(0))
	b := &Batch{
		Order: FCFS{}, Backfill: BackfillConservative, Placer: LocalOnly{},
		MaxPerUser: 1,
	}
	running := timedJob(90, 1, 100, 100)
	running.User = 7
	rj := startRunning(t, m, LocalOnly{}, running, 0, 100)

	throttled := timedJob(1, 3, 100, 100)
	throttled.User = 7
	free := timedJob(2, 3, 100, 100)
	free.User = 8
	ctx := &Context{
		Now: 0, Machine: m,
		Queue:   []*workload.Job{throttled, free},
		Running: []RunningJob{rj},
	}
	// The throttled job must not hold a reservation that delays the
	// other user's identical job.
	ds := b.Pass(ctx)
	if len(ds) != 1 || ds[0].Job.ID != 2 {
		t.Fatalf("dispatched %v, want [2]", dispatchIDs(ds))
	}
}
