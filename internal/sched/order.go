package sched

import (
	"math"
	"sort"

	"dismem/internal/workload"
)

// Order is a queue-ordering policy. Sort must be deterministic: all
// comparisons fall back to job ID so equal-priority jobs keep arrival
// order.
type Order interface {
	// Name identifies the policy.
	Name() string
	// Sort orders jobs in place, highest scheduling priority first.
	Sort(now int64, jobs []*workload.Job)
}

// FCFS orders by (submit time, id) — first come, first served.
type FCFS struct{}

// Name implements Order.
func (FCFS) Name() string { return "fcfs" }

// Sort implements Order.
func (FCFS) Sort(_ int64, jobs []*workload.Job) {
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Submit != jobs[j].Submit {
			return jobs[i].Submit < jobs[j].Submit
		}
		return jobs[i].ID < jobs[j].ID
	})
}

// SJF orders by shortest walltime estimate first. Classic
// utilization-friendly, starvation-prone policy; used as an ablation.
type SJF struct{}

// Name implements Order.
func (SJF) Name() string { return "sjf" }

// Sort implements Order.
func (SJF) Sort(_ int64, jobs []*workload.Job) {
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Estimate != jobs[j].Estimate {
			return jobs[i].Estimate < jobs[j].Estimate
		}
		return jobs[i].ID < jobs[j].ID
	})
}

// LargestFirst orders by node request, widest job first — the
// "leadership computing" policy that prioritises capability jobs.
type LargestFirst struct{}

// Name implements Order.
func (LargestFirst) Name() string { return "largest" }

// Sort implements Order.
func (LargestFirst) Sort(_ int64, jobs []*workload.Job) {
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Nodes != jobs[j].Nodes {
			return jobs[i].Nodes > jobs[j].Nodes
		}
		return jobs[i].ID < jobs[j].ID
	})
}

// WFP is the ALCF-style utility policy favouring large and old jobs:
// score = nodes * (wait/estimate)^3, highest first.
type WFP struct{}

// Name implements Order.
func (WFP) Name() string { return "wfp" }

// Sort implements Order.
func (WFP) Sort(now int64, jobs []*workload.Job) {
	score := func(j *workload.Job) float64 {
		wait := float64(now - j.Submit)
		if wait < 0 {
			wait = 0
		}
		return float64(j.Nodes) * math.Pow(wait/float64(j.Estimate), 3)
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		si, sj := score(jobs[i]), score(jobs[j])
		if si != sj {
			return si > sj
		}
		return jobs[i].ID < jobs[j].ID
	})
}
