package sched

import (
	"cmp"
	"math"
	"slices"

	"dismem/internal/workload"
)

// Order is a queue-ordering policy. Sort must be deterministic: all
// comparisons fall back to job ID so equal-priority jobs keep arrival
// order.
//
// Because every comparator below is a strict total order (the job-ID
// tiebreak leaves no equal pairs), the sorted permutation is unique and
// slices.SortFunc — unstable but allocation-free — produces exactly the
// ordering the historical sort.SliceStable implementation did.
type Order interface {
	// Name identifies the policy.
	Name() string
	// Sort orders jobs in place, highest scheduling priority first.
	Sort(now int64, jobs []*workload.Job)
}

// FCFS orders by (submit time, id) — first come, first served.
type FCFS struct{}

// Name implements Order.
func (FCFS) Name() string { return "fcfs" }

// Sort implements Order.
func (FCFS) Sort(_ int64, jobs []*workload.Job) {
	slices.SortFunc(jobs, func(a, b *workload.Job) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// SJF orders by shortest walltime estimate first. Classic
// utilization-friendly, starvation-prone policy; used as an ablation.
type SJF struct{}

// Name implements Order.
func (SJF) Name() string { return "sjf" }

// Sort implements Order.
func (SJF) Sort(_ int64, jobs []*workload.Job) {
	slices.SortFunc(jobs, func(a, b *workload.Job) int {
		if a.Estimate != b.Estimate {
			return cmp.Compare(a.Estimate, b.Estimate)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// LargestFirst orders by node request, widest job first — the
// "leadership computing" policy that prioritises capability jobs.
type LargestFirst struct{}

// Name implements Order.
func (LargestFirst) Name() string { return "largest" }

// Sort implements Order.
func (LargestFirst) Sort(_ int64, jobs []*workload.Job) {
	slices.SortFunc(jobs, func(a, b *workload.Job) int {
		if a.Nodes != b.Nodes {
			return cmp.Compare(b.Nodes, a.Nodes)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// WFP is the ALCF-style utility policy favouring large and old jobs:
// score = nodes * (wait/estimate)^3, highest first.
type WFP struct{}

// Name implements Order.
func (WFP) Name() string { return "wfp" }

// Sort implements Order.
func (WFP) Sort(now int64, jobs []*workload.Job) {
	score := func(j *workload.Job) float64 {
		wait := float64(now - j.Submit)
		if wait < 0 {
			wait = 0
		}
		return float64(j.Nodes) * math.Pow(wait/float64(j.Estimate), 3)
	}
	slices.SortFunc(jobs, func(a, b *workload.Job) int {
		sa, sb := score(a), score(b)
		if sa != sb {
			return cmp.Compare(sb, sa)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}
