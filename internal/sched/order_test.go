package sched

import (
	"testing"

	"dismem/internal/workload"
)

func jobsForOrder() []*workload.Job {
	return []*workload.Job{
		{ID: 1, Submit: 100, Nodes: 4, Estimate: 1000, BaseRuntime: 500},
		{ID: 2, Submit: 50, Nodes: 16, Estimate: 100, BaseRuntime: 50},
		{ID: 3, Submit: 200, Nodes: 1, Estimate: 5000, BaseRuntime: 2000},
		{ID: 4, Submit: 50, Nodes: 2, Estimate: 100, BaseRuntime: 80},
	}
}

func ids(jobs []*workload.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func equalIDs(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFCFSOrder(t *testing.T) {
	q := jobsForOrder()
	FCFS{}.Sort(300, q)
	if got := ids(q); !equalIDs(got, 2, 4, 1, 3) {
		t.Fatalf("FCFS order = %v, want [2 4 1 3] (submit, then id)", got)
	}
}

func TestSJFOrder(t *testing.T) {
	q := jobsForOrder()
	SJF{}.Sort(300, q)
	if got := ids(q); !equalIDs(got, 2, 4, 1, 3) {
		t.Fatalf("SJF order = %v, want [2 4 1 3] (estimate, then id)", got)
	}
}

func TestLargestFirstOrder(t *testing.T) {
	q := jobsForOrder()
	LargestFirst{}.Sort(300, q)
	if got := ids(q); !equalIDs(got, 2, 1, 4, 3) {
		t.Fatalf("LargestFirst order = %v, want [2 1 4 3]", got)
	}
}

func TestWFPOrder(t *testing.T) {
	// At now=1050: job2 has wait 1000, estimate 100 → (10)^3*16 huge;
	// job3 wait 850/5000 → tiny. Large old short-estimate jobs first.
	q := jobsForOrder()
	WFP{}.Sort(1050, q)
	if got := ids(q); got[0] != 2 {
		t.Fatalf("WFP order = %v, want job 2 first", got)
	}
	// Jobs never waiting get score 0 and keep ID order among ties.
	q2 := []*workload.Job{
		{ID: 5, Submit: 1050, Nodes: 4, Estimate: 100},
		{ID: 6, Submit: 1050, Nodes: 9, Estimate: 100},
	}
	WFP{}.Sort(1050, q2)
	if got := ids(q2); !equalIDs(got, 5, 6) {
		t.Fatalf("WFP tie order = %v, want [5 6]", got)
	}
}

func TestWFPNegativeWaitClamped(t *testing.T) {
	// A job "arriving in the future" (clock skew) must not produce NaN
	// or panic; it sorts as zero-score.
	q := []*workload.Job{
		{ID: 1, Submit: 2000, Nodes: 4, Estimate: 100},
		{ID: 2, Submit: 0, Nodes: 4, Estimate: 100},
	}
	WFP{}.Sort(1000, q)
	if got := ids(q); !equalIDs(got, 2, 1) {
		t.Fatalf("WFP with future submit = %v, want [2 1]", got)
	}
}

func TestOrderNames(t *testing.T) {
	for _, o := range []Order{FCFS{}, SJF{}, LargestFirst{}, WFP{}} {
		if o.Name() == "" {
			t.Errorf("%T has empty name", o)
		}
	}
}

func TestOrderStability(t *testing.T) {
	// Identical jobs (same keys) must keep their relative order.
	q := []*workload.Job{
		{ID: 1, Submit: 10, Nodes: 2, Estimate: 100},
		{ID: 2, Submit: 10, Nodes: 2, Estimate: 100},
		{ID: 3, Submit: 10, Nodes: 2, Estimate: 100},
	}
	for _, o := range []Order{FCFS{}, SJF{}, LargestFirst{}, WFP{}} {
		o.Sort(500, q)
		if got := ids(q); !equalIDs(got, 1, 2, 3) {
			t.Fatalf("%s broke tie stability: %v", o.Name(), got)
		}
	}
}
