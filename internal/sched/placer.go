package sched

import (
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

// Plan is a candidate placement: an uncommitted allocation plus the
// dilation the memory model predicts for it at planning time.
type Plan struct {
	Alloc *cluster.Allocation
	// Dilation is the predicted runtime multiplier (>= 1).
	Dilation float64
}

// Placer builds placement plans. Implementations must be deterministic
// given identical machine state.
type Placer interface {
	// Name identifies the policy.
	Name() string
	// Plan returns a placement for job on m, or nil if the job cannot
	// start now. It must not mutate m. The returned plan (including its
	// Alloc and Shares) may be placer-owned scratch, valid only until
	// the next Plan call on the same placer: callers commit it with
	// Machine.AllocateCopy, which deep-copies, rather than retaining it.
	Plan(job *workload.Job, m *cluster.Machine, model memmodel.Model) *Plan
	// Feasible reports whether the job could ever run on an idle m
	// under the given memory model (admission policies may depend on
	// predicted dilation). Infeasible jobs are rejected at submission.
	Feasible(job *workload.Job, m *cluster.Machine, model memmodel.Model) bool
	// PlanDilation estimates the dilation job would suffer if placed on
	// an otherwise-idle machine: the figure planners use to reserve
	// walltime before an exact placement exists.
	PlanDilation(job *workload.Job, m *cluster.Machine, model memmodel.Model) float64
}

// PredictDilation computes the model dilation of an uncommitted
// allocation against machine m, accounting for the congestion its own
// demand would add to each backing pool.
func PredictDilation(a *cluster.Allocation, m *cluster.Machine, model memmodel.Model) float64 {
	if model == nil || a.RemoteMiB() == 0 {
		return 1
	}
	// Aggregate the allocation's added demand per pool. Allocations
	// touch few pools, so a linear scan over small stack-backed slices
	// beats a map and keeps the hot path allocation-free.
	trafficPerNode := m.Config().TrafficGiBpsPerNode
	var pidsArr [16]cluster.PoolID
	var addedArr [16]float64
	pids, added := pidsArr[:0], addedArr[:0]
	for _, s := range a.Shares {
		if s.RemoteMiB == 0 {
			continue
		}
		tot := s.LocalMiB + s.RemoteMiB
		d := trafficPerNode * float64(s.RemoteMiB) / float64(tot)
		k := 0
		for ; k < len(pids); k++ {
			if pids[k] == s.Pool {
				added[k] += d
				break
			}
		}
		if k == len(pids) {
			pids = append(pids, s.Pool)
			added = append(added, d)
		}
	}
	worst := 0.0
	for k, pid := range pids {
		p, ok := m.Pool(pid)
		if !ok || p.FabricGiBps <= 0 {
			continue
		}
		if c := (p.DemandGiBps + added[k]) / p.FabricGiBps; c > worst {
			worst = c
		}
	}
	return model.Dilation(a.RemoteFraction(), worst)
}

// RemoteNeedPerNode returns how much of the job's per-node footprint
// cannot fit in local DRAM.
func RemoteNeedPerNode(job *workload.Job, m *cluster.Machine) int64 {
	need := job.MemPerNode - m.Config().LocalMemMiB
	if need < 0 {
		return 0
	}
	return need
}

// RemoteNeed returns the job's total unavoidable pool demand in MiB.
func RemoteNeed(job *workload.Job, m *cluster.Machine) int64 {
	return RemoteNeedPerNode(job, m) * int64(job.Nodes)
}

// LocalOnly places jobs exclusively in node-local DRAM: the
// conventional-machine baseline. Jobs whose footprint exceeds local
// DRAM never start.
type LocalOnly struct{}

// Name implements Placer.
func (LocalOnly) Name() string { return "local" }

// Feasible implements Placer.
func (LocalOnly) Feasible(job *workload.Job, m *cluster.Machine, _ memmodel.Model) bool {
	return job.Nodes <= m.Config().TotalNodes() && job.MemPerNode <= m.Config().LocalMemMiB
}

// PlanDilation implements Placer: local placements never dilate.
func (LocalOnly) PlanDilation(*workload.Job, *cluster.Machine, memmodel.Model) float64 { return 1 }

// Plan implements Placer with first-fit over node IDs.
func (LocalOnly) Plan(job *workload.Job, m *cluster.Machine, _ memmodel.Model) *Plan {
	if job.MemPerNode > m.Config().LocalMemMiB || m.FreeNodes() < job.Nodes {
		return nil
	}
	shares := make([]cluster.NodeShare, 0, job.Nodes)
	m.ForEachFree(func(id cluster.NodeID) bool {
		shares = append(shares, cluster.NodeShare{
			Node: id, LocalMiB: job.MemPerNode, Pool: cluster.NoPool,
		})
		return len(shares) < job.Nodes
	})
	if len(shares) < job.Nodes {
		return nil
	}
	return &Plan{
		Alloc:    &cluster.Allocation{JobID: job.ID, Shares: shares},
		Dilation: 1,
	}
}

// Spill is the disaggregation-oblivious policy: fill local DRAM first
// and overflow the remainder into the node's pool whenever the pool has
// space, ignoring the slowdown this inflicts. It is the "just use the
// pool" strawman the memory-aware scheduler is compared against.
type Spill struct{}

// Name implements Placer.
func (Spill) Name() string { return "spill" }

// Feasible implements Placer.
func (Spill) Feasible(job *workload.Job, m *cluster.Machine, _ memmodel.Model) bool {
	cfg := m.Config()
	if job.Nodes > cfg.TotalNodes() {
		return false
	}
	if job.MemPerNode <= cfg.LocalMemMiB {
		return true
	}
	if cfg.Topology == cluster.TopologyNone {
		return false
	}
	// Whole-machine check: every node needs its overflow poolable.
	need := RemoteNeedPerNode(job, m)
	switch cfg.Topology {
	case cluster.TopologyGlobal:
		return need*int64(job.Nodes) <= cfg.PoolMiB
	default: // rack pools: cap by what fits per rack on an idle machine
		perRack := cfg.PoolMiB / max64(need, 1)
		if perRack > int64(cfg.NodesPerRack) {
			perRack = int64(cfg.NodesPerRack)
		}
		return int64(job.Nodes) <= perRack*int64(cfg.Racks)
	}
}

// PlanDilation implements Placer: the unavoidable remote fraction at
// current congestion.
func (Spill) PlanDilation(job *workload.Job, m *cluster.Machine, model memmodel.Model) float64 {
	if model == nil || job.MemPerNode == 0 {
		return 1
	}
	f := float64(RemoteNeedPerNode(job, m)) / float64(job.MemPerNode)
	worst := 0.0
	for _, p := range m.Pools() {
		if c := p.Congestion(); c > worst {
			worst = c
		}
	}
	return model.Dilation(f, worst)
}

// Plan implements Placer: first-fit over racks ordered by descending
// free pool capacity, so overflow lands where space exists.
func (Spill) Plan(job *workload.Job, m *cluster.Machine, model memmodel.Model) *Plan {
	cfg := m.Config()
	if m.FreeNodes() < job.Nodes {
		return nil
	}
	local := job.MemPerNode
	if local > cfg.LocalMemMiB {
		local = cfg.LocalMemMiB
	}
	remote := job.MemPerNode - local
	if remote == 0 {
		return LocalOnly{}.Plan(job, m, model)
	}
	if cfg.Topology == cluster.TopologyNone {
		return nil
	}

	// Rack order: most free pool first; stable on rack index.
	type rackInfo struct {
		rack int
		pool cluster.PoolID
		free int64
	}
	racks := make([]rackInfo, 0, cfg.Racks)
	pools := m.Pools()
	for r := 0; r < cfg.Racks; r++ {
		pid := cluster.PoolID(0)
		if cfg.Topology == cluster.TopologyRack {
			pid = cluster.PoolID(r)
		}
		racks = append(racks, rackInfo{rack: r, pool: pid, free: pools[pid].FreeMiB()})
	}
	sort.SliceStable(racks, func(i, j int) bool {
		if racks[i].free != racks[j].free {
			return racks[i].free > racks[j].free
		}
		return racks[i].rack < racks[j].rack
	})

	shares := make([]cluster.NodeShare, 0, job.Nodes)
	poolLeft := make([]int64, len(pools))
	for i, p := range pools {
		poolLeft[i] = p.FreeMiB()
	}
	for _, ri := range racks {
		if poolLeft[ri.pool] < remote {
			continue
		}
		m.FreeInRack(ri.rack, func(id cluster.NodeID) bool {
			if poolLeft[ri.pool] < remote {
				return false
			}
			poolLeft[ri.pool] -= remote
			shares = append(shares, cluster.NodeShare{
				Node: id, LocalMiB: local, RemoteMiB: remote, Pool: ri.pool,
			})
			return len(shares) < job.Nodes
		})
		if len(shares) == job.Nodes {
			break
		}
	}
	if len(shares) < job.Nodes {
		return nil
	}
	alloc := &cluster.Allocation{JobID: job.ID, Shares: shares}
	return &Plan{Alloc: alloc, Dilation: PredictDilation(alloc, m, model)}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
