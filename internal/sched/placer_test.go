package sched

import (
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

// placerConfig: 2 racks x 4 nodes, 1000 MiB local, 3000 MiB rack pools.
func placerConfig() cluster.Config {
	return cluster.Config{
		Racks: 2, NodesPerRack: 4, CoresPerNode: 8, LocalMemMiB: 1000,
		Topology: TopologyRackForTest, PoolMiB: 3000, FabricGiBps: 10,
		TrafficGiBpsPerNode: 2,
	}
}

// TopologyRackForTest aliases the cluster constant to keep test tables
// terse.
const TopologyRackForTest = cluster.TopologyRack

func job(id, nodes int, mem int64) *workload.Job {
	return &workload.Job{
		ID: id, Nodes: nodes, MemPerNode: mem,
		Submit: 0, Estimate: 1000, BaseRuntime: 500,
	}
}

func TestLocalOnlyPlan(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	model := memmodel.Linear{Beta: 0.5}
	p := LocalOnly{}.Plan(job(1, 3, 800), m, model)
	if p == nil {
		t.Fatal("plan failed on an idle machine")
	}
	if len(p.Alloc.Shares) != 3 || p.Dilation != 1 {
		t.Fatalf("plan = %+v", p)
	}
	for _, s := range p.Alloc.Shares {
		if s.RemoteMiB != 0 || s.LocalMiB != 800 || s.Pool != cluster.NoPool {
			t.Fatalf("local-only share borrows remote memory: %+v", s)
		}
	}
	if err := m.Allocate(p.Alloc); err != nil {
		t.Fatalf("plan not committable: %v", err)
	}
}

func TestLocalOnlyRejectsBigMemory(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	if (LocalOnly{}).Plan(job(1, 1, 1500), m, nil) != nil {
		t.Fatal("planned a job whose footprint exceeds local DRAM")
	}
	if (LocalOnly{}).Feasible(job(1, 1, 1500), m, nil) {
		t.Fatal("big-memory job feasible under local-only")
	}
	if !(LocalOnly{}).Feasible(job(1, 8, 1000), m, nil) {
		t.Fatal("full-machine local job infeasible")
	}
	if (LocalOnly{}).Feasible(job(1, 9, 100), m, nil) {
		t.Fatal("too-wide job feasible")
	}
}

func TestLocalOnlyInsufficientFreeNodes(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	first := LocalOnly{}.Plan(job(1, 7, 100), m, nil)
	if err := m.Allocate(first.Alloc); err != nil {
		t.Fatal(err)
	}
	if (LocalOnly{}).Plan(job(2, 2, 100), m, nil) != nil {
		t.Fatal("planned 2 nodes with only 1 free")
	}
	if (LocalOnly{}).Plan(job(3, 1, 100), m, nil) == nil {
		t.Fatal("failed to plan 1 node with 1 free")
	}
}

func TestSpillPlanSplitsFootprint(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	model := memmodel.Linear{Beta: 0.5}
	// 1500 MiB per node: 1000 local + 500 remote.
	p := Spill{}.Plan(job(1, 2, 1500), m, model)
	if p == nil {
		t.Fatal("spill plan failed on idle machine")
	}
	for _, s := range p.Alloc.Shares {
		if s.LocalMiB != 1000 || s.RemoteMiB != 500 {
			t.Fatalf("share split = %+v, want 1000/500", s)
		}
		if s.Pool == cluster.NoPool {
			t.Fatal("remote share without pool")
		}
	}
	// f = 500/1500 = 1/3 → dilation 1 + 0.5/3.
	want := 1 + 0.5/3
	if diff := p.Dilation - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("dilation = %g, want %g", p.Dilation, want)
	}
	if err := m.Allocate(p.Alloc); err != nil {
		t.Fatalf("plan not committable: %v", err)
	}
}

func TestSpillRespectsPoolCapacity(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	// Each spilling node needs 2000 remote; a 3000 pool holds one such
	// node per rack → at most 2 machine-wide.
	p := Spill{}.Plan(job(1, 2, 3000), m, nil)
	if p == nil {
		t.Fatal("2-node spill should fit (one per rack)")
	}
	racks := map[cluster.PoolID]bool{}
	for _, s := range p.Alloc.Shares {
		racks[s.Pool] = true
	}
	if len(racks) != 2 {
		t.Fatalf("expected the two nodes on different racks, got pools %v", racks)
	}
	if (Spill{}).Plan(job(2, 3, 3000), m, nil) != nil {
		t.Fatal("3-node spill exceeds total pool capacity but was planned")
	}
}

func TestSpillFallsBackToLocal(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	p := Spill{}.Plan(job(1, 2, 500), m, nil)
	if p == nil || p.Alloc.RemoteMiB() != 0 {
		t.Fatalf("small job must place all-local, got %+v", p)
	}
}

func TestSpillOnTopologyNone(t *testing.T) {
	m := cluster.MustNew(cluster.BaselineConfig(1000))
	if (Spill{}).Plan(job(1, 1, 1500), m, nil) != nil {
		t.Fatal("spill planned remote memory without any pool")
	}
	if (Spill{}).Feasible(job(1, 1, 1500), m, nil) {
		t.Fatal("big-memory job feasible without pools")
	}
	if !(Spill{}).Feasible(job(2, 1, 900), m, nil) {
		t.Fatal("local-fitting job infeasible")
	}
}

func TestSpillFeasibleBounds(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	// 2000 remote per node, 3000/rack pool → 1 node per rack, 2 total.
	if !(Spill{}).Feasible(job(1, 2, 3000), m, nil) {
		t.Fatal("2-node spill should be feasible")
	}
	if (Spill{}).Feasible(job(1, 3, 3000), m, nil) {
		t.Fatal("3-node spill infeasible but accepted")
	}
	// Global pool pools capacity machine-wide.
	cfg := placerConfig()
	cfg.Topology = cluster.TopologyGlobal
	cfg.PoolMiB = 6000
	gm := cluster.MustNew(cfg)
	if !(Spill{}).Feasible(job(1, 3, 3000), gm, nil) {
		t.Fatal("3-node spill fits a 6000 global pool")
	}
	if (Spill{}).Feasible(job(1, 4, 3000), gm, nil) {
		t.Fatal("4-node spill exceeds the 6000 global pool")
	}
}

func TestSpillPrefersEmptierPools(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	// Pre-load rack 0's pool.
	pre := &cluster.Allocation{JobID: 99, Shares: []cluster.NodeShare{
		{Node: 0, LocalMiB: 1000, RemoteMiB: 2500, Pool: 0},
	}}
	if err := m.Allocate(pre); err != nil {
		t.Fatal(err)
	}
	p := Spill{}.Plan(job(1, 1, 1800), m, nil)
	if p == nil {
		t.Fatal("plan failed")
	}
	if p.Alloc.Shares[0].Pool != 1 {
		t.Fatalf("spill chose loaded pool %d, want the emptier pool 1", p.Alloc.Shares[0].Pool)
	}
}

func TestPredictDilationAccountsOwnDemand(t *testing.T) {
	cfg := placerConfig()
	cfg.FabricGiBps = 1 // tight fabric
	m := cluster.MustNew(cfg)
	model := memmodel.Bandwidth{Beta: 1, Gamma: 1}
	// 4 nodes spilling half their footprint on one rack: demand
	// 4 * 2 * 0.5 = 4 GiB/s on a 1 GiB/s fabric → congestion 4.
	a := &cluster.Allocation{JobID: 1}
	for i := 0; i < 4; i++ {
		a.Shares = append(a.Shares, cluster.NodeShare{
			Node: cluster.NodeID(i), LocalMiB: 1000, RemoteMiB: 1000, Pool: 0,
		})
	}
	d := PredictDilation(a, m, model)
	// f=0.5, c=4 → 1 + 1*0.5*(1+1*(4-1)) = 3.
	if diff := d - 3; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("PredictDilation = %g, want 3", d)
	}
}

func TestRemoteNeedHelpers(t *testing.T) {
	m := cluster.MustNew(placerConfig())
	if RemoteNeedPerNode(job(1, 2, 800), m) != 0 {
		t.Fatal("fits-local job has remote need")
	}
	if got := RemoteNeedPerNode(job(1, 2, 1400), m); got != 400 {
		t.Fatalf("RemoteNeedPerNode = %d, want 400", got)
	}
	if got := RemoteNeed(job(1, 3, 1400), m); got != 1200 {
		t.Fatalf("RemoteNeed = %d, want 1200", got)
	}
}
