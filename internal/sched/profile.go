package sched

import (
	"fmt"
	"math"
	"sort"
)

// Profile tracks aggregate free capacity — whole nodes and pool MiB —
// over future time, the planning structure behind conservative
// backfilling. It deliberately aggregates pool capacity across racks:
// reservations are made against totals, while actual dispatch uses
// exact per-rack placement. This is the standard planning approximation
// in backfill simulators; fragmentation can delay an individual start
// but never over-commits the machine, because dispatch re-validates.
type Profile struct {
	points []profilePoint
	cands  []int64 // EarliestFit candidate-start scratch
}

type profilePoint struct {
	t     int64
	nodes int
	pool  int64
}

// NewProfile starts a profile at time now with the given free capacity,
// which persists to infinity until modified.
func NewProfile(now int64, freeNodes int, freePool int64) *Profile {
	p := &Profile{}
	p.Reset(now, freeNodes, freePool)
	return p
}

// Reset re-initializes the profile in place, reusing its breakpoint
// storage: the allocation-free equivalent of NewProfile for planners
// that keep one profile across passes.
func (p *Profile) Reset(now int64, freeNodes int, freePool int64) {
	p.points = append(p.points[:0], profilePoint{t: now, nodes: freeNodes, pool: freePool})
}

// split ensures a breakpoint exists at time t (t must be >= the first
// point) and returns its index.
func (p *Profile) split(t int64) int {
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].t >= t })
	if i < len(p.points) && p.points[i].t == t {
		return i
	}
	// Capacity at t is inherited from the previous interval.
	prev := p.points[i-1]
	p.points = append(p.points, profilePoint{})
	copy(p.points[i+1:], p.points[i:])
	p.points[i] = profilePoint{t: t, nodes: prev.nodes, pool: prev.pool}
	return i
}

// AddRelease increases capacity by (nodes, pool) from time t onward —
// a running job's guaranteed end.
func (p *Profile) AddRelease(t int64, nodes int, pool int64) {
	if t < p.points[0].t {
		t = p.points[0].t
	}
	i := p.split(t)
	for ; i < len(p.points); i++ {
		p.points[i].nodes += nodes
		p.points[i].pool += pool
	}
}

// Reserve decreases capacity by (nodes, pool) on [start, end). Capacity
// may go negative when an exact placement used more than the planner's
// minimal need; negative capacity simply blocks later reservations.
func (p *Profile) Reserve(start, end int64, nodes int, pool int64) {
	if end <= start {
		return
	}
	if start < p.points[0].t {
		start = p.points[0].t
	}
	i := p.split(start)
	j := len(p.points)
	if end < math.MaxInt64 {
		j = p.split(end)
		i = sort.Search(len(p.points), func(k int) bool { return p.points[k].t >= start })
	}
	for ; i < j; i++ {
		p.points[i].nodes -= nodes
		p.points[i].pool -= pool
	}
}

// CapacityAt returns the free capacity at time t.
func (p *Profile) CapacityAt(t int64) (nodes int, pool int64) {
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].t > t })
	if i == 0 {
		return p.points[0].nodes, p.points[0].pool
	}
	pt := p.points[i-1]
	return pt.nodes, pt.pool
}

// EarliestFit returns the earliest time >= from at which (nodes, pool)
// stays available for dur seconds. dur must be > 0.
func (p *Profile) EarliestFit(from, dur int64, nodes int, pool int64) int64 {
	if dur <= 0 {
		panic(fmt.Sprintf("sched: EarliestFit with dur=%d", dur))
	}
	if from < p.points[0].t {
		from = p.points[0].t
	}
	// Candidate starts: `from` and every later breakpoint (capacity
	// only changes there). The list is profile-owned scratch.
	cands := append(p.cands[:0], from)
	for _, pt := range p.points {
		if pt.t > from {
			cands = append(cands, pt.t)
		}
	}
	p.cands = cands
	for _, start := range cands {
		if p.windowFits(start, start+dur, nodes, pool) {
			return start
		}
	}
	// Capacity after the last breakpoint is constant; if the tail does
	// not fit, nothing ever will (caller guarantees feasibility).
	return math.MaxInt64
}

// windowFits reports whether capacity >= (nodes, pool) throughout
// [start, end).
func (p *Profile) windowFits(start, end int64, nodes int, pool int64) bool {
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].t > start })
	if i > 0 {
		i--
	}
	for ; i < len(p.points); i++ {
		pt := p.points[i]
		if pt.t >= end {
			break
		}
		// Interval [pt.t, next.t) overlaps [start, end)?
		if i+1 < len(p.points) && p.points[i+1].t <= start {
			continue
		}
		if pt.nodes < nodes || pt.pool < pool {
			return false
		}
	}
	return true
}

// Len returns the number of breakpoints (for tests and complexity
// accounting).
func (p *Profile) Len() int { return len(p.points) }
