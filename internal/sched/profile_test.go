package sched

import (
	"math"
	"testing"
	"testing/quick"

	"dismem/internal/stats"
)

func TestProfileInitialCapacity(t *testing.T) {
	p := NewProfile(100, 8, 4000)
	n, pool := p.CapacityAt(100)
	if n != 8 || pool != 4000 {
		t.Fatalf("capacity at start = (%d,%d), want (8,4000)", n, pool)
	}
	n, pool = p.CapacityAt(1 << 40)
	if n != 8 || pool != 4000 {
		t.Fatalf("capacity persists to infinity, got (%d,%d)", n, pool)
	}
}

func TestProfileAddRelease(t *testing.T) {
	p := NewProfile(0, 2, 100)
	p.AddRelease(50, 4, 200)
	if n, pool := p.CapacityAt(49); n != 2 || pool != 100 {
		t.Fatalf("before release: (%d,%d)", n, pool)
	}
	if n, pool := p.CapacityAt(50); n != 6 || pool != 300 {
		t.Fatalf("at release: (%d,%d), want (6,300)", n, pool)
	}
}

func TestProfileReserveWindow(t *testing.T) {
	p := NewProfile(0, 10, 1000)
	p.Reserve(20, 40, 3, 500)
	if n, pool := p.CapacityAt(19); n != 10 || pool != 1000 {
		t.Fatalf("before window: (%d,%d)", n, pool)
	}
	if n, pool := p.CapacityAt(20); n != 7 || pool != 500 {
		t.Fatalf("inside window: (%d,%d), want (7,500)", n, pool)
	}
	if n, pool := p.CapacityAt(39); n != 7 || pool != 500 {
		t.Fatalf("end of window: (%d,%d), want (7,500)", n, pool)
	}
	if n, pool := p.CapacityAt(40); n != 10 || pool != 1000 {
		t.Fatalf("after window: (%d,%d), want (10,1000)", n, pool)
	}
}

func TestProfileEarliestFitImmediate(t *testing.T) {
	p := NewProfile(5, 4, 100)
	if got := p.EarliestFit(5, 10, 4, 100); got != 5 {
		t.Fatalf("EarliestFit = %d, want 5 (fits now)", got)
	}
}

func TestProfileEarliestFitAfterRelease(t *testing.T) {
	p := NewProfile(0, 1, 0)
	p.AddRelease(30, 3, 600)
	if got := p.EarliestFit(0, 10, 4, 500); got != 30 {
		t.Fatalf("EarliestFit = %d, want 30", got)
	}
}

func TestProfileEarliestFitSkipsBusyWindow(t *testing.T) {
	p := NewProfile(0, 10, 1000)
	p.Reserve(10, 50, 8, 0)
	// Need 5 nodes for 20s: [0,10) too short, inside [10,50) only 2
	// free, so earliest is 50.
	if got := p.EarliestFit(0, 20, 5, 0); got != 50 {
		t.Fatalf("EarliestFit = %d, want 50", got)
	}
	// A short job that fits before the window starts at 0... duration
	// 10 ends exactly at the window edge (end-exclusive) so it fits.
	if got := p.EarliestFit(0, 10, 5, 0); got != 0 {
		t.Fatalf("EarliestFit(short) = %d, want 0", got)
	}
}

func TestProfileEarliestFitNever(t *testing.T) {
	p := NewProfile(0, 2, 0)
	if got := p.EarliestFit(0, 10, 5, 0); got != math.MaxInt64 {
		t.Fatalf("EarliestFit beyond capacity = %d, want MaxInt64", got)
	}
}

func TestProfileEarliestFitPoolDimension(t *testing.T) {
	p := NewProfile(0, 10, 100)
	p.Reserve(0, 100, 0, 80) // pool mostly taken until t=100
	if got := p.EarliestFit(0, 10, 1, 50); got != 100 {
		t.Fatalf("EarliestFit pool-bound = %d, want 100", got)
	}
	if got := p.EarliestFit(0, 10, 1, 20); got != 0 {
		t.Fatalf("EarliestFit small pool need = %d, want 0", got)
	}
}

func TestProfileReserveAllowsNegative(t *testing.T) {
	p := NewProfile(0, 2, 10)
	p.Reserve(0, 10, 5, 50) // over-reserve (exact placement used more)
	n, pool := p.CapacityAt(5)
	if n != -3 || pool != -40 {
		t.Fatalf("capacity = (%d,%d), want (-3,-40)", n, pool)
	}
	// Nothing fits while negative; fits after.
	if got := p.EarliestFit(0, 5, 1, 1); got != 10 {
		t.Fatalf("EarliestFit over negative window = %d, want 10", got)
	}
}

func TestProfileEarliestFitPanicsOnZeroDur(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EarliestFit(dur=0) did not panic")
		}
	}()
	NewProfile(0, 1, 1).EarliestFit(0, 0, 1, 1)
}

// TestProfileFitNeverViolatesCapacity: for random profiles, any window
// returned by EarliestFit must actually satisfy the requested capacity
// at every breakpoint inside the window.
func TestProfileFitNeverViolatesCapacity(t *testing.T) {
	check := func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		p := NewProfile(0, 8, 1000)
		// Random busy windows.
		for i := 0; i < 12; i++ {
			start := rng.Int63n(200)
			end := start + 1 + rng.Int63n(100)
			p.Reserve(start, end, int(rng.Intn(4)), rng.Int63n(300))
		}
		// Random releases.
		for i := 0; i < 6; i++ {
			p.AddRelease(rng.Int63n(300), int(rng.Intn(3)), rng.Int63n(200))
		}
		for trial := 0; trial < 20; trial++ {
			need := int(rng.Intn(8)) + 1
			pool := rng.Int63n(800)
			dur := rng.Int63n(80) + 1
			at := p.EarliestFit(0, dur, need, pool)
			if at == math.MaxInt64 {
				continue
			}
			// Verify capacity across the whole window by sampling every
			// breakpoint plus both edges.
			for _, tt := range sampleTimes(p, at, at+dur) {
				n, pl := p.CapacityAt(tt)
				if n < need || pl < pool {
					t.Logf("window [%d,%d): need (%d,%d) but capacity (%d,%d) at %d",
						at, at+dur, need, pool, n, pl, tt)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sampleTimes(p *Profile, start, end int64) []int64 {
	ts := []int64{start, end - 1}
	for _, pt := range p.points {
		if pt.t > start && pt.t < end {
			ts = append(ts, pt.t)
		}
	}
	return ts
}
