package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"dismem"
	"dismem/internal/report"
	"dismem/internal/telemetry"
	"dismem/internal/trace"
)

// WhatIfRequest is the body of POST /v1/whatif: a what-if query against
// the baseline timeline. The service picks the nearest ring checkpoint
// at or before At and forks it with the overrides below; identical
// requests against the same checkpoint produce byte-identical
// responses.
type WhatIfRequest struct {
	// At is the divergence instant in simulated seconds. The fork
	// starts from the newest checkpoint at or before it (reported as
	// checkpoint_at). 0 means "the newest checkpoint".
	At int64 `json:"at"`
	// Scenario is an optional what-if tail in the scenario grammar
	// ("at=50000 down rack=2; at=86400 up rack=2"); instants are
	// absolute simulated time and must not precede the checkpoint.
	Scenario string `json:"scenario,omitempty"`
	// Policy optionally switches the scheduling policy at the fork
	// point ("sjf", "order=sjf backfill=easy placer=memaware", ...).
	Policy string `json:"policy,omitempty"`
	// ReseedFailures re-randomises failure injection from the fork
	// point with FailureSeed (exploring futures instead of replaying
	// the recorded one).
	ReseedFailures bool   `json:"reseed_failures,omitempty"`
	FailureSeed    uint64 `json:"failure_seed,omitempty"`
	// Horizon, when > 0, truncates the fork at that simulated instant
	// (Result.Stopped reported as stopped); 0 runs to completion.
	Horizon int64 `json:"horizon,omitempty"`
	// NoBaseline skips the baseline comparison fork (and the deltas):
	// cheaper when only the absolute outcome matters.
	NoBaseline bool `json:"no_baseline,omitempty"`
}

// RunSummary is the flat JSON projection of one run's report — the
// fields of the canonical text report, machine-readable.
type RunSummary struct {
	Completed         int     `json:"completed"`
	Killed            int     `json:"killed"`
	Rejected          int     `json:"rejected"`
	MakespanSec       int64   `json:"makespan_sec"`
	Events            uint64  `json:"events"`
	MeanWaitSec       float64 `json:"mean_wait_sec"`
	P95WaitSec        float64 `json:"p95_wait_sec"`
	P99WaitSec        float64 `json:"p99_wait_sec"`
	MeanBSld          float64 `json:"mean_bsld"`
	P95BSld           float64 `json:"p95_bsld"`
	NodeUtil          float64 `json:"node_util"`
	LocalMemUtil      float64 `json:"local_mem_util"`
	PoolUtil          float64 `json:"pool_util"`
	MeanFabricDemand  float64 `json:"mean_fabric_demand_gibps"`
	ThroughputPerHour float64 `json:"throughput_per_hour"`
	NodeHours         float64 `json:"node_hours"`
	RemoteJobFraction float64 `json:"remote_job_fraction"`
	NodeFailures      int     `json:"node_failures"`
	FailureKills      int     `json:"failure_kills"`
	ScenarioEvents    int     `json:"scenario_events"`
	JainWait          float64 `json:"jain_wait"`
	Stopped           bool    `json:"stopped,omitempty"`
}

// summarize flattens a Result into a RunSummary.
func summarize(res *dismem.Result) RunSummary {
	r := res.Report
	return RunSummary{
		Completed:         r.Completed,
		Killed:            r.Killed,
		Rejected:          r.Rejected,
		MakespanSec:       r.MakespanSec,
		Events:            res.Events,
		MeanWaitSec:       r.Wait.Mean(),
		P95WaitSec:        r.P95Wait,
		P99WaitSec:        r.P99Wait,
		MeanBSld:          r.BSld.Mean(),
		P95BSld:           r.P95BSld,
		NodeUtil:          r.NodeUtil,
		LocalMemUtil:      r.LocalMemUtil,
		PoolUtil:          r.PoolUtil,
		MeanFabricDemand:  r.MeanFabricDemand,
		ThroughputPerHour: r.ThroughputPerHour,
		NodeHours:         r.NodeHours,
		RemoteJobFraction: r.RemoteJobFraction,
		NodeFailures:      r.NodeFailures,
		FailureKills:      r.FailureKills,
		ScenarioEvents:    res.ScenarioEvents,
		JainWait:          res.Recorder.Fairness().JainWait,
		Stopped:           res.Stopped,
	}
}

// Deltas is the what-if outcome minus the baseline outcome over the
// same window (same checkpoint, same horizon, no overrides): positive
// mean_wait_sec means the what-if future waits longer than the baseline
// future.
type Deltas struct {
	Completed         int     `json:"completed"`
	Killed            int     `json:"killed"`
	MeanWaitSec       float64 `json:"mean_wait_sec"`
	P95WaitSec        float64 `json:"p95_wait_sec"`
	P99WaitSec        float64 `json:"p99_wait_sec"`
	MeanBSld          float64 `json:"mean_bsld"`
	P95BSld           float64 `json:"p95_bsld"`
	NodeUtil          float64 `json:"node_util"`
	PoolUtil          float64 `json:"pool_util"`
	ThroughputPerHour float64 `json:"throughput_per_hour"`
	JainWait          float64 `json:"jain_wait"`
}

func deltas(whatif, base RunSummary) *Deltas {
	return &Deltas{
		Completed:         whatif.Completed - base.Completed,
		Killed:            whatif.Killed - base.Killed,
		MeanWaitSec:       whatif.MeanWaitSec - base.MeanWaitSec,
		P95WaitSec:        whatif.P95WaitSec - base.P95WaitSec,
		P99WaitSec:        whatif.P99WaitSec - base.P99WaitSec,
		MeanBSld:          whatif.MeanBSld - base.MeanBSld,
		P95BSld:           whatif.P95BSld - base.P95BSld,
		NodeUtil:          whatif.NodeUtil - base.NodeUtil,
		PoolUtil:          whatif.PoolUtil - base.PoolUtil,
		ThroughputPerHour: whatif.ThroughputPerHour - base.ThroughputPerHour,
		JainWait:          whatif.JainWait - base.JainWait,
	}
}

// WhatIfResponse is the body of a successful POST /v1/whatif.
type WhatIfResponse struct {
	CheckpointAt int64       `json:"checkpoint_at"`
	Horizon      int64       `json:"horizon,omitempty"`
	Report       RunSummary  `json:"report"`
	Baseline     *RunSummary `json:"baseline,omitempty"`
	Deltas       *Deltas     `json:"deltas,omitempty"`
}

// baselineCache memoises the no-override comparison fork per
// (checkpoint, horizon) window: every query against the same window
// shares one baseline replay. Entries use a per-key once so concurrent
// first queries compute it exactly once (and all see the same error if
// it fails).
type baselineCache struct {
	mu sync.Mutex
	m  map[baseKey]*baseEntry
}

type baseKey struct {
	at, horizon int64
}

type baseEntry struct {
	once sync.Once
	sum  RunSummary
	err  error
}

// baseline returns the cached baseline summary for the window, running
// the comparison fork on first use. hit reports whether the value was
// already computed.
func (c *baselineCache) baseline(key baseKey, run func() (RunSummary, error)) (sum RunSummary, hit bool, err error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[baseKey]*baseEntry)
	}
	e, ok := c.m[key]
	if !ok {
		e = &baseEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	hit = ok
	e.once.Do(func() { e.sum, e.err = run() })
	return e.sum, hit, e.err
}

// httpError is an error carrying the HTTP status it should map to.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// whatif executes one validated query: pick the checkpoint, fork with
// the request's overrides on the bounded worker pool, run the future,
// and (unless suppressed) fork the no-override baseline over the same
// window for the deltas.
func (s *Server) whatif(req *WhatIfRequest) (*WhatIfResponse, *dismem.Result, error) {
	var (
		entry *ringEntry
		ok    bool
	)
	if req.At == 0 {
		entry, ok = s.ring.newest()
		if !ok {
			return nil, nil, &httpError{status: http.StatusServiceUnavailable,
				msg: "no checkpoint available yet; the baseline has not reached its first ring boundary"}
		}
	} else {
		entry, ok = s.ring.nearest(req.At)
		if !ok {
			oldest, has := s.ring.oldest()
			msg := fmt.Sprintf("no checkpoint at or before t=%d", req.At)
			if has {
				msg += fmt.Sprintf(" (oldest retained is t=%d; raise -ckpt-keep or query later instants)", oldest.at)
			} else {
				msg += " (the baseline has not reached its first ring boundary)"
			}
			return nil, nil, badRequest("%s", msg)
		}
	}
	cp, err := entry.load()
	if err != nil {
		// The error is sticky (sync.Once): every query that picks this
		// corrupt entry fails identically, and the counter makes the
		// condition visible on /metrics before anyone reads the logs.
		s.ckptLoadErrors.Add(1)
		return nil, nil, &httpError{status: http.StatusInternalServerError,
			msg: fmt.Sprintf("loading checkpoint %s: %v", entry.path, err)}
	}

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	forkStart := time.Now()
	f, err := dismem.Fork(cp, dismem.ForkOptions{
		ScenarioSpec:   req.Scenario,
		Policy:         req.Policy,
		ReseedFailures: req.ReseedFailures,
		FailureSeed:    req.FailureSeed,
		Horizon:        req.Horizon,
	})
	if err != nil {
		// Every Fork failure is a defect in the request (bad scenario
		// grammar, horizon before the frozen clock, unknown policy...):
		// the checkpoint itself already loaded.
		return nil, nil, badRequest("%v", err)
	}
	s.recordFork(time.Since(forkStart))
	res, err := f.Run()
	if err != nil {
		return nil, nil, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}

	resp := &WhatIfResponse{
		CheckpointAt: cp.At(),
		Horizon:      req.Horizon,
		Report:       summarize(res),
	}
	if !req.NoBaseline {
		base, hit, err := s.base.baseline(baseKey{at: cp.At(), horizon: req.Horizon}, func() (RunSummary, error) {
			bStart := time.Now()
			bf, err := dismem.Fork(cp, dismem.ForkOptions{Horizon: req.Horizon})
			if err != nil {
				return RunSummary{}, err
			}
			s.recordFork(time.Since(bStart))
			bres, err := bf.Run()
			if err != nil {
				return RunSummary{}, err
			}
			return summarize(bres), nil
		})
		if err != nil {
			return nil, nil, &httpError{status: http.StatusInternalServerError,
				msg: fmt.Sprintf("baseline fork: %v", err)}
		}
		if hit {
			s.baselineHits.Add(1)
		}
		resp.Baseline = &base
		resp.Deltas = deltas(resp.Report, base)
	}
	return resp, res, nil
}

// recordFork folds one fork latency into the expvar counters.
func (s *Server) recordFork(d time.Duration) {
	ns := d.Nanoseconds()
	s.forksTotal.Add(1)
	s.forkNsTotal.Add(ns)
	// expvar.Int has no CAS; concurrent maxima race last-writer-wins,
	// which is fine for an advisory gauge.
	if ns > s.forkNsMax.Value() {
		s.forkNsMax.Set(ns)
	}
}

// Handler returns the service's HTTP API:
//
//	GET  /v1/status      — live baseline snapshot + ring occupancy
//	GET  /v1/checkpoints — the ring, ascending by instant
//	GET  /v1/trace       — baseline lifecycle-trace ring (?from=&to=
//	                       bound the virtual-time window; requires
//	                       Config.TraceRing > 0)
//	POST /v1/whatif      — fork a what-if future (?format=text for the
//	                       canonical plain-text report)
//	GET  /metrics        — live baseline gauges + service counters in
//	                       the Prometheus text exposition format
//	GET  /debug/vars     — expvar counters (per-server, under the
//	                       server's unique name; see VarsName)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/checkpoints", s.handleCheckpoints)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/whatif", s.handleWhatIf)
	mux.Handle("/metrics", telemetry.Handler(s.gauges, telemetry.ExpvarSource(s.varsName, &s.vars)))
	mux.HandleFunc("/debug/vars", s.handleVars)
	return mux
}

// statusResponse is the body of GET /v1/status.
type statusResponse struct {
	Status
	Checkpoints ringStatus `json:"checkpoints"`
}

type ringStatus struct {
	Count    int    `json:"count"`
	OldestAt int64  `json:"oldest_at"`
	NewestAt int64  `json:"newest_at"`
	Every    int64  `json:"every"`
	Keep     int    `json:"keep"`
	Dir      string `json:"dir"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp := statusResponse{
		Status: s.Status(),
		Checkpoints: ringStatus{
			Count: s.ring.len(),
			Every: s.cfg.CkptEvery,
			Keep:  s.cfg.CkptKeep,
			Dir:   s.cfg.CkptDir,
		},
	}
	if e, ok := s.ring.oldest(); ok {
		resp.Checkpoints.OldestAt = e.at
	}
	if e, ok := s.ring.newest(); ok {
		resp.Checkpoints.NewestAt = e.at
	}
	writeJSON(w, resp)
}

// checkpointInfo is one ring entry in GET /v1/checkpoints.
type checkpointInfo struct {
	At   int64  `json:"at"`
	File string `json:"file"`
}

func (s *Server) handleCheckpoints(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	entries := s.ring.snapshot()
	infos := make([]checkpointInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, checkpointInfo{At: e.at, File: e.path})
	}
	writeJSON(w, struct {
		Checkpoints []checkpointInfo `json:"checkpoints"`
	}{infos})
}

// traceResponse is the body of GET /v1/trace. Events use the JSONL
// wire schema (one object per Event), oldest first; Dropped counts
// events already overwritten by the bounded ring.
type traceResponse struct {
	From    int64         `json:"from"`
	To      int64         `json:"to,omitempty"`
	Count   int           `json:"count"`
	Dropped uint64        `json:"dropped"`
	Events  []trace.Event `json:"events"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.trace == nil {
		http.Error(w, "tracing disabled (start the server with a trace ring, e.g. dmserve -trace-ring 65536)", http.StatusNotFound)
		return
	}
	from, err := traceBound(r, "from")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to, err := traceBound(r, "to")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	evs := s.trace.Query(from, to)
	if evs == nil {
		evs = []trace.Event{} // an empty window is [], not null
	}
	writeJSON(w, traceResponse{
		From:    from,
		To:      to,
		Count:   len(evs),
		Dropped: s.trace.Dropped(),
		Events:  evs,
	})
}

// traceBound parses one virtual-time window bound ("from"/"to") off a
// /v1/trace query; absent means 0 (unbounded).
func traceBound(r *http.Request, key string) (int64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: want a virtual time in seconds", key, raw)
	}
	return v, nil
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.queriesInflight.Add(1)
	defer s.queriesInflight.Add(-1)

	var req WhatIfRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.queriesErrored.Add(1)
		http.Error(w, fmt.Sprintf("bad what-if body: %v", err), http.StatusBadRequest)
		return
	}
	resp, res, err := s.whatif(&req)
	if err != nil {
		s.queriesErrored.Add(1)
		status := http.StatusInternalServerError
		var he *httpError
		if ok := asHTTPError(err, &he); ok {
			status = he.status
		}
		http.Error(w, err.Error(), status)
		return
	}
	s.queriesServed.Add(1)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.Format(s.labelFor(req.Policy), res))
		return
	}
	writeJSON(w, resp)
}

// labelFor picks the policy label a text-format response is rendered
// under: the query's override when present, else the baseline's.
func (s *Server) labelFor(override string) string {
	if override != "" {
		return override
	}
	return s.label
}

// asHTTPError unwraps err into an *httpError without pulling in
// errors.As generics noise at every call site.
func asHTTPError(err error, target **httpError) bool {
	he, ok := err.(*httpError)
	if ok {
		*target = he
	}
	return ok
}

// handleVars serves the per-server counters plus the process-global
// expvar set (memstats, cmdline) in the standard /debug/vars shape.
// The server's map leads under its process-unique name and is skipped
// in the global sweep (it is published there too), so the body is
// valid JSON with no duplicate keys even when several servers share
// the process — each shows up once, under its own name.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var names []string
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key != s.varsName {
			names = append(names, kv.Key)
		}
	})
	sort.Strings(names)
	fmt.Fprintf(w, "{\n%q: %s", s.varsName, s.vars.String())
	for _, name := range names {
		fmt.Fprintf(w, ",\n%q: %s", name, expvar.Get(name).String())
	}
	fmt.Fprint(w, "\n}\n")
}

// writeJSON writes v as an indented JSON body. Encoding a response
// struct cannot fail, and struct marshaling is field-order
// deterministic — part of the byte-identical response contract.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Write(b)
}
