package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dismem"
)

// ringPrefix and ringSuffix frame a ring file name:
// ckpt-<simtime, zero-padded>.dmckpt. Zero padding keeps lexical and
// chronological order identical, so `ls` shows the ring in timeline
// order and the restart scan needs no extra sort key.
const (
	ringPrefix = "ckpt-"
	ringSuffix = ".dmckpt"
)

// ringFileName returns the ring file name for a checkpoint at virtual
// time at.
func ringFileName(at int64) string {
	return fmt.Sprintf("%s%012d%s", ringPrefix, at, ringSuffix)
}

// parseRingFileName extracts the virtual time from a ring file name,
// reporting whether the name is one the ring wrote. Foreign files in
// the directory (including in-flight WriteCheckpointFile temp files)
// are ignored, never deleted.
func parseRingFileName(name string) (int64, bool) {
	if !strings.HasPrefix(name, ringPrefix) || !strings.HasSuffix(name, ringSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, ringPrefix), ringSuffix)
	at, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || at < 0 {
		return 0, false
	}
	return at, true
}

// ringEntry is one durable checkpoint in the ring. The in-memory
// handle is populated eagerly when the server itself wrote the file,
// and lazily (first query, via load) for files found on disk at
// startup. Once loaded, the handle is immutable and safe for
// concurrent Fork (the dismem.Checkpoint concurrency contract).
type ringEntry struct {
	at   int64
	path string

	once    sync.Once
	cp      *dismem.Checkpoint
	loadErr error
}

// load returns the entry's in-memory checkpoint, reading the durable
// file on first use. A corrupted file is a loud, sticky error — the
// PR 6 envelope rejects it, and every query that picks this entry sees
// the same failure rather than a silently wrong fork.
func (e *ringEntry) load() (*dismem.Checkpoint, error) {
	e.once.Do(func() {
		if e.cp == nil {
			e.cp, e.loadErr = dismem.ReadCheckpointFile(e.path)
		}
	})
	return e.cp, e.loadErr
}

// ring is the rolling set of durable checkpoints the server maintains:
// at most keep entries, oldest evicted first, newest never evicted.
// All methods are safe for concurrent use; the drive loop is the only
// writer (add), query handlers only read.
type ring struct {
	dir  string
	keep int

	mu      sync.Mutex
	entries []*ringEntry // ascending at
}

// openRing prepares dir and adopts any ring files already present —
// the restart path. Foreign files are left alone. keep <= 0 disables
// eviction (an unbounded ring).
func openRing(dir string, keep int) (*ring, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	r := &ring{dir: dir, keep: keep}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		at, ok := parseRingFileName(de.Name())
		if !ok {
			continue
		}
		r.entries = append(r.entries, &ringEntry{at: at, path: filepath.Join(dir, de.Name())})
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].at < r.entries[j].at })
	return r, nil
}

// add writes cp durably (atomic temp+fsync+rename, PR 6) and admits it
// to the ring, evicting the oldest entries beyond keep. The write
// happens before any eviction, so the newest durable state always
// exists on disk: a crash between write and GC leaves extra old files
// (trimmed on the next add), never a missing new one. Re-adding an
// instant already in the ring (a restart that re-reaches a checkpoint
// boundary) atomically replaces that file instead of growing the ring.
func (r *ring) add(cp *dismem.Checkpoint) (path string, evicted []string, err error) {
	at := cp.At()
	path = filepath.Join(r.dir, ringFileName(at))
	if err := dismem.WriteCheckpointFile(path, cp); err != nil {
		return "", nil, err
	}
	e := &ringEntry{at: at, path: path, cp: cp}
	e.once.Do(func() {}) // handle already in memory; load must not reread

	r.mu.Lock()
	defer r.mu.Unlock()
	replaced := false
	for i, old := range r.entries {
		if old.at == at {
			r.entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		r.entries = append(r.entries, e)
		sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].at < r.entries[j].at })
	}
	if r.keep > 0 {
		for len(r.entries) > r.keep {
			victim := r.entries[0]
			r.entries = r.entries[1:]
			if rmErr := os.Remove(victim.path); rmErr != nil && !os.IsNotExist(rmErr) {
				return path, evicted, fmt.Errorf("serve: evicting ring checkpoint: %w", rmErr)
			}
			evicted = append(evicted, victim.path)
		}
	}
	return path, evicted, nil
}

// nearest returns the newest entry at or before t, the serving layer's
// checkpoint-selection rule.
func (r *ring) nearest(t int64) (*ringEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].at > t })
	if i == 0 {
		return nil, false
	}
	return r.entries[i-1], true
}

// newest returns the most recent entry, the restart resume point.
func (r *ring) newest() (*ringEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		return nil, false
	}
	return r.entries[len(r.entries)-1], true
}

// oldest returns the oldest retained entry.
func (r *ring) oldest() (*ringEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		return nil, false
	}
	return r.entries[0], true
}

// snapshot returns the current entries, ascending.
func (r *ring) snapshot() []*ringEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*ringEntry(nil), r.entries...)
}

// len returns the current ring occupancy.
func (r *ring) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
