package serve

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dismem"
)

func TestRingFileNames(t *testing.T) {
	name := ringFileName(43200)
	if name != "ckpt-000000043200.dmckpt" {
		t.Fatalf("ringFileName(43200) = %q", name)
	}
	at, ok := parseRingFileName(name)
	if !ok || at != 43200 {
		t.Fatalf("parseRingFileName(%q) = %d, %v", name, at, ok)
	}
	for _, foreign := range []string{
		"ckpt-000000043200.dmckpt.tmp", // in-flight atomic write
		"ckpt-abc.dmckpt",
		"ckpt--0000001.dmckpt",
		"notes.txt",
		"baseline.dmckpt",
	} {
		if _, ok := parseRingFileName(foreign); ok {
			t.Fatalf("parseRingFileName accepted foreign name %q", foreign)
		}
	}
}

// ringOpts is the small deterministic configuration the ring tests
// checkpoint from.
func ringOpts() dismem.Options {
	return dismem.Options{
		Policy:   "memaware",
		Model:    "bandwidth:1,1",
		Workload: dismem.SyntheticWorkload(400, 4),
		Failures: &dismem.FailureConfig{MTBFPerNodeSec: 2_000_000, RepairSec: 7200, Seed: 5},
	}
}

// checkpointAt advances a fresh run to t and freezes it.
func checkpointAt(t *testing.T, at int64) *dismem.Checkpoint {
	t.Helper()
	s, err := dismem.New(ringOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(at)
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// ringFiles lists the ring file instants present in dir, ascending.
func ringFiles(t *testing.T, dir string) []int64 {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ats []int64
	for _, de := range des {
		if at, ok := parseRingFileName(de.Name()); ok {
			ats = append(ats, at)
		}
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	return ats
}

// TestRingRetention pins the GC policy under rapid rotation: at most
// keep files survive, eviction is strictly oldest-first, and the newest
// durable file always exists on disk after every add.
func TestRingRetention(t *testing.T) {
	dir := t.TempDir()
	r, err := openRing(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dismem.New(ringOpts())
	if err != nil {
		t.Fatal(err)
	}
	instants := []int64{1000, 2000, 3000, 4000, 5000, 6000}
	for i, at := range instants {
		s.RunUntil(at)
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.add(cp); err != nil {
			t.Fatal(err)
		}
		want := instants[:i+1]
		if len(want) > 3 {
			want = want[len(want)-3:]
		}
		got := ringFiles(t, dir)
		if len(got) != len(want) {
			t.Fatalf("after add(t=%d): %d ring files %v, want %v", at, len(got), got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("after add(t=%d): ring files %v, want %v", at, got, want)
			}
		}
		// The newest durable file must exist and load.
		newest, ok := r.newest()
		if !ok || newest.at != at {
			t.Fatalf("after add(t=%d): newest = %+v, %v", at, newest, ok)
		}
		if _, err := os.Stat(newest.path); err != nil {
			t.Fatalf("newest ring file missing after GC: %v", err)
		}
	}
}

// TestRingKeepOne is the degenerate rotation: keep=1 must always leave
// exactly the newest checkpoint, never zero.
func TestRingKeepOne(t *testing.T) {
	dir := t.TempDir()
	r, err := openRing(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dismem.New(ringOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int64{500, 1500, 2500} {
		s.RunUntil(at)
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.add(cp); err != nil {
			t.Fatal(err)
		}
		got := ringFiles(t, dir)
		if len(got) != 1 || got[0] != at {
			t.Fatalf("keep=1 after add(t=%d): files %v, want exactly [%d]", at, got, at)
		}
	}
}

// TestRingAdoptsExistingFiles pins the restart scan: a reopened ring
// sees the surviving files, nearest() picks the newest at-or-before
// entry, and foreign files are ignored without being deleted.
func TestRingAdoptsExistingFiles(t *testing.T) {
	dir := t.TempDir()
	r, err := openRing(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dismem.New(ringOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int64{1000, 3000, 5000} {
		s.RunUntil(at)
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.add(cp); err != nil {
			t.Fatal(err)
		}
	}
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep me\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := openRing(dir, 2) // tighter keep than what is on disk
	if err != nil {
		t.Fatal(err)
	}
	if r2.len() != 3 {
		t.Fatalf("reopened ring adopted %d entries, want 3 (trim happens on the next add, not at open)", r2.len())
	}
	e, ok := r2.nearest(4200)
	if !ok || e.at != 3000 {
		t.Fatalf("nearest(4200) = %+v, %v, want the t=3000 entry", e, ok)
	}
	if _, ok := r2.nearest(999); ok {
		t.Fatal("nearest(999) found an entry before the oldest checkpoint")
	}
	cp, err := e.load()
	if err != nil {
		t.Fatalf("loading adopted ring file: %v", err)
	}
	if cp.At() != 3000 {
		t.Fatalf("adopted checkpoint At() = %d, want 3000", cp.At())
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file disturbed by ring: %v", err)
	}
}

// TestRingCorruptFileFailsLoudly pins the durability posture: a
// truncated ring file is a sticky, descriptive load error, never a
// silently wrong fork.
func TestRingCorruptFileFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	r, err := openRing(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp := checkpointAt(t, 2000)
	path, _, err := r.add(cp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := openRing(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := r2.newest()
	if !ok {
		t.Fatal("reopened ring is empty")
	}
	if _, err := e.load(); err == nil {
		t.Fatal("load of a truncated ring file succeeded")
	}
	// Sticky: the second load reports the same failure, not a retry.
	_, err1 := e.load()
	_, err2 := e.load()
	if err1 == nil || err1 != err2 {
		t.Fatalf("corrupt-file error not sticky: %v vs %v", err1, err2)
	}
}

// TestRingReplaceSameInstant pins restart-overlap behaviour: re-adding
// an instant already in the ring replaces the file in place instead of
// growing the ring.
func TestRingReplaceSameInstant(t *testing.T) {
	dir := t.TempDir()
	r, err := openRing(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.add(checkpointAt(t, 2000)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.add(checkpointAt(t, 2000)); err != nil {
		t.Fatal(err)
	}
	if r.len() != 1 {
		t.Fatalf("ring grew to %d entries after re-adding t=2000", r.len())
	}
	if got := ringFiles(t, dir); len(got) != 1 || got[0] != 2000 {
		t.Fatalf("ring files after replace: %v", got)
	}
}
