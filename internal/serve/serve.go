// Package serve is the long-lived what-if simulation service: a daemon
// layer that keeps one baseline Simulation warm, maintains a rolling
// ring of durable on-disk checkpoints (PR 6 envelopes, atomic writes,
// bounded retention), and answers concurrent what-if queries — "this
// outage at 14:00 under spec X: wait/bsld/fairness deltas?" — by
// forking the nearest checkpoint at or before the requested instant
// (PR 5 checkpoint/fork, ~µs per fork) instead of re-simulating the
// prefix.
//
// Architecture (DESIGN.md §10):
//
//   - The baseline is single-goroutine state, advanced only by the
//     drive loop (Run) in bounded virtual-time chunks — the same
//     no-cross-goroutine-Stop pattern as dmsched. Every K sim-seconds
//     it freezes a checkpoint and hands it to the ring, which also
//     persists it durably.
//   - HTTP handlers never touch the baseline. They read an atomically
//     published status snapshot and fork immutable checkpoints from
//     the ring; forks run on a bounded worker pool (Config.Workers),
//     each an independent Simulation.
//   - Query determinism: the same checkpoint and the same request body
//     produce a byte-identical response (forks are deterministic, the
//     baseline-delta summary is cached by value, and responses carry
//     no wall-clock state). The CI serve smoke diffs repeated queries
//     and the offline dmsched fork path against the service.
package serve

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"dismem"
	"dismem/internal/runstore"
	"dismem/internal/telemetry"
	"dismem/internal/trace"
)

// Config parameterises a Server.
type Config struct {
	// Options is the baseline run configuration. It must be durable:
	// policy and model selected by spec string (no SchedulerImpl /
	// ModelImpl), and any Source forkable and durable — the same rules
	// as SaveCheckpoint, checked up front instead of at the first ring
	// write.
	Options dismem.Options
	// Label names the policy in text-format what-if responses
	// (default Options.Policy).
	Label string
	// CkptDir is the checkpoint ring directory (required). A directory
	// holding ring files from a previous process resumes the baseline
	// from the newest one.
	CkptDir string
	// CkptEvery is the ring checkpoint period in simulated seconds
	// (required > 0). Checkpoints land exactly at multiples of it, so
	// offline runs can reproduce them with dmsched -checkpoint-at.
	CkptEvery int64
	// CkptKeep bounds ring retention: the oldest file is deleted once
	// more than CkptKeep exist (<= 0 keeps everything). The newest
	// checkpoint is never evicted.
	CkptKeep int
	// Workers bounds concurrent what-if forks (default GOMAXPROCS).
	Workers int
	// Chunk is the drive-loop granularity in simulated seconds: the
	// interrupt-check and status-publish interval (default 3600,
	// capped at CkptEvery).
	Chunk int64
	// Store, when non-nil, archives the baseline's final report as a
	// "serve-baseline" run record the moment the baseline drains. The
	// record carries no wall-clock state, so a baseline resumed from
	// the ring archives exactly what an uninterrupted one archives.
	Store *runstore.Store
	// TraceRing, when > 0, keeps the newest TraceRing baseline
	// lifecycle-trace events in a bounded in-memory ring served on
	// GET /v1/trace. The ring is a non-composing trace owner: beyond
	// the engine's lifecycle events it also records checkpoint/fork
	// boundary marks (ring writes, baseline resume). What-if forks are
	// not traced — the ring covers the baseline timeline only.
	// Requires Options.TraceSink to be nil (the server owns the
	// baseline's trace sink when the ring is enabled).
	TraceRing int
}

// Status is the live baseline snapshot the drive loop publishes after
// every chunk; handlers read it lock-free.
type Status struct {
	Policy       string  `json:"policy"`
	Model        string  `json:"model"`
	Now          int64   `json:"now"`
	QueueDepth   int     `json:"queue_depth"`
	Running      int     `json:"running"`
	DoneJobs     int     `json:"done_jobs"`
	Events       uint64  `json:"events"`
	BusyNodes    int     `json:"busy_nodes"`
	UsedPoolMiB  int64   `json:"used_pool_mib"`
	MaxPoolUtil  float64 `json:"max_pool_util"`
	BaselineDone bool    `json:"baseline_done"`
}

// Server wraps one baseline simulation, its checkpoint ring, and the
// query layer. Create with New, advance with Run, serve Handler.
type Server struct {
	cfg     Config
	label   string
	sim     *dismem.Simulation
	ring    *ring
	resumed string // ring file the baseline resumed from, "" for a fresh start

	nextCkpt int64
	status   atomic.Pointer[Status]

	sem chan struct{} // bounded what-if worker pool

	// trace is the bounded in-memory lifecycle-trace ring behind
	// GET /v1/trace (nil = tracing disabled).
	trace *trace.Ring

	base     baselineCache
	archived bool // baseline report already written to cfg.Store

	// expvar counters, grouped under one per-server map published
	// under a process-unique name ("dmserve", "dmserve_2", ...) so two
	// servers in one process never collide in the global registry or
	// emit duplicate keys in a /debug/vars body.
	varsName                                 string
	vars                                     expvar.Map
	queriesServed, queriesInflight           expvar.Int
	queriesErrored                           expvar.Int
	forksTotal, forkNsTotal, forkNsMax       expvar.Int
	ckptsWritten, ckptsEvicted, baselineHits expvar.Int
	ckptLoadErrors                           expvar.Int

	// gauges mirrors the published Status for GET /metrics scrapes.
	gauges *telemetry.GaugeSet
}

// varsNames tracks the per-server expvar map names taken in this
// process; expvar.Publish panics on a duplicate, so allocation must be
// collision-free for the process lifetime (the registry has no
// unpublish).
var varsNames struct {
	mu  sync.Mutex
	seq int
}

// nextVarsName allocates the next process-unique server name.
func nextVarsName() string {
	varsNames.mu.Lock()
	defer varsNames.mu.Unlock()
	varsNames.seq++
	if varsNames.seq == 1 {
		return "dmserve"
	}
	return fmt.Sprintf("dmserve_%d", varsNames.seq)
}

// New builds the server: a fresh baseline from cfg.Options, or — when
// cfg.CkptDir already holds ring checkpoints — the baseline resumed
// from the newest one, bit-identical to the process that wrote it
// (DESIGN.md §9). The checkpointed configuration then wins over
// cfg.Options (a checkpoint is self-contained).
func New(cfg Config) (*Server, error) {
	if cfg.CkptDir == "" {
		return nil, fmt.Errorf("serve: Config.CkptDir is required")
	}
	if cfg.CkptEvery <= 0 {
		return nil, fmt.Errorf("serve: Config.CkptEvery must be > 0 simulated seconds")
	}
	if cfg.Options.SchedulerImpl != nil {
		return nil, fmt.Errorf("serve: baseline must select its scheduler with Options.Policy (a live SchedulerImpl has no durable form)")
	}
	if cfg.Options.ModelImpl != nil {
		return nil, fmt.Errorf("serve: baseline must select its model with Options.Model (a live ModelImpl has no durable form)")
	}
	if cfg.TraceRing > 0 && cfg.Options.TraceSink != nil {
		return nil, fmt.Errorf("serve: Config.TraceRing and Options.TraceSink are mutually exclusive (the server owns the baseline's trace sink when the ring is enabled)")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 3600
	}
	if cfg.Chunk > cfg.CkptEvery {
		cfg.Chunk = cfg.CkptEvery
	}

	r, err := openRing(cfg.CkptDir, cfg.CkptKeep)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		label:  cfg.Label,
		ring:   r,
		sem:    make(chan struct{}, cfg.Workers),
		gauges: telemetry.NewGaugeSet(),
	}
	if cfg.TraceRing > 0 {
		s.trace = trace.NewRing(cfg.TraceRing)
	}
	s.initVars()

	policy, model := cfg.Options.Policy, cfg.Options.Model
	if e, ok := r.newest(); ok {
		cp, err := e.load()
		if err != nil {
			s.ckptLoadErrors.Add(1)
			return nil, fmt.Errorf("serve: resuming baseline from %s: %w", e.path, err)
		}
		fo := dismem.ForkOptions{}
		if s.trace != nil {
			fo.TraceSink = s.trace
		}
		s.sim, err = dismem.Fork(cp, fo)
		if err != nil {
			return nil, fmt.Errorf("serve: resuming baseline from %s: %w", e.path, err)
		}
		s.resumed = e.path
		if s.trace != nil {
			// The ring is a non-composing trace: it marks the resume
			// boundary itself (the engine never emits boundary events).
			s.trace.Add(trace.Event{Now: cp.At(), Type: trace.ForkMark,
				Detail: "baseline resumed from " + filepath.Base(e.path)})
		}
		policy, model = cp.Policy(), cp.Model()
		// The next ring boundary is the first multiple of CkptEvery
		// strictly after the resume instant, so a resumed timeline
		// lands checkpoints on the same grid as an uninterrupted one.
		s.nextCkpt = (cp.At()/cfg.CkptEvery + 1) * cfg.CkptEvery
	} else {
		opts := cfg.Options
		if s.trace != nil {
			opts.TraceSink = s.trace
		}
		s.sim, err = dismem.New(opts)
		if err != nil {
			return nil, err
		}
		s.nextCkpt = cfg.CkptEvery
	}
	if s.label == "" {
		s.label = policy
	}
	if model == "" {
		model = "linear:0.5"
	}
	s.cfg.Options.Policy, s.cfg.Options.Model = policy, model
	s.publishStatus()
	return s, nil
}

// initVars wires the counters into the server's expvar map and
// publishes the map under a process-unique name, so one /debug/vars
// body (or /metrics scrape) can show every server in the process
// without key collisions.
func (s *Server) initVars() {
	s.vars.Init()
	s.vars.Set("queries_served", &s.queriesServed)
	s.vars.Set("queries_inflight", &s.queriesInflight)
	s.vars.Set("queries_errored", &s.queriesErrored)
	s.vars.Set("forks_total", &s.forksTotal)
	s.vars.Set("fork_ns_total", &s.forkNsTotal)
	s.vars.Set("fork_ns_max", &s.forkNsMax)
	s.vars.Set("checkpoints_written", &s.ckptsWritten)
	s.vars.Set("checkpoints_evicted", &s.ckptsEvicted)
	s.vars.Set("baseline_cache_hits", &s.baselineHits)
	s.vars.Set("checkpoint_load_errors", &s.ckptLoadErrors)
	s.varsName = nextVarsName()
	expvar.Publish(s.varsName, &s.vars)
}

// VarsName returns the process-unique expvar key this server's counter
// map is published under ("dmserve" for the first server).
func (s *Server) VarsName() string { return s.varsName }

// ResumedFrom returns the ring file the baseline was resumed from, or
// "" when the server started fresh.
func (s *Server) ResumedFrom() string { return s.resumed }

// Status returns the latest published baseline snapshot.
func (s *Server) Status() Status { return *s.status.Load() }

// publishStatus snapshots the baseline for lock-free handler reads and
// mirrors the snapshot into the /metrics gauges.
// Drive-loop-goroutine only.
func (s *Server) publishStatus() {
	sample := s.sim.Sample()
	s.status.Store(&Status{
		Policy:       s.cfg.Options.Policy,
		Model:        s.cfg.Options.Model,
		Now:          sample.Now,
		QueueDepth:   sample.QueueDepth,
		Running:      sample.Running,
		DoneJobs:     sample.Done,
		Events:       sample.Events,
		BusyNodes:    sample.Usage.BusyNodes,
		UsedPoolMiB:  sample.Usage.UsedPool,
		MaxPoolUtil:  sample.Usage.MaxPoolUtil,
		BaselineDone: s.sim.Done(),
	})
	g := s.gauges
	g.Set("dismem_now_seconds", "baseline virtual clock", nil, float64(sample.Now))
	g.Set("dismem_queue_depth", "jobs waiting in the baseline queue", nil, float64(sample.QueueDepth))
	g.Set("dismem_running_jobs", "jobs running on the baseline machine", nil, float64(sample.Running))
	g.Set("dismem_done_jobs", "baseline jobs finished", nil, float64(sample.Done))
	g.Set("dismem_events_total", "DES events fired by the baseline", nil, float64(sample.Events))
	g.Set("dismem_busy_nodes", "baseline nodes running at least one job", nil, float64(sample.Usage.BusyNodes))
	g.Set("dismem_used_local_mib", "baseline node-local memory in use", nil, float64(sample.Usage.UsedLocal))
	g.Set("dismem_used_pool_mib", "baseline pooled memory in use", nil, float64(sample.Usage.UsedPool))
	g.Set("dismem_max_pool_util", "highest per-pool utilization", nil, sample.Usage.MaxPoolUtil)
	g.Set("dismem_max_congestion", "highest per-pool fabric congestion ratio", nil, sample.Usage.MaxCongest)
	setLabeledGauges(g, sample)
	done := 0.0
	if s.sim.Done() {
		done = 1
	}
	g.Set("dismem_baseline_done", "1 once the baseline workload drained", nil, done)
}

// setLabeledGauges mirrors the per-pool and per-rack breakdown of one
// sample into labeled gauge families — the same families dmsched's
// -metrics-addr exports, so dashboards work against either. Pool sets
// are stable for a machine's lifetime (pools never appear or vanish
// mid-run; a drained pool reads 0), so stale labels cannot linger.
func setLabeledGauges(g *telemetry.GaugeSet, sample dismem.Sample) {
	for _, p := range sample.Pools {
		lbl := map[string]string{"pool": strconv.Itoa(p.ID)}
		g.Set("dismem_pool_used_bytes", "pooled memory in use, per pool", lbl, float64(p.UsedMiB)*1024*1024)
		g.Set("dismem_pool_capacity_bytes", "pool capacity, per pool", lbl, float64(p.CapacityMiB)*1024*1024)
	}
	for rk, free := range sample.RackFree {
		g.Set("dismem_rack_free_nodes", "available (up, idle) nodes per rack", map[string]string{"rack": strconv.Itoa(rk)}, float64(free))
	}
}

// archiveBaseline writes the drained baseline's final report to the
// configured run store, once. Drive-loop-goroutine only.
func (s *Server) archiveBaseline() error {
	if s.cfg.Store == nil || s.archived {
		return nil
	}
	res, err := s.sim.Result()
	if err != nil {
		return fmt.Errorf("serve: archiving baseline: %w", err)
	}
	spec, err := json.Marshal(struct {
		Policy string `json:"policy"`
		Model  string `json:"model"`
	}{s.cfg.Options.Policy, s.cfg.Options.Model})
	if err != nil {
		return fmt.Errorf("serve: archiving baseline: %w", err)
	}
	rec := runstore.Run{
		ID:     runstore.KeyOf("serve-baseline", spec, 0),
		Kind:   "serve-baseline",
		Label:  s.label,
		Spec:   spec,
		Report: res.Report,
		Events: res.Events,
	}
	if err := s.cfg.Store.Append(rec); err != nil {
		return fmt.Errorf("serve: archiving baseline: %w", err)
	}
	s.archived = true
	return nil
}

// advance drives the baseline one chunk (never past the next ring
// boundary), writing the boundary checkpoint when reached. It reports
// whether the baseline can still make progress. Drive-loop-goroutine
// only.
func (s *Server) advance() (bool, error) {
	if s.sim.Done() {
		s.publishStatus()
		return false, s.archiveBaseline()
	}
	target := s.sim.Now() + s.cfg.Chunk
	if target > s.nextCkpt {
		target = s.nextCkpt
	}
	s.sim.RunUntil(target)
	if !s.sim.Done() && s.sim.Now() >= s.nextCkpt {
		if err := s.writeRingCheckpoint(); err != nil {
			return false, err
		}
		s.nextCkpt += s.cfg.CkptEvery
	}
	s.publishStatus()
	if s.sim.Done() {
		return false, s.archiveBaseline()
	}
	return true, nil
}

// writeRingCheckpoint freezes the baseline and admits the checkpoint
// to the ring. Drive-loop-goroutine only.
func (s *Server) writeRingCheckpoint() error {
	cp, err := s.sim.Checkpoint()
	if err != nil {
		return fmt.Errorf("serve: baseline checkpoint at t=%d: %v", s.sim.Now(), err)
	}
	path, evicted, err := s.ring.add(cp)
	if err != nil {
		return err
	}
	s.ckptsWritten.Add(1)
	s.ckptsEvicted.Add(int64(len(evicted)))
	s.traceMark(trace.CheckpointMark, cp.At(), path)
	return nil
}

// traceMark records a checkpoint/fork boundary event in the trace
// ring, when one is enabled. The ring is the non-composing trace owner
// that records boundary marks the engine itself never emits.
func (s *Server) traceMark(t trace.Type, at int64, path string) {
	if s.trace == nil {
		return
	}
	s.trace.Add(trace.Event{Now: at, Type: t,
		Detail: "ring checkpoint " + filepath.Base(path)})
}

// Run is the drive loop: it advances the baseline chunk by chunk —
// checking ctx between chunks, at event boundaries, on this goroutine
// (no cross-goroutine Stop racing the event loop) — until the baseline
// drains, then idles serving queries from the ring until ctx is
// cancelled. Cancellation is a graceful stop, not an error; call
// FinalCheckpoint afterwards to persist the interrupted state.
func (s *Server) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		more, err := s.advance()
		if err != nil {
			return err
		}
		if !more {
			break
		}
	}
	<-ctx.Done()
	return nil
}

// FinalCheckpoint freezes the baseline's current state into the ring,
// so a restart resumes exactly where this process stopped — the
// SIGTERM path. It reports the written path, or "" when the baseline
// already drained (nothing left to resume). Call it only after Run has
// returned: the caller is then the sole owner of the baseline again.
func (s *Server) FinalCheckpoint() (string, error) {
	if s.sim.Done() {
		return "", nil
	}
	cp, err := s.sim.Checkpoint()
	if err != nil {
		return "", fmt.Errorf("serve: final checkpoint at t=%d: %v", s.sim.Now(), err)
	}
	path, evicted, err := s.ring.add(cp)
	if err != nil {
		return "", err
	}
	s.ckptsWritten.Add(1)
	s.ckptsEvicted.Add(int64(len(evicted)))
	s.traceMark(trace.CheckpointMark, cp.At(), path)
	return path, nil
}
