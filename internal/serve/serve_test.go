package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dismem"
	"dismem/internal/report"
)

// testOptions is the serve test configuration: failure injection and
// invariant checking on, no baseline scenario — what-if tails come in
// through the API. (A fork tail REPLACES the pending intervention
// timeline, so tests must use self-repairing tails: a tail that downs
// a rack without a matching up starves the queue forever and the
// future never drains.)
func testOptions(t *testing.T) dismem.Options {
	t.Helper()
	return dismem.Options{
		Policy:          "memaware",
		Model:           "bandwidth:1,1",
		Workload:        dismem.SyntheticWorkload(400, 4),
		Failures:        &dismem.FailureConfig{MTBFPerNodeSec: 2_000_000, RepairSec: 7200, Seed: 5},
		CheckInvariants: true,
	}
}

func testServer(t *testing.T, keep int) *Server {
	t.Helper()
	s, err := New(Config{
		Options:   testOptions(t),
		CkptDir:   t.TempDir(),
		CkptEvery: 7200,
		CkptKeep:  keep,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// driveToDone advances the baseline synchronously to completion, the
// single-goroutine equivalent of Run.
func driveToDone(t *testing.T, s *Server) {
	t.Helper()
	for {
		more, err := s.advance()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			return
		}
	}
}

// do runs one request through the service handler.
func do(h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

func TestServeConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Options: dismem.Options{Policy: "fcfs-local", Workload: dismem.SyntheticWorkload(10, 1)},
			CkptDir: t.TempDir(), CkptEvery: 100}
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"missing dir", func(c *Config) { c.CkptDir = "" }, "CkptDir is required"},
		{"zero period", func(c *Config) { c.CkptEvery = 0 }, "CkptEvery must be > 0"},
		{"live scheduler", func(c *Config) { c.Options.SchedulerImpl = mustScheduler(t, "fcfs-local") }, "no durable form"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New() error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func mustScheduler(t *testing.T, policy string) dismem.Scheduler {
	t.Helper()
	s, err := dismem.NewScheduler(policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServeStatusAndCheckpoints drives a baseline to completion and
// checks the read-only endpoints: status reflects the drained run, the
// checkpoint listing is the ring in ascending order on the CkptEvery
// grid, and /debug/vars exposes the per-server counters.
func TestServeStatusAndCheckpoints(t *testing.T) {
	s := testServer(t, 0)
	driveToDone(t, s)
	h := s.Handler()

	rec := do(h, http.MethodGet, "/v1/status", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/status = %d: %s", rec.Code, rec.Body)
	}
	var st statusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.BaselineDone || st.Policy != "memaware" || st.Model != "bandwidth:1,1" {
		t.Fatalf("status = %+v", st.Status)
	}
	if st.Checkpoints.Count == 0 || st.Checkpoints.Every != 7200 {
		t.Fatalf("ring status = %+v", st.Checkpoints)
	}

	rec = do(h, http.MethodGet, "/v1/checkpoints", "")
	var list struct {
		Checkpoints []checkpointInfo `json:"checkpoints"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Checkpoints) != st.Checkpoints.Count {
		t.Fatalf("checkpoint listing has %d entries, status says %d", len(list.Checkpoints), st.Checkpoints.Count)
	}
	for i, ci := range list.Checkpoints {
		if ci.At%7200 != 0 {
			t.Fatalf("ring checkpoint %d at t=%d, off the CkptEvery grid", i, ci.At)
		}
		if i > 0 && ci.At <= list.Checkpoints[i-1].At {
			t.Fatalf("checkpoint listing not ascending: %+v", list.Checkpoints)
		}
	}

	rec = do(h, http.MethodGet, "/debug/vars", "")
	var vars struct {
		Dmserve map[string]int64 `json:"dmserve"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("bad /debug/vars payload: %v\n%s", err, rec.Body)
	}
	if vars.Dmserve["checkpoints_written"] == 0 {
		t.Fatalf("debug vars = %+v, want checkpoints_written > 0", vars.Dmserve)
	}
}

// TestWhatIfMatchesOfflineFork is the serving-layer golden test: a
// /v1/whatif answer must be bit-identical to the offline path — run to
// the same instant, Checkpoint, Fork with the same overrides, Run —
// in both the JSON report and the canonical text format.
func TestWhatIfMatchesOfflineFork(t *testing.T) {
	s := testServer(t, 0)
	driveToDone(t, s)
	h := s.Handler()

	const body = `{"at": 21600, "scenario": "at=50000 down rack=2; at=86400 up rack=2"}`
	rec := do(h, http.MethodPost, "/v1/whatif", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/whatif = %d: %s", rec.Code, rec.Body)
	}
	var resp WhatIfResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CheckpointAt != 21600 {
		t.Fatalf("checkpoint_at = %d, want 21600", resp.CheckpointAt)
	}

	// The offline path the CI smoke also exercises via dmsched.
	off, err := dismem.New(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	off.RunUntil(21600)
	cp, err := off.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	f, err := dismem.Fork(cp, dismem.ForkOptions{ScenarioSpec: "at=50000 down rack=2; at=86400 up rack=2"})
	if err != nil {
		t.Fatal(err)
	}
	offRes, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resp.Report, summarize(offRes); got != want {
		t.Fatalf("service report diverges from offline fork:\n%+v\n%+v", got, want)
	}

	// Identical request, byte-identical response.
	rec2 := do(h, http.MethodPost, "/v1/whatif", body)
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("identical what-if requests returned different bytes")
	}

	// Text format: byte-identical to the shared report renderer over
	// the offline result.
	recText := do(h, http.MethodPost, "/v1/whatif?format=text", body)
	if recText.Code != http.StatusOK {
		t.Fatalf("text what-if = %d: %s", recText.Code, recText.Body)
	}
	if got, want := recText.Body.String(), report.Format("memaware", offRes); got != want {
		t.Fatalf("text report diverges from offline render:\n--- got\n%s--- want\n%s", got, want)
	}

	// Deltas must be self-consistent with the two summaries.
	if resp.Baseline == nil || resp.Deltas == nil {
		t.Fatal("response missing baseline/deltas")
	}
	if d := resp.Report.MeanWaitSec - resp.Baseline.MeanWaitSec; d != resp.Deltas.MeanWaitSec {
		t.Fatalf("delta mean_wait_sec %v inconsistent with report-baseline %v", resp.Deltas.MeanWaitSec, d)
	}
}

// TestWhatIfConcurrentByteIdentical hammers one query from 32
// goroutines (4 workers) and requires every response byte-identical to
// the serial one — the concurrency contract, surfaced at the API.
func TestWhatIfConcurrentByteIdentical(t *testing.T) {
	s := testServer(t, 0)
	driveToDone(t, s)
	h := s.Handler()

	const body = `{"at": 21600, "scenario": "at=50000 down rack=2; at=86400 up rack=2", "policy": "order=sjf backfill=easy placer=memaware"}`
	serial := do(h, http.MethodPost, "/v1/whatif", body)
	if serial.Code != http.StatusOK {
		t.Fatalf("serial what-if = %d: %s", serial.Code, serial.Body)
	}

	const n = 32
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec := do(h, http.MethodPost, "/v1/whatif", body)
			codes[g], bodies[g] = rec.Code, rec.Body.Bytes()
		}(g)
	}
	wg.Wait()
	for g := 0; g < n; g++ {
		if codes[g] != http.StatusOK {
			t.Fatalf("goroutine %d: status %d: %s", g, codes[g], bodies[g])
		}
		if !bytes.Equal(bodies[g], serial.Body.Bytes()) {
			t.Fatalf("goroutine %d returned different bytes than the serial query", g)
		}
	}
	if got := s.queriesServed.Value(); got != n+1 {
		t.Fatalf("queries_served = %d, want %d", got, n+1)
	}
}

// TestWhatIfValidation pins the HTTP error mapping: defects in the
// request are 400s with pointed messages, an empty ring is 503, and
// non-POST is 405.
func TestWhatIfValidation(t *testing.T) {
	s := testServer(t, 0)
	// Advance past the first ring boundary only.
	for s.ring.len() == 0 {
		if _, err := s.advance(); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handler()

	for _, tc := range []struct {
		name, body string
		status     int
		want       string
	}{
		{"before first checkpoint", `{"at": 100}`, http.StatusBadRequest, "no checkpoint at or before t=100"},
		{"malformed scenario", `{"scenario": "at=50000 explode rack=2"}`, http.StatusBadRequest, "fork scenario"},
		{"horizon before checkpoint", `{"at": 7200, "horizon": 100}`, http.StatusBadRequest, "precedes the checkpoint's frozen clock"},
		{"unknown policy", `{"policy": "no-such-policy"}`, http.StatusBadRequest, "fork policy"},
		{"unknown field", `{"att": 5}`, http.StatusBadRequest, "bad what-if body"},
		{"not json", `at=5`, http.StatusBadRequest, "bad what-if body"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(h, http.MethodPost, "/v1/whatif", tc.body)
			if rec.Code != tc.status || !strings.Contains(rec.Body.String(), tc.want) {
				t.Fatalf("status %d body %q, want %d with %q", rec.Code, rec.Body, tc.status, tc.want)
			}
		})
	}
	if rec := do(h, http.MethodGet, "/v1/whatif", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/whatif = %d, want 405", rec.Code)
	}

	empty := testServer(t, 0)
	if rec := do(empty.Handler(), http.MethodPost, "/v1/whatif", `{"at": 0}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("what-if on an empty ring = %d, want 503", rec.Code)
	}
	if errored := s.queriesErrored.Value(); errored == 0 {
		t.Fatal("queries_errored did not count the failures")
	}
}

// TestServeRestartBitIdentical is the durability golden test: SIGTERM
// (final checkpoint) + restart from the ring must continue the baseline
// to a result bit-identical to one uninterrupted run — report, events
// and per-job records.
func TestServeRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{Options: testOptions(t), CkptDir: dir, CkptEvery: 7200})
	if err != nil {
		t.Fatal(err)
	}
	for a.sim.Now() < 20000 {
		if _, err := a.advance(); err != nil {
			t.Fatal(err)
		}
	}
	path, err := a.FinalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("final checkpoint wrote nothing for a live baseline")
	}

	b, err := New(Config{Options: testOptions(t), CkptDir: dir, CkptEvery: 7200})
	if err != nil {
		t.Fatal(err)
	}
	if b.ResumedFrom() == "" {
		t.Fatal("restarted server did not resume from the ring")
	}
	if b.Status().Now != a.Status().Now {
		t.Fatalf("resumed clock t=%d, want the interrupted t=%d", b.Status().Now, a.Status().Now)
	}
	driveToDone(t, b)
	resumed, err := b.sim.Result()
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := dismem.New(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	full, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	if *resumed.Report != *full.Report {
		t.Fatalf("resumed run diverged:\n%+v\n%+v", resumed.Report, full.Report)
	}
	if resumed.Events != full.Events || resumed.ScenarioEvents != full.ScenarioEvents {
		t.Fatalf("resumed events %d/%d != %d/%d",
			resumed.Events, resumed.ScenarioEvents, full.Events, full.ScenarioEvents)
	}
	ra, rf := resumed.Recorder.Records(), full.Recorder.Records()
	if len(ra) != len(rf) {
		t.Fatalf("resumed %d records != %d", len(ra), len(rf))
	}
	for i := range ra {
		if ra[i] != rf[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ra[i], rf[i])
		}
	}

	// The restart continued the checkpoint grid: every ring file after
	// the resume point still lands on a CkptEvery multiple.
	for _, e := range b.ring.snapshot() {
		if e.at%7200 != 0 && e.path != path {
			t.Fatalf("post-restart ring checkpoint off-grid at t=%d", e.at)
		}
	}
}

// TestServeRunLiveQueries exercises the real concurrency shape under
// -race: the drive loop advancing on one goroutine while handler
// goroutines read status and fork what-ifs, then a graceful stop with
// a final checkpoint.
func TestServeRunLiveQueries(t *testing.T) {
	s := testServer(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()

	// Wait for the first ring checkpoint so queries have a base.
	for s.ring.len() == 0 {
		time.Sleep(time.Millisecond)
	}
	h := s.Handler()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if rec := do(h, http.MethodGet, "/v1/status", ""); rec.Code != http.StatusOK {
					t.Errorf("status during run: %d", rec.Code)
				}
				rec := do(h, http.MethodPost, "/v1/whatif", `{"at": 0, "horizon": 0, "no_baseline": true}`)
				if rec.Code != http.StatusOK {
					t.Errorf("what-if during run: %d: %s", rec.Code, rec.Body)
				}
			}
		}()
	}
	wg.Wait()
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run() = %v", err)
	}
	if _, err := s.FinalCheckpoint(); err != nil {
		t.Fatal(err)
	}
}
