package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"

	"dismem/internal/runstore"
	"dismem/internal/telemetry"
)

// TestServeMetricsEndpoint: GET /metrics passes the exposition-format
// validator mid-run and after the drain, carries the live baseline
// gauges, and bridges the service counters.
func TestServeMetricsEndpoint(t *testing.T) {
	s := testServer(t, 0)
	h := s.Handler()

	// One chunk in: the scrape must already be well-formed.
	if _, err := s.advance(); err != nil {
		t.Fatal(err)
	}
	rec := do(h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics mid-run: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("content type %q", ct)
	}
	if _, err := telemetry.Validate(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatalf("mid-run scrape fails validation: %v\n%s", err, rec.Body.String())
	}

	driveToDone(t, s)
	do(h, http.MethodPost, "/v1/whatif", `{"at": 7200}`)

	rec = do(h, http.MethodGet, "/metrics", "")
	body := rec.Body.String()
	if _, err := telemetry.Validate(strings.NewReader(body)); err != nil {
		t.Fatalf("drained scrape fails validation: %v\n%s", err, body)
	}
	for _, want := range []string{
		"dismem_baseline_done 1\n",
		"dismem_queue_depth 0\n",
		`dismem_pool_used_bytes{pool="0"} `,
		`dismem_pool_capacity_bytes{pool="0"} `,
		`dismem_rack_free_nodes{rack="0"} `,
		s.VarsName() + "_queries_served 1\n",
		s.VarsName() + "_checkpoints_written ",
		s.VarsName() + "_checkpoint_load_errors 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
}

// TestServeTwoServersShareProcess: each server gets a process-unique
// expvar name, and each /debug/vars body is valid JSON holding both
// servers' maps under distinct keys — the collision the namespacing
// exists to prevent.
func TestServeTwoServersShareProcess(t *testing.T) {
	a := testServer(t, 0)
	b := testServer(t, 0)
	if a.VarsName() == b.VarsName() {
		t.Fatalf("two servers share expvar name %q", a.VarsName())
	}
	for _, s := range []*Server{a, b} {
		rec := do(s.Handler(), http.MethodGet, "/debug/vars", "")
		var got map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("server %s /debug/vars is not valid JSON: %v", s.VarsName(), err)
		}
		for _, name := range []string{a.VarsName(), b.VarsName()} {
			if _, ok := got[name]; !ok {
				t.Errorf("server %s /debug/vars missing map %q", s.VarsName(), name)
			}
		}
	}
}

// TestServeCorruptRingCounter: a query that picks a corrupt ring file
// fails with a sticky error, and every such query increments the
// load-error counter — the condition is visible on /metrics before
// anyone reads the logs.
func TestServeCorruptRingCounter(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{Options: testOptions(t), CkptDir: dir, CkptEvery: 7200, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	driveToDone(t, a)
	entries := a.ring.snapshot()
	if len(entries) < 2 {
		t.Fatalf("degenerate fixture: ring holds %d checkpoints, need 2+", len(entries))
	}

	// Corrupt everything except the newest file, then boot a second
	// server over the directory: it resumes from the intact newest and
	// scans the rest lazily, so the first disk read of a corrupt entry
	// happens on the query path.
	for _, e := range entries[:len(entries)-1] {
		corruptFile(t, e.path)
	}
	b, err := New(Config{Options: testOptions(t), CkptDir: dir, CkptEvery: 7200, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := b.Handler()
	target := entries[0].at
	for i := 0; i < 2; i++ {
		rec := do(h, http.MethodPost, "/v1/whatif", fmt.Sprintf(`{"at": %d}`, target))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("query %d against a corrupt ring file: %d, want 500", i, rec.Code)
		}
	}
	if got := b.ckptLoadErrors.Value(); got != 2 {
		t.Fatalf("checkpoint_load_errors = %d after 2 failing queries, want 2", got)
	}
	rec := do(h, http.MethodGet, "/metrics", "")
	if want := b.VarsName() + "_checkpoint_load_errors 2\n"; !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("scrape missing %q", want)
	}
}

// corruptFile flips a byte in the middle of path.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestServeArchivesBaseline: with a run store configured, the drained
// baseline is archived exactly once, and a second server over the same
// configuration re-archives idempotently.
func TestServeArchivesBaseline(t *testing.T) {
	dir := t.TempDir()
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cfg := Config{
		Options:   testOptions(t),
		CkptDir:   t.TempDir(),
		CkptEvery: 7200,
		Workers:   2,
		Store:     store,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveToDone(t, s)
	driveToDone(t, s) // advancing a drained baseline must not re-archive
	if store.Len() != 1 {
		t.Fatalf("store holds %d runs after one baseline, want 1", store.Len())
	}
	runs := store.Runs()
	if runs[0].Kind != "serve-baseline" || runs[0].Report == nil || runs[0].Report.Completed == 0 {
		t.Fatalf("baseline record malformed: %+v", runs[0])
	}

	cfg.CkptDir = t.TempDir()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveToDone(t, s2)
	if store.Len() != 1 {
		t.Fatalf("identical baseline archived twice: %d runs", store.Len())
	}
}
