package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"dismem"
	"dismem/internal/trace"
)

func testTraceServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		Options:   testOptions(t),
		CkptDir:   t.TempDir(),
		CkptEvery: 7200,
		Workers:   2,
		TraceRing: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTraceEndpointDisabled: without a trace ring, GET /v1/trace
// explains how to turn tracing on instead of returning an empty list.
func TestTraceEndpointDisabled(t *testing.T) {
	s := testServer(t, 0)
	rec := do(s.Handler(), http.MethodGet, "/v1/trace", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /v1/trace = %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "tracing disabled") {
		t.Fatalf("body %q does not explain how to enable tracing", rec.Body.String())
	}
}

// TestTraceRingExcludesExplicitSink: the ring and a caller-owned
// Options.TraceSink are mutually exclusive — New must refuse.
func TestTraceRingExcludesExplicitSink(t *testing.T) {
	opts := testOptions(t)
	opts.TraceSink = dismem.DiscardTrace
	_, err := New(Config{Options: opts, CkptDir: t.TempDir(), CkptEvery: 7200, TraceRing: 16})
	if err == nil || !strings.Contains(err.Error(), "TraceRing") {
		t.Fatalf("New() error = %v, want the TraceRing/TraceSink conflict", err)
	}
}

// TestTraceEndpointServesBaseline: with a ring configured, the drained
// baseline's lifecycle events are queryable — whole timeline, windowed
// slices, and the checkpoint boundary marks only a non-composing owner
// records.
func TestTraceEndpointServesBaseline(t *testing.T) {
	s := testTraceServer(t)
	driveToDone(t, s)
	h := s.Handler()

	rec := do(h, http.MethodGet, "/v1/trace", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/trace = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		From    int64         `json:"from"`
		Count   int           `json:"count"`
		Dropped uint64        `json:"dropped"`
		Events  []trace.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count == 0 || resp.Count != len(resp.Events) {
		t.Fatalf("count = %d with %d events", resp.Count, len(resp.Events))
	}
	byType := map[trace.Type]int{}
	last := int64(-1 << 62)
	for _, ev := range resp.Events {
		byType[ev.Type]++
		if ev.Now < last {
			t.Fatalf("events out of order: %d after %d", ev.Now, last)
		}
		last = ev.Now
	}
	for _, want := range []trace.Type{trace.Submit, trace.Dispatch, trace.Terminate} {
		if byType[want] == 0 {
			t.Fatalf("baseline trace has no %q events (got %v)", want, byType)
		}
	}
	if byType[trace.CheckpointMark] == 0 {
		t.Fatalf("ring recorded no checkpoint marks (got %v)", byType)
	}

	// A window query returns only that slice of virtual time.
	rec = do(h, http.MethodGet, "/v1/trace?from=7200&to=14400", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("windowed GET = %d: %s", rec.Code, rec.Body)
	}
	var win struct {
		From   int64         `json:"from"`
		To     int64         `json:"to"`
		Events []trace.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &win); err != nil {
		t.Fatal(err)
	}
	if win.From != 7200 || win.To != 14400 {
		t.Fatalf("window echoed as [%d, %d)", win.From, win.To)
	}
	if len(win.Events) == 0 || len(win.Events) >= resp.Count {
		t.Fatalf("window holds %d of %d events, want a proper slice", len(win.Events), resp.Count)
	}
	for _, ev := range win.Events {
		if ev.Now < 7200 || ev.Now >= 14400 {
			t.Fatalf("event at t=%d outside the [7200, 14400) window", ev.Now)
		}
	}

	// An empty window is an empty list, not null.
	rec = do(h, http.MethodGet, "/v1/trace?from=1&to=2", "")
	if !strings.Contains(rec.Body.String(), `"events": []`) {
		t.Fatalf("empty window should render as []:\n%s", rec.Body)
	}

	// Endpoint hygiene: bad bounds and wrong methods fail loudly.
	if rec := do(h, http.MethodGet, "/v1/trace?from=yesterday", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad from = %d, want 400", rec.Code)
	}
	if rec := do(h, http.MethodPost, "/v1/trace", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/trace = %d, want 405", rec.Code)
	}
}

// TestTraceEventWireSchema: events on the endpoint marshal with the
// JSONL wire names (Event.MarshalJSON), not Go field names.
func TestTraceEventWireSchema(t *testing.T) {
	s := testTraceServer(t)
	driveToDone(t, s)
	rec := do(s.Handler(), http.MethodGet, "/v1/trace", "")
	body := rec.Body.String()
	for _, want := range []string{`"now":`, `"type":`, `"job":`} {
		if !strings.Contains(body, want) {
			t.Fatalf("endpoint payload missing wire key %s:\n%.400s", want, body)
		}
	}
	if strings.Contains(body, `"Now":`) || strings.Contains(body, `"LocalMiB":`) {
		t.Fatalf("endpoint payload leaks Go field names:\n%.400s", body)
	}
}
