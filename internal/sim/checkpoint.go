package sim

import (
	"fmt"

	"dismem/internal/cluster"
	"dismem/internal/des"
	"dismem/internal/memmodel"
	"dismem/internal/metrics"
	"dismem/internal/scenario"
	"dismem/internal/sched"
	"dismem/internal/source"
	"dismem/internal/stats"
	"dismem/internal/trace"
	"dismem/internal/workload"
)

// This file implements checkpoint/fork of a live engine. A Checkpoint
// is a passive deep snapshot taken between events: machine, recorder,
// queue, running set, source cursor, failure RNG and the DES queue as
// event records (des.Snapshot — the closures themselves are never
// copied; Resume rebuilds them from their kind tags). Resume clones
// the snapshot again into a fresh engine, so one checkpoint can seed
// any number of divergent futures. A future resumed with no overrides
// is bit-identical to running the original on: same events in the same
// order, same report, same records (DESIGN.md §8).

// Checkpoint is a frozen engine state. It is immutable once taken:
// Resume deep-copies everything it hands to the new engine, and the
// checkpointed source cursor is forked, never advanced.
type Checkpoint struct {
	cfg     Config // Observer, RecordSink, SeriesSink and TraceSink cleared (live callbacks/writers)
	bounded bool   // recorder was in bounded (non-retaining) mode

	now    int64
	fired  uint64
	events []des.EventRecord

	machine *cluster.Machine
	rec     *metrics.Recorder

	queue    []*workload.Job
	running  map[int]runningSnap
	runIDs   []int
	endOrder []int

	src         source.Source // frozen fork of the live cursor; nil when exhausted
	srcDone     bool
	srcErr      error
	lastArrival int64

	failRNG    *stats.RNG
	terminated int
	jobsLeft   int
	failures   int
	failKills  int
	restarts   map[int]int

	dilScale     float64
	scenApplied  int
	scenarioDown map[cluster.NodeID]bool
}

// runningSnap is the serializable share of one runningState; the
// allocation is recovered from the cloned machine and the end event
// from the DES records.
type runningSnap struct {
	job          *workload.Job
	start, limit int64
	dilAtStart   float64
	workLeft     float64
	rate         float64
	lastUpdate   int64
}

// Now returns the virtual time the checkpoint was taken at.
func (cp *Checkpoint) Now() int64 { return cp.now }

// Checkpoint captures the engine's complete state at the current event
// boundary. The engine must be started, not finished and not stopped;
// with a streaming source, the source must implement source.Forkable
// (SWF streams do not — materialise the trace to checkpoint it).
// Checkpointing does not disturb the engine: it can keep running, and
// its future is unaffected by any forks taken from the checkpoint.
//
// The pending periodic sampling tick IS captured (it is an ordinary
// tagged event; only the consumers — observer, series sink, trace
// sink — are live and cleared). A future resumed with its own Observer or
// SeriesSink therefore continues the checkpointed tick chain in phase:
// its sample instants, and their order relative to same-instant
// events, are identical to the uninterrupted run's (DESIGN.md §11).
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	if !e.started {
		return nil, fmt.Errorf("sim: checkpoint of an unstarted engine")
	}
	if e.finished {
		return nil, fmt.Errorf("sim: checkpoint of a finished engine")
	}
	if e.sim.Stopped() {
		return nil, fmt.Errorf("sim: checkpoint of a stopped engine")
	}
	var src source.Source
	if !e.srcDone {
		f, ok := e.src.(source.Forkable)
		if !ok {
			return nil, fmt.Errorf("sim: source %T does not support forking (see source.Forkable)", e.src)
		}
		if src = f.Fork(); src == nil {
			return nil, fmt.Errorf("sim: source %T declined to fork", e.src)
		}
	}
	events, err := e.sim.Snapshot()
	if err != nil {
		return nil, err
	}

	cp := &Checkpoint{
		cfg:          e.cfg,
		bounded:      e.rec.Bounded(),
		now:          int64(e.sim.Now()),
		fired:        e.sim.Fired(),
		events:       events,
		machine:      e.m.Clone(),
		rec:          e.rec.Clone(),
		queue:        append([]*workload.Job(nil), e.queue...),
		running:      make(map[int]runningSnap, len(e.running)),
		runIDs:       append([]int(nil), e.runIDs...),
		endOrder:     append([]int(nil), e.endOrder...),
		src:          src,
		srcDone:      e.srcDone,
		srcErr:       e.srcErr,
		lastArrival:  e.lastArrival,
		terminated:   e.terminated,
		jobsLeft:     e.jobsLeft,
		failures:     e.failures,
		failKills:    e.failKills,
		restarts:     make(map[int]int, len(e.restarts)),
		dilScale:     e.dilScale,
		scenApplied:  e.scenApplied,
		scenarioDown: make(map[cluster.NodeID]bool, len(e.scenarioDown)),
	}
	cp.cfg.Observer = nil
	cp.cfg.RecordSink = nil
	cp.cfg.SeriesSink = nil
	cp.cfg.TraceSink = nil
	if e.failRNG != nil {
		cp.failRNG = e.failRNG.Clone()
	}
	for id, rs := range e.running {
		cp.running[id] = runningSnap{
			job: rs.job, start: rs.start, limit: rs.limit,
			dilAtStart: rs.dilAtStart, workLeft: rs.workLeft,
			rate: rs.rate, lastUpdate: rs.lastUpdate,
		}
	}
	for id, n := range e.restarts {
		cp.restarts[id] = n
	}
	for id, held := range e.scenarioDown {
		cp.scenarioDown[id] = held
	}
	return cp, nil
}

// Overrides adjusts a resumed future relative to the checkpointed run.
// The zero value resumes the identical future: bit-identical to the
// original run from the checkpoint on.
type Overrides struct {
	// Scheduler replaces the scheduler for the future (nil reuses the
	// checkpointed instance — fine for sequential use, but concurrent
	// forks should each get a fresh scheduler, since schedulers carry
	// internal caches).
	Scheduler sched.Scheduler
	// Scenario replaces the REMAINING intervention timeline: pending
	// interventions from the checkpointed scenario are discarded and
	// the new scenario's events are scheduled instead (events dated
	// before the checkpoint are skipped — this timeline's past already
	// happened). Pass an empty scenario to cancel all pending
	// interventions; nil keeps the checkpointed timeline. The
	// replacement must not carry arrival modulation: the arrival
	// process was warped before the run started and cannot be rewarped
	// mid-flight.
	Scenario *scenario.Scenario
	// ReseedFailures redraws the future failure stream from
	// FailureSeed: the pending next-failure event is discarded and
	// re-armed from the new stream (repairs of already-failed nodes
	// still complete on schedule). Requires failure injection to have
	// been configured.
	ReseedFailures bool
	FailureSeed    uint64
	// Observer receives the future's lifecycle callbacks. When the
	// checkpointed run was sampling, the restored tick chain continues
	// in phase — the future's sample instants are identical to the
	// uninterrupted run's. A checkpoint taken without sampling starts a
	// fresh chain at the resume instant when the future enables it.
	Observer Observer
	// SampleEvery overrides the sampling period in simulated seconds
	// (0 keeps the checkpointed period). A period different from the
	// checkpointed one discards the restored tick and restarts the
	// chain from the resume instant at the new period.
	SampleEvery int64
	// RecordSink attaches a record sink for the future's records. When
	// nil and the checkpointed run recorded boundedly, the future uses
	// metrics.Discard: records the prefix already streamed to the
	// parent's sink are never re-emitted, and a bounded run cannot
	// reconstruct them.
	RecordSink metrics.Sink
	// SeriesSink streams the future's utilization series (nil = none;
	// parent sinks are never carried over). A resumed run's series is
	// the uninterrupted run's series minus the rows already streamed to
	// the parent's sink: concatenating the two files reproduces the
	// clean run's series byte for byte (JSONL; a CSV resume re-emits
	// the header).
	SeriesSink metrics.SeriesSink
	// TraceSink streams the future's lifecycle trace events (nil =
	// none; parent sinks are never carried over). Like the series, a
	// resumed run's JSONL trace is the clean run's trace minus the
	// events already streamed to the parent's sink: concatenating the
	// two files reproduces the clean run's trace byte for byte.
	TraceSink trace.TraceSink
}

// Resume builds a fresh engine from a checkpoint, applying the
// overrides. The checkpoint is not consumed: resume from it as many
// times as needed, including concurrently (each future gets fully
// independent state; see Overrides.Scheduler for the one shared piece).
func Resume(cp *Checkpoint, o Overrides) (*Engine, error) {
	cfg := cp.cfg
	if o.Scheduler != nil {
		cfg.Scheduler = o.Scheduler
	}
	replaceScenario := o.Scenario != nil
	if replaceScenario {
		if err := o.Scenario.Validate(); err != nil {
			return nil, err
		}
		if o.Scenario.Modulates() {
			return nil, fmt.Errorf("sim: fork scenario must not modulate arrivals (the arrival process is warped before the run starts)")
		}
		cfg.Scenario = o.Scenario
	}
	if o.ReseedFailures && cfg.Failures == nil {
		return nil, fmt.Errorf("sim: cannot reseed failures: checkpointed run has no failure injection")
	}
	cfg.Observer = o.Observer
	cfg.SeriesSink = o.SeriesSink
	cfg.TraceSink = o.TraceSink
	// A changed sampling period cannot continue the checkpointed tick
	// chain: the restored tick (scheduled one old period after the last
	// fire) is dropped and a fresh chain starts at the resume instant.
	periodChanged := o.SampleEvery > 0 && o.SampleEvery != cp.cfg.SampleEvery
	if o.SampleEvery > 0 {
		cfg.SampleEvery = o.SampleEvery
	}

	rec := cp.rec.Clone()
	sink := o.RecordSink
	if sink == nil && cp.bounded {
		sink = metrics.Discard
	}
	if sink != nil {
		rec.SetSink(sink)
	}
	cfg.RecordSink = sink

	e := &Engine{
		cfg:          cfg,
		m:            cp.machine.Clone(),
		rec:          rec,
		obs:          cfg.Observer,
		series:       cfg.SeriesSink,
		trace:        cfg.TraceSink,
		started:      true,
		srcDone:      cp.srcDone,
		srcErr:       cp.srcErr,
		lastArrival:  cp.lastArrival,
		queue:        append([]*workload.Job(nil), cp.queue...),
		running:      make(map[int]*runningState, len(cp.running)),
		runIDs:       append([]int(nil), cp.runIDs...),
		endOrder:     append([]int(nil), cp.endOrder...),
		reDilate:     memmodel.ContentionSensitive(cfg.Model),
		terminated:   cp.terminated,
		jobsLeft:     cp.jobsLeft,
		failures:     cp.failures,
		failKills:    cp.failKills,
		restarts:     make(map[int]int, len(cp.restarts)),
		dilScale:     cp.dilScale,
		scenApplied:  cp.scenApplied,
		scenarioDown: make(map[cluster.NodeID]bool, len(cp.scenarioDown)),
	}
	e.bindHandlers()
	if cfg.Scenario != nil {
		// scenEvs is indexed by intervention index (the evScenario
		// payload); slots are filled from the restored records or the
		// replacement timeline below.
		e.scenEvs = make([]*des.Event, len(cfg.Scenario.Events))
	}
	for id, n := range cp.restarts {
		e.restarts[id] = n
	}
	for id, held := range cp.scenarioDown {
		e.scenarioDown[id] = held
	}
	if cp.failRNG != nil {
		e.failRNG = cp.failRNG.Clone()
	}
	if cp.src != nil {
		f, ok := cp.src.(source.Forkable)
		if !ok {
			return nil, fmt.Errorf("sim: checkpointed source %T lost forkability", cp.src)
		}
		if e.src = f.Fork(); e.src == nil {
			return nil, fmt.Errorf("sim: checkpointed source %T declined to fork", cp.src)
		}
	} else {
		e.src = source.FromJobs(nil)
	}
	for id, rs := range cp.running {
		alloc, ok := e.m.AllocationOf(id)
		if !ok {
			return nil, fmt.Errorf("sim: checkpoint running job %d has no allocation on the cloned machine", id)
		}
		e.running[id] = &runningState{
			job: rs.job, alloc: alloc, start: rs.start, limit: rs.limit,
			dilAtStart: rs.dilAtStart, workLeft: rs.workLeft,
			rate: rs.rate, lastUpdate: rs.lastUpdate,
		}
	}

	// Rebuild the DES queue from the records: each kind maps back to
	// the engine's per-family handler — the record's payload travels in
	// des.Event.Data, exactly as a live-scheduled event's would. Records
	// an override invalidates are dropped here (nil handler); a kind
	// this switch does not know is a maintenance bug (a new event family
	// without a Resume arm) and must fail the restore, not silently
	// drop the event and break the bit-identical contract.
	var rebuildErr error
	sim2, evs, err := des.Restore(des.Time(cp.now), cp.fired, cp.events, func(r des.EventRecord) des.Handler {
		switch r.Kind {
		case evArrival:
			return e.hArrival
		case evPass:
			return e.hPass
		case evEnd:
			return e.hEnd
		case evFailure:
			if o.ReseedFailures {
				return nil // re-armed below from the new stream
			}
			return e.hFailure
		case evRepair:
			return e.hRepair
		case evScenario:
			if replaceScenario {
				return nil // the new timeline is scheduled below
			}
			return e.hScenario
		case evSample:
			if !e.sampling() || periodChanged {
				return nil // no consumer, or a fresh chain is armed below
			}
			return e.hSample
		default:
			rebuildErr = fmt.Errorf("sim: checkpoint holds event of unknown kind %d (Resume not updated for a new event family?)", r.Kind)
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	if rebuildErr != nil {
		return nil, rebuildErr
	}
	e.sim = sim2

	// Rewire the event handles the engine tracks.
	for i, r := range cp.events {
		ev := evs[i]
		if ev == nil {
			continue
		}
		switch r.Kind {
		case evEnd:
			p := r.Data.(endPayload)
			rs, ok := e.running[p.ID]
			if !ok {
				return nil, fmt.Errorf("sim: checkpoint end event for job %d not in running set", p.ID)
			}
			rs.endEv = ev
		case evFailure:
			e.failEv = ev
		case evScenario:
			e.scenEvs[r.Data.(int)] = ev
		case evPass:
			e.passQueue = true
		case evSample:
			e.sampleEv = ev
		}
	}
	for id, rs := range e.running {
		if rs.endEv == nil {
			return nil, fmt.Errorf("sim: checkpoint running job %d has no end event", id)
		}
	}

	if e.outstanding() {
		// Post-restore arming, in a fixed order for determinism: the
		// replacement scenario's future events, a reseeded failure
		// stream, then fresh sampling ticks.
		if replaceScenario {
			for i := range cfg.Scenario.Events {
				ev := cfg.Scenario.Events[i]
				if ev.At < cp.now {
					continue // this timeline's past already happened
				}
				e.scenEvs[i] = e.sim.ScheduleKind(des.Time(ev.At), evScenario, i, e.hScenario)
			}
		}
		if o.ReseedFailures {
			e.failRNG = stats.NewRNG(o.FailureSeed)
			e.scheduleNextFailure()
		}
		if e.sampling() && e.sampleEv == nil {
			// The checkpointed run was not sampling (or the period
			// changed): start a fresh tick chain at the resume instant.
			// A restored tick takes precedence — it keeps the resumed
			// run's sample instants identical to the uninterrupted
			// run's.
			e.scheduleNextSample()
		}
	}
	return e, nil
}
