package sim

import (
	"strings"
	"testing"

	"dismem/internal/des"
	"dismem/internal/metrics"
	"dismem/internal/scenario"
	"dismem/internal/source"
	"dismem/internal/workload"
)

// forkCfg is the adversarial full-stack configuration for fork tests:
// contention-sensitive model (re-dilation), pool spills, random
// failures and a scenario timeline all at once.
func forkCfg() Config {
	cfg := streamCfg()
	cfg.CheckInvariants = true
	cfg.Failures = &FailureConfig{MTBFPerNodeSec: 50000, RepairSec: 4000, Seed: 11}
	cfg.Scenario = mustScenario("at=25000 resize pool=0 cap=2000; at=30000 down node=0; at=36000 up node=0; at=40000 beta scale=2; at=60000 resize pool=0 cap=4000")
	return cfg
}

func mustScenario(spec string) *scenario.Scenario {
	sc, err := scenario.Parse(spec)
	if err != nil {
		panic(err)
	}
	return sc
}

// finish runs the engine to completion and returns the result.
func finish(t *testing.T, e *Engine) *Result {
	t.Helper()
	e.RunAll()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameResult compares two results field by field: report, event count,
// scenario interventions and per-job records.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if *a.Report != *b.Report {
		t.Fatalf("%s: reports differ:\n%+v\n%+v", label, a.Report, b.Report)
	}
	if a.Events != b.Events {
		t.Fatalf("%s: events %d != %d", label, a.Events, b.Events)
	}
	if a.ScenarioEvents != b.ScenarioEvents {
		t.Fatalf("%s: scenario events %d != %d", label, a.ScenarioEvents, b.ScenarioEvents)
	}
	ra, rb := a.Recorder.Records(), b.Recorder.Records()
	if len(ra) != len(rb) {
		t.Fatalf("%s: %d records != %d", label, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: record %d differs:\n%+v\n%+v", label, i, ra[i], rb[i])
		}
	}
	fa, fb := a.Recorder.Fairness(), b.Recorder.Fairness()
	if fa.JainWait != fb.JainWait {
		t.Fatalf("%s: Jain(wait) %v != %v", label, fa.JainWait, fb.JainWait)
	}
}

// TestForkBitIdentical is the golden fork-determinism test: run to T,
// checkpoint, fork with no overrides — the fork's completion must be
// bit-identical to a from-scratch run (events, report, records), and
// the parent must be undisturbed by having been checkpointed.
func TestForkBitIdentical(t *testing.T) {
	w := testWorkload(250, 3)

	fresh := runSlice(t, forkCfg(), w)

	for _, at := range []int64{1, 20000, 45000} {
		parent, err := New(forkCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := parent.Start(w); err != nil {
			t.Fatal(err)
		}
		parent.RunUntil(at)
		cp, err := parent.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint at %d: %v", at, err)
		}
		if cp.Now() != at {
			t.Fatalf("checkpoint time %d, want %d", cp.Now(), at)
		}

		fork, err := Resume(cp, Overrides{})
		if err != nil {
			t.Fatalf("resume at %d: %v", at, err)
		}
		sameResult(t, "fork vs fresh", fresh, finish(t, fork))
		sameResult(t, "parent vs fresh", fresh, finish(t, parent))
	}
}

// TestForkMidStepBitIdentical checkpoints between single Steps — in the
// middle of an instant's event cascade — where pending pass events and
// same-time arrivals are in flight.
func TestForkMidStepBitIdentical(t *testing.T) {
	w := testWorkload(120, 5)
	fresh := runSlice(t, forkCfg(), w)

	parent, err := New(forkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Start(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		if !parent.Step() {
			t.Fatal("engine drained before 37 steps")
		}
	}
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := Resume(cp, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "mid-step fork vs fresh", fresh, finish(t, fork))
}

// TestForkStreamingSource forks a run fed by a generator stream: the
// source cursor must fork with the engine.
func TestForkStreamingSource(t *testing.T) {
	cfg := streamCfg()
	cfg.CheckInvariants = true
	newSrc := func() source.Source {
		st, err := workload.NewGenStream(testGenConfig(150, 9))
		if err != nil {
			t.Fatal(err)
		}
		return source.Gen(st, 150, 0)
	}

	freshEng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := freshEng.StartSource(newSrc()); err != nil {
		t.Fatal(err)
	}
	fresh := finish(t, freshEng)

	parent, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.StartSource(newSrc()); err != nil {
		t.Fatal(err)
	}
	parent.RunUntil(15000)
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := Resume(cp, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "streamed fork vs fresh", fresh, finish(t, fork))
	sameResult(t, "streamed parent vs fresh", fresh, finish(t, parent))
}

// TestForkBounded forks a bounded-recording run; the fork (with no sink
// of its own) must produce the same report as a fresh bounded run.
func TestForkBounded(t *testing.T) {
	w := testWorkload(200, 7)
	cfg := forkCfg()
	cfg.RecordSink = metrics.Discard

	fresh := runSlice(t, cfg, w)

	parent, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Start(w); err != nil {
		t.Fatal(err)
	}
	parent.RunUntil(30000)
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := Resume(cp, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	res := finish(t, fork)
	if *res.Report != *fresh.Report {
		t.Fatalf("bounded fork report differs:\n%+v\n%+v", res.Report, fresh.Report)
	}
	if res.Recorder.Records() != nil {
		t.Fatal("bounded fork retained records")
	}
}

// TestForkTwiceDivergence forks one checkpoint under two failure seeds:
// the futures must diverge from each other, deterministically per seed.
func TestForkTwiceDivergence(t *testing.T) {
	w := testWorkload(250, 3)
	parent, err := New(forkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Start(w); err != nil {
		t.Fatal(err)
	}
	parent.RunUntil(20000)
	cp, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	results := map[uint64]*Result{}
	for _, seed := range []uint64{101, 202} {
		a, err := Resume(cp, Overrides{ReseedFailures: true, FailureSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Resume(cp, Overrides{ReseedFailures: true, FailureSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := finish(t, a), finish(t, b)
		sameResult(t, "same-seed forks", ra, rb)
		results[seed] = ra
	}
	if *results[101].Report == *results[202].Report {
		t.Fatal("forks with different failure seeds produced identical reports")
	}
}

// TestForkScenarioReplacement replaces the remaining timeline at fork:
// pending original interventions must not fire, the new ones must, and
// the future stays deterministic.
func TestForkScenarioReplacement(t *testing.T) {
	w := testWorkload(250, 3)
	mk := func() *Engine {
		e, err := New(forkCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(w); err != nil {
			t.Fatal(err)
		}
		e.RunUntil(27000) // one intervention (resize@25000) already applied
		return e
	}
	cp, err := mk().Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Empty replacement: every pending intervention is cancelled.
	none, err := Resume(cp, Overrides{Scenario: &scenario.Scenario{}})
	if err != nil {
		t.Fatal(err)
	}
	resNone := finish(t, none)
	if resNone.ScenarioEvents != 1 {
		t.Fatalf("empty-replacement fork applied %d interventions, want 1 (the prefix's)", resNone.ScenarioEvents)
	}

	// Real replacement: a different outage tail; events dated before
	// the checkpoint are skipped.
	tail := mustScenario("at=1000 beta scale=3; at=35000 down node=1; at=42000 up node=1")
	a, err := Resume(cp, Overrides{Scenario: tail})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resume(cp, Overrides{Scenario: tail})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := finish(t, a), finish(t, b)
	sameResult(t, "scenario-tail forks", ra, rb)
	if ra.ScenarioEvents != 3 { // prefix resize + down + up (beta@1000 skipped)
		t.Fatalf("tail fork applied %d interventions, want 3", ra.ScenarioEvents)
	}

	// A modulating replacement is rejected: arrivals were warped before
	// the run started.
	if _, err := Resume(cp, Overrides{Scenario: mustScenario("from=0 until=10 rate=2 surge")}); err == nil ||
		!strings.Contains(err.Error(), "modulate") {
		t.Fatalf("modulating fork scenario accepted: %v", err)
	}
}

// TestCheckpointErrors pins the refusal cases.
func TestCheckpointErrors(t *testing.T) {
	w := testWorkload(50, 1)

	e, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint of unstarted engine succeeded")
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(5000)
	e.Stop()
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint of stopped engine succeeded")
	}

	e2, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(w); err != nil {
		t.Fatal(err)
	}
	e2.RunAll()
	if _, err := e2.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Checkpoint(); err == nil {
		t.Fatal("checkpoint of finished engine succeeded")
	}

	// An unforkable source (SWF stream over a reader) must refuse with
	// a pointed error.
	e3, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	swf := source.SWF(strings.NewReader(
		"1 10 0 3600 1 -1 500 1 7200 -1 1 1 1 -1 -1 -1 -1 -1\n"+
			"2 99999999 0 3600 1 -1 500 1 7200 -1 1 1 1 -1 -1 -1 -1 -1\n"),
		workload.SWFReadOptions{})
	if err := e3.StartSource(swf); err != nil {
		t.Fatal(err)
	}
	e3.RunUntil(20)
	if _, err := e3.Checkpoint(); err == nil || !strings.Contains(err.Error(), "fork") {
		t.Fatalf("checkpoint of SWF stream: %v, want forkability error", err)
	}

	// Reseeding failures without failure injection configured.
	e4, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e4.Start(w); err != nil {
		t.Fatal(err)
	}
	e4.RunUntil(5000)
	cp, err := e4.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cp, Overrides{ReseedFailures: true, FailureSeed: 1}); err == nil {
		t.Fatal("reseed without failure config succeeded")
	}
}

// TestDoneReconciliation pins the satellite bugfix: Done must never
// report true while the source still has arrivals to deliver, even if
// the DES queue is (wrongly) empty — the hazard a restore bug would
// create.
func TestDoneReconciliation(t *testing.T) {
	w := testWorkload(20, 1)
	e, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if !e.Done() {
		t.Fatal("drained engine not done")
	}
	// Simulate the inconsistent state: queue empty but the source
	// claims more arrivals. Done must side with the source.
	e.srcDone = false
	if e.Done() {
		t.Fatal("Done() true while the source still has arrivals")
	}
	// Finish must refuse the same state instead of reporting a silently
	// truncated run (Run's path does not consult Done).
	if _, err := e.Finish(); err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("Finish on undelivered-arrivals state: %v, want wiring-bug error", err)
	}
	e.srcDone = true
	if !e.Done() {
		t.Fatal("reconciled engine not done")
	}
}

// TestResumeRejectsUnknownEventKind pins that a checkpoint holding an
// event kind Resume does not know fails the restore instead of
// silently dropping the event.
func TestResumeRejectsUnknownEventKind(t *testing.T) {
	w := testWorkload(30, 1)
	e, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(5000)
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.events = append(cp.events, des.EventRecord{Time: des.Time(cp.now + 10), Kind: 999})
	if _, err := Resume(cp, Overrides{}); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("Resume with unknown event kind: %v, want error", err)
	}
}
