package sim

import (
	"testing"

	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

func TestPassCoalescing(t *testing.T) {
	// Many arrivals at the same instant must trigger one scheduling
	// pass, not one per arrival: with two free nodes and four
	// same-second 1-node jobs, the first pass starts exactly two.
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()},
		&workload.Job{ID: 1, Submit: 10, Nodes: 1, MemPerNode: 1, Estimate: 100, BaseRuntime: 100},
		&workload.Job{ID: 2, Submit: 10, Nodes: 1, MemPerNode: 1, Estimate: 100, BaseRuntime: 100},
		&workload.Job{ID: 3, Submit: 10, Nodes: 1, MemPerNode: 1, Estimate: 100, BaseRuntime: 100},
		&workload.Job{ID: 4, Submit: 10, Nodes: 1, MemPerNode: 1, Estimate: 100, BaseRuntime: 100},
	)
	starts := map[int64]int{}
	for _, r := range res.Recorder.Records() {
		starts[r.Start]++
	}
	if starts[10] != 2 || starts[110] != 2 {
		t.Fatalf("starts by time = %v, want 2@10 and 2@110", starts)
	}
}

func TestNoReDilationUnderStaticModel(t *testing.T) {
	// Contention-insensitive models must not trigger the re-dilation
	// machinery: a spilling job's end time is fixed at start and the
	// event count matches the minimal arrival+pass+end pattern.
	res := run(t, Config{
		Machine:   tinyMachine(4000, 1), // tight fabric, but Linear ignores it
		Model:     memmodel.Linear{Beta: 1},
		Scheduler: easySpill(), ExtendLimit: true,
	},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 2000, Estimate: 1000, BaseRuntime: 100},
		&workload.Job{ID: 2, Submit: 0, Nodes: 1, MemPerNode: 2000, Estimate: 1000, BaseRuntime: 100},
	)
	r1, r2 := record(t, res, 1), record(t, res, 2)
	// Both f=0.5 → dilation 1.5 → end at 150, regardless of the other
	// job's presence (Linear has no congestion term).
	if r1.End != 150 || r2.End != 150 {
		t.Fatalf("ends = %d, %d; want 150, 150", r1.End, r2.End)
	}
}

func TestZeroBetaModelBehavesLikeLocal(t *testing.T) {
	// β=0 makes remote memory free: spill placements must not dilate
	// and nothing should be killed relative to plain local runs.
	res := run(t, Config{
		Machine: tinyMachine(4000, 10), Model: memmodel.Linear{Beta: 0},
		Scheduler: easySpill(),
	},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 2000, Estimate: 200, BaseRuntime: 100},
	)
	r := record(t, res, 1)
	if r.End != 100 || r.Dilation != 1 || r.Killed {
		t.Fatalf("record = %+v, want undilated completion at 100", r)
	}
	if r.RemoteMiB != 1000 {
		t.Fatalf("remote = %d, want 1000 (placement still spills)", r.RemoteMiB)
	}
}

func TestSameSecondFinishAndArrival(t *testing.T) {
	// A job finishing at the exact second another arrives: the arrival
	// must be able to use the freed node in the same instant.
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()},
		&workload.Job{ID: 1, Submit: 0, Nodes: 2, MemPerNode: 1, Estimate: 100, BaseRuntime: 50},
		&workload.Job{ID: 2, Submit: 50, Nodes: 2, MemPerNode: 1, Estimate: 100, BaseRuntime: 50},
	)
	r2 := record(t, res, 2)
	if r2.Start != 50 {
		t.Fatalf("job2 start = %d, want 50 (same-instant handoff)", r2.Start)
	}
}
