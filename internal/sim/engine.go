// Package sim wires workload, scheduler, machine, memory model and
// metrics into a discrete-event simulation of a batch-scheduled HPC
// system with disaggregated memory.
//
// The engine owns job lifecycle: arrival → queue → dispatch → finish or
// kill-at-limit. Placements that borrow pool memory dilate the job's
// runtime according to the memory model; under contention-sensitive
// models the engine re-dilates running jobs whenever fabric congestion
// changes (piecewise-constant rate integration of remaining work).
package sim

import (
	"fmt"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/des"
	"dismem/internal/memmodel"
	"dismem/internal/metrics"
	"dismem/internal/scenario"
	"dismem/internal/sched"
	"dismem/internal/source"
	"dismem/internal/stats"
	"dismem/internal/trace"
	"dismem/internal/workload"
)

// Config assembles one simulation run.
type Config struct {
	Machine cluster.Config
	Model   memmodel.Model
	// Scheduler decides dispatch; see sched.Batch and core.MemAware.
	Scheduler sched.Scheduler
	// ExtendLimit scales each job's kill limit by its predicted
	// dilation at start: the system slowed the job down, so it extends
	// the walltime accordingly (and planners reserve the dilated time).
	// When false, jobs are killed strictly at the user estimate even if
	// dilation pushed them past it.
	ExtendLimit bool
	// CheckInvariants runs Machine.CheckInvariants after every state
	// change; O(machine) per event, for tests.
	CheckInvariants bool
	// Failures optionally injects node failures (nil = reliable
	// machine).
	Failures *FailureConfig
	// Scenario optionally perturbs the run with a deterministic
	// intervention timeline (outages, pool resizes, penalty shifts,
	// growth, arrival modulation); see package scenario. Nil and the
	// empty scenario both leave the run bit-identical to a
	// scenario-free one.
	Scenario *scenario.Scenario
	// Observer optionally receives lifecycle callbacks (nil = none).
	// Callbacks must be read-only w.r.t. engine state; see Observer.
	Observer Observer
	// SampleEvery is the period, in simulated seconds, of periodic
	// sampling ticks (0 = no sampling). Each tick delivers
	// Observer.OnSample and streams a metrics.SeriesPoint to
	// SeriesSink; ignored when neither consumer is configured.
	SampleEvery int64
	// RecordSink switches metrics to bounded recording: per-job records
	// stream to the sink (metrics.Discard to drop them) instead of
	// being retained, and the Report's percentile fields become
	// streaming estimates (exact up to stats.ExactQuantileBuffer
	// observations, P² beyond) — everything else stays exact. Nil (the default) keeps
	// the retain-all Recorder. The engine closes the sink at Finish.
	RecordSink metrics.Sink
	// SeriesSink streams one utilization SeriesPoint per sampling tick
	// (see SampleEvery): the time-series analogue of RecordSink. The
	// engine closes it exactly once, on every terminal path of the run.
	SeriesSink metrics.SeriesSink
	// TraceSink streams per-job lifecycle trace events — submit,
	// dispatch with placement detail, terminate/kill with reason,
	// failure restarts, scenario interventions — emitted synchronously
	// from the engine's handlers in deterministic firing order (see
	// package trace). Nil is zero-cost. Like SeriesSink, the engine
	// closes it exactly once, on every terminal path of the run.
	TraceSink trace.TraceSink
}

// FailureConfig models node failures as a Poisson process per node with
// deterministic repair: the standard exponential-MTBF model.
type FailureConfig struct {
	// MTBFPerNodeSec is one node's mean time between failures.
	MTBFPerNodeSec int64
	// RepairSec is how long a failed node stays down.
	RepairSec int64
	// Seed drives the failure stream independently of the workload.
	Seed uint64
	// MaxRestarts bounds how often one job is resubmitted after
	// failure kills before the site gives up on it (0 = default 3).
	// Without a bound, a wide long job on an unreliable machine can
	// be re-killed forever and the simulation never terminates.
	MaxRestarts int
}

// maxRestarts returns the effective resubmission bound.
func (f *FailureConfig) maxRestarts() int {
	if f.MaxRestarts <= 0 {
		return 3
	}
	return f.MaxRestarts
}

// Validate reports the first invalid parameter, or nil.
func (f *FailureConfig) Validate() error {
	if f.MTBFPerNodeSec <= 0 {
		return fmt.Errorf("sim: failure MTBF %d <= 0", f.MTBFPerNodeSec)
	}
	if f.RepairSec <= 0 {
		return fmt.Errorf("sim: failure repair time %d <= 0", f.RepairSec)
	}
	return nil
}

// Result bundles the outcome of a run.
type Result struct {
	Report *metrics.Report
	// Recorder retains per-job records for CDFs and custom reductions.
	Recorder *metrics.Recorder
	// Events is the number of DES events fired.
	Events uint64
	// Stopped marks a run halted early via Stop: the report covers only
	// the simulated prefix, and queued or running jobs at the stop
	// instant have no records.
	Stopped bool
	// ScenarioEvents counts the timed interventions that were applied
	// (0 without a scenario; pending interventions cancelled when the
	// last job finished are not counted).
	ScenarioEvents int
}

type runningState struct {
	job   *workload.Job
	alloc *cluster.Allocation
	start int64
	limit int64 // wall-clock seconds from start

	dilAtStart float64
	// workLeft is remaining base-runtime seconds; progress accrues at
	// rate 1/dilation per wall-clock second.
	workLeft   float64
	rate       float64
	lastUpdate int64
	endEv      *des.Event
	// endLive and endKill cache the two boxed endPayload values this job
	// can carry, so re-dilation reschedules reuse the box instead of
	// allocating a fresh one per scheduleEnd.
	endLive, endKill any
}

// Event kinds: every event the engine schedules carries one of these
// tags plus a serializable payload, so the DES queue can be
// checkpointed as records and the closures rebuilt on restore (see
// checkpoint.go). An untagged event would make the engine
// uncheckpointable — des.Simulator.Snapshot rejects it.
const (
	evArrival  des.Kind = iota + 1 // payload: *workload.Job
	evPass                         // payload: nil (coalesced scheduling pass)
	evEnd                          // payload: endPayload
	evFailure                      // payload: nil (next random failure)
	evRepair                       // payload: cluster.NodeID (victim under repair)
	evSample                       // payload: nil (periodic observer tick)
	evScenario                     // payload: int (index into cfg.Scenario.Events)
)

// endPayload identifies a scheduled job termination.
type endPayload struct {
	ID     int
	Killed bool
}

// Engine runs one simulation. Create with New, then either call Run
// once (fire-and-forget) or drive it incrementally: Start, any mix of
// Step / RunUntil / RunAll with live queries in between, then Finish.
type Engine struct {
	cfg Config
	sim *des.Simulator
	m   *cluster.Machine
	rec *metrics.Recorder
	obs Observer

	started  bool
	finished bool
	result   *Result

	// Arrival stream: the engine pulls one job ahead of the clock, so
	// exactly one pending-arrival event sits in the DES heap at a time
	// (heap residency O(running+1), not O(jobs)). src is exhausted when
	// srcDone; srcErr records a mid-stream production failure, surfaced
	// at Finish.
	src         source.Source
	srcDone     bool
	srcErr      error
	lastArrival int64

	queue   []*workload.Job
	running map[int]*runningState
	// runIDs and endOrder are the running job IDs under two
	// incrementally maintained orders: ascending job ID (deterministic
	// re-dilation order) and ascending (GuaranteedEnd, ID) (the order
	// reservation planners consume releases in). Both are updated by
	// binary-search insert/remove at dispatch and termination instead
	// of being re-derived per pass.
	runIDs    []int
	endOrder  []int
	reDilate  bool
	passQueue bool

	// Failure injection state.
	failRNG    *stats.RNG
	failEv     *des.Event
	terminated int // jobs that reached a terminal state
	jobsLeft   int // arrived jobs not yet terminated or rejected
	failures   int // node failures that occurred
	failKills  int // failure kills (each becomes a restart)
	restarts   map[int]int

	// Scenario state: pending intervention events (cancelled with the
	// last job), the remote-penalty scale the last beta event set, how
	// many interventions have been applied, and which nodes a scenario
	// outage holds down (planned outages take precedence over the
	// random-failure repair process).
	scenEvs      []*des.Event
	dilScale     float64
	scenApplied  int
	scenarioDown map[cluster.NodeID]bool

	sampleEv *des.Event

	// Series export state: the configured sink, its one-shot close
	// latch, and the close error (surfaced at Finish like the record
	// sink's).
	series       metrics.SeriesSink
	seriesClosed bool
	seriesErr    error

	// Trace export state, with the same close discipline as the series
	// sink's.
	trace       trace.TraceSink
	traceClosed bool
	traceErr    error

	// Per-family event handlers, bound once at construction. Events
	// carry their payload through des.Event.Data, so scheduling an event
	// reuses these bound method values instead of allocating a closure
	// per event (a bare method expression like e.onArrivalEvent allocates
	// at every use site).
	hArrival, hPass, hEnd, hSample, hFailure, hRepair, hScenario des.Handler

	// Scratch reused across events within one run (see DESIGN.md §13):
	// the two running-set snapshots handed to scheduler passes (valid
	// only during the pass), the pass context, the started-set of the
	// current dispatch round, the up-node candidate list of the failure
	// process, and the runningState free list.
	snapRun, snapEnd []sched.RunningJob
	passCtx          sched.Context
	startedScratch   map[int]bool
	upScratch        []cluster.NodeID
	rsPool           []*runningState
}

// bindHandlers creates the per-family handler values once per engine.
func (e *Engine) bindHandlers() {
	e.hArrival = e.onArrivalEvent
	e.hPass = e.onPassEvent
	e.hEnd = e.onEndEvent
	e.hSample = e.onSampleEvent
	e.hFailure = e.onFailureEvent
	e.hRepair = e.onRepairEvent
	e.hScenario = e.onScenarioEvent
	// The pass context's lazy end-order snapshot is bound here too: a
	// method value allocates, and ByEndFn is the same for every pass.
	e.passCtx.ByEndFn = e.endSnapshot
}

// New builds an engine; the machine is constructed from cfg.Machine.
func New(cfg Config) (*Engine, error) { return newEngine(cfg, nil) }

// NewReusing builds an engine for cfg that recycles a finished
// predecessor's run-independent state: the machine (reset in place when
// cfg.Machine matches its base configuration), the DES event free list,
// and every per-event scratch structure (snapshots, pass context,
// runningState pool, maps). The per-run observable state — recorder,
// scheduler, sinks, RNGs — is fresh, so a NewReusing engine produces
// byte-identical reports, records, series and traces to a New one with
// the same Config (the batch path's bit-identity contract, pinned by
// TestRunBatchMatchesLoopOfSimulate). prev becomes unusable; passing a
// nil or unfinished prev falls back to plain construction.
func NewReusing(cfg Config, prev *Engine) (*Engine, error) {
	if prev == nil || !prev.finished {
		return newEngine(cfg, nil)
	}
	return newEngine(cfg, prev)
}

// newEngine is the shared constructor behind New and NewReusing.
func newEngine(cfg Config, prev *Engine) (*Engine, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: nil scheduler")
	}
	if cfg.Failures != nil {
		if err := cfg.Failures.Validate(); err != nil {
			return nil, err
		}
	}
	var m *cluster.Machine
	if prev != nil && prev.m.BaseConfig() == cfg.Machine {
		// Reset is New by construction (same code path over the same
		// base configuration), so the reused machine is bit-identical
		// to a fresh one — with its node/pool/bitset backing arrays and
		// allocation free list retained.
		m = prev.m
		m.Reset()
	} else {
		var err error
		m, err = cluster.New(cfg.Machine)
		if err != nil {
			return nil, err
		}
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	rec := metrics.NewRecorder()
	if cfg.RecordSink != nil {
		rec = metrics.NewBoundedRecorder()
		rec.SetSink(cfg.RecordSink)
	}
	e := &Engine{
		cfg:          cfg,
		sim:          des.New(),
		m:            m,
		rec:          rec,
		obs:          cfg.Observer,
		series:       cfg.SeriesSink,
		trace:        cfg.TraceSink,
		running:      make(map[int]*runningState),
		reDilate:     memmodel.ContentionSensitive(cfg.Model),
		restarts:     make(map[int]int),
		dilScale:     1,
		scenarioDown: make(map[cluster.NodeID]bool),
	}
	if prev != nil {
		// Adopt the predecessor's recycled storage. Everything here is
		// either empty, cleared, or pooled zeroed values; nothing of the
		// previous run's observable state survives.
		e.sim = des.NewReusing(prev.sim)
		e.queue = prev.queue[:0]
		e.runIDs = prev.runIDs[:0]
		e.endOrder = prev.endOrder[:0]
		clear(prev.running)
		e.running = prev.running
		clear(prev.restarts)
		e.restarts = prev.restarts
		clear(prev.scenarioDown)
		e.scenarioDown = prev.scenarioDown
		e.snapRun = prev.snapRun[:0]
		e.snapEnd = prev.snapEnd[:0]
		e.passCtx = prev.passCtx
		e.passCtx.Reset()
		e.startedScratch = prev.startedScratch
		e.upScratch = prev.upScratch[:0]
		e.rsPool = prev.rsPool
		prev.rsPool = nil
	}
	e.bindHandlers()
	return e, nil
}

// Run simulates the workload to completion and returns the result. It
// errors if any feasible job failed to terminate (a scheduler bug).
func (e *Engine) Run(w *workload.Workload) (*Result, error) {
	if err := e.Start(w); err != nil {
		return nil, err
	}
	e.RunAll()
	return e.Finish()
}

// Start validates the workload and primes the event queue without
// firing any event: the clock stays at 0 until the first Step /
// RunUntil / RunAll. It may be called once per engine (StartSource is
// the streaming alternative). Internally the workload runs through the
// same pull-based arrival path as any other source, so slice and
// streamed replays of the same trace are bit-identical.
func (e *Engine) Start(w *workload.Workload) error {
	if e.cfg.Scenario.Modulates() {
		// Arrival modulation is a pre-run workload transform, not an
		// event stream: the caller's workload is cloned, never mutated.
		w = workload.ModulateArrivals(w, e.cfg.Scenario.Rate)
	}
	if err := w.Validate(); err != nil {
		// A failed start is a terminal path for this engine: close the
		// configured sinks now (idempotent) so their buffers are never
		// left unflushed behind an error return.
		_ = e.rec.CloseSink()
		_ = e.closeSeries()
		_ = e.closeTrace()
		return err
	}
	return e.startSource(source.FromWorkload(w))
}

// StartSource primes the engine to pull arrivals lazily from src: one
// pending-arrival event in the heap at a time, memory bounded by live
// state instead of trace length. Jobs are validated as they stream
// (structural validity plus nondecreasing submit order; the O(jobs)
// duplicate-ID check of Workload.Validate is deliberately skipped) and
// a production error surfaces from Finish after the in-flight work
// drains. Scenario arrival modulation composes lazily via
// source.Modulate. It may be called once per engine, instead of Start.
func (e *Engine) StartSource(src source.Source) error {
	if src == nil {
		_ = e.rec.CloseSink()
		_ = e.closeSeries()
		_ = e.closeTrace()
		return fmt.Errorf("sim: nil source")
	}
	if e.cfg.Scenario.Modulates() {
		src = source.Modulate(src, e.cfg.Scenario.Rate)
	}
	return e.startSource(src)
}

// startSource arms the event queue: the first pending arrival, then —
// only when there is any work — the failure stream, sampling ticks and
// scenario interventions, in that order (the scheduling order at one
// instant is part of observable behavior, see DESIGN.md §2).
func (e *Engine) startSource(src source.Source) error {
	if e.started {
		return fmt.Errorf("sim: engine already started")
	}
	e.started = true
	e.src = src
	e.scheduleNextArrival()
	hasWork := !e.srcDone
	if e.srcErr != nil {
		// The engine will never reach Finish; close (and flush) the
		// sinks on this terminal path too.
		_ = e.rec.CloseSink()
		_ = e.closeSeries()
		_ = e.closeTrace()
		return e.srcErr
	}
	if e.cfg.Failures != nil && hasWork {
		e.failRNG = stats.NewRNG(e.cfg.Failures.Seed)
		e.scheduleNextFailure()
	}
	if e.sampling() && hasWork {
		e.scheduleNextSample()
	}
	if e.cfg.Scenario != nil && hasWork {
		e.scenEvs = make([]*des.Event, len(e.cfg.Scenario.Events))
		for i := range e.cfg.Scenario.Events {
			ev := e.cfg.Scenario.Events[i]
			e.scenEvs[i] = e.sim.ScheduleKind(des.Time(ev.At), evScenario, i, e.hScenario)
		}
	}
	return nil
}

// onScenarioEvent fires intervention i of the configured scenario. Its
// scenEvs slot — indexed by the intervention's payload, not by arrival
// order — is cleared before applying, so jobDone's pending-intervention
// sweep can never Cancel a handle whose event already fired (and whose
// struct may since have been recycled for a live event).
func (e *Engine) onScenarioEvent(now des.Time, data any) {
	i := data.(int)
	e.scenEvs[i] = nil
	e.onScenario(int64(now), e.cfg.Scenario.Events[i])
}

// scheduleNextArrival pulls one job from the source and schedules its
// arrival. Arrival events are front-scheduled: at any instant they fire
// before every other event, in stream order — exactly the firing order
// the historical pre-schedule-everything design produced, which keeps
// streamed replays bit-identical to slice replays.
func (e *Engine) scheduleNextArrival() {
	job, ok := e.src.Next()
	if !ok {
		e.srcDone = true
		e.srcErr = e.src.Err()
		return
	}
	if err := source.Validate(job, e.lastArrival); err != nil {
		// A broken stream stops producing; in-flight work drains and
		// Finish reports the error.
		e.srcDone = true
		e.srcErr = err
		return
	}
	e.lastArrival = job.Submit
	e.sim.ScheduleFrontKind(des.Time(job.Submit), evArrival, job, e.hArrival)
}

// onArrivalEvent delivers one pulled job: count it as outstanding, pull
// the next arrival, then deliver this one.
func (e *Engine) onArrivalEvent(now des.Time, data any) {
	job := data.(*workload.Job)
	e.jobsLeft++
	e.scheduleNextArrival()
	e.onArrival(int64(now), job)
}

// outstanding reports whether any work remains: an arrived job not yet
// terminated, or arrivals the source has still to deliver.
func (e *Engine) outstanding() bool { return e.jobsLeft > 0 || !e.srcDone }

// Step fires the single earliest event. It returns false once the
// simulation is done (event queue drained or Stop called).
func (e *Engine) Step() bool { return e.sim.Step() }

// RunUntil fires every event scheduled at or before virtual time t and
// leaves the clock at exactly t, even when the simulation's last event
// is earlier (use the final job record or Report.MakespanSec, not Now,
// to recover the true end of a run). After Stop the clock stays at the
// stopping event.
func (e *Engine) RunUntil(t int64) { e.sim.Run(des.Time(t)) }

// RunAll fires events until the queue drains or Stop is called.
func (e *Engine) RunAll() { e.sim.RunAll() }

// Stop halts the event loop after the current event: a deliberate early
// exit, not an error. Finish then reports the simulated prefix with
// Result.Stopped set. Safe to call from Observer callbacks. After
// Finish, Stop is a no-op: the result is already built, and a late stop
// must not relabel a completed run as a stopped one.
func (e *Engine) Stop() {
	if e.finished {
		return
	}
	e.sim.Stop()
}

// Now returns the virtual clock in seconds since simulation start.
func (e *Engine) Now() int64 { return int64(e.sim.Now()) }

// Done reports whether the simulation will make no more progress: Stop
// was called, or the event queue is drained AND the engine's own
// outstanding-work accounting agrees — no arrived job unterminated and
// no arrivals left in the source. The second condition is not
// redundant: the queue alone is the DES view, while srcDone/jobsLeft
// are the streaming-source view, and Done must never report true while
// a source still has arrivals to deliver (an empty queue with
// outstanding work indicates a wiring bug — for example a restored
// checkpoint that lost its pending-arrival event — which Finish then
// reports instead of silently truncating the run).
func (e *Engine) Done() bool {
	return e.sim.Stopped() || (e.sim.Pending() == 0 && !e.outstanding())
}

// QueueDepth returns the number of jobs waiting to be dispatched.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// RunningCount returns the number of jobs currently holding resources.
func (e *Engine) RunningCount() int { return len(e.running) }

// Usage returns the machine occupancy snapshot; O(pools).
func (e *Engine) Usage() cluster.Usage { return e.m.Usage() }

// Events returns the number of DES events fired so far.
func (e *Engine) Events() uint64 { return e.sim.Fired() }

// Sample returns the full live-state snapshot observers receive,
// including the per-pool and per-rack breakdowns the labeled /metrics
// gauges read.
func (e *Engine) Sample() Sample {
	s := Sample{
		Now:        e.Now(),
		QueueDepth: len(e.queue),
		Running:    len(e.running),
		Done:       e.terminated,
		Events:     e.sim.Fired(),
		Usage:      e.m.Usage(),
	}
	if pools := e.m.Pools(); len(pools) > 0 {
		s.Pools = make([]metrics.PoolPoint, len(pools))
		for i, pl := range pools {
			s.Pools[i] = metrics.PoolPoint{
				ID:          int(pl.ID),
				UsedMiB:     pl.UsedMiB,
				CapacityMiB: pl.CapacityMiB,
				DemandGiBps: pl.DemandGiBps,
			}
		}
	}
	racks := e.m.Config().Racks
	s.RackFree = make([]int, racks)
	for r := 0; r < racks; r++ {
		s.RackFree[r] = e.m.RackFreeNodes(r)
	}
	return s
}

// Finish closes the metrics integration interval and builds the result.
// After a complete run it errors if any feasible job failed to
// terminate (a scheduler bug); after Stop it reports the prefix.
// Idempotent: repeated calls return the same result.
func (e *Engine) Finish() (*Result, error) {
	if e.finished {
		return e.result, nil
	}
	if !e.started {
		return nil, fmt.Errorf("sim: engine not started")
	}
	if e.srcErr != nil {
		// Flush what the drained in-flight work streamed before
		// surfacing the source failure (the close error, if any, is
		// secondary to the source error).
		_ = e.rec.CloseSink()
		_ = e.closeSeries()
		_ = e.closeTrace()
		return nil, fmt.Errorf("sim: workload source failed: %w", e.srcErr)
	}
	if !e.sim.Stopped() && !e.srcDone {
		// The event queue drained while the source still had arrivals
		// to deliver: an engine wiring bug (e.g. a restored checkpoint
		// that lost its pending-arrival event), never a legal end state
		// — refuse to report a silently truncated run (see Done).
		_ = e.rec.CloseSink()
		_ = e.closeSeries()
		_ = e.closeTrace()
		return nil, fmt.Errorf("sim: event queue drained at t=%d with undelivered source arrivals (engine wiring bug)", e.Now())
	}
	if !e.sim.Stopped() && (len(e.queue) != 0 || len(e.running) != 0) {
		_ = e.rec.CloseSink()
		_ = e.closeSeries()
		_ = e.closeTrace()
		return nil, fmt.Errorf("sim: %d queued and %d running jobs never terminated (scheduler %q)",
			len(e.queue), len(e.running), e.cfg.Scheduler.Name())
	}
	// Close the last integration interval. Normalize against the
	// machine's current config, which scenario growth or uniform pool
	// resizes may have changed since construction (identical to
	// cfg.Machine otherwise).
	e.rec.Observe(e.lastEventTime(), e.m.Usage())
	report := e.rec.Report(e.m.Config())
	report.NodeFailures = e.failures
	report.FailureKills = e.failKills
	if err := e.rec.CloseSink(); err != nil {
		_ = e.closeSeries()
		_ = e.closeTrace()
		return nil, fmt.Errorf("sim: closing record sink: %w", err)
	}
	if err := e.closeSeries(); err != nil {
		_ = e.closeTrace()
		return nil, fmt.Errorf("sim: closing series sink: %w", err)
	}
	if err := e.closeTrace(); err != nil {
		return nil, fmt.Errorf("sim: closing trace sink: %w", err)
	}
	e.finished = true
	e.result = &Result{
		Report:         report,
		Recorder:       e.rec,
		Events:         e.sim.Fired(),
		Stopped:        e.sim.Stopped(),
		ScenarioEvents: e.scenApplied,
	}
	return e.result, nil
}

func (e *Engine) lastEventTime() int64 { return int64(e.sim.Now()) }

// sampling reports whether the engine runs the periodic sampling tick
// chain: a period is configured and at least one consumer — observer
// or series sink — is attached.
func (e *Engine) sampling() bool {
	return e.cfg.SampleEvery > 0 && (e.obs != nil || e.series != nil)
}

// closeSeries closes the configured series sink exactly once (on
// whichever terminal path comes first), latching the close error for
// Finish to surface.
func (e *Engine) closeSeries() error {
	if e.series == nil {
		return nil
	}
	if !e.seriesClosed {
		e.seriesClosed = true
		e.seriesErr = e.series.Close()
	}
	return e.seriesErr
}

// closeTrace closes the configured trace sink exactly once, with the
// same latch discipline as closeSeries.
func (e *Engine) closeTrace() error {
	if e.trace == nil {
		return nil
	}
	if !e.traceClosed {
		e.traceClosed = true
		e.traceErr = e.trace.Close()
	}
	return e.traceErr
}

// scheduleNextSample arms the next periodic sampling tick one period
// ahead. The chain stops with the last outstanding job (jobDone
// cancels it) so trailing ticks cannot stretch the metrics integration
// window.
func (e *Engine) scheduleNextSample() {
	e.scheduleSampleAt(e.sim.Now() + des.Time(e.cfg.SampleEvery))
}

// scheduleSampleAt arms one sampling tick at an explicit instant; the
// handler it installs is exactly what Resume rebuilds for a restored
// evSample record, so a resumed run's tick chain continues the
// checkpointed one bit-identically.
func (e *Engine) scheduleSampleAt(at des.Time) {
	e.sampleEv = e.sim.ScheduleKind(at, evSample, nil, e.hSample)
}

// onSampleEvent fires one periodic sampling tick: deliver the sample to
// every attached consumer, then re-arm. It reads e.obs and e.series at
// fire time (the event carries no consumer), which is what lets Resume
// rebuild it from the bare evSample kind tag.
func (e *Engine) onSampleEvent(des.Time, any) {
	e.sampleEv = nil
	e.emitSample()
	e.scheduleNextSample()
}

// emitSample delivers one periodic sample to the observer and the
// series sink.
func (e *Engine) emitSample() {
	s := e.Sample()
	if e.obs != nil {
		e.obs.OnSample(s)
	}
	if e.series != nil {
		e.series.Add(e.seriesPoint(s))
	}
}

// seriesPoint flattens a sample plus the per-pool usage breakdown into
// the serializable series row.
func (e *Engine) seriesPoint(s Sample) metrics.SeriesPoint {
	return metrics.SeriesPoint{
		Now:             s.Now,
		QueueDepth:      s.QueueDepth,
		Running:         s.Running,
		Done:            s.Done,
		Events:          s.Events,
		BusyNodes:       s.Usage.BusyNodes,
		UsedCores:       s.Usage.UsedCores,
		UsedLocalMiB:    s.Usage.UsedLocal,
		UsedPoolMiB:     s.Usage.UsedPool,
		PoolDemandGiBps: s.Usage.PoolDemand,
		MaxPoolUtil:     s.Usage.MaxPoolUtil,
		MaxCongest:      s.Usage.MaxCongest,
		Pools:           s.Pools,
	}
}

func (e *Engine) onArrival(now int64, job *workload.Job) {
	e.rec.OnSubmit(now)
	if e.trace != nil {
		e.trace.Add(trace.Event{
			Now: now, Type: trace.Submit,
			Job: job.ID, User: job.User, Nodes: job.Nodes, Submit: job.Submit,
		})
	}
	if !e.cfg.Scheduler.Feasible(job, e.m, e.cfg.Model) {
		rec := metrics.JobRecord{
			ID: job.ID, User: job.User, Nodes: job.Nodes, Submit: job.Submit,
			Estimate: job.Estimate, BaseRuntime: job.BaseRuntime,
			MemPerNode: job.MemPerNode, Dilation: 1, Rejected: true,
		}
		e.rec.Add(rec)
		if e.trace != nil {
			e.trace.Add(trace.Event{
				Now: now, Type: trace.Terminate,
				Job: job.ID, User: job.User, Nodes: job.Nodes, Submit: job.Submit,
				Reason: "rejected",
			})
		}
		if e.obs != nil {
			e.obs.OnTerminate(now, rec)
		}
		e.jobDone()
		return
	}
	e.queue = append(e.queue, job)
	e.requestPass()
}

// requestPass coalesces all triggers at one instant into a single
// scheduling pass.
func (e *Engine) requestPass() {
	if e.passQueue {
		return
	}
	e.passQueue = true
	e.sim.ScheduleKind(e.sim.Now(), evPass, nil, e.hPass)
}

// onPassEvent fires the coalesced scheduling pass.
func (e *Engine) onPassEvent(now des.Time, _ any) {
	e.passQueue = false
	e.pass(int64(now))
}

func (e *Engine) pass(now int64) {
	dispatched := e.dispatchPass(now)
	if e.obs != nil {
		e.obs.OnPassEnd(now, dispatched, len(e.queue))
	}
}

// dispatchPass runs one scheduling cycle and returns how many jobs it
// started. The pass context, running-set snapshots and started-set are
// engine scratch, valid only for the duration of the pass.
func (e *Engine) dispatchPass(now int64) int {
	if len(e.queue) == 0 {
		return 0
	}
	ctx := &e.passCtx
	ctx.Reset()
	ctx.Now = now
	ctx.Machine = e.m
	ctx.Model = e.cfg.Model
	ctx.Queue = e.queue
	ctx.Running = e.runningSnapshot()
	ctx.ExtendLimit = e.cfg.ExtendLimit
	e.rec.Observe(now, e.m.Usage()) // close interval at pre-dispatch usage
	dispatches := e.cfg.Scheduler.Pass(ctx)
	if len(dispatches) == 0 {
		return 0
	}
	if e.startedScratch == nil {
		e.startedScratch = make(map[int]bool, len(dispatches))
	} else {
		clear(e.startedScratch)
	}
	started := e.startedScratch
	for _, d := range dispatches {
		started[d.Job.ID] = true
		e.start(now, d)
	}
	// Remove started jobs from the pending queue, preserving order.
	kept := e.queue[:0]
	for _, j := range e.queue {
		if !started[j.ID] {
			kept = append(kept, j)
		}
	}
	e.queue = kept
	e.afterChange(now)
	return len(dispatches)
}

// runningSnapshot materialises the running set in ascending-ID order
// into engine scratch: the returned slice is valid only until the next
// pass (see DESIGN.md §13).
func (e *Engine) runningSnapshot() []sched.RunningJob {
	e.snapRun = e.snapshotInto(e.snapRun[:0], e.runIDs)
	return e.snapRun
}

// endSnapshot materialises the running set in (GuaranteedEnd, ID)
// order; it backs sched.Context.ByEnd, so it is only built for passes
// that plan reservations. Like runningSnapshot it returns engine
// scratch, distinct from runningSnapshot's so both orders can be alive
// within one pass.
func (e *Engine) endSnapshot() []sched.RunningJob {
	e.snapEnd = e.snapshotInto(e.snapEnd[:0], e.endOrder)
	return e.snapEnd
}

func (e *Engine) snapshotInto(out []sched.RunningJob, ids []int) []sched.RunningJob {
	for _, id := range ids {
		rs := e.running[id]
		out = append(out, sched.RunningJob{
			Job: rs.job, Start: rs.start, Limit: rs.limit, Alloc: rs.alloc,
		})
	}
	return out
}

// newRunningState pops a zeroed runningState from the free list (or
// allocates the list's first tenants).
func (e *Engine) newRunningState() *runningState {
	if n := len(e.rsPool); n > 0 {
		rs := e.rsPool[n-1]
		e.rsPool[n-1] = nil
		e.rsPool = e.rsPool[:n-1]
		return rs
	}
	return new(runningState)
}

// freeRunningState zeroes a terminated job's state (dropping its job,
// allocation and payload-box references) and returns it to the free
// list. The caller must already have removed it from e.running.
func (e *Engine) freeRunningState(rs *runningState) {
	*rs = runningState{}
	e.rsPool = append(e.rsPool, rs)
}

// guaranteedEnd returns the latest instant job id holds resources.
func (e *Engine) guaranteedEnd(id int) int64 {
	rs := e.running[id]
	return rs.start + rs.limit
}

// insertRunning adds id (already present in e.running) to both
// maintained orders: O(log running) search plus one slice shift each.
func (e *Engine) insertRunning(id int) {
	i := sort.SearchInts(e.runIDs, id)
	e.runIDs = append(e.runIDs, 0)
	copy(e.runIDs[i+1:], e.runIDs[i:])
	e.runIDs[i] = id

	end := e.guaranteedEnd(id)
	j := sort.Search(len(e.endOrder), func(k int) bool {
		o := e.endOrder[k]
		oe := e.guaranteedEnd(o)
		return oe > end || (oe == end && o > id)
	})
	e.endOrder = append(e.endOrder, 0)
	copy(e.endOrder[j+1:], e.endOrder[j:])
	e.endOrder[j] = id
}

// removeRunning drops id from both orders; it must still be present in
// e.running so the end-order search can compare ends.
func (e *Engine) removeRunning(id int) {
	i := sort.SearchInts(e.runIDs, id)
	if i >= len(e.runIDs) || e.runIDs[i] != id {
		panic(fmt.Sprintf("sim: job %d missing from runIDs", id))
	}
	e.runIDs = append(e.runIDs[:i], e.runIDs[i+1:]...)

	end := e.guaranteedEnd(id)
	j := sort.Search(len(e.endOrder), func(k int) bool {
		o := e.endOrder[k]
		oe := e.guaranteedEnd(o)
		return oe > end || (oe == end && o >= id)
	})
	if j >= len(e.endOrder) || e.endOrder[j] != id {
		panic(fmt.Sprintf("sim: job %d missing from endOrder", id))
	}
	e.endOrder = append(e.endOrder[:j], e.endOrder[j+1:]...)
}

// start registers a dispatched job (its allocation is already committed
// by the scheduler) and schedules its end event.
func (e *Engine) start(now int64, d sched.Dispatch) {
	job := d.Job
	// Post-commit dilation: pool congestion now includes this job.
	dil := e.currentDilation(d.Plan.Alloc)
	limit := job.Estimate
	if e.cfg.ExtendLimit && dil > 1 {
		limit = int64(float64(job.Estimate)*dil + 0.999999)
	}
	rs := e.newRunningState()
	*rs = runningState{
		job:        job,
		alloc:      d.Plan.Alloc,
		start:      now,
		limit:      limit,
		dilAtStart: dil,
		workLeft:   float64(job.BaseRuntime),
		rate:       1 / dil,
		lastUpdate: now,
	}
	e.running[job.ID] = rs
	e.insertRunning(job.ID)
	e.scheduleEnd(rs)
	if e.trace != nil {
		racks, pools := e.placementOf(rs.alloc)
		e.trace.Add(trace.Event{
			Now: now, Type: trace.Dispatch,
			Job: job.ID, User: job.User, Nodes: job.Nodes, Submit: job.Submit,
			Racks:    racks,
			Pools:    pools,
			LocalMiB: rs.alloc.TotalMiB() - rs.alloc.RemoteMiB(), RemoteMiB: rs.alloc.RemoteMiB(),
			Dilation: dil,
		})
	}
	if e.obs != nil {
		e.obs.OnDispatch(now, job, rs.alloc.RemoteMiB(), dil)
	}
}

// placementOf flattens an allocation's placement for the trace: the
// racks its nodes sit in and the pools it borrows from, each ascending.
// It walks Shares directly (same pool rule as TouchedPools) in one
// pass; the returned slices are fresh — trace consumers like the
// dmserve ring retain events, so they must never alias engine scratch.
func (e *Engine) placementOf(a *cluster.Allocation) (racks, pools []int) {
	nodes := e.m.Nodes()
	for _, sh := range a.Shares {
		r := nodes[sh.Node].Rack
		if i := sort.SearchInts(racks, r); i == len(racks) || racks[i] != r {
			racks = append(racks, 0)
			copy(racks[i+1:], racks[i:])
			racks[i] = r
		}
		if sh.RemoteMiB > 0 {
			p := int(sh.Pool)
			if i := sort.SearchInts(pools, p); i == len(pools) || pools[i] != p {
				pools = append(pools, 0)
				copy(pools[i+1:], pools[i:])
				pools[i] = p
			}
		}
	}
	return racks, pools
}

// currentDilation evaluates the model against the committed allocation
// under present congestion (worst pool the job touches), then applies
// the scenario's remote-penalty scale. Schedulers keep planning with
// the nominal model: the predictor does not know about a brownout,
// only the physics does.
func (e *Engine) currentDilation(a *cluster.Allocation) float64 {
	if e.cfg.Model == nil || a.RemoteMiB() == 0 {
		return 1
	}
	worst := 0.0
	for _, pid := range a.TouchedPools() {
		if p, ok := e.m.Pool(pid); ok {
			if c := p.Congestion(); c > worst {
				worst = c
			}
		}
	}
	return e.scaledDilation(e.cfg.Model.Dilation(a.RemoteFraction(), worst))
}

// scheduleEnd (re)schedules the job's termination: completion when its
// remaining work drains at the current rate, or the kill limit,
// whichever is earlier.
func (e *Engine) scheduleEnd(rs *runningState) {
	if rs.endEv != nil {
		e.sim.Cancel(rs.endEv)
		rs.endEv = nil
	}
	now := rs.lastUpdate
	finish := now + int64(rs.workLeft/rs.rate+0.999999)
	deadline := rs.start + rs.limit
	at, killed := finish, false
	if deadline < finish {
		at, killed = deadline, true
	}
	if at < now {
		at = now
	}
	id := rs.job.ID
	var payload any
	if killed {
		if rs.endKill == nil {
			rs.endKill = endPayload{ID: id, Killed: true}
		}
		payload = rs.endKill
	} else {
		if rs.endLive == nil {
			rs.endLive = endPayload{ID: id}
		}
		payload = rs.endLive
	}
	rs.endEv = e.sim.ScheduleKind(des.Time(at), evEnd, payload, e.hEnd)
}

// onEndEvent fires one job's scheduled termination.
func (e *Engine) onEndEvent(now des.Time, data any) {
	p := data.(endPayload)
	e.terminate(int64(now), p.ID, p.Killed, false)
}

// terminate ends a running job: normal completion, kill at the walltime
// limit, or kill by node failure.
func (e *Engine) terminate(now int64, jobID int, killed, byFailure bool) {
	rs, ok := e.running[jobID]
	if !ok {
		panic(fmt.Sprintf("sim: end event for unknown job %d", jobID))
	}
	if rs.endEv != nil {
		e.sim.Cancel(rs.endEv)
		rs.endEv = nil
	}
	e.rec.Observe(now, e.m.Usage())
	if err := e.m.Release(jobID); err != nil {
		panic(fmt.Sprintf("sim: releasing job %d: %v", jobID, err))
	}
	e.removeRunning(jobID)
	delete(e.running, jobID)
	job := rs.job
	failed := false
	if byFailure {
		e.failKills++
		e.restarts[job.ID]++
		if e.restarts[job.ID] < e.maxRestarts() {
			// The site resubmits the job: it re-enters the queue and
			// restarts from scratch. Only its final outcome produces
			// a job record.
			if e.trace != nil {
				e.trace.Add(trace.Event{
					Now: now, Type: trace.Restart,
					Job: job.ID, User: job.User, Nodes: job.Nodes, Submit: job.Submit,
					Start: rs.start, Restarts: e.restarts[job.ID],
				})
			}
			e.queue = append(e.queue, job)
			e.m.Recycle(rs.alloc)
			e.freeRunningState(rs)
			e.afterChange(now)
			e.requestPass()
			return
		}
		// Resubmission budget exhausted: give up on the job; it is
		// recorded below as killed.
		killed = true
		failed = true
	}
	rec := metrics.JobRecord{
		ID: job.ID, User: job.User, Nodes: job.Nodes, Submit: job.Submit,
		Start: rs.start, End: now,
		Estimate: job.Estimate, Limit: rs.limit,
		BaseRuntime: job.BaseRuntime, MemPerNode: job.MemPerNode,
		RemoteMiB: rs.alloc.RemoteMiB(), RemoteFrac: rs.alloc.RemoteFraction(),
		Dilation: rs.dilAtStart, Killed: killed,
		Restarts: e.restarts[job.ID],
	}
	e.rec.Add(rec)
	if e.trace != nil {
		reason := "done"
		switch {
		case failed:
			reason = "failed"
		case killed:
			reason = "killed"
		}
		e.trace.Add(trace.Event{
			Now: now, Type: trace.Terminate,
			Job: job.ID, User: job.User, Nodes: job.Nodes, Submit: job.Submit,
			Start: rs.start, Reason: reason, Restarts: e.restarts[job.ID],
		})
	}
	if e.obs != nil {
		e.obs.OnTerminate(now, rec)
	}
	// The released allocation's last read was the record above; return
	// it to the machine's free list (no-op unless it came from
	// AllocateCopy).
	e.m.Recycle(rs.alloc)
	e.freeRunningState(rs)
	e.jobDone()
	e.afterChange(now)
	e.requestPass()
}

// jobDone decrements the outstanding-work counter; once everything has
// terminated (and the source has no more arrivals to deliver) the
// failure and sampling processes stop so the event queue can drain.
func (e *Engine) jobDone() {
	e.jobsLeft--
	e.terminated++
	if e.outstanding() {
		return
	}
	if e.failEv != nil {
		e.sim.Cancel(e.failEv)
		e.failEv = nil
	}
	if e.sampleEv != nil {
		e.sim.Cancel(e.sampleEv)
		e.sampleEv = nil
	}
	// Pending interventions can no longer affect any job; cancel them
	// so the event queue drains at the true end of the run (Cancel is a
	// no-op for the ones that already fired).
	for _, ev := range e.scenEvs {
		e.sim.Cancel(ev)
	}
	e.scenEvs = nil
}

// scheduleNextFailure arms the next machine-wide failure: N nodes with
// per-node MTBF M fail as a Poisson process of rate N/M. The node count
// is read from the live machine, so a scenario-grown machine fails
// proportionally more often from the next arming on.
func (e *Engine) scheduleNextFailure() {
	mean := float64(e.cfg.Failures.MTBFPerNodeSec) / float64(e.m.Config().TotalNodes())
	delta := int64(e.failRNG.ExpFloat64()*mean) + 1
	e.failEv = e.sim.ScheduleKind(e.sim.Now()+des.Time(delta), evFailure, nil, e.hFailure)
}

// onFailureEvent fires the next random failure.
func (e *Engine) onFailureEvent(now des.Time, _ any) { e.onFailure(int64(now)) }

// onFailure fails one uniformly random up node, killing its occupant,
// and schedules the repair.
func (e *Engine) onFailure(now int64) {
	e.failEv = nil
	if !e.outstanding() {
		return
	}
	defer e.scheduleNextFailure()

	// Pick a uniformly random up node (candidate list is engine scratch).
	up := e.upScratch[:0]
	for _, n := range e.m.Nodes() {
		if !n.Down {
			up = append(up, n.ID)
		}
	}
	e.upScratch = up
	if len(up) == 0 {
		return // whole machine down; only repairs can help
	}
	victim := up[e.failRNG.Intn(len(up))]
	e.failures++
	if busy := e.m.Nodes()[victim].Busy; busy != 0 {
		e.terminate(now, busy, true, true)
	}
	if err := e.m.SetDown(victim); err != nil {
		panic(fmt.Sprintf("sim: failing node %d: %v", victim, err))
	}
	e.sim.ScheduleKind(e.sim.Now()+des.Time(e.cfg.Failures.RepairSec), evRepair, victim, e.hRepair)
	if e.cfg.CheckInvariants {
		if err := e.m.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("sim: %v", err))
		}
	}
}

// onRepairEvent returns a failure-downed node to service.
func (e *Engine) onRepairEvent(_ des.Time, data any) { e.onRepair(data.(cluster.NodeID)) }

// onRepair ends one node's repair window. A scenario "up" may have
// repaired the node already; only a still-down node needs (and
// tolerates) the SetUp. A node a scenario outage holds down stays down
// until its "up" event — planned outages outrank the failure repair
// process.
func (e *Engine) onRepair(victim cluster.NodeID) {
	if e.m.Nodes()[victim].Down && !e.scenarioDown[victim] {
		if err := e.m.SetUp(victim); err != nil {
			panic(fmt.Sprintf("sim: repairing node %d: %v", victim, err))
		}
	}
	e.requestPass()
}

// afterChange re-dilates running jobs under contention-sensitive models
// and optionally validates machine invariants.
func (e *Engine) afterChange(now int64) {
	if e.cfg.CheckInvariants {
		if err := e.m.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("sim: %v", err))
		}
	}
	if !e.reDilate {
		return
	}
	e.redilateRunning(now)
}

// redilateRunning integrates every remote job's progress at its old
// rate, then switches it to the rate current congestion (and the
// scenario's penalty scale) dictates. Called from afterChange under
// contention-sensitive models, and unconditionally after a scenario
// beta shift — which changes rates even under models whose dilation is
// otherwise fixed at dispatch.
func (e *Engine) redilateRunning(now int64) {
	// Deterministic order: ascending job ID. runIDs is maintained in
	// exactly that order, so no per-call collection or sort is needed
	// (same-instant DES events fire in scheduling order, so the order
	// end events are rescheduled in is behavior-relevant).
	for _, id := range e.runIDs {
		rs := e.running[id]
		if rs.alloc.RemoteMiB() == 0 {
			continue
		}
		// Integrate progress at the old rate, then switch rates.
		elapsed := float64(now - rs.lastUpdate)
		rs.workLeft -= elapsed * rs.rate
		if rs.workLeft < 0 {
			rs.workLeft = 0
		}
		rs.lastUpdate = now
		newDil := e.currentDilation(rs.alloc)
		rs.rate = 1 / newDil
		e.scheduleEnd(rs)
	}
}

// Run is a convenience: build an engine from cfg and simulate w.
func Run(cfg Config, w *workload.Workload) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(w)
}
