package sim

import (
	"strings"
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/metrics"
	"dismem/internal/sched"
	"dismem/internal/workload"
)

// tinyMachine: 1 rack x 2 nodes, 1000 MiB local; pool/fabric per test.
func tinyMachine(poolMiB int64, fabric float64) cluster.Config {
	cfg := cluster.Config{
		Racks: 1, NodesPerRack: 2, CoresPerNode: 4, LocalMemMiB: 1000,
		Topology: cluster.TopologyNone,
	}
	if poolMiB > 0 {
		cfg.Topology = cluster.TopologyRack
		cfg.PoolMiB = poolMiB
		cfg.FabricGiBps = fabric
		cfg.TrafficGiBpsPerNode = 2
	}
	return cfg
}

func easyLocal() sched.Scheduler {
	return &sched.Batch{Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: sched.LocalOnly{}}
}

func easySpill() sched.Scheduler {
	return &sched.Batch{Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: sched.Spill{}}
}

func run(t *testing.T, cfg Config, jobs ...*workload.Job) *Result {
	t.Helper()
	cfg.CheckInvariants = true
	w := &workload.Workload{Name: "test", Jobs: jobs}
	w.Sort()
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func record(t *testing.T, res *Result, id int) *metrics.JobRecord {
	t.Helper()
	for i := range res.Recorder.Records() {
		r := &res.Recorder.Records()[i]
		if r.ID == id {
			return r
		}
	}
	t.Fatalf("no record for job %d", id)
	return nil
}

func TestSingleJobTiming(t *testing.T) {
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()},
		&workload.Job{ID: 1, Submit: 10, Nodes: 1, MemPerNode: 500, Estimate: 1000, BaseRuntime: 100},
	)
	r := record(t, res, 1)
	if r.Start != 10 || r.End != 110 || r.Killed || r.Rejected {
		t.Fatalf("record = %+v, want start 10 end 110", r)
	}
	if r.Wait() != 0 || r.Runtime() != 100 || r.Response() != 100 {
		t.Fatalf("derived metrics wrong: wait=%d runtime=%d", r.Wait(), r.Runtime())
	}
	if res.Report.Completed != 1 || res.Report.Killed != 0 {
		t.Fatalf("report = %+v", res.Report)
	}
}

func TestQueueingWhenMachineFull(t *testing.T) {
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()},
		&workload.Job{ID: 1, Submit: 0, Nodes: 2, MemPerNode: 500, Estimate: 200, BaseRuntime: 100},
		&workload.Job{ID: 2, Submit: 5, Nodes: 2, MemPerNode: 500, Estimate: 200, BaseRuntime: 50},
	)
	r1, r2 := record(t, res, 1), record(t, res, 2)
	if r1.Start != 0 || r1.End != 100 {
		t.Fatalf("job1 = %+v", r1)
	}
	if r2.Start != 100 || r2.End != 150 {
		t.Fatalf("job2 = %+v, want start at job1's end", r2)
	}
	if r2.Wait() != 95 {
		t.Fatalf("job2 wait = %d, want 95", r2.Wait())
	}
}

func TestEASYBackfillEndToEnd(t *testing.T) {
	// Node 0+1 busy until 100 (job1). Job2 wants both nodes (estimate
	// 100 → reservation at 100). Job3 (1 node, est 50) backfills at 5.
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 1, Estimate: 100, BaseRuntime: 100},
		&workload.Job{ID: 2, Submit: 5, Nodes: 2, MemPerNode: 1, Estimate: 100, BaseRuntime: 100},
		&workload.Job{ID: 3, Submit: 5, Nodes: 1, MemPerNode: 1, Estimate: 50, BaseRuntime: 40},
	)
	r2, r3 := record(t, res, 2), record(t, res, 3)
	if r3.Start != 5 {
		t.Fatalf("job3 start = %d, want 5 (backfilled)", r3.Start)
	}
	if r2.Start != 100 {
		t.Fatalf("job2 start = %d, want 100 (head reservation kept)", r2.Start)
	}
}

func TestDilatedRuntimeAndExtendedLimit(t *testing.T) {
	// mem 2000 on 1000 local → f=0.5; linear β=1 → dilation 1.5.
	// Base 100 → wall-clock 150. Estimate 120 < 150 but ExtendLimit
	// raises the limit to 180, so the job completes.
	res := run(t, Config{
		Machine: tinyMachine(4000, 100), Model: memmodel.Linear{Beta: 1},
		Scheduler: easySpill(), ExtendLimit: true,
	},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 2000, Estimate: 120, BaseRuntime: 100},
	)
	r := record(t, res, 1)
	if r.Killed {
		t.Fatal("dilated job killed despite extended limit")
	}
	if r.End != 150 {
		t.Fatalf("end = %d, want 150 (100 x 1.5)", r.End)
	}
	if r.Limit != 180 {
		t.Fatalf("limit = %d, want 180 (120 x 1.5)", r.Limit)
	}
	if r.Dilation != 1.5 || r.RemoteFrac != 0.5 || r.RemoteMiB != 1000 {
		t.Fatalf("record = %+v", r)
	}
}

func TestStrictKillAtEstimate(t *testing.T) {
	res := run(t, Config{
		Machine: tinyMachine(4000, 100), Model: memmodel.Linear{Beta: 1},
		Scheduler: easySpill(), ExtendLimit: false,
	},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 2000, Estimate: 120, BaseRuntime: 100},
	)
	r := record(t, res, 1)
	if !r.Killed {
		t.Fatal("dilated job not killed under strict limits")
	}
	if r.End != 120 || r.Limit != 120 {
		t.Fatalf("end/limit = %d/%d, want 120/120", r.End, r.Limit)
	}
	if res.Report.Killed != 1 {
		t.Fatalf("report killed = %d", res.Report.Killed)
	}
}

func TestKillAtEstimateLocalJob(t *testing.T) {
	// Underestimating user: base 200, estimate 100 → killed at 100
	// regardless of ExtendLimit (dilation 1).
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal(), ExtendLimit: true},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 1, Estimate: 100, BaseRuntime: 200},
	)
	r := record(t, res, 1)
	if !r.Killed || r.End != 100 {
		t.Fatalf("record = %+v, want killed at 100", r)
	}
}

func TestRejectInfeasibleJob(t *testing.T) {
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 5000, Estimate: 100, BaseRuntime: 50},
		&workload.Job{ID: 2, Submit: 0, Nodes: 1, MemPerNode: 500, Estimate: 100, BaseRuntime: 50},
	)
	r1 := record(t, res, 1)
	if !r1.Rejected {
		t.Fatal("infeasible job not rejected")
	}
	if res.Report.Rejected != 1 || res.Report.Completed != 1 {
		t.Fatalf("report = %+v", res.Report)
	}
}

func TestReDilationUnderContention(t *testing.T) {
	// Hand-computed two-job contention scenario (see comments inline).
	cfg := tinyMachine(4000, 2)
	cfg.TrafficGiBpsPerNode = 4
	model := memmodel.Bandwidth{Beta: 1, Gamma: 1}
	res := run(t, Config{Machine: cfg, Model: model, Scheduler: easySpill(), ExtendLimit: true},
		// Job 1: f=0.5, demand 2 GiB/s on a 2 GiB/s fabric → c=1,
		// over=0 → dilation 1.5. Alone it would end at 150.
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 2000, Estimate: 10000, BaseRuntime: 100},
		// Job 2 arrives at 50: total demand 4 → c=2 → over=1 →
		// dilation 1 + 1*0.5*(1+1) = 2.0 for both jobs.
		&workload.Job{ID: 2, Submit: 50, Nodes: 1, MemPerNode: 2000, Estimate: 10000, BaseRuntime: 100},
	)
	r1, r2 := record(t, res, 1), record(t, res, 2)
	// Job 1: 50s at rate 1/1.5 → 33.33 work done, 66.67 left; at rate
	// 1/2 that takes 133.33s → ends ceil(183.33) = 184.
	if r1.End != 184 {
		t.Fatalf("job1 end = %d, want 184 (re-dilated)", r1.End)
	}
	// Job 2 runs at rate 1/2 from 50 until job1 ends at 184 (67 work
	// done), then at 1/1.5: remaining 33 work takes 49.5s → 233.5 → 234.
	if r2.End != 234 {
		t.Fatalf("job2 end = %d, want 234 (re-accelerated)", r2.End)
	}
}

func TestDeterminism(t *testing.T) {
	gen := workload.DefaultGenConfig(400, 3, 16)
	w1 := workload.MustGenerate(gen)
	w2 := workload.MustGenerate(gen)
	mk := func(w *workload.Workload) *Result {
		res, err := Run(Config{
			Machine:   cluster.DefaultConfig(),
			Model:     memmodel.Bandwidth{Beta: 1, Gamma: 1},
			Scheduler: &sched.Batch{Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: core.New()},
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(w1), mk(w2)
	ra, rb := a.Recorder.Records(), b.Recorder.Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ra[i], rb[i])
		}
	}
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
}

func TestJobConservation(t *testing.T) {
	w := workload.MustGenerate(workload.DefaultGenConfig(800, 9, 32))
	res, err := Run(Config{
		Machine:         cluster.DefaultConfig(),
		Model:           memmodel.Linear{Beta: 0.5},
		Scheduler:       easySpill(),
		ExtendLimit:     true,
		CheckInvariants: true,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	rp := res.Report
	if got := rp.Completed + rp.Killed + rp.Rejected; got != len(w.Jobs) {
		t.Fatalf("job conservation violated: %d accounted, %d submitted", got, len(w.Jobs))
	}
	for _, r := range res.Recorder.Records() {
		if r.Rejected {
			continue
		}
		if r.Start < r.Submit {
			t.Fatalf("job %d started before submission: %+v", r.ID, r)
		}
		if r.End <= r.Start {
			t.Fatalf("job %d has non-positive runtime: %+v", r.ID, r)
		}
		if r.End > r.Start+r.Limit {
			t.Fatalf("job %d ran past its limit: %+v", r.ID, r)
		}
		if r.Dilation < 1 {
			t.Fatalf("job %d dilation < 1: %+v", r.ID, r)
		}
	}
}

// stuckScheduler never dispatches anything: the engine must detect the
// wedged queue instead of reporting success.
type stuckScheduler struct{}

func (stuckScheduler) Name() string                         { return "stuck" }
func (stuckScheduler) Pass(*sched.Context) []sched.Dispatch { return nil }
func (stuckScheduler) Feasible(*workload.Job, *cluster.Machine, memmodel.Model) bool {
	return true
}

func TestEngineDetectsStuckQueue(t *testing.T) {
	w := &workload.Workload{Jobs: []*workload.Job{
		{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 1, Estimate: 10, BaseRuntime: 5},
	}}
	_, err := Run(Config{Machine: tinyMachine(0, 0), Scheduler: stuckScheduler{}}, w)
	if err == nil || !strings.Contains(err.Error(), "never terminated") {
		t.Fatalf("stuck queue not detected: %v", err)
	}
}

func TestNilSchedulerRejected(t *testing.T) {
	if _, err := New(Config{Machine: tinyMachine(0, 0)}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestInvalidWorkloadRejected(t *testing.T) {
	w := &workload.Workload{Jobs: []*workload.Job{{ID: 0}}}
	_, err := Run(Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()}, w)
	if err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	// One job on 1 of 2 nodes for the full makespan → node util 0.5.
	res := run(t, Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()},
		&workload.Job{ID: 1, Submit: 0, Nodes: 1, MemPerNode: 500, Estimate: 200, BaseRuntime: 100},
	)
	if u := res.Report.NodeUtil; u != 0.5 {
		t.Fatalf("node util = %g, want 0.5", u)
	}
	// Local memory util: 500/(2*1000) = 0.25 for the whole span.
	if u := res.Report.LocalMemUtil; u != 0.25 {
		t.Fatalf("local mem util = %g, want 0.25", u)
	}
}
