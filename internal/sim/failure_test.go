package sim

import (
	"testing"

	"dismem/internal/memmodel"
	"dismem/internal/workload"
)

func TestFailureConfigValidate(t *testing.T) {
	bad := []FailureConfig{
		{MTBFPerNodeSec: 0, RepairSec: 10},
		{MTBFPerNodeSec: 10, RepairSec: 0},
	}
	for _, fc := range bad {
		fc := fc
		if fc.Validate() == nil {
			t.Errorf("invalid failure config %+v accepted", fc)
		}
	}
	ok := FailureConfig{MTBFPerNodeSec: 3600, RepairSec: 600}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	// The engine must reject an invalid config at construction.
	if _, err := New(Config{
		Machine: tinyMachine(0, 0), Scheduler: easyLocal(),
		Failures: &FailureConfig{},
	}); err == nil {
		t.Fatal("engine accepted invalid failure config")
	}
}

func TestFailuresKillAndRestartJobs(t *testing.T) {
	// A long job on a tiny machine with aggressive failures: it must be
	// killed at least once and restarted, yet eventually complete with
	// a truthful restart count.
	cfg := Config{
		Machine:         tinyMachine(0, 0),
		Scheduler:       easyLocal(),
		CheckInvariants: true,
		Failures:        &FailureConfig{MTBFPerNodeSec: 4000, RepairSec: 200, Seed: 7},
	}
	w := &workload.Workload{Jobs: []*workload.Job{
		{ID: 1, Submit: 0, Nodes: 2, MemPerNode: 10, Estimate: 20000, BaseRuntime: 10000},
	}}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	rp := res.Report
	if rp.Completed+rp.Killed != 1 {
		t.Fatalf("job not accounted: %+v", rp)
	}
	if rp.NodeFailures == 0 {
		t.Fatal("no failures occurred despite MTBF << runtime")
	}
	if rp.FailureKills == 0 {
		t.Fatal("failures never hit the running 2-node job on a 2-node machine")
	}
	rec := res.Recorder.Records()[0]
	if rec.Restarts != rp.FailureKills {
		t.Fatalf("record restarts %d != failure kills %d", rec.Restarts, rp.FailureKills)
	}
	// The final run must still respect causality and limits.
	if rec.End <= rec.Start || rec.End-rec.Start > rec.Limit {
		t.Fatalf("final record inconsistent: %+v", rec)
	}
}

func TestFailuresOnIdleNodesOnlyDegradeCapacity(t *testing.T) {
	// Failures with nobody running: jobs arriving later must still be
	// served once nodes repair; nothing is ever killed.
	cfg := Config{
		Machine:         tinyMachine(0, 0),
		Scheduler:       easyLocal(),
		CheckInvariants: true,
		Failures:        &FailureConfig{MTBFPerNodeSec: 2000, RepairSec: 50, Seed: 3},
	}
	var jobs []*workload.Job
	for i := 1; i <= 30; i++ {
		jobs = append(jobs, &workload.Job{
			ID: i, Submit: int64(i * 500), Nodes: 1, MemPerNode: 10,
			Estimate: 400, BaseRuntime: 100,
		})
	}
	w := &workload.Workload{Jobs: jobs}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed != 30 {
		t.Fatalf("completed %d/30 with repairing failures", res.Report.Completed)
	}
}

func TestFailureStreamDeterministic(t *testing.T) {
	cfg := Config{
		Machine:   tinyMachine(0, 0),
		Scheduler: easyLocal(),
		Failures:  &FailureConfig{MTBFPerNodeSec: 3000, RepairSec: 100, Seed: 11},
	}
	w := func() *workload.Workload {
		var jobs []*workload.Job
		for i := 1; i <= 40; i++ {
			jobs = append(jobs, &workload.Job{
				ID: i, Submit: int64(i * 200), Nodes: 1, MemPerNode: 10,
				Estimate: 2000, BaseRuntime: 800,
			})
		}
		return &workload.Workload{Jobs: jobs}
	}
	a, err := Run(cfg, w())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, w())
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.NodeFailures != b.Report.NodeFailures ||
		a.Report.FailureKills != b.Report.FailureKills ||
		a.Events != b.Events {
		t.Fatalf("failure injection not deterministic: %d/%d/%d vs %d/%d/%d",
			a.Report.NodeFailures, a.Report.FailureKills, a.Events,
			b.Report.NodeFailures, b.Report.FailureKills, b.Events)
	}
}

func TestFailuresWithRemoteMemoryJobs(t *testing.T) {
	// Killing a spilling job must restore its pool memory exactly
	// (exercised by CheckInvariants on every change).
	cfg := Config{
		Machine:         tinyMachine(4000, 10),
		Model:           memmodel.Bandwidth{Beta: 1, Gamma: 1},
		Scheduler:       easySpill(),
		ExtendLimit:     true,
		CheckInvariants: true,
		Failures:        &FailureConfig{MTBFPerNodeSec: 5000, RepairSec: 100, Seed: 5},
	}
	var jobs []*workload.Job
	for i := 1; i <= 20; i++ {
		jobs = append(jobs, &workload.Job{
			ID: i, Submit: int64(i * 300), Nodes: 1, MemPerNode: 1800,
			Estimate: 3000, BaseRuntime: 1000,
		})
	}
	res, err := Run(cfg, &workload.Workload{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobs() != 20 {
		t.Fatalf("jobs accounted = %d, want 20", res.Report.Jobs())
	}
}
