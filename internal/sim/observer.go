package sim

import (
	"dismem/internal/cluster"
	"dismem/internal/metrics"
	"dismem/internal/scenario"
	"dismem/internal/workload"
)

// Sample is a point-in-time view of a running engine: the scheduler's
// backlog, the machine's occupancy, and how far the simulation has
// progressed. It is what periodic OnSample ticks deliver and what
// Engine.Sample returns for ad-hoc polling between steps.
type Sample struct {
	// Now is the virtual clock in seconds since simulation start.
	Now int64
	// QueueDepth is the number of jobs waiting to be dispatched.
	QueueDepth int
	// Running is the number of jobs currently holding resources.
	Running int
	// Done counts jobs that reached a terminal state (completed,
	// killed, or rejected).
	Done int
	// Events is the number of DES events fired so far.
	Events uint64
	// Usage is the machine occupancy snapshot.
	Usage cluster.Usage
	// Pools is the per-pool usage breakdown, ascending by pool ID
	// (empty on pool-less machines). It backs the labeled per-pool
	// gauges on /metrics and the series export's pool columns.
	Pools []metrics.PoolPoint
	// RackFree is the number of available (up, idle) nodes per rack,
	// indexed by rack.
	RackFree []int
}

// Observer receives engine lifecycle callbacks. All methods are invoked
// synchronously from inside the event loop, so implementations MUST be
// read-only with respect to engine and machine state: mutating the
// machine, the queue, or the workload from a callback corrupts the
// simulation and breaks the determinism contract (DESIGN.md §2).
// Stopping early is the one sanctioned intervention, via the owning
// handle's Stop method (it only halts the event loop).
//
// A nil Observer costs nothing: the engine guards every hook with a nil
// check and schedules no sampling events.
type Observer interface {
	// OnDispatch fires when a job starts, after its allocation is
	// committed. remoteMiB is the pool memory the placement borrowed
	// and dilation the runtime multiplier the model predicts for it.
	OnDispatch(now int64, job *workload.Job, remoteMiB int64, dilation float64)
	// OnTerminate fires when a job reaches a terminal state, with the
	// record the metrics recorder keeps. Failure kills that will be
	// resubmitted are not terminal and do not fire this hook.
	OnTerminate(now int64, rec metrics.JobRecord)
	// OnPassEnd fires after every scheduling pass with the number of
	// jobs it dispatched and the queue depth it left behind.
	OnPassEnd(now int64, dispatched, queueDepth int)
	// OnSample fires every Config.SampleEvery simulated seconds while
	// jobs remain outstanding (never when SampleEvery is 0). Sampling
	// inserts extra DES events, so Result.Events differs from an
	// unsampled run; all scheduling outcomes are unchanged.
	OnSample(s Sample)
	// OnScenarioEvent fires after a scenario intervention has been
	// applied to the machine (and before the re-dilation and
	// scheduling pass it triggers). Interventions cancelled because
	// every job already terminated do not fire.
	OnScenarioEvent(now int64, ev scenario.Event)
}

// NopObserver implements Observer with no-ops; embed it to implement
// only the hooks of interest.
type NopObserver struct{}

// OnDispatch implements Observer.
func (NopObserver) OnDispatch(int64, *workload.Job, int64, float64) {}

// OnTerminate implements Observer.
func (NopObserver) OnTerminate(int64, metrics.JobRecord) {}

// OnPassEnd implements Observer.
func (NopObserver) OnPassEnd(int64, int, int) {}

// OnSample implements Observer.
func (NopObserver) OnSample(Sample) {}

// OnScenarioEvent implements Observer.
func (NopObserver) OnScenarioEvent(int64, scenario.Event) {}
