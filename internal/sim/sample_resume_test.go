package sim

import (
	"testing"
)

// tickRecorder counts periodic sampling ticks and the instants they
// fired at.
type tickRecorder struct {
	NopObserver
	ticks []int64
}

func (r *tickRecorder) OnSample(s Sample) { r.ticks = append(r.ticks, s.Now) }

// sampleCfg is the sampling-enabled fork configuration: the full
// adversarial stack plus a tick period deliberately coprime with the
// checkpoint instants below, so checkpoints land mid-tick.
func sampleCfg(obs Observer) Config {
	cfg := forkCfg()
	cfg.Observer = obs
	cfg.SampleEvery = 700
	return cfg
}

// TestSampleChainResumesInPhase is the regression test for the
// sampler-determinism fix: a run checkpointed mid-tick and resumed
// with a fresh observer must emit exactly the ticks the uninterrupted
// run emits — same instants, same count, and bit-identical results
// (including the DES event count, which sampling contributes to).
// Before the fix, the pending tick was dropped at checkpoint and
// re-armed at the resume instant, phase-shifting every subsequent
// sample.
func TestSampleChainResumesInPhase(t *testing.T) {
	w := testWorkload(250, 3)

	clean := &tickRecorder{}
	fresh := runSlice(t, sampleCfg(clean), w)
	if len(clean.ticks) < 10 {
		t.Fatalf("degenerate fixture: only %d sampling ticks", len(clean.ticks))
	}

	// 1049: strictly between ticks (700, 1400). 1400: exactly on a
	// tick, so the pending tick sits one full period ahead. 35001:
	// deep mid-run.
	for _, at := range []int64{1049, 1400, 35001} {
		parent := &tickRecorder{}
		e, err := New(sampleCfg(parent))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(w); err != nil {
			t.Fatal(err)
		}
		e.RunUntil(at)
		cp, err := e.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint at %d: %v", at, err)
		}
		prefix := append([]int64(nil), parent.ticks...)

		resumed := &tickRecorder{}
		fork, err := Resume(cp, Overrides{Observer: resumed})
		if err != nil {
			t.Fatalf("resume at %d: %v", at, err)
		}
		sameResult(t, "sampled fork vs fresh", fresh, finish(t, fork))

		got := append(prefix, resumed.ticks...)
		if len(got) != len(clean.ticks) {
			t.Fatalf("at=%d: %d ticks across checkpoint, clean run had %d", at, len(got), len(clean.ticks))
		}
		for i := range got {
			if got[i] != clean.ticks[i] {
				t.Fatalf("at=%d: tick %d fired at t=%d across checkpoint, t=%d clean", at, i, got[i], clean.ticks[i])
			}
		}
	}
}

// TestSampleResumeWithoutConsumer: a future resumed with no observer
// and no series sink drops the restored tick chain — the run completes
// with the same report (sampling never affects scheduling outcomes)
// and strictly fewer events.
func TestSampleResumeWithoutConsumer(t *testing.T) {
	w := testWorkload(250, 3)
	clean := &tickRecorder{}
	fresh := runSlice(t, sampleCfg(clean), w)

	e, err := New(sampleCfg(&tickRecorder{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(1049)
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := Resume(cp, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	res := finish(t, fork)
	if *res.Report != *fresh.Report {
		t.Fatalf("unsampled fork report differs:\n%+v\n%+v", res.Report, fresh.Report)
	}
	if res.Events >= fresh.Events {
		t.Fatalf("unsampled fork fired %d events, want fewer than the sampled run's %d", res.Events, fresh.Events)
	}
}

// TestSampleResumePeriodOverride: overriding the period discards the
// restored tick and restarts the chain at the resume instant — the
// documented fresh-chain semantics.
func TestSampleResumePeriodOverride(t *testing.T) {
	w := testWorkload(250, 3)
	e, err := New(sampleCfg(&tickRecorder{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(1049)
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	obs := &tickRecorder{}
	fork, err := Resume(cp, Overrides{Observer: obs, SampleEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	finish(t, fork)
	if len(obs.ticks) < 2 {
		t.Fatalf("degenerate: only %d ticks after period override", len(obs.ticks))
	}
	if obs.ticks[0] != cp.Now()+500 {
		t.Fatalf("first overridden tick at t=%d, want checkpoint+period=%d", obs.ticks[0], cp.Now()+500)
	}
	if d := obs.ticks[1] - obs.ticks[0]; d != 500 {
		t.Fatalf("overridden tick spacing %d, want 500", d)
	}
}

// TestSampleStateRoundTrip: a checkpoint holding a pending sampling
// tick survives the serialized CheckpointState round trip, and a state
// claiming a pending tick without a sampling period is rejected.
func TestSampleStateRoundTrip(t *testing.T) {
	w := testWorkload(250, 3)
	clean := &tickRecorder{}
	fresh := runSlice(t, sampleCfg(clean), w)

	parent := &tickRecorder{}
	e, err := New(sampleCfg(parent))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(1049)
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	st, err := cp.State()
	if err != nil {
		t.Fatal(err)
	}
	pending := 0
	for _, ev := range st.Events {
		if ev.Kind == "sample" {
			pending++
		}
	}
	if pending != 1 {
		t.Fatalf("serialized state holds %d pending sampling ticks, want 1", pending)
	}

	cfg := sampleCfg(nil) // config as a loader would rebuild it: no live consumers
	cp2, err := CheckpointFromState(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &tickRecorder{}
	fork, err := Resume(cp2, Overrides{Observer: resumed})
	if err != nil {
		t.Fatal(err)
	}
	res := finish(t, fork)
	if res.Events != fresh.Events {
		t.Fatalf("round-tripped fork fired %d events, clean run %d", res.Events, fresh.Events)
	}
	got := append(append([]int64(nil), parent.ticks...), resumed.ticks...)
	if len(got) != len(clean.ticks) {
		t.Fatalf("%d ticks across round trip, clean run had %d", len(got), len(clean.ticks))
	}
	for i := range got {
		if got[i] != clean.ticks[i] {
			t.Fatalf("tick %d at t=%d across round trip, t=%d clean", i, got[i], clean.ticks[i])
		}
	}

	// A pending tick with no sampling period is inconsistent state.
	badCfg := cfg
	badCfg.SampleEvery = 0
	if _, err := CheckpointFromState(badCfg, st); err == nil {
		t.Fatal("CheckpointFromState accepted a pending sampling tick with no sampling period")
	}
}
