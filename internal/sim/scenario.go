package sim

import (
	"fmt"

	"dismem/internal/cluster"
	"dismem/internal/scenario"
	"dismem/internal/trace"
)

// This file is the engine half of the scenario subsystem: timed
// interventions arrive as ordinary DES events (scheduled in Start) and
// are applied here through the cluster's sanctioned mutation surface.
// After every intervention the engine re-dilates running jobs and
// requests a scheduling pass, exactly as it does after any other state
// change, so scenario runs follow the same determinism contract as
// plain ones.

// onScenario applies one intervention at its scheduled time.
func (e *Engine) onScenario(now int64, ev scenario.Event) {
	if !e.outstanding() {
		return // nothing outstanding; jobDone already cancels the rest
	}
	if e.trace != nil {
		// Emitted before the intervention is applied, so the kills it
		// causes trace after their cause.
		e.trace.Add(trace.Event{Now: now, Type: trace.ScenarioEvent, Detail: ev.String()})
	}
	e.applyScenario(now, ev)
	e.scenApplied++
	if e.obs != nil {
		e.obs.OnScenarioEvent(now, ev)
	}
	if ev.Kind == scenario.Beta && !e.reDilate {
		// Contention-insensitive models never re-dilate via
		// afterChange, but a penalty shift changes in-flight rates too.
		e.redilateRunning(now)
	}
	e.afterChange(now)
	e.requestPass()
}

// applyScenario mutates the machine (or the engine's penalty scale)
// for one event. Targets that do not exist or are already in the
// requested state are skipped: a scenario is a plan written before the
// run, and "down rack 7" on a machine whose rack 7 a failure already
// emptied, or that has not grown yet, is a no-op rather than an error.
func (e *Engine) applyScenario(now int64, ev scenario.Event) {
	switch ev.Kind {
	case scenario.Down:
		for _, id := range e.targetNodes(ev) {
			e.downNode(now, id)
		}
	case scenario.Up:
		for _, id := range e.targetNodes(ev) {
			delete(e.scenarioDown, id)
			if e.m.Nodes()[id].Down {
				if err := e.m.SetUp(id); err != nil {
					panic(fmt.Sprintf("sim: scenario repairing node %d: %v", id, err))
				}
			}
		}
	case scenario.Resize:
		if ev.Pool == scenario.AllPools {
			if len(e.m.Pools()) > 0 {
				if err := e.m.SetAllPoolCapacities(ev.CapMiB); err != nil {
					panic(fmt.Sprintf("sim: scenario resize: %v", err))
				}
			}
		} else if _, ok := e.m.Pool(cluster.PoolID(ev.Pool)); ok {
			if err := e.m.SetPoolCapacity(cluster.PoolID(ev.Pool), ev.CapMiB); err != nil {
				panic(fmt.Sprintf("sim: scenario resize: %v", err))
			}
		}
	case scenario.Beta:
		e.dilScale = ev.Scale
	case scenario.Grow:
		for i := 0; i < ev.Racks; i++ {
			if _, err := e.m.AddRack(); err != nil {
				panic(fmt.Sprintf("sim: scenario grow: %v", err))
			}
		}
	}
}

// targetNodes resolves a Down/Up event to the node IDs it addresses,
// dropping targets outside the machine's current shape.
func (e *Engine) targetNodes(ev scenario.Event) []cluster.NodeID {
	cfg := e.m.Config()
	if ev.Node != scenario.NoTarget {
		if ev.Node >= cfg.TotalNodes() {
			return nil
		}
		return []cluster.NodeID{cluster.NodeID(ev.Node)}
	}
	if ev.Rack >= cfg.Racks {
		return nil
	}
	base := ev.Rack * cfg.NodesPerRack
	out := make([]cluster.NodeID, 0, cfg.NodesPerRack)
	for i := 0; i < cfg.NodesPerRack; i++ {
		out = append(out, cluster.NodeID(base+i))
	}
	return out
}

// downNode takes one node out of service, killing and resubmitting its
// occupant first (the same lifecycle a random failure applies), and
// counts it as a node failure in the report. The node is marked
// scenario-held even when a random failure already downed it, so the
// failure repair cannot bring it back before the scenario's "up".
func (e *Engine) downNode(now int64, id cluster.NodeID) {
	e.scenarioDown[id] = true
	n := e.m.Nodes()[id]
	if n.Down {
		return
	}
	e.failures++
	if n.Busy != 0 {
		e.terminate(now, n.Busy, true, true)
	}
	if !e.outstanding() {
		// The kill above was the last outstanding job (it exhausted its
		// restart budget); the machine state no longer matters.
		return
	}
	if err := e.m.SetDown(id); err != nil {
		panic(fmt.Sprintf("sim: scenario failing node %d: %v", id, err))
	}
}

// maxRestarts returns the resubmission budget for failure- and
// outage-killed jobs: the failure config's bound when one is set, else
// the same default (3) scenarios use on reliable machines.
func (e *Engine) maxRestarts() int {
	if e.cfg.Failures != nil {
		return e.cfg.Failures.maxRestarts()
	}
	return 3
}

// scaledDilation applies the scenario's remote-penalty scale to a
// model-predicted dilation: d -> 1 + scale*(d-1). All-local placements
// (d == 1) are unaffected, matching the physics the scale models (a
// fabric brownout slows only remote traffic).
func (e *Engine) scaledDilation(d float64) float64 {
	if e.dilScale == 1 || d <= 1 {
		return d
	}
	return 1 + e.dilScale*(d-1)
}
