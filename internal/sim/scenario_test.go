package sim

import (
	"reflect"
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/scenario"
	"dismem/internal/sched"
	"dismem/internal/workload"
)

// scenarioMachine is a small disaggregated machine scenario tests run
// on: 4 racks x 4 nodes, 1 GiB local, 4 GiB rack pools.
func scenarioMachine() cluster.Config {
	return cluster.Config{
		Racks: 4, NodesPerRack: 4, CoresPerNode: 2, LocalMemMiB: 1024,
		Topology: cluster.TopologyRack, PoolMiB: 4 * 1024, FabricGiBps: 16, TrafficGiBpsPerNode: 2,
	}
}

func scenarioConfig(sc *scenario.Scenario) Config {
	return Config{
		Machine: scenarioMachine(),
		Model:   memmodel.Linear{Beta: 0.5},
		Scheduler: &sched.Batch{
			Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: core.New(),
		},
		ExtendLimit:     true,
		CheckInvariants: true,
		Scenario:        sc,
	}
}

// TestScenarioEmptyBitIdentical pins the keystone determinism
// guarantee: a run with the empty (but non-nil) scenario — and one with
// an empty parsed spec — is bit-identical to a scenario-free run,
// events included.
func TestScenarioEmptyBitIdentical(t *testing.T) {
	w := scenarioWorkloadSimple(200, 3)
	run := func(sc *scenario.Scenario) *Result {
		cfg := scenarioConfig(sc)
		res, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	empty := run(&scenario.Scenario{})
	parsed := run(scenario.MustParse("  ;\n "))
	for name, got := range map[string]*Result{"empty": empty, "parsed-empty": parsed} {
		if got.Events != plain.Events {
			t.Errorf("%s scenario: %d events, scenario-free run fired %d", name, got.Events, plain.Events)
		}
		if !reflect.DeepEqual(got.Report, plain.Report) {
			t.Errorf("%s scenario: report differs from scenario-free run", name)
		}
		if !reflect.DeepEqual(got.Recorder.Records(), plain.Recorder.Records()) {
			t.Errorf("%s scenario: records differ from scenario-free run", name)
		}
		if got.ScenarioEvents != 0 {
			t.Errorf("%s scenario applied %d events", name, got.ScenarioEvents)
		}
	}
}

// scenarioWorkloadSimple generates the standard calibrated workload
// scaled to the test machine.
func scenarioWorkloadSimple(n int, seed uint64) *workload.Workload {
	cfg := workload.DefaultGenConfig(n, seed, 16)
	cfg.MeanInterarrival = 300
	return workload.MustGenerate(cfg)
}

// TestScenarioReproducible runs the same scenario+seed twice through
// two independent engines and demands bit-identical results (the CI
// determinism job repeats this across processes).
func TestScenarioReproducible(t *testing.T) {
	sc := scenario.MustParse(
		"at=3600 down rack=1; at=20000 up rack=1; at=10000 resize pool=0 cap=512; " +
			"at=40000 resize pool=0 cap=4096; " + // restore so no job strands
			"at=30000 beta scale=2; at=50000 grow racks=1; from=0 period=86400 amp=0.4 diurnal")
	w := scenarioWorkloadSimple(300, 9)
	var results [2]*Result
	for i := range results {
		res, err := Run(scenarioConfig(sc), w)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if results[0].Events != results[1].Events {
		t.Fatalf("event counts differ: %d vs %d", results[0].Events, results[1].Events)
	}
	if !reflect.DeepEqual(results[0].Report, results[1].Report) {
		t.Fatal("reports differ between identical scenario runs")
	}
	if !reflect.DeepEqual(results[0].Recorder.Records(), results[1].Recorder.Records()) {
		t.Fatal("records differ between identical scenario runs")
	}
	if results[0].ScenarioEvents == 0 {
		t.Fatal("no scenario events applied")
	}
}

// scenarioObserver records applied interventions.
type scenarioObserver struct {
	NopObserver
	applied []scenario.Event
	ats     []int64
}

func (o *scenarioObserver) OnScenarioEvent(now int64, ev scenario.Event) {
	o.applied = append(o.applied, ev)
	o.ats = append(o.ats, now)
}

// TestScenarioRackOutage downs a rack mid-run: occupants are killed and
// resubmitted, the nodes stay unusable until recovery, and invariants
// hold throughout (CheckInvariants is on).
func TestScenarioRackOutage(t *testing.T) {
	sc := scenario.MustParse("at=7200 down rack=0; at=36000 up rack=0")
	obs := &scenarioObserver{}
	cfg := scenarioConfig(sc)
	cfg.Observer = obs
	w := scenarioWorkloadSimple(250, 4)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(7200)
	if got := e.m.DownNodes(); got != 4 {
		t.Fatalf("after down rack: %d nodes down, want 4", got)
	}
	e.RunUntil(36000)
	if got := e.m.DownNodes(); got != 0 {
		t.Fatalf("after up rack: %d nodes down, want 0", got)
	}
	e.RunAll()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenarioEvents != 2 || len(obs.applied) != 2 {
		t.Fatalf("applied %d scenario events (observer saw %d), want 2", res.ScenarioEvents, len(obs.applied))
	}
	if obs.ats[0] != 7200 || obs.ats[1] != 36000 {
		t.Fatalf("interventions at %v, want [7200 36000]", obs.ats)
	}
	if res.Report.NodeFailures == 0 {
		t.Error("rack outage not counted as node failures")
	}
}

// TestScenarioOutageKillsAndRestarts pins the kill-resubmit lifecycle:
// a job running on a downed node is killed, resubmitted, and finishes
// later; its record carries the restart count.
func TestScenarioOutageKillsAndRestarts(t *testing.T) {
	sc := scenario.MustParse("at=100 down node=0; at=200 up node=0")
	cfg := scenarioConfig(sc)
	// One single-node all-local job running from t=0 to well past the
	// outage.
	w := &workload.Workload{Jobs: []*workload.Job{{
		ID: 1, Submit: 0, Nodes: 1, MemPerNode: 256, Estimate: 4000, BaseRuntime: 1000,
	}}}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Recorder.Records()
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", r.Restarts)
	}
	if r.Killed {
		t.Fatal("restarted job reported killed")
	}
	// Restarted from scratch at the kill instant (the machine has 15
	// other free nodes): killed at 100, full 1000 s rerun from there.
	if r.End != 1100 {
		t.Fatalf("job finished at %d, want 1100 (kill at 100 + full rerun)", r.End)
	}
	if res.Report.FailureKills != 1 {
		t.Fatalf("FailureKills = %d, want 1", res.Report.FailureKills)
	}
}

// TestScenarioPermanentOutageExhaustsRestarts pins the restart budget
// on a machine with no failure config: a job whose only viable node
// goes down forever is abandoned after the default 3 restarts... but a
// single-node machine with the node down forever simply strands the
// job in the queue, which Finish reports as an error. Use a down/up
// cycle that kills it repeatedly instead.
func TestScenarioPermanentOutageExhaustsRestarts(t *testing.T) {
	// Kill the node under the job three times; after the third kill the
	// restart budget (3) is exhausted and the job is recorded killed.
	sc := scenario.MustParse(
		"at=100 down node=0; at=101 up node=0;" +
			"at=200 down node=0; at=201 up node=0;" +
			"at=300 down node=0; at=301 up node=0")
	cfg := scenarioConfig(sc)
	cfg.Machine = cluster.Config{
		Racks: 1, NodesPerRack: 1, CoresPerNode: 1, LocalMemMiB: 1024,
		Topology: cluster.TopologyNone,
	}
	w := &workload.Workload{Jobs: []*workload.Job{{
		ID: 1, Submit: 0, Nodes: 1, MemPerNode: 256, Estimate: 4000, BaseRuntime: 1000,
	}}}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Recorder.Records()
	if len(recs) != 1 || !recs[0].Killed || recs[0].Restarts != 3 {
		t.Fatalf("record = %+v, want killed with 3 restarts", recs[0])
	}
}

// TestScenarioPoolDegradation shrinks every pool below use mid-run and
// recovers: the run completes with invariants checked at every event.
func TestScenarioPoolDegradation(t *testing.T) {
	sc := scenario.MustParse("at=5000 resize pool=all cap=64; at=40000 resize pool=all cap=4096")
	w := scenarioWorkloadSimple(250, 5)
	res, err := Run(scenarioConfig(sc), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenarioEvents != 2 {
		t.Fatalf("applied %d scenario events, want 2", res.ScenarioEvents)
	}
	// The run must differ from the unperturbed one (the degradation
	// binds: large-memory jobs wait for recovery).
	plain, err := Run(scenarioConfig(nil), w)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(plain.Report, res.Report) {
		t.Error("pool degradation had no observable effect")
	}
}

// TestScenarioBetaScaleDilatesRuns doubles the remote penalty mid-run:
// remote jobs dispatched after the shift run slower than in the
// unperturbed run, and mean dilation rises.
func TestScenarioBetaScaleDilatesRuns(t *testing.T) {
	sc := scenario.MustParse("at=0 beta scale=3")
	w := scenarioWorkloadSimple(250, 6)
	scaled, err := Run(scenarioConfig(sc), w)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(scenarioConfig(nil), w)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report.DilationRemote.N() == 0 {
		t.Skip("workload produced no remote jobs")
	}
	if got, want := scaled.Report.DilationRemote.Mean(), plain.Report.DilationRemote.Mean(); got <= want {
		t.Errorf("scaled mean remote dilation %g, want > unperturbed %g", got, want)
	}
}

// TestScenarioBetaScaleHitsRunningJobs pins the in-flight semantics
// under a contention-INSENSITIVE model (linear), where afterChange
// never re-dilates: a beta shift must still re-rate jobs already
// running, not only later dispatches.
func TestScenarioBetaScaleHitsRunningJobs(t *testing.T) {
	cfg := scenarioConfig(scenario.MustParse("at=750 beta scale=3"))
	cfg.Model = memmodel.Linear{Beta: 1}
	cfg.Machine = cluster.Config{
		Racks: 1, NodesPerRack: 1, CoresPerNode: 1, LocalMemMiB: 512,
		Topology: cluster.TopologyRack, PoolMiB: 4096, FabricGiBps: 16, TrafficGiBpsPerNode: 2,
	}
	// One job, half its footprint remote: dilation 1 + 1*0.5 = 1.5, so
	// 1000 s of work ends at t=1500 unperturbed. At t=750 it has done
	// 500 s of work; scale=3 lifts its dilation to 1 + 3*0.5 = 2.5, so
	// the remaining 500 s take 1250 s: end = 2000.
	w := &workload.Workload{Jobs: []*workload.Job{{
		ID: 1, Submit: 0, Nodes: 1, MemPerNode: 1024, Estimate: 4000, BaseRuntime: 1000,
	}}}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Recorder.Records()
	if len(recs) != 1 || recs[0].RemoteMiB == 0 {
		t.Fatalf("setup: records %+v", recs)
	}
	if got := recs[0].End; got != 2000 {
		t.Fatalf("job ended at %d, want 2000 (brownout must slow the in-flight job)", got)
	}
}

// TestScenarioOutageOutranksFailureRepair pins the precedence rule: a
// node a random failure downed, then a scenario outage claimed, must
// stay down through its pending failure repair until the scenario's
// "up".
func TestScenarioOutageOutranksFailureRepair(t *testing.T) {
	const downAt, upAt = 5000, 40000
	sc := scenario.MustParse("at=5000 down rack=0; at=40000 up rack=0")
	cfg := scenarioConfig(sc)
	// Aggressive failures with a repair longer than the pre-window:
	// rack-0 nodes are all but certain to carry pending repairs into
	// the outage window (without the precedence guard, every seed
	// 1..30 of this configuration sees a mid-outage SetUp).
	cfg.Failures = &FailureConfig{MTBFPerNodeSec: 5000, RepairSec: 3000, Seed: 3}
	w := scenarioWorkloadSimple(300, 14)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for e.Now() < upAt-1000 && !e.Done() {
		e.RunUntil(e.Now() + 250)
		if e.Now() > downAt && e.Now() < upAt {
			checked++
			for i := 0; i < cfg.Machine.NodesPerRack; i++ {
				if !e.m.Nodes()[i].Down {
					t.Fatalf("t=%d: rack-0 node %d is up inside the planned outage window", e.Now(), i)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("never observed the outage window")
	}
	e.RunAll()
	if _, err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Machine.NodesPerRack; i++ {
		if e.scenarioDown[cluster.NodeID(i)] {
			t.Fatalf("node %d still scenario-held after the up event", i)
		}
	}
}

// TestScenarioGrow adds racks mid-run: capacity grows, the new nodes
// take jobs, and the report normalizes against the grown machine.
func TestScenarioGrow(t *testing.T) {
	sc := scenario.MustParse("at=10000 grow racks=2")
	w := scenarioWorkloadSimple(250, 7)
	cfg := scenarioConfig(sc)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(10000)
	if got := e.m.Config().Racks; got != 6 {
		t.Fatalf("racks after grow = %d, want 6", got)
	}
	if got := len(e.m.Pools()); got != 6 {
		t.Fatalf("pools after grow = %d, want 6", got)
	}
	e.RunAll()
	if _, err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioArrivalModulation checks surge/diurnal statements reshape
// the arrival process deterministically without touching the caller's
// workload.
func TestScenarioArrivalModulation(t *testing.T) {
	sc := scenario.MustParse("from=0 rate=2 surge")
	w := scenarioWorkloadSimple(100, 8)
	lastOriginal := w.Jobs[len(w.Jobs)-1].Submit
	res, err := Run(scenarioConfig(sc), w)
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs[len(w.Jobs)-1].Submit != lastOriginal {
		t.Fatal("scenario modulation mutated the caller's workload")
	}
	// Doubling the arrival rate halves the span of submissions; the
	// makespan must shrink accordingly (runtime-bound tail aside).
	plain, err := Run(scenarioConfig(nil), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MakespanSec >= plain.Report.MakespanSec {
		t.Errorf("surge makespan %d not shorter than unperturbed %d",
			res.Report.MakespanSec, plain.Report.MakespanSec)
	}
}

// TestScenarioTargetsOutOfRange: interventions naming absent targets
// are no-ops, not crashes.
func TestScenarioTargetsOutOfRange(t *testing.T) {
	sc := scenario.MustParse("at=100 down rack=99; at=200 down node=9999; at=300 resize pool=77 cap=5; at=400 up rack=50")
	w := scenarioWorkloadSimple(50, 2)
	res, err := Run(scenarioConfig(sc), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenarioEvents == 0 {
		t.Fatal("events should still fire (as no-ops)")
	}
}

// TestScenarioWithFailureInjection runs outages and random failures
// together: the scenario "up" may race the failure repair, which must
// stay benign (the repair guard).
func TestScenarioWithFailureInjection(t *testing.T) {
	sc := scenario.MustParse("at=5000 down rack=2; at=9000 up rack=2; from=2000 until=30000 rate=2 surge")
	cfg := scenarioConfig(sc)
	cfg.Failures = &FailureConfig{MTBFPerNodeSec: 40000, RepairSec: 1800, Seed: 11}
	w := scenarioWorkloadSimple(250, 12)
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.NodeFailures == 0 {
		t.Fatal("no failures at all")
	}
}
