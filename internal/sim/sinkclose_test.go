package sim

import (
	"testing"

	"dismem/internal/metrics"
	"dismem/internal/source"
	"dismem/internal/workload"
)

// trackingSink counts records and closes, standing in for a buffered
// file sink whose data is lost unless Close (= flush) runs.
type trackingSink struct {
	added  int
	closes int
}

func (s *trackingSink) Add(metrics.JobRecord) { s.added++ }
func (s *trackingSink) Close() error          { s.closes++; return nil }

// TestSinkClosedAfterStopFinish pins the satellite bugfix: a run
// truncated with Stop must still flush and close its record sink at
// Finish, exactly once, with every record produced before the stop
// delivered.
func TestSinkClosedAfterStopFinish(t *testing.T) {
	w := testWorkload(60, 2)
	sink := &trackingSink{}
	cfg := streamCfg()
	cfg.RecordSink = sink
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(10000)
	e.Stop()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("result not marked stopped")
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closes)
	}
	if got, want := sink.added, res.Report.Jobs()+res.Report.Rejected; got != want {
		t.Fatalf("sink saw %d records, report accounts for %d", got, want)
	}
	// Finish is idempotent; the sink must not be closed again.
	if _, err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times after repeated Finish, want 1", sink.closes)
	}
}

// TestSinkClosedOnStartErrors pins that every failed-start path closes
// (and therefore flushes) the sink, since Finish will never run.
func TestSinkClosedOnStartErrors(t *testing.T) {
	// Invalid workload.
	sink := &trackingSink{}
	cfg := streamCfg()
	cfg.RecordSink = sink
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := &workload.Workload{Jobs: []*workload.Job{{ID: -1, Submit: 0, Nodes: 1, Estimate: 1, BaseRuntime: 1}}}
	if err := e.Start(bad); err == nil {
		t.Fatal("invalid workload accepted")
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times after invalid workload, want 1", sink.closes)
	}

	// Nil source.
	sink = &trackingSink{}
	cfg.RecordSink = sink
	if e, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	if err := e.StartSource(nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times after nil source, want 1", sink.closes)
	}

	// Source whose first job is invalid.
	sink = &trackingSink{}
	cfg.RecordSink = sink
	if e, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	badSrc := source.FromJobs([]*workload.Job{{ID: 1, Submit: 0, Nodes: 0, Estimate: 1, BaseRuntime: 1}})
	if err := e.StartSource(badSrc); err == nil {
		t.Fatal("invalid streamed job accepted")
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times after broken source, want 1", sink.closes)
	}
}

// TestSinkClosedOnMidStreamSourceError pins the mid-stream failure
// path: the source breaks after some jobs; Finish reports the source
// error and the sink is still closed exactly once with the drained
// prefix delivered.
func TestSinkClosedOnMidStreamSourceError(t *testing.T) {
	jobs := testWorkload(30, 4).Jobs
	// Corrupt a later job so the stream breaks mid-flight.
	bad := *jobs[20]
	bad.Nodes = 0
	jobs[20] = &bad
	sink := &trackingSink{}
	cfg := streamCfg()
	cfg.RecordSink = sink
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartSource(source.FromJobs(jobs)); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if _, err := e.Finish(); err == nil {
		t.Fatal("Finish swallowed the source error")
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closes)
	}
	if sink.added == 0 {
		t.Fatal("no drained records reached the sink")
	}
	// Finish keeps reporting the error without re-closing.
	if _, err := e.Finish(); err == nil {
		t.Fatal("repeated Finish swallowed the source error")
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times after repeated Finish, want 1", sink.closes)
	}
}
