package sim

import (
	"errors"
	"fmt"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/des"
	"dismem/internal/metrics"
	"dismem/internal/source"
	"dismem/internal/stats"
	"dismem/internal/workload"
)

// This file flattens a Checkpoint (checkpoint.go — the passive in-memory
// snapshot behind Fork) into CheckpointState, a plain serializable
// struct, and rebuilds it. The state form carries everything except the
// run configuration: schedulers, memory models and scenarios are code,
// so the layer that persists a checkpoint (package dismem) stores their
// spec strings and hands the rebuilt Config to CheckpointFromState.
//
// The contract matches in-memory forking: Resume of a restored
// checkpoint replays the identical future, bit for bit. Every numeric
// field round-trips exactly (encoding/json emits shortest-round-trip
// floats), and the restore path validates shape instead of trusting it —
// unknown event kinds, payload/kind mismatches, out-of-range scenario
// indices and inconsistent recorder modes are errors, never guesses.

// Serialized event kind tags. Strings, not the internal des.Kind
// integers, so a persisted checkpoint survives reordering of the
// constant block.
var eventKindNames = map[des.Kind]string{
	evArrival:  "arrival",
	evPass:     "pass",
	evEnd:      "end",
	evFailure:  "failure",
	evRepair:   "repair",
	evSample:   "sample",
	evScenario: "scenario",
}

var eventKindsByName = func() map[string]des.Kind {
	m := make(map[string]des.Kind, len(eventKindNames))
	for k, n := range eventKindNames {
		m[n] = k
	}
	return m
}()

// EndPayloadState is the serialized form of a pending job termination.
type EndPayloadState struct {
	ID     int  `json:"id"`
	Killed bool `json:"killed,omitempty"`
}

// EventRecordState is one pending DES event: time, ordering band, kind
// tag and the kind's payload (exactly one of the payload fields is set,
// and only for the kinds that carry one).
type EventRecordState struct {
	T     int64  `json:"t"`
	Front bool   `json:"front,omitempty"`
	Kind  string `json:"kind"`

	Job  *workload.Job    `json:"job,omitempty"`  // kind "arrival"
	End  *EndPayloadState `json:"end,omitempty"`  // kind "end"
	Node *int             `json:"node,omitempty"` // kind "repair"
	Scen *int             `json:"scen,omitempty"` // kind "scenario"
}

// RunningSnapState is the serialized share of one running job; its
// allocation lives in the machine state and its end event in Events.
type RunningSnapState struct {
	Job        *workload.Job `json:"job"`
	Start      int64         `json:"start"`
	Limit      int64         `json:"limit"`
	DilAtStart float64       `json:"dilAtStart"`
	WorkLeft   float64       `json:"workLeft"`
	Rate       float64       `json:"rate"`
	LastUpdate int64         `json:"lastUpdate"`
}

// CheckpointState is the serializable flattening of a Checkpoint:
// everything Resume needs except the Config (rebuilt by the caller from
// its own serialized spec). Running is sorted by job ID and ScenarioDown
// ascending, so encoding the same checkpoint twice yields identical
// bytes.
type CheckpointState struct {
	Bounded bool   `json:"bounded,omitempty"`
	Now     int64  `json:"now"`
	Fired   uint64 `json:"fired"`

	Events   []EventRecordState    `json:"events"`
	Machine  cluster.MachineState  `json:"machine"`
	Recorder metrics.RecorderState `json:"recorder"`

	Queue    []*workload.Job    `json:"queue,omitempty"`
	Running  []RunningSnapState `json:"running,omitempty"`
	RunIDs   []int              `json:"runIDs,omitempty"`
	EndOrder []int              `json:"endOrder,omitempty"`

	Source      *source.CursorState `json:"source,omitempty"`
	SrcDone     bool                `json:"srcDone,omitempty"`
	SrcErr      string              `json:"srcErr,omitempty"`
	LastArrival int64               `json:"lastArrival"`

	FailRNG    *stats.RNGState `json:"failRNG,omitempty"`
	Terminated int             `json:"terminated"`
	JobsLeft   int             `json:"jobsLeft"`
	Failures   int             `json:"failures,omitempty"`
	FailKills  int             `json:"failKills,omitempty"`
	Restarts   map[int]int     `json:"restarts,omitempty"`

	DilScale     float64 `json:"dilScale"`
	ScenApplied  int     `json:"scenApplied,omitempty"`
	ScenarioDown []int   `json:"scenarioDown,omitempty"`
}

// State flattens the checkpoint for serialization. It fails when the
// checkpointed source has no durable cursor (source.Durable) — the
// in-memory Fork path is broader than the durable one; see
// dismem.SaveCheckpoint for what qualifies.
func (cp *Checkpoint) State() (*CheckpointState, error) {
	st := &CheckpointState{
		Bounded:     cp.bounded,
		Now:         cp.now,
		Fired:       cp.fired,
		Machine:     cp.machine.State(),
		Recorder:    cp.rec.State(),
		Queue:       cp.queue,
		RunIDs:      cp.runIDs,
		EndOrder:    cp.endOrder,
		SrcDone:     cp.srcDone,
		LastArrival: cp.lastArrival,
		Terminated:  cp.terminated,
		JobsLeft:    cp.jobsLeft,
		Failures:    cp.failures,
		FailKills:   cp.failKills,
		Restarts:    cp.restarts,
		DilScale:    cp.dilScale,
		ScenApplied: cp.scenApplied,
	}
	if cp.srcErr != nil {
		st.SrcErr = cp.srcErr.Error()
	}
	if cp.failRNG != nil {
		s := cp.failRNG.State()
		st.FailRNG = &s
	}
	if cp.src != nil {
		d, ok := cp.src.(source.Durable)
		if !ok {
			return nil, fmt.Errorf("sim: source %T has no durable cursor (see source.Durable; materialise the workload or use a file-backed source)", cp.src)
		}
		cur, err := d.Cursor()
		if err != nil {
			return nil, err
		}
		st.Source = cur
	}
	st.Events = make([]EventRecordState, 0, len(cp.events))
	for _, r := range cp.events {
		er := EventRecordState{T: int64(r.Time), Front: r.Front, Kind: eventKindNames[r.Kind]}
		if er.Kind == "" {
			return nil, fmt.Errorf("sim: checkpoint holds event of unknown kind %d (State not updated for a new event family?)", r.Kind)
		}
		switch r.Kind {
		case evArrival:
			er.Job = r.Data.(*workload.Job)
		case evEnd:
			p := r.Data.(endPayload)
			er.End = &EndPayloadState{ID: p.ID, Killed: p.Killed}
		case evRepair:
			id := int(r.Data.(cluster.NodeID))
			er.Node = &id
		case evScenario:
			i := r.Data.(int)
			er.Scen = &i
		}
		st.Events = append(st.Events, er)
	}
	st.Running = make([]RunningSnapState, 0, len(cp.running))
	ids := make([]int, 0, len(cp.running))
	for id := range cp.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rs := cp.running[id]
		st.Running = append(st.Running, RunningSnapState{
			Job: rs.job, Start: rs.start, Limit: rs.limit,
			DilAtStart: rs.dilAtStart, WorkLeft: rs.workLeft,
			Rate: rs.rate, LastUpdate: rs.lastUpdate,
		})
	}
	st.ScenarioDown = make([]int, 0, len(cp.scenarioDown))
	for id := range cp.scenarioDown {
		st.ScenarioDown = append(st.ScenarioDown, int(id))
	}
	sort.Ints(st.ScenarioDown)
	return st, nil
}

// CheckpointFromState rebuilds a checkpoint from its serialized state
// and the run configuration the caller reconstructed (scheduler, memory
// model and scenario are code, not data — only their specs persist).
// The result feeds Resume like any in-memory checkpoint. Validation is
// structural and paranoid: the state is assumed to come from disk, so
// every cross-reference is checked here or in Resume rather than
// trusted.
func CheckpointFromState(cfg Config, st *CheckpointState) (*Checkpoint, error) {
	if st == nil {
		return nil, fmt.Errorf("sim: nil checkpoint state")
	}
	if st.Now < 0 {
		return nil, fmt.Errorf("sim: checkpoint time %d < 0", st.Now)
	}
	m, err := cluster.FromState(st.Machine)
	if err != nil {
		return nil, err
	}
	rec, err := metrics.RecorderFromState(st.Recorder)
	if err != nil {
		return nil, err
	}
	if rec.Bounded() != st.Bounded {
		return nil, fmt.Errorf("sim: checkpoint bounded flag %v disagrees with recorder state", st.Bounded)
	}

	cp := &Checkpoint{
		cfg:          cfg,
		bounded:      st.Bounded,
		now:          st.Now,
		fired:        st.Fired,
		machine:      m,
		rec:          rec,
		queue:        st.Queue,
		running:      make(map[int]runningSnap, len(st.Running)),
		runIDs:       st.RunIDs,
		endOrder:     st.EndOrder,
		srcDone:      st.SrcDone,
		lastArrival:  st.LastArrival,
		terminated:   st.Terminated,
		jobsLeft:     st.JobsLeft,
		failures:     st.Failures,
		failKills:    st.FailKills,
		restarts:     st.Restarts,
		dilScale:     st.DilScale,
		scenApplied:  st.ScenApplied,
		scenarioDown: make(map[cluster.NodeID]bool, len(st.ScenarioDown)),
	}
	cp.cfg.Observer = nil
	cp.cfg.RecordSink = nil
	if cp.restarts == nil {
		cp.restarts = map[int]int{}
	}
	if st.SrcErr != "" {
		cp.srcErr = errors.New(st.SrcErr)
	}
	if st.FailRNG != nil {
		rng, err := stats.RNGFromState(*st.FailRNG)
		if err != nil {
			return nil, err
		}
		cp.failRNG = rng
	}
	if cfg.Failures != nil && cp.failRNG == nil {
		return nil, fmt.Errorf("sim: checkpoint configures failure injection but carries no failure RNG state")
	}

	switch {
	case st.Source != nil:
		var rate func(float64) float64
		if cfg.Scenario.Modulates() {
			rate = cfg.Scenario.Rate
		}
		src, err := source.FromCursor(st.Source, rate)
		if err != nil {
			return nil, err
		}
		cp.src = src
	case !st.SrcDone:
		return nil, fmt.Errorf("sim: checkpoint source not exhausted but no cursor captured")
	}

	for _, rs := range st.Running {
		if rs.Job == nil {
			return nil, fmt.Errorf("sim: checkpoint running entry has no job")
		}
		if _, dup := cp.running[rs.Job.ID]; dup {
			return nil, fmt.Errorf("sim: checkpoint running set lists job %d twice", rs.Job.ID)
		}
		cp.running[rs.Job.ID] = runningSnap{
			job: rs.Job, start: rs.Start, limit: rs.Limit,
			dilAtStart: rs.DilAtStart, workLeft: rs.WorkLeft,
			rate: rs.Rate, lastUpdate: rs.LastUpdate,
		}
	}
	for _, id := range st.ScenarioDown {
		cp.scenarioDown[cluster.NodeID(id)] = true
	}

	scenEvents := 0
	if cfg.Scenario != nil {
		scenEvents = len(cfg.Scenario.Events)
	}
	cp.events = make([]des.EventRecord, 0, len(st.Events))
	for i, er := range st.Events {
		kind, ok := eventKindsByName[er.Kind]
		if !ok {
			return nil, fmt.Errorf("sim: checkpoint event %d has unknown kind %q", i, er.Kind)
		}
		rec := des.EventRecord{Time: des.Time(er.T), Front: er.Front, Kind: kind}
		payloads := 0
		for _, set := range []bool{er.Job != nil, er.End != nil, er.Node != nil, er.Scen != nil} {
			if set {
				payloads++
			}
		}
		switch kind {
		case evArrival:
			if er.Job == nil || payloads != 1 {
				return nil, fmt.Errorf("sim: checkpoint event %d (%s) needs exactly a job payload", i, er.Kind)
			}
			rec.Data = er.Job
		case evEnd:
			if er.End == nil || payloads != 1 {
				return nil, fmt.Errorf("sim: checkpoint event %d (%s) needs exactly an end payload", i, er.Kind)
			}
			if _, ok := cp.running[er.End.ID]; !ok {
				return nil, fmt.Errorf("sim: checkpoint end event for job %d not in running set", er.End.ID)
			}
			rec.Data = endPayload{ID: er.End.ID, Killed: er.End.Killed}
		case evRepair:
			if er.Node == nil || payloads != 1 {
				return nil, fmt.Errorf("sim: checkpoint event %d (%s) needs exactly a node payload", i, er.Kind)
			}
			rec.Data = cluster.NodeID(*er.Node)
		case evScenario:
			if er.Scen == nil || payloads != 1 {
				return nil, fmt.Errorf("sim: checkpoint event %d (%s) needs exactly a scenario payload", i, er.Kind)
			}
			if *er.Scen < 0 || *er.Scen >= scenEvents {
				return nil, fmt.Errorf("sim: checkpoint event %d references scenario intervention %d of a %d-event scenario", i, *er.Scen, scenEvents)
			}
			rec.Data = *er.Scen
		case evFailure:
			if payloads != 0 {
				return nil, fmt.Errorf("sim: checkpoint event %d (%s) carries an unexpected payload", i, er.Kind)
			}
			if cfg.Failures == nil {
				return nil, fmt.Errorf("sim: checkpoint event %d is a pending failure but the configuration has no failure injection", i)
			}
		case evSample:
			if payloads != 0 {
				return nil, fmt.Errorf("sim: checkpoint event %d (%s) carries an unexpected payload", i, er.Kind)
			}
			if cfg.SampleEvery <= 0 {
				return nil, fmt.Errorf("sim: checkpoint event %d is a pending sampling tick but the configuration has no sampling period", i)
			}
		default: // pass: no payload
			if payloads != 0 {
				return nil, fmt.Errorf("sim: checkpoint event %d (%s) carries an unexpected payload", i, er.Kind)
			}
		}
		cp.events = append(cp.events, rec)
	}
	return cp, nil
}
