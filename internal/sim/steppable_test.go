package sim

import (
	"testing"

	"dismem/internal/workload"
)

// steppableWorkload is a small trace with staggered arrivals so the
// engine is observably mid-flight between events.
func steppableWorkload() *workload.Workload {
	w := &workload.Workload{Name: "steppable"}
	for i := 0; i < 20; i++ {
		w.Jobs = append(w.Jobs, &workload.Job{
			ID: i + 1, Submit: int64(i * 100), Nodes: 1, MemPerNode: 500,
			Estimate: 400, BaseRuntime: 300,
		})
	}
	w.Sort()
	return w
}

func TestEngineLifecycleGuards(t *testing.T) {
	cfg := Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(); err == nil {
		t.Fatal("Finish before Start accepted")
	}
	w := steppableWorkload()
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err == nil {
		t.Fatal("second Start accepted")
	}
	e.RunAll()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if again, err := e.Finish(); err != nil || again != res {
		t.Fatal("Finish not idempotent")
	}
}

func TestEngineStepwiseEqualsRun(t *testing.T) {
	cfg := Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal(), CheckInvariants: true}
	whole, err := Run(cfg, steppableWorkload())
	if err != nil {
		t.Fatal(err)
	}

	cfg.Scheduler = easyLocal()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(steppableWorkload()); err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		before := e.Now()
		if !e.Step() {
			break
		}
		if e.Now() < before {
			t.Fatalf("clock moved backwards: %d -> %d", before, e.Now())
		}
		if e.QueueDepth() < 0 || e.RunningCount() < 0 {
			t.Fatal("negative live state")
		}
		s := e.Sample()
		if s.Running != e.RunningCount() || s.QueueDepth != e.QueueDepth() || s.Now != e.Now() {
			t.Fatalf("Sample %+v disagrees with live queries", s)
		}
	}
	stepped, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stepped.Events != whole.Events ||
		stepped.Report.MakespanSec != whole.Report.MakespanSec ||
		stepped.Report.Wait.Mean() != whole.Report.Wait.Mean() {
		t.Fatal("stepwise execution diverged from Run")
	}
}

func TestEngineRunUntilHoldsClock(t *testing.T) {
	cfg := Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(steppableWorkload()); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(550)
	if e.Now() != 550 {
		t.Fatalf("clock at %d after RunUntil(550)", e.Now())
	}
	// Arrivals at 0..500 have fired; 600.. have not.
	if got := e.Events(); got == 0 {
		t.Fatal("no events fired by 550")
	}
	if e.Done() {
		t.Fatal("done with arrivals still pending")
	}
	e.RunAll()
	if _, err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStopTruncates(t *testing.T) {
	cfg := Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(steppableWorkload()); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(500)
	e.Stop()
	if !e.Done() {
		t.Fatal("stopped engine not done")
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("truncated result not marked Stopped")
	}
	if n := res.Report.Jobs(); n == 0 || n >= 20 {
		t.Fatalf("truncated run recorded %d jobs, want a proper prefix", n)
	}
}

// samplingObserver records sample instants.
type samplingObserver struct {
	NopObserver
	at []int64
}

func (s *samplingObserver) OnSample(smp Sample) { s.at = append(s.at, smp.Now) }

func TestSamplingStopsWithLastJob(t *testing.T) {
	obs := &samplingObserver{}
	cfg := Config{
		Machine: tinyMachine(0, 0), Scheduler: easyLocal(),
		Observer: obs, SampleEvery: 50,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(steppableWorkload()); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.at) == 0 {
		t.Fatal("no samples fired")
	}
	last := res.Report.MakespanSec // last terminate instant for Submit-0 traces
	for i, at := range obs.at {
		if at%50 != 0 {
			t.Fatalf("sample %d at %d off the 50 s grid", i, at)
		}
		if at > last {
			t.Fatalf("sample at %d after the last termination %d stretched the run", at, last)
		}
	}
}
