package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dismem/internal/core"
	"dismem/internal/memmodel"
	"dismem/internal/metrics"
	"dismem/internal/scenario"
	"dismem/internal/sched"
	"dismem/internal/source"
	"dismem/internal/stats"
	"dismem/internal/workload"
)

// memaware builds the full-stack scheduler (EASY backfill + the
// paper's memory-aware placer); with the contention-sensitive model it
// exercises re-dilation, spilling and kills on the streaming path.
func memaware() *sched.Batch {
	return &sched.Batch{Order: sched.FCFS{}, Backfill: sched.BackfillEASY, Placer: core.New()}
}

// streamCfg is the shared full-stack configuration for replay tests.
func streamCfg() Config {
	return Config{
		Machine:     tinyMachine(4000, 1),
		Model:       memmodel.Bandwidth{Beta: 1, Gamma: 1},
		Scheduler:   memaware(),
		ExtendLimit: true,
	}
}

// testGenConfig calibrates the generator for tinyMachine: 1-2 node
// jobs whose footprints mix local fits and pool spills.
func testGenConfig(n int, seed uint64) workload.GenConfig {
	cfg := workload.DefaultGenConfig(n, seed, 2)
	cfg.MeanInterarrival = 400
	cfg.MemSmall = stats.Truncated{Inner: stats.LogNormal{Mu: 6, Sigma: 0.8}, Lo: 100, Hi: 900}
	cfg.MemLarge = stats.Truncated{Inner: stats.LogNormal{Mu: 7.5, Sigma: 0.5}, Lo: 1000, Hi: 2400}
	cfg.MaxMemPerNode = 2400
	return cfg
}

// testWorkload materialises testGenConfig.
func testWorkload(n int, seed uint64) *workload.Workload {
	return workload.MustGenerate(testGenConfig(n, seed))
}

func runSlice(t *testing.T, cfg Config, w *workload.Workload) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runSource(t *testing.T, cfg Config, src source.Source) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartSource(src); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// identicalResults pins the bit-identical replay contract: same
// records, same event count, same report.
func identicalResults(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.Events != b.Events {
		t.Fatalf("%s: event counts differ: %d vs %d", label, a.Events, b.Events)
	}
	ra, rb := a.Recorder.Records(), b.Recorder.Records()
	if len(ra) != len(rb) {
		t.Fatalf("%s: record counts differ: %d vs %d", label, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: record %d differs:\n%+v\n%+v", label, i, ra[i], rb[i])
		}
	}
	if *a.Report != *b.Report {
		t.Fatalf("%s: reports differ:\n%+v\n%+v", label, a.Report, b.Report)
	}
}

func TestStreamedSliceReplayBitIdentical(t *testing.T) {
	// The pinned golden test of the streaming refactor: replaying a
	// workload through Start (slice) and through StartSource must be
	// bit-identical — records, event count, report.
	w := testWorkload(300, 1)
	a := runSlice(t, streamCfg(), w)
	b := runSource(t, streamCfg(), source.FromWorkload(w))
	identicalResults(t, a, b, "slice vs source")
}

func TestStreamedSWFReplayBitIdentical(t *testing.T) {
	// SWFSource replay must equal ReadSWF + slice replay of the same
	// trace bytes.
	w := testWorkload(300, 2)
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, w); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	wl, _, err := workload.ReadSWF(bytes.NewReader(data), workload.SWFReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := runSlice(t, streamCfg(), wl)
	b := runSource(t, streamCfg(), source.SWF(bytes.NewReader(data), workload.SWFReadOptions{}))
	identicalResults(t, a, b, "swf slice vs swf stream")
}

func TestScenarioModulationComposesWithSource(t *testing.T) {
	// Slice path warps arrivals via workload.ModulateArrivals; the
	// source path wraps lazily via source.Modulate. Same scenario, same
	// trace, bit-identical outcome — and timed interventions ride on
	// both.
	w := testWorkload(250, 3)
	sc := scenario.MustParse(
		"at=20000 down node=1; at=40000 up node=1; from=0 period=86400 amp=0.5 diurnal; from=10000 until=30000 rate=2 surge")
	cfg := streamCfg()
	cfg.Scenario = sc
	a := runSlice(t, cfg, w)
	cfgB := streamCfg()
	cfgB.Scenario = sc
	b := runSource(t, cfgB, source.FromWorkload(w))
	identicalResults(t, a, b, "scenario slice vs source")
	if a.ScenarioEvents != b.ScenarioEvents {
		t.Fatalf("scenario events differ: %d vs %d", a.ScenarioEvents, b.ScenarioEvents)
	}
}

func TestBoundedRecordingMatchesExactEndToEnd(t *testing.T) {
	w := testWorkload(400, 4)
	exact := runSlice(t, streamCfg(), w)

	bounded := streamCfg()
	bounded.RecordSink = metrics.Discard
	got := runSource(t, bounded, source.FromWorkload(w))

	re, rb := exact.Report, got.Report
	if re.Completed != rb.Completed || re.Killed != rb.Killed || re.Rejected != rb.Rejected ||
		re.Wait != rb.Wait || re.BSld != rb.BSld || re.NodeUtil != rb.NodeUtil ||
		re.PoolUtil != rb.PoolUtil || re.MakespanSec != rb.MakespanSec ||
		re.ThroughputPerHour != rb.ThroughputPerHour {
		t.Fatalf("bounded run diverges beyond percentiles:\nexact   %+v\nbounded %+v", re, rb)
	}
	for _, q := range []struct {
		name     string
		ex, appr float64
	}{
		{"P95Wait", re.P95Wait, rb.P95Wait},
		{"P99Wait", re.P99Wait, rb.P99Wait},
		{"P95BSld", re.P95BSld, rb.P95BSld},
	} {
		if q.ex == 0 && q.appr == 0 {
			continue
		}
		if rel := math.Abs(q.appr-q.ex) / math.Max(q.ex, 1); rel > 0.1 {
			t.Errorf("%s: P² %g vs exact %g (rel err %.3f)", q.name, q.appr, q.ex, rel)
		}
	}
	if got.Recorder.Records() != nil {
		t.Fatal("bounded run must retain no records")
	}
	fe, fb := exact.Recorder.Fairness(), got.Recorder.Fairness()
	if fe.JainWait != fb.JainWait {
		t.Fatalf("fairness differs: %g vs %g", fe.JainWait, fb.JainWait)
	}
}

func TestArrivalHeapResidencyIsBounded(t *testing.T) {
	// The point of streaming: at every instant the heap holds at most
	// one pending arrival + one end event per running job + one
	// coalesced pass event (no failures/sampling/scenario here), no
	// matter how long the trace is.
	w := testWorkload(500, 5)
	e, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(w); err != nil {
		t.Fatal(err)
	}
	for e.Step() {
		if limit := e.RunningCount() + 2; e.sim.Pending() > limit {
			t.Fatalf("heap residency %d exceeds running+2 = %d at t=%d",
				e.sim.Pending(), limit, e.Now())
		}
	}
	if _, err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBrokenSourceSurfacesAtFinish(t *testing.T) {
	// An out-of-order stream stops producing; in-flight work drains and
	// Finish reports the error instead of pretending the run completed.
	jobs := []*workload.Job{
		{ID: 1, Submit: 100, Nodes: 1, MemPerNode: 1, Estimate: 50, BaseRuntime: 10},
		{ID: 2, Submit: 50, Nodes: 1, MemPerNode: 1, Estimate: 50, BaseRuntime: 10},
	}
	e, err := New(Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartSource(source.FromJobs(jobs)); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if _, err := e.Finish(); err == nil || !strings.Contains(err.Error(), "before previous arrival") {
		t.Fatalf("want out-of-order source error from Finish, got %v", err)
	}
}

func TestEmptySourceFinishesCleanly(t *testing.T) {
	e, err := New(Config{Machine: tinyMachine(0, 0), Scheduler: easyLocal()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartSource(source.FromJobs(nil)); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobs() != 0 || res.Events != 0 {
		t.Fatalf("empty source produced %d jobs, %d events", res.Report.Jobs(), res.Events)
	}
}
