package source

import (
	"fmt"
	"io"
	"os"

	"dismem/internal/workload"
)

// SWFFileSource streams jobs from an SWF trace file by path. It decodes
// like SWFSource — one job buffered ahead, O(1) memory, submit-sorted
// trace required — but because it owns the path it can duplicate its
// cursor: Fork captures the decoder's byte offset and re-opens the file
// on first use, so file-backed streamed replays checkpoint/fork like
// every other source (reader-backed SWFSource still cannot; an
// io.Reader's position is not duplicable).
//
// Fork itself does no I/O and never fails: the file is opened lazily at
// the captured offset on the fork's first pull. Sources close their
// file at end of trace or on error; call Close to release the handle
// when abandoning a source mid-trace.
type SWFFileSource struct {
	path string

	f   *os.File
	dec *workload.SWFDecoder

	// cursor holds the decoder position to resume from; it is the
	// construction state of an unopened source (offset 0 for a fresh
	// one) and is refreshed on Fork from the live decoder.
	cursor workload.SWFDecoderState
	opened bool

	next *workload.Job
	last int64
	err  error
}

// SWFFile returns a source decoding lazily from the trace file at path.
// The file is opened on first pull; an unreadable path surfaces as a
// production error (Err), like any mid-stream failure.
func SWFFile(path string, opt workload.SWFReadOptions) *SWFFileSource {
	return &SWFFileSource{path: path, cursor: workload.SWFDecoderState{Opt: opt}}
}

// open opens the file at the cursor and primes the one-job lookahead
// when this source was not forked mid-stream (a fork inherits its
// parent's buffered job; opening must not consume another).
func (s *SWFFileSource) open() {
	if s.opened {
		return
	}
	s.opened = true
	if s.err != nil || s.cursor.Done {
		return
	}
	f, err := os.Open(s.path)
	if err != nil {
		s.err = fmt.Errorf("source: swf file: %w", err)
		return
	}
	if _, err := f.Seek(s.cursor.Offset, io.SeekStart); err != nil {
		f.Close()
		s.err = fmt.Errorf("source: swf file %s: seeking to cursor %d: %w", s.path, s.cursor.Offset, err)
		return
	}
	s.f = f
	s.dec = workload.NewSWFDecoderAt(f, s.cursor)
	if s.next == nil {
		s.fill()
	}
}

func (s *SWFFileSource) fill() {
	s.next = nil
	if s.err != nil || s.dec == nil {
		return
	}
	j, ok := s.dec.Next()
	if !ok {
		s.err = s.dec.Err()
		s.closeFile()
		return
	}
	if j.Submit < s.last {
		s.err = fmt.Errorf("source: swf job %d arrives at %d before previous arrival %d (streaming needs a submit-sorted trace; use ReadSWF)",
			j.ID, j.Submit, s.last)
		s.closeFile()
		return
	}
	s.last = j.Submit
	s.next = j
}

// closeFile releases the handle, keeping the first error seen.
func (s *SWFFileSource) closeFile() {
	if s.f == nil {
		return
	}
	err := s.f.Close()
	s.f, s.dec = nil, nil
	if err != nil && s.err == nil {
		s.err = fmt.Errorf("source: swf file %s: %w", s.path, err)
	}
}

// Close releases the file handle early (end of trace and errors close
// it automatically). The source reports exhaustion afterwards.
func (s *SWFFileSource) Close() error {
	s.opened = true
	s.next = nil
	s.cursor.Done = true
	s.closeFile()
	return s.err
}

// Next implements Source.
func (s *SWFFileSource) Next() (*workload.Job, bool) {
	s.open()
	if s.next == nil {
		return nil, false
	}
	j := s.next
	s.fill()
	return j, true
}

// PeekSubmit implements Source.
func (s *SWFFileSource) PeekSubmit() int64 {
	s.open()
	if s.next == nil {
		return -1
	}
	return s.next.Submit
}

// Err implements Source.
func (s *SWFFileSource) Err() error { return s.err }

// Skipped returns how many unusable records the decoder dropped so far
// (0 before the first pull and on a forked, not-yet-opened source whose
// cursor already accounts for them).
func (s *SWFFileSource) Skipped() int {
	if s.dec != nil {
		return s.dec.Skipped()
	}
	return s.cursor.Skipped
}

// state returns the decoder cursor describing this source's position:
// the live decoder's when open, the pending resume cursor otherwise.
func (s *SWFFileSource) state() (workload.SWFDecoderState, error) {
	if s.dec != nil {
		return s.dec.State()
	}
	return s.cursor, nil
}

// Fork implements Forkable: the fork shares the buffered lookahead job
// (jobs are immutable) and re-opens the file at the captured byte
// offset on its first pull. A source whose stream already failed forks
// into a source carrying the same error.
func (s *SWFFileSource) Fork() Source {
	c := &SWFFileSource{path: s.path, next: s.next, last: s.last, err: s.err}
	st, err := s.state()
	if err != nil {
		// The decoder failed; the fork reports the same broken stream.
		c.cursor = workload.SWFDecoderState{Opt: s.cursor.Opt, Done: true}
		return c
	}
	c.cursor = st
	if s.opened && s.dec == nil {
		// Parent hit end of trace (or was closed): nothing left to read.
		c.cursor.Done = true
	}
	return c
}
