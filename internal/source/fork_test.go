package source

import (
	"testing"

	"dismem/internal/workload"
)

// sameJobs compares two job sequences field by field.
func sameJobSeq(t *testing.T, a, b []*workload.Job) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length %d != %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d: %+v != %+v", i, *a[i], *b[i])
		}
	}
}

// forkAfter pulls k jobs from src, forks, and verifies the fork and the
// original produce identical remainders.
func forkAfter(t *testing.T, src Source, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("source exhausted at %d < %d", i, k)
		}
	}
	f, ok := src.(Forkable)
	if !ok {
		t.Fatalf("%T is not Forkable", src)
	}
	fork := f.Fork()
	if fork == nil {
		t.Fatalf("%T.Fork returned nil", src)
	}
	if got, want := fork.PeekSubmit(), src.PeekSubmit(); got != want {
		t.Fatalf("fork peeks %d, original %d", got, want)
	}
	sameJobSeq(t, drain(t, src), drain(t, fork))
}

func TestSliceSourceFork(t *testing.T) {
	wl := workload.MustGenerate(workload.DefaultGenConfig(50, 1, 256))
	forkAfter(t, FromWorkload(wl), 20)
}

func TestGenSourceFork(t *testing.T) {
	cfg := workload.DefaultGenConfig(0, 7, 256)
	st, err := workload.NewGenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	forkAfter(t, Gen(st, 60, 0), 25)
}

func TestLublinSourceFork(t *testing.T) {
	cfg := workload.DefaultLublinConfig(0, 3, 256)
	st, err := workload.NewLublinStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	forkAfter(t, Gen(st, 40, 0), 10)
}

func TestModulatedFork(t *testing.T) {
	wl := workload.MustGenerate(workload.DefaultGenConfig(50, 2, 256))
	rate := func(ts float64) float64 {
		if ts < 10000 {
			return 2
		}
		return 0.5
	}
	forkAfter(t, Modulate(FromWorkload(wl), rate), 15)
}

// brokenStream is a non-cloneable generator stream.
type brokenStream struct{}

func (brokenStream) Next() (*workload.Job, bool) { return nil, false }

// TestGenSourceForkUncloneable pins the nil-return contract for
// streams that cannot be cloned.
func TestGenSourceForkUncloneable(t *testing.T) {
	if f := Gen(brokenStream{}, 10, 0).Fork(); f != nil {
		t.Fatalf("Fork of uncloneable stream = %T, want nil", f)
	}
}

// TestForkIndependence pins that draining a fork does not advance the
// original cursor.
func TestForkIndependence(t *testing.T) {
	wl := workload.MustGenerate(workload.DefaultGenConfig(30, 5, 256))
	src := FromWorkload(wl)
	for i := 0; i < 10; i++ {
		src.Next()
	}
	fork := src.Fork()
	forked := drain(t, fork)
	if got := src.PeekSubmit(); got != forked[0].Submit {
		t.Fatalf("original cursor moved: peek %d, want %d", got, forked[0].Submit)
	}
	sameJobSeq(t, drain(t, src), forked)
}
