// Package source streams workload jobs into a simulation instead of
// materialising them: a Source yields jobs one at a time in
// nondecreasing submit order, so the engine can keep exactly one
// pending arrival in its event heap and memory stays bounded by the
// live state (running + queued jobs), not the trace length. That is
// what makes archive-scale trace replay (millions of jobs) and
// open-ended saturation runs possible.
//
// Concrete sources: FromWorkload wraps an in-memory Workload; SWF
// decodes a trace lazily from an io.Reader (see workload.SWFDecoder);
// Gen adapts the lazy synthetic generators (workload.GenStream,
// workload.LublinStream) with an optional job-count or time-horizon
// cap; Modulate wraps any source with the scenario arrival warp so
// surge/diurnal composes with streaming.
//
// Determinism contract: a Source is pulled from exactly one goroutine,
// and the same construction (trace bytes, generator config and seed,
// modulation) always yields the same job sequence — replays through a
// Source are bit-identical per seed, like every other layer.
package source

import (
	"fmt"

	"dismem/internal/workload"
)

// Source is a pull-based job stream in nondecreasing Submit order.
// Implementations are single-goroutine state, like the engine itself.
type Source interface {
	// Next returns the next job, or (nil, false) when the source is
	// exhausted (or failed; see Err). Callers own the returned job and
	// must treat it as immutable, matching Workload jobs.
	Next() (*workload.Job, bool)
	// PeekSubmit returns the submit time of the job the next Next call
	// will return, or -1 when the source is exhausted.
	PeekSubmit() int64
	// Err returns the first production error (decode failure, invalid
	// job), or nil. A source that errors reports exhaustion from Next;
	// consumers distinguish "trace ended" from "trace broke" here.
	Err() error
}

// Forkable is implemented by sources whose cursor can be duplicated:
// Fork returns an independent source that produces exactly the jobs the
// original has yet to produce, leaving the original undisturbed. It is
// the source half of simulation checkpointing — a checkpoint freezes a
// fork of the live source, and each resumed future forks it again. A
// Fork may return nil when the source turns out not to be duplicable
// after all (e.g. a GenSource over a custom, non-cloneable stream);
// callers must treat nil as "not forkable".
//
// SliceSource, GenSource (over the cloneable generator streams) and
// Modulate-wrapped forkable sources implement it. SWFSource does not:
// an io.Reader's position cannot be duplicated, so checkpoint/fork of a
// streamed SWF replay requires materialising the trace first
// (workload.ReadSWF).
type Forkable interface {
	Source
	Fork() Source
}

// SliceSource streams an in-memory job slice: the adapter that lets the
// classic Workload path run through the streaming engine unchanged.
type SliceSource struct {
	jobs []*workload.Job
	i    int
}

// FromWorkload wraps w's jobs (already sorted by Workload convention).
// The workload is not copied; it must not be mutated while streaming.
func FromWorkload(w *workload.Workload) *SliceSource {
	return &SliceSource{jobs: w.Jobs}
}

// FromJobs wraps a job slice sorted by (Submit, ID).
func FromJobs(jobs []*workload.Job) *SliceSource {
	return &SliceSource{jobs: jobs}
}

// Next implements Source.
func (s *SliceSource) Next() (*workload.Job, bool) {
	if s.i >= len(s.jobs) {
		return nil, false
	}
	j := s.jobs[s.i]
	s.i++
	return j, true
}

// PeekSubmit implements Source.
func (s *SliceSource) PeekSubmit() int64 {
	if s.i >= len(s.jobs) {
		return -1
	}
	return s.jobs[s.i].Submit
}

// Err implements Source.
func (s *SliceSource) Err() error { return nil }

// Fork implements Forkable: the jobs slice is shared (jobs are
// immutable), only the cursor is copied.
func (s *SliceSource) Fork() Source {
	c := *s
	return &c
}

// JobStream is the minimal lazy producer the generators implement
// (workload.GenStream, workload.LublinStream).
type JobStream interface {
	Next() (*workload.Job, bool)
}

// GenSource adapts a generator stream to a Source with optional caps:
// maxJobs bounds the job count (0 = unbounded) and horizonSec stops
// production at the first job submitted after that instant (0 = no
// horizon). With both zero the source produces for as long as the
// underlying stream does — the open-ended saturation/soak form.
type GenSource struct {
	stream   JobStream
	maxJobs  int
	horizon  int64
	produced int
	next     *workload.Job
	done     bool
}

// Gen wraps stream with the given caps.
func Gen(stream JobStream, maxJobs int, horizonSec int64) *GenSource {
	g := &GenSource{stream: stream, maxJobs: maxJobs, horizon: horizonSec}
	g.fill()
	return g
}

func (g *GenSource) fill() {
	g.next = nil
	if g.done || (g.maxJobs > 0 && g.produced >= g.maxJobs) {
		g.done = true
		return
	}
	j, ok := g.stream.Next()
	if !ok || (g.horizon > 0 && j.Submit > g.horizon) {
		g.done = true
		return
	}
	g.produced++
	g.next = j
}

// Next implements Source.
func (g *GenSource) Next() (*workload.Job, bool) {
	if g.next == nil {
		return nil, false
	}
	j := g.next
	g.fill()
	return j, true
}

// Fork implements Forkable for sources over cloneable generator
// streams (both workload generator streams are; custom streams may opt
// in by implementing CloneJobStream). It returns nil when the
// underlying stream cannot be cloned, which callers must treat as "not
// forkable after all".
func (g *GenSource) Fork() Source {
	var st JobStream
	switch s := g.stream.(type) {
	case *workload.GenStream:
		st = s.Clone()
	case *workload.LublinStream:
		st = s.Clone()
	case interface{ CloneJobStream() JobStream }:
		st = s.CloneJobStream()
	default:
		return nil
	}
	c := *g
	c.stream = st
	return &c
}

// PeekSubmit implements Source.
func (g *GenSource) PeekSubmit() int64 {
	if g.next == nil {
		return -1
	}
	return g.next.Submit
}

// Err implements Source.
func (g *GenSource) Err() error { return nil }

// modulated applies the deterministic gap-stretching arrival warp to an
// inner source: the lazy form of workload.ModulateArrivals, same
// transform, same clamping, job for job.
type modulated struct {
	inner Source
	rate  func(t float64) float64
	prev  int64   // previous original submit time
	t     float64 // transformed clock
	next  *workload.Job
}

// Modulate wraps src so every job's submit time is rewarped by the
// time-varying rate multiplier, exactly as workload.ModulateArrivals
// does for a materialised workload (pinned by tests). Jobs are copied
// before their Submit changes; the inner source's jobs are never
// mutated. A nil rate returns src unchanged.
func Modulate(src Source, rate func(t float64) float64) Source {
	if rate == nil {
		return src
	}
	m := &modulated{inner: src, rate: rate}
	m.fill()
	return m
}

func (m *modulated) fill() {
	m.next = nil
	j, ok := m.inner.Next()
	if !ok {
		return
	}
	cp := *j
	gap := float64(cp.Submit - m.prev)
	m.prev = cp.Submit
	r := m.rate(m.t)
	if r < 1e-9 {
		r = 1e-9 // keep the transform finite for pathological rates
	}
	m.t += gap / r
	cp.Submit = int64(m.t)
	m.next = &cp
}

// Next implements Source.
func (m *modulated) Next() (*workload.Job, bool) {
	if m.next == nil {
		return nil, false
	}
	j := m.next
	m.fill()
	return j, true
}

// PeekSubmit implements Source.
func (m *modulated) PeekSubmit() int64 {
	if m.next == nil {
		return -1
	}
	return m.next.Submit
}

// Err implements Source.
func (m *modulated) Err() error { return m.inner.Err() }

// Fork implements Forkable when the inner source does: the warp state
// (transformed clock, previous submit, buffered job) is copied and the
// inner cursor forked, so both sides produce the identical remaining
// warped sequence. Returns nil when the inner source cannot fork.
func (m *modulated) Fork() Source {
	f, ok := m.inner.(Forkable)
	if !ok {
		return nil
	}
	inner := f.Fork()
	if inner == nil {
		return nil
	}
	c := *m
	c.inner = inner
	return &c
}

// Validate checks one streamed job the way Workload.Validate checks a
// batch, minus the whole-trace properties a stream cannot afford
// (duplicate-ID detection is O(jobs) memory): structural job validity
// plus nondecreasing submit order against the previous submit time.
func Validate(j *workload.Job, prevSubmit int64) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.Submit < prevSubmit {
		return fmt.Errorf("source: job %d arrives at %d before previous arrival %d (stream must be sorted by submit)",
			j.ID, j.Submit, prevSubmit)
	}
	return nil
}
