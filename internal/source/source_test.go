package source

import (
	"bytes"
	"strings"
	"testing"

	"dismem/internal/workload"
)

func drain(t *testing.T, s Source) []*workload.Job {
	t.Helper()
	var out []*workload.Job
	for {
		if peek := s.PeekSubmit(); peek >= 0 {
			j, ok := s.Next()
			if !ok {
				t.Fatalf("PeekSubmit=%d but Next ended", peek)
			}
			if j.Submit != peek {
				t.Fatalf("PeekSubmit=%d but job submits at %d", peek, j.Submit)
			}
			out = append(out, j)
			continue
		}
		if _, ok := s.Next(); ok {
			t.Fatal("PeekSubmit=-1 but Next produced a job")
		}
		return out
	}
}

func sameJobs(t *testing.T, got []*workload.Job, want []*workload.Job, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d jobs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Fatalf("%s: job %d: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

func TestSliceSourceYieldsWorkloadInOrder(t *testing.T) {
	wl := workload.MustGenerate(workload.DefaultGenConfig(100, 3, 64))
	sameJobs(t, drain(t, FromWorkload(wl)), wl.Jobs, "slice")
}

func TestGenSourceCapEqualsGenerate(t *testing.T) {
	// The tentpole property: a capped lazy source is the materialised
	// workload, job for job — for both generator models.
	cfg := workload.DefaultGenConfig(0, 11, 128) // unbounded stream
	st, err := workload.NewGenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capped := drain(t, Gen(st, 300, 0))
	cfg.Jobs = 300
	want := workload.MustGenerate(cfg)
	sameJobs(t, capped, want.Jobs, "gen cap")

	lcfg := workload.DefaultLublinConfig(0, 6, 128)
	lst, err := workload.NewLublinStream(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	lcapped := drain(t, Gen(lst, 300, 0))
	lcfg.Jobs = 300
	lwant := workload.MustGenerateLublin(lcfg)
	sameJobs(t, lcapped, lwant.Jobs, "lublin cap")
}

func TestGenSourceHorizonCap(t *testing.T) {
	cfg := workload.DefaultGenConfig(0, 1, 64)
	st, err := workload.NewGenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 6 * 3600
	jobs := drain(t, Gen(st, 0, horizon))
	if len(jobs) == 0 {
		t.Fatal("horizon-capped source produced nothing")
	}
	for _, j := range jobs {
		if j.Submit > horizon {
			t.Fatalf("job %d submits at %d past horizon %d", j.ID, j.Submit, horizon)
		}
	}
	// The cap is "first job past the horizon ends the stream", so the
	// prefix must match an uncapped regeneration.
	st2, _ := workload.NewGenStream(cfg)
	for i, want := range jobs {
		got, _ := st2.Next()
		if *got != *want {
			t.Fatalf("job %d differs from uncapped stream", i)
		}
	}
}

func TestModulateMatchesModulateArrivals(t *testing.T) {
	// The lazy warp and the batch warp are the same transform.
	wl := workload.MustGenerate(workload.DefaultGenConfig(400, 5, 64))
	rate := func(tt float64) float64 {
		if tt >= 3600 && tt < 7200 {
			return 3 // surge hour
		}
		return 0.8
	}
	want := workload.ModulateArrivals(wl, rate)
	got := drain(t, Modulate(FromWorkload(wl), rate))
	sameJobs(t, got, want.Jobs, "modulate")
	// The inner workload must be untouched (Modulate copies).
	fresh := workload.MustGenerate(workload.DefaultGenConfig(400, 5, 64))
	sameJobs(t, wl.Jobs, fresh.Jobs, "input unmutated")
}

func TestModulateNilRateIsIdentity(t *testing.T) {
	wl := workload.MustGenerate(workload.DefaultGenConfig(10, 1, 16))
	src := FromWorkload(wl)
	if Modulate(src, nil) != Source(src) {
		t.Fatal("nil rate should return the source unchanged")
	}
}

func TestSWFSourceMatchesReadSWF(t *testing.T) {
	wl := workload.MustGenerate(workload.DefaultGenConfig(300, 7, 128))
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, wl); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	want, skipped, err := workload.ReadSWF(bytes.NewReader(data), workload.SWFReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := SWF(bytes.NewReader(data), workload.SWFReadOptions{})
	got := drain(t, src)
	sameJobs(t, got, want.Jobs, "swf stream")
	if src.Err() != nil || src.Skipped() != skipped {
		t.Fatalf("err=%v skipped=%d, want nil and %d", src.Err(), src.Skipped(), skipped)
	}
}

func TestSWFSourceRejectsUnsortedTrace(t *testing.T) {
	trace := "1 100 -1 50 2 -1 -1 2 60 1024 1 7 0 -1 -1 -1 -1 -1\n" +
		"2 10 -1 50 2 -1 -1 2 60 1024 1 7 0 -1 -1 -1 -1 -1\n"
	src := SWF(strings.NewReader(trace), workload.SWFReadOptions{})
	if j, ok := src.Next(); !ok || j.ID != 1 {
		t.Fatalf("first job should decode, got %v %v", j, ok)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("out-of-order record should end the stream")
	}
	if src.Err() == nil || !strings.Contains(src.Err().Error(), "before previous arrival") {
		t.Fatalf("want out-of-order error, got %v", src.Err())
	}
}

func TestValidateStreamedJob(t *testing.T) {
	good := &workload.Job{ID: 1, Submit: 10, Nodes: 1, MemPerNode: 1, Estimate: 10, BaseRuntime: 5}
	if err := Validate(good, 10); err != nil {
		t.Fatalf("valid in-order job rejected: %v", err)
	}
	if err := Validate(good, 11); err == nil {
		t.Fatal("out-of-order job accepted")
	}
	bad := &workload.Job{ID: 0}
	if err := Validate(bad, 0); err == nil {
		t.Fatal("invalid job accepted")
	}
}
