package source

import (
	"fmt"

	"dismem/internal/workload"
)

// This file is the durable-checkpoint face of the package. A
// CursorState is the portable form of a source's position — a small
// tagged union over the concrete source kinds — and Durable is the
// capability interface a source implements to produce one. FromCursor
// rebuilds a live source from a cursor; the restored source produces
// exactly the jobs the captured one had yet to produce.
//
// Reader-backed SWFSource is deliberately not Durable: an io.Reader's
// position cannot be reconstructed in another process. Use SWFFile for
// trace replays that must survive a durable checkpoint.

// Cursor kind tags.
const (
	cursorSlice     = "slice"
	cursorGen       = "gen"
	cursorLublin    = "lublin"
	cursorSWFFile   = "swf-file"
	cursorModulated = "modulated"
)

// CursorState is the portable serialized position of a source. Kind
// selects which of the payload fields apply.
type CursorState struct {
	Kind string `json:"kind"`

	// Jobs is the remaining job suffix of a slice source. Serializing a
	// slice cursor costs O(remaining jobs); archive-scale replays should
	// stream from a file instead.
	Jobs []*workload.Job `json:"jobs,omitempty"`

	// Gen/Lublin carry the generator stream cursor; Produced, MaxJobs,
	// Horizon and Done carry the adapter caps around it.
	Gen      *workload.GenStreamState    `json:"gen,omitempty"`
	Lublin   *workload.LublinStreamState `json:"lublin,omitempty"`
	Produced int                         `json:"produced,omitempty"`
	MaxJobs  int                         `json:"maxJobs,omitempty"`
	Horizon  int64                       `json:"horizon,omitempty"`
	Done     bool                        `json:"done,omitempty"`

	// Path and Dec locate a file-backed SWF source's position; Last is
	// its sorted-submit watermark. The path is stored as given, so a
	// checkpoint restored in another working directory needs either an
	// absolute path or the same layout.
	Path string                    `json:"path,omitempty"`
	Dec  *workload.SWFDecoderState `json:"dec,omitempty"`
	Last int64                     `json:"last,omitempty"`

	// Next is the buffered one-ahead job of the gen, swf-file and
	// modulated kinds.
	Next *workload.Job `json:"next,omitempty"`

	// Inner, Prev and T are the modulated wrapper's warp state around
	// its inner source's cursor.
	Inner *CursorState `json:"inner,omitempty"`
	Prev  int64        `json:"prev,omitempty"`
	T     float64      `json:"t,omitempty"`
}

// Durable is implemented by sources whose cursor can be serialized for
// a durable checkpoint. Cursor returns the source's current position;
// it fails when the source (or an inner layer) has no serialized form
// — a custom JobStream, a reader-backed SWF stream, a failed stream.
type Durable interface {
	Source
	Cursor() (*CursorState, error)
}

// Cursor implements Durable: the remaining suffix of the slice.
func (s *SliceSource) Cursor() (*CursorState, error) {
	return &CursorState{Kind: cursorSlice, Jobs: s.jobs[s.i:]}, nil
}

// Cursor implements Durable for sources over the two workload generator
// streams. A custom JobStream has no serialized form even when it is
// cloneable, so the source errors here.
func (g *GenSource) Cursor() (*CursorState, error) {
	st := &CursorState{
		Kind: cursorGen, Produced: g.produced,
		MaxJobs: g.maxJobs, Horizon: g.horizon,
		Next: g.next, Done: g.done,
	}
	switch s := g.stream.(type) {
	case *workload.GenStream:
		gen, err := s.State()
		if err != nil {
			return nil, err
		}
		st.Gen = gen
	case *workload.LublinStream:
		lub, err := s.State()
		if err != nil {
			return nil, err
		}
		st.Kind, st.Lublin = cursorLublin, lub
	default:
		return nil, fmt.Errorf("source: job stream %T has no serialized cursor (durable checkpoints support the workload generator streams)", g.stream)
	}
	return st, nil
}

// Cursor implements Durable: the trace path plus the decoder's byte
// offset. A source whose stream failed has no resumable position.
func (s *SWFFileSource) Cursor() (*CursorState, error) {
	if s.err != nil {
		return nil, fmt.Errorf("source: swf file source failed, no resumable cursor: %w", s.err)
	}
	dec, err := s.state()
	if err != nil {
		return nil, err
	}
	if s.opened && s.dec == nil {
		dec.Done = true
	}
	return &CursorState{Kind: cursorSWFFile, Path: s.path, Dec: &dec, Last: s.last, Next: s.next}, nil
}

// Cursor implements Durable when the inner source does.
func (m *modulated) Cursor() (*CursorState, error) {
	d, ok := m.inner.(Durable)
	if !ok {
		return nil, fmt.Errorf("source: modulated inner source %T has no serialized cursor", m.inner)
	}
	inner, err := d.Cursor()
	if err != nil {
		return nil, err
	}
	return &CursorState{Kind: cursorModulated, Inner: inner, Prev: m.prev, T: m.t, Next: m.next}, nil
}

// FromCursor rebuilds a live source from a cursor. rate is the arrival
// modulation function for a modulated cursor (the same scenario rate
// the original run was wrapped with); it must be non-nil exactly when
// the cursor's outermost kind is modulated.
func FromCursor(st *CursorState, rate func(t float64) float64) (Source, error) {
	if st == nil {
		return nil, fmt.Errorf("source: nil cursor")
	}
	if st.Kind != cursorModulated && rate != nil {
		return nil, fmt.Errorf("source: modulating scenario with a non-modulated %q source cursor", st.Kind)
	}
	switch st.Kind {
	case cursorSlice:
		return FromJobs(st.Jobs), nil
	case cursorGen, cursorLublin:
		var stream JobStream
		switch {
		case st.Kind == cursorGen && st.Gen != nil && st.Lublin == nil:
			s, err := workload.GenStreamFromState(st.Gen)
			if err != nil {
				return nil, err
			}
			stream = s
		case st.Kind == cursorLublin && st.Lublin != nil && st.Gen == nil:
			s, err := workload.LublinStreamFromState(st.Lublin)
			if err != nil {
				return nil, err
			}
			stream = s
		default:
			return nil, fmt.Errorf("source: %q cursor carries the wrong generator state", st.Kind)
		}
		if st.Produced < 0 || (st.MaxJobs > 0 && st.Produced > st.MaxJobs) {
			return nil, fmt.Errorf("source: generator cursor produced=%d outside [0, %d]", st.Produced, st.MaxJobs)
		}
		return &GenSource{
			stream: stream, maxJobs: st.MaxJobs, horizon: st.Horizon,
			produced: st.Produced, next: st.Next, done: st.Done,
		}, nil
	case cursorSWFFile:
		if st.Dec == nil {
			return nil, fmt.Errorf("source: swf-file cursor has no decoder state")
		}
		if st.Path == "" {
			return nil, fmt.Errorf("source: swf-file cursor has no path")
		}
		return &SWFFileSource{path: st.Path, cursor: *st.Dec, next: st.Next, last: st.Last}, nil
	case cursorModulated:
		if rate == nil {
			return nil, fmt.Errorf("source: modulated cursor needs the scenario rate function to restore")
		}
		inner, err := FromCursor(st.Inner, nil)
		if err != nil {
			return nil, err
		}
		return &modulated{inner: inner, rate: rate, prev: st.Prev, t: st.T, next: st.Next}, nil
	default:
		return nil, fmt.Errorf("source: unknown cursor kind %q", st.Kind)
	}
}
