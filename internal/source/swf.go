package source

import (
	"fmt"
	"io"

	"dismem/internal/workload"
)

// SWFSource streams jobs from an SWF trace without materialising it:
// one decoded job buffered ahead (for PeekSubmit), O(1) memory
// regardless of trace length. The trace must already be sorted by
// submit time — the Parallel Workloads Archive convention — because a
// stream cannot sort; an out-of-order record ends the stream with an
// error (use workload.ReadSWF for traces that need sorting).
type SWFSource struct {
	dec  *workload.SWFDecoder
	next *workload.Job
	last int64
	err  error
}

// SWF returns a source decoding lazily from r. The caller keeps
// ownership of r (close files after the run).
func SWF(r io.Reader, opt workload.SWFReadOptions) *SWFSource {
	s := &SWFSource{dec: workload.NewSWFDecoder(r, opt)}
	s.fill()
	return s
}

func (s *SWFSource) fill() {
	s.next = nil
	if s.err != nil {
		return
	}
	j, ok := s.dec.Next()
	if !ok {
		s.err = s.dec.Err()
		return
	}
	if j.Submit < s.last {
		s.err = fmt.Errorf("source: swf job %d arrives at %d before previous arrival %d (streaming needs a submit-sorted trace; use ReadSWF)",
			j.ID, j.Submit, s.last)
		return
	}
	s.last = j.Submit
	s.next = j
}

// Next implements Source.
func (s *SWFSource) Next() (*workload.Job, bool) {
	if s.next == nil {
		return nil, false
	}
	j := s.next
	s.fill()
	return j, true
}

// PeekSubmit implements Source.
func (s *SWFSource) PeekSubmit() int64 {
	if s.next == nil {
		return -1
	}
	return s.next.Submit
}

// Err implements Source.
func (s *SWFSource) Err() error { return s.err }

// Skipped returns how many unusable records the decoder dropped so far.
func (s *SWFSource) Skipped() int { return s.dec.Skipped() }
