// Package spec implements the composable policy grammar of the public
// API: a scheduling policy is described by a short string of
// space-separated key=value terms,
//
//	"order=sjf backfill=easy placer=memaware cap=3 patience=1800"
//
// which Parse compiles into a sched.Batch chassis. The grammar spans
// the full cross-product of queue orders, backfill disciplines,
// placement policies and chassis knobs, so scenario sweeps are no
// longer limited to a hand-enumerated policy list. Every legacy policy
// name of the evaluation ("memaware", "easy-local", ...) is kept as an
// alias that expands to its canonical spec and resolves through the
// same parser.
package spec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dismem/internal/core"
	"dismem/internal/sched"
)

// PlacerConfig carries the spec terms addressed to the placement
// policy. Pointer fields distinguish "not specified" from an explicit
// zero (cap=0 disables the memaware slowdown cap).
type PlacerConfig struct {
	Cap     *float64 // cap=<float>: max admissible predicted dilation
	Balance *bool    // balance=on|off: pool-pressure balancing
	Shape   *bool    // shape=on|off: cross-rack traffic shaping
}

// empty reports whether no placer term was given.
func (pc PlacerConfig) empty() bool {
	return pc.Cap == nil && pc.Balance == nil && pc.Shape == nil
}

// firstSet names one set placer term, for error messages about placers
// that take no parameters.
func (pc PlacerConfig) firstSet() string {
	switch {
	case pc.Cap != nil:
		return "cap"
	case pc.Balance != nil:
		return "balance"
	default:
		return "shape"
	}
}

// PlacerFactory builds a fresh placer from the spec's placer terms.
type PlacerFactory func(pc PlacerConfig) (sched.Placer, error)

// simpleFactory wraps a parameterless placer constructor, rejecting any
// placer term in the spec.
func simpleFactory(name string, f func() sched.Placer) PlacerFactory {
	return func(pc PlacerConfig) (sched.Placer, error) {
		if !pc.empty() {
			return nil, fmt.Errorf("spec: placer %q does not accept %s=", name, pc.firstSet())
		}
		return f(), nil
	}
}

// placers maps placer names to factories. The builtins mirror the
// evaluation's placement policies; RegisterPlacer extends the map.
var placers = map[string]PlacerFactory{
	"local": simpleFactory("local", func() sched.Placer { return sched.LocalOnly{} }),
	"spill": simpleFactory("spill", func() sched.Placer { return sched.Spill{} }),
	"memaware": func(pc PlacerConfig) (sched.Placer, error) {
		p := core.New()
		if pc.Cap != nil {
			p.SlowdownCap = *pc.Cap
		}
		if pc.Balance != nil {
			p.Balance = *pc.Balance
		}
		if pc.Shape != nil {
			p.Shape = *pc.Shape
		}
		return p, nil
	},
}

// RegisterPlacer adds a user-defined placement policy under name, so
// spec strings can select it with placer=<name>. The factory must
// return a fresh instance per call (schedulers are per-simulation
// state). Parameterless: specs naming it must not carry cap/balance/
// shape terms. Errors on empty or already-registered names.
func RegisterPlacer(name string, factory func() sched.Placer) error {
	if name == "" || factory == nil {
		return fmt.Errorf("spec: RegisterPlacer needs a name and a factory")
	}
	if strings.ContainsAny(name, "= \t\n") {
		return fmt.Errorf("spec: placer name %q may not contain spaces or '='", name)
	}
	if _, dup := placers[name]; dup {
		return fmt.Errorf("spec: placer %q already registered", name)
	}
	placers[name] = simpleFactory(name, factory)
	return nil
}

// Placers returns the selectable placer names, sorted.
func Placers() []string {
	out := make([]string, 0, len(placers))
	for name := range placers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// aliases maps every legacy policy name to its canonical spec. The
// expansions reproduce the retired hand-written constructors exactly,
// so legacy names stay bit-identical through the parser.
var aliases = map[string]string{
	// Conventional baselines: local DRAM only.
	"fcfs-local": "order=fcfs backfill=none placer=local",
	"easy-local": "order=fcfs backfill=easy placer=local",
	"cons-local": "order=fcfs backfill=conservative placer=local",
	"sjf-local":  "order=sjf backfill=easy placer=local",
	"wfp-local":  "order=wfp backfill=easy placer=local",
	// Disaggregation-oblivious spill: uses the pool, ignores slowdown.
	"easy-oblivious": "order=fcfs backfill=easy placer=spill",
	"cons-oblivious": "order=fcfs backfill=conservative placer=spill",
	// The paper's contribution and its ablations.
	"memaware":         "order=fcfs backfill=easy placer=memaware",
	"memaware-cons":    "order=fcfs backfill=conservative placer=memaware",
	"memaware-nocap":   "order=fcfs backfill=easy placer=memaware cap=0",
	"memaware-nobal":   "order=fcfs backfill=easy placer=memaware balance=off",
	"memaware-noshape": "order=fcfs backfill=easy placer=memaware shape=off",
	// Patience: prefer waiting up to 30 min for local capacity before
	// accepting a dilated remote placement.
	"memaware-patient": "order=fcfs backfill=easy placer=memaware patience=1800",
}

// Aliases returns the legacy policy names, sorted.
func Aliases() []string {
	out := make([]string, 0, len(aliases))
	for name := range aliases {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AliasSpec returns the canonical spec a legacy policy name expands to.
func AliasSpec(name string) (string, bool) {
	s, ok := aliases[name]
	return s, ok
}

// orders maps order=<value> to queue-ordering policies.
var orders = map[string]func() sched.Order{
	"fcfs":    func() sched.Order { return sched.FCFS{} },
	"sjf":     func() sched.Order { return sched.SJF{} },
	"wfp":     func() sched.Order { return sched.WFP{} },
	"largest": func() sched.Order { return sched.LargestFirst{} },
}

// backfills maps backfill=<value> to disciplines.
var backfills = map[string]sched.BackfillMode{
	"none":         sched.BackfillNone,
	"easy":         sched.BackfillEASY,
	"conservative": sched.BackfillConservative,
	"cons":         sched.BackfillConservative,
}

// Parse compiles a policy spec into a fresh scheduler. A bare legacy
// name (no '=') expands through its alias first and keeps the legacy
// name as the scheduler's reported name. Unspecified terms default to
// the paper's configuration: order=fcfs backfill=easy placer=memaware.
func Parse(s string) (*sched.Batch, error) {
	in := strings.TrimSpace(s)
	if in == "" {
		return nil, fmt.Errorf("spec: empty policy spec")
	}
	name := ""
	if !strings.Contains(in, "=") {
		expanded, ok := aliases[in]
		if !ok {
			return nil, fmt.Errorf("spec: unknown policy %q (legacy names: %v; or give key=value terms)",
				in, Aliases())
		}
		name, in = in, expanded
	}

	b := &sched.Batch{PolicyName: name, Backfill: sched.BackfillEASY}
	orderName, placerName := "fcfs", "memaware"
	var pc PlacerConfig
	seen := make(map[string]bool)
	for _, tok := range strings.Fields(in) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("spec: malformed term %q (want key=value)", tok)
		}
		if seen[k] {
			return nil, fmt.Errorf("spec: duplicate term %q", k)
		}
		seen[k] = true
		switch k {
		case "order":
			if _, ok := orders[v]; !ok {
				return nil, fmt.Errorf("spec: unknown order %q (known: %v)", v, keys(orders))
			}
			orderName = v
		case "backfill":
			mode, ok := backfills[v]
			if !ok {
				return nil, fmt.Errorf("spec: unknown backfill %q (known: %v)", v, keys(backfills))
			}
			b.Backfill = mode
		case "placer":
			if _, ok := placers[v]; !ok {
				return nil, fmt.Errorf("spec: unknown placer %q (known: %v)", v, Placers())
			}
			placerName = v
		case "cap":
			f, err := parseFloat(k, v)
			if err != nil {
				return nil, err
			}
			if f != 0 && f < 1 {
				return nil, fmt.Errorf("spec: cap %v < 1 admits nothing (use cap=0 to disable capping)", v)
			}
			pc.Cap = &f
		case "balance":
			bv, err := parseBool(k, v)
			if err != nil {
				return nil, err
			}
			pc.Balance = &bv
		case "shape":
			bv, err := parseBool(k, v)
			if err != nil {
				return nil, err
			}
			pc.Shape = &bv
		case "patience":
			n, err := parseNonNegInt(k, v)
			if err != nil {
				return nil, err
			}
			b.SpillPatience = n
		case "maxscan":
			n, err := parseNonNegInt(k, v)
			if err != nil {
				return nil, err
			}
			b.MaxBackfillScan = int(n)
		case "maxres":
			n, err := parseNonNegInt(k, v)
			if err != nil {
				return nil, err
			}
			b.MaxReservations = int(n)
		case "maxperuser":
			n, err := parseNonNegInt(k, v)
			if err != nil {
				return nil, err
			}
			b.MaxPerUser = int(n)
		case "name":
			b.PolicyName = v
		default:
			return nil, fmt.Errorf("spec: unknown term %q (known: order backfill placer cap balance shape patience maxscan maxres maxperuser name)", k)
		}
	}

	b.Order = orders[orderName]()
	placer, err := placers[placerName](pc)
	if err != nil {
		return nil, err
	}
	b.Placer = placer
	return b, nil
}

// parseFloat parses a finite non-negative float term.
func parseFloat(k, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("spec: %s=%s is not a finite non-negative number", k, v)
	}
	return f, nil
}

// parseBool parses an on/off term.
func parseBool(k, v string) (bool, error) {
	switch v {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("spec: %s=%s is not a boolean (use on/off)", k, v)
}

// parseNonNegInt parses a non-negative integer term.
func parseNonNegInt(k, v string) (int64, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("spec: %s=%s is not a non-negative integer", k, v)
	}
	return n, nil
}

// keys returns a map's keys, sorted, for error messages.
func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
