package spec

import (
	"strings"
	"testing"

	"dismem/internal/core"
	"dismem/internal/sched"
)

func TestAliasesParse(t *testing.T) {
	for _, name := range Aliases() {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("alias %q reports name %q", name, s.Name())
		}
		canonical, ok := AliasSpec(name)
		if !ok {
			t.Fatalf("AliasSpec(%q) missing", name)
		}
		if _, err := Parse(canonical); err != nil {
			t.Errorf("canonical spec %q of %q does not parse: %v", canonical, name, err)
		}
	}
}

// TestAliasExpansionsMatchLegacyConstructors pins the alias expansions
// to the retired hand-written constructors: chassis knobs and placer
// configuration must come out exactly as PR 0 built them.
func TestAliasExpansionsMatchLegacyConstructors(t *testing.T) {
	get := func(name string) *sched.Batch {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		return s
	}

	b := get("memaware-nocap")
	p, ok := b.Placer.(*core.MemAware)
	if !ok {
		t.Fatalf("memaware-nocap placer is %T", b.Placer)
	}
	if p.SlowdownCap != 0 || !p.Balance || !p.Shape {
		t.Errorf("memaware-nocap placer = cap %g bal %v shape %v, want 0 true true",
			p.SlowdownCap, p.Balance, p.Shape)
	}

	ref := core.New()
	p = get("memaware").Placer.(*core.MemAware)
	if p.SlowdownCap != ref.SlowdownCap || p.Balance != ref.Balance || p.Shape != ref.Shape {
		t.Errorf("memaware placer differs from core.New(): %+v", p)
	}

	if b := get("memaware-patient"); b.SpillPatience != 1800 {
		t.Errorf("memaware-patient patience = %d, want 1800", b.SpillPatience)
	}
	if b := get("cons-oblivious"); b.Backfill != sched.BackfillConservative {
		t.Errorf("cons-oblivious backfill = %v", b.Backfill)
	}
	if b := get("fcfs-local"); b.Backfill != sched.BackfillNone {
		t.Errorf("fcfs-local backfill = %v", b.Backfill)
	}
	if _, ok := get("sjf-local").Order.(sched.SJF); !ok {
		t.Error("sjf-local order is not SJF")
	}
	if _, ok := get("easy-local").Placer.(sched.LocalOnly); !ok {
		t.Error("easy-local placer is not LocalOnly")
	}
	if _, ok := get("easy-oblivious").Placer.(sched.Spill); !ok {
		t.Error("easy-oblivious placer is not Spill")
	}
}

func TestParseFullSpec(t *testing.T) {
	b, err := Parse("order=sjf backfill=cons placer=memaware cap=3 balance=off shape=on patience=1800 maxscan=64 maxres=32 maxperuser=4 name=mypolicy")
	if err != nil {
		t.Fatal(err)
	}
	if b.PolicyName != "mypolicy" || b.Name() != "mypolicy" {
		t.Errorf("name = %q / %q", b.PolicyName, b.Name())
	}
	if _, ok := b.Order.(sched.SJF); !ok {
		t.Errorf("order = %T", b.Order)
	}
	if b.Backfill != sched.BackfillConservative {
		t.Errorf("backfill = %v", b.Backfill)
	}
	if b.SpillPatience != 1800 || b.MaxBackfillScan != 64 || b.MaxReservations != 32 || b.MaxPerUser != 4 {
		t.Errorf("knobs = %+v", b)
	}
	p := b.Placer.(*core.MemAware)
	if p.SlowdownCap != 3 || p.Balance || !p.Shape {
		t.Errorf("placer = cap %g bal %v shape %v", p.SlowdownCap, p.Balance, p.Shape)
	}
}

func TestParseDefaults(t *testing.T) {
	// A single term fills the rest with the paper's policy.
	b, err := Parse("cap=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Order.(sched.FCFS); !ok {
		t.Errorf("default order = %T", b.Order)
	}
	if b.Backfill != sched.BackfillEASY {
		t.Errorf("default backfill = %v", b.Backfill)
	}
	if p := b.Placer.(*core.MemAware); p.SlowdownCap != 2 {
		t.Errorf("cap = %g", p.SlowdownCap)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "empty"},
		{"   ", "empty"},
		{"bogus", "unknown policy"},
		{"order", "unknown policy"}, // no '=': treated as an alias name
		{"order=", "malformed"},
		{"=easy", "malformed"},
		{"order=lifo", "unknown order"},
		{"backfill=sometimes", "unknown backfill"},
		{"placer=teleport", "unknown placer"},
		{"flavor=vanilla", "unknown term"},
		{"order=fcfs order=sjf", "duplicate"},
		{"cap=-1", "non-negative"},
		{"cap=0.5", "admits nothing"},
		{"cap=many", "non-negative"},
		{"cap=nan", "non-negative"},
		{"cap=+inf", "non-negative"},
		{"balance=maybe", "boolean"},
		{"shape=2", "boolean"},
		{"patience=-5", "non-negative"},
		{"patience=1.5", "non-negative"},
		{"maxscan=-1", "non-negative"},
		{"placer=local cap=2", "does not accept"},
		{"placer=spill balance=on", "does not accept"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

func TestParseReturnsFreshInstances(t *testing.T) {
	a, _ := Parse("memaware")
	b, _ := Parse("memaware")
	if a == b || a.Placer == b.Placer {
		t.Fatal("Parse returned shared scheduler state")
	}
}

func TestRegisterPlacer(t *testing.T) {
	if err := RegisterPlacer("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	if err := RegisterPlacer("local", func() sched.Placer { return sched.LocalOnly{} }); err == nil {
		t.Error("duplicate of builtin accepted")
	}
	if err := RegisterPlacer("bad name", func() sched.Placer { return sched.LocalOnly{} }); err == nil {
		t.Error("name with space accepted")
	}
	if err := RegisterPlacer("testonly", func() sched.Placer { return sched.LocalOnly{} }); err != nil {
		t.Fatal(err)
	}
	defer delete(placers, "testonly")
	if err := RegisterPlacer("testonly", func() sched.Placer { return sched.LocalOnly{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	b, err := Parse("order=sjf placer=testonly")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Placer.(sched.LocalOnly); !ok {
		t.Errorf("placer = %T", b.Placer)
	}
	if _, err := Parse("placer=testonly cap=2"); err == nil {
		t.Error("parameter for parameterless registered placer accepted")
	}
}
