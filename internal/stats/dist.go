package stats

import "math"

// Dist is a one-dimensional probability distribution that can be sampled
// with an externally supplied generator, so a single RNG stream drives a
// whole workload model deterministically.
type Dist interface {
	// Sample draws one variate using r.
	Sample(r *RNG) float64
	// Mean returns the analytic mean of the distribution.
	Mean() float64
}

// Constant is the degenerate distribution that always returns Value.
type Constant struct{ Value float64 }

// Sample implements Dist.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.Value }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with the given Rate (λ).
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Rate }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Normal is the Gaussian distribution with mean Mu and stddev Sigma.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma)). It is the
// canonical model for HPC job runtimes (Lublin & Feitelson 2003).
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Weibull is the Weibull distribution with shape K and scale Lambda.
// Shape < 1 yields the bursty inter-arrival times observed on production
// HPC systems.
type Weibull struct{ K, Lambda float64 }

// Sample implements Dist.
func (w Weibull) Sample(r *RNG) float64 {
	return w.Lambda * math.Pow(r.ExpFloat64(), 1/w.K)
}

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Lambda * gamma(1+1/w.K) }

// Pareto is the (type I) Pareto distribution with scale Xm and shape
// Alpha, used for heavy-tailed memory footprints.
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Dist.
func (p Pareto) Sample(r *RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return p.Xm / math.Pow(u, 1/p.Alpha)
		}
	}
}

// Mean implements Dist. It returns +Inf when Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Truncated wraps a distribution and clamps samples to [Lo, Hi]. Mean is
// reported as the clamped mean of the inner distribution (approximate).
type Truncated struct {
	Inner  Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (t Truncated) Sample(r *RNG) float64 {
	v := t.Inner.Sample(r)
	if v < t.Lo {
		return t.Lo
	}
	if v > t.Hi {
		return t.Hi
	}
	return v
}

// Mean implements Dist.
func (t Truncated) Mean() float64 {
	m := t.Inner.Mean()
	if m < t.Lo {
		return t.Lo
	}
	if m > t.Hi {
		return t.Hi
	}
	return m
}

// Mixture draws from Components[i] with probability Weights[i]. Weights
// need not sum to one; they are normalised at sampling time.
type Mixture struct {
	Weights    []float64
	Components []Dist
}

// Sample implements Dist.
func (m Mixture) Sample(r *RNG) float64 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean implements Dist.
func (m Mixture) Mean() float64 {
	total, acc := 0.0, 0.0
	for i, w := range m.Weights {
		total += w
		acc += w * m.Components[i].Mean()
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// Zipf samples integers in [1, N] with probability proportional to
// 1/rank^S. It precomputes the CDF, so construction is O(N) and sampling
// is O(log N); N is bounded by practical job-size alphabets.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over [1, n] with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf needs n > 0")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		cdf[i-1] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one rank in [1, len(cdf)].
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Poisson returns a Poisson-distributed integer with the given mean.
// It uses Knuth's method for small means and a normal approximation with
// continuity correction for large means, which is adequate for workload
// generation purposes.
func Poisson(r *RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// gamma is the Gamma function via the Lanczos approximation, sufficient
// for the distribution means reported in workload summaries.
func gamma(x float64) float64 {
	g, _ := math.Lgamma(x)
	return math.Exp(g)
}
