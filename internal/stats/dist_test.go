package stats

import (
	"math"
	"testing"
)

// sampleMean draws n variates and returns their mean.
func sampleMean(d Dist, seed uint64, n int) float64 {
	r := NewRNG(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestDistMeansMatchAnalytic(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		tol  float64 // relative tolerance
	}{
		{"constant", Constant{Value: 42}, 0},
		{"uniform", Uniform{Lo: 2, Hi: 10}, 0.02},
		{"exponential", Exponential{Rate: 0.25}, 0.03},
		{"normal", Normal{Mu: 7, Sigma: 2}, 0.02},
		{"lognormal", LogNormal{Mu: 1, Sigma: 0.5}, 0.03},
		{"weibull-bursty", Weibull{K: 0.7, Lambda: 3}, 0.05},
		{"weibull-regular", Weibull{K: 2, Lambda: 5}, 0.03},
		{"pareto", Pareto{Xm: 1, Alpha: 3}, 0.05},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := sampleMean(c.d, 1234, 300000)
			want := c.d.Mean()
			if want == 0 {
				if got != 0 {
					t.Fatalf("mean = %g, want 0", got)
				}
				return
			}
			if rel := math.Abs(got-want) / want; rel > c.tol {
				t.Fatalf("sample mean %g vs analytic %g (rel err %.3f > %.3f)", got, want, rel, c.tol)
			}
		})
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	if m := (Pareto{Xm: 1, Alpha: 0.9}).Mean(); !math.IsInf(m, 1) {
		t.Fatalf("Pareto alpha<=1 mean = %g, want +Inf", m)
	}
}

func TestTruncatedBounds(t *testing.T) {
	d := Truncated{Inner: Normal{Mu: 0, Sigma: 100}, Lo: -5, Hi: 5}
	r := NewRNG(2)
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v < -5 || v > 5 {
			t.Fatalf("truncated sample %g outside [-5,5]", v)
		}
	}
}

func TestTruncatedMeanClamps(t *testing.T) {
	d := Truncated{Inner: Constant{Value: 100}, Lo: 0, Hi: 10}
	if m := d.Mean(); m != 10 {
		t.Fatalf("Mean() = %g, want clamp to 10", m)
	}
	d = Truncated{Inner: Constant{Value: -3}, Lo: 0, Hi: 10}
	if m := d.Mean(); m != 0 {
		t.Fatalf("Mean() = %g, want clamp to 0", m)
	}
}

func TestMixtureWeights(t *testing.T) {
	// 75/25 mixture of constants: empirical mean must reflect weights.
	d := Mixture{
		Weights:    []float64{3, 1},
		Components: []Dist{Constant{Value: 0}, Constant{Value: 4}},
	}
	if m := d.Mean(); m != 1 {
		t.Fatalf("analytic mixture mean = %g, want 1", m)
	}
	got := sampleMean(d, 3, 200000)
	if math.Abs(got-1) > 0.02 {
		t.Fatalf("sample mixture mean = %g, want ~1", got)
	}
}

func TestMixtureEmptyWeightsMean(t *testing.T) {
	d := Mixture{}
	if m := d.Mean(); m != 0 {
		t.Fatalf("empty mixture mean = %g, want 0", m)
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(9, 1.4)
	r := NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := z.Sample(r)
		if v < 1 || v > 9 {
			t.Fatalf("Zipf sample %d outside [1,9]", v)
		}
		counts[v]++
	}
	// Monotone decreasing frequencies (allowing sampling noise at the
	// tail, so only check the strong head ordering).
	if counts[1] <= counts[2] || counts[2] <= counts[3] {
		t.Fatalf("Zipf head not decreasing: %v", counts[1:])
	}
}

func TestZipfRatio(t *testing.T) {
	// P(1)/P(2) should be ~2^s.
	const s = 1.5
	z := NewZipf(50, s)
	r := NewRNG(5)
	var c1, c2 int
	for i := 0; i < 300000; i++ {
		switch z.Sample(r) {
		case 1:
			c1++
		case 2:
			c2++
		}
	}
	want := math.Pow(2, s)
	got := float64(c1) / float64(c2)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("P(1)/P(2) = %.3f, want ~%.3f", got, want)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(6)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var o Online
		for i := 0; i < 50000; i++ {
			o.Add(float64(Poisson(r, mean)))
		}
		if math.Abs(o.Mean()-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%g) sample mean %g", mean, o.Mean())
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := NewRNG(7)
	if Poisson(r, 0) != 0 || Poisson(r, -5) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
	for i := 0; i < 10000; i++ {
		if Poisson(r, 100) < 0 {
			t.Fatal("negative Poisson sample")
		}
	}
}
