package stats

import "fmt"

// DistState is the portable serialized form of a Dist: a small tagged
// union over the package's concrete distributions, so generator
// configurations embedding Dist values can travel inside durable
// checkpoints. Truncated and Mixture nest recursively. A custom Dist
// implementation outside this set has no serialized form; DistToState
// returns a pointed error for it.
type DistState struct {
	Kind       string      `json:"kind"`
	Params     []float64   `json:"params,omitempty"`
	Inner      *DistState  `json:"inner,omitempty"`
	Weights    []float64   `json:"weights,omitempty"`
	Components []DistState `json:"components,omitempty"`
}

// DistToState captures d, or nil for a nil Dist.
func DistToState(d Dist) (*DistState, error) {
	if d == nil {
		return nil, nil
	}
	switch v := d.(type) {
	case Constant:
		return &DistState{Kind: "constant", Params: []float64{v.Value}}, nil
	case Uniform:
		return &DistState{Kind: "uniform", Params: []float64{v.Lo, v.Hi}}, nil
	case Exponential:
		return &DistState{Kind: "exponential", Params: []float64{v.Rate}}, nil
	case Normal:
		return &DistState{Kind: "normal", Params: []float64{v.Mu, v.Sigma}}, nil
	case LogNormal:
		return &DistState{Kind: "lognormal", Params: []float64{v.Mu, v.Sigma}}, nil
	case Weibull:
		return &DistState{Kind: "weibull", Params: []float64{v.K, v.Lambda}}, nil
	case Pareto:
		return &DistState{Kind: "pareto", Params: []float64{v.Xm, v.Alpha}}, nil
	case Truncated:
		inner, err := DistToState(v.Inner)
		if err != nil {
			return nil, err
		}
		return &DistState{Kind: "truncated", Params: []float64{v.Lo, v.Hi}, Inner: inner}, nil
	case Mixture:
		st := &DistState{Kind: "mixture", Weights: append([]float64(nil), v.Weights...)}
		for _, c := range v.Components {
			cs, err := DistToState(c)
			if err != nil {
				return nil, err
			}
			st.Components = append(st.Components, *cs)
		}
		return st, nil
	default:
		return nil, fmt.Errorf("stats: distribution %T has no serialized form (use the stats package distributions for durable checkpoints)", d)
	}
}

// DistFromState rebuilds a Dist, or nil from a nil state.
func DistFromState(st *DistState) (Dist, error) {
	if st == nil {
		return nil, nil
	}
	need := func(n int) error {
		if len(st.Params) != n {
			return fmt.Errorf("stats: %s distribution state has %d params, want %d", st.Kind, len(st.Params), n)
		}
		return nil
	}
	switch st.Kind {
	case "constant":
		if err := need(1); err != nil {
			return nil, err
		}
		return Constant{Value: st.Params[0]}, nil
	case "uniform":
		if err := need(2); err != nil {
			return nil, err
		}
		return Uniform{Lo: st.Params[0], Hi: st.Params[1]}, nil
	case "exponential":
		if err := need(1); err != nil {
			return nil, err
		}
		return Exponential{Rate: st.Params[0]}, nil
	case "normal":
		if err := need(2); err != nil {
			return nil, err
		}
		return Normal{Mu: st.Params[0], Sigma: st.Params[1]}, nil
	case "lognormal":
		if err := need(2); err != nil {
			return nil, err
		}
		return LogNormal{Mu: st.Params[0], Sigma: st.Params[1]}, nil
	case "weibull":
		if err := need(2); err != nil {
			return nil, err
		}
		return Weibull{K: st.Params[0], Lambda: st.Params[1]}, nil
	case "pareto":
		if err := need(2); err != nil {
			return nil, err
		}
		return Pareto{Xm: st.Params[0], Alpha: st.Params[1]}, nil
	case "truncated":
		if err := need(2); err != nil {
			return nil, err
		}
		inner, err := DistFromState(st.Inner)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return nil, fmt.Errorf("stats: truncated distribution state has no inner distribution")
		}
		return Truncated{Inner: inner, Lo: st.Params[0], Hi: st.Params[1]}, nil
	case "mixture":
		if len(st.Weights) != len(st.Components) || len(st.Components) == 0 {
			return nil, fmt.Errorf("stats: mixture distribution state has %d weights for %d components",
				len(st.Weights), len(st.Components))
		}
		m := Mixture{Weights: append([]float64(nil), st.Weights...)}
		for i := range st.Components {
			c, err := DistFromState(&st.Components[i])
			if err != nil {
				return nil, err
			}
			m.Components = append(m.Components, c)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("stats: unknown distribution kind %q", st.Kind)
	}
}
