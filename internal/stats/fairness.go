package stats

import "sort"

// JainIndex returns Jain's fairness index of the allocations xs:
// (Σx)² / (n·Σx²). It is 1 when all allocations are equal and 1/n in the
// most unfair case. An empty or all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Gini returns the Gini coefficient of xs (0 = perfect equality,
// → 1 = maximal inequality). Negative inputs are not supported and the
// function returns 0 for empty or all-zero input.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var cum, total float64
	n := float64(len(s))
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}
