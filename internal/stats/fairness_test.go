package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainIndexKnown(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{4, 0, 0, 0}, 0.25},
		{nil, 0},
		{[]float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestJainIndexRange(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		allZero := true
		for i, v := range raw {
			xs[i] = float64(v)
			if v != 0 {
				allZero = false
			}
		}
		j := JainIndex(xs)
		if allZero {
			return j == 0
		}
		return j >= 1/float64(len(xs))-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGiniKnown(t *testing.T) {
	if g := Gini([]float64{5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Fatalf("Gini(equal) = %g, want 0", g)
	}
	// One holder of everything among n: G = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 12}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("Gini(single holder of 4) = %g, want 0.75", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0}) != 0 {
		t.Fatal("Gini of empty/zero input must be 0")
	}
}

func TestGiniRangeAndOrderInvariance(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		g := Gini(xs)
		if g < -1e-12 || g > 1 {
			return false
		}
		// Reversing the input must not change the coefficient.
		rev := make([]float64, len(xs))
		for i := range xs {
			rev[i] = xs[len(xs)-1-i]
		}
		return math.Abs(Gini(rev)-g) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
