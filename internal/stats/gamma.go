package stats

import "math"

// Gamma is the Gamma distribution with shape Alpha and scale Theta
// (mean Alpha*Theta). It is the building block of the Lublin-Feitelson
// workload model (hyper-Gamma runtimes, Gamma inter-arrival gaps).
type Gamma struct {
	Alpha, Theta float64
}

// Sample implements Dist using the Marsaglia-Tsang (2000) squeeze
// method, with Johnk's boost for shape < 1.
func (g Gamma) Sample(r *RNG) float64 {
	if g.Alpha <= 0 || g.Theta <= 0 {
		return 0
	}
	alpha := g.Alpha
	boost := 1.0
	if alpha < 1 {
		// X_a ~ X_{a+1} * U^{1/a}.
		for {
			u := r.Float64()
			if u > 0 {
				boost = math.Pow(u, 1/alpha)
				break
			}
		}
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * boost * g.Theta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * boost * g.Theta
		}
	}
}

// Mean implements Dist.
func (g Gamma) Mean() float64 { return g.Alpha * g.Theta }

// HyperGamma mixes two Gamma distributions: with probability P the
// sample comes from Low, otherwise from High. Lublin & Feitelson fit
// job runtimes with exactly this form.
type HyperGamma struct {
	Low, High Gamma
	// P is the probability of drawing from Low.
	P float64
}

// Sample implements Dist.
func (h HyperGamma) Sample(r *RNG) float64 {
	if r.Float64() < h.P {
		return h.Low.Sample(r)
	}
	return h.High.Sample(r)
}

// Mean implements Dist.
func (h HyperGamma) Mean() float64 {
	return h.P*h.Low.Mean() + (1-h.P)*h.High.Mean()
}
