package stats

import (
	"math"
	"testing"
)

func TestGammaMoments(t *testing.T) {
	cases := []Gamma{
		{Alpha: 0.5, Theta: 2}, // shape < 1 exercises Johnk's boost
		{Alpha: 1, Theta: 3},   // exponential special case
		{Alpha: 4.2, Theta: 400},
		{Alpha: 12, Theta: 800},
	}
	for _, g := range cases {
		r := NewRNG(31)
		var o Online
		for i := 0; i < 200000; i++ {
			v := g.Sample(r)
			if v < 0 {
				t.Fatalf("Gamma(%g,%g) sampled %g < 0", g.Alpha, g.Theta, v)
			}
			o.Add(v)
		}
		if rel := math.Abs(o.Mean()-g.Mean()) / g.Mean(); rel > 0.03 {
			t.Errorf("Gamma(%g,%g) mean %g vs analytic %g", g.Alpha, g.Theta, o.Mean(), g.Mean())
		}
		// Var = alpha * theta^2.
		wantVar := g.Alpha * g.Theta * g.Theta
		if rel := math.Abs(o.Var()-wantVar) / wantVar; rel > 0.1 {
			t.Errorf("Gamma(%g,%g) var %g vs analytic %g", g.Alpha, g.Theta, o.Var(), wantVar)
		}
	}
}

func TestGammaDegenerate(t *testing.T) {
	r := NewRNG(1)
	if v := (Gamma{Alpha: 0, Theta: 1}).Sample(r); v != 0 {
		t.Fatalf("zero-shape gamma sampled %g", v)
	}
	if v := (Gamma{Alpha: 1, Theta: -1}).Sample(r); v != 0 {
		t.Fatalf("negative-scale gamma sampled %g", v)
	}
}

func TestHyperGammaMixing(t *testing.T) {
	h := HyperGamma{
		Low:  Gamma{Alpha: 1, Theta: 10},   // mean 10
		High: Gamma{Alpha: 1, Theta: 1000}, // mean 1000
		P:    0.75,
	}
	if want := 0.75*10 + 0.25*1000; h.Mean() != want {
		t.Fatalf("analytic mean = %g, want %g", h.Mean(), want)
	}
	r := NewRNG(77)
	var o Online
	for i := 0; i < 300000; i++ {
		o.Add(h.Sample(r))
	}
	if rel := math.Abs(o.Mean()-h.Mean()) / h.Mean(); rel > 0.05 {
		t.Fatalf("sampled mean %g vs analytic %g", o.Mean(), h.Mean())
	}
}
