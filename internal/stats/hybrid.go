package stats

import (
	"fmt"
)

// ExactQuantileBuffer is the observation count up to which Quantile
// answers exactly. 1024 float64s is 8 KiB per estimator — trivial next
// to any simulation's live state — while covering the short correlated
// streams (small runs, per-cell sweeps at reduced scale) where the P²
// approximation is known to degrade.
const ExactQuantileBuffer = 1024

// Quantile estimates a single quantile of a stream with a hybrid
// strategy: up to ExactQuantileBuffer observations it retains them all
// and answers exactly (closest-rank linear interpolation, identical to
// Percentile); beyond that it switches to the O(1)-memory P² estimator,
// replaying the buffered prefix in arrival order first, so a stream of
// N > ExactQuantileBuffer observations yields bit-for-bit the estimate
// a pure P² estimator fed the same stream would. The estimator is
// deterministic in both regimes. Construct with NewQuantile; the zero
// value is not usable.
type Quantile struct {
	p   float64
	buf []float64 // arrival order; nil once spilled into p2
	p2  *P2
}

// NewQuantile returns a hybrid estimator for quantile p in (0, 1).
func NewQuantile(p float64) *Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile %g outside (0,1)", p))
	}
	return &Quantile{p: p}
}

// Add incorporates one observation.
func (q *Quantile) Add(x float64) {
	if q.p2 != nil {
		q.p2.Add(x)
		return
	}
	if len(q.buf) < ExactQuantileBuffer {
		q.buf = append(q.buf, x)
		return
	}
	// Threshold crossed: hand the whole history to P² in arrival order,
	// so the estimate equals a from-the-start P² run on this stream.
	q.p2 = NewP2(q.p)
	for _, v := range q.buf {
		q.p2.Add(v)
	}
	q.p2.Add(x)
	q.buf = nil
}

// N returns the number of observations.
func (q *Quantile) N() int64 {
	if q.p2 != nil {
		return q.p2.N()
	}
	return int64(len(q.buf))
}

// Exact reports whether the estimator is still in the exact regime.
func (q *Quantile) Exact() bool { return q.p2 == nil }

// Value returns the current estimate: exact while at most
// ExactQuantileBuffer observations have arrived, the P² estimate
// beyond. It returns 0 when empty.
func (q *Quantile) Value() float64 {
	if q.p2 != nil {
		return q.p2.Quantile()
	}
	return Percentile(q.buf, q.p*100)
}

// Clone returns an independent copy with identical state, so a
// checkpointed stream and its fork produce identical estimates for
// identical suffixes.
func (q *Quantile) Clone() *Quantile {
	c := &Quantile{p: q.p, buf: append([]float64(nil), q.buf...)}
	if q.p2 != nil {
		p2 := *q.p2
		c.p2 = &p2
	}
	return c
}
