package stats

import "testing"

// TestQuantileExactBelowThreshold pins the satellite bugfix: up to
// ExactQuantileBuffer observations the hybrid estimator must agree
// bit-for-bit with the exact Percentile reduction, including on the
// short correlated streams where P² degrades.
func TestQuantileExactBelowThreshold(t *testing.T) {
	rng := NewRNG(3)
	for _, n := range []int{0, 1, 2, 4, 5, 17, 100, 1000, ExactQuantileBuffer} {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			q := NewQuantile(p)
			var xs []float64
			base := 0.0
			for i := 0; i < n; i++ {
				// Correlated stream: a random walk, the adversarial
				// case for P² markers.
				base += rng.NormFloat64()
				q.Add(base)
				xs = append(xs, base)
			}
			if !q.Exact() {
				t.Fatalf("n=%d: estimator left exact regime early", n)
			}
			want := Percentile(xs, p*100)
			if got := q.Value(); got != want {
				t.Fatalf("n=%d p=%g: hybrid %v != exact %v", n, p, got, want)
			}
		}
	}
}

// TestQuantileMatchesP2BeyondThreshold pins that past the buffer the
// hybrid estimator is bit-identical to a pure P² estimator fed the
// same stream from the start — so large-run reports are unchanged by
// the hybrid switch.
func TestQuantileMatchesP2BeyondThreshold(t *testing.T) {
	rng := NewRNG(9)
	q := NewQuantile(0.95)
	p2 := NewP2(0.95)
	for i := 0; i < 3*ExactQuantileBuffer; i++ {
		x := rng.ExpFloat64() * 100
		q.Add(x)
		p2.Add(x)
		// Inside the buffer the hybrid answers exactly (deliberately
		// better than P²); from the first spilled observation on it
		// must equal the pure P² stream bit-for-bit.
		if i+1 > ExactQuantileBuffer {
			if got, want := q.Value(), p2.Quantile(); got != want {
				t.Fatalf("obs %d: hybrid %v != p2 %v", i+1, got, want)
			}
		}
	}
	if q.Exact() {
		t.Fatal("estimator still exact past the buffer")
	}
	if q.N() != p2.N() {
		t.Fatalf("N %d != %d", q.N(), p2.N())
	}
}

// TestQuantileClone verifies clone independence in both regimes.
func TestQuantileClone(t *testing.T) {
	for _, n := range []int{100, 2 * ExactQuantileBuffer} {
		rng := NewRNG(11)
		q := NewQuantile(0.95)
		for i := 0; i < n; i++ {
			q.Add(rng.Float64())
		}
		c := q.Clone()
		if got, want := c.Value(), q.Value(); got != want {
			t.Fatalf("n=%d: clone value %v != original %v", n, got, want)
		}
		// Identical suffixes must keep identical estimates; then a
		// divergent suffix must not leak back.
		q.Add(0.5)
		c.Add(0.5)
		if c.Value() != q.Value() {
			t.Fatalf("n=%d: clone diverged on identical suffix", n)
		}
		before := q.Value()
		c.Add(1e9)
		if q.Value() != before {
			t.Fatalf("n=%d: clone mutation leaked into original", n)
		}
	}
}
