package stats

import "math"

// Online accumulates count, mean, variance, min and max of a stream of
// observations in O(1) memory using Welford's algorithm. The zero value
// is ready to use.
type Online struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// AddN incorporates the same observation n times (used for weighted
// tallies such as "n jobs of identical size").
func (o *Online) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		o.Add(x)
	}
}

// Merge combines another accumulator into this one (Chan et al. parallel
// variance formula), enabling per-shard statistics to be reduced.
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	delta := b.mean - o.mean
	n := o.n + b.n
	o.m2 += b.m2 + delta*delta*float64(o.n)*float64(b.n)/float64(n)
	o.mean += delta * float64(b.n) / float64(n)
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
	o.n = n
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean, or 0 if empty.
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 if empty.
func (o *Online) Max() float64 { return o.max }

// Sum returns mean*n, the total of all observations.
func (o *Online) Sum() float64 { return o.mean * float64(o.n) }

// CV returns the coefficient of variation (stddev/mean), or 0 when the
// mean is 0.
func (o *Online) CV() float64 {
	if o.mean == 0 {
		return 0
	}
	return o.Std() / o.mean
}
