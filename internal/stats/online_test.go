package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// naive computes reference statistics directly.
func naive(xs []float64) (mean, variance, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	mean /= float64(len(xs))
	if len(xs) > 1 {
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(len(xs) - 1)
	}
	return mean, variance, lo, hi
}

func TestOnlineMatchesNaive(t *testing.T) {
	check := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		mean, variance, lo, hi := naive(xs)
		if len(xs) == 0 {
			return o.N() == 0 && o.Mean() == 0 && o.Var() == 0
		}
		return math.Abs(o.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(o.Var()-variance) < 1e-6*(1+variance) &&
			o.Min() == lo && o.Max() == hi && o.N() == int64(len(xs))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMergeEquivalentToSequential(t *testing.T) {
	check := func(a, b []int16) bool {
		var left, right, all Online
		for _, v := range a {
			left.Add(float64(v))
			all.Add(float64(v))
		}
		for _, v := range b {
			right.Add(float64(v))
			all.Add(float64(v))
		}
		left.Merge(&right)
		if left.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(left.Mean()-all.Mean()) < 1e-9*(1+math.Abs(all.Mean())) &&
			math.Abs(left.Var()-all.Var()) < 1e-6*(1+all.Var()) &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(3)
	a.Merge(&b) // empty right
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge with empty changed state: n=%d mean=%g", a.N(), a.Mean())
	}
	var c Online
	c.Merge(&a) // empty left
	if c.N() != 1 || c.Mean() != 3 {
		t.Fatalf("merge into empty lost state: n=%d mean=%g", c.N(), c.Mean())
	}
}

func TestOnlineAddN(t *testing.T) {
	var a, b Online
	a.AddN(5, 4)
	for i := 0; i < 4; i++ {
		b.Add(5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Fatalf("AddN mismatch: %+v vs %+v", a, b)
	}
}

func TestOnlineSumAndCV(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 6} {
		o.Add(x)
	}
	if o.Sum() != 12 {
		t.Fatalf("Sum = %g, want 12", o.Sum())
	}
	if cv := o.CV(); math.Abs(cv-0.5) > 1e-12 {
		t.Fatalf("CV = %g, want 0.5", cv)
	}
	var zero Online
	if zero.CV() != 0 {
		t.Fatal("CV of empty accumulator must be 0")
	}
}

func TestOnlineSingleObservation(t *testing.T) {
	var o Online
	o.Add(7)
	if o.Var() != 0 || o.Std() != 0 {
		t.Fatalf("variance of single observation = %g, want 0", o.Var())
	}
	if o.Min() != 7 || o.Max() != 7 {
		t.Fatalf("min/max = %g/%g, want 7/7", o.Min(), o.Max())
	}
}
