package stats

import (
	"fmt"
	"sort"
)

// P2 estimates a single quantile of a stream in O(1) memory using the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// minimum, the target quantile, the quantile's half-way neighbours and
// the maximum, and are nudged toward their ideal positions with a
// piecewise-parabolic height update as observations arrive. With fewer
// than five observations the estimate is exact (the observations are
// simply kept); beyond that, accuracy is typically within a fraction of
// a percent of the true quantile for smooth distributions.
//
// The estimator is deterministic: the same observation sequence always
// produces the same estimate. Construct with NewP2; the zero value is
// not usable.
type P2 struct {
	p float64 // target quantile in (0,1)

	q  [5]float64 // marker heights
	n  [5]float64 // marker positions (1-based)
	np [5]float64 // desired marker positions
	dn [5]float64 // desired position increments per observation

	count int64
}

// NewP2 returns an estimator for quantile p in (0, 1), e.g. 0.95.
func NewP2(p float64) *P2 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile %g outside (0,1)", p))
	}
	e := &P2{p: p}
	e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add incorporates one observation.
func (e *P2) Add(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			for i := range e.n {
				e.n[i] = float64(i + 1)
			}
		}
		return
	}
	e.count++

	// Locate the cell containing x and stretch the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *P2) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction when the parabola would
// leave marker i's bracket.
func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// N returns the number of observations.
func (e *P2) N() int64 { return e.count }

// Quantile returns the current estimate: exact (closest-rank linear
// interpolation, matching Percentile) below five observations, the P²
// marker height otherwise. It returns 0 when empty.
func (e *P2) Quantile() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		s := append([]float64(nil), e.q[:e.count]...)
		sort.Float64s(s)
		return percentileSorted(s, e.p*100)
	}
	return e.q[2]
}
