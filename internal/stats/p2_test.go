package stats

import (
	"math"
	"testing"
)

func TestP2SmallNIsExact(t *testing.T) {
	e := NewP2(0.95)
	xs := []float64{30, 10, 20}
	for _, x := range xs {
		e.Add(x)
	}
	if got, want := e.Quantile(), Percentile(xs, 95); got != want {
		t.Fatalf("small-n quantile = %g, want exact %g", got, want)
	}
	if NewP2(0.5).Quantile() != 0 {
		t.Fatal("empty estimator should return 0")
	}
}

func TestP2TracksKnownQuantiles(t *testing.T) {
	// Heavy-tailed and uniform streams: the estimate must land within a
	// few percent of the exact sample quantile.
	rng := NewRNG(7)
	dists := []struct {
		name   string
		sample func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 1000 }},
		{"lognormal", func() float64 { return math.Exp(2 + 1.5*rng.NormFloat64()) }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 300 }},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			e := NewP2(p)
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := d.sample()
				xs = append(xs, x)
				e.Add(x)
			}
			exact := Percentile(xs, p*100)
			got := e.Quantile()
			// Tolerance: 5% relative, generous for the p99 tail.
			if rel := math.Abs(got-exact) / exact; rel > 0.05 {
				t.Errorf("%s p%.0f: P2 %g vs exact %g (rel err %.3f)", d.name, p*100, got, exact, rel)
			}
		}
	}
}

func TestP2Deterministic(t *testing.T) {
	a, b := NewP2(0.95), NewP2(0.95)
	rng := NewRNG(3)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if a.Quantile() != b.Quantile() || a.N() != 1000 {
		t.Fatalf("same stream produced %g vs %g", a.Quantile(), b.Quantile())
	}
}

func TestP2ConstantStream(t *testing.T) {
	e := NewP2(0.95)
	for i := 0; i < 100; i++ {
		e.Add(42)
	}
	if e.Quantile() != 42 {
		t.Fatalf("constant stream quantile = %g, want 42", e.Quantile())
	}
}
