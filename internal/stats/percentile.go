package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice and does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// Percentiles returns the requested percentiles of xs with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of observations <= X
}

// CDF returns the empirical CDF of xs subsampled to at most maxPoints
// evenly spaced quantiles (all points if maxPoints <= 0 or the data is
// smaller). The result is sorted by X.
func CDF(xs []float64, maxPoints int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if maxPoints <= 0 || n <= maxPoints {
		out := make([]CDFPoint, n)
		for i, v := range s {
			out[i] = CDFPoint{X: v, P: float64(i+1) / float64(n)}
		}
		return out
	}
	out := make([]CDFPoint, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		if idx > n {
			idx = n
		}
		out[i] = CDFPoint{X: s[idx-1], P: float64(idx) / float64(n)}
	}
	return out
}

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Observations outside the range are clamped into the first/last bin so
// no sample is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram with bins equal-width bins on [lo,hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) x%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Mean returns the histogram-approximated mean using bin centers.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	acc := 0.0
	for i, c := range h.Counts {
		acc += float64(c) * h.BinCenter(i)
	}
	return acc / float64(h.total)
}
