package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
		{-3, 1}, {250, 10}, // clamped
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Fatal("P50 of empty slice must be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentilesConsistentWithSingle(t *testing.T) {
	check := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		ps := []float64{5, 25, 50, 75, 95}
		batch := Percentiles(xs, ps...)
		for i, p := range ps {
			if batch[i] != Percentile(xs, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	check := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFFull(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	pts := CDF(xs, 0)
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	wantX := []float64{1, 2, 3, 4}
	wantP := []float64{0.25, 0.5, 0.75, 1}
	for i, pt := range pts {
		if pt.X != wantX[i] || pt.P != wantP[i] {
			t.Fatalf("point %d = %+v, want {%g %g}", i, pt, wantX[i], wantP[i])
		}
	}
}

func TestCDFSubsampled(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	pts := CDF(xs, 10)
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	if pts[len(pts)-1].P != 1 {
		t.Fatalf("last CDF point P = %g, want 1", pts[len(pts)-1].P)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Fatal("CDF points not sorted by X")
	}
}

func TestCDFEmpty(t *testing.T) {
	if CDF(nil, 10) != nil {
		t.Fatal("CDF of empty input must be nil")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 2.5, 9.9, -3, 42} { // includes clamps
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 3 { // 0.5, 1, -3(clamped)
		t.Fatalf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 42(clamped)
		t.Fatalf("bin 4 = %d, want 2", h.Counts[4])
	}
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("BinCenter(0) = %g, want 1", c)
	}
	if f := h.Fraction(0); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("Fraction(0) = %g, want 0.5", f)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5) // exactly the bin centers
	}
	if m := h.Mean(); math.Abs(m-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", m)
	}
	empty := NewHistogram(0, 1, 2)
	if empty.Mean() != 0 || empty.Fraction(0) != 0 {
		t.Fatal("empty histogram mean/fraction must be 0")
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(1, 0, 3) did not panic")
		}
	}()
	NewHistogram(1, 0, 3)
}
