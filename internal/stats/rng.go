// Package stats provides deterministic pseudo-random number generation,
// probability distributions, and online statistics used throughout the
// simulator. All stochastic behaviour in dismem flows through RNG so that
// a fixed seed reproduces a simulation bit-for-bit across platforms and
// Go versions (the standard library's math/rand algorithm is not part of
// its compatibility promise across major versions; this one is ours).
package stats

import "math"

// RNG is a xoshiro256++ pseudo-random number generator seeded through
// SplitMix64. It is NOT safe for concurrent use; create one RNG per
// goroutine or per simulation stream.
type RNG struct {
	s [4]uint64

	// cached second normal variate from the last Box-Muller pair.
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator whose stream is fully determined by seed.
// Distinct seeds give statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initialises the generator state from seed via SplitMix64,
// guaranteeing a well-mixed state even for small or zero seeds.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro requires a nonzero state; SplitMix64 cannot produce four
	// zero words from any seed, but keep the guard for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasGauss = false
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new RNG seeded from this one. The child stream is
// independent of subsequent draws from the parent, which is convenient
// for giving each simulation component its own stream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Clone returns an independent RNG with identical state: both produce
// the same subsequent stream. It backs simulation checkpointing, where
// a forked run must draw the identical random suffix.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n // == (2^64 - n) mod n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomises the order of n elements using swap, with the
// Fisher-Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Box-Muller transform with pair caching.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
