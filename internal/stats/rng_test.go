package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish check over a small modulus.
	r := NewRNG(5)
	const n, buckets = 120000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.03 {
			t.Fatalf("bucket %d: %d draws, want ~%.0f ±3%%", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var o Online
	for i := 0; i < 200000; i++ {
		o.Add(r.NormFloat64())
	}
	if math.Abs(o.Mean()) > 0.01 {
		t.Fatalf("normal mean = %g, want ~0", o.Mean())
	}
	if math.Abs(o.Std()-1) > 0.01 {
		t.Fatalf("normal stddev = %g, want ~1", o.Std())
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	var o Online
	for i := 0; i < 200000; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %g < 0", v)
		}
		o.Add(v)
	}
	if math.Abs(o.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean = %g, want ~1", o.Mean())
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Split()
	// The child must not replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws between parent and child", same)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: sum %d -> %d", sum, got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
