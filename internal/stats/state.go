package stats

import (
	"encoding/json"
	"fmt"
)

// This file is the durable-checkpoint face of the package: portable,
// JSON-friendly state structs for every stateful estimator plus the
// validated constructors that rebuild a live value from one. Floats are
// carried verbatim (encoding/json emits the shortest round-tripping
// form), so a restored estimator continues bit-for-bit.

// RNGState is the portable serialized form of an RNG.
type RNGState struct {
	S        [4]uint64 `json:"s"`
	HasGauss bool      `json:"hasGauss,omitempty"`
	Gauss    float64   `json:"gauss,omitempty"`
}

// State captures the generator so RNGFromState reproduces the exact
// remaining stream.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, HasGauss: r.hasGauss, Gauss: r.gauss}
}

// RNGFromState rebuilds a generator from a captured state. An all-zero
// xoshiro state is unreachable from any seed and is rejected.
func RNGFromState(st RNGState) (*RNG, error) {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return nil, fmt.Errorf("stats: RNG state is all zero")
	}
	return &RNG{s: st.S, hasGauss: st.HasGauss, gauss: st.Gauss}, nil
}

// onlineState mirrors Online's unexported fields for JSON round-trips.
type onlineState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON serializes the accumulator. The value receiver matters:
// Online is embedded by value in report structs, and a pointer receiver
// would silently fall back to the empty `{}` encoding there.
func (o Online) MarshalJSON() ([]byte, error) {
	return json.Marshal(onlineState{N: o.n, Mean: o.mean, M2: o.m2, Min: o.min, Max: o.max})
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON.
func (o *Online) UnmarshalJSON(b []byte) error {
	var st onlineState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	if st.N < 0 {
		return fmt.Errorf("stats: Online state has negative count %d", st.N)
	}
	o.n, o.mean, o.m2, o.min, o.max = st.N, st.Mean, st.M2, st.Min, st.Max
	return nil
}

// P2State is the portable serialized form of a P² estimator.
type P2State struct {
	P     float64    `json:"p"`
	Q     [5]float64 `json:"q"`
	N     [5]float64 `json:"n"`
	NP    [5]float64 `json:"np"`
	DN    [5]float64 `json:"dn"`
	Count int64      `json:"count"`
}

// State captures the estimator's marker set.
func (e *P2) State() P2State {
	return P2State{P: e.p, Q: e.q, N: e.n, NP: e.np, DN: e.dn, Count: e.count}
}

// P2FromState rebuilds an estimator from a captured state.
func P2FromState(st P2State) (*P2, error) {
	if st.P <= 0 || st.P >= 1 {
		return nil, fmt.Errorf("stats: P2 state quantile %g outside (0,1)", st.P)
	}
	if st.Count < 0 {
		return nil, fmt.Errorf("stats: P2 state has negative count %d", st.Count)
	}
	return &P2{p: st.P, q: st.Q, n: st.N, np: st.NP, dn: st.DN, count: st.Count}, nil
}

// QuantileState is the portable serialized form of a hybrid estimator:
// either the exact-regime buffer or the spilled P² markers is present.
type QuantileState struct {
	P   float64   `json:"p"`
	Buf []float64 `json:"buf,omitempty"`
	P2  *P2State  `json:"p2,omitempty"`
}

// State captures the estimator in whichever regime it is in.
func (q *Quantile) State() QuantileState {
	st := QuantileState{P: q.p, Buf: append([]float64(nil), q.buf...)}
	if q.p2 != nil {
		p2 := q.p2.State()
		st.P2 = &p2
	}
	return st
}

// QuantileFromState rebuilds a hybrid estimator from a captured state.
func QuantileFromState(st QuantileState) (*Quantile, error) {
	if st.P <= 0 || st.P >= 1 {
		return nil, fmt.Errorf("stats: quantile state %g outside (0,1)", st.P)
	}
	if st.P2 != nil && len(st.Buf) > 0 {
		return nil, fmt.Errorf("stats: quantile state holds both an exact buffer and P2 markers")
	}
	q := &Quantile{p: st.P, buf: append([]float64(nil), st.Buf...)}
	if st.P2 != nil {
		p2, err := P2FromState(*st.P2)
		if err != nil {
			return nil, err
		}
		if p2.p != st.P {
			return nil, fmt.Errorf("stats: quantile state p=%g disagrees with its P2 markers (p=%g)", st.P, p2.p)
		}
		q.p2 = p2
	}
	return q, nil
}
