package sweep

import (
	"testing"
)

func TestBoundedCellMatchesExactAggregates(t *testing.T) {
	// A bounded cell must reproduce every aggregate column exactly
	// except the percentile ones (P² estimates), with no retained
	// records.
	o := Options{Jobs: 800, Seeds: 2}
	exact := Cell{Policy: "memaware"}.MustRun(o)
	bounded := Cell{Policy: "memaware", Bounded: true}.MustRun(o)

	if exact.MeanWait != bounded.MeanWait || exact.MeanBSld != bounded.MeanBSld ||
		exact.NodeUtil != bounded.NodeUtil || exact.Throughput != bounded.Throughput ||
		exact.RemoteFrac != bounded.RemoteFrac || exact.KilledFrac != bounded.KilledFrac ||
		exact.Jobs != bounded.Jobs || exact.JainWait != bounded.JainWait {
		t.Fatalf("bounded cell diverges beyond percentiles:\nexact   %+v\nbounded %+v", exact, bounded)
	}
	if bounded.Records != nil {
		t.Fatal("bounded cell must retain no records")
	}
	// Percentiles are P² estimates; on short, temporally correlated
	// wait streams (backlog ramps) they are rough — accuracy improves
	// with scale (see the metrics tests for the i.i.d. behaviour and
	// EXPERIMENTS.md for the 1M-job run). Sanity band only.
	if exact.P95Wait > 0 {
		if ratio := bounded.P95Wait / exact.P95Wait; ratio < 0.5 || ratio > 2 {
			t.Errorf("P95Wait: bounded %g vs exact %g (ratio %.2f outside sanity band)",
				bounded.P95Wait, exact.P95Wait, ratio)
		}
	}
}
