package sweep

import (
	"strconv"
	"strings"

	"dismem/internal/viz"
)

// Chart converts a figure table — first column is the X axis, numeric
// columns are curves — into an ASCII line chart. Columns that fail to
// parse as numbers in any row (percentages are accepted) are skipped,
// as are non-numeric rows such as a trailing "mean" summary. It returns
// nil when fewer than two points survive, in which case the caller
// should just print the table.
func (t *Table) Chart() *viz.LineChart {
	if len(t.Cols) < 2 || len(t.Rows) < 2 {
		return nil
	}
	// Collect rows whose X parses.
	var xs []float64
	var rows [][]string
	for _, row := range t.Rows {
		x, ok := parseCell(row[0])
		if !ok {
			continue
		}
		xs = append(xs, x)
		rows = append(rows, row)
	}
	if len(xs) < 2 {
		return nil
	}
	chart := &viz.LineChart{
		Title:  t.Title,
		XLabel: t.Cols[0],
		YLabel: "value",
	}
	for col := 1; col < len(t.Cols); col++ {
		ys := make([]float64, 0, len(rows))
		ok := true
		for _, row := range rows {
			v, good := parseCell(row[col])
			if !good {
				ok = false
				break
			}
			ys = append(ys, v)
		}
		if !ok {
			continue
		}
		chart.Series = append(chart.Series, viz.Series{
			Name: t.Cols[col], X: append([]float64(nil), xs...), Y: ys,
		})
	}
	if len(chart.Series) == 0 {
		return nil
	}
	return chart
}

// parseCell parses a table cell as a number, accepting a trailing '%'.
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}
