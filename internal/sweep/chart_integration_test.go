package sweep

import (
	"strings"
	"testing"
)

func TestChartFromRealExperiments(t *testing.T) {
	// Figure sweeps with numeric X axes must chart; policy tables (text
	// X axis) must decline gracefully.
	chartable := map[string]bool{
		"fig3":   true,  // β sweep
		"fig9":   true,  // load sweep
		"table4": false, // policy names as X
	}
	for id, want := range chartable {
		tables, err := Run(id, Options{Jobs: 200, Seeds: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		c := tables[0].Chart()
		if (c != nil) != want {
			t.Fatalf("%s: chartable=%v, want %v", id, c != nil, want)
		}
		if c != nil {
			out := c.Render()
			if !strings.Contains(out, tables[0].Cols[0]) {
				t.Fatalf("%s: chart missing x label:\n%s", id, out)
			}
		}
	}
}
