package sweep

import (
	"strings"
	"testing"
)

func figureTable() *Table {
	t := &Table{
		ID: "figX", Title: "demo", Cols: []string{"x", "wait", "label", "pct"},
	}
	t.AddRow("1", "10", "alpha", "5.0%")
	t.AddRow("2", "20", "beta", "7.5%")
	t.AddRow("3", "15", "gamma", "9.0%")
	t.AddRow("mean", "15", "-", "7.2%") // summary row: no numeric X
	return t
}

func TestChartFromFigureTable(t *testing.T) {
	c := figureTable().Chart()
	if c == nil {
		t.Fatal("chart is nil for a plottable table")
	}
	// "wait" and "pct" are numeric; "label" is not.
	if len(c.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(c.Series))
	}
	if c.Series[0].Name != "wait" || c.Series[1].Name != "pct" {
		t.Fatalf("series names = %s,%s", c.Series[0].Name, c.Series[1].Name)
	}
	// The summary row is dropped: three points per series.
	if len(c.Series[0].X) != 3 || c.Series[0].Y[1] != 20 {
		t.Fatalf("series data = %+v", c.Series[0])
	}
	if c.Series[1].Y[2] != 9.0 {
		t.Fatalf("percent cell parsed to %g, want 9", c.Series[1].Y[2])
	}
	if out := c.Render(); !strings.Contains(out, "demo") {
		t.Fatalf("render missing title:\n%s", out)
	}
}

func TestChartUnplottableTables(t *testing.T) {
	// All-text table (like table2's policy column as X).
	tb := &Table{ID: "t", Title: "t", Cols: []string{"policy", "wait"}}
	tb.AddRow("easy", "10")
	tb.AddRow("memaware", "5")
	if tb.Chart() != nil {
		t.Fatal("non-numeric X axis should not chart")
	}
	// Single row.
	tb2 := &Table{ID: "t", Title: "t", Cols: []string{"x", "y"}}
	tb2.AddRow("1", "2")
	if tb2.Chart() != nil {
		t.Fatal("single-point table should not chart")
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"3.5", 3.5, true},
		{" 12 ", 12, true},
		{"7.5%", 7.5, true},
		{"abc", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := parseCell(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseCell(%q) = %g,%v; want %g,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}
