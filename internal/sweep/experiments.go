package sweep

import (
	"errors"
	"fmt"
	"sort"

	"dismem"
	"dismem/internal/metrics"
	"dismem/internal/stats"
	"dismem/internal/workload"
)

// Func computes one experiment at the given scale.
type Func func(o Options) []*Table

// registry maps experiment IDs to their implementations. IDs follow the
// reconstructed evaluation in DESIGN.md §4.
var registry = map[string]Func{
	"table1": Table1Workload,
	"table2": Table2Policies,
	"table3": Table3Ablation,
	"fig1":   Fig1Stranding,
	"fig2":   Fig2PoolSweep,
	"fig3":   Fig3PenaltySweep,
	"fig4":   Fig4Utilization,
	"fig5":   Fig5Downsize,
	"fig6":   Fig6Topology,
	"fig7":   Fig7Estimates,
	"fig8":   Fig8DilationCDF,
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID. A sweep cancelled through
// Options.Ctx returns ErrInterrupted (unwrappable with errors.Is)
// instead of panicking out of the experiment's MustRun calls.
func Run(id string, o Options) ([]*Table, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown experiment %q (known: %v)", id, IDs())
	}
	return runFunc(f, o)
}

// RunAll executes every experiment in ID order. On interruption it
// returns the tables completed so far alongside the error, so callers
// can still render partial progress.
func RunAll(o Options) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		tables, err := runFunc(registry[id], o)
		out = append(out, tables...)
		if err != nil {
			return out, fmt.Errorf("sweep: experiment %s: %w", id, err)
		}
	}
	return out, nil
}

// runFunc invokes one experiment, converting MustRun's panic back to
// the error it wraps. Interruption is an input condition (a signal),
// not a programming bug, so it must not crash the process; other
// errors from deterministic experiments keep panicking.
func runFunc(f Func, o Options) (tables []*Table, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok && errors.Is(e, ErrInterrupted) {
			tables, err = nil, e
			return
		}
		panic(r)
	}()
	return f(o), nil
}

// --- machine shorthands -------------------------------------------------

const gib = int64(1024) // MiB per GiB

// baselineMachine is the conventional big-memory reference:
// 256 GiB/node, no pool.
func baselineMachine() dismem.MachineConfig { return dismem.BaselineMachine(256 * gib) }

// disaggMachine has localGiB DRAM per node and poolGiB of pool per rack.
func disaggMachine(localGiB, poolGiB int64) dismem.MachineConfig {
	mc := dismem.DefaultMachine()
	mc.LocalMemMiB = localGiB * gib
	mc.Topology = dismem.TopologyRack
	mc.PoolMiB = poolGiB * gib
	return mc
}

// stressedMachine is disaggMachine with a deliberately tight fabric
// (8 GiB/s per rack pool) so that fabric contention — and therefore the
// balancing/shaping mechanisms and the contention-sensitive memory
// model — actually bind.
func stressedMachine(localGiB, poolGiB int64) dismem.MachineConfig {
	mc := disaggMachine(localGiB, poolGiB)
	mc.FabricGiBps = 8
	return mc
}

// globalMachine is disaggMachine with one machine-wide pool of equal
// total capacity and proportionally scaled fabric bandwidth.
func globalMachine(localGiB, poolGiBPerRackEquiv int64) dismem.MachineConfig {
	mc := disaggMachine(localGiB, poolGiBPerRackEquiv)
	mc.Topology = dismem.TopologyGlobal
	mc.PoolMiB = poolGiBPerRackEquiv * gib * int64(mc.Racks)
	mc.FabricGiBps *= float64(mc.Racks)
	return mc
}

// --- Table 1: workload characteristics ----------------------------------

// Table1Workload summarises the synthetic trace (the paper's workload
// table): population sizes, runtime/size/memory distributions, and the
// fraction of jobs that exceed the downsized nodes' local DRAM.
func Table1Workload(o Options) []*Table {
	o = o.withDefaults()
	mc := disaggMachine(64, 4096)
	wl, err := dismem.GenerateWorkload(dismem.DefaultGen(o.Jobs, 1, mc))
	if err != nil {
		panic(err)
	}
	s := workload.Summarize(wl, mc.LocalMemMiB)
	t := &Table{
		ID:    "table1",
		Title: "Workload characteristics (synthetic, calibrated to production trace shapes)",
		Note:  fmt.Sprintf("seed 1, %d jobs", o.Jobs),
		Cols:  []string{"statistic", "value"},
	}
	t.AddRow("jobs", f0(float64(s.Jobs)))
	t.AddRow("users", f0(float64(s.Users)))
	t.AddRow("trace span (h)", f1(float64(s.SpanSec)/3600))
	t.AddRow("total demand (node-hours)", f0(s.NodeHours))
	t.AddRow("nodes/job mean", f1(s.Nodes.Mean()))
	t.AddRow("nodes/job max", f0(s.Nodes.Max()))
	t.AddRow("runtime mean (s)", f0(s.Runtime.Mean()))
	t.AddRow("runtime max (s)", f0(s.Runtime.Max()))
	t.AddRow("estimate accuracy mean", f2(s.Accuracy.Mean()))
	t.AddRow("mem/node mean (GiB)", f1(s.MemNode.Mean()/float64(gib)))
	t.AddRow("mem/node p50 (GiB)", f1(s.MemP50/float64(gib)))
	t.AddRow("mem/node p95 (GiB)", f1(s.MemP95/float64(gib)))
	t.AddRow("mem/node p99 (GiB)", f1(s.MemP99/float64(gib)))
	t.AddRow(fmt.Sprintf("jobs > %d GiB/node (need pool)", 64), fp(s.LargeMemFraction))
	return []*Table{t}
}

// --- Fig 1: memory stranding on the conventional machine ----------------

// Fig1Stranding runs EASY on the big-memory baseline and reports the
// time-weighted distribution of system memory utilization against node
// (CPU) utilization: DRAM sits idle while nodes are busy — the memory
// stranding that motivates disaggregation.
func Fig1Stranding(o Options) []*Table {
	o = o.withDefaults()
	mc := baselineMachine()
	agg := Cell{Machine: mc, Policy: "easy-local"}.MustRun(o)

	memSeries := timeWeightedUtil(agg.Records, func(r *metrics.JobRecord) float64 {
		return float64(r.MemPerNode) * float64(r.Nodes) / float64(mc.TotalLocalMiB())
	})
	nodeSeries := timeWeightedUtil(agg.Records, func(r *metrics.JobRecord) float64 {
		return float64(r.Nodes) / float64(mc.TotalNodes())
	})

	t := &Table{
		ID:    "fig1",
		Title: "Memory stranding: time-weighted CDF of system utilization (easy-local, 256 GiB/node baseline)",
		Note:  o.note() + "; CDF over seed 1",
		Cols:  []string{"utilization<=", "fraction of time (memory)", "fraction of time (nodes)"},
	}
	for i := 1; i <= 10; i++ {
		x := float64(i) / 10
		t.AddRow(f1(x), f2(memSeries.cdf(x)), f2(nodeSeries.cdf(x)))
	}
	t.AddRow("mean", f2(memSeries.mean()), f2(nodeSeries.mean()))
	return []*Table{t}
}

// utilDist is a time-weighted empirical distribution of a utilization
// signal reconstructed from job records.
type utilDist struct {
	levels  []float64 // utilization level per interval
	weights []float64 // interval durations
}

// timeWeightedUtil rebuilds the piecewise-constant utilization signal
// value(t) = Σ_running contrib(job) from job start/end events.
func timeWeightedUtil(records []metrics.JobRecord, contrib func(*metrics.JobRecord) float64) utilDist {
	type ev struct {
		t int64
		d float64
	}
	var evs []ev
	for i := range records {
		r := &records[i]
		if r.Rejected {
			continue
		}
		c := contrib(r)
		evs = append(evs, ev{r.Start, c}, ev{r.End, -c})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	var d utilDist
	level := 0.0
	for i := 0; i < len(evs); {
		t := evs[i].t
		if i > 0 && t > evs[i-1].t {
			d.levels = append(d.levels, level)
			d.weights = append(d.weights, float64(t-evs[i-1].t))
		}
		for i < len(evs) && evs[i].t == t {
			level += evs[i].d
			i++
		}
	}
	return d
}

// cdf returns the fraction of time the signal was <= x.
func (d utilDist) cdf(x float64) float64 {
	var hit, total float64
	for i, l := range d.levels {
		total += d.weights[i]
		if l <= x+1e-12 {
			hit += d.weights[i]
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

// mean returns the time-weighted mean level.
func (d utilDist) mean() float64 {
	var acc, total float64
	for i, l := range d.levels {
		acc += l * d.weights[i]
		total += d.weights[i]
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// --- Fig 2: pool-size sweep ----------------------------------------------

// Fig2PoolSweep sweeps the per-rack pool size with 64 GiB local DRAM
// under the memory-aware policy: wait falls steeply, then flattens
// (diminishing returns). Pool 0 degenerates to the local-only machine
// where large-memory jobs are rejected outright.
func Fig2PoolSweep(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig2",
		Title: "Job wait time vs. per-rack pool size (memaware, 64 GiB/node local, linear β=0.5)",
		Note:  o.note(),
		Cols:  []string{"pool GiB/rack", "mean wait (s)", "p95 wait (s)", "rejected", "remote jobs", "pool util"},
	}
	for _, poolGiB := range []int64{0, 512, 1024, 2048, 4096, 8192} {
		var cell Cell
		if poolGiB == 0 {
			mc := dismem.BaselineMachine(64 * gib)
			cell = Cell{Machine: mc, Policy: "easy-local"}
		} else {
			cell = Cell{Machine: disaggMachine(64, poolGiB), Policy: "memaware"}
		}
		a := cell.MustRun(o)
		t.AddRow(f0(float64(poolGiB)), f0(a.MeanWait), f0(a.P95Wait),
			fp(a.RejectedFrac), fp(a.RemoteFrac), f2(a.PoolUtil))
	}
	return []*Table{t}
}

// --- Fig 3: remote-penalty sweep ------------------------------------------

// Fig3PenaltySweep sweeps the full-remote penalty β from CXL-class to
// RDMA-class. The oblivious spiller degrades monotonically; the
// memory-aware policy's slowdown cap bounds per-job dilation at the
// cost of slightly higher waits at large β (the paper's central
// trade-off figure).
func Fig3PenaltySweep(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig3",
		Title: "Bounded slowdown and dilation vs. remote penalty β (64 GiB local + 2 TiB/rack pool)",
		Note:  o.note(),
		Cols: []string{"β", "bsld oblivious", "bsld memaware",
			"dil oblivious", "dil memaware", "p95 dil obliv", "p95 dil memaw", "rejected memaw"},
	}
	mc := disaggMachine(64, 2048)
	for _, beta := range []float64{0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0} {
		model := fmt.Sprintf("linear:%g", beta)
		ob := Cell{Machine: mc, Policy: "easy-oblivious", Model: model}.MustRun(o)
		ma := Cell{Machine: mc, Policy: "memaware", Model: model}.MustRun(o)
		t.AddRow(f2(beta), f1(ob.MeanBSld), f1(ma.MeanBSld),
			f2(ob.MeanDilRemote), f2(ma.MeanDilRemote),
			f2(ob.P95DilRemote), f2(ma.P95DilRemote), fp(ma.RejectedFrac))
	}
	return []*Table{t}
}

// --- Fig 4: utilization by policy ------------------------------------------

// Fig4Utilization compares node, local-DRAM and pool utilization across
// policies on the downsized machine (64 GiB + 4 TiB/rack), with the
// big-memory baseline as reference.
func Fig4Utilization(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig4",
		Title: "Resource utilization by policy",
		Note:  o.note() + "; baseline row runs on the 256 GiB machine",
		Cols:  []string{"policy", "node util", "local mem util", "pool util", "rejected"},
	}
	rows := []struct {
		label string
		cell  Cell
	}{
		{"easy-local @256GiB (baseline)", Cell{Machine: baselineMachine(), Policy: "easy-local"}},
		{"easy-local @64GiB", Cell{Machine: dismem.BaselineMachine(64 * gib), Policy: "easy-local"}},
		{"easy-oblivious", Cell{Machine: disaggMachine(64, 4096), Policy: "easy-oblivious"}},
		{"memaware", Cell{Machine: disaggMachine(64, 4096), Policy: "memaware"}},
	}
	for _, r := range rows {
		a := r.cell.MustRun(o)
		t.AddRow(r.label, f2(a.NodeUtil), f2(a.LocalUtil), f2(a.PoolUtil), fp(a.RejectedFrac))
	}
	return []*Table{t}
}

// --- Table 2: headline policy comparison -----------------------------------

// Table2Policies is the paper's headline table: every policy on the
// downsized disaggregated machine, with the big-memory baseline for
// reference.
func Table2Policies(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "table2",
		Title: "Policy comparison (64 GiB/node + 2 TiB/rack pool, 8 GiB/s fabric, bandwidth β=1 γ=1)",
		Note:  o.note(),
		Cols: []string{"policy", "mean wait (s)", "p95 wait (s)", "mean bsld",
			"node util", "jobs/h", "remote", "mean dil", "killed", "rejected", "jain"},
	}
	mc := stressedMachine(64, 2048)
	const model = "bandwidth:1,1"
	rows := []struct {
		label string
		cell  Cell
	}{
		{"easy-local @256GiB", Cell{Machine: baselineMachine(), Policy: "easy-local", Model: model}},
		{"fcfs-local", Cell{Machine: mc, Policy: "fcfs-local", Model: model}},
		{"easy-local", Cell{Machine: mc, Policy: "easy-local", Model: model}},
		{"cons-local", Cell{Machine: mc, Policy: "cons-local", Model: model}},
		{"easy-oblivious", Cell{Machine: mc, Policy: "easy-oblivious", Model: model}},
		{"memaware", Cell{Machine: mc, Policy: "memaware", Model: model}},
		{"memaware-cons", Cell{Machine: mc, Policy: "memaware-cons", Model: model}},
		{"memaware-patient", Cell{Machine: mc, Policy: "memaware-patient", Model: model}},
	}
	for _, r := range rows {
		a := r.cell.MustRun(o)
		t.AddRow(r.label, f0(a.MeanWait), f0(a.P95Wait), f1(a.MeanBSld),
			f2(a.NodeUtil), f1(a.Throughput), fp(a.RemoteFrac),
			f2(a.MeanDilRemote), fp(a.KilledFrac), fp(a.RejectedFrac), f2(a.JainWait))
	}
	return []*Table{t}
}

// --- Fig 5: DRAM downsizing ------------------------------------------------

// Fig5Downsize shrinks per-node local DRAM while a rack pool holds
// total system memory constant at the baseline's 256 GiB/node. Without
// a pool, downsizing collapses capacity (rejections); with the pool and
// the memory-aware policy most of the DRAM can be shed cheaply.
func Fig5Downsize(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig5",
		Title: "DRAM downsizing at constant total memory (memaware vs. no-pool, linear β=0.5)",
		Note:  o.note(),
		Cols: []string{"local GiB/node", "pool GiB/rack", "wait memaware (s)", "wait no-pool (s)",
			"rejected no-pool", "jobs/h memaware", "dil memaware"},
	}
	for _, local := range []int64{256, 192, 128, 96, 64, 48, 32} {
		poolPerRack := (256 - local) * 16 // nodes/rack * freed DRAM
		var ma Agg
		if poolPerRack == 0 {
			ma = Cell{Machine: baselineMachine(), Policy: "easy-local"}.MustRun(o)
		} else {
			ma = Cell{Machine: disaggMachine(local, poolPerRack), Policy: "memaware"}.MustRun(o)
		}
		np := Cell{Machine: dismem.BaselineMachine(local * gib), Policy: "easy-local"}.MustRun(o)
		t.AddRow(f0(float64(local)), f0(float64(poolPerRack)),
			f0(ma.MeanWait), f0(np.MeanWait), fp(np.RejectedFrac),
			f1(ma.Throughput), f2(ma.MeanDilRemote))
	}
	return []*Table{t}
}

// --- Fig 6: rack pools vs. one global pool ----------------------------------

// Fig6Topology compares rack-level pools against a single global pool
// of equal total capacity under memaware: the global pool multiplexes
// better (lower waits at small sizes), rack pools bound fabric blast
// radius; the gap closes as capacity grows.
func Fig6Topology(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig6",
		Title: "Pool topology: per-rack vs. global at equal total capacity (memaware, bandwidth β=0.5 γ=1)",
		Note:  o.note(),
		Cols: []string{"pool GiB/rack-equiv", "wait rack (s)", "wait global (s)",
			"dil rack", "dil global", "rejected rack", "rejected global"},
	}
	for _, poolGiB := range []int64{512, 1024, 2048, 4096} {
		rackMC := disaggMachine(64, poolGiB)
		rackMC.FabricGiBps = 16
		globMC := globalMachine(64, poolGiB)
		globMC.FabricGiBps = 16 * float64(globMC.Racks)
		rack := Cell{Machine: rackMC, Policy: "memaware", Model: "bandwidth:0.5,1"}.MustRun(o)
		glob := Cell{Machine: globMC, Policy: "memaware", Model: "bandwidth:0.5,1"}.MustRun(o)
		t.AddRow(f0(float64(poolGiB)), f0(rack.MeanWait), f0(glob.MeanWait),
			f2(rack.MeanDilRemote), f2(glob.MeanDilRemote),
			fp(rack.RejectedFrac), fp(glob.RejectedFrac))
	}
	return []*Table{t}
}

// --- Fig 7: sensitivity to user estimates -----------------------------------

// Fig7Estimates sweeps user estimate accuracy φ: backfill quality (and
// thus waits) improves as estimates tighten, for both the baseline and
// the memory-aware policy.
func Fig7Estimates(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig7",
		Title: "Sensitivity to user runtime-estimate accuracy φ (64 GiB + 4 TiB/rack)",
		Note:  o.note(),
		Cols:  []string{"φ", "wait easy-local@256 (s)", "wait memaware (s)", "bsld easy-local@256", "bsld memaware"},
	}
	mc := disaggMachine(64, 4096)
	base := baselineMachine()
	for _, phi := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		genB := dismem.DefaultGen(o.Jobs, 1, base)
		genB.EstimateAccuracy = phi
		genM := dismem.DefaultGen(o.Jobs, 1, mc)
		genM.EstimateAccuracy = phi
		b := Cell{Machine: base, Policy: "easy-local", Gen: &genB}.MustRun(o)
		m := Cell{Machine: mc, Policy: "memaware", Gen: &genM}.MustRun(o)
		t.AddRow(f2(phi), f0(b.MeanWait), f0(m.MeanWait), f1(b.MeanBSld), f1(m.MeanBSld))
	}
	return []*Table{t}
}

// --- Table 3: ablation of the memory-aware knobs -----------------------------

// Table3Ablation switches off each memaware mechanism in turn under a
// stressed configuration (small pools, RDMA-class penalty, contention-
// sensitive model) where the mechanisms matter most.
func Table3Ablation(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "table3",
		Title: "Ablation of memaware mechanisms (64 GiB + 1 TiB/rack, 8 GiB/s fabric, bandwidth β=1.5 γ=1)",
		Note:  o.note(),
		Cols: []string{"variant", "mean wait (s)", "mean bsld", "mean dil",
			"p95 dil", "killed", "remote"},
	}
	mc := stressedMachine(64, 1024)
	const model = "bandwidth:1.5,1"
	rows := []struct {
		label string
		cell  Cell
	}{
		{"memaware (full)", Cell{Machine: mc, Policy: "memaware", Model: model}},
		{"- slowdown cap", Cell{Machine: mc, Policy: "memaware-nocap", Model: model}},
		{"- pool balancing", Cell{Machine: mc, Policy: "memaware-nobal", Model: model}},
		{"- cross-rack shaping", Cell{Machine: mc, Policy: "memaware-noshape", Model: model}},
		{"- dilated limits (strict kill)", Cell{Machine: mc, Policy: "memaware", Model: model, StrictKill: true}},
		{"+ 30 min spill patience", Cell{Machine: mc, Policy: "memaware-patient", Model: model}},
		{"oblivious spill", Cell{Machine: mc, Policy: "easy-oblivious", Model: model}},
	}
	for _, r := range rows {
		a := r.cell.MustRun(o)
		t.AddRow(r.label, f0(a.MeanWait), f1(a.MeanBSld), f2(a.MeanDilRemote),
			f2(a.P95DilRemote), fp(a.KilledFrac), fp(a.RemoteFrac))
	}
	return []*Table{t}
}

// --- Fig 8: per-job dilation CDF ---------------------------------------------

// Fig8DilationCDF contrasts the per-job dilation distribution of the
// oblivious spiller with the capped memory-aware policy at RDMA-class
// penalty: the cap truncates the tail.
func Fig8DilationCDF(o Options) []*Table {
	o = o.withDefaults()
	mc := stressedMachine(64, 2048)
	const model = "bandwidth:1,1"
	ob := Cell{Machine: mc, Policy: "easy-oblivious", Model: model}.MustRun(o)
	ma := Cell{Machine: mc, Policy: "memaware", Model: model}.MustRun(o)

	dils := func(records []metrics.JobRecord) []float64 {
		var out []float64
		for i := range records {
			r := &records[i]
			if !r.Rejected && r.RemoteMiB > 0 {
				out = append(out, r.Dilation)
			}
		}
		return out
	}
	obD, maD := dils(ob.Records), dils(ma.Records)

	t := &Table{
		ID:    "fig8",
		Title: "CDF of per-job dilation among pool-using jobs (bandwidth β=1 γ=1, 2 TiB/rack, 8 GiB/s fabric)",
		Note:  o.note() + "; CDF over seed 1",
		Cols:  []string{"percentile", "dilation oblivious", "dilation memaware"},
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 100} {
		t.AddRow(f0(p), f2(stats.Percentile(obD, p)), f2(stats.Percentile(maD, p)))
	}
	return []*Table{t}
}
