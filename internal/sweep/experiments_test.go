package sweep

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOptions keeps experiment smoke tests fast: the point here is that
// every experiment runs end-to-end and emits well-formed tables, not
// that the numbers are converged (bench_test.go at the repo root runs
// them at evaluation scale).
var tinyOptions = Options{Jobs: 250, Seeds: 1}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig1", "fig10", "fig11", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "table1", "table2", "table3", "table4", "val1", "val2"}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", tinyOptions); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tables, err := Run(id, tinyOptions)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, tb := range tables {
				if tb.ID != id {
					t.Fatalf("table id %q under experiment %q", tb.ID, id)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("table %s has no rows", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Cols) {
						t.Fatalf("table %s: ragged row %v", tb.ID, row)
					}
					for _, cell := range row {
						if cell == "" || strings.Contains(cell, "NaN") {
							t.Fatalf("table %s: bad cell %q in %v", tb.ID, cell, row)
						}
					}
				}
				// Render paths must not panic and must mention the id.
				if !strings.Contains(tb.String(), tb.ID) {
					t.Fatalf("rendered table missing id:\n%s", tb.String())
				}
				_ = tb.CSV()
			}
		})
	}
}

func TestCellDeterministicAcrossRuns(t *testing.T) {
	cell := Cell{Policy: "memaware", Model: "bandwidth:1,1"}
	a := cell.MustRun(tinyOptions)
	b := cell.MustRun(tinyOptions)
	if a.MeanWait != b.MeanWait || a.MeanBSld != b.MeanBSld || a.NodeUtil != b.NodeUtil {
		t.Fatalf("same cell diverged: %+v vs %+v", a, b)
	}
}

func TestCellSeedAveraging(t *testing.T) {
	one := Cell{Policy: "easy-local", Machine: baselineMachine()}.MustRun(Options{Jobs: 250, Seeds: 1})
	three := Cell{Policy: "easy-local", Machine: baselineMachine()}.MustRun(Options{Jobs: 250, Seeds: 3})
	if len(one.Reports) != 1 || len(three.Reports) != 3 {
		t.Fatalf("reports kept: %d and %d, want 1 and 3", len(one.Reports), len(three.Reports))
	}
	// The first seed's contribution must appear in the 3-seed mean:
	// reconstruct it and compare.
	var mean float64
	for _, r := range three.Reports {
		mean += r.Wait.Mean()
	}
	mean /= 3
	if diff := mean - three.MeanWait; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("seed mean mismatch: %g vs %g", mean, three.MeanWait)
	}
}

func TestCellErrorPropagates(t *testing.T) {
	_, err := Cell{Policy: "no-such-policy"}.Run(tinyOptions)
	if err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("bad policy not reported: %v", err)
	}
}

func TestFig3ShapeOblivousDilationGrows(t *testing.T) {
	// The central claim of the penalty sweep: the oblivious policy's
	// dilation grows with β while memaware's stays under its 1.5 cap.
	tables, err := Run("fig3", Options{Jobs: 400, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var firstOb, lastOb, worstMa float64
	for i, row := range tb.Rows {
		ob, err1 := strconv.ParseFloat(row[3], 64) // dil oblivious
		ma, err2 := strconv.ParseFloat(row[4], 64) // dil memaware
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable dilations in row %v", row)
		}
		if i == 0 {
			firstOb = ob
		}
		lastOb = ob
		if ma > worstMa {
			worstMa = ma
		}
	}
	if lastOb <= firstOb {
		t.Fatalf("oblivious dilation did not grow with β: %g -> %g", firstOb, lastOb)
	}
	if worstMa > 1.5+1e-9 {
		t.Fatalf("memaware mean dilation %g exceeds its cap", worstMa)
	}
}

func TestFig1StrandingShape(t *testing.T) {
	// Memory utilization must sit well below node utilization on the
	// big-memory baseline (the stranding motivation).
	tables, err := Run("fig1", Options{Jobs: 400, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	last := tb.Rows[len(tb.Rows)-1] // "mean" row
	mem, err1 := strconv.ParseFloat(last[1], 64)
	nodes, err2 := strconv.ParseFloat(last[2], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable mean row %v", last)
	}
	if mem >= nodes {
		t.Fatalf("memory util %.2f not below node util %.2f — no stranding", mem, nodes)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Jobs != 8000 || o.Seeds != 5 {
		t.Fatalf("defaults = %+v", o)
	}
	if !strings.Contains(o.note(), "8000") {
		t.Fatalf("note = %q", o.note())
	}
}
