package sweep

import (
	"fmt"
	"strings"

	"dismem"
	"dismem/internal/cluster"
	"dismem/internal/memmodel"
	"dismem/internal/queueing"
	"dismem/internal/sched"
	"dismem/internal/sim"
	"dismem/internal/stats"
	"dismem/internal/workload"
)

// This file holds experiments beyond the reconstructed core evaluation:
// the simulator-validation table (val1) that simulation papers include,
// and two extension sweeps (load scaling, failure injection) exercising
// design-space corners the core figures hold fixed.

func init() {
	registry["val1"] = Val1Queueing
	registry["fig9"] = Fig9LoadSweep
	registry["fig10"] = Fig10Failures
	registry["table4"] = Table4Fairness
	registry["val2"] = Val2Lublin
	registry["fig11"] = Fig11OutageSeverity
}

// Val1Queueing validates the DES core against closed-form queueing
// theory: memoryless single-node jobs under FCFS are an M/M/c queue, so
// the simulated mean wait must track the Erlang-C prediction across
// utilization levels.
func Val1Queueing(o Options) []*Table {
	o = o.withDefaults()
	const (
		nodes   = 8
		meanSvc = 1000.0
	)
	t := &Table{
		ID:    "val1",
		Title: "Simulator validation: simulated FCFS wait vs. Erlang-C (M/M/8, exp. service 1000 s)",
		Note:  fmt.Sprintf("%d jobs/run, mean of %d seeds", o.Jobs, o.Seeds),
		Cols:  []string{"rho", "simulated wait (s)", "Erlang-C wait (s)", "rel. error"},
	}
	mc := cluster.Config{
		Racks: 1, NodesPerRack: nodes, CoresPerNode: 1, LocalMemMiB: 10,
		Topology: cluster.TopologyNone,
	}
	for _, rho := range []float64{0.5, 0.7, 0.8, 0.9} {
		lambda := rho * nodes / meanSvc
		q := queueing.MMc{Lambda: lambda, Mu: 1 / meanSvc, C: nodes}
		want := q.MeanWait()

		var pooled, n float64
		for seed := 1; seed <= o.Seeds; seed++ {
			w := mmcWorkload(o.Jobs, uint64(seed), lambda, meanSvc)
			res, err := sim.Run(sim.Config{
				Machine: mc,
				Model:   memmodel.Linear{Beta: 0},
				Scheduler: &sched.Batch{
					Order: sched.FCFS{}, Backfill: sched.BackfillNone, Placer: sched.LocalOnly{},
				},
			}, w)
			if err != nil {
				panic(err)
			}
			pooled += res.Report.Wait.Sum()
			n += float64(res.Report.Wait.N())
		}
		got := pooled / n
		rel := 0.0
		if want > 0 {
			rel = (got - want) / want
		}
		t.AddRow(f2(rho), f1(got), f1(want), fmt.Sprintf("%+.1f%%", 100*rel))
	}
	return []*Table{t}
}

// mmcWorkload builds a memoryless single-node trace (Poisson arrivals,
// exponential runtimes, exact estimates).
func mmcWorkload(jobs int, seed uint64, lambda, meanSvc float64) *workload.Workload {
	rng := stats.NewRNG(seed * 977)
	w := &workload.Workload{Name: "mmc"}
	now := 0.0
	for i := 1; i <= jobs; i++ {
		now += rng.ExpFloat64() / lambda
		rt := int64(rng.ExpFloat64()*meanSvc) + 1
		w.Jobs = append(w.Jobs, &workload.Job{
			ID: i, Submit: int64(now), Nodes: 1, MemPerNode: 1,
			Estimate: rt, BaseRuntime: rt,
		})
	}
	return w
}

// Fig9LoadSweep scales the offered load (via mean inter-arrival time)
// on the disaggregated machine: the memory-aware policy's advantage
// over oblivious spilling grows with load, because congestion — which
// only memaware avoids — builds superlinearly near saturation.
func Fig9LoadSweep(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig9",
		Title: "Load scaling: wait vs. offered load (64 GiB + 2 TiB/rack, 8 GiB/s fabric, bandwidth β=1 γ=1)",
		Note:  o.note() + "; load 1.0 = calibrated default arrival rate",
		Cols: []string{"load", "wait oblivious (s)", "wait memaware (s)",
			"bsld oblivious", "bsld memaware", "util memaware"},
	}
	mc := stressedMachine(64, 2048)
	const baseInterarrival = 90.0
	for _, load := range []float64{0.6, 0.8, 1.0, 1.2} {
		gen := dismem.DefaultGen(o.Jobs, 1, mc)
		gen.MeanInterarrival = baseInterarrival / load
		ob := Cell{Machine: mc, Policy: "easy-oblivious", Model: "bandwidth:1,1", Gen: &gen}.MustRun(o)
		genM := gen
		ma := Cell{Machine: mc, Policy: "memaware", Model: "bandwidth:1,1", Gen: &genM}.MustRun(o)
		t.AddRow(f2(load), f0(ob.MeanWait), f0(ma.MeanWait),
			f1(ob.MeanBSld), f1(ma.MeanBSld), f2(ma.NodeUtil))
	}
	return []*Table{t}
}

// Table4Fairness compares how evenly the policies treat users: Jain
// index over per-user mean wait and the spread between the best- and
// worst-served user. Aggressive size-based ordering (SJF/WFP) and
// memory-aware admission could both skew service; this table
// quantifies the cost.
func Table4Fairness(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "table4",
		Title: "Per-user fairness by policy (64 GiB + 2 TiB/rack, 8 GiB/s fabric, bandwidth β=1 γ=1)",
		Note:  o.note() + "; fairness over seed 1",
		Cols:  []string{"policy", "jain(wait)", "best user wait (s)", "worst user wait (s)", "mean wait (s)"},
	}
	mc := stressedMachine(64, 2048)
	for _, pol := range []string{"easy-local", "sjf-local", "wfp-local", "easy-oblivious", "memaware", "memaware-patient"} {
		a := Cell{Machine: mc, Policy: pol, Model: "bandwidth:1,1"}.MustRun(o)
		var fair *metricsFairness
		fair = fairnessOf(a)
		t.AddRow(pol, f2(fair.jain), f0(fair.best), f0(fair.worst), f0(a.MeanWait))
	}
	return []*Table{t}
}

// metricsFairness is the slice of the fairness report the table needs.
type metricsFairness struct{ jain, best, worst float64 }

func fairnessOf(a Agg) *metricsFairness {
	// Recompute from the retained first-seed records.
	rec := recorderFromRecords(a)
	fr := rec.Fairness()
	return &metricsFairness{jain: fr.JainWait, best: fr.BestUserMeanWait, worst: fr.WorstUserMeanWait}
}

// Val2Lublin cross-checks the two workload models: the headline policy
// comparison's ordering must be stable when the calibrated generator is
// swapped for the Lublin-Feitelson model (a robustness check on the
// conclusions, not a fit to any particular trace).
func Val2Lublin(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "val2",
		Title: "Workload-model robustness: calibrated vs. Lublin-Feitelson (memaware vs oblivious)",
		Note:  o.note(),
		Cols: []string{"workload model", "wait oblivious (s)", "wait memaware (s)",
			"dil oblivious", "dil memaware"},
	}
	mc := stressedMachine(64, 2048)
	const model = "bandwidth:1,1"
	// Calibrated generator (the default).
	ob := Cell{Machine: mc, Policy: "easy-oblivious", Model: model}.MustRun(o)
	ma := Cell{Machine: mc, Policy: "memaware", Model: model}.MustRun(o)
	t.AddRow("calibrated", f0(ob.MeanWait), f0(ma.MeanWait),
		f2(ob.MeanDilRemote), f2(ma.MeanDilRemote))
	// Lublin model via per-seed workloads.
	obL := lublinCell(mc, "easy-oblivious", model, o)
	maL := lublinCell(mc, "memaware", model, o)
	t.AddRow("lublin", f0(obL.MeanWait), f0(maL.MeanWait),
		f2(obL.MeanDilRemote), f2(maL.MeanDilRemote))
	return []*Table{t}
}

func lublinCell(mc dismem.MachineConfig, policy, model string, o Options) Agg {
	var agg Agg
	for seed := 1; seed <= o.Seeds; seed++ {
		wl, err := loadMatchedLublin(o.Jobs, uint64(seed), mc, 0.9)
		if err != nil {
			panic(err)
		}
		res, err := dismem.Simulate(dismem.Options{
			Machine: mc, Policy: policy, Model: model, Workload: wl,
		})
		if err != nil {
			panic(err)
		}
		r := res.Report
		agg.MeanWait += r.Wait.Mean()
		agg.MeanDilRemote += r.DilationRemote.Mean()
	}
	agg.MeanWait /= float64(o.Seeds)
	agg.MeanDilRemote /= float64(o.Seeds)
	return agg
}

// loadMatchedLublin generates a Lublin-Feitelson trace whose offered
// load (node-hours demanded per node-hour of machine time) is scaled to
// the target by stretching the arrival process: the Lublin runtime
// distribution is much heavier than the calibrated generator's, so an
// unscaled trace would saturate any machine and measure only the
// overload regime.
func loadMatchedLublin(jobs int, seed uint64, mc dismem.MachineConfig, target float64) (*dismem.Workload, error) {
	cfg := workload.DefaultLublinConfig(jobs, seed, mc.TotalNodes())
	probe, err := workload.GenerateLublin(cfg)
	if err != nil {
		return nil, err
	}
	var nodeSeconds float64
	for _, j := range probe.Jobs {
		nodeSeconds += float64(j.Nodes) * float64(j.BaseRuntime)
	}
	first, last := probe.Span()
	span := float64(last - first)
	if span <= 0 {
		return probe, nil
	}
	load := nodeSeconds / (span * float64(mc.TotalNodes()))
	cfg.MeanInterarrival *= load / target
	return workload.GenerateLublin(cfg)
}

// Fig11OutageSeverity drives the scenario subsystem across the paper's
// headline policies: a planned 12-hour outage (racks down at t=6 h,
// repaired at t=18 h) of increasing severity. Unlike fig10's random
// Poisson failures, the outage is a deterministic timeline — every
// policy faces the identical intervention — so the table isolates how
// policies absorb a correlated capacity loss: kills and resubmissions
// at the outage instant, then queueing through the shrunken machine.
func Fig11OutageSeverity(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig11",
		Title: "Outage severity: 12 h planned rack outage at t=6 h (64 GiB + 2 TiB/rack, linear β=0.5)",
		Note:  o.note() + "; identical deterministic outage timeline per policy",
		Cols: []string{"racks down", "wait easy-local (s)", "wait easy-obliv (s)", "wait memaware (s)",
			"bsld easy-obliv", "bsld memaware", "killed memaware", "restarts memaware"},
	}
	mc := disaggMachine(64, 2048)
	for _, racks := range []int{0, 1, 2, 4} {
		sc := outageScenario(racks, 6*3600, 18*3600)
		el := Cell{Machine: mc, Policy: "easy-local", Scenario: sc}.MustRun(o)
		ob := Cell{Machine: mc, Policy: "easy-oblivious", Scenario: sc}.MustRun(o)
		ma := Cell{Machine: mc, Policy: "memaware", Scenario: sc}.MustRun(o)
		t.AddRow(f0(float64(racks)), f0(el.MeanWait), f0(ob.MeanWait), f0(ma.MeanWait),
			f1(ob.MeanBSld), f1(ma.MeanBSld), fp(ma.KilledFrac), f1(ma.FailureKills))
	}
	return []*Table{t}
}

// outageScenario builds a timeline downing the first n racks at downAt
// and repairing them at upAt (nil for n = 0: the undisturbed baseline).
func outageScenario(n int, downAt, upAt int64) *dismem.Scenario {
	if n == 0 {
		return nil
	}
	var b []string
	for r := 0; r < n; r++ {
		b = append(b, fmt.Sprintf("at=%d down rack=%d", downAt, r),
			fmt.Sprintf("at=%d up rack=%d", upAt, r))
	}
	sc, err := dismem.ParseScenario(strings.Join(b, "; "))
	if err != nil {
		panic(err)
	}
	return sc
}

// Fig10Failures injects node failures at decreasing MTBF and reports
// their toll: failure-killed jobs and the wait inflation from capacity
// loss. The memory-aware policy is compared against the big-memory
// baseline at equal failure rates (failures hit both equally; the
// disaggregated machine's exposure comes only from its extra queueing
// sensitivity).
func Fig10Failures(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig10",
		Title: "Failure injection: per-node MTBF vs. job losses and wait (repair 1 h)",
		Note:  o.note(),
		Cols: []string{"MTBF (h/node)", "failures", "restarts",
			"wait memaware (s)", "wait baseline (s)"},
	}
	mc := disaggMachine(64, 4096)
	base := baselineMachine()
	for _, mtbfH := range []int64{0, 2000, 500, 100} {
		var fc *sim.FailureConfig
		if mtbfH > 0 {
			fc = &sim.FailureConfig{MTBFPerNodeSec: mtbfH * 3600, RepairSec: 3600, Seed: 1}
		}
		ma := Cell{Machine: mc, Policy: "memaware", Failures: fc}.MustRun(o)
		bl := Cell{Machine: base, Policy: "easy-local", Failures: fc}.MustRun(o)
		label := "∞ (reliable)"
		if mtbfH > 0 {
			label = f0(float64(mtbfH))
		}
		t.AddRow(label, f1(ma.NodeFailures), f1(ma.FailureKills),
			f0(ma.MeanWait), f0(bl.MeanWait))
	}
	return []*Table{t}
}
