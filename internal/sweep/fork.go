package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"dismem"
)

// ForkPoint holds per-seed checkpoints of one cell's shared prefix:
// the state of every seed's simulation frozen at a common virtual
// time. Build one with Cell.CheckpointAt and run divergent futures
// from it with Cell.ForkFrom — the standard shared-prefix methodology
// for what-if sweeps ("replay the morning once, then try every outage
// tail"), which avoids re-simulating the prefix per variant cell.
type ForkPoint struct {
	cps []*dismem.Checkpoint
	at  int64
	// scheduler is the base cell's factory, retained so variant forks
	// that keep the base policy each get a FRESH scheduler instance:
	// reusing the instance captured in the checkpoints would share one
	// mutable scheduler across concurrently driven forks.
	scheduler func() dismem.Scheduler
}

// At returns the virtual time the prefix was frozen at.
func (fp *ForkPoint) At() int64 { return fp.at }

// Seeds returns how many per-seed checkpoints the fork point holds.
func (fp *ForkPoint) Seeds() int { return len(fp.cps) }

// CheckpointAt simulates the cell's prefix to virtual time t for every
// seed (in parallel) and freezes each seed's state. The cell's
// StopWhen predicate is not applied during the prefix — the prefix is
// a fixed horizon by construction.
func (c Cell) CheckpointAt(o Options, t int64) (*ForkPoint, error) {
	o = o.withDefaults()
	mc := c.Machine
	if mc.IsZero() {
		mc = dismem.DefaultMachine()
	}
	base := c
	base.StopWhen = nil

	cps := make([]*dismem.Checkpoint, o.Seeds)
	errs := make([]error, o.Seeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for s := 0; s < o.Seeds; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			opts, _, err := base.seedOptions(o, mc, s)
			if err != nil {
				errs[s] = err
				return
			}
			h, err := dismem.New(opts)
			if err != nil {
				errs[s] = err
				return
			}
			h.RunUntil(t)
			cps[s], errs[s] = h.Checkpoint()
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: checkpoint seed %d: %w", s+1, err)
		}
	}
	return &ForkPoint{cps: cps, at: t, scheduler: c.Scheduler}, nil
}

// ForkFrom resumes this cell's future from a shared fork point, one
// fork per seed (in parallel), and aggregates like Run. The receiver
// describes the FUTURE only:
//
//   - Scenario, when set, replaces the remaining intervention timeline
//     (see dismem.ForkOptions.Scenario); nil keeps the base cell's.
//   - Policy / Scheduler, when set, replace the scheduling policy from
//     the fork instant on.
//   - Failures, when set, reseeds the future failure stream per seed
//     (the base cell must have configured failure injection).
//   - StopWhen / SampleEvery apply to the future as in Run.
//   - Trace, when set, attaches a per-seed lifecycle-trace sink to the
//     forked future (parent sinks are never carried over).
//
// Machine, Model, Gen, StrictKill and Bounded are fixed by the base
// cell at checkpoint time and ignored here. One fork point serves any
// number of variant cells; each ForkFrom forks fresh state.
func (c Cell) ForkFrom(fp *ForkPoint) (Agg, error) {
	outs := make([]seedOut, len(fp.cps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for s := range fp.cps {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fo := dismem.ForkOptions{Scenario: c.Scenario, Policy: c.Policy}
			switch {
			case c.Scheduler != nil:
				fo.SchedulerImpl = c.Scheduler()
			case c.Policy == "" && fp.scheduler != nil:
				// Variant keeps the base cell's factory-built policy:
				// build a fresh instance rather than sharing the one
				// frozen in the checkpoint.
				fo.SchedulerImpl = fp.scheduler()
			}
			if c.Failures != nil {
				fo.ReseedFailures = true
				fo.FailureSeed = c.Failures.Seed + uint64(s)
			}
			if c.Trace != nil {
				fo.TraceSink = c.Trace(s)
			}
			var abort *abortObserver
			if c.StopWhen != nil {
				abort = &abortObserver{stop: c.StopWhen}
				fo.Observer = abort
				fo.SampleEvery = c.SampleEvery
				if fo.SampleEvery <= 0 {
					fo.SampleEvery = 3600
				}
			}
			h, err := dismem.Fork(fp.cps[s], fo)
			if err != nil {
				outs[s] = seedOut{err: err}
				return
			}
			if abort != nil {
				abort.h = h
			}
			res, err := h.Run()
			if err != nil {
				outs[s] = seedOut{err: err}
				return
			}
			outs[s] = seedOut{rep: res.Report, stopped: res.Stopped}
			if s == 0 {
				outs[s].records = res.Recorder.Records()
				outs[s].jain = res.Recorder.Fairness().JainWait
			}
		}(s)
	}
	wg.Wait()
	return aggregate(outs)
}
