package sweep

import (
	"testing"

	"dismem"
)

// TestForkFromSharedPrefix pins the shared-prefix sweep contract: a
// variant cell forked from a common checkpoint with no future
// overrides reproduces the plain run exactly, and an outage-tail
// variant diverges from it deterministically.
func TestForkFromSharedPrefix(t *testing.T) {
	base := Cell{Policy: "memaware", Model: "bandwidth:1,1"}
	o := Options{Jobs: 400, Seeds: 2}

	plain, err := base.Run(o)
	if err != nil {
		t.Fatal(err)
	}

	fp, err := base.CheckpointAt(o, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if fp.At() != 20000 || fp.Seeds() != 2 {
		t.Fatalf("fork point at=%d seeds=%d, want 20000/2", fp.At(), fp.Seeds())
	}

	same, err := base.ForkFrom(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Reports) != len(plain.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(same.Reports), len(plain.Reports))
	}
	for s := range plain.Reports {
		if *same.Reports[s] != *plain.Reports[s] {
			t.Fatalf("seed %d: forked report differs from plain run:\n%+v\n%+v",
				s+1, same.Reports[s], plain.Reports[s])
		}
	}

	outage, err := dismem.ParseScenario("at=30000 down rack=3; at=60000 up rack=3")
	if err != nil {
		t.Fatal(err)
	}
	variant := base
	variant.Scenario = outage
	hitA, err := variant.ForkFrom(fp)
	if err != nil {
		t.Fatal(err)
	}
	hitB, err := variant.ForkFrom(fp)
	if err != nil {
		t.Fatal(err)
	}
	for s := range hitA.Reports {
		if *hitA.Reports[s] != *hitB.Reports[s] {
			t.Fatalf("seed %d: outage variant not deterministic", s+1)
		}
	}
	if hitA.MeanWait == plain.MeanWait {
		t.Fatal("outage tail left mean wait unchanged; variant fork had no effect")
	}

	// Policy variant from the same (still reusable) fork point.
	sjf := base
	sjf.Policy = "order=sjf placer=memaware"
	polA, err := sjf.ForkFrom(fp)
	if err != nil {
		t.Fatal(err)
	}
	polB, err := sjf.ForkFrom(fp)
	if err != nil {
		t.Fatal(err)
	}
	for s := range polA.Reports {
		if *polA.Reports[s] != *polB.Reports[s] {
			t.Fatalf("seed %d: policy variant not deterministic", s+1)
		}
	}
}

// TestForkFromFactorySchedulerIndependence forks a factory-scheduler
// base cell from one fork point on concurrent goroutines: each fork
// must get a fresh scheduler instance (the race detector in CI catches
// sharing), and both variants must reproduce the plain run.
func TestForkFromFactorySchedulerIndependence(t *testing.T) {
	base := Cell{Scheduler: func() dismem.Scheduler {
		s, err := dismem.ParsePolicy("placer=memaware")
		if err != nil {
			panic(err) // factory runs on fork goroutines; cannot t.Fatal
		}
		return s
	}, Model: "bandwidth:1,1"}
	o := Options{Jobs: 300, Seeds: 1}

	plain, err := base.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := base.CheckpointAt(o, 15000)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		agg Agg
		err error
	}
	outs := make([]out, 2)
	done := make(chan struct{})
	for i := range outs {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			agg, err := base.ForkFrom(fp)
			outs[i] = out{agg, err}
		}(i)
	}
	<-done
	<-done
	for i, ot := range outs {
		if ot.err != nil {
			t.Fatalf("concurrent fork %d: %v", i, ot.err)
		}
		if *ot.agg.Reports[0] != *plain.Reports[0] {
			t.Fatalf("concurrent fork %d diverged from plain run", i)
		}
	}
	close(done)
}
