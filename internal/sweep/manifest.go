package sweep

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"sync"

	"dismem"
	"dismem/internal/metrics"
	"dismem/internal/sim"
	"dismem/internal/workload"
)

// manifestFormat names the journal layout. Bump it on any incompatible
// change to the header or line shapes.
const manifestFormat = "dmsweep-manifest/1"

// errNotCacheable marks a unit whose cell cannot be described by data
// alone (custom Scheduler factory or StopWhen predicate); such units
// always run live and are never journaled.
var errNotCacheable = errors.New("sweep: cell holds live code; unit not cacheable")

// UnitResult is the durable outcome of one (cell, seed) unit: exactly
// the per-seed quantities aggregate() consumes, so a journaled unit and
// a live run feed the reduction identically. Records and JainWait are
// populated only for seed 0 of retain-mode cells (the only seed whose
// records the tables use).
type UnitResult struct {
	Report   *metrics.Report     `json:"report"`
	Stopped  bool                `json:"stopped,omitempty"`
	Records  []metrics.JobRecord `json:"records,omitempty"`
	JainWait float64             `json:"jainWait,omitempty"`
}

// manifestHeader is the journal's first line. Scale and schema are
// pinned so a resume against different options (or a rebuilt binary
// with a drifted result schema) fails loudly instead of silently
// merging incompatible units.
type manifestHeader struct {
	Format string `json:"format"`
	Schema string `json:"schema"`
	Jobs   int    `json:"jobs"`
	Seeds  int    `json:"seeds"`
}

// manifestLine is one completed unit.
type manifestLine struct {
	Key    string      `json:"key"`
	Cell   string      `json:"cell"` // informational label, not part of identity
	Seed   int         `json:"seed"`
	Result *UnitResult `json:"result"`
}

// Manifest is an append-only JSONL journal of completed sweep units.
// One header line pins the format, result schema, and sweep scale;
// every further line is a finished (cell, seed) unit keyed by a hash
// of its full configuration. Writers append one fsynced line per unit,
// so a crash or signal loses at most the torn trailing line — which
// Open tolerates and drops. Safe for concurrent use by the worker
// pool.
type Manifest struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]*UnitResult
}

// OpenManifest opens (resume=true) or creates (resume=false) the unit
// journal at path for a sweep at scale o. Creating fails if a non-empty
// journal already exists — pass resume to continue it, or remove the
// file to start over. Resuming validates the header against the current
// binary and options and loads every intact unit line; only a torn
// final line (a write cut by a crash) is tolerated and dropped.
func OpenManifest(path string, o Options, resume bool) (*Manifest, error) {
	o = o.withDefaults()
	hdr := manifestHeader{
		Format: manifestFormat,
		Schema: manifestSchema(),
		Jobs:   o.Jobs,
		Seeds:  o.Seeds,
	}
	m := &Manifest{done: make(map[string]*UnitResult)}
	if resume {
		if err := m.load(path, hdr); err != nil {
			return nil, err
		}
	} else if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return nil, fmt.Errorf("sweep: manifest %s already exists; resume it or remove it first", path)
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if len(m.done) == 0 {
		// Fresh journal (or a resume that salvaged nothing, e.g. a write
		// torn mid-header): start over with a clean header.
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open manifest: %w", err)
	}
	m.f = f
	if flags&os.O_TRUNC != 0 {
		if err := m.appendJSON(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return m, nil
}

// load reads an existing journal and validates it against want.
func (m *Manifest) load(path string, want manifestHeader) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // nothing done yet; resume degenerates to a fresh sweep
	}
	if err != nil {
		return fmt.Errorf("sweep: open manifest: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("sweep: read manifest: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	torn := len(data) > 0 && data[len(data)-1] != '\n'
	lines := bytes.Split(data, []byte("\n"))
	// A trailing newline yields one empty final element; drop it.
	if !torn && len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	for i, line := range lines {
		last := i == len(lines)-1
		if i == 0 {
			var hdr manifestHeader
			if err := decodeStrict(line, &hdr); err != nil {
				if torn && last {
					return nil // journal died mid-header; nothing usable
				}
				return fmt.Errorf("sweep: manifest %s: bad header: %w", path, err)
			}
			if hdr.Format != want.Format {
				return fmt.Errorf("sweep: manifest %s: format %q, want %q", path, hdr.Format, want.Format)
			}
			if hdr.Schema != want.Schema {
				return fmt.Errorf("sweep: manifest %s: result schema mismatch (journal written by a different build)", path)
			}
			if hdr.Jobs != want.Jobs || hdr.Seeds != want.Seeds {
				return fmt.Errorf("sweep: manifest %s: recorded at jobs=%d seeds=%d, current sweep wants jobs=%d seeds=%d",
					path, hdr.Jobs, hdr.Seeds, want.Jobs, want.Seeds)
			}
			continue
		}
		var ml manifestLine
		if err := decodeStrict(line, &ml); err != nil {
			if torn && last {
				continue // torn trailing line: the unit will simply re-run
			}
			return fmt.Errorf("sweep: manifest %s: corrupt unit line %d: %w", path, i+1, err)
		}
		if ml.Key == "" || ml.Result == nil || ml.Result.Report == nil {
			if torn && last {
				continue
			}
			return fmt.Errorf("sweep: manifest %s: incomplete unit line %d", path, i+1)
		}
		m.done[ml.Key] = ml.Result
	}
	return nil
}

// decodeStrict unmarshals one JSONL line, rejecting unknown fields and
// trailing garbage.
func decodeStrict(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// Units reports how many completed units the journal holds.
func (m *Manifest) Units() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// lookup returns the journaled result for key, if any.
func (m *Manifest) lookup(key string) (*UnitResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.done[key]
	return r, ok
}

// record journals one completed unit: a single appended line followed
// by fsync, so the entry is durable before the worker moves on.
// Already-recorded keys (the same cell spec appearing in two tables)
// are kept once.
func (m *Manifest) record(key, cell string, seed int, res *UnitResult) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.done[key]; ok {
		return nil
	}
	if err := m.appendJSONLocked(manifestLine{Key: key, Cell: cell, Seed: seed, Result: res}); err != nil {
		return err
	}
	m.done[key] = res
	return nil
}

func (m *Manifest) appendJSON(v any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appendJSONLocked(v)
}

func (m *Manifest) appendJSONLocked(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: encode manifest line: %w", err)
	}
	b = append(b, '\n')
	if _, err := m.f.Write(b); err != nil {
		return fmt.Errorf("sweep: append manifest: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync manifest: %w", err)
	}
	return nil
}

// Close releases the journal file. The journal itself stays on disk:
// it is the resume state.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}

// --- unit identity ------------------------------------------------------

// unitSpec is the canonical, data-only description of one (cell, seed)
// unit. Its JSON encoding (struct order, sorted map keys) is the hash
// preimage for the unit key, so two cells with identical effective
// configuration share journal entries.
type unitSpec struct {
	Format     string                  `json:"format"`
	Machine    dismem.MachineConfig    `json:"machine"`
	Policy     string                  `json:"policy"`
	Model      string                  `json:"model"`
	Gen        workload.GenConfigState `json:"gen"`
	StrictKill bool                    `json:"strictKill,omitempty"`
	Failures   *sim.FailureConfig      `json:"failures,omitempty"`
	Scenario   string                  `json:"scenario,omitempty"`
	Bounded    bool                    `json:"bounded,omitempty"`
	Jobs       int                     `json:"jobs"`
	Seed       int                     `json:"seed"`
}

// unitSpecJSON builds the canonical configuration JSON for seed s of
// the cell — the identity preimage shared by the manifest key and the
// run-store record — or errNotCacheable when the cell holds live code
// (Scheduler factory, StopWhen predicate, Series or Trace sink
// factory) or a workload distribution with no serializable state.
func (c Cell) unitSpecJSON(o Options, mc dismem.MachineConfig, s int) ([]byte, error) {
	if c.Scheduler != nil || c.StopWhen != nil || c.Series != nil || c.Trace != nil {
		return nil, errNotCacheable
	}
	gen := dismem.GenConfig{}
	if c.Gen != nil {
		gen = *c.Gen
	} else {
		gen = defaultGen(o.Jobs, uint64(s+1), mc)
	}
	gen.Jobs = o.Jobs
	gen.Seed = uint64(s + 1)
	gs, err := workload.GenConfigToState(gen)
	if err != nil {
		return nil, fmt.Errorf("%w (%v)", errNotCacheable, err)
	}
	spec := unitSpec{
		Format:     manifestFormat,
		Machine:    mc,
		Policy:     c.Policy,
		Model:      c.Model,
		Gen:        gs,
		StrictKill: c.StrictKill,
		Bounded:    c.Bounded,
		Jobs:       o.Jobs,
		Seed:       s,
	}
	if c.Failures != nil {
		fc := *c.Failures
		fc.Seed += uint64(s)
		spec.Failures = &fc
	}
	if c.Scenario != nil {
		spec.Scenario = c.Scenario.String()
	}
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("%w (%v)", errNotCacheable, err)
	}
	return b, nil
}

// unitKey derives the journal key for seed s of the cell: the hash of
// its canonical spec JSON.
func (c Cell) unitKey(o Options, mc dismem.MachineConfig, s int) (string, error) {
	b, err := c.unitSpecJSON(o, mc, s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// cellLabel is the human-readable journal annotation for a cell.
func (c Cell) cellLabel(mc dismem.MachineConfig) string {
	model := c.Model
	if model == "" {
		model = "linear:0.5"
	}
	return fmt.Sprintf("%s/%s r%dx%d", c.Policy, model, mc.Racks, mc.NodesPerRack)
}

// --- schema fingerprint -------------------------------------------------

// manifestSchema fingerprints the manifestLine type (and transitively
// UnitResult, metrics.Report, …) so a journal written by a build with a
// different result layout is rejected instead of mis-decoded.
func manifestSchema() string {
	var buf bytes.Buffer
	describeManifestType(&buf, reflect.TypeOf(manifestLine{}), map[reflect.Type]bool{})
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8])
}

// describeManifestType appends a canonical structural description of t.
// Types with custom JSON marshalling are opaque to reflection and
// recorded by name only.
func describeManifestType(w *bytes.Buffer, t reflect.Type, visited map[reflect.Type]bool) {
	if t.Implements(reflect.TypeOf((*json.Marshaler)(nil)).Elem()) ||
		reflect.PointerTo(t).Implements(reflect.TypeOf((*json.Marshaler)(nil)).Elem()) {
		fmt.Fprintf(w, "%s(custom-json)", t.String())
		return
	}
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "%s{", t.Kind())
		describeManifestType(w, t.Elem(), visited)
		w.WriteString("}")
	case reflect.Map:
		w.WriteString("map[")
		describeManifestType(w, t.Key(), visited)
		w.WriteString("]{")
		describeManifestType(w, t.Elem(), visited)
		w.WriteString("}")
	case reflect.Struct:
		if visited[t] {
			fmt.Fprintf(w, "cycle(%s)", t.String())
			return
		}
		visited[t] = true
		fmt.Fprintf(w, "struct %s{", t.String())
		fields := make([]string, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			var fb bytes.Buffer
			describeManifestType(&fb, f.Type, visited)
			fields = append(fields, fmt.Sprintf("%s %s %q", f.Name, fb.String(), f.Tag.Get("json")))
		}
		sort.Strings(fields)
		for _, f := range fields {
			w.WriteString(f)
			w.WriteString(";")
		}
		w.WriteString("}")
		delete(visited, t)
	default:
		w.WriteString(t.Kind().String())
	}
}
