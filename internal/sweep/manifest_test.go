package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dismem"
	"dismem/internal/metrics"
)

// aggJSON flattens an Agg (including the per-seed reports and records)
// to its JSON encoding, the byte-identity yardstick for resume and
// worker-count invariance.
func aggJSON(t *testing.T, a Agg) string {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// memawareFactory builds the registered memaware scheduler, as a
// factory for live-code cells in tests.
func memawareFactory() dismem.Scheduler {
	s, err := dismem.NewScheduler("memaware")
	if err != nil {
		panic(err)
	}
	return s
}

func openManifest(t *testing.T, path string, o Options, resume bool) *Manifest {
	t.Helper()
	m, err := OpenManifest(path, o, resume)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestWorkerPoolMatchesSerial(t *testing.T) {
	c := Cell{Policy: "memaware"}
	serial, err := c.Run(Options{Jobs: 200, Seeds: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := c.Run(Options{Jobs: 200, Seeds: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if aggJSON(t, serial) != aggJSON(t, pooled) {
		t.Fatal("4-worker aggregate differs from serial aggregate")
	}
}

func TestWorkerPoolOverlapsUnits(t *testing.T) {
	// Every unit blocks at its first sample until all n are inside the
	// predicate simultaneously. A pool that actually runs units
	// concurrently releases the barrier; a serial pool would deadlock
	// on the first unit — guarded by the timeout below.
	const n = 3
	barrier := make(chan struct{})
	var arrived atomic.Int32
	c := Cell{Policy: "memaware", StopWhen: func(dismem.Sample) bool {
		if arrived.Add(1) == n {
			close(barrier)
		}
		<-barrier
		return true
	}}
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(Options{Jobs: 200, Seeds: n, Workers: n})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("worker pool did not overlap units: barrier never released")
	}
}

func TestManifestJournalsUnits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	o := Options{Jobs: 150, Seeds: 2}
	m := openManifest(t, path, o, false)
	o.Manifest = m
	if _, err := (Cell{Policy: "memaware"}).Run(o); err != nil {
		t.Fatal(err)
	}
	if got := m.Units(); got != o.Seeds {
		t.Fatalf("journaled %d units, want %d", got, o.Seeds)
	}
	// Re-running the same cell must not append duplicate entries.
	if _, err := (Cell{Policy: "memaware"}).Run(o); err != nil {
		t.Fatal(err)
	}
	if got := m.Units(); got != o.Seeds {
		t.Fatalf("re-run grew the journal to %d units, want %d", got, o.Seeds)
	}
}

func TestManifestServesJournaledUnits(t *testing.T) {
	// Plant a fabricated result under the cell's real unit key: if Run
	// surfaces the marker, the unit came from the journal, not a
	// simulation.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	o := Options{Jobs: 150, Seeds: 1}.withDefaults()
	c := Cell{Policy: "memaware"}
	mc := dismem.DefaultMachine()
	key, err := c.unitKey(o, mc, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := openManifest(t, path, o, false)
	marker := &metrics.Report{Completed: 123456}
	if err := m.record(key, "planted", 0, &UnitResult{Report: marker, JainWait: 0.75}); err != nil {
		t.Fatal(err)
	}
	o.Manifest = m
	agg, err := c.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Reports) != 1 || agg.Reports[0].Completed != 123456 {
		t.Fatal("run did not serve the journaled unit")
	}
	if agg.JainWait != 0.75 {
		t.Fatalf("seed-0 fairness %v not taken from the journal", agg.JainWait)
	}
}

func TestManifestResumeAfterTornCrash(t *testing.T) {
	clean, err := (Cell{Policy: "memaware"}).Run(Options{Jobs: 150, Seeds: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// First attempt journals all three units; simulate a crash that cut
	// the process after the first unit line, mid-write of the second.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	o := Options{Jobs: 150, Seeds: 3}
	m := openManifest(t, path, o, false)
	o.Manifest = m
	if _, err := (Cell{Policy: "memaware"}).Run(o); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want header + 3 units", len(lines))
	}
	torn := lines[0] + lines[1] + lines[2][:len(lines[2])/2] // header + unit + torn half-line
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := openManifest(t, path, o, true)
	if got := m2.Units(); got != 1 {
		t.Fatalf("salvaged %d units from torn journal, want 1", got)
	}
	o.Manifest = m2
	o.Workers = 4
	resumed, err := (Cell{Policy: "memaware"}).Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if aggJSON(t, clean) != aggJSON(t, resumed) {
		t.Fatal("resumed aggregate differs from clean serial run")
	}
	if got := m2.Units(); got != 3 {
		t.Fatalf("journal holds %d units after resume, want 3", got)
	}
}

func TestManifestRejectsScaleMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	m := openManifest(t, path, Options{Jobs: 150, Seeds: 2}, false)
	m.Close()
	if _, err := OpenManifest(path, Options{Jobs: 300, Seeds: 2}, true); err == nil {
		t.Fatal("resume with different -jobs accepted")
	}
	if _, err := OpenManifest(path, Options{Jobs: 150, Seeds: 4}, true); err == nil {
		t.Fatal("resume with different -seeds accepted")
	}
}

func TestManifestRejectsCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	o := Options{Jobs: 150, Seeds: 2}
	m := openManifest(t, path, o, false)
	o.Manifest = m
	if _, err := (Cell{Policy: "memaware"}).Run(o); err != nil {
		t.Fatal(err)
	}
	m.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Corrupt the first unit line but keep its trailing newline: this is
	// interior damage, not a torn tail, and must fail the resume.
	corrupt := lines[0] + "{\"key\": garbage}\n" + strings.Join(lines[2:], "")
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifest(path, o, true); err == nil {
		t.Fatal("corrupt interior line accepted on resume")
	}
}

func TestManifestRefusesOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	m := openManifest(t, path, Options{Jobs: 150, Seeds: 2}, false)
	m.Close()
	if _, err := OpenManifest(path, Options{Jobs: 150, Seeds: 2}, false); err == nil {
		t.Fatal("fresh open silently truncated an existing journal")
	}
}

func TestLiveCodeCellsAreNotJournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	o := Options{Jobs: 150, Seeds: 1}
	m := openManifest(t, path, o, false)
	o.Manifest = m
	c := Cell{Scheduler: memawareFactory}
	if _, err := c.Run(o); err != nil {
		t.Fatal(err)
	}
	stop := Cell{Policy: "memaware", StopWhen: func(dismem.Sample) bool { return false }}
	if _, err := stop.Run(o); err != nil {
		t.Fatal(err)
	}
	if got := m.Units(); got != 0 {
		t.Fatalf("journaled %d units for live-code cells, want 0", got)
	}
}

func TestUnitPanicRetries(t *testing.T) {
	var calls atomic.Int32
	c := Cell{Scheduler: func() dismem.Scheduler {
		if calls.Add(1) == 1 {
			panic("transient unit failure")
		}
		return memawareFactory()
	}}
	if _, err := c.Run(Options{Jobs: 120, Seeds: 1, Workers: 1}); err != nil {
		t.Fatalf("one retry did not absorb a single transient panic: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("unit ran %d times, want 2", got)
	}
}

func TestUnitPanicExhaustsRetries(t *testing.T) {
	c := Cell{Scheduler: func() dismem.Scheduler { panic("persistent unit failure") }}
	_, err := c.Run(Options{Jobs: 120, Seeds: 1, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "panic in simulation unit") {
		t.Fatalf("persistent panic not surfaced as unit error: %v", err)
	}
}

func TestCancelledContextInterrupts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := (Cell{Policy: "memaware"}).Run(Options{Jobs: 150, Seeds: 2, Ctx: ctx})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled sweep returned %v, want ErrInterrupted", err)
	}
}

func TestMidRunCancellationDiscardsUnit(t *testing.T) {
	// The predicate cancels the sweep's context at the first sample; the
	// observer then stops the run at the next tick. The truncated result
	// must be discarded as interrupted, never aggregated or journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := Cell{
		Policy:   "memaware",
		StopWhen: func(dismem.Sample) bool { cancel(); return false },
	}
	_, err := c.Run(Options{Jobs: 400, Seeds: 1, Workers: 1, Ctx: ctx})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("mid-run cancellation returned %v, want ErrInterrupted", err)
	}
}

func TestRegistryRunReturnsInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run("table2", Options{Jobs: 150, Seeds: 1, Ctx: ctx})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run under cancelled ctx returned %v, want ErrInterrupted", err)
	}
	_, err = RunAll(Options{Jobs: 150, Seeds: 1, Ctx: ctx})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("RunAll under cancelled ctx returned %v, want ErrInterrupted", err)
	}
}

func TestExperimentResumeMatchesClean(t *testing.T) {
	// End-to-end over a real experiment: interrupt a journaled sweep,
	// resume it, and demand CSV-identical tables against a clean run.
	o := Options{Jobs: 120, Seeds: 2}
	clean, err := Run("table2", o)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := o
	interrupted.Ctx = ctx
	interrupted.Manifest = openManifest(t, path, o, false)
	var fired atomic.Bool
	go func() {
		// Cancel as soon as at least one unit is journaled.
		for interrupted.Manifest.Units() == 0 {
			runtime.Gosched()
		}
		fired.Store(true)
		cancel()
	}()
	_, err = Run("table2", interrupted)
	if err != nil && !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	if !fired.Load() {
		// The sweep may have finished before the cancel landed; that is
		// still a valid resume input (all units journaled).
		cancel()
	}
	interrupted.Manifest.Close()

	resumed := o
	resumed.Manifest = openManifest(t, path, o, true)
	got, err := Run("table2", resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clean) {
		t.Fatalf("resumed run yielded %d tables, clean %d", len(got), len(clean))
	}
	for i := range got {
		if got[i].CSV() != clean[i].CSV() {
			t.Fatalf("table %d differs after resume:\n%s\nvs clean:\n%s", i, got[i].CSV(), clean[i].CSV())
		}
	}
}
