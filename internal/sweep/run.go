package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dismem"
	"dismem/internal/metrics"
	"dismem/internal/runstore"
	"dismem/internal/sim"
	"dismem/internal/trace"
)

// ErrInterrupted reports a sweep cancelled through Options.Ctx (for
// example by SIGINT/SIGTERM in dmsweep). Completed units were already
// journaled to the manifest, if one is attached, so the same sweep can
// be resumed without redoing them.
var ErrInterrupted = errors.New("sweep: interrupted")

// Options scales an experiment. Zero values select the full evaluation
// scale; benches pass reduced numbers.
type Options struct {
	// Jobs per simulation (default 8000).
	Jobs int
	// Seeds per cell; reported numbers are seed means (default 5).
	Seeds int
	// Workers caps how many (cell, seed) simulation units run
	// concurrently (default GOMAXPROCS).
	Workers int
	// Retries is the per-unit retry budget after a panic inside a unit
	// (default 1, i.e. up to two attempts). A unit that keeps panicking
	// fails the sweep with the recovered value.
	Retries int
	// Ctx, when non-nil, cancels the sweep cooperatively: in-flight
	// simulations stop at their next sample tick, pending units are
	// skipped, and the sweep returns ErrInterrupted.
	Ctx context.Context
	// Manifest, when non-nil, journals every completed unit and serves
	// already-journaled units from the journal instead of re-running
	// them — the crash-safe resume mechanism behind dmsweep -resume.
	Manifest *Manifest
	// Store, when non-nil, archives every completed cacheable unit as a
	// "sweep-unit" run record once the cell's seeds drain. Records are
	// appended in seed order and carry no wall-clock state, so a
	// resumed sweep archives byte-identical records to an uninterrupted
	// one. Cells holding live code (Scheduler, StopWhen, Series, Trace)
	// have no durable identity and are skipped.
	Store *runstore.Store
	// UnitDone, when non-nil, is called once per successfully completed
	// simulation unit, including units served from the Manifest journal.
	// It runs on the unit's worker goroutine, so it must be safe for
	// concurrent use (dmsweep feeds an atomic /metrics progress counter
	// with it). It observes progress only — it cannot fail the sweep.
	UnitDone func()
}

func (o Options) withDefaults() Options {
	if o.Jobs <= 0 {
		o.Jobs = 8000
	}
	if o.Seeds <= 0 {
		o.Seeds = 5
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Retries <= 0 {
		o.Retries = 1
	}
	return o
}

func (o Options) note() string {
	return fmt.Sprintf("%d jobs/run, mean of %d seeds", o.Jobs, o.Seeds)
}

// interrupted reports whether the sweep's context has been cancelled.
func (o Options) interrupted() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Cell describes one simulation configuration to run across seeds.
type Cell struct {
	Machine dismem.MachineConfig
	// Policy is a registered name; Scheduler (factory) overrides it.
	Policy string
	// Scheduler builds a fresh scheduler per seed when set. Cells with
	// a Scheduler factory hold live code and are never served from or
	// journaled to a Manifest.
	Scheduler func() dismem.Scheduler
	// Model is a memory-model spec (default linear:0.5).
	Model string
	// Gen overrides the default workload generator config; when nil the
	// calibrated default for the cell's machine is used. The Jobs and
	// Seed fields are always overwritten by the harness.
	Gen *dismem.GenConfig
	// StrictKill disables dilation-extended walltime limits.
	StrictKill bool
	// Failures optionally injects node failures (each seed gets an
	// independent failure stream derived from its workload seed).
	Failures *sim.FailureConfig
	// Scenario optionally perturbs every seed's run with the same
	// deterministic intervention timeline (dismem.ParseScenario), so
	// experiment tables can sweep over outage severities, surge
	// amplitudes, and the like. Scenarios are immutable and shared
	// across the parallel seed goroutines.
	Scenario *dismem.Scenario
	// Bounded runs every seed with bounded metrics recording
	// (dismem.DiscardRecords): memory stays independent of Jobs, the
	// aggregate columns are unchanged except the percentile ones, which
	// become streaming estimates (exact up to 1024 jobs, P² beyond),
	// and Agg.Records stays nil (CDF reductions
	// need retain mode). Use it for cells far above the default scale.
	Bounded bool
	// StopWhen, when set, aborts each seed's simulation early: it is
	// evaluated against periodic engine samples (every SampleEvery
	// simulated seconds) and the run stops at the first true. The
	// seed's report then covers only the simulated prefix — useful to
	// cut off diverged or saturated cells in large scenario fan-outs.
	// Seeds run on parallel goroutines and share this predicate, so it
	// must be safe for concurrent use (stateless, or synchronised).
	// Like Scheduler, StopWhen makes the cell's units uncacheable.
	StopWhen func(dismem.Sample) bool
	// SampleEvery is the sampling period for StopWhen and Series in
	// simulated seconds (default 3600).
	SampleEvery int64
	// Series, when set, attaches a utilization-series sink to each
	// seed's simulation (dismem.NewJSONLSeriesSink over a per-seed
	// file, say). Sinks are live writers, so cells with Series are
	// never journaled to a Manifest or archived to a Store — like
	// Scheduler and StopWhen, the cell holds live code.
	Series func(seed int) metrics.SeriesSink
	// Trace, when set, attaches a lifecycle-trace sink to each seed's
	// simulation (dismem.NewJSONLTraceSink over a per-seed file, say).
	// Tracing is event-driven — it needs no SampleEvery. Like Series,
	// a Trace factory is live code: the cell's units are never
	// journaled to a Manifest or archived to a Store.
	Trace func(seed int) trace.TraceSink
}

// abortObserver stops its simulation at the first sample matching the
// cell's StopWhen predicate, or as soon as the sweep's context is
// cancelled (so interrupted sweeps drain in bounded time instead of
// finishing multi-hour simulated runs).
type abortObserver struct {
	dismem.NopObserver
	h    *dismem.Simulation
	stop func(dismem.Sample) bool
	ctx  context.Context
}

// OnSample implements dismem.Observer.
func (a *abortObserver) OnSample(s dismem.Sample) {
	if a.ctx != nil && a.ctx.Err() != nil {
		a.h.Stop()
		return
	}
	if a.stop != nil && a.stop(s) {
		a.h.Stop()
	}
}

// Agg is the seed-mean of the report quantities the tables print.
type Agg struct {
	MeanWait, P95Wait   float64 // seconds
	MeanBSld, P95BSld   float64
	NodeUtil            float64
	LocalUtil, PoolUtil float64
	Throughput          float64 // jobs/hour
	MakespanH           float64
	RemoteFrac          float64 // fraction of jobs using the pool
	MeanDilRemote       float64 // mean dilation over remote jobs
	P95DilRemote        float64
	KilledFrac          float64
	RejectedFrac        float64
	Jobs                float64
	NodeFailures        float64 // mean node failures per run
	FailureKills        float64 // mean jobs killed by failures per run
	JainWait            float64 // Jain fairness of per-user wait (seed 1)

	// StoppedRuns counts seeds truncated by the cell's StopWhen
	// predicate (their reports cover only the simulated prefix).
	StoppedRuns int

	// Reports keeps the per-seed reports for custom reductions.
	Reports []*metrics.Report
	// Records keeps per-job records of the first seed for CDF figures.
	Records []metrics.JobRecord
}

// seedOut is one seed's outcome, collected for aggregation. It carries
// plain data (not live simulation handles) so journaled units and live
// runs are indistinguishable to aggregate().
type seedOut struct {
	rep     *metrics.Report
	stopped bool
	records []metrics.JobRecord // first seed of retain-mode cells only
	jain    float64             // first seed only
	err     error
}

// Run simulates the cell for every seed and averages. Seeds run on a
// worker pool of Options.Workers goroutines; results merge in seed
// order, not completion order, so the aggregate is identical to a
// serial run. With a Manifest attached, journaled units are served
// from the journal and fresh completions are journaled before the
// worker moves on; with a cancelled Ctx, Run returns ErrInterrupted.
func (c Cell) Run(o Options) (Agg, error) {
	o = o.withDefaults()
	mc := c.Machine
	if mc.IsZero() {
		mc = dismem.DefaultMachine()
	}

	outs := make([]seedOut, o.Seeds)
	type unit struct {
		s   int
		key string
	}
	units := make([]unit, 0, o.Seeds)
	for s := 0; s < o.Seeds; s++ {
		key := ""
		if o.Manifest != nil {
			if k, err := c.unitKey(o, mc, s); err == nil {
				key = k
				if res, ok := o.Manifest.lookup(k); ok {
					outs[s] = seedOutFromUnit(res, s)
					if o.UnitDone != nil {
						o.UnitDone()
					}
					continue
				}
			}
		}
		units = append(units, unit{s: s, key: key})
	}

	// Fixed worker pool, each worker owning one dismem.Runner:
	// consecutive units on a worker recycle the previous unit's
	// machine and engine state instead of rebuilding them (see
	// dismem.RunBatch for the reuse contract). Results merge in seed
	// order, not completion order, so the aggregate is independent of
	// the worker count.
	workers := o.Workers
	if workers > len(units) {
		workers = len(units)
	}
	feed := make(chan unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := dismem.NewRunner(dismem.Options{})
			for u := range feed {
				outs[u.s] = c.runUnit(o, mc, u.s, runner)
				if u.key != "" && outs[u.s].err == nil {
					if err := o.Manifest.record(u.key, c.cellLabel(mc), u.s, unitFromSeedOut(outs[u.s])); err != nil {
						outs[u.s].err = err
					}
				}
				if outs[u.s].err == nil && o.UnitDone != nil {
					o.UnitDone()
				}
			}
		}()
	}
	for _, u := range units {
		feed <- u
	}
	close(feed)
	wg.Wait()
	if err := c.archive(o, mc, outs); err != nil {
		return Agg{}, err
	}
	return aggregate(outs)
}

// archive appends the cell's completed units to the run store, in seed
// order (deterministic across worker counts). Live-code cells have no
// durable identity and are skipped silently; a store write failure is
// a sweep failure — an archive that silently drops runs is worse than
// none.
func (c Cell) archive(o Options, mc dismem.MachineConfig, outs []seedOut) error {
	if o.Store == nil {
		return nil
	}
	for s, out := range outs {
		if out.err != nil {
			continue // aggregate() surfaces the failure
		}
		spec, err := c.unitSpecJSON(o, mc, s)
		if err != nil {
			return nil // errNotCacheable: the whole cell holds live code
		}
		rec := runstore.Run{
			ID:      runstore.KeyOf("sweep-unit", spec, s),
			Kind:    "sweep-unit",
			Label:   c.cellLabel(mc),
			Seed:    s,
			Spec:    spec,
			Report:  out.rep,
			Stopped: out.stopped,
		}
		if err := o.Store.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

// runUnit runs one (cell, seed) simulation with the per-unit panic
// retry budget, honouring cancellation before, during (via the sample
// observer), and after the run.
func (c Cell) runUnit(o Options, mc dismem.MachineConfig, s int, runner *dismem.Runner) seedOut {
	var out seedOut
	for attempt := 0; ; attempt++ {
		if o.interrupted() {
			return seedOut{err: ErrInterrupted}
		}
		out = c.runUnitOnce(o, mc, s, runner)
		var pe *unitPanicError
		if out.err == nil || !errors.As(out.err, &pe) || attempt >= o.Retries {
			break
		}
	}
	if o.interrupted() {
		// A run stopped mid-way by the cancel observer yields a
		// truncated report; never let it masquerade as the unit's
		// result.
		return seedOut{err: ErrInterrupted}
	}
	return out
}

// unitPanicError wraps a panic recovered inside one unit so the retry
// loop can distinguish it from ordinary configuration errors (which
// retrying cannot fix).
type unitPanicError struct{ val any }

func (e *unitPanicError) Error() string {
	return fmt.Sprintf("sweep: panic in simulation unit: %v", e.val)
}

// runUnitOnce performs a single attempt, converting a panic anywhere in
// workload generation or simulation into a unitPanicError instead of
// tearing down the whole sweep's worker pool.
func (c Cell) runUnitOnce(o Options, mc dismem.MachineConfig, s int, runner *dismem.Runner) (out seedOut) {
	defer func() {
		if r := recover(); r != nil {
			out = seedOut{err: &unitPanicError{val: r}}
		}
	}()
	opts, abort, err := c.seedOptions(o, mc, s)
	if err != nil {
		return seedOut{err: err}
	}
	h, err := runner.NewSimulation(opts)
	if err != nil {
		return seedOut{err: err}
	}
	if abort != nil {
		abort.h = h
	}
	res, err := h.Run()
	runner.Retire(h)
	if err != nil {
		return seedOut{err: err}
	}
	out = seedOut{rep: res.Report, stopped: res.Stopped}
	if s == 0 {
		out.records = res.Recorder.Records()
		out.jain = res.Recorder.Fairness().JainWait
	}
	return out
}

// seedOutFromUnit rehydrates a journaled unit result.
func seedOutFromUnit(u *UnitResult, s int) seedOut {
	out := seedOut{rep: u.Report, stopped: u.Stopped}
	if s == 0 {
		out.records = u.Records
		out.jain = u.JainWait
	}
	return out
}

// unitFromSeedOut converts a live outcome to its journal form.
func unitFromSeedOut(out seedOut) *UnitResult {
	return &UnitResult{
		Report:   out.rep,
		Stopped:  out.stopped,
		Records:  out.records,
		JainWait: out.jain,
	}
}

// seedOptions assembles one seed's simulation options: the cell's
// configuration plus the harness-owned workload generation and
// per-seed failure stream. The returned abortObserver (non-nil only
// with StopWhen or a cancellable sweep context) still needs its handle
// wired after dismem.New.
func (c Cell) seedOptions(o Options, mc dismem.MachineConfig, s int) (dismem.Options, *abortObserver, error) {
	gen := dismem.GenConfig{}
	if c.Gen != nil {
		gen = *c.Gen
	} else {
		gen = defaultGen(o.Jobs, uint64(s+1), mc)
	}
	gen.Jobs = o.Jobs
	gen.Seed = uint64(s + 1)
	wl, err := cachedWorkload(gen)
	if err != nil {
		return dismem.Options{}, nil, err
	}
	opts := dismem.Options{
		Machine:    mc,
		Policy:     c.Policy,
		Model:      c.Model,
		Workload:   wl,
		StrictKill: c.StrictKill,
		Scenario:   c.Scenario,
	}
	if c.Bounded {
		opts.RecordSink = dismem.DiscardRecords
	}
	if c.Failures != nil {
		fc := *c.Failures
		fc.Seed += uint64(s) // independent stream per seed
		opts.Failures = &fc
	}
	if c.Scheduler != nil {
		opts.SchedulerImpl = c.Scheduler()
	}
	var abort *abortObserver
	if c.StopWhen != nil || o.Ctx != nil {
		abort = &abortObserver{stop: c.StopWhen, ctx: o.Ctx}
		opts.Observer = abort
	}
	if c.Series != nil {
		opts.SeriesSink = c.Series(s)
	}
	if c.Trace != nil {
		opts.TraceSink = c.Trace(s)
	}
	if abort != nil || c.Series != nil {
		opts.SampleEvery = c.SampleEvery
		if opts.SampleEvery <= 0 {
			opts.SampleEvery = 3600
		}
	}
	return opts, abort, nil
}

// wlCache shares generated workloads across cells: comparison
// experiments run many cells over identical (gen, jobs, seed) tuples,
// and the engine never mutates a Workload, so one generation serves
// them all. Keyed on the printed config — two configs share an entry
// only when their full printed state matches, so a miss is the worst a
// key collision failure mode can produce. Bounded by wholesale reset:
// sweeps cycle through few distinct configs, so eviction precision is
// worth less than the simplicity.
var wlCache = struct {
	sync.Mutex
	m map[string]*dismem.Workload
}{m: make(map[string]*dismem.Workload)}

const wlCacheCap = 32

func cachedWorkload(gen dismem.GenConfig) (*dismem.Workload, error) {
	key := fmt.Sprintf("%#v", gen)
	wlCache.Lock()
	wl, ok := wlCache.m[key]
	wlCache.Unlock()
	if ok {
		return wl, nil
	}
	// Generate outside the lock: concurrent workers generating
	// different seeds must not serialise. A duplicate generation racing
	// on one key is harmless — generation is deterministic, so either
	// winner is the same workload.
	wl, err := dismem.GenerateWorkload(gen)
	if err != nil {
		return nil, err
	}
	wlCache.Lock()
	if len(wlCache.m) >= wlCacheCap {
		clear(wlCache.m)
	}
	wlCache.m[key] = wl
	wlCache.Unlock()
	return wl, nil
}

// aggregate reduces per-seed outcomes to the seed-mean Agg (the first
// seed additionally contributes records and fairness). Outcomes merge
// in seed order regardless of which worker finished first, keeping the
// reduction bit-identical across worker counts.
func aggregate(outs []seedOut) (Agg, error) {
	var agg Agg
	for s, ot := range outs {
		if ot.err != nil {
			return Agg{}, fmt.Errorf("sweep: seed %d: %w", s+1, ot.err)
		}
		r := ot.rep
		agg.MeanWait += r.Wait.Mean()
		agg.P95Wait += r.P95Wait
		agg.MeanBSld += r.BSld.Mean()
		agg.P95BSld += r.P95BSld
		agg.NodeUtil += r.NodeUtil
		agg.LocalUtil += r.LocalMemUtil
		agg.PoolUtil += r.PoolUtil
		agg.Throughput += r.ThroughputPerHour
		agg.MakespanH += float64(r.MakespanSec) / 3600
		agg.RemoteFrac += r.RemoteJobFraction
		agg.MeanDilRemote += r.DilationRemote.Mean()
		agg.P95DilRemote += r.P95DilationRemote
		agg.KilledFrac += r.KilledFraction()
		total := float64(r.Jobs() + r.Rejected)
		if total > 0 {
			agg.RejectedFrac += float64(r.Rejected) / total
		}
		agg.Jobs += float64(r.Jobs())
		agg.NodeFailures += float64(r.NodeFailures)
		agg.FailureKills += float64(r.FailureKills)
		if ot.stopped {
			agg.StoppedRuns++
		}
		agg.Reports = append(agg.Reports, r)
		if s == 0 {
			agg.Records = ot.records
			agg.JainWait = ot.jain
		}
	}
	n := float64(len(outs))
	agg.MeanWait /= n
	agg.P95Wait /= n
	agg.MeanBSld /= n
	agg.P95BSld /= n
	agg.NodeUtil /= n
	agg.LocalUtil /= n
	agg.PoolUtil /= n
	agg.Throughput /= n
	agg.MakespanH /= n
	agg.RemoteFrac /= n
	agg.MeanDilRemote /= n
	agg.P95DilRemote /= n
	agg.KilledFrac /= n
	agg.RejectedFrac /= n
	agg.Jobs /= n
	agg.NodeFailures /= n
	agg.FailureKills /= n
	return agg, nil
}

// MustRun is Run, panicking on error (experiments are deterministic; an
// error here is a programming bug, not an input condition). The panic
// value is the error itself, so the registry's Run/RunAll can recover
// an ErrInterrupted sweep and surface it as a plain error.
func (c Cell) MustRun(o Options) Agg {
	agg, err := c.Run(o)
	if err != nil {
		panic(err)
	}
	return agg
}

// recorderFromRecords rebuilds a metrics recorder from a cell's
// retained first-seed records, for reductions (fairness, CDFs) that
// operate on a Recorder.
func recorderFromRecords(a Agg) *metrics.Recorder {
	rec := metrics.NewRecorder()
	for _, r := range a.Records {
		rec.Add(r)
	}
	return rec
}

// defaultGen returns the calibrated generator for machine mc, scaling
// job sizes to the machine width.
func defaultGen(jobs int, seed uint64, mc dismem.MachineConfig) dismem.GenConfig {
	return dismem.DefaultGen(jobs, seed, mc)
}
